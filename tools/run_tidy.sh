#!/bin/sh
# clang-tidy gate over the hdiff C++ sources — the compiled-code companion
# to `hdiff lint` (which checks the ABNF corpus).  Checks come from the
# repo's .clang-tidy; the compile flags come from the build directory's
# compile_commands.json (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON,
# which the `tidy` CMake preset and HDIFF_TIDY do for you).
#
# Usage: tools/run_tidy.sh [BUILD_DIR] [FILE...]
#   BUILD_DIR  directory holding compile_commands.json (default: build)
#   FILE...    sources to check (default: every .cpp under src/ and tools/)
#
# Exit codes: 0 clean, 1 findings, 77 skipped (no clang-tidy on PATH or no
# compile database) — ctest maps 77 to SKIP, so the gate degrades gracefully
# on machines without the LLVM toolchain instead of failing the build.
set -u

repo_root=$(cd "$(dirname "$0")/.." && pwd) || exit 1
build_dir="${1:-build}"
[ "$#" -gt 0 ] && shift
case "$build_dir" in
  /*) ;;
  *) build_dir="$repo_root/$build_dir" ;;
esac

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "run_tidy: '$tidy' not on PATH; skipping (install clang-tidy or set CLANG_TIDY)" >&2
  exit 77
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_tidy: $build_dir/compile_commands.json missing; skipping" >&2
  echo "run_tidy: configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (or the 'tidy' preset)" >&2
  exit 77
fi

cd "$repo_root" || exit 1
if [ "$#" -gt 0 ]; then
  files="$*"
else
  files=$(find src tools -name '*.cpp' | LC_ALL=C sort)
fi
[ -n "$files" ] || { echo "run_tidy: nothing to check" >&2; exit 77; }

echo "run_tidy: $(command -v "$tidy") over $(echo "$files" | wc -w) file(s)"
status=0
# shellcheck disable=SC2086  # word-splitting the file list is intended
"$tidy" -p "$build_dir" --quiet $files || status=1
exit $status
