// hdiff — command-line front end to the framework.
//
//   hdiff analyze [rfc7230 ...]        documentation-analyzer summary
//   hdiff srs [rfc7230 ...]            list extracted specification reqs
//   hdiff generate [--out FILE]        generate the test corpus (JSON)
//   hdiff run [--corpus FILE] [--json FILE] [--jobs N] [--no-memo]
//                                      full differential run; optionally
//                                      replay a saved corpus / export JSON;
//                                      --jobs shards the chain stage over N
//                                      workers (default: all cores, 1 =
//                                      serial), --no-memo disables the
//                                      observation/verdict caches
//   hdiff audit FRONT BACK             audit one proxy/origin combination
//   hdiff parse IMPL                   parse one raw request from stdin
//                                      under IMPL's model and show HMetrics
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/export.h"
#include "core/hmetrics.h"
#include "corpus/registry.h"
#include "core/hdiff.h"
#include "core/probes.h"
#include "impls/products.h"
#include "report/table.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: hdiff <command> [args]\n"
      "  analyze [docs...]            analyzer summary (default: core six)\n"
      "  srs [docs...]                list extracted SRs\n"
      "  generate [--out FILE]        write the generated corpus as JSON\n"
      "  run [--corpus FILE] [--json FILE] [--jobs N] [--no-memo]\n"
      "                               full differential run (N workers;\n"
      "                               default all cores, 1 = serial)\n"
      "  audit FRONT BACK             audit one proxy/origin pair\n"
      "  parse IMPL                   parse stdin as IMPL (server model)\n");
  return 2;
}

std::vector<std::string_view> doc_args(int argc, char** argv, int from) {
  std::vector<std::string_view> docs;
  for (int i = from; i < argc; ++i) docs.emplace_back(argv[i]);
  return docs;
}

bool write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(out);
}

int cmd_analyze(int argc, char** argv) {
  hdiff::core::DocumentationAnalyzer analyzer;
  auto docs = doc_args(argc, argv, 2);
  auto result = analyzer.analyze(
      docs.empty() ? hdiff::corpus::http_core_documents() : docs);
  hdiff::report::Table t({"metric", "value"});
  t.add_row({"corpus words", std::to_string(result.total_words)});
  t.add_row({"valid sentences", std::to_string(result.total_sentences)});
  t.add_row({"specification requirements", std::to_string(result.srs.size())});
  t.add_row({"converted SR instances",
             std::to_string(result.converted_sr_count)});
  t.add_row({"ABNF rules (adapted)", std::to_string(result.grammar.size())});
  t.add_row({"ABNF candidates parsed",
             std::to_string(result.abnf_stats.parsed_rules)});
  t.add_row({"prose rules resolved",
             std::to_string(result.adapt_report.resolved_prose.size())});
  t.add_row({"unresolved references",
             std::to_string(result.adapt_report.unresolved.size())});
  std::printf("%s", t.render().c_str());
  return 0;
}

int cmd_srs(int argc, char** argv) {
  hdiff::core::DocumentationAnalyzer analyzer;
  auto docs = doc_args(argc, argv, 2);
  auto result = analyzer.analyze(
      docs.empty() ? hdiff::corpus::http_core_documents() : docs);
  for (const auto& sr : result.srs) {
    std::printf("%s  [%.2f %s]  %s\n", sr.id.c_str(), sr.sentiment,
                std::string(to_string(sr.polarity)).c_str(),
                sr.sentence.c_str());
    for (const auto& conv : sr.conversions) {
      std::printf("    -> %s\n", conv.hypothesis.to_string().c_str());
    }
  }
  std::printf("%zu SRs, %zu conversions\n", result.srs.size(),
              result.converted_sr_count);
  return 0;
}

int cmd_generate(int argc, char** argv) {
  std::string out_path;
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }
  hdiff::core::DocumentationAnalyzer analyzer;
  auto analysis = analyzer.analyze(hdiff::corpus::http_core_documents());
  hdiff::core::SrTranslator translator(analysis.grammar);
  auto cases = translator.translate_all(analysis.srs);
  hdiff::core::AbnfTestGen abnf_gen(analysis.grammar);
  auto abnf_cases = abnf_gen.generate();
  auto probes = hdiff::core::verification_probes();
  cases.insert(cases.end(), std::make_move_iterator(abnf_cases.begin()),
               std::make_move_iterator(abnf_cases.end()));
  cases.insert(cases.end(), std::make_move_iterator(probes.begin()),
               std::make_move_iterator(probes.end()));
  std::string json = hdiff::core::export_test_cases_json(cases);
  if (out_path.empty()) {
    std::printf("%s\n", json.c_str());
  } else if (!write_file(out_path, json)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  } else {
    std::printf("wrote %zu test cases to %s\n", cases.size(),
                out_path.c_str());
  }
  return 0;
}

int cmd_run(int argc, char** argv) {
  std::string corpus_path, json_path;
  hdiff::core::ExecutorConfig exec_config;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-memo") == 0) exec_config.memoize = false;
    if (i + 1 >= argc) continue;
    if (std::strcmp(argv[i], "--corpus") == 0) corpus_path = argv[i + 1];
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--jobs") == 0) {
      const long jobs = std::atol(argv[i + 1]);
      if (jobs < 1) {
        std::fprintf(stderr, "--jobs wants a positive integer, got %s\n",
                     argv[i + 1]);
        return 2;
      }
      exec_config.jobs = static_cast<std::size_t>(jobs);
    }
  }

  hdiff::core::PipelineResult result;
  if (!corpus_path.empty()) {
    // Replay a saved corpus instead of regenerating (§V: "we can reuse the
    // test cases for discovering vulnerabilities in more implementations").
    std::ifstream in(corpus_path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::vector<hdiff::core::TestCase> cases;
    if (!in || !hdiff::core::import_test_cases_json(buffer.str(), &cases)) {
      std::fprintf(stderr, "cannot read corpus %s\n", corpus_path.c_str());
      return 1;
    }
    auto fleet = hdiff::impls::make_all_implementations();
    auto chain = hdiff::net::Chain::from_fleet(fleet);
    hdiff::core::ParallelExecutor executor(exec_config);
    result.findings = executor.run(chain, cases, &result.exec_stats);
    result.executed_cases = std::move(cases);
    result.matrix =
        hdiff::core::build_matrix(result.findings, result.executed_cases);
  } else {
    hdiff::core::PipelineConfig config;
    config.executor = exec_config;
    hdiff::core::Pipeline pipeline(config);
    result = pipeline.run();
  }

  hdiff::report::Table t({"product", "HRS", "HoT", "CPDoS"});
  for (const auto& [name, row] : result.matrix.by_impl) {
    t.add_row({name, row.hrs ? "x" : ".", row.hot ? "x" : ".",
               row.cpdos ? "x" : "."});
  }
  std::printf("%s", t.render().c_str());
  std::printf("%zu violations, %zu pairs (HoT %zu), %zu executed cases\n",
              result.findings.violations.size(), result.findings.pairs.size(),
              result.matrix.hot_pairs.size(), result.executed_cases.size());
  std::printf(
      "%zu worker(s); observation memo %.1f%% hits, verdict cache %.1f%% "
      "hits; echo kept %zu / dropped %zu forwards\n",
      result.exec_stats.jobs, 100.0 * result.exec_stats.memo_hit_rate(),
      100.0 * result.exec_stats.verdict_hit_rate(),
      result.exec_stats.echo_records, result.exec_stats.echo_dropped);

  if (!json_path.empty()) {
    if (!write_file(json_path, hdiff::core::export_json(result))) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("findings exported to %s\n", json_path.c_str());
  }
  return 0;
}

int cmd_audit(int argc, char** argv) {
  if (argc < 4) return usage();
  auto front = hdiff::impls::make_implementation(argv[2]);
  auto back = hdiff::impls::make_implementation(argv[3]);
  if (!front || !back || !front->is_proxy() || !back->is_server()) {
    std::fprintf(stderr, "unknown pair %s -> %s\n", argv[2], argv[3]);
    return 1;
  }
  hdiff::net::Chain chain({front.get()}, {back.get()});
  hdiff::core::DetectionEngine engine;
  hdiff::core::DetectionResult total;
  for (const auto& tc : hdiff::core::verification_probes()) {
    hdiff::core::DetectionEngine::accumulate(
        total, engine.evaluate(tc, chain.observe(tc.uuid, tc.raw)));
  }
  bool any = false;
  for (const auto& p : total.pairs) {
    std::printf("[%s] %s->%s: %s\n", std::string(to_string(p.attack)).c_str(),
                p.front.c_str(), p.back.c_str(), p.detail.c_str());
    any = true;
  }
  if (!any) std::printf("no pair-level findings\n");
  return any ? 3 : 0;  // nonzero exit when exposed, for CI gating
}

int cmd_parse(int argc, char** argv) {
  if (argc < 3) return usage();
  auto impl = hdiff::impls::make_implementation(argv[2]);
  if (!impl) {
    std::fprintf(stderr, "unknown implementation %s\n", argv[2]);
    return 1;
  }
  std::stringstream buffer;
  buffer << std::cin.rdbuf();
  std::string raw = buffer.str();
  auto verdict = impl->parse_request(raw);
  auto metrics = hdiff::core::from_verdict("stdin", verdict,
                                           hdiff::core::Stage::kDirect);
  std::printf("%s\n", to_string(metrics).c_str());
  if (!verdict.reason.empty()) {
    std::printf("reason: %s\n", verdict.reason.c_str());
  }
  if (impl->is_proxy()) {
    auto pv = impl->forward_request(raw);
    if (pv.forwarded()) {
      std::printf("-- as proxy, would forward %zu bytes --\n%s\n",
                  pv.forwarded_bytes.size(), pv.forwarded_bytes.c_str());
    } else {
      std::printf("-- as proxy: rejects with %d --\n", pv.status);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string_view cmd = argv[1];
  if (cmd == "analyze") return cmd_analyze(argc, argv);
  if (cmd == "srs") return cmd_srs(argc, argv);
  if (cmd == "generate") return cmd_generate(argc, argv);
  if (cmd == "run") return cmd_run(argc, argv);
  if (cmd == "audit") return cmd_audit(argc, argv);
  if (cmd == "parse") return cmd_parse(argc, argv);
  return usage();
}
