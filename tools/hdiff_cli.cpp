// hdiff — command-line front end to the framework.
//
//   hdiff analyze [rfc7230 ...]        documentation-analyzer summary
//   hdiff srs [rfc7230 ...]            list extracted specification reqs
//   hdiff generate [--out FILE]        generate the test corpus (JSON)
//   hdiff run [--corpus FILE] [--json FILE] [--jobs N] [--no-memo]
//             [--retries N] [--case-deadline-ms N]
//             [--trace-out FILE] [--metrics-out FILE]
//                                      full differential run; optionally
//                                      replay a saved corpus / export JSON;
//                                      --jobs shards the chain stage over N
//                                      workers (default: all cores, 1 =
//                                      serial), --no-memo disables the
//                                      observation/verdict caches,
//                                      --retries/--case-deadline-ms set the
//                                      fault-degradation policy,
//                                      --trace-out writes a Chrome
//                                      trace-event JSON timeline and
//                                      --metrics-out a Prometheus text file
//   hdiff stats [--jobs N]             run the pipeline with metrics enabled
//                                      and print the stage timings and the
//                                      full metrics snapshot
//   hdiff selftest [--fault-plan SPEC] run the pipeline against a
//                                      deliberately faulty fleet and assert
//                                      zero fault-induced false differentials
//   hdiff selftest --trace             run the pipeline with and without
//                                      observability and assert the findings
//                                      are byte-identical
//   hdiff selftest --views             assert the zero-copy view parsers
//                                      (http/view.h) are byte-identical to
//                                      the frozen reference lexer
//   hdiff selftest --net-loop          assert findings are byte-identical
//                                      when live roundtrips go through the
//                                      epoll event loop vs the blocking
//                                      client (--force-poll for the poll
//                                      fallback)
//   hdiff lint [docs...] [--all-corpus] [--jobs N] [--json FILE]
//              [--no-default-waivers]  static spec-lint: grammar analysis
//                                      (left recursion, ambiguity, dead
//                                      branches), SR rule-base consistency,
//                                      and mutation-operator coverage; exit
//                                      0 clean, 3 warnings, 4 errors
//   hdiff campaign run|resume|status|minimize --state-dir DIR
//                  [--rounds N] [--budget N] [--jobs N] [--json FILE]
//                  [--mini] [--no-minimize]
//                                      persistent differential-fuzzing
//                                      campaign (src/campaign): round 0
//                                      executes the one-shot corpus, later
//                                      rounds fire scheduler-allocated
//                                      mutants, novel divergence signatures
//                                      become deduplicated findings, and
//                                      every round ends in a crash-safe
//                                      checkpoint under --state-dir
//   hdiff selftest --campaign          campaign self-test: mini campaign
//                                      into a temp state dir; asserts the
//                                      findings are a superset of a one-shot
//                                      run, every fingerprint is unique, and
//                                      a kill-and-resume run reproduces the
//                                      uninterrupted state byte-identically
//   hdiff selftest --stream            stream self-test: seeded connection-
//                                      level campaign files at least one
//                                      stream-* divergence and state/findings
//                                      stay byte-identical across --jobs
//                                      parallelism and kill-and-resume
//   hdiff serve --state-dir DIR        supervised campaign daemon: rounds
//                  [--shards N] [--port P] [...]
//                  [--metrics-out FILE] [--trace-out FILE]
//                                      sharded over worker OS processes
//                                      (heartbeat liveness, crash restart,
//                                      shard quarantine, durable shard-result
//                                      merge) with an HTTP control plane
//                                      (/healthz /readyz /status /metrics
//                                      /events, POST /campaigns/:id/stop) and
//                                      graceful SIGTERM/SIGINT drain to exit
//                                      0; worker metrics/trace snapshots ride
//                                      the shard results and merge into one
//                                      fleet exposition / stitched trace
//   hdiff tail --port P                live dashboard: poll a daemon's
//                  [--interval-ms N] [--once]
//                                      /status and /events and render round
//                                      progress, worker health, and
//                                      lifecycle events
//   hdiff selftest --serve             chaos proof: supervisor state and
//                                      findings byte-identical to the
//                                      single-process engine under worker
//                                      SIGKILLs, a hang, and drain + resume
//   hdiff selftest --serve-soak        /healthz never unready > 2 heartbeat
//                  [--seconds N]       intervals under continuous random
//                                      worker SIGKILLs
//   hdiff audit FRONT BACK             audit one proxy/origin combination
//   hdiff parse IMPL                   parse one raw request from stdin
//                                      under IMPL's model and show HMetrics
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include <filesystem>
#include <unistd.h>

#include "analysis/lint.h"
#include "campaign/engine.h"
#include "campaign/fingerprint.h"
#include "campaign/store.h"
#include "core/export.h"
#include "core/hmetrics.h"
#include "corpus/registry.h"
#include "core/hdiff.h"
#include "core/probes.h"
#include "http/chunked.h"
#include "http/lexer.h"
#include "http/reference.h"
#include "http/response.h"
#include "http/view.h"
#include "impls/products.h"
#include "net/event_loop.h"
#include "net/fault.h"
#include "net/live.h"
#include "net/tcp.h"
#include "obs/obs.h"
#include "report/table.h"
#include "serve/flight.h"
#include "serve/supervisor.h"
#include "serve/worker.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: hdiff <command> [args]\n"
      "  analyze [docs...]            analyzer summary (default: core six)\n"
      "  srs [docs...]                list extracted SRs\n"
      "  generate [--out FILE]        write the generated corpus as JSON\n"
      "  run [--corpus FILE] [--json FILE] [--jobs N] [--no-memo]\n"
      "      [--retries N] [--case-deadline-ms N]\n"
      "      [--trace-out FILE] [--metrics-out FILE]\n"
      "                               full differential run (N workers;\n"
      "                               default all cores, 1 = serial);\n"
      "                               --trace-out writes a Chrome trace-event\n"
      "                               timeline, --metrics-out a Prometheus\n"
      "                               text snapshot\n"
      "  stats [--jobs N]             run with metrics enabled and print the\n"
      "                               stage timings and metrics snapshot\n"
      "  selftest [--fault-plan SPEC] [--jobs N] [--retries N]\n"
      "                               fault-plan self-test: run the chain\n"
      "                               against deliberately faulty models and\n"
      "                               assert zero false differentials\n"
      "                               (SPEC: rate=0.3,seed=1,max=1,nth=0,\n"
      "                               delay=1,kinds=reset+truncate+connect)\n"
      "  selftest --trace [--jobs N]  observability self-test: assert\n"
      "                               findings are byte-identical with\n"
      "                               tracing/metrics on and off\n"
      "  selftest --views             zero-copy parity self-test: assert the\n"
      "                               view-backed parsers are byte-identical\n"
      "                               to the frozen reference lexer over\n"
      "                               probes + deterministic fuzz mutants\n"
      "  selftest --net-loop [--jobs N] [--force-poll]\n"
      "                               live-transport self-test: assert\n"
      "                               findings are byte-identical with\n"
      "                               --net-loop on (epoll event loop, or\n"
      "                               poll via --force-poll) and off\n"
      "                               (blocking roundtrips)\n"
      "  lint [docs...] [--all-corpus] [--jobs N] [--json FILE]\n"
      "       [--no-default-waivers]  static spec-lint over the extracted\n"
      "                               grammar, the SR rule base, and the\n"
      "                               mutation operators; exit 0 = clean,\n"
      "                               3 = unwaived warnings, 4 = errors\n"
      "  selftest --campaign          campaign self-test: superset of the\n"
      "                               one-shot findings, fingerprint dedup,\n"
      "                               and byte-identical kill-and-resume\n"
      "  selftest --stream [--jobs N] stream self-test: seeded connection-\n"
      "                               level campaign files at least one\n"
      "                               stream-* finding and stays\n"
      "                               byte-identical across --jobs and\n"
      "                               kill-and-resume\n"
      "  selftest --serve [--jobs N]  daemon self-test: assert the sharded\n"
      "                               supervisor's findings are byte-identical\n"
      "                               to the single-process engine under\n"
      "                               worker SIGKILLs, a hang, and a\n"
      "                               control-plane drain + resume\n"
      "  selftest --serve-soak [--seconds N] [--jobs N]\n"
      "                               soak: random worker SIGKILLs for N s\n"
      "                               (default 60) asserting /healthz never\n"
      "                               stays unready > 2 heartbeat intervals\n"
      "  campaign run|resume|status|minimize --state-dir DIR\n"
      "           [--rounds N] [--budget N] [--jobs N] [--json FILE]\n"
      "           [--mini] [--no-minimize] [--no-coverage] [--streams]\n"
      "                               persistent fuzzing campaign with\n"
      "                               divergence-feedback + grammar-coverage\n"
      "                               scheduling (--no-coverage disables the\n"
      "                               static coverage map), finding dedup,\n"
      "                               delta-debug minimized corpus growth\n"
      "                               and checkpoint/resume; --streams adds\n"
      "                               connection-level request-stream fuzzing\n"
      "                               (splice/reorder/duplicate/drop arms)\n"
      "  serve --state-dir DIR [--rounds N] [--budget N] [--jobs N]\n"
      "        [--shards N] [--port P] [--port-file FILE] [--mini]\n"
      "        [--no-minimize] [--no-coverage] [--streams]\n"
      "        [--heartbeat-ms N] [--quarantine-after K]\n"
      "        [--in-process] [--metrics-out FILE] [--trace-out FILE]\n"
      "                               supervised campaign daemon: sharded\n"
      "                               worker processes, crash restart with\n"
      "                               backoff, shard quarantine, HTTP control\n"
      "                               plane (/healthz /readyz /status\n"
      "                               /metrics /events,\n"
      "                               POST /campaigns/:id/stop), graceful\n"
      "                               SIGTERM/SIGINT drain; --metrics-out\n"
      "                               dumps the merged fleet exposition and\n"
      "                               --trace-out the stitched supervisor +\n"
      "                               worker Chrome trace on exit\n"
      "  tail --port P [--interval-ms N] [--once]\n"
      "                               live dashboard over a running daemon:\n"
      "                               poll /status + /events and render round\n"
      "                               progress, per-worker health, novelty\n"
      "                               rates, and new lifecycle events\n"
      "  audit FRONT BACK             audit one proxy/origin pair\n"
      "  parse IMPL                   parse stdin as IMPL (server model)\n");
  return 2;
}

std::vector<std::string_view> doc_args(int argc, char** argv, int from) {
  std::vector<std::string_view> docs;
  for (int i = from; i < argc; ++i) docs.emplace_back(argv[i]);
  return docs;
}

bool write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(out);
}

int cmd_analyze(int argc, char** argv) {
  hdiff::core::DocumentationAnalyzer analyzer;
  auto docs = doc_args(argc, argv, 2);
  auto result = analyzer.analyze(
      docs.empty() ? hdiff::corpus::http_core_documents() : docs);
  hdiff::report::Table t({"metric", "value"});
  t.add_row({"corpus words", std::to_string(result.total_words)});
  t.add_row({"valid sentences", std::to_string(result.total_sentences)});
  t.add_row({"specification requirements", std::to_string(result.srs.size())});
  t.add_row({"converted SR instances",
             std::to_string(result.converted_sr_count)});
  t.add_row({"ABNF rules (adapted)", std::to_string(result.grammar.size())});
  t.add_row({"ABNF candidates parsed",
             std::to_string(result.abnf_stats.parsed_rules)});
  t.add_row({"prose rules resolved",
             std::to_string(result.adapt_report.resolved_prose.size())});
  t.add_row({"unresolved references",
             std::to_string(result.adapt_report.unresolved.size())});
  std::printf("%s", t.render().c_str());
  return 0;
}

int cmd_srs(int argc, char** argv) {
  hdiff::core::DocumentationAnalyzer analyzer;
  auto docs = doc_args(argc, argv, 2);
  auto result = analyzer.analyze(
      docs.empty() ? hdiff::corpus::http_core_documents() : docs);
  for (const auto& sr : result.srs) {
    std::printf("%s  [%.2f %s]  %s\n", sr.id.c_str(), sr.sentiment,
                std::string(to_string(sr.polarity)).c_str(),
                sr.sentence.c_str());
    for (const auto& conv : sr.conversions) {
      std::printf("    -> %s\n", conv.hypothesis.to_string().c_str());
    }
  }
  std::printf("%zu SRs, %zu conversions\n", result.srs.size(),
              result.converted_sr_count);
  return 0;
}

int cmd_generate(int argc, char** argv) {
  std::string out_path;
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }
  hdiff::core::DocumentationAnalyzer analyzer;
  auto analysis = analyzer.analyze(hdiff::corpus::http_core_documents());
  hdiff::core::SrTranslator translator(analysis.grammar);
  auto cases = translator.translate_all(analysis.srs);
  hdiff::core::AbnfTestGen abnf_gen(analysis.grammar);
  auto abnf_cases = abnf_gen.generate();
  auto probes = hdiff::core::verification_probes();
  cases.insert(cases.end(), std::make_move_iterator(abnf_cases.begin()),
               std::make_move_iterator(abnf_cases.end()));
  cases.insert(cases.end(), std::make_move_iterator(probes.begin()),
               std::make_move_iterator(probes.end()));
  std::string json = hdiff::core::export_test_cases_json(cases);
  if (out_path.empty()) {
    std::printf("%s\n", json.c_str());
  } else if (!write_file(out_path, json)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  } else {
    std::printf("wrote %zu test cases to %s\n", cases.size(),
                out_path.c_str());
  }
  return 0;
}

/// Entry points of the generator: every default generation target plus the
/// whole-message rule.  Rules outside these cones are reported as GL007.
std::vector<std::string> lint_roots() {
  std::vector<std::string> roots{"http-message"};
  for (const auto& target : hdiff::core::default_abnf_targets()) {
    roots.push_back(target.rule);
  }
  return roots;
}

hdiff::analysis::LintResult lint_grammar_and_rules(
    const hdiff::abnf::Grammar& grammar, std::size_t jobs,
    bool use_default_waivers, hdiff::obs::Observability ob = {}) {
  hdiff::analysis::LintOptions options;
  options.jobs = jobs;
  options.grammar.roots = lint_roots();
  options.use_default_corpus_waivers = use_default_waivers;
  options.obs = ob;
  return hdiff::analysis::run_lint(grammar, hdiff::core::make_builtin_rules(),
                                   options);
}

int cmd_run(int argc, char** argv) {
  std::string corpus_path, json_path, trace_path, metrics_path;
  hdiff::core::ExecutorConfig exec_config;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-memo") == 0) exec_config.memoize = false;
    if (i + 1 >= argc) continue;
    if (std::strcmp(argv[i], "--corpus") == 0) corpus_path = argv[i + 1];
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--trace-out") == 0) trace_path = argv[i + 1];
    if (std::strcmp(argv[i], "--metrics-out") == 0) metrics_path = argv[i + 1];
    if (std::strcmp(argv[i], "--jobs") == 0) {
      const long jobs = std::atol(argv[i + 1]);
      if (jobs < 1) {
        std::fprintf(stderr, "--jobs wants a positive integer, got %s\n",
                     argv[i + 1]);
        return 2;
      }
      exec_config.jobs = static_cast<std::size_t>(jobs);
    }
    if (std::strcmp(argv[i], "--retries") == 0) {
      const long retries = std::atol(argv[i + 1]);
      if (retries < 1) {
        std::fprintf(stderr, "--retries wants a positive integer, got %s\n",
                     argv[i + 1]);
        return 2;
      }
      exec_config.retry.attempts = static_cast<int>(retries);
    }
    if (std::strcmp(argv[i], "--case-deadline-ms") == 0) {
      const long deadline = std::atol(argv[i + 1]);
      if (deadline < 0) {
        std::fprintf(stderr,
                     "--case-deadline-ms wants a non-negative integer, got %s\n",
                     argv[i + 1]);
        return 2;
      }
      exec_config.retry.case_deadline_ms = static_cast<int>(deadline);
    }
  }

  // Observability is opt-in per flag: --trace-out enables the span
  // timeline, --metrics-out the metrics registry.  Both stay null (near
  // zero overhead, byte-identical findings) when the flags are absent.
  hdiff::obs::Registry registry;
  hdiff::obs::TraceSink sink;
  hdiff::obs::Observability ob;
  if (!metrics_path.empty()) ob.metrics = &registry;
  if (!trace_path.empty()) ob.trace = &sink;

  hdiff::core::PipelineResult result;
  if (!corpus_path.empty()) {
    // Replay a saved corpus instead of regenerating (§V: "we can reuse the
    // test cases for discovering vulnerabilities in more implementations").
    std::ifstream in(corpus_path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::vector<hdiff::core::TestCase> cases;
    if (!in || !hdiff::core::import_test_cases_json(buffer.str(), &cases)) {
      std::fprintf(stderr, "cannot read corpus %s\n", corpus_path.c_str());
      return 1;
    }
    auto fleet = hdiff::impls::make_all_implementations();
    auto chain = hdiff::net::Chain::from_fleet(fleet);
    exec_config.obs = ob;
    hdiff::core::ParallelExecutor executor(exec_config);
    result.findings = executor.run(chain, cases, &result.exec_stats);
    result.executed_cases = std::move(cases);
    result.matrix =
        hdiff::core::build_matrix(result.findings, result.executed_cases);
  } else {
    hdiff::core::PipelineConfig config;
    config.executor = exec_config;
    config.obs = ob;  // the pipeline propagates this to the executor
    hdiff::core::Pipeline pipeline(config);
    result = pipeline.run();
  }

  hdiff::report::Table t({"product", "HRS", "HoT", "CPDoS"});
  for (const auto& [name, row] : result.matrix.by_impl) {
    t.add_row({name, row.hrs ? "x" : ".", row.hot ? "x" : ".",
               row.cpdos ? "x" : "."});
  }
  std::printf("%s", t.render().c_str());
  std::printf("%zu violations, %zu pairs (HoT %zu), %zu executed cases\n",
              result.findings.violations.size(), result.findings.pairs.size(),
              result.matrix.hot_pairs.size(), result.executed_cases.size());
  std::printf(
      "%zu worker(s); observation memo %.1f%% hits, verdict cache %.1f%% "
      "hits; echo kept %zu / dropped %zu forwards\n",
      result.exec_stats.jobs, 100.0 * result.exec_stats.memo_hit_rate(),
      100.0 * result.exec_stats.verdict_hit_rate(),
      result.exec_stats.echo_records, result.exec_stats.echo_dropped);
  if (result.exec_stats.faulted_attempts > 0 ||
      result.exec_stats.quarantined_cases > 0) {
    std::printf(
        "harness faults: %zu faulted attempt(s), %zu retried, %zu case(s) "
        "recovered, %zu quarantined\n",
        result.exec_stats.faulted_attempts, result.exec_stats.retry_attempts,
        result.exec_stats.recovered_cases,
        result.exec_stats.quarantined_cases);
    for (const auto& q : result.exec_stats.quarantined) {
      std::printf("  quarantined %s after %zu attempt(s): %s (%s)\n",
                  q.uuid.c_str(), q.attempts,
                  std::string(to_string(q.error)).c_str(), q.detail.c_str());
    }
  }

  if (!json_path.empty()) {
    hdiff::core::ExportOptions export_options;
    // Replay runs carry no analyzer grammar; the lint block is only
    // meaningful (and only emitted) for full pipeline runs.
    if (result.analysis.grammar.size() > 0) {
      export_options.lint_json = hdiff::analysis::lint_json(
          lint_grammar_and_rules(result.analysis.grammar, exec_config.jobs,
                                 /*use_default_waivers=*/true, ob));
    }
    if (!write_file(json_path,
                    hdiff::core::export_json(result, export_options))) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("findings exported to %s\n", json_path.c_str());
  }
  // Safe to render here: the executor joined its workers before returning.
  if (!trace_path.empty()) {
    if (!write_file(trace_path, sink.render_chrome_json())) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("trace written to %s (%zu events)\n", trace_path.c_str(),
                sink.event_count());
  }
  if (!metrics_path.empty()) {
    if (!write_file(metrics_path, hdiff::obs::render_prometheus(registry))) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}

// ---- stats: pipeline run with the metrics layer on, snapshot printed ------

int cmd_stats(int argc, char** argv) {
  hdiff::core::PipelineConfig config;
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      config.executor.jobs =
          static_cast<std::size_t>(std::max(1L, std::atol(argv[i + 1])));
    }
  }
  hdiff::obs::Registry registry;
  config.obs.metrics = &registry;
  hdiff::core::Pipeline pipeline(config);
  hdiff::core::PipelineResult result = pipeline.run();

  hdiff::report::Table stages({"stage", "ms"});
  for (const auto& st : result.stage_timings) {
    char ms[32];
    std::snprintf(ms, sizeof ms, "%.2f",
                  static_cast<double>(st.micros) / 1000.0);
    stages.add_row({st.stage, ms});
  }
  std::printf("%s", stages.render().c_str());

  const hdiff::obs::Registry::Snapshot snap = registry.snapshot();
  hdiff::report::Table scalars({"metric", "value"});
  for (const auto& [name, v] : snap.counters) {
    scalars.add_row({name, std::to_string(v)});
  }
  for (const auto& [name, v] : snap.gauges) {
    scalars.add_row({name, std::to_string(v)});
  }
  std::printf("%s", scalars.render().c_str());

  hdiff::report::Table hists({"histogram", "count", "p50us", "p90us", "p99us"});
  for (const auto& h : snap.histograms) {
    char p50[32], p90[32], p99[32];
    std::snprintf(p50, sizeof p50, "%.0f", h.p50);
    std::snprintf(p90, sizeof p90, "%.0f", h.p90);
    std::snprintf(p99, sizeof p99, "%.0f", h.p99);
    hists.add_row({h.name, std::to_string(h.count), p50, p90, p99});
  }
  std::printf("%s", hists.render().c_str());
  std::printf("%zu violations, %zu pairs, %zu executed cases\n",
              result.findings.violations.size(), result.findings.pairs.size(),
              result.executed_cases.size());
  return 0;
}

// ---- selftest: fault-plan self-test (graceful-degradation proof) ----------

/// Parse "rate=0.3,seed=7,max=1,nth=0,delay=1,kinds=reset+truncate" into a
/// FaultPlanConfig.  Unknown keys are rejected.
bool parse_fault_plan(std::string_view spec,
                      hdiff::net::FaultPlanConfig* out) {
  std::stringstream ss{std::string(spec)};
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "rate") {
      out->rate = std::atof(value.c_str());
    } else if (key == "seed") {
      out->seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (key == "max") {
      out->max_faults_per_site =
          static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (key == "nth") {
      out->every_nth = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (key == "delay") {
      out->delay_ms = std::atoi(value.c_str());
    } else if (key == "kinds") {
      out->kinds.clear();
      std::stringstream ks{value};
      std::string kind;
      while (std::getline(ks, kind, '+')) {
        if (kind == "reset") out->kinds.push_back(hdiff::net::FaultKind::kReset);
        else if (kind == "truncate")
          out->kinds.push_back(hdiff::net::FaultKind::kTruncate);
        else if (kind == "connect")
          out->kinds.push_back(hdiff::net::FaultKind::kConnectFail);
        else if (kind == "stall")
          out->kinds.push_back(hdiff::net::FaultKind::kStall);
        else if (kind == "delay")
          out->kinds.push_back(hdiff::net::FaultKind::kDelay);
        else return false;
      }
      if (out->kinds.empty()) return false;
    } else {
      return false;
    }
  }
  return true;
}

std::set<std::string> pair_keys(const hdiff::core::DetectionResult& r) {
  std::set<std::string> keys;
  for (const auto& p : r.pairs) {
    keys.insert(p.front + "|" + p.back + "|" +
                std::string(to_string(p.attack)));
  }
  return keys;
}

std::set<std::string> violation_keys(const hdiff::core::DetectionResult& r) {
  std::set<std::string> keys;
  for (const auto& v : r.violations) keys.insert(v.impl + "|" + v.sr_id);
  return keys;
}

bool findings_identical(const hdiff::core::DetectionResult& a,
                        const hdiff::core::DetectionResult& b) {
  if (a.violations.size() != b.violations.size() ||
      a.pairs.size() != b.pairs.size())
    return false;
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    if (a.violations[i].impl != b.violations[i].impl ||
        a.violations[i].sr_id != b.violations[i].sr_id ||
        a.violations[i].uuid != b.violations[i].uuid ||
        a.violations[i].detail != b.violations[i].detail)
      return false;
  }
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    if (a.pairs[i].front != b.pairs[i].front ||
        a.pairs[i].back != b.pairs[i].back ||
        a.pairs[i].attack != b.pairs[i].attack ||
        a.pairs[i].uuid != b.pairs[i].uuid ||
        a.pairs[i].detail != b.pairs[i].detail)
      return false;
  }
  return a.discrepancies.status_disagreements ==
             b.discrepancies.status_disagreements &&
         a.discrepancies.host_disagreements ==
             b.discrepancies.host_disagreements &&
         a.discrepancies.body_disagreements ==
             b.discrepancies.body_disagreements &&
         a.discrepancies.inputs_with_discrepancy ==
             b.discrepancies.inputs_with_discrepancy &&
         a.vector_hits == b.vector_hits;
}

/// `selftest --trace`: prove observability never perturbs findings.  Runs
/// the pipeline once with obs fully off and once with tracing + metrics
/// fully on, and asserts the findings are byte-identical (the obs layer
/// only reads).  Also sanity-checks that the traced run actually produced
/// per-stage spans and executor metrics.
int selftest_trace(hdiff::core::PipelineConfig config) {
  hdiff::core::Pipeline baseline_pipeline(config);
  std::printf("obs-off reference run...\n");
  hdiff::core::PipelineResult baseline = baseline_pipeline.run();

  hdiff::obs::Registry registry;
  hdiff::obs::TraceSink sink;
  config.obs.metrics = &registry;
  config.obs.trace = &sink;
  hdiff::core::Pipeline traced_pipeline(config);
  std::printf("traced run (metrics + spans)...\n");
  hdiff::core::PipelineResult traced = traced_pipeline.run();

  if (!findings_identical(baseline.findings, traced.findings)) {
    std::printf("selftest FAILED: findings differ with observability on\n");
    return 1;
  }
  const std::string trace_json = sink.render_chrome_json();
  std::size_t missing = 0;
  for (const char* span : {"\"analyze\"", "\"differential\"", "\"case\"",
                           "\"send->proxy\"", "\"direct\""}) {
    if (trace_json.find(span) == std::string::npos) {
      std::printf("selftest FAILED: trace has no %s span\n", span);
      ++missing;
    }
  }
  if (registry.counter("hdiff_executor_cases_total").value() !=
      traced.exec_stats.cases) {
    std::printf("selftest FAILED: hdiff_executor_cases_total != cases run\n");
    ++missing;
  }
  if (missing > 0) return 1;
  std::printf(
      "selftest PASSED: findings byte-identical with observability on and "
      "off (%zu trace events, %zu cases)\n",
      sink.event_count(), traced.exec_stats.cases);
  return 0;
}

// ---- selftest --views: view-parse vs frozen-reference parity --------------
//
// The owned lexers are now thin materializing wrappers over the zero-copy
// view parsers (http/view.h); http::reference keeps a verbatim copy of the
// pre-view implementation as a differential oracle.  This self-test drives
// a corpus of handcrafted edge cases, the Table II probe set, and
// deterministic fuzz mutants through both and asserts every observable
// field is byte-identical.

void append_escaped(std::string& out, std::string_view s) {
  for (unsigned char c : s) {
    if (c >= 0x20 && c < 0x7f && c != '\\') {
      out += static_cast<char>(c);
    } else {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\x%02x", c);
      out += buf;
    }
  }
}

std::string dump_headers(const std::vector<hdiff::http::RawHeader>& headers) {
  std::string out;
  for (const auto& h : headers) {
    out += "  [";
    append_escaped(out, h.name);
    out += "|";
    append_escaped(out, h.value);
    out += "|";
    append_escaped(out, h.raw_line);
    out += "|" + hdiff::http::describe_anomalies(h.anomalies) + "|" +
           h.normalized_name() + "]\n";
  }
  return out;
}

std::string dump_request(const hdiff::http::RawRequest& r) {
  std::string out = "line[";
  append_escaped(out, r.line.method_token);
  out += "|";
  append_escaped(out, r.line.target);
  out += "|";
  append_escaped(out, r.line.version_token);
  out += "|";
  append_escaped(out, r.line.raw);
  out += "|" + hdiff::http::describe_anomalies(r.line.anomalies) + "]\n";
  out += dump_headers(r.headers);
  out += "after[";
  append_escaped(out, r.after_headers);
  out += "] anomalies=" + hdiff::http::describe_anomalies(r.anomalies);
  return out;
}

std::string dump_response(const hdiff::http::RawResponse& r) {
  std::string out = "status[" + hdiff::http::to_string(r.version) + "|" +
                    std::to_string(r.status) + "|";
  append_escaped(out, r.reason);
  out += "]\n";
  out += dump_headers(r.headers);
  out += "after[";
  append_escaped(out, r.after_headers);
  out += "] anomalies=" + hdiff::http::describe_anomalies(r.anomalies);
  return out;
}

std::string dump_framing(const hdiff::http::ResponseFraming& f) {
  std::string out = "has_body=" + std::to_string(f.has_body) +
                    " chunked=" + std::to_string(f.chunked) + " cl=";
  out += f.content_length ? std::to_string(*f.content_length) : "-";
  out += " until_close=" + std::to_string(f.until_close);
  return out;
}

std::string dump_framed(const hdiff::http::FramedResponse& f) {
  std::string out = dump_response(f.head) + "\nbody[";
  append_escaped(out, f.body);
  out += "] leftover[";
  append_escaped(out, f.leftover);
  out += "] complete=" + std::to_string(f.complete) +
         " interim=" + std::to_string(f.interim);
  return out;
}

std::string dump_chunk(const hdiff::http::ChunkResult& c) {
  std::string out = "ok=" + std::to_string(c.ok) +
                    " incomplete=" + std::to_string(c.incomplete) +
                    " overflow=" + std::to_string(c.size_overflowed) +
                    " nul=" + std::to_string(c.saw_nul) + " body[";
  append_escaped(out, c.body);
  out += "] leftover[";
  append_escaped(out, c.leftover);
  out += "] error[" + c.error + "] sizes=";
  for (auto s : c.chunk_sizes) out += std::to_string(s) + ",";
  return out;
}

std::vector<std::string> view_parity_corpus() {
  std::vector<std::string> corpus = {
      "",
      "\r\n",
      "GET / HTTP/1.1\r\nHost: a\r\n\r\n",
      "GET /\xe2\x80\xa8/u HTTP/1.1\r\nHost: a\r\n\r\n",  // unicode splice
      "POST / HTTP/1.1\r\nHost: a\r\nContent-Length: 5\r\n\r\nhello",
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n0\r\n\r\nGET /next HTTP/1.1\r\n\r\n",
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5;ext=1\r\nhello\r\n0\r\nTrailer: t\r\n\r\n",
      "GET / HTTP/1.1\nHost: bare-lf\n\n",
      "GET / HTTP/1.1\r\nHost: a\r\n Folded: continuation\r\n\r\n",
      "GET / HTTP/1.1\r\nX: first\r\n\tsecond\r\n\tthird\r\n\r\n",
      "GET / HTTP/1.1\r\nBad Name: v\r\nName : ws-colon\r\n\r\n",
      "GET / HTTP/1.1\r\nNoColonHere\r\n: emptyname\r\n\r\n",
      "GET  /  HTTP/1.1 extra parts\r\n\r\n",
      "GET /\r\n\r\n",              // 0.9 form
      "GET / HTTP/9.9.9\r\n\r\n",   // malformed version
      "GET / HTTP/1.1\r\nTrunc",    // truncated headers
      std::string("GET /\0nul HTTP/1.1\r\nH: a\0b\r\n\r\n", 33),
      "GET /\x80\xff HTTP/1.1\r\nH\x81: v\xfe\r\n\r\n",
      "GET / HTTP/1.1\r\nCr\rinside: v\r\n\r\n",
      "HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nabcDEF",
      "HTTP/1.1 100 Continue\r\n\r\nHTTP/1.1 200 OK\r\n"
      "Content-Length: 0\r\n\r\n",
      "HTTP/1.1 204 No Content\r\nContent-Length: 9\r\n\r\nleftover!",
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\n\r\nrest",
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: gzip, chunked\r\n\r\n"
      "0\r\n\r\n",
      "HTTP/1.1 200 OK\r\nFolded:\r\n chunked\r\n\r\nbody",
      "HTTP/1.1 304 Not Modified\r\n\r\n",
      "HTTP/2.0 200 OK\r\n\r\nuntil-close body",
      "NOTHTTP 200 OK\r\n\r\n",
      "5\r\nhello\r\n0\r\n\r\n",   // bare chunked stream
      "5\r\nhel\0o\r\n0\r\n\r\n",  // NUL in chunk-data
      "ff5\r\nshort\r\n",          // incomplete chunk
      "zz\r\njunk\r\n0\r\n\r\n",   // bad size line
      "ffffffffffffffffffff\r\nx\r\n0\r\n\r\n",  // size overflow
  };
  for (const hdiff::core::TestCase& tc : hdiff::core::verification_probes()) {
    corpus.push_back(tc.raw);
  }
  // Deterministic fuzz mutants: splice random edits into the handcrafted
  // templates with a fixed LCG, so every run exercises the same inputs.
  const std::size_t templates = corpus.size();
  std::uint64_t state = 0x5deece66dull;
  const auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state >> 33);
  };
  const char alphabet[] = "\r\n\t :;,/\x00\x80\xff\x0bGEThost01af";
  for (int i = 0; i < 600; ++i) {
    std::string m = corpus[next() % templates];
    const int edits = 1 + static_cast<int>(next() % 4);
    for (int e = 0; e < edits; ++e) {
      const char c = alphabet[next() % (sizeof alphabet - 1)];
      switch (next() % 3) {
        case 0:  // replace
          if (!m.empty()) m[next() % m.size()] = c;
          break;
        case 1:  // insert
          m.insert(m.begin() + static_cast<long>(next() % (m.size() + 1)), c);
          break;
        default:  // delete
          if (!m.empty()) m.erase(next() % m.size(), 1);
          break;
      }
    }
    corpus.push_back(std::move(m));
  }
  for (int i = 0; i < 100; ++i) {  // pure-random byte soup
    std::string m(next() % 160, '\0');
    for (char& c : m) c = static_cast<char>(next() % 256);
    corpus.push_back(std::move(m));
  }
  return corpus;
}

int selftest_views() {
  namespace http = hdiff::http;
  namespace ref = hdiff::http::reference;
  const std::vector<std::string> corpus = view_parity_corpus();
  const std::vector<http::ChunkPolicy> policies = {
      {},
      {.nul_terminates_body = true},
      {.lenient_size_line = true,
       .require_crlf_after_data = false,
       .allow_bare_lf = true},
      {.wrapping_size = true, .wrap_bits = 16, .reject_nul_in_data = true},
  };
  std::size_t checks = 0;
  std::size_t failures = 0;
  const auto expect = [&](bool ok, const char* what, const std::string& in,
                          const std::string& got, const std::string& want) {
    ++checks;
    if (ok) return;
    ++failures;
    if (failures > 8) return;  // keep the report readable
    std::string shown;
    append_escaped(shown, std::string_view(in).substr(0, 96));
    std::printf("MISMATCH %s on input [%s]\n--- view-backed:\n%s\n"
                "--- reference:\n%s\n",
                what, shown.c_str(), got.c_str(), want.c_str());
  };
  std::string scratch;
  for (const std::string& in : corpus) {
    const http::RawRequest want_req = ref::lex_request(in);
    {
      const std::string got = dump_request(http::lex_request(in));
      const std::string want = dump_request(want_req);
      expect(got == want, "lex_request", in, got, want);
    }
    expect(http::sniff_method(in) ==
               http::method_from_token(want_req.line.method_token),
           "sniff_method", in, std::string(http::to_string(
                                   http::sniff_method(in))),
           want_req.line.method_token);
    {
      const std::string got = dump_response(http::lex_response(in));
      const std::string want = dump_response(ref::lex_response(in));
      expect(got == want, "lex_response", in, got, want);
    }
    for (http::Method m : {http::Method::kGet, http::Method::kHead}) {
      const hdiff::http::FramedResponse want_framed =
          ref::frame_first_response(in, m);
      {
        const std::string got = dump_framed(http::frame_first_response(in, m));
        const std::string want = dump_framed(want_framed);
        expect(got == want, "frame_first_response", in, got, want);
      }
      {
        http::ResponseView view;
        http::parse_response_view(in, view);
        const std::string got =
            dump_framing(http::response_framing(view, m, scratch));
        const std::string want =
            dump_framing(ref::response_framing(ref::lex_response(in), m));
        expect(got == want, "response_framing(view)", in, got, want);
      }
      expect(http::probe_first_response(in, m).complete == want_framed.complete,
             "probe_first_response", in,
             std::to_string(http::probe_first_response(in, m).complete),
             std::to_string(want_framed.complete));
    }
    for (const http::ChunkPolicy& policy : policies) {
      const std::string got = dump_chunk(http::decode_chunked(in, policy));
      const std::string want = dump_chunk(ref::decode_chunked(in, policy));
      expect(got == want, "decode_chunked", in, got, want);
    }
  }
  if (failures > 0) {
    std::printf("selftest FAILED: %zu/%zu view-parity checks diverged\n",
                failures, checks);
    return 1;
  }
  std::printf(
      "selftest PASSED: view parse byte-identical to the reference lexer "
      "(%zu inputs, %zu checks)\n",
      corpus.size(), checks);
  return 0;
}

// ---- selftest --net-loop: blocking vs event-loop finding identity ---------

std::string dump_observation(const hdiff::net::ChainObservation& obs) {
  std::string out = "fault=" +
                    std::string(hdiff::net::to_string(obs.fault)) + "\n";
  for (const auto& [name, v] : obs.direct) {
    out += name + ": impl=" + v.impl + " status=" + std::to_string(v.status) +
           " incomplete=" + std::to_string(v.incomplete) +
           " framing=" + std::string(hdiff::impls::to_string(v.framing)) +
           " host=" + v.host + " close=" + std::to_string(v.close_connection) +
           " body[";
    append_escaped(out, v.body);
    out += "] leftover[";
    append_escaped(out, v.leftover);
    out += "]\n";
  }
  return out;
}

int selftest_netloop(std::size_t jobs, bool force_poll) {
  namespace net = hdiff::net;
  namespace core = hdiff::core;
  if (jobs == 0) jobs = 2;

  const auto fleet = hdiff::impls::make_all_implementations();
  std::vector<const hdiff::impls::HttpImplementation*> backends;
  for (const auto& impl : fleet) {
    if (impl->is_server()) backends.push_back(impl.get());
  }
  std::vector<core::TestCase> cases = core::verification_probes();
  if (cases.size() > 48) cases.resize(48);

  net::RetryPolicy transport;
  transport.attempts = 3;
  transport.backoff_base_ms = 1;
  transport.backoff_max_ms = 20;

  // One pass per mode: observe the corpus directly (observation digests)
  // and through the executor batch seam (findings).
  const auto run_mode = [&](net::NetLoopMode mode, bool poll_fallback,
                            std::vector<std::string>& digests,
                            core::DetectionResult& findings) {
    net::LiveFleetConfig config;
    config.mode = mode;
    config.force_poll = poll_fallback;
    config.server_concurrency = static_cast<int>(std::min<std::size_t>(
        jobs * 2, 8));
    net::LiveFleet live(backends, config);

    std::vector<net::LiveCase> live_cases;
    live_cases.reserve(cases.size());
    for (const core::TestCase& tc : cases) {
      live_cases.push_back(net::LiveCase{tc.uuid, tc.raw});
    }
    for (const net::ChainObservation& obs :
         live.observe_batch(live_cases, transport)) {
      digests.push_back(dump_observation(obs));
    }

    core::ExecutorConfig ec;
    ec.jobs = jobs;
    ec.batch_size = 16;
    ec.observe_batch = [&live, &transport](const core::TestCase* block,
                                           std::size_t n,
                                           std::vector<net::ChainObservation>&
                                               out) {
      std::vector<net::LiveCase> batch;
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(net::LiveCase{block[i].uuid, block[i].raw});
      }
      for (net::ChainObservation& obs : live.observe_batch(batch, transport)) {
        out.push_back(std::move(obs));
      }
    };
    const net::Chain chain({}, {}, {});  // transport comes from the hook
    const core::ParallelExecutor executor(ec);
    findings = executor.run(chain, cases);
    return live.loop_enabled();
  };

  std::vector<std::string> off_digests;
  std::vector<std::string> on_digests;
  core::DetectionResult off_findings;
  core::DetectionResult on_findings;
  std::printf("blocking-client run (--net-loop off, %zu cases x %zu "
              "backends)...\n",
              cases.size(), backends.size());
  run_mode(net::NetLoopMode::kOff, false, off_digests, off_findings);
  std::printf("event-loop run (--net-loop on%s)...\n",
              force_poll ? ", poll fallback" : "");
  const bool loop_used =
      run_mode(net::NetLoopMode::kOn, force_poll, on_digests, on_findings);
  if (!loop_used) {
    std::printf("selftest FAILED: --net-loop on did not engage the loop\n");
    return 1;
  }

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < off_digests.size(); ++i) {
    if (off_digests[i] != on_digests[i]) {
      if (++mismatches <= 4) {
        std::printf("OBSERVATION MISMATCH case %s\n--- blocking:\n%s"
                    "--- event loop:\n%s",
                    cases[i].uuid.c_str(), off_digests[i].c_str(),
                    on_digests[i].c_str());
      }
    }
  }
  if (mismatches > 0) {
    std::printf("selftest FAILED: %zu/%zu observations differ between "
                "transports\n",
                mismatches, off_digests.size());
    return 1;
  }
  if (!findings_identical(off_findings, on_findings)) {
    std::printf(
        "selftest FAILED: findings differ between --net-loop on and off\n");
    return 1;
  }
  std::printf(
      "selftest PASSED: findings byte-identical with --net-loop on and off "
      "(%zu cases, %zu backends, %zu roundtrip observations per mode)\n",
      cases.size(), backends.size(), off_digests.size());
  return 0;
}

int selftest_campaign(std::size_t jobs);  // defined with the campaign CLI
int selftest_stream(std::size_t jobs);    // defined with the campaign CLI
int selftest_serve(std::size_t jobs);     // defined with the serve CLI
int selftest_serve_soak(int seconds, std::size_t jobs);

int cmd_selftest(int argc, char** argv) {
  hdiff::net::FaultPlanConfig plan_config;
  plan_config.rate = 0.3;
  plan_config.max_faults_per_site = 1;
  bool trace_mode = false;
  bool campaign_mode = false;
  bool stream_mode = false;
  bool views_mode = false;
  bool netloop_mode = false;
  bool force_poll = false;
  bool serve_mode = false;
  bool serve_soak_mode = false;
  int soak_seconds = 60;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) trace_mode = true;
    if (std::strcmp(argv[i], "--campaign") == 0) campaign_mode = true;
    if (std::strcmp(argv[i], "--stream") == 0) stream_mode = true;
    if (std::strcmp(argv[i], "--views") == 0) views_mode = true;
    if (std::strcmp(argv[i], "--net-loop") == 0) netloop_mode = true;
    if (std::strcmp(argv[i], "--force-poll") == 0) force_poll = true;
    if (std::strcmp(argv[i], "--serve") == 0) serve_mode = true;
    if (std::strcmp(argv[i], "--serve-soak") == 0) serve_soak_mode = true;
    if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      soak_seconds = std::max(1, std::atoi(argv[i + 1]));
    }
  }
  hdiff::core::PipelineConfig config;
  // A case can touch many distinct victim sites (one per model leg), so the
  // default retry budget is generous: with the default one-fault-per-site
  // plan every case converges and findings come out byte-identical.
  config.executor.retry.attempts = 64;
  // Faults are injected in-process; waiting between attempts would only
  // slow the self-test down without exercising anything.
  config.executor.retry.backoff_base_ms = 0;
  config.executor.retry.backoff_max_ms = 0;
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--fault-plan") == 0) {
      if (!parse_fault_plan(argv[i + 1], &plan_config)) {
        std::fprintf(stderr, "bad --fault-plan spec %s\n", argv[i + 1]);
        return 2;
      }
    }
    if (std::strcmp(argv[i], "--jobs") == 0) {
      config.executor.jobs =
          static_cast<std::size_t>(std::max(1L, std::atol(argv[i + 1])));
    }
    if (std::strcmp(argv[i], "--retries") == 0) {
      config.executor.retry.attempts =
          std::max(1, std::atoi(argv[i + 1]));
    }
  }

  if (serve_soak_mode) {
    return selftest_serve_soak(soak_seconds, config.executor.jobs);
  }
  if (serve_mode) return selftest_serve(config.executor.jobs);
  if (campaign_mode) return selftest_campaign(config.executor.jobs);
  if (stream_mode) return selftest_stream(config.executor.jobs);
  if (trace_mode) return selftest_trace(std::move(config));
  if (views_mode) return selftest_views();
  if (netloop_mode) {
    // The fault-plan defaults above size `jobs` for the in-process chain;
    // the live self-test interprets 0 as "pick a small worker pool".
    return selftest_netloop(config.executor.jobs, force_poll);
  }

  hdiff::core::Pipeline pipeline(config);
  auto fleet = hdiff::impls::make_all_implementations();
  std::printf("fault-free reference run...\n");
  hdiff::core::PipelineResult baseline = pipeline.run(fleet);

  auto plan = std::make_shared<hdiff::net::FaultPlan>(plan_config);
  auto faulty = hdiff::net::wrap_fleet_with_faults(fleet, plan);
  std::printf(
      "degraded run (rate=%.2f seed=%llu max=%zu nth=%zu, %d retries)...\n",
      plan_config.rate,
      static_cast<unsigned long long>(plan_config.seed),
      plan_config.max_faults_per_site, plan_config.every_nth,
      config.executor.retry.attempts);
  hdiff::core::PipelineResult degraded = pipeline.run(faulty);

  const hdiff::net::FaultPlan::Stats fs = plan->stats();
  const hdiff::core::ExecutorStats& es = degraded.exec_stats;
  std::printf(
      "injected %zu fault(s) over %zu model call(s); %zu faulted attempt(s), "
      "%zu retried, %zu recovered, %zu quarantined\n",
      fs.injected, fs.calls, es.faulted_attempts, es.retry_attempts,
      es.recovered_cases, es.quarantined_cases);

  // Core guarantee: no fault-induced false differentials — every finding of
  // the degraded run must exist in the fault-free run.
  const auto base_pairs = pair_keys(baseline.findings);
  const auto base_violations = violation_keys(baseline.findings);
  std::size_t phantom = 0;
  for (const auto& key : pair_keys(degraded.findings)) {
    if (!base_pairs.count(key)) {
      std::printf("FALSE DIFFERENTIAL (pair): %s\n", key.c_str());
      ++phantom;
    }
  }
  for (const auto& key : violation_keys(degraded.findings)) {
    if (!base_violations.count(key)) {
      std::printf("FALSE DIFFERENTIAL (violation): %s\n", key.c_str());
      ++phantom;
    }
  }
  if (phantom > 0) {
    std::printf("selftest FAILED: %zu fault-induced finding(s)\n", phantom);
    return 1;
  }
  // With every case recovered, the findings must be byte-identical.
  if (es.quarantined_cases == 0 &&
      !findings_identical(baseline.findings, degraded.findings)) {
    std::printf(
        "selftest FAILED: zero quarantine but findings differ from the "
        "fault-free run\n");
    return 1;
  }
  if (es.quarantined_cases == 0) {
    std::printf(
        "selftest PASSED: findings byte-identical to the fault-free run\n");
  } else {
    std::printf(
        "selftest PASSED: no false differentials (%zu case(s) quarantined, "
        "coverage reduced)\n",
        es.quarantined_cases);
  }
  return 0;
}

// ---- lint: static spec-lint over grammar, rule base, mutation set --------

int cmd_lint(int argc, char** argv) {
  std::vector<std::string_view> docs;
  std::string json_path;
  bool all_corpus = false;
  bool use_default_waivers = true;
  std::size_t jobs = 1;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--all-corpus") == 0) {
      all_corpus = true;
    } else if (std::strcmp(argv[i], "--no-default-waivers") == 0) {
      use_default_waivers = false;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      const long n = std::atol(argv[++i]);
      if (n < 1) {
        std::fprintf(stderr, "--jobs wants a positive integer, got %s\n",
                     argv[i]);
        return 2;
      }
      jobs = static_cast<std::size_t>(n);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown lint option %s\n", argv[i]);
      return 2;
    } else {
      docs.emplace_back(argv[i]);
    }
  }
  if (all_corpus) {
    docs.clear();
    for (const auto& doc : hdiff::corpus::all_documents()) {
      docs.push_back(doc.name);
    }
  } else if (docs.empty()) {
    docs = hdiff::corpus::http_core_documents();
  }
  for (const auto& doc : docs) {
    if (hdiff::corpus::find_document(doc) == nullptr) {
      std::fprintf(stderr, "unknown document %s\n",
                   std::string(doc).c_str());
      return 2;
    }
  }

  hdiff::core::DocumentationAnalyzer analyzer;
  auto analysis = analyzer.analyze(docs);
  auto result =
      lint_grammar_and_rules(analysis.grammar, jobs, use_default_waivers);
  std::printf("%s", hdiff::analysis::lint_text(result).c_str());
  if (!json_path.empty()) {
    if (!write_file(json_path, hdiff::analysis::lint_json(result))) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return hdiff::analysis::lint_exit_code(result);
}

// ---- campaign: persistent differential-fuzzing engine (src/campaign) -----

/// The exact case list a one-shot `hdiff run` executes (probes + SR cases +
/// budget-capped ABNF cases).  Running the pipeline against an empty fleet
/// performs only the generation stages — the differential stage iterates
/// zero models — so this stays bit-for-bit what `Pipeline::run` assembles.
std::vector<hdiff::core::TestCase> one_shot_corpus() {
  hdiff::core::Pipeline pipeline;
  std::vector<std::unique_ptr<hdiff::impls::HttpImplementation>> empty;
  return std::move(pipeline.run(empty).executed_cases);
}

/// The campaign's static coverage plan (DESIGN.md §14): the lint's grammar +
/// roots, so production/site ids match `hdiff lint --json` exactly.  With
/// `with_bootstrap_cone`, a tapped generator dry-runs the default ABNF
/// targets (the rules round 0's generated corpus derives from) and the
/// rules it expands seed the covered set — mini/probe bootstraps exercise
/// no grammar rules and get an empty cone.  Cached: the plan is a pure
/// function of the built-in corpus.
const hdiff::analysis::CoveragePlan& campaign_coverage_plan(
    bool with_bootstrap_cone) {
  static const auto build = [](bool cone) {
    hdiff::core::DocumentationAnalyzer analyzer;
    auto analysis = analyzer.analyze(hdiff::corpus::http_core_documents());
    auto plan =
        hdiff::analysis::build_coverage_plan(analysis.grammar, lint_roots());
    if (cone) {
      hdiff::abnf::Generator gen(analysis.grammar);
      hdiff::abnf::load_default_http_predefined(gen);
      std::set<std::string> tapped;
      gen.set_coverage_tap(&tapped);
      for (const auto& target : hdiff::core::default_abnf_targets()) {
        gen.enumerate(target.rule, 64);
      }
      gen.set_coverage_tap(nullptr);
      for (const auto& name : tapped) {
        const std::size_t id = plan.id_of(name);
        if (id != hdiff::analysis::CoveragePlan::npos) {
          plan.bootstrap_covered.insert(id);
        }
      }
    }
    return plan;
  };
  static const hdiff::analysis::CoveragePlan with_cone = build(true);
  static const hdiff::analysis::CoveragePlan without_cone = build(false);
  return with_bootstrap_cone ? with_cone : without_cone;
}

void print_campaign_report(const hdiff::campaign::CampaignReport& report) {
  if (!report.rounds.empty()) {
    hdiff::report::Table t({"round", "cases", "replayed", "novel", "dup",
                            "quarantined", "new-entries", "min-steps"});
    for (const auto& rr : report.rounds) {
      t.add_row({std::to_string(rr.round), std::to_string(rr.cases),
                 std::to_string(rr.replayed), std::to_string(rr.novel),
                 std::to_string(rr.duplicate), std::to_string(rr.quarantined),
                 std::to_string(rr.new_entries),
                 std::to_string(rr.minimize_steps)});
    }
    std::printf("%s", t.render().c_str());
  }
  std::printf(
      "campaign: %zu round(s) committed, %zu finding(s), %zu corpus "
      "entr%s, retry queue %zu%s%s\n",
      report.rounds_completed, report.total_findings, report.corpus_entries,
      report.corpus_entries == 1 ? "y" : "ies", report.retry_depth,
      report.resumed ? " (resumed)" : "",
      report.interrupted ? " (interrupted)" : "");
  if (report.coverage_enabled) {
    const double pct =
        report.coverage_total == 0
            ? 0.0
            : 100.0 * static_cast<double>(report.coverage_covered) /
                  static_cast<double>(report.coverage_total);
    std::printf(
        "coverage: %zu/%zu production(s) (%.1f%%), %zu/%zu gap site(s) "
        "hit%s\n",
        report.coverage_covered, report.coverage_total, pct,
        report.gap_sites_hit, report.gap_sites_total,
        report.coverage_weighting ? "" : " (tracking only)");
    for (const auto& site : report.top_unhit) {
      std::printf("  unhit gap site #%zu: %s alts %zu/%zu (%s, rank %zu) "
                  "overlap %s\n",
                  site.id, site.rule.c_str(), site.alt_a, site.alt_b,
                  site.kind == 'b' ? "byte-overlap" : "first-overlap",
                  site.rank,
                  hdiff::analysis::format_byte_class(site.overlap).c_str());
    }
  }
}

int cmd_campaign(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string_view sub = argv[2];
  std::string state_dir, json_path;
  hdiff::campaign::CampaignConfig config;
  bool mini = false;
  bool no_coverage = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mini") == 0) {
      mini = true;
    } else if (std::strcmp(argv[i], "--no-minimize") == 0) {
      config.minimize_new = false;
    } else if (std::strcmp(argv[i], "--no-coverage") == 0) {
      no_coverage = true;
    } else if (std::strcmp(argv[i], "--streams") == 0) {
      config.streams = true;
    } else if (std::strcmp(argv[i], "--state-dir") == 0 && i + 1 < argc) {
      state_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      const long n = std::atol(argv[++i]);
      if (n < 1) {
        std::fprintf(stderr, "--rounds wants a positive integer, got %s\n",
                     argv[i]);
        return 2;
      }
      config.rounds = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      const long n = std::atol(argv[++i]);
      if (n < 1) {
        std::fprintf(stderr, "--budget wants a positive integer, got %s\n",
                     argv[i]);
        return 2;
      }
      config.budget_per_round = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      const long n = std::atol(argv[++i]);
      if (n < 1) {
        std::fprintf(stderr, "--jobs wants a positive integer, got %s\n",
                     argv[i]);
        return 2;
      }
      config.executor.jobs = static_cast<std::size_t>(n);
    } else {
      std::fprintf(stderr, "unknown campaign option %s\n", argv[i]);
      return 2;
    }
  }
  if (state_dir.empty()) {
    std::fprintf(stderr, "campaign %s requires --state-dir DIR\n",
                 std::string(sub).c_str());
    return 2;
  }

  if (sub == "status") {
    auto report = hdiff::campaign::CampaignEngine::status(state_dir);
    if (!report.error.empty()) {
      std::fprintf(stderr, "%s\n", report.error.c_str());
      return 1;
    }
    print_campaign_report(report);
    if (!json_path.empty() &&
        !write_file(json_path, hdiff::campaign::campaign_report_json(report))) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    return 0;
  }

  auto fleet = hdiff::impls::make_all_implementations();
  if (sub == "minimize") {
    auto report =
        hdiff::campaign::CampaignEngine::minimize_corpus(state_dir, fleet);
    if (!report.error.empty()) {
      std::fprintf(stderr, "%s\n", report.error.c_str());
      return 1;
    }
    std::printf(
        "minimize: %zu mutant entr%s checked in %zu oracle step(s), %zu "
        "shrinkable (0 = corpus is at its fixed point)\n",
        report.entries, report.entries == 1 ? "y" : "ies", report.steps,
        report.shrunk);
    return report.shrunk == 0 ? 0 : 3;
  }
  if (sub != "run" && sub != "resume") return usage();
  if (sub == "resume" &&
      !hdiff::campaign::StateStore(state_dir).exists()) {
    std::fprintf(stderr, "campaign resume: no state at %s\n",
                 state_dir.c_str());
    return 1;
  }

  config.state_dir = state_dir;
  config.bootstrap =
      mini ? hdiff::core::verification_probes() : one_shot_corpus();
  // Coverage plan excluded from the config signature: a pre-coverage state
  // dir resumes cleanly (its checkpoint simply has no plan to honor).
  if (!no_coverage) config.coverage = campaign_coverage_plan(!mini);
  hdiff::campaign::CampaignEngine engine(std::move(config));
  auto report = engine.run(fleet);
  if (!report.error.empty()) {
    std::fprintf(stderr, "%s\n", report.error.c_str());
    return 1;
  }
  print_campaign_report(report);
  if (!json_path.empty() &&
      !write_file(json_path, hdiff::campaign::campaign_report_json(report))) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}

/// `selftest --campaign`: the acceptance proof for the campaign engine.
/// Runs a 2-round mini campaign (probe bootstrap) twice — once
/// uninterrupted, once killed in the worst crash window (findings appended,
/// checkpoint not yet renamed) and resumed — and asserts:
///   1. the campaign's findings are a superset of the one-shot findings;
///   2. every fingerprint appears exactly once in the findings DB;
///   3. state and findings files of the resumed run are byte-identical to
///      the uninterrupted run's.
int selftest_campaign(std::size_t jobs) {
  namespace fs = std::filesystem;
  namespace camp = hdiff::campaign;

  const fs::path root =
      fs::temp_directory_path() /
      ("hdiff-selftest-campaign-" + std::to_string(::getpid()));
  std::error_code ec;
  fs::remove_all(root, ec);

  auto base_config = [&](const std::string& leaf) {
    camp::CampaignConfig config;
    config.state_dir = (root / leaf).string();
    config.rounds = 2;
    config.budget_per_round = 24;
    config.minimize.max_steps = 128;
    config.executor.jobs = jobs == 0 ? 1 : jobs;
    config.bootstrap = hdiff::core::verification_probes();
    // Coverage on (probe bootstrap = empty cone): the byte-identity proof
    // below covers the checkpoint's coverage block and the coverage-biased
    // schedule too.
    config.coverage = campaign_coverage_plan(false);
    return config;
  };
  auto read_bytes = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };

  auto fleet = hdiff::impls::make_all_implementations();
  std::printf("uninterrupted 2-round mini campaign...\n");
  camp::CampaignEngine uninterrupted(base_config("uninterrupted"));
  camp::CampaignReport ref = uninterrupted.run(fleet);
  if (!ref.error.empty()) {
    std::printf("selftest FAILED: %s\n", ref.error.c_str());
    return 1;
  }
  print_campaign_report(ref);

  camp::StateStore ref_store(base_config("uninterrupted").state_dir);
  if (!ref_store.load()) {
    std::printf("selftest FAILED: %s\n", ref_store.error().c_str());
    return 1;
  }

  // 1. Superset of the one-shot findings.  Round 0 executed the exact
  // one-shot case list; its accumulated DetectionResult IS the one-shot
  // result.  Rebuild pair/violation keys from the findings DB's normalized
  // vectors and check every one-shot key is present.
  std::set<std::string> campaign_pairs, campaign_violations;
  std::set<std::string> fingerprints;
  for (const auto& f : ref_store.findings) {
    fingerprints.insert(f.fingerprint);
    for (const auto& component : f.vector) {
      const std::size_t arrow = component.find("->");
      if (f.detector == "sr-violation") {
        campaign_violations.insert(component);
      } else if (arrow != std::string::npos) {
        campaign_pairs.insert(component.substr(0, arrow) + "|" +
                              component.substr(arrow + 2) + "|" + f.detector);
      }
    }
  }
  std::size_t missing = 0;
  for (const auto& key : pair_keys(ref.bootstrap_findings)) {
    if (!campaign_pairs.count(key)) {
      std::printf("selftest FAILED: one-shot pair %s missing\n", key.c_str());
      ++missing;
    }
  }
  for (const auto& key : violation_keys(ref.bootstrap_findings)) {
    if (!campaign_violations.count(key)) {
      std::printf("selftest FAILED: one-shot violation %s missing\n",
                  key.c_str());
      ++missing;
    }
  }
  if (missing > 0) return 1;
  std::printf("superset check: %zu one-shot pair(s) + %zu violation(s) all "
              "present in the findings DB\n",
              pair_keys(ref.bootstrap_findings).size(),
              violation_keys(ref.bootstrap_findings).size());

  // 2. Each fingerprint reported exactly once.
  if (fingerprints.size() != ref_store.findings.size()) {
    std::printf("selftest FAILED: %zu findings but %zu distinct "
                "fingerprints\n",
                ref_store.findings.size(), fingerprints.size());
    return 1;
  }
  std::printf("dedup check: %zu finding(s), all fingerprints unique\n",
              ref_store.findings.size());

  // 3. Kill in the worst window (findings appended, checkpoint not yet
  // renamed) and resume; state and findings bytes must match the
  // uninterrupted run exactly.
  std::printf("crashed run (kill after round 1's findings append)...\n");
  camp::CampaignConfig crash_config = base_config("resumed");
  crash_config.crash_after_round = 1;
  camp::CampaignEngine crashed(std::move(crash_config));
  camp::CampaignReport crash_report = crashed.run(fleet);
  if (!crash_report.error.empty() || !crash_report.interrupted) {
    std::printf("selftest FAILED: crash hook did not fire (%s)\n",
                crash_report.error.c_str());
    return 1;
  }
  std::printf("resuming...\n");
  camp::CampaignEngine resumed(base_config("resumed"));
  camp::CampaignReport resume_report = resumed.run(fleet);
  if (!resume_report.error.empty() || !resume_report.resumed) {
    std::printf("selftest FAILED: resume failed (%s)\n",
                resume_report.error.c_str());
    return 1;
  }

  const camp::StateStore res_store(base_config("resumed").state_dir);
  int rc = 0;
  if (read_bytes(ref_store.state_path()) !=
      read_bytes(res_store.state_path())) {
    std::printf("selftest FAILED: campaign.state differs after resume\n");
    rc = 1;
  }
  if (read_bytes(ref_store.findings_path()) !=
      read_bytes(res_store.findings_path())) {
    std::printf("selftest FAILED: findings.jsonl differs after resume\n");
    rc = 1;
  }
  if (rc == 0) {
    std::printf(
        "selftest PASSED: resumed state and findings byte-identical to the "
        "uninterrupted run (%zu finding(s), %zu corpus entr%s)\n",
        ref.total_findings, ref.corpus_entries,
        ref.corpus_entries == 1 ? "y" : "ies");
    fs::remove_all(root, ec);
  }
  return rc;
}

/// `selftest --stream`: the acceptance proof for the connection-level
/// stream subsystem.  Runs a seeded 2-round stream campaign
/// (`--streams`, probe bootstrap) and asserts:
///   1. at least one `stream-*` finding is filed — a boundary-desync /
///      queue-poisoning / leftover divergence the single-request pipeline
///      cannot represent (its detectors never emit stream classes);
///   2. the `hdiff_stream_*` observability series were populated;
///   3. state and findings are byte-identical between `--jobs 1` and a
///      wide-parallel run (stream cases observe serially; the schedule is a
///      pure function of the committed checkpoint);
///   4. a run killed in the worst crash window after round 1 resumes to
///      byte-identical state and findings.
int selftest_stream(std::size_t jobs) {
  namespace fs = std::filesystem;
  namespace camp = hdiff::campaign;

  const fs::path root =
      fs::temp_directory_path() /
      ("hdiff-selftest-stream-" + std::to_string(::getpid()));
  std::error_code ec;
  fs::remove_all(root, ec);

  auto base_config = [&](const std::string& leaf, std::size_t run_jobs) {
    camp::CampaignConfig config;
    config.state_dir = (root / leaf).string();
    config.rounds = 2;
    config.budget_per_round = 24;
    config.minimize.max_steps = 128;
    config.executor.jobs = run_jobs;
    config.bootstrap = hdiff::core::verification_probes();
    config.coverage = campaign_coverage_plan(false);
    config.streams = true;
    return config;
  };
  auto read_bytes = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };

  auto fleet = hdiff::impls::make_all_implementations();

  // Reference run at --jobs 1, with live metrics so the stream series can
  // be asserted (observability never perturbs findings, per
  // `selftest --trace`, so instrumenting only this run is sound).
  std::printf("seeded stream campaign (--jobs 1)...\n");
  hdiff::obs::Registry registry;
  camp::CampaignConfig ref_config = base_config("jobs1", 1);
  ref_config.obs.metrics = &registry;
  camp::CampaignEngine ref_engine(std::move(ref_config));
  camp::CampaignReport ref = ref_engine.run(fleet);
  if (!ref.error.empty()) {
    std::printf("selftest FAILED: %s\n", ref.error.c_str());
    return 1;
  }
  print_campaign_report(ref);

  camp::StateStore ref_store(base_config("jobs1", 1).state_dir);
  if (!ref_store.load()) {
    std::printf("selftest FAILED: %s\n", ref_store.error().c_str());
    return 1;
  }

  // 1. A stream-class divergence was discovered.
  std::set<std::string> stream_detectors;
  for (const auto& f : ref_store.findings) {
    if (f.detector.rfind("stream-", 0) == 0) {
      stream_detectors.insert(f.detector);
    }
  }
  if (stream_detectors.empty()) {
    std::printf(
        "selftest FAILED: no stream-* finding in the findings DB (%zu "
        "finding(s) total)\n",
        ref_store.findings.size());
    return 1;
  }
  std::printf("stream findings check: detector class(es) present:");
  for (const auto& d : stream_detectors) std::printf(" %s", d.c_str());
  std::printf(" (%zu stream corpus entr%s)\n", ref.stream_entries,
              ref.stream_entries == 1 ? "y" : "ies");

  // 2. The stream observability series were fed.
  const std::string exposition = hdiff::obs::render_prometheus(registry);
  if (exposition.find("hdiff_stream_observations_total") ==
      std::string::npos) {
    std::printf(
        "selftest FAILED: hdiff_stream_observations_total missing from the "
        "metrics exposition\n");
    return 1;
  }
  std::printf("metrics check: hdiff_stream_* series present\n");

  // 3. Byte-identity across parallelism.
  const std::size_t wide = jobs < 2 ? 8 : jobs;
  std::printf("same campaign at --jobs %zu...\n", wide);
  camp::CampaignEngine wide_engine(base_config("jobsN", wide));
  camp::CampaignReport wide_report = wide_engine.run(fleet);
  if (!wide_report.error.empty()) {
    std::printf("selftest FAILED: %s\n", wide_report.error.c_str());
    return 1;
  }
  const camp::StateStore wide_store(base_config("jobsN", wide).state_dir);
  int rc = 0;
  if (read_bytes(ref_store.state_path()) !=
      read_bytes(wide_store.state_path())) {
    std::printf("selftest FAILED: campaign.state differs across --jobs\n");
    rc = 1;
  }
  if (read_bytes(ref_store.findings_path()) !=
      read_bytes(wide_store.findings_path())) {
    std::printf("selftest FAILED: findings.jsonl differs across --jobs\n");
    rc = 1;
  }
  if (rc != 0) return rc;
  std::printf("parallelism check: state and findings byte-identical at "
              "--jobs 1 and --jobs %zu\n",
              wide);

  // 4. Kill in the worst window (findings appended, checkpoint not yet
  // renamed) and resume; bytes must match the uninterrupted run exactly.
  std::printf("crashed run (kill after round 1's findings append)...\n");
  camp::CampaignConfig crash_config = base_config("resumed", 1);
  crash_config.crash_after_round = 1;
  camp::CampaignEngine crashed(std::move(crash_config));
  camp::CampaignReport crash_report = crashed.run(fleet);
  if (!crash_report.error.empty() || !crash_report.interrupted) {
    std::printf("selftest FAILED: crash hook did not fire (%s)\n",
                crash_report.error.c_str());
    return 1;
  }
  std::printf("resuming...\n");
  camp::CampaignEngine resumed(base_config("resumed", 1));
  camp::CampaignReport resume_report = resumed.run(fleet);
  if (!resume_report.error.empty() || !resume_report.resumed) {
    std::printf("selftest FAILED: resume failed (%s)\n",
                resume_report.error.c_str());
    return 1;
  }
  const camp::StateStore res_store(base_config("resumed", 1).state_dir);
  if (read_bytes(ref_store.state_path()) !=
      read_bytes(res_store.state_path())) {
    std::printf("selftest FAILED: campaign.state differs after resume\n");
    rc = 1;
  }
  if (read_bytes(ref_store.findings_path()) !=
      read_bytes(res_store.findings_path())) {
    std::printf("selftest FAILED: findings.jsonl differs after resume\n");
    rc = 1;
  }
  if (rc == 0) {
    std::printf(
        "selftest PASSED: %zu stream detector class(es) filed; state and "
        "findings byte-identical across --jobs and crash-resume\n",
        stream_detectors.size());
    fs::remove_all(root, ec);
  }
  return rc;
}

// ---- hdiff serve: supervised, crash-tolerant campaign daemon --------------

/// SIGTERM/SIGINT set this; the supervisor polls it and drains gracefully
/// (finish the round, commit, exit 0).
volatile std::sig_atomic_t g_serve_drain = 0;

void serve_drain_handler(int) { g_serve_drain = 1; }

/// The running hdiff binary, for spawning serve-worker children.  The
/// HDIFF_BIN env var overrides (tests driving a copied/renamed binary).
std::string self_exe_path() {
  if (const char* hint = std::getenv("HDIFF_BIN"); hint && *hint) return hint;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) return std::string(buf, static_cast<std::size_t>(n));
  return "hdiff";
}

/// Hidden subcommand: one shard of one round, spawned by the supervisor.
/// Flags reproduce the supervisor's campaign config; the worker revalidates
/// against the checkpoint's config signature and refuses a stale ask.
int cmd_serve_worker(int argc, char** argv) {
  // The supervisor may die while we beat into the inherited pipe; that must
  // not kill the worker mid-shard (the result file is still useful).
  std::signal(SIGPIPE, SIG_IGN);
  hdiff::serve::WorkerOptions options;
  bool mini = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mini") == 0) {
      mini = true;
    } else if (std::strcmp(argv[i], "--no-minimize") == 0) {
      options.config.minimize_new = false;
    } else if (std::strcmp(argv[i], "--streams") == 0) {
      options.config.streams = true;
    } else if (std::strcmp(argv[i], "--state-dir") == 0 && i + 1 < argc) {
      options.config.state_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      options.config.budget_per_round =
          static_cast<std::size_t>(std::max(1L, std::atol(argv[++i])));
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      options.config.executor.jobs =
          static_cast<std::size_t>(std::max(1L, std::atol(argv[++i])));
    } else if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc) {
      options.shard = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      options.shards =
          static_cast<std::size_t>(std::max(1L, std::atol(argv[++i])));
    } else if (std::strcmp(argv[i], "--round") == 0 && i + 1 < argc) {
      options.round = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--heartbeat-ms") == 0 && i + 1 < argc) {
      options.heartbeat_interval_ms = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--heartbeat-fd") == 0 && i + 1 < argc) {
      options.heartbeat_fd = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--export-metrics") == 0) {
      options.export_metrics = true;
    } else if (std::strcmp(argv[i], "--export-trace") == 0) {
      options.export_trace = true;
    } else {
      std::fprintf(stderr, "unknown serve-worker option %s\n", argv[i]);
      return 2;
    }
  }
  if (options.config.state_dir.empty()) {
    std::fprintf(stderr, "serve-worker requires --state-dir DIR\n");
    return 2;
  }
  options.config.bootstrap =
      mini ? hdiff::core::verification_probes() : one_shot_corpus();
  auto fleet = hdiff::impls::make_all_implementations();
  return hdiff::serve::run_worker(options, fleet);
}

bool parse_round_shard(const char* spec, std::size_t* round,
                       std::size_t* shard) {
  const char* colon = std::strchr(spec, ':');
  if (colon == nullptr) return false;
  *round = static_cast<std::size_t>(std::atol(spec));
  *shard = static_cast<std::size_t>(std::atol(colon + 1));
  return true;
}

int cmd_serve(int argc, char** argv) {
  hdiff::serve::ServeConfig config;
  bool mini = false;
  bool in_process = false;
  bool no_coverage = false;
  std::string port_file;
  std::string metrics_out, trace_out;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mini") == 0) {
      mini = true;
    } else if (std::strcmp(argv[i], "--no-minimize") == 0) {
      config.campaign.minimize_new = false;
    } else if (std::strcmp(argv[i], "--no-coverage") == 0) {
      no_coverage = true;
    } else if (std::strcmp(argv[i], "--streams") == 0) {
      config.campaign.streams = true;
    } else if (std::strcmp(argv[i], "--in-process") == 0) {
      in_process = true;  // inline execution, no child processes
    } else if (std::strcmp(argv[i], "--state-dir") == 0 && i + 1 < argc) {
      config.campaign.state_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      config.campaign.rounds =
          static_cast<std::size_t>(std::max(1L, std::atol(argv[++i])));
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      config.campaign.budget_per_round =
          static_cast<std::size_t>(std::max(1L, std::atol(argv[++i])));
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      config.campaign.executor.jobs =
          static_cast<std::size_t>(std::max(1L, std::atol(argv[++i])));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      config.shards =
          static_cast<std::size_t>(std::max(1L, std::atol(argv[++i])));
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      config.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--port-file") == 0 && i + 1 < argc) {
      port_file = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--heartbeat-ms") == 0 && i + 1 < argc) {
      config.heartbeat_interval_ms = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--quarantine-after") == 0 &&
               i + 1 < argc) {
      config.quarantine_after = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--chaos-kill") == 0 && i + 1 < argc) {
      hdiff::serve::ChaosAction action;  // test hook: R:S = round:shard
      if (!parse_round_shard(argv[++i], &action.round, &action.shard)) {
        std::fprintf(stderr, "--chaos-kill wants ROUND:SHARD, got %s\n",
                     argv[i]);
        return 2;
      }
      config.chaos.push_back(action);
    } else if (std::strcmp(argv[i], "--chaos-stop") == 0 && i + 1 < argc) {
      hdiff::serve::ChaosAction action;
      action.kind = hdiff::serve::ChaosAction::Kind::kStop;
      if (!parse_round_shard(argv[++i], &action.round, &action.shard)) {
        std::fprintf(stderr, "--chaos-stop wants ROUND:SHARD, got %s\n",
                     argv[i]);
        return 2;
      }
      config.chaos.push_back(action);
    } else {
      std::fprintf(stderr, "unknown serve option %s\n", argv[i]);
      return 2;
    }
  }
  if (config.campaign.state_dir.empty()) {
    std::fprintf(stderr, "serve requires --state-dir DIR\n");
    return 2;
  }
  config.campaign.bootstrap =
      mini ? hdiff::core::verification_probes() : one_shot_corpus();
  // Workers plan from the committed checkpoint, which carries the adopted
  // plan — no worker flag needed (and none exists, by design).
  if (!no_coverage) config.campaign.coverage = campaign_coverage_plan(!mini);
  if (!in_process) config.worker_binary = self_exe_path();
  // Workers rebuild the campaign config from these flags; the config
  // signature check catches any drift.
  if (mini) config.worker_args.push_back("--mini");
  if (!config.campaign.minimize_new) {
    config.worker_args.push_back("--no-minimize");
  }
  if (config.campaign.streams) config.worker_args.push_back("--streams");
  config.worker_args.push_back("--budget");
  config.worker_args.push_back(
      std::to_string(config.campaign.budget_per_round));
  if (config.campaign.executor.jobs != 0) {
    config.worker_args.push_back("--jobs");
    config.worker_args.push_back(
        std::to_string(config.campaign.executor.jobs));
  }

  hdiff::obs::Registry registry;
  config.obs.metrics = &registry;
  config.campaign.obs.metrics = &registry;
  // Fleet merge target: supervisor-side series land in `registry` (its
  // total), worker snapshots are absorbed with per-origin labels.  Owned
  // here so --metrics-out can render the final merged exposition after the
  // daemon exits.
  hdiff::serve::FleetMetrics fleet_metrics(&registry);
  config.fleet = &fleet_metrics;
  hdiff::obs::TraceSink trace_sink;
  if (!trace_out.empty()) {
    trace_sink.set_process_name("supervisor");
    config.obs.trace = &trace_sink;
    config.campaign.obs.trace = &trace_sink;
  }

  g_serve_drain = 0;
  std::signal(SIGTERM, serve_drain_handler);
  std::signal(SIGINT, serve_drain_handler);
  config.drain_flag = &g_serve_drain;

  auto fleet = hdiff::impls::make_all_implementations();
  try {
    hdiff::serve::Supervisor supervisor(std::move(config), fleet);
    std::printf("serve: control plane on 127.0.0.1:%u\n",
                static_cast<unsigned>(supervisor.port()));
    std::fflush(stdout);
    if (!port_file.empty() &&
        !write_file(port_file, std::to_string(supervisor.port()) + "\n")) {
      std::fprintf(stderr, "cannot write %s\n", port_file.c_str());
      return 1;
    }
    hdiff::serve::ServeReport report = supervisor.run();
    if (!report.error.empty()) {
      std::fprintf(stderr, "serve: %s\n", report.error.c_str());
      return 1;
    }
    std::printf(
        "serve: %zu round(s) committed%s%s, %zu finding(s), %zu corpus "
        "entr%s; %zu spawn(s), %zu death(s), %zu hang(s), %zu restart(s), "
        "%zu quarantined shard(s), %zu reused shard result(s)\n",
        report.rounds_run, report.resumed ? " (resumed)" : "",
        report.drained ? " (drained)" : "", report.total_findings,
        report.corpus_entries, report.corpus_entries == 1 ? "y" : "ies",
        report.worker_spawns, report.worker_deaths, report.worker_hangs,
        report.worker_restarts, report.quarantined_shards,
        report.reused_shard_results);
    if (!metrics_out.empty()) {
      if (!write_file(metrics_out, fleet_metrics.render())) {
        std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
        return 1;
      }
      std::printf("serve: merged fleet metrics written to %s\n",
                  metrics_out.c_str());
    }
    if (!trace_out.empty()) {
      if (!write_file(trace_out, trace_sink.render_chrome_json())) {
        std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
        return 1;
      }
      std::printf("serve: stitched trace written to %s\n", trace_out.c_str());
    }
    return 0;
  } catch (const hdiff::net::ChainFault& fault) {
    std::fprintf(stderr, "serve: control plane bind failed (%s): %s\n",
                 std::string(to_string(fault.error())).c_str(), fault.what());
    return 1;
  }
}

// ---- selftest --serve: sharded-daemon acceptance proof --------------------

struct ControlProbe {
  int status = 0;            ///< 0 = transport failure
  std::string body;
};

ControlProbe control_get(std::uint16_t port, const std::string& method,
                         const std::string& target) {
  const std::string request = method + " " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Content-Length: 0\r\n\r\n";
  hdiff::net::TcpResult result = hdiff::net::tcp_roundtrip(port, request);
  ControlProbe probe;
  if (!result.ok() || result.bytes.size() < 12) return probe;
  probe.status = std::atoi(result.bytes.c_str() + 9);
  const std::size_t body = result.bytes.find("\r\n\r\n");
  if (body != std::string::npos) probe.body = result.bytes.substr(body + 4);
  return probe;
}

// ---- hdiff tail: live dashboard over /status + /events --------------------

/// Value of `"key":<number>` scanning from `from`; the control plane emits
/// flat numbers only, so this minimal scan is faithful (no JSON library in
/// tree).  Returns `fallback` when the key is absent.
long json_long(const std::string& body, const std::string& key,
               long fallback = -1, std::size_t from = 0) {
  const std::size_t at = body.find("\"" + key + "\":", from);
  if (at == std::string::npos) return fallback;
  return std::atol(body.c_str() + at + key.size() + 3);
}

/// Value of `"key":"<string>"` scanning from `from` (no unescaping — every
/// string the daemon emits here is escape-free).
std::string json_str(const std::string& body, const std::string& key,
                     std::size_t from = 0) {
  const std::size_t at = body.find("\"" + key + "\":\"", from);
  if (at == std::string::npos) return {};
  const std::size_t open = at + key.size() + 4;
  const std::size_t close = body.find('"', open);
  if (close == std::string::npos) return {};
  return body.substr(open, close - open);
}

/// One rendered /status + /events delta pass.  Returns false on transport
/// failure (daemon gone or not yet up).  `next_seq` carries the /events
/// cursor between polls so only new lifecycle events print.
bool tail_once(std::uint16_t port, std::uint64_t* next_seq) {
  ControlProbe status = control_get(port, "GET", "/status");
  if (status.status != 200) return false;
  const std::string& b = status.body;

  const long committed = json_long(b, "rounds_completed", 0);
  const long target = json_long(b, "target_rounds", 0);
  const long cases = json_long(b, "cases", 0);
  const long novel = json_long(b, "novel", 0);
  const double novelty_pct =
      cases > 0 ? 100.0 * static_cast<double>(novel) / cases : 0.0;
  std::printf(
      "[%s] %s round %ld: %ld/%ld committed, %ld finding(s), %ld corpus, "
      "novelty %ld/%ld (%.1f%%)\n",
      json_str(b, "campaign").c_str(), json_str(b, "state").c_str(),
      json_long(b, "round", 0), committed, target, json_long(b, "findings", 0),
      json_long(b, "corpus_entries", 0), novel, cases, novelty_pct);

  // Worker slots: each object in the workers array starts at `{"shard":`.
  std::size_t at = b.find("\"workers\":[");
  const std::size_t workers_end =
      at == std::string::npos ? std::string::npos : b.find(']', at);
  while (at != std::string::npos) {
    at = b.find("{\"shard\":", at);
    if (at == std::string::npos || at > workers_end) break;
    const long hb = json_long(b, "last_heartbeat_ms", -1, at);
    std::printf("  shard %ld: %-11s pid=%ld deaths=%ld hb=%s%s\n",
                json_long(b, "shard", 0, at),
                json_str(b, "health", at).c_str(), json_long(b, "pid", -1, at),
                json_long(b, "consecutive_deaths", 0, at),
                hb < 0 ? "-" : (std::to_string(hb) + "ms").c_str(),
                b.compare(b.find("\"done\":", at) + 7, 4, "true") == 0
                    ? " done"
                    : "");
    ++at;
  }

  ControlProbe events = control_get(
      port, "GET", "/events?since=" + std::to_string(*next_seq));
  if (events.status == 200) {
    const std::string& e = events.body;
    std::size_t ev = 0;
    while ((ev = e.find("{\"seq\":", ev)) != std::string::npos) {
      // Bound each lookup to this event object — round/shard/detail are
      // omitted when not applicable, and an unbounded scan would bleed
      // into the next event's fields.  No detail string contains '}'.
      const std::size_t end = e.find('}', ev);
      if (end == std::string::npos) break;
      const std::string obj = e.substr(ev, end - ev + 1);
      const long round = json_long(obj, "round", -1);
      const long shard = json_long(obj, "shard", -1);
      std::string where;
      if (round >= 0) where += " round " + std::to_string(round);
      if (shard >= 0) where += " shard " + std::to_string(shard);
      const std::string detail = json_str(obj, "detail");
      std::printf("  event #%ld %s%s%s%s\n", json_long(obj, "seq", 0),
                  json_str(obj, "kind").c_str(), where.c_str(),
                  detail.empty() ? "" : ": ", detail.c_str());
      ev = end + 1;
    }
    const long advanced = json_long(e, "next_seq", -1);
    if (advanced > 0) *next_seq = static_cast<std::uint64_t>(advanced) - 1;
  }
  std::fflush(stdout);
  return true;
}

/// `hdiff tail --port P [--interval-ms N] [--once]`: poll a running serve
/// daemon's /status and /events and render round progress, per-worker
/// health, novelty rates, and new lifecycle events.  Exits 0 when the
/// daemon goes away after having answered at least once.
int cmd_tail(int argc, char** argv) {
  std::uint16_t port = 0;
  int interval_ms = 500;
  bool once = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--interval-ms") == 0 && i + 1 < argc) {
      interval_ms = std::max(10, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else {
      std::fprintf(stderr, "unknown tail option %s\n", argv[i]);
      return 2;
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "tail requires --port P (see serve --port-file)\n");
    return 2;
  }
  std::uint64_t next_seq = 0;
  bool connected = false;
  while (true) {
    const bool ok = tail_once(port, &next_seq);
    if (ok) connected = true;
    if (once) {
      if (!ok) std::fprintf(stderr, "tail: no daemon on port %u\n", port);
      return ok ? 0 : 1;
    }
    if (!ok && connected) {
      std::printf("tail: daemon on port %u went away\n", port);
      return 0;
    }
    if (!ok && !connected) {
      std::fprintf(stderr, "tail: no daemon on port %u (retrying)\n", port);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

/// `selftest --serve`: prove the supervised sharded daemon byte-identical
/// to the single-process engine under worker crashes, a hang, and a
/// mid-campaign drain:
///   1. reference: plain CampaignEngine run;
///   2. chaos: 4-shard supervisor with two workers SIGKILLed mid-round and
///      one SIGSTOPped (hang -> heartbeat timeout -> SIGKILL -> respawn);
///      state and findings must match the reference byte for byte;
///   3. drain: stop via POST /campaigns/default/stop mid-campaign, then a
///      second supervisor resumes the same state dir to completion; final
///      bytes must again match an uninterrupted reference.
int selftest_serve(std::size_t jobs) {
  namespace fs = std::filesystem;
  namespace camp = hdiff::campaign;

  const fs::path root = fs::temp_directory_path() /
                        ("hdiff-selftest-serve-" + std::to_string(::getpid()));
  std::error_code ec;
  fs::remove_all(root, ec);

  auto base_config = [&](const std::string& leaf, std::size_t rounds) {
    camp::CampaignConfig config;
    config.state_dir = (root / leaf).string();
    config.rounds = rounds;
    config.budget_per_round = 24;
    config.executor.jobs = jobs == 0 ? 1 : jobs;
    config.bootstrap = hdiff::core::verification_probes();
    // Coverage on: the byte-identity comparisons below prove the sharded
    // coverage-weighted schedule matches the single-process reference.
    config.coverage = campaign_coverage_plan(false);
    return config;
  };
  auto read_bytes = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  auto compare_dirs = [&](const std::string& ref_dir,
                          const std::string& got_dir, const char* what) {
    const camp::StateStore ref(ref_dir), got(got_dir);
    int rc = 0;
    if (read_bytes(ref.state_path()) != read_bytes(got.state_path())) {
      std::printf("selftest FAILED: %s campaign.state differs\n", what);
      rc = 1;
    }
    if (read_bytes(ref.findings_path()) != read_bytes(got.findings_path())) {
      std::printf("selftest FAILED: %s findings.jsonl differs\n", what);
      rc = 1;
    }
    return rc;
  };

  auto fleet = hdiff::impls::make_all_implementations();
  const std::string self = self_exe_path();

  // -- 1. single-process reference (2 mutation rounds) ----------------------
  std::printf("reference: single-process 2-round campaign...\n");
  camp::CampaignEngine reference(base_config("reference", 2));
  camp::CampaignReport ref_report = reference.run(fleet);
  if (!ref_report.error.empty()) {
    std::printf("selftest FAILED: %s\n", ref_report.error.c_str());
    return 1;
  }

  // -- 2. sharded supervisor under chaos ------------------------------------
  std::printf(
      "chaos: 4-shard supervisor, 2 worker SIGKILLs + 1 SIGSTOP hang...\n");
  hdiff::serve::ServeConfig serve_config;
  serve_config.campaign = base_config("chaos", 2);
  serve_config.shards = 4;
  serve_config.worker_binary = self;
  serve_config.worker_args = {"--mini", "--budget", "24"};
  serve_config.heartbeat_interval_ms = 60;
  serve_config.quarantine_after = 10;  // keep respawning; never quarantine
  // Observability rides along: worker registry snapshots and trace buffers
  // ship inside the durable shard results and merge supervisor-side.  The
  // byte-identity assertion below therefore also proves obs being on does
  // not perturb findings (the reference ran with obs off).
  hdiff::obs::Registry chaos_reg;
  hdiff::serve::FleetMetrics chaos_fleet(&chaos_reg);
  hdiff::obs::TraceSink chaos_sink;
  chaos_sink.set_process_name("supervisor");
  serve_config.obs.metrics = &chaos_reg;
  serve_config.obs.trace = &chaos_sink;
  serve_config.campaign.obs.metrics = &chaos_reg;
  serve_config.fleet = &chaos_fleet;
  using Chaos = hdiff::serve::ChaosAction;
  serve_config.chaos = {
      Chaos{.round = 1, .shard = 0, .kind = Chaos::Kind::kKill, .delay_ms = 0},
      Chaos{.round = 1, .shard = 2, .kind = Chaos::Kind::kKill, .delay_ms = 0},
      Chaos{.round = 2, .shard = 1, .kind = Chaos::Kind::kStop, .delay_ms = 0},
  };
  hdiff::serve::ServeReport chaos_report;
  try {
    hdiff::serve::Supervisor supervisor(serve_config, fleet);
    chaos_report = supervisor.run();
  } catch (const hdiff::net::ChainFault& fault) {
    std::printf("selftest FAILED: %s\n", fault.what());
    return 1;
  }
  if (!chaos_report.error.empty()) {
    std::printf("selftest FAILED: %s\n", chaos_report.error.c_str());
    return 1;
  }
  std::printf(
      "chaos: %zu spawn(s), %zu death(s) (%zu hang), %zu restart(s)\n",
      chaos_report.worker_spawns, chaos_report.worker_deaths,
      chaos_report.worker_hangs, chaos_report.worker_restarts);
  if (chaos_report.worker_deaths < 3 || chaos_report.worker_hangs < 1 ||
      chaos_report.worker_restarts < 3) {
    std::printf(
        "selftest FAILED: chaos did not engage (want >=3 deaths incl. 1 "
        "hang, >=3 restarts)\n");
    return 1;
  }
  if (int rc = compare_dirs(base_config("reference", 2).state_dir,
                            serve_config.campaign.state_dir, "chaos");
      rc != 0) {
    return rc;
  }
  std::printf("chaos: state and findings byte-identical to the reference\n");

  // -- 2b. merged fleet metrics equal an --in-process run's -----------------
  // Worker observations travel only inside adopted durable shard results,
  // so crashed workers' partial counts are discarded and the merged totals
  // must equal a run where every shard executes inline in the supervisor.
  std::printf("obs: comparing merged fleet metrics with an in-process run...\n");
  hdiff::serve::ServeConfig inproc_config;
  inproc_config.campaign = base_config("inproc", 2);
  inproc_config.shards = 4;
  hdiff::obs::Registry inproc_reg;
  hdiff::serve::FleetMetrics inproc_fleet(&inproc_reg);
  inproc_config.obs.metrics = &inproc_reg;
  inproc_config.campaign.obs.metrics = &inproc_reg;
  inproc_config.fleet = &inproc_fleet;
  try {
    hdiff::serve::Supervisor inproc(inproc_config, fleet);
    hdiff::serve::ServeReport inproc_report = inproc.run();
    if (!inproc_report.error.empty()) {
      std::printf("selftest FAILED: %s\n", inproc_report.error.c_str());
      return 1;
    }
  } catch (const hdiff::net::ChainFault& fault) {
    std::printf("selftest FAILED: %s\n", fault.what());
    return 1;
  }
  auto counter_value = [](const hdiff::obs::Registry& reg,
                          const std::string& name) -> long long {
    for (const auto& [n, v] : reg.snapshot().counters) {
      if (n == name) return static_cast<long long>(v);
    }
    return -1;
  };
  auto hist_count = [](const hdiff::obs::Registry& reg,
                       const std::string& name) -> long long {
    for (const auto& h : reg.snapshot().histograms) {
      if (h.name == name) return static_cast<long long>(h.count);
    }
    return -1;
  };
  const char* equal_counters[] = {
      "hdiff_campaign_rounds_total", "hdiff_campaign_cases_total",
      "hdiff_campaign_novel_total", "hdiff_campaign_duplicate_total"};
  int obs_rc = 0;
  for (const char* name : equal_counters) {
    const long long a = counter_value(chaos_reg, name);
    const long long b = counter_value(inproc_reg, name);
    if (a < 0 || a != b) {
      std::printf("selftest FAILED: %s chaos=%lld in-process=%lld\n", name, a,
                  b);
      obs_rc = 1;
    }
  }
  const long long chaos_obs = hist_count(chaos_reg, "hdiff_chain_observe_micros");
  const long long inproc_obs =
      hist_count(inproc_reg, "hdiff_chain_observe_micros");
  if (chaos_obs <= 0 || chaos_obs != inproc_obs) {
    std::printf(
        "selftest FAILED: hdiff_chain_observe_micros count chaos=%lld "
        "in-process=%lld (want equal and > 0)\n",
        chaos_obs, inproc_obs);
    obs_rc = 1;
  }
  if (obs_rc != 0) return obs_rc;
  const std::string exposition = chaos_fleet.render();
  if (exposition.find("process=\"worker\",shard=\"all\"") == std::string::npos ||
      exposition.find("hdiff_chain_observe_micros_count") ==
          std::string::npos) {
    std::printf(
        "selftest FAILED: merged exposition lacks worker-labeled series\n");
    return 1;
  }
  std::printf(
      "obs: chaos fleet totals equal the in-process run "
      "(chain observations: %lld)\n",
      chaos_obs);

  // -- 2c. stitched trace: distinct supervisor and worker tracks ------------
  const std::string trace_json = chaos_sink.render_chrome_json();
  std::size_t tracks = 0;
  for (std::size_t at = 0;
       (at = trace_json.find("\"process_name\"", at)) != std::string::npos;
       ++at) {
    ++tracks;
  }
  if (tracks < 2 || trace_json.find("supervisor") == std::string::npos ||
      trace_json.find("worker shard") == std::string::npos) {
    std::printf(
        "selftest FAILED: stitched trace wants a supervisor track and >=1 "
        "worker track, got %zu process_name record(s)\n",
        tracks);
    return 1;
  }
  std::printf("trace: %zu process track(s) stitched\n", tracks);

  // -- 2d. flight recorder replays the chaos lifecycle ----------------------
  hdiff::serve::FlightRecorder chaos_flight(serve_config.campaign.state_dir);
  chaos_flight.load();
  const std::vector<hdiff::serve::FlightEvent> chaos_events =
      chaos_flight.events_since(0);
  std::set<std::string> kinds;
  std::uint64_t prev_seq = 0;
  bool monotonic = true;
  for (const auto& event : chaos_events) {
    if (event.seq <= prev_seq) monotonic = false;
    prev_seq = event.seq;
    kinds.insert(event.kind);
  }
  const char* want_kinds[] = {"start",     "spawn",        "worker_death",
                              "hang_kill", "restart",      "round_commit"};
  int flight_rc = monotonic ? 0 : 1;
  if (!monotonic) {
    std::printf("selftest FAILED: flight seqs not strictly increasing\n");
  }
  for (const char* kind : want_kinds) {
    if (!kinds.count(kind)) {
      std::printf("selftest FAILED: flight recorder missing \"%s\" event\n",
                  kind);
      flight_rc = 1;
    }
  }
  if (flight_rc != 0) return flight_rc;
  std::printf("flight: %zu event(s), full chaos lifecycle replayed\n",
              chaos_events.size());

  // -- 3. graceful drain + resume -------------------------------------------
  std::printf("drain: stopping a 4-round campaign via the control plane...\n");
  camp::CampaignEngine drain_reference(base_config("drain-reference", 4));
  camp::CampaignReport drain_ref_report = drain_reference.run(fleet);
  if (!drain_ref_report.error.empty()) {
    std::printf("selftest FAILED: %s\n", drain_ref_report.error.c_str());
    return 1;
  }

  hdiff::serve::ServeConfig drain_config;
  drain_config.campaign = base_config("drain", 4);
  drain_config.shards = 2;
  drain_config.worker_binary = self;
  drain_config.worker_args = {"--mini", "--budget", "24"};
  drain_config.heartbeat_interval_ms = 60;
  hdiff::obs::Registry drain_reg;
  hdiff::serve::FleetMetrics drain_fleet(&drain_reg);
  drain_config.obs.metrics = &drain_reg;
  drain_config.campaign.obs.metrics = &drain_reg;
  drain_config.fleet = &drain_fleet;
  hdiff::serve::ServeReport drain_report;
  std::atomic<bool> run_done{false};
  std::atomic<bool> stop_posted{false};
  std::atomic<bool> health_ok{false};
  // Written by the stopper thread, read only after it joins.
  std::string live_events_body, live_status_body;
  try {
    hdiff::serve::Supervisor supervisor(drain_config, fleet);
    const std::uint16_t port = supervisor.port();
    std::thread stopper([&] {
      while (!run_done.load()) {
        ControlProbe health = control_get(port, "GET", "/healthz");
        if (health.status == 200) health_ok.store(true);
        ControlProbe status = control_get(port, "GET", "/status");
        if (status.status == 200 &&
            status.body.find("\"rounds_completed\":0") == std::string::npos &&
            !status.body.empty()) {
          live_status_body = status.body;
          ControlProbe live_events =
              control_get(port, "GET", "/events?since=0");
          if (live_events.status == 200) live_events_body = live_events.body;
          ControlProbe stop =
              control_get(port, "POST", "/campaigns/default/stop");
          if (stop.status == 202) {
            stop_posted.store(true);
            return;
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
    drain_report = supervisor.run();
    run_done.store(true);
    stopper.join();
  } catch (const hdiff::net::ChainFault& fault) {
    std::printf("selftest FAILED: %s\n", fault.what());
    return 1;
  }
  if (!drain_report.error.empty()) {
    std::printf("selftest FAILED: %s\n", drain_report.error.c_str());
    return 1;
  }
  if (!stop_posted.load() || !drain_report.drained) {
    std::printf(
        "selftest FAILED: drain did not engage (stop posted: %d, drained: "
        "%d) — the campaign finished before the stop landed\n",
        stop_posted.load() ? 1 : 0, drain_report.drained ? 1 : 0);
    return 1;
  }
  if (!health_ok.load()) {
    std::printf("selftest FAILED: /healthz never answered 200\n");
    return 1;
  }
  if (live_events_body.find("\"next_seq\":") == std::string::npos ||
      live_events_body.find("\"kind\":\"spawn\"") == std::string::npos) {
    std::printf(
        "selftest FAILED: live GET /events lacks next_seq/spawn: %s\n",
        live_events_body.c_str());
    return 1;
  }
  if (live_status_body.find("\"last_heartbeat_ms\":") == std::string::npos) {
    std::printf("selftest FAILED: /status lacks last_heartbeat_ms\n");
    return 1;
  }
  std::printf("drain: committed %zu round(s) then stopped; resuming...\n",
              drain_report.rounds_run);
  try {
    hdiff::serve::Supervisor resumer(drain_config, fleet);
    hdiff::serve::ServeReport resume_report = resumer.run();
    if (!resume_report.error.empty() || !resume_report.resumed) {
      std::printf("selftest FAILED: resume failed (%s)\n",
                  resume_report.error.c_str());
      return 1;
    }
  } catch (const hdiff::net::ChainFault& fault) {
    std::printf("selftest FAILED: %s\n", fault.what());
    return 1;
  }
  if (int rc = compare_dirs(base_config("drain-reference", 4).state_dir,
                            drain_config.campaign.state_dir, "drain+resume");
      rc != 0) {
    return rc;
  }

  // Flight seq numbering must continue across the two supervisor
  // generations: the resumer's "resume" event carries a seq above every
  // event the drained daemon persisted, and the file replays both lives.
  hdiff::serve::FlightRecorder drain_flight(drain_config.campaign.state_dir);
  drain_flight.load();
  std::set<std::string> drain_kinds;
  std::uint64_t drain_prev = 0;
  bool drain_monotonic = true;
  for (const auto& event : drain_flight.events_since(0)) {
    if (event.seq <= drain_prev) drain_monotonic = false;
    drain_prev = event.seq;
    drain_kinds.insert(event.kind);
  }
  if (!drain_monotonic || !drain_kinds.count("start") ||
      !drain_kinds.count("stop") || !drain_kinds.count("drain") ||
      !drain_kinds.count("resume") || !drain_kinds.count("round_commit")) {
    std::printf(
        "selftest FAILED: flight events not continuous across restart "
        "(monotonic=%d, %zu kind(s))\n",
        drain_monotonic ? 1 : 0, drain_kinds.size());
    return 1;
  }
  std::printf("flight: seq numbering continuous across drain + resume\n");

  // Control-plane request counters (satellite): every probe the stopper
  // sent was dispatched with metrics on, so the per-(target,status)
  // counters must be present in the merged exposition.
  const std::string drain_exposition = drain_fleet.render();
  if (drain_exposition.find("hdiff_serve_control_requests_total{target=\"/"
                            "status\",status=\"200\"}") == std::string::npos) {
    std::printf(
        "selftest FAILED: exposition lacks "
        "hdiff_serve_control_requests_total{target=\"/status\",...}\n");
    return 1;
  }

  std::printf(
      "selftest PASSED: sharded daemon byte-identical to the single-process "
      "engine under 2 SIGKILLs, 1 hang, and a drain+resume (%zu finding(s), "
      "%zu corpus entr%s)\n",
      chaos_report.total_findings, chaos_report.corpus_entries,
      chaos_report.corpus_entries == 1 ? "y" : "ies");
  fs::remove_all(root, ec);
  return 0;
}

/// `selftest --serve-soak --seconds N`: run the daemon under continuous
/// random worker SIGKILLs and assert /healthz is never unready for more
/// than two heartbeat intervals (restart-within-one-interval plus detection
/// slack).  Drains via the control plane at the deadline.
int selftest_serve_soak(int seconds, std::size_t jobs) {
  namespace fs = std::filesystem;
  namespace camp = hdiff::campaign;

  const fs::path root =
      fs::temp_directory_path() /
      ("hdiff-selftest-serve-soak-" + std::to_string(::getpid()));
  std::error_code ec;
  fs::remove_all(root, ec);

  const int heartbeat_ms = 200;
  hdiff::serve::ServeConfig config;
  config.campaign.state_dir = (root / "soak").string();
  config.campaign.rounds = 1000000;  // effectively: until drained
  config.campaign.budget_per_round = 24;
  config.campaign.executor.jobs = jobs == 0 ? 1 : jobs;
  config.campaign.bootstrap = hdiff::core::verification_probes();
  config.shards = 4;
  config.worker_binary = self_exe_path();
  config.worker_args = {"--mini", "--budget", "24"};
  config.heartbeat_interval_ms = heartbeat_ms;
  config.quarantine_after = 1 << 20;  // soak exercises respawn, not inline

  auto fleet = hdiff::impls::make_all_implementations();
  hdiff::serve::ServeReport report;
  std::atomic<bool> run_done{false};
  std::atomic<long> max_unready_ms{0};
  std::atomic<long> kills{0};
  try {
    hdiff::serve::Supervisor supervisor(config, fleet);
    const std::uint16_t port = supervisor.port();
    std::printf("soak: %d s on 127.0.0.1:%u, heartbeat %d ms...\n", seconds,
                static_cast<unsigned>(port), heartbeat_ms);

    // Killer: SIGKILL a live worker pid from /status every ~150 ms.
    std::thread killer([&] {
      std::size_t turn = 0;
      while (!run_done.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        ControlProbe status = control_get(port, "GET", "/status");
        if (status.status != 200) continue;
        std::vector<long> pids;
        std::size_t at = 0;
        while ((at = status.body.find("\"pid\":", at)) != std::string::npos) {
          const long pid = std::atol(status.body.c_str() + at + 6);
          if (pid > 1) pids.push_back(pid);
          ++at;
        }
        if (pids.empty()) continue;
        ::kill(static_cast<pid_t>(pids[turn++ % pids.size()]), SIGKILL);
        kills.fetch_add(1);
      }
    });

    // Prober: GET /healthz every 20 ms; track the longest unready streak.
    std::thread prober([&] {
      using SoakClock = std::chrono::steady_clock;
      std::chrono::steady_clock::time_point down_since{};
      bool down = false;
      while (!run_done.load()) {
        ControlProbe health = control_get(port, "GET", "/healthz");
        const auto now = SoakClock::now();
        if (health.status == 200) {
          if (down) {
            const long ms =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    now - down_since)
                    .count();
            if (ms > max_unready_ms.load()) max_unready_ms.store(ms);
            down = false;
          }
        } else if (!down) {
          down = true;
          down_since = now;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });

    std::thread stopper([&] {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
      while (!run_done.load() && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      while (!run_done.load()) {
        ControlProbe stop =
            control_get(port, "POST", "/campaigns/default/stop");
        if (stop.status == 202) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });

    report = supervisor.run();
    run_done.store(true);
    killer.join();
    prober.join();
    stopper.join();
  } catch (const hdiff::net::ChainFault& fault) {
    std::printf("selftest FAILED: %s\n", fault.what());
    return 1;
  }

  if (!report.error.empty()) {
    std::printf("selftest FAILED: %s\n", report.error.c_str());
    return 1;
  }
  const long limit = 2L * heartbeat_ms;
  std::printf(
      "soak: %zu round(s), %ld kill(s) sent, %zu death(s), %zu restart(s), "
      "max /healthz unready streak %ld ms (limit %ld)\n",
      report.rounds_run, kills.load(), report.worker_deaths,
      report.worker_restarts, max_unready_ms.load(), limit);
  if (!report.drained) {
    std::printf("selftest FAILED: soak did not drain cleanly\n");
    return 1;
  }
  if (max_unready_ms.load() > limit) {
    std::printf(
        "selftest FAILED: /healthz unready for %ld ms (> 2 heartbeat "
        "intervals)\n",
        max_unready_ms.load());
    return 1;
  }
  std::printf("selftest PASSED: daemon stayed ready under %ld random worker "
              "SIGKILL(s)\n",
              kills.load());
  fs::remove_all(root, ec);
  return 0;
}

int cmd_audit(int argc, char** argv) {
  if (argc < 4) return usage();
  auto front = hdiff::impls::make_implementation(argv[2]);
  auto back = hdiff::impls::make_implementation(argv[3]);
  if (!front || !back || !front->is_proxy() || !back->is_server()) {
    std::fprintf(stderr, "unknown pair %s -> %s\n", argv[2], argv[3]);
    return 1;
  }
  hdiff::net::Chain chain({front.get()}, {back.get()});
  hdiff::core::DetectionEngine engine;
  hdiff::core::DetectionResult total;
  for (const auto& tc : hdiff::core::verification_probes()) {
    hdiff::core::DetectionEngine::accumulate(
        total, engine.evaluate(tc, chain.observe(tc.uuid, tc.raw)));
  }
  bool any = false;
  for (const auto& p : total.pairs) {
    std::printf("[%s] %s->%s: %s\n", std::string(to_string(p.attack)).c_str(),
                p.front.c_str(), p.back.c_str(), p.detail.c_str());
    any = true;
  }
  if (!any) std::printf("no pair-level findings\n");
  return any ? 3 : 0;  // nonzero exit when exposed, for CI gating
}

int cmd_parse(int argc, char** argv) {
  if (argc < 3) return usage();
  auto impl = hdiff::impls::make_implementation(argv[2]);
  if (!impl) {
    std::fprintf(stderr, "unknown implementation %s\n", argv[2]);
    return 1;
  }
  std::stringstream buffer;
  buffer << std::cin.rdbuf();
  std::string raw = buffer.str();
  auto verdict = impl->parse_request(raw);
  auto metrics = hdiff::core::from_verdict("stdin", verdict,
                                           hdiff::core::Stage::kDirect);
  std::printf("%s\n", to_string(metrics).c_str());
  if (!verdict.reason.empty()) {
    std::printf("reason: %s\n", verdict.reason.c_str());
  }
  if (impl->is_proxy()) {
    auto pv = impl->forward_request(raw);
    if (pv.forwarded()) {
      std::printf("-- as proxy, would forward %zu bytes --\n%s\n",
                  pv.forwarded_bytes.size(), pv.forwarded_bytes.c_str());
    } else {
      std::printf("-- as proxy: rejects with %d --\n", pv.status);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string_view cmd = argv[1];
  if (cmd == "analyze") return cmd_analyze(argc, argv);
  if (cmd == "srs") return cmd_srs(argc, argv);
  if (cmd == "generate") return cmd_generate(argc, argv);
  if (cmd == "run") return cmd_run(argc, argv);
  if (cmd == "stats") return cmd_stats(argc, argv);
  if (cmd == "selftest") return cmd_selftest(argc, argv);
  if (cmd == "lint") return cmd_lint(argc, argv);
  if (cmd == "campaign") return cmd_campaign(argc, argv);
  if (cmd == "serve") return cmd_serve(argc, argv);
  if (cmd == "serve-worker") return cmd_serve_worker(argc, argv);
  if (cmd == "tail") return cmd_tail(argc, argv);
  if (cmd == "audit") return cmd_audit(argc, argv);
  if (cmd == "parse") return cmd_parse(argc, argv);
  return usage();
}
