#include "abnf/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "abnf/parser.h"

namespace hdiff::abnf {
namespace {

Grammar http_version_grammar() {
  return parse_rulelist(
      "HTTP-version = HTTP-name \"/\" DIGIT \".\" DIGIT\n"
      "HTTP-name = %x48.54.54.50\n"
      "DIGIT = %x30-39\n",
      "test");
}

TEST(Generator, EnumeratesVersions) {
  Grammar g = http_version_grammar();
  GenOptions opts;
  opts.literal_case_variants = false;
  Generator gen(g, opts);
  auto values = gen.enumerate("HTTP-version", 100);
  ASSERT_FALSE(values.empty());
  for (const auto& v : values) {
    EXPECT_EQ(v.substr(0, 5), "HTTP/");
    EXPECT_EQ(v.size(), 8u);
    EXPECT_EQ(v[6], '.');
  }
  // Representative digits cover lo and hi of the range.
  bool has_zero = false, has_nine = false;
  for (const auto& v : values) {
    if (v[5] == '0') has_zero = true;
    if (v[5] == '9') has_nine = true;
  }
  EXPECT_TRUE(has_zero);
  EXPECT_TRUE(has_nine);
}

TEST(Generator, RespectsLimit) {
  Generator gen(http_version_grammar());
  EXPECT_LE(gen.enumerate("HTTP-version", 5).size(), 5u);
}

TEST(Generator, MinimalDerivation) {
  Grammar g = parse_rulelist(
      "msg = start *mid end\n"
      "start = \"<\"\n"
      "mid = \"m\"\n"
      "end = \">\"\n",
      "test");
  Generator gen(g);
  EXPECT_EQ(gen.minimal("msg"), "<>");
}

TEST(Generator, MinimalPicksShortestAlternative) {
  Grammar g = parse_rulelist("x = \"abc\" / \"a\" / \"ab\"\n", "test");
  Generator gen(g);
  EXPECT_EQ(gen.minimal("x"), "a");
}

TEST(Generator, MinimalHandlesCycles) {
  Grammar g = parse_rulelist("loop = \"x\" loop / \"y\"\n", "test");
  Generator gen(g);
  // The cycle contributes nothing; the non-recursive alternative wins.
  std::string m = gen.minimal("loop");
  EXPECT_TRUE(m == "y" || m == "x");
}

TEST(Generator, PredefinedValuesShortCircuit) {
  Grammar g = parse_rulelist("Host = uri-host\nuri-host = 1*%x61-7A\n", "test");
  Generator gen(g);
  gen.set_predefined("uri-host", {"h1.com", "h2.com"});
  auto values = gen.enumerate("uri-host", 10);
  EXPECT_EQ(values, (std::vector<std::string>{"h1.com", "h2.com"}));
  EXPECT_TRUE(gen.has_predefined("URI-HOST"));
}

TEST(Generator, DepthLimitFallsBackToMinimal) {
  Grammar g = parse_rulelist(
      "deep = \"(\" deep \")\" / \"x\"\n", "test");
  GenOptions opts;
  opts.max_depth = 3;
  Generator gen(g, opts);
  auto values = gen.enumerate("deep", 50);
  for (const auto& v : values) {
    // Nesting depth bounded by the recursion budget.
    EXPECT_LE(std::count(v.begin(), v.end(), '('), 4);
  }
}

TEST(Generator, OptionYieldsBothBranches) {
  Grammar g = parse_rulelist("x = \"a\" [ \"b\" ]\n", "test");
  GenOptions opts;
  opts.literal_case_variants = false;
  Generator gen(g, opts);
  auto values = gen.enumerate("x", 10);
  std::set<std::string> set(values.begin(), values.end());
  EXPECT_TRUE(set.contains("a"));
  EXPECT_TRUE(set.contains("ab"));
}

TEST(Generator, RepetitionWindow) {
  Grammar g = parse_rulelist("x = 1*\"a\"\n", "test");
  GenOptions opts;
  opts.extra_repeats = 2;
  opts.literal_case_variants = false;
  Generator gen(g, opts);
  auto values = gen.enumerate("x", 10);
  std::set<std::string> set(values.begin(), values.end());
  EXPECT_TRUE(set.contains("a"));
  EXPECT_TRUE(set.contains("aa"));
  EXPECT_TRUE(set.contains("aaa"));
  EXPECT_FALSE(set.contains("aaaa"));  // beyond min + extra_repeats
}

TEST(Generator, CaseVariantsForInsensitiveLiterals) {
  Grammar g = parse_rulelist("x = \"chunked\"\ny = %s\"Exact\"\n", "test");
  Generator gen(g);
  auto x = gen.enumerate("x", 10);
  EXPECT_EQ(x, (std::vector<std::string>{"chunked", "CHUNKED"}));
  auto y = gen.enumerate("y", 10);
  EXPECT_EQ(y, (std::vector<std::string>{"Exact"}));
}

TEST(Generator, UnknownRuleYieldsNothing) {
  Generator gen(http_version_grammar());
  EXPECT_TRUE(gen.enumerate("nope", 10).empty());
  EXPECT_EQ(gen.minimal("nope"), "");
}

TEST(Generator, SampleIsDeterministicPerSeed) {
  Grammar g = http_version_grammar();
  Generator gen(g);
  std::mt19937_64 rng1(42), rng2(42);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(gen.sample("HTTP-version", rng1),
              gen.sample("HTTP-version", rng2));
  }
}

TEST(Generator, SampleRespectsGrammarShape) {
  Grammar g = http_version_grammar();
  GenOptions opts;
  opts.literal_case_variants = false;
  Generator gen(g, opts);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 50; ++i) {
    std::string v = gen.sample("HTTP-version", rng);
    ASSERT_EQ(v.size(), 8u);
    EXPECT_EQ(v.substr(0, 5), "HTTP/");
  }
}

TEST(Generator, Utf8EncodingAboveLatin1) {
  Grammar g = parse_rulelist("u = %x2603\n", "test");  // snowman
  Generator gen(g);
  auto values = gen.enumerate("u", 3);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], "\xe2\x98\x83");
}

TEST(DefaultPredefined, LoadsHttpLeaves) {
  Grammar g = http_version_grammar();
  Generator gen(g);
  load_default_http_predefined(gen);
  EXPECT_TRUE(gen.has_predefined("uri-host"));
  EXPECT_TRUE(gen.has_predefined("IPv4address"));
  EXPECT_TRUE(gen.has_predefined("chunk-size"));
}

}  // namespace
}  // namespace hdiff::abnf
