#include "abnf/parser.h"

#include <gtest/gtest.h>

namespace hdiff::abnf {
namespace {

TEST(AbnfParser, SimpleRule) {
  Rule r = parse_rule("DIGIT = %x30-39");
  EXPECT_EQ(r.name, "DIGIT");
  const auto* nv = r.definition->as<NumVal>();
  ASSERT_NE(nv, nullptr);
  EXPECT_TRUE(nv->is_range);
  EXPECT_EQ(nv->lo, 0x30u);
  EXPECT_EQ(nv->hi, 0x39u);
}

TEST(AbnfParser, NumSequence) {
  Rule r = parse_rule("HTTP-name = %x48.54.54.50");
  const auto* nv = r.definition->as<NumVal>();
  ASSERT_NE(nv, nullptr);
  EXPECT_FALSE(nv->is_range);
  EXPECT_EQ(nv->sequence, (std::vector<std::uint32_t>{0x48, 0x54, 0x54, 0x50}));
}

TEST(AbnfParser, DecimalAndBinaryBases) {
  Rule d = parse_rule("CR = %d13");
  EXPECT_EQ(d.definition->as<NumVal>()->sequence[0], 13u);
  Rule b = parse_rule("BITZ = %b1010");
  EXPECT_EQ(b.definition->as<NumVal>()->sequence[0], 10u);
}

TEST(AbnfParser, Alternation) {
  Rule r = parse_rule("x = \"a\" / \"b\" / \"c\"");
  const auto* alt = r.definition->as<Alternation>();
  ASSERT_NE(alt, nullptr);
  EXPECT_EQ(alt->alts.size(), 3u);
}

TEST(AbnfParser, ConcatenationBindsTighterThanAlternation) {
  Rule r = parse_rule("x = \"a\" \"b\" / \"c\"");
  const auto* alt = r.definition->as<Alternation>();
  ASSERT_NE(alt, nullptr);
  ASSERT_EQ(alt->alts.size(), 2u);
  EXPECT_NE(alt->alts[0]->as<Concatenation>(), nullptr);
  EXPECT_NE(alt->alts[1]->as<CharVal>(), nullptr);
}

TEST(AbnfParser, Repetitions) {
  Rule star = parse_rule("x = *y");
  const auto* rep = star.definition->as<Repetition>();
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->min, 0u);
  EXPECT_FALSE(rep->max);

  Rule bounded = parse_rule("x = 1*3y");
  rep = bounded.definition->as<Repetition>();
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->min, 1u);
  EXPECT_EQ(rep->max, 3u);

  Rule exact = parse_rule("x = 2y");
  rep = exact.definition->as<Repetition>();
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->min, 2u);
  EXPECT_EQ(rep->max, 2u);
}

TEST(AbnfParser, GroupAndOption) {
  Rule r = parse_rule("x = ( \"a\" / \"b\" ) [ \"c\" ]");
  const auto* cat = r.definition->as<Concatenation>();
  ASSERT_NE(cat, nullptr);
  ASSERT_EQ(cat->parts.size(), 2u);
  EXPECT_NE(cat->parts[0]->as<Alternation>(), nullptr);
  EXPECT_NE(cat->parts[1]->as<Option>(), nullptr);
}

TEST(AbnfParser, ProseVal) {
  Rule r = parse_rule("uri-host = <host, see [RFC3986], Section 3.2.2>");
  const auto* p = r.definition->as<ProseVal>();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->text, "host, see [RFC3986], Section 3.2.2");
}

TEST(AbnfParser, CaseSensitiveString) {
  Rule r = parse_rule("weak = %s\"W/\"");
  const auto* cv = r.definition->as<CharVal>();
  ASSERT_NE(cv, nullptr);
  EXPECT_TRUE(cv->case_sensitive);
  EXPECT_EQ(cv->text, "W/");
}

TEST(AbnfParser, CommentsIgnored) {
  Rule r = parse_rule("x = \"a\" ; trailing comment");
  EXPECT_NE(r.definition->as<CharVal>(), nullptr);
}

TEST(AbnfParser, IncrementalAlternative) {
  Rule r = parse_rule("methods =/ \"PATCH\"");
  EXPECT_TRUE(r.incremental);
}

TEST(AbnfParser, ListExtensionOneOrMore) {
  // 1#element expands to element *( OWS "," OWS element ).
  Rule r = parse_rule("Transfer-Encoding = 1#transfer-coding");
  const auto* cat = r.definition->as<Concatenation>();
  ASSERT_NE(cat, nullptr);
  ASSERT_EQ(cat->parts.size(), 2u);
  EXPECT_NE(cat->parts[0]->as<RuleRef>(), nullptr);
  EXPECT_NE(cat->parts[1]->as<Repetition>(), nullptr);
}

TEST(AbnfParser, ListExtensionZeroOrMoreIsOptional) {
  Rule r = parse_rule("Connection-ish = #token");
  EXPECT_NE(r.definition->as<Option>(), nullptr);
}

TEST(AbnfParser, ErrorsCarryOffset) {
  EXPECT_THROW(parse_rule("x = ("), ParseError);
  EXPECT_THROW(parse_rule("x = \"unterminated"), ParseError);
  EXPECT_THROW(parse_rule("= y"), ParseError);
  EXPECT_THROW(parse_rule("x y"), ParseError);
  EXPECT_THROW(parse_rule("x = %q12"), ParseError);
}

TEST(AbnfParser, MultilineRule) {
  Rule r = parse_rule(
      "transfer-coding = \"chunked\"\n"
      "                / \"gzip\"\n"
      "                / transfer-extension");
  const auto* alt = r.definition->as<Alternation>();
  ASSERT_NE(alt, nullptr);
  EXPECT_EQ(alt->alts.size(), 3u);
}

TEST(AbnfParser, RulelistSplitsOnColumnZero) {
  std::vector<std::string> errors;
  Grammar g = parse_rulelist(
      "a = \"x\"\nb = a\n    a  ; continuation of b?  no: indented comment\n"
      "c = b\n",
      "test", &errors);
  EXPECT_TRUE(g.contains("a"));
  EXPECT_TRUE(g.contains("b"));
  EXPECT_TRUE(g.contains("c"));
}

TEST(AbnfGrammar, IncrementalMergesAlternatives) {
  Grammar g;
  g.add(parse_rule("m = \"GET\""));
  g.add(parse_rule("m =/ \"POST\""));
  const Rule* r = g.find("m");
  ASSERT_NE(r, nullptr);
  const auto* alt = r->definition->as<Alternation>();
  ASSERT_NE(alt, nullptr);
  EXPECT_EQ(alt->alts.size(), 2u);
}

TEST(AbnfGrammar, RedefinitionReplaces) {
  Grammar g;
  g.add(parse_rule("m = \"GET\"", "old"));
  g.add(parse_rule("m = \"POST\"", "new"));
  EXPECT_EQ(g.find("m")->source_doc, "new");
  EXPECT_EQ(g.size(), 1u);
}

TEST(AbnfParser, RulelistRejectsDuplicateDefinition) {
  // A plain "=" redefinition inside one rulelist is a conflict: the first
  // definition is kept and the duplicate is reported, instead of the old
  // silent last-writer-wins.
  std::vector<std::string> errors;
  Grammar g = parse_rulelist("m = \"GET\"\nm = \"POST\"\n", "test", &errors);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("duplicate definition of rule 'm'"),
            std::string::npos);
  const Rule* r = g.find("m");
  ASSERT_NE(r, nullptr);
  const auto* cv = r->definition->as<CharVal>();
  ASSERT_NE(cv, nullptr);
  EXPECT_EQ(cv->text, "GET");  // first definition wins
}

TEST(AbnfParser, RulelistStillMergesIncrementalDefinitions) {
  std::vector<std::string> errors;
  Grammar g = parse_rulelist("m = \"GET\"\nm =/ \"POST\"\n", "test", &errors);
  EXPECT_TRUE(errors.empty());
  const auto* alt = g.find("m")->definition->as<Alternation>();
  ASSERT_NE(alt, nullptr);
  EXPECT_EQ(alt->alts.size(), 2u);
}

TEST(AbnfGrammar, NamesAreCaseInsensitive) {
  Grammar g;
  g.add(parse_rule("Http-Version = \"HTTP/1.1\""));
  EXPECT_TRUE(g.contains("HTTP-VERSION"));
  EXPECT_TRUE(g.contains("http-version"));
  EXPECT_TRUE(g.contains("http_version"));  // '_' folds to '-'
}

TEST(AbnfGrammar, UndefinedReferences) {
  Grammar g;
  g.add(parse_rule("a = b c"));
  g.add(parse_rule("b = \"x\""));
  auto undefined = g.undefined_references();
  ASSERT_EQ(undefined.size(), 1u);
  EXPECT_EQ(undefined[0], "c");
}

TEST(AbnfAst, RoundTripRendering) {
  Rule r = parse_rule("x = 1*3( \"a\" / %x41-5A ) [ y ]");
  std::string rendered = to_string(r);
  EXPECT_NE(rendered.find("1*3"), std::string::npos);
  EXPECT_NE(rendered.find("%x41-5A"), std::string::npos);
  EXPECT_NE(rendered.find("[ y ]"), std::string::npos);
}

}  // namespace
}  // namespace hdiff::abnf
