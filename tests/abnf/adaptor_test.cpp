#include "abnf/adaptor.h"

#include <gtest/gtest.h>

#include "abnf/parser.h"

namespace hdiff::abnf {
namespace {

Grammar grammar_of(std::string_view text, std::string_view doc) {
  return parse_rulelist(text, doc);
}

TEST(ProseReference, ParsesConventionalShape) {
  std::string rule, doc;
  ASSERT_TRUE(Adaptor::parse_prose_reference(
      "host, see [RFC3986], Section 3.2.2", &rule, &doc));
  EXPECT_EQ(rule, "host");
  EXPECT_EQ(doc, "RFC3986");
}

TEST(ProseReference, RejectsFreeText) {
  EXPECT_FALSE(Adaptor::parse_prose_reference("any CHAR except CTLs", nullptr,
                                              nullptr));
  EXPECT_FALSE(Adaptor::parse_prose_reference("", nullptr, nullptr));
}

TEST(Adaptor, MostRecentDocumentWins) {
  Adaptor adaptor;
  adaptor.register_document("old", grammar_of("x = \"old\"\n", "old"));
  adaptor.register_document("new", grammar_of("x = \"new\"\n", "new"));
  Grammar merged = adaptor.adapt({"old", "new"});
  EXPECT_EQ(merged.find("x")->source_doc, "new");
}

TEST(Adaptor, ResolvesProseIntoReferencedDocument) {
  Adaptor adaptor;
  adaptor.register_document(
      "rfc1", grammar_of("Host = uri-host\n"
                         "uri-host = <host, see [RFC2], Section 3>\n",
                         "rfc1"));
  adaptor.register_document("rfc2", grammar_of("host = 1*%x61-7A\n", "rfc2"));
  AdaptReport report;
  Grammar merged = adaptor.adapt({"rfc1"}, &report);
  // The prose rule became a reference and rfc2's rules were pulled in.
  EXPECT_TRUE(merged.contains("host"));
  EXPECT_TRUE(merged.undefined_references().empty());
  ASSERT_EQ(report.expanded_documents.size(), 1u);
  EXPECT_EQ(report.expanded_documents[0], "RFC2");
  EXPECT_EQ(report.resolved_prose.size(), 1u);
}

TEST(Adaptor, ExpansionDoesNotOverrideExistingNames) {
  Adaptor adaptor;
  adaptor.register_document(
      "rfc1", grammar_of("host = \"mine\"\n"
                         "other = <host, see [RFC2], Section 3>\n",
                         "rfc1"));
  adaptor.register_document("rfc2", grammar_of("host = \"theirs\"\n", "rfc2"));
  Grammar merged = adaptor.adapt({"rfc1"});
  EXPECT_EQ(merged.find("host")->source_doc, "rfc1");
}

TEST(Adaptor, CustomRuleSubstitutesUndefined) {
  Adaptor adaptor;
  adaptor.register_document("rfc1", grammar_of("a = b\n", "rfc1"));
  adaptor.set_custom_rule("b", parse_elements("\"fallback\""));
  AdaptReport report;
  Grammar merged = adaptor.adapt({"rfc1"}, &report);
  EXPECT_TRUE(merged.contains("b"));
  EXPECT_EQ(merged.find("b")->source_doc, "custom");
  ASSERT_EQ(report.custom_substitutions.size(), 1u);
  EXPECT_TRUE(report.unresolved.empty());
}

TEST(Adaptor, UnresolvedReported) {
  Adaptor adaptor;
  adaptor.register_document("rfc1", grammar_of("a = b\n", "rfc1"));
  AdaptReport report;
  adaptor.adapt({"rfc1"}, &report);
  ASSERT_EQ(report.unresolved.size(), 1u);
  EXPECT_EQ(report.unresolved[0], "b");
}

TEST(Adaptor, UnknownDocumentInOrderIsSkipped) {
  Adaptor adaptor;
  adaptor.register_document("rfc1", grammar_of("a = \"x\"\n", "rfc1"));
  Grammar merged = adaptor.adapt({"rfc1", "rfc-missing"});
  EXPECT_EQ(merged.size(), 1u);
}

TEST(Adaptor, ChainedProseResolution) {
  // rfc1 -> rfc2 -> rfc3 across two rounds of expansion.
  Adaptor adaptor;
  adaptor.register_document(
      "rfc1", grammar_of("a = <b, see [RFC2], Section 1>\n", "rfc1"));
  adaptor.register_document(
      "rfc2", grammar_of("b = <c, see [RFC3], Section 1>\n", "rfc2"));
  adaptor.register_document("rfc3", grammar_of("c = \"leaf\"\n", "rfc3"));
  Grammar merged = adaptor.adapt({"rfc1"});
  EXPECT_TRUE(merged.contains("b"));
  EXPECT_TRUE(merged.contains("c"));
  EXPECT_TRUE(merged.undefined_references().empty());
}

}  // namespace
}  // namespace hdiff::abnf
