#include "abnf/extractor.h"

#include <gtest/gtest.h>

namespace hdiff::abnf {
namespace {

constexpr std::string_view kRfcLike = R"(
RFC 9999                    Test Protocol                   January 2026

1.  Introduction

   This sentence is prose and must not be extracted.  A parser MUST
   accept the following grammar.

     greeting   = "hello" SP name CRLF

     name       = 1*ALPHA
                / nickname

     nickname   = "<" 1*ALPHA ">"

   Some closing prose mentioning x = y in passing but across a clause
   boundary it should fail to parse as ABNF and be filtered out.

Someone & Other              Standards Track                    [Page 3]

RFC 9999                    Test Protocol                   January 2026

2.  More

     farewell   = "bye" CRLF
)";

TEST(CleanRfcText, StripsPaginationArtifacts) {
  std::string cleaned = clean_rfc_text(kRfcLike);
  EXPECT_EQ(cleaned.find("[Page 3]"), std::string::npos);
  EXPECT_EQ(cleaned.find("RFC 9999                    Test"),
            std::string::npos);
  EXPECT_NE(cleaned.find("greeting"), std::string::npos);
}

TEST(CleanRfcText, RemovesFormFeeds) {
  EXPECT_EQ(clean_rfc_text("a\fb\n"), "ab\n");
}

TEST(Extractor, FindsAllRules) {
  ExtractionStats stats;
  Grammar g = extract_abnf(clean_rfc_text(kRfcLike), "rfc9999", &stats);
  EXPECT_TRUE(g.contains("greeting"));
  EXPECT_TRUE(g.contains("name"));
  EXPECT_TRUE(g.contains("nickname"));
  EXPECT_TRUE(g.contains("farewell"));
  EXPECT_EQ(stats.parsed_rules, 4u);
}

TEST(Extractor, MultilineContinuationsJoin) {
  Grammar g = extract_abnf(clean_rfc_text(kRfcLike), "rfc9999");
  const Rule* name = g.find("name");
  ASSERT_NE(name, nullptr);
  const auto* alt = name->definition->as<Alternation>();
  ASSERT_NE(alt, nullptr);
  EXPECT_EQ(alt->alts.size(), 2u);
}

TEST(Extractor, ProseIsFilteredByParse) {
  ExtractionStats stats;
  Grammar g = extract_abnf(
      "   value = is assigned when the parser = runs\n", "x", &stats);
  // The candidate fails the ABNF parser and is dropped as prose.
  EXPECT_FALSE(g.contains("value"));
  EXPECT_EQ(stats.parse_failures, 1u);
}

TEST(Extractor, CountsProseValRules) {
  ExtractionStats stats;
  Grammar g = extract_abnf(
      "   uri-host = <host, see [RFC3986], Section 3.2.2>\n", "x", &stats);
  EXPECT_TRUE(g.contains("uri-host"));
  EXPECT_EQ(stats.prose_val_rules, 1u);
}

TEST(Extractor, ProvenanceRecorded) {
  Grammar g = extract_abnf("   a = \"x\"\n", "rfc9999");
  EXPECT_EQ(g.find("a")->source_doc, "rfc9999");
}

TEST(Extractor, DoubleEqualsIsNotAbnf) {
  ExtractionStats stats;
  Grammar g = extract_abnf("   flag == enabled\n", "x", &stats);
  EXPECT_EQ(g.size(), 0u);
  EXPECT_EQ(stats.candidate_chunks, 0u);
}

}  // namespace
}  // namespace hdiff::abnf
