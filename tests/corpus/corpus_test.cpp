#include "corpus/registry.h"

#include <gtest/gtest.h>

#include "report/table.h"

namespace hdiff::corpus {
namespace {

TEST(Corpus, AllEightDocumentsRegistered) {
  auto docs = all_documents();
  ASSERT_EQ(docs.size(), 8u);
  for (const auto& doc : docs) {
    EXPECT_FALSE(doc.text.empty()) << doc.name;
    EXPECT_FALSE(doc.title.empty()) << doc.name;
  }
}

TEST(Corpus, CoreSixInOrder) {
  auto core = http_core_documents();
  ASSERT_EQ(core.size(), 6u);
  EXPECT_EQ(core.front(), "rfc7230");
  EXPECT_EQ(core.back(), "rfc7235");
}

TEST(Corpus, LookupIsCaseInsensitive) {
  EXPECT_NE(find_document("RFC7230"), nullptr);
  EXPECT_NE(find_document("rfc3986"), nullptr);
  EXPECT_EQ(find_document("rfc9999"), nullptr);
}

TEST(Corpus, MeasureCountsWordsAndSentences) {
  const Document* doc = find_document("rfc7230");
  ASSERT_NE(doc, nullptr);
  CorpusSize size = measure(*doc);
  EXPECT_GT(size.words, 2000u);
  EXPECT_GT(size.valid_sentences, 60u);

  CorpusSize total = measure_all();
  EXPECT_GT(total.words, size.words);
}

TEST(Corpus, DocumentsCarryPageArtifactsForCleaning) {
  // The excerpts intentionally keep RFC pagination so the cleaning stage
  // has real work to do.
  const Document* doc = find_document("rfc7230");
  EXPECT_NE(doc->text.find("[Page"), std::string_view::npos);
}

TEST(Corpus, KeySmugglingSentencesPresent) {
  const Document* doc = find_document("rfc7230");
  EXPECT_NE(doc->text.find("request smuggling"), std::string_view::npos);
  EXPECT_NE(doc->text.find("Transfer-Encoding overrides the"),
            std::string_view::npos);
}

}  // namespace
}  // namespace hdiff::corpus

namespace hdiff::report {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NE(t.render().find("| x |"), std::string::npos);
}

TEST(PairMatrix, MarksAttackLetters) {
  auto hrs = parse_pair_keys({"ats->iis"});
  auto hot = parse_pair_keys({"nginx->iis", "nginx->tomcat"});
  auto cpdos = parse_pair_keys({"ats->iis"});
  std::string out = render_pair_matrix({"ats", "nginx"}, {"iis", "tomcat"},
                                       hrs, hot, cpdos);
  EXPECT_NE(out.find("SC"), std::string::npos);  // ats->iis: HRS + CPDoS
  EXPECT_NE(out.find("H"), std::string::npos);
  EXPECT_NE(out.find("."), std::string::npos);
}

TEST(PairMatrix, ParsePairKeysSkipsMalformed) {
  auto pairs = parse_pair_keys({"a->b", "nonsense"});
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, "a");
}

}  // namespace
}  // namespace hdiff::report
