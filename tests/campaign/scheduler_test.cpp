// Divergence-feedback scheduling: the allocation must be a pure function
// of the persisted arm statistics — exact budget conservation, capacity
// caps, spill redistribution, and yield-proportional shares with
// deterministic tie-breaks.
#include "campaign/scheduler.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <vector>

namespace hdiff::campaign {
namespace {

std::size_t sum(const std::vector<std::size_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::size_t{0});
}

TEST(SchedulerTest, UntriedArmGetsFullWeight) {
  EXPECT_EQ(arm_weight(ArmView{0, 0, 10}), std::size_t{1} << 16);
}

TEST(SchedulerTest, WeightDecaysWithBarrenAttempts) {
  const std::size_t fresh = arm_weight(ArmView{0, 0, 10});
  const std::size_t hammered = arm_weight(ArmView{15, 0, 10});
  EXPECT_LT(hammered, fresh);
  EXPECT_GT(hammered, 0u);  // every arm stays live
}

TEST(SchedulerTest, WeightGrowsWithNovelYield) {
  EXPECT_GT(arm_weight(ArmView{10, 5, 10}), arm_weight(ArmView{10, 0, 10}));
}

TEST(SchedulerTest, AllocationSumsToMinOfBudgetAndCapacity) {
  const std::vector<ArmView> arms = {{0, 0, 4}, {3, 1, 4}, {9, 0, 4}};
  // Budget below capacity: everything spent.
  EXPECT_EQ(sum(allocate_budget(7, arms)), 7u);
  // Budget above capacity: saturates at 12.
  EXPECT_EQ(sum(allocate_budget(100, arms)), 12u);
  // Zero budget: nothing.
  EXPECT_EQ(sum(allocate_budget(0, arms)), 0u);
}

TEST(SchedulerTest, CapacityIsAHardCap) {
  const std::vector<ArmView> arms = {{0, 0, 2}, {0, 0, 3}, {0, 0, 1}};
  const auto alloc = allocate_budget(50, arms);
  ASSERT_EQ(alloc.size(), arms.size());
  for (std::size_t i = 0; i < arms.size(); ++i) {
    EXPECT_LE(alloc[i], arms[i].capacity);
  }
  EXPECT_EQ(sum(alloc), 6u);
}

TEST(SchedulerTest, ZeroCapacityArmsGetNothing) {
  const std::vector<ArmView> arms = {{0, 0, 0}, {0, 0, 8}, {0, 0, 0}};
  const auto alloc = allocate_budget(8, arms);
  EXPECT_EQ(alloc[0], 0u);
  EXPECT_EQ(alloc[1], 8u);
  EXPECT_EQ(alloc[2], 0u);
}

TEST(SchedulerTest, YieldingArmOutranksBarrenArm) {
  // Same attempts, very different yield, ample capacity.
  const std::vector<ArmView> arms = {{10, 8, 100}, {10, 0, 100}};
  const auto alloc = allocate_budget(10, arms);
  EXPECT_GT(alloc[0], alloc[1]);
}

TEST(SchedulerTest, SpillFromCappedArmIsRedistributed) {
  // The high-yield arm would deserve nearly everything but can only take 1;
  // the rest must land on the other arms, not evaporate.
  const std::vector<ArmView> arms = {{1, 50, 1}, {20, 0, 10}, {20, 0, 10}};
  const auto alloc = allocate_budget(9, arms);
  EXPECT_EQ(alloc[0], 1u);
  EXPECT_EQ(sum(alloc), 9u);
}

TEST(SchedulerTest, DeterministicAcrossCalls) {
  const std::vector<ArmView> arms = {{3, 1, 5}, {0, 0, 7}, {12, 2, 4},
                                     {1, 0, 9}, {6, 6, 2}};
  const auto first = allocate_budget(17, arms);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(allocate_budget(17, arms), first);
  }
}

TEST(SchedulerTest, TiesBreakTowardLowerIndex) {
  // Four identical arms, budget not divisible: the odd unit must go to the
  // earliest arm, deterministically.
  const std::vector<ArmView> arms(4, ArmView{0, 0, 10});
  const auto alloc = allocate_budget(5, arms);
  EXPECT_EQ(alloc, (std::vector<std::size_t>{2, 1, 1, 1}));
}

TEST(SchedulerTest, EmptyArmListSpendsNothing) {
  EXPECT_TRUE(allocate_budget(10, {}).empty());
}

TEST(SchedulerTest, ZeroCoverageTermsReduceToLegacyWeight) {
  // Coverage off must be indistinguishable from the pre-coverage scheduler:
  // the same integer weight for every (attempts, novel) pair.
  for (std::size_t attempts : {0u, 1u, 7u, 100u}) {
    for (std::size_t novel : {0u, 2u, 9u}) {
      const std::size_t legacy = ((1 + novel) << 16) / (1 + attempts);
      EXPECT_EQ(arm_weight(ArmView{attempts, novel, 10, 0, 0}), legacy);
    }
  }
}

TEST(SchedulerTest, CoverageTermsBoostWeight) {
  EXPECT_GT(arm_weight(ArmView{10, 0, 10, 3, 0}),
            arm_weight(ArmView{10, 0, 10, 0, 0}));
  EXPECT_GT(arm_weight(ArmView{10, 0, 10, 0, 2}),
            arm_weight(ArmView{10, 0, 10, 0, 0}));
  // An uncovered production counts like a novel signature, unit for unit.
  EXPECT_EQ(arm_weight(ArmView{5, 0, 10, 4, 0}),
            arm_weight(ArmView{5, 4, 10, 0, 0}));
}

TEST(SchedulerTest, CoverageWeightedAllocationConservesBudget) {
  const std::vector<ArmView> arms = {{4, 0, 6, 5, 2},
                                     {4, 0, 6, 0, 0},
                                     {0, 0, 3, 1, 1}};
  const auto alloc = allocate_budget(11, arms);
  EXPECT_EQ(sum(alloc), 11u);
  for (std::size_t i = 0; i < arms.size(); ++i) {
    EXPECT_LE(alloc[i], arms[i].capacity);
  }
  // The coverage-rich arm outdraws its coverage-blind twin.
  EXPECT_GT(alloc[0], alloc[1]);
}

TEST(SchedulerTest, CoverageWeightedCapsStillSpill) {
  // The boosted arm saturates its tiny capacity; the spill must land on the
  // others and the total must still be exact.
  const std::vector<ArmView> arms = {{0, 0, 2, 9, 9},
                                     {10, 0, 8, 0, 0},
                                     {10, 0, 8, 0, 0}};
  const auto alloc = allocate_budget(10, arms);
  EXPECT_EQ(alloc[0], 2u);
  EXPECT_EQ(sum(alloc), 10u);
}

TEST(SchedulerTest, CoverageWeightedTiesBreakTowardLowerIndex) {
  const std::vector<ArmView> arms(3, ArmView{2, 1, 10, 3, 1});
  const auto alloc = allocate_budget(4, arms);
  EXPECT_EQ(alloc, (std::vector<std::size_t>{2, 1, 1}));
}

}  // namespace
}  // namespace hdiff::campaign
