// Persistent campaign state: spec text format round-trips byte-exotic
// specs, content addressing keys on the serialized form (not the wire
// concatenation), and the StateStore survives a commit/load cycle with the
// findings artifact healed back to the committed round.
#include "campaign/store.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "abnf/parser.h"
#include "analysis/coverage.h"
#include "campaign/engine.h"
#include "campaign/fingerprint.h"
#include "core/probes.h"
#include "impls/products.h"

namespace hdiff::campaign {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const fs::path dir = fs::temp_directory_path() /
                       ("hdiff-store-test-" + std::to_string(::getpid()) +
                        "-" + tag + "-" + std::to_string(counter++));
  fs::remove_all(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

http::RequestSpec exotic_spec() {
  http::RequestSpec spec;
  spec.method = "PO ST";  // space inside a field must survive hex encoding
  spec.target = "/p?q=\x01\x7f";
  spec.version = "HTTP/1.1";
  spec.sep1 = "\t";
  spec.sep2 = "  ";
  spec.line_terminator = "\n";
  spec.headers_terminator = "\r\n";
  http::HeaderSpec h;
  h.name = "X-Bin";
  h.value = std::string("a\0b", 3);  // embedded NUL
  h.separator = " :\t";
  h.terminator = "\r\r\n";
  spec.headers.push_back(h);
  spec.add("Host", "origin.example");
  spec.body = std::string("len\0gth\xff", 8);
  return spec;
}

TEST(StoreTest, SerializeRoundTripsExoticBytes) {
  const http::RequestSpec spec = exotic_spec();
  http::RequestSpec back;
  ASSERT_TRUE(deserialize_spec(serialize_spec(spec), &back));
  EXPECT_EQ(back, spec);
}

TEST(StoreTest, SerializeRoundTripsEmptyFields) {
  http::RequestSpec spec;  // canonical GET /, no headers, no body
  spec.version = "";       // 0.9-style: empty version field
  http::RequestSpec back;
  ASSERT_TRUE(deserialize_spec(serialize_spec(spec), &back));
  EXPECT_EQ(back, spec);
}

TEST(StoreTest, DeserializeRejectsGarbage) {
  http::RequestSpec out;
  EXPECT_FALSE(deserialize_spec("", &out));
  EXPECT_FALSE(deserialize_spec("not-a-spec\n", &out));
}

TEST(StoreTest, ContentAddressSeparatesWireCollisions) {
  // Both specs concatenate to the identical wire bytes "GET / HTTP/1.1\r\n"
  // "X: a\r\nHost: h\r\n\r\n" — only the value/terminator split differs.
  http::RequestSpec a;
  a.add("X", "a");
  a.add("Host", "h");

  http::RequestSpec b = a;
  b.headers[0].value = "a\r";
  b.headers[0].terminator = "\n";

  ASSERT_EQ(a.to_wire(), b.to_wire());
  EXPECT_NE(content_address(a), content_address(b));
}

TEST(StoreTest, ContentAddressIsStableAndHex) {
  const http::RequestSpec spec = exotic_spec();
  const std::string addr = content_address(spec);
  EXPECT_EQ(addr.size(), 16u);
  EXPECT_EQ(addr, content_address(spec));
  EXPECT_EQ(addr, hex64(serialize_spec(spec)));
}

TEST(StoreTest, AddEntryIsIdempotentByHash) {
  StateStore store(fresh_dir("idem"));
  ASSERT_TRUE(store.init("sig"));

  CorpusEntry entry;
  entry.spec = exotic_spec();
  entry.hash = content_address(entry.spec);
  entry.provenance = "seed:exotic";

  const std::size_t first = store.add_entry(entry);
  const std::size_t again = store.add_entry(entry);
  EXPECT_EQ(first, again);
  EXPECT_EQ(store.entries.size(), 1u);
  EXPECT_TRUE(store.has_entry(entry.hash));
  EXPECT_TRUE(fs::exists(store.corpus_path(entry.hash)));
}

TEST(StoreTest, CommitLoadRoundTripsEveryField) {
  const std::string dir = fresh_dir("roundtrip");
  StateStore store(dir);
  ASSERT_TRUE(store.init("cfg-sig-1"));

  CorpusEntry entry;
  entry.spec = exotic_spec();
  entry.hash = content_address(entry.spec);
  entry.provenance = "seed:exotic";
  store.add_entry(entry);

  store.arms[{0, "duplicate-header"}] = ArmStats{5, 2, 3};
  store.arms[{0, "unicode-in-value"}] = ArmStats{1, 0, 1};

  RetryEntry retry;
  retry.provenance = "seed:get";
  retry.raw = "GET / HTTP/1.1\r\nHost: h\r\n\r\n";
  retry.spec_text = serialize_spec(entry.spec);
  retry.description = "faulted twice";
  store.retry_queue.push_back(retry);

  Finding f;
  f.round = 0;
  f.fingerprint = "0123456789abcdef";
  f.detector = "HRS";
  f.vector = {"squid->iis", "ats->tomcat"};
  f.provenance = "seed:exotic";
  f.case_uuid = "camp-r0-1";
  f.description = "desc with \"quotes\" and \x01 bytes";
  store.add_finding(f);

  ASSERT_TRUE(store.commit_round(0)) << store.error();

  StateStore loaded(dir);
  ASSERT_TRUE(loaded.exists());
  ASSERT_TRUE(loaded.load()) << loaded.error();
  EXPECT_EQ(loaded.config_sig, "cfg-sig-1");
  EXPECT_EQ(loaded.rounds_completed, 1u);
  ASSERT_EQ(loaded.entries.size(), 1u);
  EXPECT_EQ(loaded.entries[0].hash, entry.hash);
  EXPECT_EQ(loaded.entries[0].provenance, entry.provenance);
  EXPECT_EQ(loaded.entries[0].spec, entry.spec);

  ASSERT_EQ(loaded.arms.size(), 2u);
  const auto& arm = loaded.arms.at({0, "duplicate-header"});
  EXPECT_EQ(arm.attempts, 5u);
  EXPECT_EQ(arm.novel, 2u);
  EXPECT_EQ(arm.cursor, 3u);

  ASSERT_EQ(loaded.retry_queue.size(), 1u);
  EXPECT_EQ(loaded.retry_queue[0].provenance, retry.provenance);
  EXPECT_EQ(loaded.retry_queue[0].raw, retry.raw);
  EXPECT_EQ(loaded.retry_queue[0].spec_text, retry.spec_text);
  EXPECT_EQ(loaded.retry_queue[0].description, retry.description);

  ASSERT_EQ(loaded.findings.size(), 1u);
  EXPECT_EQ(loaded.findings[0].fingerprint, f.fingerprint);
  EXPECT_EQ(loaded.findings[0].vector, f.vector);
  EXPECT_EQ(loaded.findings[0].description, f.description);
  EXPECT_TRUE(loaded.known_fingerprint(f.fingerprint));

  // Re-committing the loaded image must reproduce the state bytes exactly
  // (this is what makes resume byte-identical).
  const std::string before = slurp(loaded.state_path());
  ASSERT_TRUE(loaded.commit_round(0));
  EXPECT_EQ(slurp(loaded.state_path()), before);

  fs::remove_all(dir);
}

analysis::CoveragePlan fixture_plan() {
  std::vector<std::string> errors;
  abnf::Grammar g = abnf::parse_rulelist(
      "root = a b\n"
      "a = \"ab\" / \"ac\"\n"
      "b = %x41-5A / %x50-60\n",
      "fixture", &errors);
  EXPECT_TRUE(errors.empty());
  auto plan = analysis::build_coverage_plan(g, {"root"});
  plan.bootstrap_covered = {plan.id_of("root")};
  return plan;
}

TEST(StoreTest, CoverageBlockRoundTripsThroughTheCheckpoint) {
  const std::string dir = fresh_dir("coverage");
  StateStore store(dir);
  ASSERT_TRUE(store.init("cfg"));
  store.coverage = fixture_plan();
  store.coverage_weighting = false;  // the non-default must survive
  store.covered = store.coverage.bootstrap_covered;
  store.covered.insert(0);
  store.gap_hits[1] = 7;
  ASSERT_TRUE(store.commit_round(0)) << store.error();

  StateStore loaded(dir);
  ASSERT_TRUE(loaded.load()) << loaded.error();
  ASSERT_TRUE(loaded.coverage_enabled());
  EXPECT_FALSE(loaded.coverage_weighting);
  EXPECT_EQ(loaded.coverage.sig, store.coverage.sig);
  ASSERT_EQ(loaded.coverage.productions.size(),
            store.coverage.productions.size());
  ASSERT_EQ(loaded.coverage.sites.size(), store.coverage.sites.size());
  for (std::size_t i = 0; i < loaded.coverage.sites.size(); ++i) {
    const auto& got = loaded.coverage.sites[i];
    const auto& want = store.coverage.sites[i];
    EXPECT_EQ(got.id, want.id);
    EXPECT_EQ(got.rule, want.rule);
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.overlap, want.overlap);
    EXPECT_EQ(got.witness, want.witness);
    EXPECT_EQ(got.rank, want.rank);
    EXPECT_EQ(got.related, want.related);  // the attribution cone
  }
  EXPECT_EQ(loaded.coverage.bootstrap_covered,
            store.coverage.bootstrap_covered);
  EXPECT_EQ(loaded.covered, store.covered);
  EXPECT_EQ(loaded.gap_hits, store.gap_hits);

  // Recommitting the loaded image must reproduce the state bytes exactly —
  // the resume contract.
  const std::string committed = slurp(store.state_path());
  ASSERT_TRUE(loaded.commit_round(0)) << loaded.error();
  EXPECT_EQ(slurp(loaded.state_path()), committed);
  EXPECT_NE(committed.find("covsig=" + store.coverage.sig),
            std::string::npos);
  fs::remove_all(dir);
}

TEST(StoreTest, PreCoverageCheckpointLoadsWithCoverageDisabled) {
  // Checkpoints written before the coverage map existed carry no cov*
  // keys; they must keep loading, with coverage reported as disabled.
  const std::string dir = fresh_dir("precov");
  StateStore store(dir);
  ASSERT_TRUE(store.init("cfg"));
  ASSERT_TRUE(store.commit_round(0)) << store.error();
  EXPECT_EQ(slurp(store.state_path()).find("cov"), std::string::npos);

  StateStore loaded(dir);
  ASSERT_TRUE(loaded.load()) << loaded.error();
  EXPECT_FALSE(loaded.coverage_enabled());
  EXPECT_TRUE(loaded.covered.empty());
  EXPECT_TRUE(loaded.gap_hits.empty());
  fs::remove_all(dir);
}

TEST(StoreTest, CovsiteRejectsOutOfRangeReferences) {
  // A covsite naming a production id beyond the covprod list must be
  // refused at load, whether as the owner or in the attribution cone.
  const std::string dir = fresh_dir("badcov");
  StateStore store(dir);
  ASSERT_TRUE(store.init("cfg"));
  ASSERT_TRUE(store.commit_round(0)) << store.error();
  {
    std::ofstream out(store.state_path(), std::ios::binary);
    out << "hdiff-campaign-state-v1\nconfig_sig=cfg\nrounds_completed=1\n"
        << "covsig=x\ncovweight=1\ncovprod=0 1 root\n"
        << "covsite=9 1 2 f " << std::string(64, '0') << " 5\n";
  }
  StateStore loaded(dir);
  EXPECT_FALSE(loaded.load());
  EXPECT_NE(loaded.error().find("covsite"), std::string::npos);
  fs::remove_all(dir);
}

TEST(StoreTest, LoadTruncatesUncommittedFindingLines) {
  const std::string dir = fresh_dir("truncate");
  StateStore store(dir);
  ASSERT_TRUE(store.init("sig"));

  Finding f;
  f.round = 0;
  f.fingerprint = "00000000000000aa";
  f.detector = "HoT";
  f.vector = {"ats->nginx"};
  f.provenance = "seed:absolute";
  f.case_uuid = "camp-r0-0";
  f.description = "committed";
  store.add_finding(f);
  ASSERT_TRUE(store.commit_round(0));

  // Simulate the crash window: a round-1 finding line was appended but the
  // checkpoint rename never happened.
  {
    std::ofstream out(store.findings_path(), std::ios::app | std::ios::binary);
    Finding orphan = f;
    orphan.round = 1;
    orphan.fingerprint = "00000000000000bb";
    orphan.description = "uncommitted-orphan";
    out << finding_jsonl(orphan) << "\n";
  }
  ASSERT_NE(slurp(store.findings_path()).find("uncommitted-orphan"),
            std::string::npos);

  StateStore loaded(dir);
  ASSERT_TRUE(loaded.load()) << loaded.error();
  const std::string healed = slurp(loaded.findings_path());
  EXPECT_EQ(healed.find("uncommitted-orphan"), std::string::npos);
  EXPECT_NE(healed.find("committed"), std::string::npos);
  ASSERT_EQ(loaded.findings.size(), 1u);

  fs::remove_all(dir);
}

TEST(StoreTest, FindingJsonlIsOneRoundTaggedLine) {
  Finding f;
  f.round = 7;
  f.fingerprint = "deadbeefdeadbeef";
  f.detector = "CPDoS";
  f.vector = {"squid->iis"};
  f.provenance = "mutant:abc:space-before-colon";
  f.case_uuid = "camp-r7-3";
  f.description = "cacheable error split";

  const std::string line = finding_jsonl(f);
  EXPECT_EQ(line.find("{\"round\":7,"), 0u);  // round first, cheap truncation
  EXPECT_NE(line.find("\"fingerprint\":\"deadbeefdeadbeef\""),
            std::string::npos);
  EXPECT_NE(line.find("\"detector\":\"CPDoS\""), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(StoreTest, FreshDirDoesNotExist) {
  StateStore store(fresh_dir("missing"));
  EXPECT_FALSE(store.exists());
  EXPECT_FALSE(store.load());
}

TEST(StoreTest, LoadHealsALineTornMidHexEscape) {
  const std::string dir = fresh_dir("torn-escape");
  StateStore store(dir);
  ASSERT_TRUE(store.init("sig"));

  Finding f;
  f.round = 0;
  f.fingerprint = "00000000000000cc";
  f.detector = "HRS";
  f.vector = {"squid->iis"};
  f.provenance = "seed:get";
  f.case_uuid = "camp-r0-0";
  f.description = "committed";
  store.add_finding(f);
  ASSERT_TRUE(store.commit_round(0));
  const std::string committed_bytes = slurp(store.findings_path());

  // The nastiest crash window: the appending writer died partway through a
  // JSON escape sequence, leaving a final line that is not merely
  // uncommitted but unparseable ("...\u00" with the hex digits missing).
  Finding orphan = f;
  orphan.round = 1;
  orphan.fingerprint = "00000000000000dd";
  orphan.description = std::string("ctl \x01 byte", 10);
  const std::string orphan_line = finding_jsonl(orphan);
  const std::size_t escape = orphan_line.find("\\u00");
  ASSERT_NE(escape, std::string::npos) << orphan_line;
  {
    std::ofstream out(store.findings_path(), std::ios::app | std::ios::binary);
    out << orphan_line.substr(0, escape + 3);  // cut inside the escape
  }
  ASSERT_NE(slurp(store.findings_path()), committed_bytes);

  StateStore loaded(dir);
  ASSERT_TRUE(loaded.load()) << loaded.error();
  EXPECT_EQ(slurp(loaded.findings_path()), committed_bytes);
  ASSERT_EQ(loaded.findings.size(), 1u);
  EXPECT_EQ(loaded.findings[0].fingerprint, "00000000000000cc");

  fs::remove_all(dir);
}

TEST(StoreTest, StaleTornTmpFileCannotSurviveACommit) {
  const std::string dir = fresh_dir("torn-tmp");
  StateStore store(dir);
  ASSERT_TRUE(store.init("sig"));
  ASSERT_TRUE(store.commit_round(0));
  const std::string committed = slurp(store.state_path());

  // A crash between tmp-write and rename leaves a torn tmp file behind.
  // It must never shadow or corrupt the checkpoint: loads ignore it and
  // the next durable commit simply overwrites it.
  const std::string tmp = store.state_path() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    out << committed.substr(0, committed.size() / 2) << "GARBAGE";
  }
  StateStore loaded(dir);
  ASSERT_TRUE(loaded.load()) << loaded.error();
  EXPECT_EQ(loaded.rounds_completed, 1u);
  EXPECT_EQ(slurp(loaded.state_path()), committed);

  ASSERT_TRUE(loaded.commit_round(0));
  EXPECT_FALSE(fs::exists(tmp)) << "commit left its tmp file behind";
  EXPECT_EQ(slurp(loaded.state_path()), committed);

  fs::remove_all(dir);
}

TEST(StoreTest, WriteFileAtomicDurablePublishesAllOrNothing) {
  const std::string dir = fresh_dir("durable");
  fs::create_directories(dir);
  const std::string path = dir + "/blob";
  ASSERT_TRUE(write_file_atomic_durable(path, "first"));
  EXPECT_EQ(slurp(path), "first");
  ASSERT_TRUE(write_file_atomic_durable(path, "second"));
  EXPECT_EQ(slurp(path), "second");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  // A missing parent directory is a clean failure, not a partial file.
  EXPECT_FALSE(write_file_atomic_durable(dir + "/no/such/dir/blob", "x"));
  fs::remove_all(dir);
}

TEST(StoreTest, SecondWriterIsRefusedByTheLockFile) {
  const std::string dir = fresh_dir("lock");
  StateStore first(dir);
  ASSERT_TRUE(first.acquire_lock()) << first.error();
  EXPECT_TRUE(first.locked());

  // flock is per open file description, so a second StateStore in this
  // process stands in for a second engine/serve process.
  StateStore second(dir);
  EXPECT_FALSE(second.acquire_lock());
  EXPECT_FALSE(second.locked());
  EXPECT_NE(second.error().find("lock"), std::string::npos)
      << second.error();

  first.release_lock();
  EXPECT_TRUE(second.acquire_lock()) << second.error();
  fs::remove_all(dir);
}

TEST(StoreTest, EngineRefusesADirAnotherWriterHolds) {
  const std::string dir = fresh_dir("engine-lock");
  StateStore holder(dir);
  ASSERT_TRUE(holder.acquire_lock());

  CampaignConfig config;
  config.state_dir = dir;
  config.rounds = 1;
  config.budget_per_round = 4;
  config.bootstrap = core::verification_probes();
  CampaignEngine engine(config);
  const auto fleet = impls::make_all_implementations();
  const CampaignReport report = engine.run(fleet);
  EXPECT_FALSE(report.error.empty());
  EXPECT_NE(report.error.find("lock"), std::string::npos) << report.error;
  // The refused engine must not have touched the dir: no checkpoint.
  EXPECT_FALSE(StateStore(dir).exists());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hdiff::campaign
