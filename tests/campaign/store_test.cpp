// Persistent campaign state: spec text format round-trips byte-exotic
// specs, content addressing keys on the serialized form (not the wire
// concatenation), and the StateStore survives a commit/load cycle with the
// findings artifact healed back to the committed round.
#include "campaign/store.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/fingerprint.h"

namespace hdiff::campaign {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const fs::path dir = fs::temp_directory_path() /
                       ("hdiff-store-test-" + std::to_string(::getpid()) +
                        "-" + tag + "-" + std::to_string(counter++));
  fs::remove_all(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

http::RequestSpec exotic_spec() {
  http::RequestSpec spec;
  spec.method = "PO ST";  // space inside a field must survive hex encoding
  spec.target = "/p?q=\x01\x7f";
  spec.version = "HTTP/1.1";
  spec.sep1 = "\t";
  spec.sep2 = "  ";
  spec.line_terminator = "\n";
  spec.headers_terminator = "\r\n";
  http::HeaderSpec h;
  h.name = "X-Bin";
  h.value = std::string("a\0b", 3);  // embedded NUL
  h.separator = " :\t";
  h.terminator = "\r\r\n";
  spec.headers.push_back(h);
  spec.add("Host", "origin.example");
  spec.body = std::string("len\0gth\xff", 8);
  return spec;
}

TEST(StoreTest, SerializeRoundTripsExoticBytes) {
  const http::RequestSpec spec = exotic_spec();
  http::RequestSpec back;
  ASSERT_TRUE(deserialize_spec(serialize_spec(spec), &back));
  EXPECT_EQ(back, spec);
}

TEST(StoreTest, SerializeRoundTripsEmptyFields) {
  http::RequestSpec spec;  // canonical GET /, no headers, no body
  spec.version = "";       // 0.9-style: empty version field
  http::RequestSpec back;
  ASSERT_TRUE(deserialize_spec(serialize_spec(spec), &back));
  EXPECT_EQ(back, spec);
}

TEST(StoreTest, DeserializeRejectsGarbage) {
  http::RequestSpec out;
  EXPECT_FALSE(deserialize_spec("", &out));
  EXPECT_FALSE(deserialize_spec("not-a-spec\n", &out));
}

TEST(StoreTest, ContentAddressSeparatesWireCollisions) {
  // Both specs concatenate to the identical wire bytes "GET / HTTP/1.1\r\n"
  // "X: a\r\nHost: h\r\n\r\n" — only the value/terminator split differs.
  http::RequestSpec a;
  a.add("X", "a");
  a.add("Host", "h");

  http::RequestSpec b = a;
  b.headers[0].value = "a\r";
  b.headers[0].terminator = "\n";

  ASSERT_EQ(a.to_wire(), b.to_wire());
  EXPECT_NE(content_address(a), content_address(b));
}

TEST(StoreTest, ContentAddressIsStableAndHex) {
  const http::RequestSpec spec = exotic_spec();
  const std::string addr = content_address(spec);
  EXPECT_EQ(addr.size(), 16u);
  EXPECT_EQ(addr, content_address(spec));
  EXPECT_EQ(addr, hex64(serialize_spec(spec)));
}

TEST(StoreTest, AddEntryIsIdempotentByHash) {
  StateStore store(fresh_dir("idem"));
  ASSERT_TRUE(store.init("sig"));

  CorpusEntry entry;
  entry.spec = exotic_spec();
  entry.hash = content_address(entry.spec);
  entry.provenance = "seed:exotic";

  const std::size_t first = store.add_entry(entry);
  const std::size_t again = store.add_entry(entry);
  EXPECT_EQ(first, again);
  EXPECT_EQ(store.entries.size(), 1u);
  EXPECT_TRUE(store.has_entry(entry.hash));
  EXPECT_TRUE(fs::exists(store.corpus_path(entry.hash)));
}

TEST(StoreTest, CommitLoadRoundTripsEveryField) {
  const std::string dir = fresh_dir("roundtrip");
  StateStore store(dir);
  ASSERT_TRUE(store.init("cfg-sig-1"));

  CorpusEntry entry;
  entry.spec = exotic_spec();
  entry.hash = content_address(entry.spec);
  entry.provenance = "seed:exotic";
  store.add_entry(entry);

  store.arms[{0, "duplicate-header"}] = ArmStats{5, 2, 3};
  store.arms[{0, "unicode-in-value"}] = ArmStats{1, 0, 1};

  RetryEntry retry;
  retry.provenance = "seed:get";
  retry.raw = "GET / HTTP/1.1\r\nHost: h\r\n\r\n";
  retry.spec_text = serialize_spec(entry.spec);
  retry.description = "faulted twice";
  store.retry_queue.push_back(retry);

  Finding f;
  f.round = 0;
  f.fingerprint = "0123456789abcdef";
  f.detector = "HRS";
  f.vector = {"squid->iis", "ats->tomcat"};
  f.provenance = "seed:exotic";
  f.case_uuid = "camp-r0-1";
  f.description = "desc with \"quotes\" and \x01 bytes";
  store.add_finding(f);

  ASSERT_TRUE(store.commit_round(0)) << store.error();

  StateStore loaded(dir);
  ASSERT_TRUE(loaded.exists());
  ASSERT_TRUE(loaded.load()) << loaded.error();
  EXPECT_EQ(loaded.config_sig, "cfg-sig-1");
  EXPECT_EQ(loaded.rounds_completed, 1u);
  ASSERT_EQ(loaded.entries.size(), 1u);
  EXPECT_EQ(loaded.entries[0].hash, entry.hash);
  EXPECT_EQ(loaded.entries[0].provenance, entry.provenance);
  EXPECT_EQ(loaded.entries[0].spec, entry.spec);

  ASSERT_EQ(loaded.arms.size(), 2u);
  const auto& arm = loaded.arms.at({0, "duplicate-header"});
  EXPECT_EQ(arm.attempts, 5u);
  EXPECT_EQ(arm.novel, 2u);
  EXPECT_EQ(arm.cursor, 3u);

  ASSERT_EQ(loaded.retry_queue.size(), 1u);
  EXPECT_EQ(loaded.retry_queue[0].provenance, retry.provenance);
  EXPECT_EQ(loaded.retry_queue[0].raw, retry.raw);
  EXPECT_EQ(loaded.retry_queue[0].spec_text, retry.spec_text);
  EXPECT_EQ(loaded.retry_queue[0].description, retry.description);

  ASSERT_EQ(loaded.findings.size(), 1u);
  EXPECT_EQ(loaded.findings[0].fingerprint, f.fingerprint);
  EXPECT_EQ(loaded.findings[0].vector, f.vector);
  EXPECT_EQ(loaded.findings[0].description, f.description);
  EXPECT_TRUE(loaded.known_fingerprint(f.fingerprint));

  // Re-committing the loaded image must reproduce the state bytes exactly
  // (this is what makes resume byte-identical).
  const std::string before = slurp(loaded.state_path());
  ASSERT_TRUE(loaded.commit_round(0));
  EXPECT_EQ(slurp(loaded.state_path()), before);

  fs::remove_all(dir);
}

TEST(StoreTest, LoadTruncatesUncommittedFindingLines) {
  const std::string dir = fresh_dir("truncate");
  StateStore store(dir);
  ASSERT_TRUE(store.init("sig"));

  Finding f;
  f.round = 0;
  f.fingerprint = "00000000000000aa";
  f.detector = "HoT";
  f.vector = {"ats->nginx"};
  f.provenance = "seed:absolute";
  f.case_uuid = "camp-r0-0";
  f.description = "committed";
  store.add_finding(f);
  ASSERT_TRUE(store.commit_round(0));

  // Simulate the crash window: a round-1 finding line was appended but the
  // checkpoint rename never happened.
  {
    std::ofstream out(store.findings_path(), std::ios::app | std::ios::binary);
    Finding orphan = f;
    orphan.round = 1;
    orphan.fingerprint = "00000000000000bb";
    orphan.description = "uncommitted-orphan";
    out << finding_jsonl(orphan) << "\n";
  }
  ASSERT_NE(slurp(store.findings_path()).find("uncommitted-orphan"),
            std::string::npos);

  StateStore loaded(dir);
  ASSERT_TRUE(loaded.load()) << loaded.error();
  const std::string healed = slurp(loaded.findings_path());
  EXPECT_EQ(healed.find("uncommitted-orphan"), std::string::npos);
  EXPECT_NE(healed.find("committed"), std::string::npos);
  ASSERT_EQ(loaded.findings.size(), 1u);

  fs::remove_all(dir);
}

TEST(StoreTest, FindingJsonlIsOneRoundTaggedLine) {
  Finding f;
  f.round = 7;
  f.fingerprint = "deadbeefdeadbeef";
  f.detector = "CPDoS";
  f.vector = {"squid->iis"};
  f.provenance = "mutant:abc:space-before-colon";
  f.case_uuid = "camp-r7-3";
  f.description = "cacheable error split";

  const std::string line = finding_jsonl(f);
  EXPECT_EQ(line.find("{\"round\":7,"), 0u);  // round first, cheap truncation
  EXPECT_NE(line.find("\"fingerprint\":\"deadbeefdeadbeef\""),
            std::string::npos);
  EXPECT_NE(line.find("\"detector\":\"CPDoS\""), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(StoreTest, FreshDirDoesNotExist) {
  StateStore store(fresh_dir("missing"));
  EXPECT_FALSE(store.exists());
  EXPECT_FALSE(store.load());
}

}  // namespace
}  // namespace hdiff::campaign
