// Delta-debug minimizer: shrinks everything the oracle does not protect,
// terminates at a fixed point (re-minimizing accepts nothing), strictly
// decreases the well-founded measure, and respects the oracle-step cap.
#include "campaign/minimize.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "http/serialize.h"

namespace hdiff::campaign {
namespace {

http::RequestSpec bloated_spec() {
  http::RequestSpec spec;
  spec.method = "POST";
  spec.target = "/submit";
  spec.sep1 = "  ";             // non-canonical: double space
  spec.line_terminator = "\n";  // non-canonical: bare LF
  spec.add("Host", "origin.example");
  spec.add("X-Junk-A", "aaaaaaaaaaaaaaaa");
  spec.add("X-Junk-B", "bbbbbbbbbbbbbbbb");
  http::HeaderSpec key;
  key.name = "Key";
  key.value = "marker";
  key.separator = " :\t";  // non-canonical separator
  key.terminator = "\n";   // non-canonical terminator
  spec.headers.push_back(key);
  spec.add("X-Junk-C", "cccccccccccccccc");
  spec.body = "a long body that the divergence never needed at all";
  return spec;
}

bool has_key_header(const http::RequestSpec& spec) {
  for (const auto& h : spec.headers) {
    if (h.name == "Key") return true;
  }
  return false;
}

TEST(MinimizeTest, ShrinksEverythingTheOracleDoesNotProtect) {
  const http::RequestSpec start = bloated_spec();
  const auto outcome = minimize_spec(start, has_key_header);

  EXPECT_TRUE(has_key_header(outcome.spec));
  EXPECT_GT(outcome.accepted, 0u);
  EXPECT_GT(outcome.steps, 0u);
  // The junk headers and the body are gone; the protected header survives.
  EXPECT_LT(outcome.spec.headers.size(), start.headers.size());
  EXPECT_TRUE(outcome.spec.body.empty());
  // Non-canonical syntax got canonicalized (the oracle never required it).
  EXPECT_EQ(outcome.spec.sep1, " ");
  EXPECT_EQ(outcome.spec.line_terminator, "\r\n");
  for (const auto& h : outcome.spec.headers) {
    EXPECT_EQ(h.separator, ": ");
    EXPECT_EQ(h.terminator, "\r\n");
  }
  EXPECT_LT(spec_measure(outcome.spec), spec_measure(start));
}

TEST(MinimizeTest, MinimizedSpecIsAFixedPoint) {
  const auto first = minimize_spec(bloated_spec(), has_key_header);
  const auto again = minimize_spec(first.spec, has_key_header);
  EXPECT_EQ(again.accepted, 0u);
  EXPECT_EQ(again.spec, first.spec);
}

TEST(MinimizeTest, ValueShrinkKeepsTheByteTheOracleWatches) {
  http::RequestSpec spec;
  spec.add("Host", "h");
  spec.add("Key", "aaaaaaaaZbbbbbbbb");
  const auto oracle = [](const http::RequestSpec& s) {
    const auto v = s.get("Key");
    return v && v->find('Z') != std::string::npos;
  };
  const auto outcome = minimize_spec(spec, oracle);
  const auto v = outcome.spec.get("Key");
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->find('Z'), std::string::npos);
  EXPECT_LT(v->size(), std::string("aaaaaaaaZbbbbbbbb").size());
}

TEST(MinimizeTest, AlwaysTrueOracleStripsToTheBareRequestLine) {
  const auto outcome = minimize_spec(
      bloated_spec(), [](const http::RequestSpec&) { return true; });
  EXPECT_TRUE(outcome.spec.headers.empty());
  EXPECT_TRUE(outcome.spec.body.empty());
  EXPECT_EQ(spec_measure(outcome.spec).first, 0u);  // fully canonical
}

TEST(MinimizeTest, MaxStepsBoundsOracleInvocations) {
  std::size_t calls = 0;
  MinimizeOptions options;
  options.max_steps = 3;
  const auto outcome = minimize_spec(
      bloated_spec(),
      [&](const http::RequestSpec&) {
        ++calls;
        return true;
      },
      options);
  EXPECT_LE(outcome.steps, 3u);
  EXPECT_LE(calls, 3u);
}

TEST(MinimizeTest, MeasureOrdersCanonicalBelowNonCanonical) {
  http::RequestSpec canonical;
  canonical.add("Host", "h");
  http::RequestSpec crooked = canonical;
  crooked.headers[0].separator = " : ";
  crooked.headers[0].terminator = "\n";
  EXPECT_LT(spec_measure(canonical).first, spec_measure(crooked).first);
}

}  // namespace
}  // namespace hdiff::campaign
