// Finding fingerprints: per-detector signature extraction must be a pure
// function of the structural divergence facts (never of uuids, details, or
// discovery order), and the fingerprint key must change with provenance.
#include "campaign/fingerprint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>

#include "core/detect.h"
#include "core/testcase.h"

namespace hdiff::campaign {
namespace {

core::PairFinding pair(std::string front, std::string back,
                       core::AttackClass attack, std::string uuid = "u") {
  core::PairFinding p;
  p.front = std::move(front);
  p.back = std::move(back);
  p.attack = attack;
  p.uuid = std::move(uuid);
  p.detail = "detail for " + p.uuid;
  return p;
}

core::SrViolation violation(std::string impl, std::string sr_id,
                            std::string uuid = "u") {
  core::SrViolation v;
  v.impl = std::move(impl);
  v.sr_id = std::move(sr_id);
  v.uuid = std::move(uuid);
  v.detail = "detail for " + v.uuid;
  return v;
}

TEST(FingerprintTest, EmptyDeltaHasNoSignatures) {
  EXPECT_TRUE(signatures_of(core::DetectionResult{}).empty());
}

TEST(FingerprintTest, CanonicalJoinsDetectorAndSortedComponents) {
  Signature sig;
  sig.detector = "HRS";
  sig.vector = {"ats->tomcat", "squid->iis"};
  EXPECT_EQ(sig.canonical(), "HRS:ats->tomcat,squid->iis");
}

TEST(FingerprintTest, ComponentsAreSortedAndDeduped) {
  core::DetectionResult delta;
  delta.pairs.push_back(pair("squid", "iis", core::AttackClass::kHrs, "u1"));
  delta.pairs.push_back(pair("ats", "tomcat", core::AttackClass::kHrs, "u2"));
  // Same structural pair rediscovered under another uuid: must collapse.
  delta.pairs.push_back(pair("squid", "iis", core::AttackClass::kHrs, "u3"));

  const auto sigs = signatures_of(delta);
  ASSERT_EQ(sigs.size(), 1u);
  EXPECT_EQ(sigs[0].detector, "HRS");
  ASSERT_EQ(sigs[0].vector.size(), 2u);
  EXPECT_EQ(sigs[0].vector[0], "ats->tomcat");
  EXPECT_EQ(sigs[0].vector[1], "squid->iis");
}

TEST(FingerprintTest, OneSignaturePerDetectorClass) {
  core::DetectionResult delta;
  delta.pairs.push_back(pair("squid", "iis", core::AttackClass::kHrs));
  delta.pairs.push_back(pair("ats", "nginx", core::AttackClass::kHot));
  delta.violations.push_back(violation("tomcat", "SR-12"));
  delta.discrepancies.inputs_with_discrepancy = 1;
  delta.discrepancies.status_disagreements = 2;

  const auto sigs = signatures_of(delta);
  std::vector<std::string> detectors;
  for (const auto& s : sigs) detectors.push_back(s.detector);
  std::sort(detectors.begin(), detectors.end());
  EXPECT_EQ(detectors, (std::vector<std::string>{"HRS", "HoT", "discrepancy",
                                                 "sr-violation"}));
}

TEST(FingerprintTest, SignaturesIgnoreUuidAndDetail) {
  core::DetectionResult a;
  a.pairs.push_back(pair("squid", "iis", core::AttackClass::kCpdos, "case-1"));
  a.violations.push_back(violation("nginx", "SR-7", "case-1"));

  core::DetectionResult b;
  b.pairs.push_back(pair("squid", "iis", core::AttackClass::kCpdos, "case-2"));
  b.violations.push_back(violation("nginx", "SR-7", "case-2"));

  const auto sa = signatures_of(a);
  const auto sb = signatures_of(b);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].canonical(), sb[i].canonical());
    EXPECT_EQ(fingerprint(sa[i], "seed:x"), fingerprint(sb[i], "seed:x"));
  }
}

TEST(FingerprintTest, DiscrepancyVectorEncodesWhichCountersFired) {
  core::DetectionResult delta;
  delta.discrepancies.inputs_with_discrepancy = 1;
  delta.discrepancies.host_disagreements = 1;
  delta.discrepancies.body_disagreements = 3;

  const auto sigs = signatures_of(delta);
  ASSERT_EQ(sigs.size(), 1u);
  EXPECT_EQ(sigs[0].detector, "discrepancy");
  EXPECT_EQ(sigs[0].vector, (std::vector<std::string>{"body", "host"}));
}

TEST(FingerprintTest, ProvenanceIsPartOfTheKey) {
  Signature sig;
  sig.detector = "HRS";
  sig.vector = {"squid->iis"};
  EXPECT_NE(fingerprint(sig, "seed:get"),
            fingerprint(sig, "mutant:abc:duplicate-header"));
  EXPECT_EQ(fingerprint(sig, "seed:get"), fingerprint(sig, "seed:get"));
}

TEST(FingerprintTest, FingerprintIsSixteenLowercaseHexDigits) {
  Signature sig;
  sig.detector = "HoT";
  sig.vector = {"ats->nginx"};
  const std::string fp = fingerprint(sig, "seed:absolute");
  ASSERT_EQ(fp.size(), 16u);
  for (char c : fp) {
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(c)) ||
                (c >= 'a' && c <= 'f'))
        << fp;
  }
}

TEST(FingerprintTest, Hex64MatchesFnv1a64Basis) {
  // FNV-1a64 of the empty string is the offset basis.
  EXPECT_EQ(hex64(""), "cbf29ce484222325");
  EXPECT_NE(hex64("a"), hex64("b"));
}

}  // namespace
}  // namespace hdiff::campaign
