// Campaign engine end-to-end properties on the modelled fleet: `--jobs`
// determinism (byte-identical state and findings artifacts), crash/resume
// byte-identity, fingerprint uniqueness, config-signature protection, and
// the PR-2 quarantine/retry integration under persistent harness faults.
#include "campaign/engine.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "abnf/parser.h"
#include "analysis/coverage.h"
#include "campaign/store.h"
#include "core/probes.h"
#include "impls/products.h"
#include "net/fault.h"

namespace hdiff::campaign {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const fs::path dir = fs::temp_directory_path() /
                       ("hdiff-engine-test-" + std::to_string(::getpid()) +
                        "-" + tag + "-" + std::to_string(counter++));
  fs::remove_all(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Small but divergence-rich bootstrap: the first Table II verification
// probes keep each round fast while still tripping every detector class.
std::vector<core::TestCase> small_bootstrap() {
  auto probes = core::verification_probes();
  if (probes.size() > 12) probes.resize(12);
  return probes;
}

CampaignConfig make_config(const std::string& dir, std::size_t rounds,
                           std::size_t jobs) {
  CampaignConfig config;
  config.state_dir = dir;
  config.rounds = rounds;
  config.budget_per_round = 16;
  config.minimize.max_steps = 64;
  config.executor.jobs = jobs;
  config.bootstrap = small_bootstrap();
  return config;
}

// A miniature grammar whose rule names line up with the mutation engine's
// touched-rule names, so coverage attribution has something to bind to.
analysis::CoveragePlan coverage_fixture() {
  std::vector<std::string> errors;
  abnf::Grammar g = abnf::parse_rulelist(
      "HTTP-message = request-line *header-field\n"
      "request-line = \"GET \" HTTP-version\n"
      "HTTP-version = \"HTTP/1.1\" / \"HTTP/1.0\"\n"
      "header-field = field-name \":\" field-value\n"
      "field-name = 1*%x41-5A\n"
      "field-value = Transfer-Encoding / 1*%x61-7A\n"
      "Transfer-Encoding = \"chunked\" / \"compress\"\n",
      "fixture", &errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  return analysis::build_coverage_plan(g, {"HTTP-message"});
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override { fleet_ = impls::make_all_implementations(); }
  std::vector<std::unique_ptr<impls::HttpImplementation>> fleet_;
};

TEST_F(EngineTest, StateAndFindingsAreByteIdenticalAcrossJobs) {
  const std::string dir1 = fresh_dir("jobs1");
  const std::string dir8 = fresh_dir("jobs8");

  const auto r1 = CampaignEngine(make_config(dir1, 2, 1)).run(fleet_);
  const auto r8 = CampaignEngine(make_config(dir8, 2, 8)).run(fleet_);
  ASSERT_TRUE(r1.error.empty()) << r1.error;
  ASSERT_TRUE(r8.error.empty()) << r8.error;
  EXPECT_GT(r1.total_findings, 0u);

  StateStore s1(dir1), s8(dir8);
  EXPECT_EQ(slurp(s1.state_path()), slurp(s8.state_path()));
  EXPECT_EQ(slurp(s1.findings_path()), slurp(s8.findings_path()));

  fs::remove_all(dir1);
  fs::remove_all(dir8);
}

TEST_F(EngineTest, CrashedRoundResumesByteIdentically) {
  const std::string ref_dir = fresh_dir("ref");
  const std::string crash_dir = fresh_dir("crash");

  const auto ref = CampaignEngine(make_config(ref_dir, 2, 1)).run(fleet_);
  ASSERT_TRUE(ref.error.empty()) << ref.error;

  // Kill in the worst window: round 1's findings appended, checkpoint not
  // yet renamed.
  auto crashing = make_config(crash_dir, 2, 1);
  crashing.crash_after_round = 1;
  const auto interrupted = CampaignEngine(crashing).run(fleet_);
  ASSERT_TRUE(interrupted.error.empty()) << interrupted.error;
  EXPECT_TRUE(interrupted.interrupted);
  EXPECT_LT(interrupted.rounds_completed, ref.rounds_completed);

  const auto resumed =
      CampaignEngine(make_config(crash_dir, 2, 1)).run(fleet_);
  ASSERT_TRUE(resumed.error.empty()) << resumed.error;
  EXPECT_TRUE(resumed.resumed);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.rounds_completed, ref.rounds_completed);

  StateStore a(ref_dir), b(crash_dir);
  EXPECT_EQ(slurp(a.state_path()), slurp(b.state_path()));
  EXPECT_EQ(slurp(a.findings_path()), slurp(b.findings_path()));

  fs::remove_all(ref_dir);
  fs::remove_all(crash_dir);
}

TEST_F(EngineTest, CoverageWeightedRunsAreByteIdenticalAcrossJobs) {
  const std::string dir1 = fresh_dir("cov-jobs1");
  const std::string dir8 = fresh_dir("cov-jobs8");

  auto config1 = make_config(dir1, 2, 1);
  auto config8 = make_config(dir8, 2, 8);
  config1.coverage = coverage_fixture();
  config8.coverage = coverage_fixture();

  const auto r1 = CampaignEngine(config1).run(fleet_);
  const auto r8 = CampaignEngine(config8).run(fleet_);
  ASSERT_TRUE(r1.error.empty()) << r1.error;
  ASSERT_TRUE(r8.error.empty()) << r8.error;
  EXPECT_TRUE(r1.coverage_enabled);
  EXPECT_TRUE(r1.coverage_weighting);
  EXPECT_GT(r1.coverage_total, 0u);
  // Every bootstrap probe mutates headers, so header-field coverage is hit
  // in round 1 at the latest.
  EXPECT_GT(r1.coverage_covered, 0u);
  EXPECT_EQ(r1.coverage_covered, r8.coverage_covered);
  EXPECT_EQ(r1.gap_sites_hit, r8.gap_sites_hit);

  StateStore s1(dir1), s8(dir8);
  EXPECT_EQ(slurp(s1.state_path()), slurp(s8.state_path()));
  EXPECT_EQ(slurp(s1.findings_path()), slurp(s8.findings_path()));

  fs::remove_all(dir1);
  fs::remove_all(dir8);
}

TEST_F(EngineTest, CoverageCrashedRoundResumesByteIdentically) {
  const std::string ref_dir = fresh_dir("cov-ref");
  const std::string crash_dir = fresh_dir("cov-crash");

  auto ref_config = make_config(ref_dir, 2, 1);
  ref_config.coverage = coverage_fixture();
  const auto ref = CampaignEngine(ref_config).run(fleet_);
  ASSERT_TRUE(ref.error.empty()) << ref.error;

  auto crashing = make_config(crash_dir, 2, 1);
  crashing.coverage = coverage_fixture();
  crashing.crash_after_round = 1;
  const auto interrupted = CampaignEngine(crashing).run(fleet_);
  ASSERT_TRUE(interrupted.error.empty()) << interrupted.error;
  EXPECT_TRUE(interrupted.interrupted);

  auto resume_config = make_config(crash_dir, 2, 1);
  resume_config.coverage = coverage_fixture();
  const auto resumed = CampaignEngine(resume_config).run(fleet_);
  ASSERT_TRUE(resumed.error.empty()) << resumed.error;
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.coverage_covered, ref.coverage_covered);
  EXPECT_EQ(resumed.gap_sites_hit, ref.gap_sites_hit);

  StateStore a(ref_dir), b(crash_dir);
  EXPECT_EQ(slurp(a.state_path()), slurp(b.state_path()));
  EXPECT_EQ(slurp(a.findings_path()), slurp(b.findings_path()));

  fs::remove_all(ref_dir);
  fs::remove_all(crash_dir);
}

TEST_F(EngineTest, PreCoverageCheckpointResumesAndAdoptsThePlan) {
  // The healed upgrade path: a state dir written before coverage existed
  // (no cov* keys, same config signature) must resume under a
  // coverage-aware config, adopting the plan mid-campaign.
  const std::string dir = fresh_dir("cov-upgrade");

  const auto old = CampaignEngine(make_config(dir, 1, 1)).run(fleet_);
  ASSERT_TRUE(old.error.empty()) << old.error;
  EXPECT_FALSE(old.coverage_enabled);
  {
    StateStore s(dir);
    EXPECT_EQ(slurp(s.state_path()).find("cov"), std::string::npos);
  }

  auto upgraded = make_config(dir, 2, 1);
  upgraded.coverage = coverage_fixture();
  const auto resumed = CampaignEngine(upgraded).run(fleet_);
  ASSERT_TRUE(resumed.error.empty()) << resumed.error;
  EXPECT_TRUE(resumed.resumed);
  EXPECT_TRUE(resumed.coverage_enabled);
  EXPECT_GT(resumed.rounds_completed, old.rounds_completed);

  // The adopted plan is now pinned in the checkpoint.
  StateStore s(dir);
  ASSERT_TRUE(s.load()) << s.error();
  EXPECT_TRUE(s.coverage_enabled());
  EXPECT_EQ(s.coverage.sig, upgraded.coverage.sig);

  fs::remove_all(dir);
}

TEST_F(EngineTest, AdoptCoverageNeverOverwritesACheckpointPlan) {
  StateStore store(fresh_dir("cov-adopt"));
  CampaignConfig config;
  config.coverage = coverage_fixture();
  config.coverage.bootstrap_covered = {0};

  adopt_coverage(store, config);
  ASSERT_TRUE(store.coverage_enabled());
  EXPECT_EQ(store.covered, config.coverage.bootstrap_covered);

  // Live state diverges; a second adoption (e.g. on resume) must not reset
  // it — the checkpoint wins.
  store.covered.insert(3);
  store.gap_hits[0] = 2;
  adopt_coverage(store, config);
  EXPECT_EQ(store.covered.size(), 2u);
  EXPECT_EQ(store.gap_hits.at(0), 2u);

  // And a coverage-free config never erases an existing plan.
  CampaignConfig plain;
  adopt_coverage(store, plain);
  EXPECT_TRUE(store.coverage_enabled());
}

TEST_F(EngineTest, EveryFingerprintIsReportedExactlyOnce) {
  const std::string dir = fresh_dir("unique");
  const auto report = CampaignEngine(make_config(dir, 2, 1)).run(fleet_);
  ASSERT_TRUE(report.error.empty()) << report.error;

  StateStore store(dir);
  ASSERT_TRUE(store.load()) << store.error();
  std::set<std::string> seen;
  for (const auto& f : store.findings) {
    EXPECT_TRUE(seen.insert(f.fingerprint).second)
        << "duplicate fingerprint " << f.fingerprint;
  }
  EXPECT_EQ(seen.size(), report.total_findings);

  fs::remove_all(dir);
}

TEST_F(EngineTest, ResumeRunsOnlyTheMissingRounds) {
  const std::string dir = fresh_dir("extend");
  const auto first = CampaignEngine(make_config(dir, 1, 1)).run(fleet_);
  ASSERT_TRUE(first.error.empty()) << first.error;
  EXPECT_EQ(first.rounds_completed, 2u);  // bootstrap + 1 mutation round

  // Same signature (rounds are excluded from it): extends by one round.
  const auto second = CampaignEngine(make_config(dir, 2, 1)).run(fleet_);
  ASSERT_TRUE(second.error.empty()) << second.error;
  EXPECT_TRUE(second.resumed);
  ASSERT_EQ(second.rounds.size(), 1u);
  EXPECT_EQ(second.rounds[0].round, 2u);
  EXPECT_EQ(second.rounds_completed, 3u);

  const auto status = CampaignEngine::status(dir);
  EXPECT_EQ(status.rounds_completed, 3u);
  EXPECT_EQ(status.total_findings, second.total_findings);

  fs::remove_all(dir);
}

TEST_F(EngineTest, ConfigSignatureMismatchRefusesToTouchState) {
  const std::string dir = fresh_dir("sig");
  const auto first = CampaignEngine(make_config(dir, 1, 1)).run(fleet_);
  ASSERT_TRUE(first.error.empty()) << first.error;

  auto other = make_config(dir, 1, 1);
  other.budget_per_round = 99;  // budget is part of the signature
  const auto rejected = CampaignEngine(other).run(fleet_);
  EXPECT_FALSE(rejected.error.empty());

  const auto status = CampaignEngine::status(dir);
  EXPECT_EQ(status.rounds_completed, first.rounds_completed);
  EXPECT_EQ(status.total_findings, first.total_findings);

  fs::remove_all(dir);
}

TEST_F(EngineTest, PersistentFaultsQuarantineAndReplayOnResume) {
  const std::string dir = fresh_dir("fault");

  // Every model call faults, forever: round 0 must quarantine every case
  // into the retry queue instead of filing findings or aborting.
  net::FaultPlanConfig plan_config;
  plan_config.rate = 1.0;
  plan_config.max_faults_per_site = 0;  // persistent
  plan_config.kinds = {net::FaultKind::kReset};
  auto plan = std::make_shared<net::FaultPlan>(plan_config);
  auto faulty = net::wrap_fleet_with_faults(fleet_, plan);

  auto config = make_config(dir, 0, 1);
  config.executor.retry.attempts = 1;  // no retries: quarantine fast
  const auto broken = CampaignEngine(config).run(faulty);
  ASSERT_TRUE(broken.error.empty()) << broken.error;
  ASSERT_EQ(broken.rounds.size(), 1u);
  EXPECT_EQ(broken.rounds[0].quarantined, config.bootstrap.size());
  EXPECT_EQ(broken.total_findings, 0u);
  EXPECT_EQ(broken.retry_depth, config.bootstrap.size());

  // Fleet health is not part of the signature: resuming against the healthy
  // fleet replays the quarantined cases first and recovers their findings.
  auto healthy_config = make_config(dir, 1, 1);
  healthy_config.executor.retry.attempts = 1;
  const auto recovered = CampaignEngine(healthy_config).run(fleet_);
  ASSERT_TRUE(recovered.error.empty()) << recovered.error;
  EXPECT_TRUE(recovered.resumed);
  ASSERT_FALSE(recovered.rounds.empty());
  EXPECT_EQ(recovered.rounds[0].replayed, config.bootstrap.size());
  EXPECT_GT(recovered.total_findings, 0u);
  EXPECT_EQ(recovered.retry_depth, 0u);

  fs::remove_all(dir);
}

TEST_F(EngineTest, ReportJsonCarriesTheCampaignBlock) {
  const std::string dir = fresh_dir("json");
  const auto report = CampaignEngine(make_config(dir, 1, 1)).run(fleet_);
  ASSERT_TRUE(report.error.empty()) << report.error;

  const std::string json = campaign_report_json(report);
  EXPECT_NE(json.find("\"campaign\""), std::string::npos);
  EXPECT_NE(json.find("\"rounds_completed\""), std::string::npos);
  EXPECT_NE(json.find("\"dedup_ratio\""), std::string::npos);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace hdiff::campaign
