#include "stream/mutate.h"

#include <gtest/gtest.h>

#include "stream/seeds.h"

namespace hdiff::stream {
namespace {

const RequestStream& seed_named(const std::string& name) {
  for (const auto& s : default_stream_seeds()) {
    if (s.name == name) return s.stream;
  }
  ADD_FAILURE() << "no seed named " << name;
  static const RequestStream empty;
  return empty;
}

TEST(StreamMutate, EnumerationIsDeterministic) {
  for (const auto& seed : default_stream_seeds()) {
    const std::vector<StreamMutant> a = stream_mutants(seed.stream);
    const std::vector<StreamMutant> b = stream_mutants(seed.stream);
    ASSERT_EQ(a.size(), b.size()) << seed.name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].stream, b[i].stream) << seed.name << " #" << i;
      EXPECT_EQ(a[i].applied.kind, b[i].applied.kind) << seed.name;
      EXPECT_EQ(a[i].applied.index, b[i].applied.index) << seed.name;
      EXPECT_EQ(a[i].applied.detail, b[i].applied.detail) << seed.name;
    }
  }
}

TEST(StreamMutate, KindMajorOrder) {
  // The scheduler's arm identity depends on the enumeration order being
  // kind-major: all splice mutants, then all reorders, and so on.
  const std::vector<StreamMutant> mutants =
      stream_mutants(seed_named("post-pipeline"));
  ASSERT_FALSE(mutants.empty());
  std::size_t last_rank = 0;
  const auto& kinds = all_stream_mutation_kinds();
  for (const auto& m : mutants) {
    std::size_t rank = 0;
    while (rank < kinds.size() && kinds[rank] != m.applied.kind) ++rank;
    ASSERT_LT(rank, kinds.size());
    EXPECT_GE(rank, last_rank) << "kinds interleaved at " << m.applied.describe();
    last_rank = rank;
  }
}

TEST(StreamMutate, SpliceSkewsContentLengthOfFramedMessages) {
  // post-pipeline: one CL POST followed by two GETs — only the POST carries
  // framing to skew, and it has a successor, so splice variants exist.
  const RequestStream& base = seed_named("post-pipeline");
  std::size_t splices = 0;
  for (const auto& m : stream_mutants(base)) {
    if (m.applied.kind != StreamMutationKind::kSpliceBoundary) continue;
    ++splices;
    EXPECT_EQ(m.applied.index, 0u);
    EXPECT_EQ(m.stream.messages.size(), base.messages.size());
    // The skew changes only the declared framing, never the payload bytes.
    EXPECT_EQ(m.stream.messages[0].body, base.messages[0].body);
    EXPECT_NE(m.stream.messages[0].get("Content-Length"),
              base.messages[0].get("Content-Length"));
  }
  EXPECT_EQ(splices, 3u);  // cl+1, cl+4, cl-1
}

TEST(StreamMutate, ReorderSwapsAdjacentMessages) {
  const RequestStream& base = seed_named("post-pipeline");
  for (const auto& m : stream_mutants(base)) {
    if (m.applied.kind != StreamMutationKind::kReorderMessages) continue;
    const std::size_t i = m.applied.index;
    ASSERT_LT(i + 1, base.messages.size());
    EXPECT_EQ(m.stream.messages[i], base.messages[i + 1]);
    EXPECT_EQ(m.stream.messages[i + 1], base.messages[i]);
  }
}

TEST(StreamMutate, DuplicateAndDropAdjustMessageCount) {
  const RequestStream& base = seed_named("fat-get");
  std::size_t duplicates = 0, drops = 0;
  for (const auto& m : stream_mutants(base)) {
    if (m.applied.kind == StreamMutationKind::kDuplicateMessage) {
      ++duplicates;
      EXPECT_EQ(m.stream.messages.size(), base.messages.size() + 1);
      EXPECT_EQ(m.stream.messages[m.applied.index],
                m.stream.messages[m.applied.index + 1]);
    }
    if (m.applied.kind == StreamMutationKind::kDropMessage) {
      ++drops;
      EXPECT_EQ(m.stream.messages.size(), base.messages.size() - 1);
    }
  }
  EXPECT_EQ(duplicates, base.messages.size());
  EXPECT_EQ(drops, base.messages.size());
}

TEST(StreamMutate, SingleMessageStreamHasNoDrop) {
  // Dropping the only message would leave an empty stream — not a test case.
  const RequestStream one =
      make_stream({http::make_get("a.example", "/solo")});
  for (const auto& m : stream_mutants(one)) {
    EXPECT_NE(m.applied.kind, StreamMutationKind::kDropMessage);
    EXPECT_NE(m.applied.kind, StreamMutationKind::kReorderMessages);
  }
}

}  // namespace
}  // namespace hdiff::stream
