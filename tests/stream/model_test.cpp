#include "stream/model.h"

#include <gtest/gtest.h>

#include "core/specwire.h"
#include "stream/seeds.h"

namespace hdiff::stream {
namespace {

RequestStream two_gets() {
  return make_stream({http::make_get("a.example", "/one"),
                      http::make_get("a.example", "/two")});
}

TEST(StreamModel, WireIsConcatenationOfMessages) {
  const RequestStream stream = two_gets();
  std::string expected;
  for (const auto& w : stream.wires()) expected += w;
  EXPECT_EQ(stream.to_wire(), expected);
  EXPECT_EQ(stream.wires().size(), 2u);
}

TEST(StreamModel, SerializeRoundTripsEverySeed) {
  for (const auto& seed : default_stream_seeds()) {
    const std::string text = serialize_stream(seed.stream);
    RequestStream parsed;
    ASSERT_TRUE(deserialize_stream(text, &parsed)) << seed.name;
    EXPECT_EQ(parsed, seed.stream) << seed.name;
    // The round-trip is byte-stable: re-serializing lands on the same
    // content-address preimage.
    EXPECT_EQ(serialize_stream(parsed), text) << seed.name;
  }
}

TEST(StreamModel, EveryProperPrefixIsRejected) {
  // The torn-file guarantee: a truncated corpus file can never load as a
  // shorter-but-valid stream.
  for (const auto& seed : default_stream_seeds()) {
    const std::string text = serialize_stream(seed.stream);
    for (std::size_t len = 0; len < text.size(); ++len) {
      RequestStream parsed;
      EXPECT_FALSE(deserialize_stream(text.substr(0, len), &parsed))
          << seed.name << " prefix of length " << len << " parsed";
    }
  }
}

TEST(StreamModel, TrailingBytesAreRejected) {
  const std::string text = serialize_stream(two_gets());
  RequestStream parsed;
  EXPECT_FALSE(deserialize_stream(text + "x", &parsed));
  EXPECT_FALSE(deserialize_stream(text + "\n", &parsed));
}

TEST(StreamModel, WrongCountHeaderIsRejected) {
  const std::string text = serialize_stream(two_gets());
  RequestStream parsed;
  std::string wrong = text;
  const std::size_t at = wrong.find(" 2\n");
  ASSERT_NE(at, std::string::npos);
  wrong.replace(at, 3, " 3\n");
  EXPECT_FALSE(deserialize_stream(wrong, &parsed));
}

TEST(StreamModel, IsStreamTextDiscriminates) {
  EXPECT_TRUE(is_stream_text(serialize_stream(two_gets())));
  // A single-request spec serialization must never be taken for a stream
  // (the shared retry queue relies on this).
  EXPECT_FALSE(is_stream_text(
      core::serialize_spec(http::make_get("a.example", "/one"))));
  EXPECT_FALSE(is_stream_text(""));
  EXPECT_FALSE(is_stream_text("GET / HTTP/1.1\r\n\r\n"));
}

}  // namespace
}  // namespace hdiff::stream
