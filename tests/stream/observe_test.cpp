#include "net/stream.h"

#include <gtest/gtest.h>

#include "impls/products.h"
#include "stream/seeds.h"

namespace hdiff::net {
namespace {

const stream::RequestStream& seed_named(const std::string& name) {
  for (const auto& s : stream::default_stream_seeds()) {
    if (s.name == name) return s.stream;
  }
  ADD_FAILURE() << "no seed named " << name;
  static const stream::RequestStream empty;
  return empty;
}

std::size_t delivered_bytes(const std::vector<std::string>& messages,
                            std::size_t delivered) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < delivered && i < messages.size(); ++i) {
    total += messages[i].size();
  }
  return total;
}

TEST(ObserveStream, CoversEveryConnectionInTheTopology) {
  auto fleet = impls::make_all_implementations();
  Chain chain = Chain::from_fleet(fleet);
  StreamObservation obs =
      chain.observe_stream("s1", seed_named("post-pipeline").wires());
  EXPECT_FALSE(obs.faulted());
  EXPECT_EQ(obs.direct.size(), chain.backends().size());
  EXPECT_EQ(obs.proxies.size(), chain.proxies().size());
  EXPECT_EQ(obs.wire, seed_named("post-pipeline").to_wire());
}

TEST(ObserveStream, LeftoverBytesAccountForEveryDeliveredByte) {
  // The core book-keeping invariant: for every connection trace, the bytes
  // fed before any early close are exactly consumed-as-requests plus still
  // buffered — nothing is lost, nothing is invented.
  auto fleet = impls::make_all_implementations();
  Chain chain = Chain::from_fleet(fleet);
  for (const auto& seed : stream::default_stream_seeds()) {
    const std::vector<std::string> wires = seed.stream.wires();
    StreamObservation obs = chain.observe_stream("s2-" + seed.name, wires);
    ASSERT_FALSE(obs.faulted()) << seed.name;
    for (const auto& [name, trace] : obs.direct) {
      EXPECT_EQ(trace.consumed + trace.leftover.size(),
                delivered_bytes(wires, trace.delivered))
          << seed.name << " direct " << name;
      // Boundaries are cumulative consumed offsets: strictly increasing,
      // ending at the consumed total.
      std::size_t prev = 0;
      for (std::size_t b : trace.boundaries) {
        EXPECT_GT(b, prev) << seed.name << " " << name;
        prev = b;
      }
      if (!trace.boundaries.empty()) {
        EXPECT_EQ(trace.boundaries.back(), trace.consumed)
            << seed.name << " " << name;
      }
      EXPECT_EQ(trace.statuses.size(), trace.targets.size());
    }
    for (const auto& [key, trace] : obs.relayed) {
      const std::size_t arrow = key.find("->");
      ASSERT_NE(arrow, std::string::npos);
      const auto pt = obs.proxies.find(key.substr(0, arrow));
      ASSERT_NE(pt, obs.proxies.end());
      EXPECT_EQ(trace.consumed + trace.leftover.size(),
                delivered_bytes(pt->second.forwarded, trace.delivered))
          << seed.name << " relayed " << key;
    }
  }
}

TEST(ObserveStream, FatGetStrandsTheHiddenRequestOnIgnoreBodyParsers) {
  // weblogic ignores a GET's body (FatGet::kIgnoreBody): the embedded
  // request must surface — either parsed as an extra in-stream request or
  // stranded as leftover — while body-parsing back-ends consume it as
  // payload.  This is the connection-level gap the seed exists to expose.
  auto fleet = impls::make_all_implementations();
  Chain chain = Chain::from_fleet(fleet);
  StreamObservation obs =
      chain.observe_stream("s3", seed_named("fat-get").wires());
  ASSERT_FALSE(obs.faulted());
  const auto weblogic = obs.direct.find("weblogic");
  const auto tomcat = obs.direct.find("tomcat");
  ASSERT_NE(weblogic, obs.direct.end());
  ASSERT_NE(tomcat, obs.direct.end());
  // Same bytes, different request boundaries: the desync primitive.
  EXPECT_NE(weblogic->second.boundaries, tomcat->second.boundaries);
  bool hidden_answered = false;
  for (const auto& target : weblogic->second.targets) {
    if (target == "/hidden") hidden_answered = true;
  }
  EXPECT_TRUE(hidden_answered ||
              !weblogic->second.leftover.empty())
      << "ignore-body parser neither answered nor stranded the hidden "
         "request";
}

TEST(ObserveStream, EchoServerRecordsEachProxysForwardedStream) {
  auto fleet = impls::make_all_implementations();
  Chain chain = Chain::from_fleet(fleet);
  EchoServer echo;
  StreamObservation obs =
      chain.observe_stream("s4", seed_named("post-pipeline").wires(), &echo);
  ASSERT_FALSE(obs.faulted());
  std::size_t forwarding = 0;
  for (const auto& [name, pt] : obs.proxies) {
    if (pt.forwarded.empty()) continue;
    ++forwarding;
    bool recorded = false;
    for (const auto& rec : echo.log()) {
      if (rec.proxy != name) continue;
      EXPECT_EQ(rec.uuid, "s4");
      EXPECT_EQ(rec.raw, pt.forwarded_stream());
      recorded = true;
    }
    EXPECT_TRUE(recorded) << "no echo record for proxy " << name;
  }
  EXPECT_EQ(echo.log().size(), forwarding);
}

TEST(ObserveStream, VerdictCacheDoesNotChangeTheObservation) {
  auto fleet = impls::make_all_implementations();
  Chain chain = Chain::from_fleet(fleet);
  VerdictCache cache;
  const std::vector<std::string> wires = seed_named("te-cl-pipeline").wires();
  StreamObservation cold = chain.observe_stream("s5", wires, nullptr, &cache);
  StreamObservation warm = chain.observe_stream("s5", wires, nullptr, &cache);
  ASSERT_FALSE(cold.faulted());
  for (const auto& [name, trace] : cold.direct) {
    const auto warm_trace = warm.direct.find(name);
    ASSERT_NE(warm_trace, warm.direct.end());
    EXPECT_EQ(trace.boundaries, warm_trace->second.boundaries) << name;
    EXPECT_EQ(trace.leftover, warm_trace->second.leftover) << name;
    EXPECT_EQ(trace.targets, warm_trace->second.targets) << name;
  }
}

}  // namespace
}  // namespace hdiff::net
