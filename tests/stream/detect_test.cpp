#include "stream/detect.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "impls/products.h"
#include "stream/seeds.h"

namespace hdiff::stream {
namespace {

const RequestStream& seed_named(const std::string& name) {
  for (const auto& s : default_stream_seeds()) {
    if (s.name == name) return s.stream;
  }
  ADD_FAILURE() << "no seed named " << name;
  static const RequestStream empty;
  return empty;
}

bool has_detector(const StreamDetectionResult& result,
                  std::string_view detector) {
  return std::any_of(result.findings.begin(), result.findings.end(),
                     [&](const StreamFinding& f) {
                       return f.detector == detector;
                     });
}

TEST(StreamDetect, FatGetTripsBoundaryDesync) {
  auto fleet = impls::make_all_implementations();
  net::Chain chain = net::Chain::from_fleet(fleet);
  StreamDetector detector(chain);
  net::StreamObservation obs =
      chain.observe_stream("d1", seed_named("fat-get").wires());
  ASSERT_FALSE(obs.faulted());
  const StreamDetectionResult result = detector.evaluate(obs);
  EXPECT_TRUE(has_detector(result, kBoundaryDesync));
  // Both sides accept, so no single-request detector could have seen this:
  // the pair must name an ignore-body parser.
  for (const auto& f : result.findings) {
    if (f.detector != kBoundaryDesync) continue;
    EXPECT_FALSE(f.components.empty());
    const bool names_weblogic = std::any_of(
        f.components.begin(), f.components.end(), [](const std::string& c) {
          return c.find("weblogic") != std::string::npos;
        });
    EXPECT_TRUE(names_weblogic) << f.detail;
  }
}

TEST(StreamDetect, FindingsAreSortedUniqueAndDeterministic) {
  auto fleet = impls::make_all_implementations();
  net::Chain chain = net::Chain::from_fleet(fleet);
  StreamDetector detector(chain);
  net::StreamObservation obs =
      chain.observe_stream("d2", seed_named("fat-get").wires());
  ASSERT_FALSE(obs.faulted());
  const StreamDetectionResult a = detector.evaluate(obs);
  const StreamDetectionResult b = detector.evaluate(obs);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].detector, b.findings[i].detector);
    EXPECT_EQ(a.findings[i].components, b.findings[i].components);
    EXPECT_TRUE(std::is_sorted(a.findings[i].components.begin(),
                               a.findings[i].components.end()));
    EXPECT_EQ(std::adjacent_find(a.findings[i].components.begin(),
                                 a.findings[i].components.end()),
              a.findings[i].components.end())
        << "duplicate component in " << a.findings[i].detector;
  }
}

TEST(StreamDetect, ComponentsCarryNoUuid) {
  auto fleet = impls::make_all_implementations();
  net::Chain chain = net::Chain::from_fleet(fleet);
  StreamDetector detector(chain);
  // Same stream under two uuids must fingerprint identically.
  net::StreamObservation first =
      chain.observe_stream("uuid-one", seed_named("fat-get").wires());
  net::StreamObservation second =
      chain.observe_stream("uuid-two", seed_named("fat-get").wires());
  const StreamDetectionResult a = detector.evaluate(first);
  const StreamDetectionResult b = detector.evaluate(second);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].components, b.findings[i].components);
  }
}

TEST(StreamDetect, FaultedObservationYieldsNoFindings) {
  auto fleet = impls::make_all_implementations();
  net::Chain chain = net::Chain::from_fleet(fleet);
  StreamDetector detector(chain);
  net::StreamObservation obs;
  obs.fault = net::ChainError::kReset;
  EXPECT_FALSE(detector.evaluate(obs).any());
}

TEST(StreamDetect, PlainPipelineIsQuiet) {
  // Two identical plain GETs: every parser splits them the same way, so no
  // stream detector may fire (false-positive guard).
  auto fleet = impls::make_all_implementations();
  net::Chain chain = net::Chain::from_fleet(fleet);
  StreamDetector detector(chain);
  const RequestStream plain =
      make_stream({http::make_get("a.example", "/one"),
                   http::make_get("a.example", "/two")});
  net::StreamObservation obs = chain.observe_stream("d3", plain.wires());
  ASSERT_FALSE(obs.faulted());
  const StreamDetectionResult result = detector.evaluate(obs);
  for (const auto& f : result.findings) {
    ADD_FAILURE() << "unexpected finding " << f.detector << ": " << f.detail;
  }
}

}  // namespace
}  // namespace hdiff::stream
