// Product-model regression tests: each test pins one paper finding to the
// product that exhibits it (§IV-B narrative, Table II examples).
#include "impls/products.h"

#include <gtest/gtest.h>

namespace hdiff::impls {
namespace {

std::string chunked_req(std::string_view te, std::string_view body) {
  std::string out = "POST / HTTP/1.1\r\nHost: h1.com\r\nTransfer-Encoding: ";
  out += te;
  out += "\r\n\r\n";
  out += body;
  return out;
}

TEST(Registry, AllTenProducts) {
  auto fleet = make_all_implementations();
  ASSERT_EQ(fleet.size(), 10u);
  std::size_t servers = 0, proxies = 0;
  for (const auto& impl : fleet) {
    if (impl->is_server()) ++servers;
    if (impl->is_proxy()) ++proxies;
  }
  EXPECT_EQ(servers, 6u);  // IIS, Tomcat, Weblogic, Lighttpd, Apache, Nginx
  EXPECT_EQ(proxies, 6u);  // Apache, Nginx, Varnish, Squid, Haproxy, ATS
}

TEST(Registry, LookupByName) {
  EXPECT_NE(make_implementation("IIS"), nullptr);
  EXPECT_NE(make_implementation("varnish"), nullptr);
  EXPECT_EQ(make_implementation("unknown"), nullptr);
  EXPECT_EQ(product_names().size(), 10u);
}

TEST(Iis, AcceptsAndHonoursWsBeforeColon) {
  auto iis = make_implementation("iis");
  ServerVerdict v = iis->parse_request(
      "POST / HTTP/1.1\r\nHost: h\r\nContent-Length : 5\r\n\r\nAAAAABBB");
  EXPECT_EQ(v.status, 200);
  EXPECT_EQ(v.body, "AAAAA");
}

TEST(Iis, CaseInsensitiveVersion) {
  auto iis = make_implementation("iis");
  EXPECT_EQ(iis->parse_request("GET / hTTP/1.1\r\nHost: h\r\n\r\n").status,
            200);
  EXPECT_EQ(iis->parse_request("GET / 1.1/HTTP\r\nHost: h\r\n\r\n").status,
            400);
}

TEST(Iis, HostAfterAtSemantics) {
  auto iis = make_implementation("iis");
  EXPECT_EQ(
      iis->parse_request("GET / HTTP/1.1\r\nHost: h1.com@h2.com\r\n\r\n").host,
      "h2.com");
}

TEST(Iis, AbsoluteUriWinsOverHost) {
  auto iis = make_implementation("iis");
  EXPECT_EQ(iis->parse_request(
                   "GET test://h2.com/ HTTP/1.1\r\nHost: h1.com\r\n\r\n")
                .host,
            "h2.com");
}

TEST(Tomcat, ControlByteInTeValueHonoured) {
  auto tomcat = make_implementation("tomcat");
  ServerVerdict v = tomcat->parse_request(
      chunked_req("\x0b" "chunked", "3\r\nabc\r\n0\r\n\r\n"));
  EXPECT_EQ(v.status, 200);
  EXPECT_EQ(v.framing, BodyFraming::kChunked);
  EXPECT_EQ(v.body, "abc");
}

TEST(Tomcat, ChunkedIgnoredOnHttp10) {
  auto tomcat = make_implementation("tomcat");
  std::string raw =
      "POST / HTTP/1.0\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\n\r\n";
  ServerVerdict v = tomcat->parse_request(raw);
  EXPECT_EQ(v.framing, BodyFraming::kNone);
  // Most other stacks honour it — that asymmetry is the HRS vector.
  auto apache = make_implementation("apache");
  EXPECT_EQ(apache->parse_request(raw).framing, BodyFraming::kChunked);
}

TEST(Tomcat, LastListItemHost) {
  auto tomcat = make_implementation("tomcat");
  EXPECT_EQ(tomcat->parse_request(
                   "GET / HTTP/1.1\r\nHost: h1.com, h2.com\r\n\r\n")
                .host,
            "h2.com");
}

TEST(Weblogic, LenientContentLength) {
  auto wl = make_implementation("weblogic");
  ServerVerdict v = wl->parse_request(
      "POST / HTTP/1.1\r\nHost: h\r\nContent-Length: +6\r\n\r\nABCDEFXY");
  EXPECT_EQ(v.status, 200);
  EXPECT_EQ(v.body, "ABCDEF");
}

TEST(Weblogic, FirstDuplicateClWins) {
  auto wl = make_implementation("weblogic");
  ServerVerdict v = wl->parse_request(
      "POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\n"
      "Content-Length: 6\r\n\r\nabcdef");
  EXPECT_EQ(v.body, "abc");
}

TEST(Weblogic, AcceptsHttp09WithHeaders) {
  auto wl = make_implementation("weblogic");
  EXPECT_EQ(wl->parse_request("GET /\r\nHost: h\r\n\r\n").status, 200);
  // The rest of the fleet rejects this shape.
  for (auto name : {"iis", "tomcat", "lighttpd", "apache", "nginx"}) {
    EXPECT_NE(make_implementation(name)
                  ->parse_request("GET /\r\nHost: h\r\n\r\n")
                  .status,
              200)
        << name;
  }
}

TEST(Weblogic, FatGetBodyLeftOnConnection) {
  auto wl = make_implementation("weblogic");
  ServerVerdict v = wl->parse_request(
      "GET / HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nAAAAA");
  EXPECT_EQ(v.status, 200);
  EXPECT_EQ(v.leftover, "AAAAA");
}

TEST(Lighttpd, FirstListItemContentLength) {
  auto lt = make_implementation("lighttpd");
  ServerVerdict v = lt->parse_request(
      "POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 6, 9\r\n\r\nABCDEFXYZ");
  EXPECT_EQ(v.status, 200);
  EXPECT_EQ(v.body, "ABCDEF");
}

TEST(Lighttpd, RejectsExpectOnGet) {
  auto lt = make_implementation("lighttpd");
  EXPECT_EQ(lt->parse_request(
                   "GET / HTTP/1.1\r\nHost: h\r\nExpect: 100-continue\r\n\r\n")
                .status,
            417);
}

TEST(Lighttpd, RejectsFatGet) {
  auto lt = make_implementation("lighttpd");
  EXPECT_EQ(lt->parse_request(
                   "GET / HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nAAAAA")
                .status,
            400);
}

TEST(Apache, StrictBaseline) {
  auto apache = make_implementation("apache");
  EXPECT_EQ(apache
                ->parse_request("POST / HTTP/1.1\r\nHost: h\r\n"
                                "Content-Length : 5\r\n\r\nAAAAA")
                .status,
            400);
  EXPECT_EQ(apache
                ->parse_request(chunked_req("\x0b" "chunked",
                                            "3\r\nabc\r\n0\r\n\r\n"))
                .status,
            501);
}

TEST(Apache, StripsConnectionListedCriticals) {
  auto apache = make_implementation("apache");
  ProxyVerdict v = apache->forward_request(
      "GET / HTTP/1.1\r\nHost: h1.com\r\nConnection: close, Host\r\n\r\n");
  ASSERT_TRUE(v.forwarded());
  EXPECT_EQ(v.forwarded_bytes.find("Host:"), std::string::npos);
}

TEST(Nginx, RepairsInvalidVersionByAppending) {
  auto nginx = make_implementation("nginx");
  ProxyVerdict v =
      nginx->forward_request("GET /?a=b 1.1/HTTP\r\nHost: h\r\n\r\n");
  ASSERT_TRUE(v.forwarded());
  EXPECT_NE(v.forwarded_bytes.find("GET /?a=b 1.1/HTTP HTTP/1.1\r\n"),
            std::string::npos);
}

TEST(Nginx, ForwardsInvalidHostUnmodified) {
  auto nginx = make_implementation("nginx");
  ProxyVerdict v = nginx->forward_request(
      "GET / HTTP/1.1\r\nHost: h1.com@h2.com\r\n\r\n");
  ASSERT_TRUE(v.forwarded());
  EXPECT_EQ(v.host, "h1.com");  // routes before the delimiter
  EXPECT_NE(v.forwarded_bytes.find("Host: h1.com@h2.com\r\n"),
            std::string::npos);
}

TEST(Varnish, NonHttpSchemeForwardedTransparently) {
  auto varnish = make_implementation("varnish");
  ProxyVerdict v = varnish->forward_request(
      "GET test://h2.com/?a=1 HTTP/1.1\r\nHost: h1.com\r\n\r\n");
  ASSERT_TRUE(v.forwarded());
  EXPECT_EQ(v.host, "h1.com");
  EXPECT_NE(v.forwarded_bytes.find("GET test://h2.com/?a=1"),
            std::string::npos);
}

TEST(Varnish, HttpSchemeRewritten) {
  auto varnish = make_implementation("varnish");
  ProxyVerdict v = varnish->forward_request(
      "GET http://h2.com/p HTTP/1.1\r\nHost: h1.com\r\n\r\n");
  ASSERT_TRUE(v.forwarded());
  EXPECT_NE(v.forwarded_bytes.find("GET /p HTTP/1.1"), std::string::npos);
  EXPECT_NE(v.forwarded_bytes.find("Host: h2.com"), std::string::npos);
}

TEST(Varnish, SubstringChunkedMatchAndDechunk) {
  auto varnish = make_implementation("varnish");
  ProxyVerdict v = varnish->forward_request(
      chunked_req("chunked, identity", "3\r\nabc\r\n0\r\n\r\n"));
  ASSERT_TRUE(v.forwarded());
  EXPECT_NE(v.forwarded_bytes.find("Content-Length: 3"), std::string::npos);
}

TEST(Squid, WrapsChunkSizeAndRepairs) {
  auto squid = make_implementation("squid");
  ProxyVerdict v = squid->forward_request(
      chunked_req("chunked", "100000000a\r\nabc\r\n0\r\n\r\n"));
  ASSERT_TRUE(v.forwarded());
  std::size_t body_at = v.forwarded_bytes.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_EQ(v.forwarded_bytes.substr(body_at + 4, 3), "a\r\n");
}

TEST(Squid, StrictHostNoHot) {
  auto squid = make_implementation("squid");
  EXPECT_EQ(squid->forward_request(
                   "GET / HTTP/1.1\r\nHost: h1.com@h2.com\r\n\r\n")
                .status,
            400);
}

TEST(Haproxy, BlindForwardsHttp09WithHeaders) {
  auto haproxy = make_implementation("haproxy");
  ProxyVerdict v = haproxy->forward_request("GET /\r\nHost: h1.com\r\n\r\n");
  ASSERT_TRUE(v.forwarded());
  EXPECT_NE(v.forwarded_bytes.find("GET /\r\n"), std::string::npos);
  EXPECT_EQ(v.forwarded_bytes.find("HTTP/1.1\r\nHost"), std::string::npos);
}

TEST(Haproxy, ForwardsWithoutHostHeader) {
  auto haproxy = make_implementation("haproxy");
  ProxyVerdict v = haproxy->forward_request("GET / HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(v.forwarded());
}

TEST(Ats, TransparentlyForwardsIgnoredWsColonHeader) {
  auto ats = make_implementation("ats");
  ProxyVerdict v = ats->forward_request(
      "POST / HTTP/1.1\r\nHost: h\r\nContent-Length : 5\r\n\r\nAAAAA");
  ASSERT_TRUE(v.forwarded());
  EXPECT_NE(v.forwarded_bytes.find("Content-Length : 5\r\n"),
            std::string::npos);
  // ATS itself framed no body; IIS downstream trusts the header and blocks.
  auto iis = make_implementation("iis");
  ServerVerdict sv = iis->parse_request(v.forwarded_bytes);
  EXPECT_TRUE(sv.incomplete);
}

TEST(Ats, ForwardsExpectInGet) {
  auto ats = make_implementation("ats");
  ProxyVerdict v = ats->forward_request(
      "GET / HTTP/1.1\r\nHost: h\r\nExpect: 100-continue\r\n\r\n");
  ASSERT_TRUE(v.forwarded());
  EXPECT_NE(v.forwarded_bytes.find("Expect: 100-continue"), std::string::npos);
  // Conformant proxies drop it for bodyless requests.
  auto apache = make_implementation("apache");
  ProxyVerdict av = apache->forward_request(
      "GET / HTTP/1.1\r\nHost: h\r\nExpect: 100-continue\r\n\r\n");
  ASSERT_TRUE(av.forwarded());
  EXPECT_EQ(av.forwarded_bytes.find("Expect"), std::string::npos);
}

TEST(Ats, ForwardsMangledTeWhileFramingByCl) {
  auto ats = make_implementation("ats");
  std::string smuggle = "0\r\n\r\nGET /evil HTTP/1.1\r\nHost: h\r\n\r\n";
  std::string raw =
      "POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: \x0b" "chunked\r\n"
      "Content-Length: " + std::to_string(smuggle.size()) + "\r\n\r\n" +
      smuggle;
  ProxyVerdict v = ats->forward_request(raw);
  ASSERT_TRUE(v.forwarded());
  // Tomcat downstream honours the mangled TE and exposes the suffix.
  auto tomcat = make_implementation("tomcat");
  ServerVerdict sv = tomcat->parse_request(v.forwarded_bytes);
  EXPECT_EQ(sv.status, 200);
  EXPECT_EQ(sv.leftover, "GET /evil HTTP/1.1\r\nHost: h\r\n\r\n");
}

}  // namespace
}  // namespace hdiff::impls
