// Property-style sweeps: invariants that must hold for EVERY implementation
// on EVERY probe, and robustness of the parsers under random byte-level
// corruption (seeded, deterministic).
#include <gtest/gtest.h>

#include <random>

#include "core/probes.h"
#include "http/lexer.h"
#include "impls/products.h"

namespace hdiff::impls {
namespace {

std::vector<std::string> probe_wires() {
  std::vector<std::string> out;
  for (const auto& tc : core::verification_probes()) out.push_back(tc.raw);
  return out;
}

// ---------------------------------------------------------------------------
// Per-product invariant sweep over the whole probe corpus
// ---------------------------------------------------------------------------

class ProductInvariants
    : public ::testing::TestWithParam<std::string_view> {};

TEST_P(ProductInvariants, VerdictsAreWellFormed) {
  auto impl = make_implementation(GetParam());
  ASSERT_NE(impl, nullptr);
  for (const auto& raw : probe_wires()) {
    ServerVerdict v = impl->parse_request(raw);
    // Status is either "blocked" (0, with incomplete set) or a real code.
    if (v.status == 0) {
      EXPECT_TRUE(v.incomplete) << raw.substr(0, 40);
    } else {
      EXPECT_GE(v.status, 200) << raw.substr(0, 40);
      EXPECT_LT(v.status, 600) << raw.substr(0, 40);
    }
    // Rejected requests never report a framed body.
    if (v.status >= 400) {
      EXPECT_EQ(v.framing, BodyFraming::kNotApplicable);
    }
  }
}

TEST_P(ProductInvariants, ParsingIsDeterministic) {
  auto impl = make_implementation(GetParam());
  for (const auto& raw : probe_wires()) {
    ServerVerdict a = impl->parse_request(raw);
    ServerVerdict b = impl->parse_request(raw);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.host, b.host);
    EXPECT_EQ(a.body, b.body);
    EXPECT_EQ(a.leftover, b.leftover);
  }
}

TEST_P(ProductInvariants, BodyPlusLeftoverNeverExceedsPayload) {
  auto impl = make_implementation(GetParam());
  for (const auto& raw : probe_wires()) {
    ServerVerdict v = impl->parse_request(raw);
    if (!v.accepted()) continue;
    http::RawRequest lexed = http::lex_request(raw);
    // Decoded chunked bodies can be shorter than the wire bytes, but body
    // and leftover can never contain more bytes than arrived.
    EXPECT_LE(v.body.size() + v.leftover.size(),
              lexed.after_headers.size() + 1)
        << raw.substr(0, 40);
    // The leftover must be a literal suffix of the wire payload.
    if (!v.leftover.empty()) {
      ASSERT_GE(lexed.after_headers.size(), v.leftover.size());
      EXPECT_EQ(lexed.after_headers.substr(lexed.after_headers.size() -
                                           v.leftover.size()),
                v.leftover);
    }
  }
}

TEST_P(ProductInvariants, ForwardedBytesAreParseable) {
  auto impl = make_implementation(GetParam());
  if (!impl->is_proxy()) GTEST_SKIP() << "server-only product";
  for (const auto& raw : probe_wires()) {
    ProxyVerdict v = impl->forward_request(raw);
    if (!v.forwarded()) continue;
    // Whatever a proxy emits must at least lex as an HTTP request and keep
    // the method; downstream disagreement is about *semantics*, not noise.
    http::RawRequest lexed = http::lex_request(v.forwarded_bytes);
    EXPECT_FALSE(lexed.line.method_token.empty());
    // Every forward carries the proxy's Via marker.
    EXPECT_NE(v.forwarded_bytes.find("Via: 1.1 "), std::string::npos);
  }
}

TEST_P(ProductInvariants, ProxyRejectionsCarryStatus) {
  auto impl = make_implementation(GetParam());
  if (!impl->is_proxy()) GTEST_SKIP() << "server-only product";
  for (const auto& raw : probe_wires()) {
    ProxyVerdict v = impl->forward_request(raw);
    if (v.forwarded()) continue;
    EXPECT_GE(v.status, 400);
    EXPECT_LT(v.status, 600);
    EXPECT_TRUE(v.forwarded_bytes.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProducts, ProductInvariants,
    ::testing::Values("iis", "tomcat", "weblogic", "lighttpd", "apache",
                      "nginx", "varnish", "squid", "haproxy", "ats"),
    [](const ::testing::TestParamInfo<std::string_view>& param_info) {
      return std::string(param_info.param);
    });

// ---------------------------------------------------------------------------
// Robustness under random corruption (seeded fuzz sweep)
// ---------------------------------------------------------------------------

class CorruptionSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(CorruptionSweep, NoCrashAndDeterministic) {
  std::mt19937_64 rng(GetParam());
  auto fleet = make_all_implementations();
  const std::string seed_request =
      "POST /a?b=c HTTP/1.1\r\nHost: h1.com\r\nContent-Length: 5\r\n"
      "Transfer-Encoding: chunked\r\nExpect: 100-continue\r\n\r\n"
      "5\r\nAAAAA\r\n0\r\n\r\n";

  for (int iter = 0; iter < 150; ++iter) {
    std::string mutated = seed_request;
    // 1-4 random byte edits: overwrite, insert, or delete.
    int edits = 1 + static_cast<int>(rng() % 4);
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      std::size_t pos = rng() % mutated.size();
      switch (rng() % 3) {
        case 0:
          mutated[pos] = static_cast<char>(rng() % 256);
          break;
        case 1:
          mutated.insert(pos, 1, static_cast<char>(rng() % 256));
          break;
        case 2:
          mutated.erase(pos, 1);
          break;
      }
    }
    for (const auto& impl : fleet) {
      ServerVerdict a = impl->parse_request(mutated);
      ServerVerdict b = impl->parse_request(mutated);
      EXPECT_EQ(a.status, b.status) << impl->name();
      EXPECT_EQ(a.body, b.body) << impl->name();
      if (impl->is_proxy()) {
        ProxyVerdict p = impl->forward_request(mutated);
        if (p.forwarded()) {
          // Forwarding must terminate and produce lexable output even for
          // corrupted inputs.
          http::RawRequest lexed = http::lex_request(p.forwarded_bytes);
          EXPECT_FALSE(lexed.line.method_token.empty()) << impl->name();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionSweep,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99991u));

}  // namespace
}  // namespace hdiff::impls
