// Engine-level tests: one ParsePolicy dial at a time, verifying the
// behaviour divergences the differential models rely on.
#include "impls/model.h"

#include <gtest/gtest.h>

namespace hdiff::impls {
namespace {

ParsePolicy strict_server() {
  ParsePolicy p;
  p.name = "strict";
  p.server_mode = true;
  return p;
}

ParsePolicy strict_proxy() {
  ParsePolicy p;
  p.name = "strict-proxy";
  p.proxy_mode = true;
  p.cache_enabled = true;
  return p;
}

const std::string kPlainGet =
    "GET /?a=1 HTTP/1.1\r\nHost: h1.com\r\n\r\n";

TEST(Engine, AcceptsCanonicalGet) {
  ModelImplementation impl(strict_server());
  ServerVerdict v = impl.parse_request(kPlainGet);
  EXPECT_EQ(v.status, 200);
  EXPECT_EQ(v.host, "h1.com");
  EXPECT_EQ(v.framing, BodyFraming::kNone);
  EXPECT_TRUE(v.leftover.empty());
}

TEST(Engine, ContentLengthFraming) {
  ModelImplementation impl(strict_server());
  ServerVerdict v = impl.parse_request(
      "POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\n\r\nabcXYZ");
  EXPECT_EQ(v.status, 200);
  EXPECT_EQ(v.framing, BodyFraming::kContentLength);
  EXPECT_EQ(v.body, "abc");
  EXPECT_EQ(v.leftover, "XYZ");
}

TEST(Engine, ChunkedFraming) {
  ModelImplementation impl(strict_server());
  ServerVerdict v = impl.parse_request(
      "POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\n\r\nNEXT");
  EXPECT_EQ(v.status, 200);
  EXPECT_EQ(v.framing, BodyFraming::kChunked);
  EXPECT_EQ(v.body, "abc");
  EXPECT_EQ(v.leftover, "NEXT");
}

TEST(Engine, IncompleteBodyBlocks) {
  ModelImplementation impl(strict_server());
  ServerVerdict v = impl.parse_request(
      "POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\n\r\nabc");
  EXPECT_TRUE(v.incomplete);
  EXPECT_EQ(v.status, 0);
}

TEST(Engine, MissingHostRejected11Only) {
  ModelImplementation impl(strict_server());
  EXPECT_EQ(impl.parse_request("GET / HTTP/1.1\r\n\r\n").status, 400);
  EXPECT_EQ(impl.parse_request("GET / HTTP/1.0\r\n\r\n").status, 200);
}

TEST(Engine, WsBeforeColonPolicies) {
  const std::string raw =
      "POST / HTTP/1.1\r\nHost: h\r\nContent-Length : 3\r\n\r\nabc";
  ParsePolicy p = strict_server();
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).status, 400);

  p.ws_before_colon = WsBeforeColon::kStripAndUse;
  ServerVerdict strip = ModelImplementation(p).parse_request(raw);
  EXPECT_EQ(strip.status, 200);
  EXPECT_EQ(strip.body, "abc");

  p.ws_before_colon = WsBeforeColon::kIgnoreHeader;
  ServerVerdict ignore = ModelImplementation(p).parse_request(raw);
  EXPECT_EQ(ignore.status, 200);
  EXPECT_EQ(ignore.framing, BodyFraming::kNone);
  EXPECT_EQ(ignore.leftover, "abc");  // boundary gap vs the stripper
}

TEST(Engine, DuplicateClPolicies) {
  const std::string raw =
      "POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\n"
      "Content-Length: 6\r\n\r\nabcdefXY";
  ParsePolicy p = strict_server();
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).status, 400);

  p.duplicate_cl = DuplicateCl::kTakeFirst;
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).body, "abc");
  p.duplicate_cl = DuplicateCl::kTakeLast;
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).body, "abcdef");
}

TEST(Engine, IdenticalDuplicateClCollapses) {
  const std::string raw =
      "POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\n"
      "Content-Length: 3\r\n\r\nabc";
  EXPECT_EQ(ModelImplementation(strict_server()).parse_request(raw).status,
            200);
}

TEST(Engine, LenientClScan) {
  ParsePolicy p = strict_server();
  p.cl_value_parse = ClValueParse::kLenientScan;
  ServerVerdict v = ModelImplementation(p).parse_request(
      "POST / HTTP/1.1\r\nHost: h\r\nContent-Length: +3\r\n\r\nabcZ");
  EXPECT_EQ(v.status, 200);
  EXPECT_EQ(v.body, "abc");
}

TEST(Engine, ClTeConflictPolicies) {
  const std::string raw =
      "POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n"
      "Content-Length: 5\r\n\r\n0\r\n\r\nGET /evil HTTP/1.1\r\n\r\n";
  ParsePolicy p = strict_server();  // kTeWins
  ServerVerdict te = ModelImplementation(p).parse_request(raw);
  EXPECT_EQ(te.status, 200);
  EXPECT_EQ(te.framing, BodyFraming::kChunked);
  EXPECT_EQ(te.leftover, "GET /evil HTTP/1.1\r\n\r\n");

  p.cl_te_conflict = ClTeConflict::kReject400;
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).status, 400);

  p.cl_te_conflict = ClTeConflict::kClWins;
  ServerVerdict cl = ModelImplementation(p).parse_request(raw);
  EXPECT_EQ(cl.framing, BodyFraming::kContentLength);
  EXPECT_EQ(cl.body, "0\r\n\r\n");
}

TEST(Engine, MangledTeStrictVsTrimming) {
  const std::string raw =
      "POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: \x0b"
      "chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n";
  ParsePolicy p = strict_server();
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).status, 501);

  p.te_value_parse = TeValueParse::kTrimControls;
  ServerVerdict v = ModelImplementation(p).parse_request(raw);
  EXPECT_EQ(v.status, 200);
  EXPECT_EQ(v.framing, BodyFraming::kChunked);
  EXPECT_EQ(v.body, "abc");
}

TEST(Engine, TeUnknownIgnoredWhenLenient) {
  ParsePolicy p = strict_server();
  p.te_unknown_is_error = false;
  ServerVerdict v = ModelImplementation(p).parse_request(
      "POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: xchunked\r\n"
      "Content-Length: 3\r\n\r\nabcZ");
  EXPECT_EQ(v.status, 200);
  EXPECT_EQ(v.framing, BodyFraming::kContentLength);
  EXPECT_EQ(v.body, "abc");
}

TEST(Engine, TeNotHonoredInHttp10) {
  const std::string raw =
      "POST / HTTP/1.0\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\n\r\n";
  ParsePolicy p = strict_server();
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).framing,
            BodyFraming::kChunked);
  p.te_honored_in_http10 = false;
  ServerVerdict v = ModelImplementation(p).parse_request(raw);
  EXPECT_EQ(v.framing, BodyFraming::kNone);
  EXPECT_EQ(v.leftover, "3\r\nabc\r\n0\r\n\r\n");
}

TEST(Engine, ObsoleteIdentityCoding) {
  const std::string raw =
      "POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked, identity"
      "\r\n\r\n3\r\nabc\r\n0\r\n\r\n";
  ParsePolicy p = strict_server();
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).status, 400);
  p.reject_te_identity = false;
  p.te_value_parse = TeValueParse::kContainsChunked;
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).status, 200);
}

TEST(Engine, FatGetPolicies) {
  const std::string raw =
      "GET / HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nAAAAA";
  ParsePolicy p = strict_server();  // kParseBody
  ServerVerdict parse = ModelImplementation(p).parse_request(raw);
  EXPECT_EQ(parse.body, "AAAAA");

  p.fat_get = FatGet::kIgnoreBody;
  ServerVerdict ignore = ModelImplementation(p).parse_request(raw);
  EXPECT_EQ(ignore.status, 200);
  EXPECT_EQ(ignore.leftover, "AAAAA");

  p.fat_get = FatGet::kReject400;
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).status, 400);
}

TEST(Engine, MultipleHostPolicies) {
  const std::string raw =
      "GET / HTTP/1.1\r\nHost: h1.com\r\nHost: h2.com\r\n\r\n";
  ParsePolicy p = strict_server();
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).status, 400);

  p.reject_multiple_host = false;
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).host, "h1.com");
  p.multiple_host_take_last = true;
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).host, "h2.com");
}

TEST(Engine, HostValidationLevels) {
  const std::string raw = "GET / HTTP/1.1\r\nHost: h1.com@h2.com\r\n\r\n";
  ParsePolicy p = strict_server();
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).status, 400);

  p.host_validation = HostValidation::kLoose;
  p.host_extraction = http::HostExtraction::kAfterAt;
  ServerVerdict v = ModelImplementation(p).parse_request(raw);
  EXPECT_EQ(v.status, 200);
  EXPECT_EQ(v.host, "h2.com");
}

TEST(Engine, AbsoluteUriHostPolicies) {
  const std::string raw =
      "GET test://h2.com/?a=1 HTTP/1.1\r\nHost: h1.com\r\n\r\n";
  ParsePolicy p = strict_server();
  p.host_validation = HostValidation::kLoose;
  p.host_extraction = http::HostExtraction::kBeforeDelims;
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).host, "h2.com");

  p.abs_uri_host = AbsUriHostPolicy::kUriWinsHttpOnly;
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).host, "h1.com");

  p.abs_uri_host = AbsUriHostPolicy::kHostHeaderWins;
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).host, "h1.com");
}

TEST(Engine, NonHttpSchemeRejection) {
  ParsePolicy p = strict_server();
  p.reject_non_http_scheme = true;
  EXPECT_EQ(ModelImplementation(p)
                .parse_request(
                    "GET test://h2.com/ HTTP/1.1\r\nHost: h1.com\r\n\r\n")
                .status,
            400);
  EXPECT_EQ(ModelImplementation(p)
                .parse_request(
                    "GET http://h2.com/ HTTP/1.1\r\nHost: h1.com\r\n\r\n")
                .status,
            200);
}

TEST(Engine, VersionHandlingPolicies) {
  const std::string raw = "GET / hTTP/1.1\r\nHost: h\r\n\r\n";
  ParsePolicy p = strict_server();
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).status, 400);

  p.version_handling = VersionHandling::kCaseInsensitiveOnly;
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).status, 200);
  EXPECT_EQ(ModelImplementation(p)
                .parse_request("GET / 1.1/HTTP\r\nHost: h\r\n\r\n")
                .status,
            400);

  p.version_handling = VersionHandling::kAcceptAsIs;
  EXPECT_EQ(ModelImplementation(p)
                .parse_request("GET / 1.1/HTTP\r\nHost: h\r\n\r\n")
                .status,
            200);
}

TEST(Engine, Http09Policies) {
  ParsePolicy p = strict_server();
  EXPECT_EQ(ModelImplementation(p).parse_request("GET /\r\n\r\n").status, 400);
  p.accept_http09 = true;
  EXPECT_EQ(ModelImplementation(p).parse_request("GET /\r\n\r\n").status, 200);
  // Headers on a 0.9 line require the extra dial.
  EXPECT_EQ(ModelImplementation(p)
                .parse_request("GET /\r\nHost: h\r\n\r\n")
                .status,
            400);
  p.accept_http09_with_headers = true;
  EXPECT_EQ(ModelImplementation(p)
                .parse_request("GET /\r\nHost: h\r\n\r\n")
                .status,
            200);
}

TEST(Engine, Http2VersionToken) {
  ParsePolicy p = strict_server();
  EXPECT_EQ(ModelImplementation(p)
                .parse_request("GET / HTTP/2.0\r\nHost: h\r\n\r\n")
                .status,
            505);
  p.accept_version_2x = true;
  EXPECT_EQ(ModelImplementation(p)
                .parse_request("GET / HTTP/2.0\r\nHost: h\r\n\r\n")
                .status,
            200);
}

TEST(Engine, ExpectInGetPolicies) {
  const std::string raw =
      "GET / HTTP/1.1\r\nHost: h\r\nExpect: 100-continue\r\n\r\n";
  ParsePolicy p = strict_server();
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).status, 200);
  p.expect_in_get = ExpectInGet::kReject417;
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).status, 417);
}

TEST(Engine, HeaderSizeLimit) {
  ParsePolicy p = strict_server();
  p.max_header_bytes = 64;
  std::string raw = "GET / HTTP/1.1\r\nHost: h\r\nX-Pad: " +
                    std::string(100, 'a') + "\r\n\r\n";
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).status, 431);
}

TEST(Engine, MalformedHeaderNamePolicies) {
  const std::string raw =
      "POST / HTTP/1.1\r\nHost: h\r\n\x0bTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\n\r\n";
  ParsePolicy p = strict_server();  // default: ignore the line
  ServerVerdict ignored = ModelImplementation(p).parse_request(raw);
  EXPECT_EQ(ignored.status, 200);
  EXPECT_EQ(ignored.framing, BodyFraming::kNone);

  p.reject_malformed_header_name = true;
  EXPECT_EQ(ModelImplementation(p).parse_request(raw).status, 400);

  p.reject_malformed_header_name = false;
  p.lenient_header_name_trim = true;
  ServerVerdict trimmed = ModelImplementation(p).parse_request(raw);
  EXPECT_EQ(trimmed.framing, BodyFraming::kChunked);
  EXPECT_EQ(trimmed.body, "abc");
}

// ---------------------------------------------------------------------------
// Proxy forwarding
// ---------------------------------------------------------------------------

TEST(Forwarding, CanonicalRequestRoundTrips) {
  ModelImplementation proxy(strict_proxy());
  ProxyVerdict v = proxy.forward_request(kPlainGet);
  ASSERT_TRUE(v.forwarded());
  EXPECT_NE(v.forwarded_bytes.find("GET /?a=1 HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(v.forwarded_bytes.find("Host: h1.com\r\n"), std::string::npos);
  EXPECT_NE(v.forwarded_bytes.find("Via: 1.1 strict-proxy\r\n"),
            std::string::npos);
  EXPECT_TRUE(v.would_cache);
  // The forwarded bytes parse cleanly.
  ModelImplementation server(strict_server());
  EXPECT_EQ(server.parse_request(v.forwarded_bytes).status, 200);
}

TEST(Forwarding, HopByHopHeadersStripped) {
  ModelImplementation proxy(strict_proxy());
  ProxyVerdict v = proxy.forward_request(
      "GET / HTTP/1.1\r\nHost: h\r\nConnection: keep-alive\r\n"
      "Keep-Alive: timeout=5\r\nUpgrade: h2c\r\n\r\n");
  ASSERT_TRUE(v.forwarded());
  EXPECT_EQ(v.forwarded_bytes.find("Keep-Alive"), std::string::npos);
  EXPECT_EQ(v.forwarded_bytes.find("Upgrade"), std::string::npos);
  EXPECT_EQ(v.forwarded_bytes.find("Connection:"), std::string::npos);
}

TEST(Forwarding, ConnectionListedStrippedButCriticalProtected) {
  ModelImplementation proxy(strict_proxy());
  ProxyVerdict v = proxy.forward_request(
      "GET / HTTP/1.1\r\nHost: h\r\nX-Custom: 1\r\n"
      "Connection: close, X-Custom, Host\r\n\r\n");
  ASSERT_TRUE(v.forwarded());
  EXPECT_EQ(v.forwarded_bytes.find("X-Custom"), std::string::npos);
  EXPECT_NE(v.forwarded_bytes.find("Host: h"), std::string::npos);
}

TEST(Forwarding, UnprotectedConnectionStripDropsHost) {
  ParsePolicy p = strict_proxy();
  p.connection_strip_protects_critical = false;
  ModelImplementation proxy(p);
  ProxyVerdict v = proxy.forward_request(
      "GET / HTTP/1.1\r\nHost: h\r\nConnection: close, Host\r\n\r\n");
  ASSERT_TRUE(v.forwarded());
  EXPECT_EQ(v.forwarded_bytes.find("Host:"), std::string::npos);
}

TEST(Forwarding, AbsoluteUriRewrittenToOriginForm) {
  ModelImplementation proxy(strict_proxy());
  ProxyVerdict v = proxy.forward_request(
      "GET http://h2.com:8080/p?q=1 HTTP/1.1\r\nHost: h1.com\r\n\r\n");
  ASSERT_TRUE(v.forwarded());
  EXPECT_NE(v.forwarded_bytes.find("GET /p?q=1 HTTP/1.1\r\n"),
            std::string::npos);
  EXPECT_NE(v.forwarded_bytes.find("Host: h2.com:8080\r\n"), std::string::npos);
  EXPECT_EQ(v.forwarded_bytes.find("h1.com"), std::string::npos);
}

TEST(Forwarding, VersionRepairAppendsOwnKeepingGarbage) {
  ParsePolicy p = strict_proxy();
  p.version_handling = VersionHandling::kAcceptAsIs;
  p.version_forwarding = VersionForwarding::kAppendOwnKeepBad;
  ModelImplementation proxy(p);
  ProxyVerdict v = proxy.forward_request(
      "GET /?a=b 1.1/HTTP\r\nHost: h\r\n\r\n");
  ASSERT_TRUE(v.forwarded());
  EXPECT_NE(v.forwarded_bytes.find("GET /?a=b 1.1/HTTP HTTP/1.1\r\n"),
            std::string::npos);
}

TEST(Forwarding, BlindForwardKeepsVersion) {
  ParsePolicy p = strict_proxy();
  p.accept_version_2x = true;
  p.version_forwarding = VersionForwarding::kBlindForward;
  ModelImplementation proxy(p);
  ProxyVerdict v = proxy.forward_request(
      "GET / HTTP/2.0\r\nHost: h\r\n\r\n");
  ASSERT_TRUE(v.forwarded());
  EXPECT_NE(v.forwarded_bytes.find("GET / HTTP/2.0\r\n"), std::string::npos);
}

TEST(Forwarding, ChunkedReencodedCanonically) {
  ModelImplementation proxy(strict_proxy());
  ProxyVerdict v = proxy.forward_request(
      "POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n"
      "1\r\na\r\n2\r\nbc\r\n0\r\n\r\n");
  ASSERT_TRUE(v.forwarded());
  EXPECT_NE(v.forwarded_bytes.find("3\r\nabc\r\n0\r\n\r\n"), std::string::npos);
}

TEST(Forwarding, DechunkDownstreamEmitsContentLength) {
  ParsePolicy p = strict_proxy();
  p.dechunk_downstream = true;
  ModelImplementation proxy(p);
  ProxyVerdict v = proxy.forward_request(
      "POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\n\r\n");
  ASSERT_TRUE(v.forwarded());
  EXPECT_NE(v.forwarded_bytes.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_EQ(v.forwarded_bytes.find("Transfer-Encoding"), std::string::npos);
  EXPECT_NE(v.forwarded_bytes.find("\r\n\r\nabc"), std::string::npos);
}

TEST(Forwarding, WrappedChunkRepairEmitsWrongSize) {
  ParsePolicy p = strict_proxy();
  p.chunk.wrapping_size = true;
  p.chunk.wrap_bits = 32;
  p.chunk.lenient_size_line = true;
  p.chunk.require_crlf_after_data = false;
  ModelImplementation proxy(p);
  ProxyVerdict v = proxy.forward_request(
      "POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n"
      "100000000a\r\nabc\r\n0\r\n\r\n");
  ASSERT_TRUE(v.forwarded());
  // The repaired size ("a" = 10) does not match the data actually emitted —
  // a strict downstream parser blocks on it.
  std::size_t body_at = v.forwarded_bytes.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_EQ(v.forwarded_bytes.substr(body_at + 4, 3), "a\r\n");
  ModelImplementation server(strict_server());
  ServerVerdict sv = server.parse_request(v.forwarded_bytes);
  EXPECT_TRUE(sv.incomplete || sv.status == 400);
}

TEST(Forwarding, TransparentModeCopiesRawHeaderLines) {
  ParsePolicy p = strict_proxy();
  p.normalize_headers_on_forward = false;
  p.ws_before_colon = WsBeforeColon::kIgnoreHeader;
  ModelImplementation proxy(p);
  ProxyVerdict v = proxy.forward_request(
      "POST / HTTP/1.1\r\nHost: h\r\nContent-Length : 5\r\n\r\nAAAAA");
  ASSERT_TRUE(v.forwarded());
  // The mangled line survives verbatim even though the proxy ignored it.
  EXPECT_NE(v.forwarded_bytes.find("Content-Length : 5\r\n"),
            std::string::npos);
  // The proxy framed no body, so the payload bytes are NOT forwarded.
  EXPECT_EQ(v.forwarded_bytes.find("AAAAA"), std::string::npos);
}

TEST(Forwarding, RejectionReportsStatus) {
  ModelImplementation proxy(strict_proxy());
  ProxyVerdict v = proxy.forward_request("GET / HTTP/1.1\r\n\r\n");
  EXPECT_FALSE(v.forwarded());
  EXPECT_EQ(v.status, 400);
}

TEST(Forwarding, IncompleteRequestTimesOut) {
  ModelImplementation proxy(strict_proxy());
  ProxyVerdict v = proxy.forward_request(
      "POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 99\r\n\r\nshort");
  EXPECT_FALSE(v.forwarded());
  EXPECT_EQ(v.status, 408);
  EXPECT_TRUE(v.incomplete);
}

TEST(Forwarding, NonProxyRefuses) {
  ModelImplementation server(strict_server());
  ProxyVerdict v = server.forward_request(kPlainGet);
  EXPECT_EQ(v.status, 500);
}

TEST(Forwarding, CacheKeyCombinesHostAndTarget) {
  ModelImplementation proxy(strict_proxy());
  ProxyVerdict v = proxy.forward_request(kPlainGet);
  EXPECT_EQ(v.cache_key, "h1.com|/?a=1");
}

}  // namespace
}  // namespace hdiff::impls
