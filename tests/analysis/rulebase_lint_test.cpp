// RuleBaseLint: the builtin rule base must fingerprint clean, and each
// RB-code must fire on a synthetic engine seeded with that defect.
#include "analysis/rulebase_lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace hdiff::analysis {
namespace {

using core::AttackClass;
using core::CustomRuleEngine;
using core::DirectRule;
using core::PairMetrics;
using core::PairRule;

bool has(const std::vector<Diagnostic>& diags, std::string_view code,
         std::string_view rule = {}) {
  for (const auto& d : diags) {
    if (d.code == code && (rule.empty() || d.rule == rule)) return true;
  }
  return false;
}

// A predicate guaranteed to fire on at least one battery probe: the
// desync-hang scenario sets back.incomplete.
std::string fires_on_hang(const PairMetrics& pm) {
  return pm.back.incomplete ? "hang" : "";
}

TEST(RuleBaseLint, BuiltinRuleBaseIsClean) {
  auto diags = lint_rulebase(core::make_builtin_rules());
  EXPECT_TRUE(diags.empty()) << to_string(diags.front());
}

TEST(RuleBaseLint, BuiltinSignaturesAreDistinctAndAlive) {
  auto sigs = pair_rule_signatures(core::make_builtin_rules());
  ASSERT_FALSE(sigs.empty());
  std::set<std::vector<bool>> distinct;
  for (const auto& sig : sigs) {
    ASSERT_EQ(sig.fires.size(), pair_probe_names().size()) << sig.name;
    bool alive = false;
    for (bool f : sig.fires) alive = alive || f;
    EXPECT_TRUE(alive) << sig.name << " never fires on the battery";
    EXPECT_TRUE(distinct.insert(sig.fires).second)
        << sig.name << " shares a fire signature with another builtin";
  }
}

TEST(RuleBaseLint, BatteryIncludesCleanControl) {
  // "Never fires" is only meaningful if a clean probe exists; a rule firing
  // on *everything* (including clean) is likewise suspect but alive.
  auto names = pair_probe_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "clean"), names.end());
}

TEST(RuleBaseLint, DuplicateSignatureSameAttackIsRB001) {
  CustomRuleEngine engine;
  engine.add(PairRule{"hang-a", AttackClass::kHrs, fires_on_hang});
  engine.add(PairRule{"hang-b", AttackClass::kHrs, fires_on_hang});
  auto diags = lint_rulebase(engine);
  ASSERT_TRUE(has(diags, "RB001", "hang-b"));
  for (const auto& d : diags) {
    if (d.code == "RB001") {
      EXPECT_EQ(d.severity, Severity::kWarning);
      EXPECT_EQ(d.span, "hang-a");
    }
  }
}

TEST(RuleBaseLint, ShadowedNameIsRB002) {
  CustomRuleEngine engine;
  engine.add(PairRule{"dup", AttackClass::kHrs, fires_on_hang});
  engine.add(PairRule{"dup", AttackClass::kHrs,
                      [](const PairMetrics& pm) {
                        return pm.back.leftover.empty() ? "" : "leftover";
                      }});
  auto diags = lint_rulebase(engine);
  EXPECT_TRUE(has(diags, "RB002", "dup"));
  // Same name: the identical-signature pass skips the pair, no RB001/RB003.
  EXPECT_FALSE(has(diags, "RB001"));
  EXPECT_FALSE(has(diags, "RB003"));
}

TEST(RuleBaseLint, ConflictingVerdictsAreRB003) {
  CustomRuleEngine engine;
  engine.add(PairRule{"hang-hrs", AttackClass::kHrs, fires_on_hang});
  engine.add(PairRule{"hang-cpdos", AttackClass::kCpdos, fires_on_hang});
  auto diags = lint_rulebase(engine);
  ASSERT_TRUE(has(diags, "RB003", "hang-cpdos"));
  for (const auto& d : diags) {
    if (d.code == "RB003") {
      EXPECT_EQ(d.severity, Severity::kError);
      EXPECT_NE(d.message.find("conflicting verdicts"), std::string::npos);
    }
  }
}

TEST(RuleBaseLint, DeadRuleIsRB004) {
  CustomRuleEngine engine;
  engine.add(PairRule{"never", AttackClass::kGeneric,
                      [](const PairMetrics&) { return std::string(); }});
  auto diags = lint_rulebase(engine);
  ASSERT_TRUE(has(diags, "RB004", "never"));
  EXPECT_EQ(diags.size(), 1u);
}

TEST(RuleBaseLint, DeadPairIsNotAlsoDuplicate) {
  // Two dead rules share the all-false signature; flagging them as
  // duplicates of each other would be noise on top of two RB004s.
  CustomRuleEngine engine;
  engine.add(PairRule{"dead-a", AttackClass::kHrs,
                      [](const PairMetrics&) { return std::string(); }});
  engine.add(PairRule{"dead-b", AttackClass::kHrs,
                      [](const PairMetrics&) { return std::string(); }});
  auto diags = lint_rulebase(engine);
  EXPECT_TRUE(has(diags, "RB004", "dead-a"));
  EXPECT_TRUE(has(diags, "RB004", "dead-b"));
  EXPECT_FALSE(has(diags, "RB001"));
}

TEST(RuleBaseLint, DirectRulesAreLintedToo) {
  CustomRuleEngine engine;
  engine.add(DirectRule{"direct-dead", AttackClass::kGeneric,
                        [](const core::HMetrics&) { return std::string(); }});
  auto diags = lint_rulebase(engine);
  ASSERT_TRUE(has(diags, "RB004", "direct-dead"));
  for (const auto& d : diags) {
    if (d.code == "RB004") {
      EXPECT_EQ(d.span, "direct");
    }
  }
}

TEST(RuleBaseLint, NullPredicateCountsAsDead) {
  CustomRuleEngine engine;
  engine.add(PairRule{"null-pred", AttackClass::kGeneric, nullptr});
  auto diags = lint_rulebase(engine);
  EXPECT_TRUE(has(diags, "RB004", "null-pred"));
}

}  // namespace
}  // namespace hdiff::analysis
