// Lint orchestrator: waiver gating, exit codes, report rendering, and obs
// wiring — the contract `hdiff lint` and the findings-JSON block rely on.
#include "analysis/lint.h"

#include <gtest/gtest.h>

#include "abnf/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hdiff::analysis {
namespace {

abnf::Grammar grammar_of(std::string_view text) {
  std::vector<std::string> errors;
  abnf::Grammar g = abnf::parse_rulelist(text, "fixture", &errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  return g;
}

LintOptions fixture_options() {
  LintOptions options;
  // Tiny fixture grammars: the corpus waivers and the corpus-wide mutation
  // sweep would only add noise (every operator is zero-site on a grammar
  // that feeds no target).
  options.use_default_corpus_waivers = false;
  options.run_mutation_coverage = false;
  return options;
}

TEST(LintIntegration, CleanGrammarExitsZero) {
  auto result = run_lint(grammar_of("a = \"x\"\n"), core::make_builtin_rules(),
                         fixture_options());
  EXPECT_EQ(result.counts.errors, 0u);
  EXPECT_EQ(result.counts.warnings, 0u);
  EXPECT_EQ(lint_exit_code(result), 0);
}

TEST(LintIntegration, ErrorsExitFour) {
  auto result = run_lint(grammar_of("a = a\n"), core::make_builtin_rules(),
                         fixture_options());
  EXPECT_GT(result.counts.errors, 0u);
  EXPECT_EQ(lint_exit_code(result), 4);
}

TEST(LintIntegration, WarningsExitThree) {
  auto result = run_lint(grammar_of("a = *( *\"x\" )\n"),
                         core::make_builtin_rules(), fixture_options());
  EXPECT_EQ(result.counts.errors, 0u);
  EXPECT_GT(result.counts.warnings, 0u);
  EXPECT_EQ(lint_exit_code(result), 3);
}

TEST(LintIntegration, InfosAloneExitZero) {
  auto result = run_lint(grammar_of("a = \"ab\" / \"ac\"\n"),
                         core::make_builtin_rules(), fixture_options());
  EXPECT_GT(result.counts.infos, 0u);
  EXPECT_EQ(lint_exit_code(result), 0);
}

TEST(LintIntegration, WaiverDowngradesExitCode) {
  LintOptions options = fixture_options();
  auto unwaived =
      run_lint(grammar_of("a = a\n"), core::make_builtin_rules(), options);
  EXPECT_EQ(lint_exit_code(unwaived), 4);

  options.waivers.push_back({"GL001", "a", "fixture: accepted self-loop"});
  auto waived =
      run_lint(grammar_of("a = a\n"), core::make_builtin_rules(), options);
  EXPECT_EQ(waived.counts.errors, 0u);
  EXPECT_GT(waived.counts.waived, 0u);
  EXPECT_EQ(lint_exit_code(waived), 0);
  // The diagnostic itself survives, marked rather than dropped.
  bool saw = false;
  for (const auto& d : waived.diagnostics) {
    if (d.code == "GL001") {
      saw = true;
      EXPECT_TRUE(d.waived);
      EXPECT_EQ(d.waiver_reason, "fixture: accepted self-loop");
    }
  }
  EXPECT_TRUE(saw);
}

TEST(LintIntegration, WildcardWaiverMatchesAnyRule) {
  LintOptions options = fixture_options();
  options.waivers.push_back({"GL002", "*", "fixture: excerpt"});
  auto result = run_lint(grammar_of("a = b\nc = d\n"),
                         core::make_builtin_rules(), options);
  EXPECT_EQ(result.counts.errors, 0u);
  EXPECT_EQ(result.counts.waived, 2u);
}

TEST(LintIntegration, WaiverDoesNotMatchOtherCodes) {
  LintOptions options = fixture_options();
  options.waivers.push_back({"GL002", "*", "fixture"});
  auto result =
      run_lint(grammar_of("a = a\n"), core::make_builtin_rules(), options);
  EXPECT_EQ(lint_exit_code(result), 4);  // GL001 untouched
}

TEST(LintIntegration, DefaultCorpusWaiversAreEnumerated) {
  // Every default waiver names a specific accepted finding; only the two
  // excerpt-shaped classes may use the wildcard.
  for (const auto& w : default_corpus_waivers()) {
    EXPECT_FALSE(w.reason.empty()) << w.code;
    if (w.code == "GL001" || w.code == "MC001") {
      EXPECT_NE(w.rule, "*") << w.code << " waivers must name their rule";
    }
  }
}

TEST(LintIntegration, JsonReportCarriesSummaryAndAnalyzers) {
  auto result = run_lint(grammar_of("a = a\n"), core::make_builtin_rules(),
                         fixture_options());
  std::string json = lint_json(result);
  EXPECT_NE(json.find("\"diagnostics\":["), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"GL001\""), std::string::npos);
  EXPECT_NE(json.find("\"summary\":{"), std::string::npos);
  EXPECT_NE(json.find("\"exit_code\":4"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"grammar\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rulebase\""), std::string::npos);
}

TEST(LintIntegration, JsonReportCarriesRankedGapSites) {
  // Satellite contract: `hdiff lint --json` exposes the coverage plan's gap
  // sites with stable ids, the overlap class, and hex witness bytes.
  auto result = run_lint(grammar_of("a = \"ab\" / \"ac\"\n"),
                         core::make_builtin_rules(), fixture_options());
  ASSERT_EQ(result.gap_sites.size(), 1u);
  EXPECT_EQ(result.gap_sites[0].id, 0u);
  EXPECT_EQ(result.gap_sites[0].rule, "a");
  std::string json = lint_json(result);
  EXPECT_NE(json.find("\"gap_sites\":["), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"a\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"first-overlap\""), std::string::npos);
  // Witness {'A','a'} as lowercase hex pairs.
  EXPECT_NE(json.find("\"witness\":\"4161\""), std::string::npos);
}

TEST(LintIntegration, TextReportIsTimingFree) {
  auto result = run_lint(grammar_of("a = a\n"), core::make_builtin_rules(),
                         fixture_options());
  std::string text = lint_text(result);
  EXPECT_NE(text.find("GL001"), std::string::npos);
  EXPECT_NE(text.find("1 error(s)"), std::string::npos);
  EXPECT_EQ(text.find("micros"), std::string::npos);
  // Byte-identical on a second run (the determinism contract, in-process).
  auto again = run_lint(grammar_of("a = a\n"), core::make_builtin_rules(),
                        fixture_options());
  EXPECT_EQ(text, lint_text(again));
}

TEST(LintIntegration, CleanTextReportIsJustTheSummaryLine) {
  LintOptions options = fixture_options();
  options.grammar.roots = {"a"};  // suppress the unreferenced-rule info
  auto result = run_lint(grammar_of("a = \"x\"\n"), core::make_builtin_rules(),
                         options);
  EXPECT_EQ(lint_text(result),
            "lint: 0 error(s), 0 warning(s), 0 info(s), 0 waived\n");
}

TEST(LintIntegration, ObsCountersAndSpansAreEmitted) {
  obs::Registry registry;
  obs::TraceSink sink;
  LintOptions options = fixture_options();
  options.obs.metrics = &registry;
  options.obs.trace = &sink;
  auto result =
      run_lint(grammar_of("a = a\n"), core::make_builtin_rules(), options);
  EXPECT_EQ(registry.counter("hdiff_lint_diagnostics_total").value(),
            result.diagnostics.size());
  EXPECT_GE(registry.counter("hdiff_lint_grammar_diagnostics_total").value(),
            1u);
  EXPECT_EQ(registry.gauge("hdiff_lint_errors").value(),
            static_cast<std::int64_t>(result.counts.errors));
  EXPECT_EQ(registry.histogram("hdiff_lint_grammar_micros").count(), 1u);
  // Spans: lint + lint:grammar + lint:rulebase at minimum.
  EXPECT_GE(sink.event_count(), 3u);
  EXPECT_NE(sink.render_chrome_json().find("lint:grammar"), std::string::npos);
}

TEST(LintIntegration, MutationAnalyzerRunsWhenEnabled) {
  LintOptions options = fixture_options();
  options.run_mutation_coverage = true;
  options.mutation.targets = {{"a", core::EmbedPosition::kHostHeader}};
  auto result =
      run_lint(grammar_of("a = \"x\"\n"), core::make_builtin_rules(), options);
  ASSERT_EQ(result.analyzers.size(), 3u);
  EXPECT_EQ(result.analyzers[2].name, "mutation");
  EXPECT_GT(result.mutation_stats.seeds, 0u);
}

}  // namespace
}  // namespace hdiff::analysis
