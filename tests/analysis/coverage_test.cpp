// Coverage plan: stable production/site ids, rank ordering, attribution
// cones, and the byte-class / witness serialization helpers — the static
// artifact the campaign checkpoint embeds must be a pure function of the
// grammar and roots.
#include "analysis/coverage.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "abnf/parser.h"

namespace hdiff::analysis {
namespace {

abnf::Grammar grammar_of(std::string_view text) {
  std::vector<std::string> errors;
  abnf::Grammar g = abnf::parse_rulelist(text, "fixture", &errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  return g;
}

// Two gap sites with different owners, depths, and leftmost-ness:
//   a: GL005 FIRST overlap on {'A','a'} (leftmost, depth 1)
//   b: GL006 terminal overlap on %x50-5A (not leftmost, depth 1)
// plus `c`, unreachable from `root`.
constexpr const char* kFixture =
    "root = a b\n"
    "a = \"ab\" / \"ac\"\n"
    "b = %x41-5A / %x50-60\n"
    "c = \"z\"\n";

TEST(CoveragePlan, ProductionsAreTheNameSortedReachableCone) {
  const auto plan = build_coverage_plan(grammar_of(kFixture), {"root"});
  ASSERT_EQ(plan.productions.size(), 3u);
  EXPECT_EQ(plan.productions[0].name, "a");
  EXPECT_EQ(plan.productions[1].name, "b");
  EXPECT_EQ(plan.productions[2].name, "root");
  EXPECT_EQ(plan.id_of("a"), 0u);
  EXPECT_EQ(plan.id_of("root"), 2u);
  EXPECT_EQ(plan.id_of("c"), CoveragePlan::npos);  // outside the cone
  EXPECT_EQ(plan.productions[2].depth, 0u);
  EXPECT_EQ(plan.productions[0].depth, 1u);
  EXPECT_TRUE(plan.enabled());
}

TEST(CoveragePlan, LeftmostClosureMarksFirstByteDeciders) {
  const auto plan = build_coverage_plan(grammar_of(kFixture), {"root"});
  EXPECT_TRUE(plan.productions[plan.id_of("root")].leftmost);
  EXPECT_TRUE(plan.productions[plan.id_of("a")].leftmost);
  // `b` is only reachable after `a` consumed at least one byte.
  EXPECT_FALSE(plan.productions[plan.id_of("b")].leftmost);
}

TEST(CoveragePlan, SitesAreRankSortedWithStableIds) {
  const auto plan = build_coverage_plan(grammar_of(kFixture), {"root"});
  ASSERT_EQ(plan.sites.size(), 2u);
  // b's terminal overlap is %x50-5A: 11 bytes x proximity 15 = 165.
  // a's FIRST overlap is {'A','a'}: 2 bytes x 15 x 2 (leftmost) = 60.
  EXPECT_EQ(plan.sites[0].rule, "b");
  EXPECT_EQ(plan.sites[0].kind, 'b');
  EXPECT_EQ(plan.sites[0].width, 11u);
  EXPECT_EQ(plan.sites[0].rank, 165u);
  EXPECT_EQ(plan.sites[1].rule, "a");
  EXPECT_EQ(plan.sites[1].kind, 'f');
  EXPECT_EQ(plan.sites[1].width, 2u);
  EXPECT_EQ(plan.sites[1].rank, 60u);
  for (std::size_t i = 0; i < plan.sites.size(); ++i) {
    EXPECT_EQ(plan.sites[i].id, i);
    EXPECT_EQ(plan.sites[i].rule,
              plan.productions[plan.sites[i].production].name);
  }
}

TEST(CoveragePlan, WitnessBytesAreTheLowestOverlapBytes) {
  const auto plan = build_coverage_plan(grammar_of(kFixture), {"root"});
  EXPECT_EQ(plan.sites[0].witness, "PQRS");  // first 4 of %x50-5A
  EXPECT_EQ(plan.sites[1].witness, "Aa");    // case-insensitive "a"
}

TEST(CoveragePlan, RelatedConeSpansAncestorsAndDescendants) {
  const auto plan = build_coverage_plan(grammar_of(kFixture), {"root"});
  // Both sites: owner + root (ancestor); neither rule has sub-rules.
  const auto& site_b = plan.sites[0];
  ASSERT_EQ(site_b.related.size(), 2u);
  EXPECT_EQ(site_b.related[0], plan.id_of("b"));
  EXPECT_EQ(site_b.related[1], plan.id_of("root"));

  // A deeper chain: the site owner is mid-tree, so the cone must include
  // the rules above it AND the subtree below the alternation.
  const auto deep = build_coverage_plan(
      grammar_of("top = mid\n"
                 "mid = sub \"x\" / \"pq\"\n"
                 "sub = \"p\" leaf\n"
                 "leaf = \"z\"\n"),
      {"top"});
  ASSERT_EQ(deep.sites.size(), 1u);  // mid: FIRST overlap on 'p'
  EXPECT_EQ(deep.sites[0].rule, "mid");
  std::vector<std::size_t> want = {deep.id_of("leaf"), deep.id_of("mid"),
                                   deep.id_of("sub"), deep.id_of("top")};
  std::sort(want.begin(), want.end());
  EXPECT_EQ(deep.sites[0].related, want);
}

TEST(CoveragePlan, PureFunctionOfGrammarAndRoots) {
  const auto a = build_coverage_plan(grammar_of(kFixture), {"root"});
  const auto b = build_coverage_plan(grammar_of(kFixture), {"root"});
  EXPECT_EQ(a.sig, b.sig);
  EXPECT_EQ(coverage_plan_sig(a), a.sig);

  // Different roots -> different cone -> different signature.
  const auto all = build_coverage_plan(grammar_of(kFixture), {});
  EXPECT_EQ(all.productions.size(), 4u);  // `c` joins as its own root
  EXPECT_NE(all.sig, a.sig);
}

TEST(CoveragePlan, UnknownRootsFallBackToEveryRule) {
  const auto plan = build_coverage_plan(grammar_of(kFixture), {"nope"});
  EXPECT_EQ(plan.productions.size(), 4u);
}

TEST(CoverageSerialization, ByteClassHexRoundTrips) {
  std::bitset<256> bits;
  bits.set('A');
  bits.set('a');
  bits.set(0);
  bits.set(255);
  const std::string hex = byte_class_hex(bits);
  ASSERT_EQ(hex.size(), 64u);
  std::bitset<256> back;
  ASSERT_TRUE(parse_byte_class_hex(hex, &back));
  EXPECT_EQ(back, bits);
}

TEST(CoverageSerialization, ParseRejectsMalformedHex) {
  std::bitset<256> out;
  EXPECT_FALSE(parse_byte_class_hex("abc", &out));              // short
  EXPECT_FALSE(parse_byte_class_hex(std::string(64, 'g'), &out));  // non-hex
  EXPECT_TRUE(parse_byte_class_hex(std::string(64, '0'), &out));
  EXPECT_TRUE(out.none());
}

TEST(CoverageSerialization, WitnessBytesCapAtFourLowest) {
  std::bitset<256> bits;
  for (char c : {'z', 'y', 'c', 'b', 'a', 'd'}) bits.set(c);
  EXPECT_EQ(witness_bytes(bits), "abcd");
  EXPECT_EQ(witness_bytes(bits, 2), "ab");
  EXPECT_EQ(witness_bytes(std::bitset<256>{}), "");
}

}  // namespace
}  // namespace hdiff::analysis
