// GrammarLint: every seeded defect class must fire its stable code, clean
// grammars must stay clean, and output must be schedule-independent.
#include "analysis/grammar_lint.h"

#include <gtest/gtest.h>

#include "abnf/parser.h"

namespace hdiff::analysis {
namespace {

abnf::Grammar grammar_of(std::string_view text) {
  std::vector<std::string> errors;
  abnf::Grammar g = abnf::parse_rulelist(text, "fixture", &errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  return g;
}

std::vector<Diagnostic> lint(std::string_view text,
                             GrammarLintOptions options = {}) {
  return lint_grammar(grammar_of(text), options);
}

bool has(const std::vector<Diagnostic>& diags, std::string_view code,
         std::string_view rule = {}) {
  for (const auto& d : diags) {
    if (d.code == code && (rule.empty() || d.rule == rule)) return true;
  }
  return false;
}

std::size_t count_code(const std::vector<Diagnostic>& diags,
                       std::string_view code) {
  std::size_t n = 0;
  for (const auto& d : diags) {
    if (d.code == code) ++n;
  }
  return n;
}

TEST(GrammarLint, EmptyGrammarIsClean) {
  abnf::Grammar empty;
  EXPECT_TRUE(lint_grammar(empty).empty());
}

TEST(GrammarLint, CleanGrammarHasNoFindings) {
  auto diags = lint(
      "msg = start *field\n"
      "start = \"GET\" \" \" target\n"
      "target = 1*%x61-7A\n"
      "field = \"x:\" 1*%x30-39\n",
      {{"msg"}, 1});
  EXPECT_TRUE(diags.empty()) << to_string(diags.front());
}

TEST(GrammarLint, DirectLeftRecursion) {
  auto diags = lint("a = a \"x\" / \"y\"\n");
  ASSERT_TRUE(has(diags, "GL001", "a"));
  for (const auto& d : diags) {
    if (d.code == "GL001") {
      EXPECT_EQ(d.severity, Severity::kError);
      EXPECT_EQ(d.span, "a -> a");
    }
  }
}

TEST(GrammarLint, SelfReferentialSingleRule) {
  // Degenerate `a = a`: exactly the shape the corpus adaptor produces for
  // prose aliases, and the smallest possible left recursion.
  auto diags = lint("a = a\n");
  EXPECT_TRUE(has(diags, "GL001", "a"));
}

TEST(GrammarLint, IndirectLeftRecursionReportsCycle) {
  auto diags = lint(
      "a = b \"q\"\n"
      "b = a \"x\" / \"z\"\n");
  EXPECT_TRUE(has(diags, "GL001", "a"));
  EXPECT_TRUE(has(diags, "GL001", "b"));
  for (const auto& d : diags) {
    if (d.code == "GL001" && d.rule == "a") {
      EXPECT_EQ(d.span, "a -> b -> a");
      EXPECT_NE(d.message.find("indirect"), std::string::npos);
    }
  }
}

TEST(GrammarLint, OptionWrappedRecursionIsStillLeftRecursion) {
  // The recursive reference sits inside [ ]: the nullable wrapper does not
  // save the rule, a parser can still loop without consuming input.
  auto diags = lint("a = [ a ] \"x\"\n");
  EXPECT_TRUE(has(diags, "GL001", "a"));
}

TEST(GrammarLint, NullablePrefixExposesLeftRecursion) {
  // `pad` derives "" so `a`'s reference to itself is effectively leftmost.
  auto diags = lint(
      "a = pad a \"x\" / \"y\"\n"
      "pad = *\" \"\n");
  EXPECT_TRUE(has(diags, "GL001", "a"));
}

TEST(GrammarLint, RightRecursionIsFine) {
  auto diags = lint("a = \"x\" a / \"y\"\n");
  EXPECT_FALSE(has(diags, "GL001"));
}

TEST(GrammarLint, UndefinedReference) {
  auto diags = lint("a = b \"x\"\n");
  ASSERT_TRUE(has(diags, "GL002", "a"));
  for (const auto& d : diags) {
    if (d.code == "GL002") {
      EXPECT_EQ(d.severity, Severity::kError);
      EXPECT_EQ(d.span, "b");
    }
  }
}

TEST(GrammarLint, UnboundedNullableRepetition) {
  auto diags = lint("a = *( *\"x\" )\n");
  EXPECT_TRUE(has(diags, "GL003", "a"));
  // The inner *"x" repeats a non-nullable element: only the outer loop is
  // degenerate.
  EXPECT_EQ(count_code(diags, "GL003"), 1u);
}

TEST(GrammarLint, BoundedRepetitionOfNullableIsFine) {
  auto diags = lint("a = 1*3( *\"x\" )\n");
  EXPECT_FALSE(has(diags, "GL003"));
}

TEST(GrammarLint, DuplicateAlternativeIsUnreachable) {
  auto diags = lint("a = \"x\" / \"x\"\n");
  ASSERT_TRUE(has(diags, "GL004", "a"));
}

TEST(GrammarLint, CaseInsensitiveCharValOverlap) {
  // ABNF literals are case-insensitive by default: "FOO" is the same
  // language as "foo", so the second branch can never be chosen.
  auto diags = lint("a = \"foo\" / \"FOO\"\n");
  EXPECT_TRUE(has(diags, "GL004", "a"));
}

TEST(GrammarLint, CaseSensitiveVariantsDoNotCollide) {
  auto diags = lint("a = %s\"foo\" / %s\"FOO\"\n");
  EXPECT_FALSE(has(diags, "GL004"));
}

TEST(GrammarLint, FirstSetOverlapIsInfo) {
  auto diags = lint("a = \"ab\" / \"ac\"\n");
  ASSERT_TRUE(has(diags, "GL005", "a"));
  for (const auto& d : diags) {
    if (d.code == "GL005") {
      EXPECT_EQ(d.severity, Severity::kInfo);
    }
  }
}

TEST(GrammarLint, FirstOverlapMessageCarriesConcreteWitness) {
  // The diagnostic must name the actual overlap byte class — the witness a
  // tester types to reach the ambiguity — not just that one exists.
  auto diags = lint("a = \"ab\" / \"ac\"\n");
  for (const auto& d : diags) {
    if (d.code != "GL005") continue;
    EXPECT_NE(d.message.find("overlap on 'A' 'a'"), std::string::npos)
        << d.message;
    EXPECT_NE(d.message.find("semantic-gap seed"), std::string::npos);
  }
}

TEST(GrammarLint, TerminalOverlapMessageCarriesByteRange) {
  auto diags = lint("a = %x41-5A / %x50-60\n");
  for (const auto& d : diags) {
    if (d.code != "GL006") continue;
    EXPECT_NE(d.message.find("overlap on 'P'-'Z'"), std::string::npos)
        << d.message;
  }
}

TEST(GrammarLint, NonPrintableWitnessRendersAsHex) {
  auto diags = lint("a = %x00-02 / %x01-03\n");
  for (const auto& d : diags) {
    if (d.code != "GL006") continue;
    EXPECT_NE(d.message.find("0x01-0x02"), std::string::npos) << d.message;
  }
}

TEST(GrammarLint, DisjointAlternativesAreClean) {
  auto diags = lint("a = \"bx\" / \"cy\"\n");
  EXPECT_FALSE(has(diags, "GL005"));
  EXPECT_FALSE(has(diags, "GL006"));
}

TEST(GrammarLint, NumValRangeOverlap) {
  auto diags = lint("a = %x41-5A / %x50-60\n");
  EXPECT_TRUE(has(diags, "GL006", "a"));
}

TEST(GrammarLint, CharValNumValOverlap) {
  // "a" (case-insensitive: 0x41 and 0x61) intersects %x41-5A.
  auto diags = lint("a = \"a\" / %x41-5A\n");
  EXPECT_TRUE(has(diags, "GL006", "a"));
}

TEST(GrammarLint, UnusedRuleIsInfo) {
  auto diags = lint(
      "a = b\n"
      "b = \"x\"\n");
  EXPECT_TRUE(has(diags, "GL007", "a"));  // nothing references the root
  EXPECT_FALSE(has(diags, "GL007", "b"));
}

TEST(GrammarLint, RootsControlReachability) {
  auto diags = lint(
      "a = b\n"
      "b = \"x\"\n"
      "c = \"y\"\n",
      {{"a"}, 1});
  EXPECT_FALSE(has(diags, "GL007", "a"));
  EXPECT_FALSE(has(diags, "GL007", "b"));
  EXPECT_TRUE(has(diags, "GL007", "c"));
}

TEST(GrammarLint, RepetitionBoundsInverted) {
  auto diags = lint("a = 3*2\"x\"\n");
  EXPECT_TRUE(has(diags, "GL008", "a"));
}

TEST(GrammarLint, NumValRangeInverted) {
  auto diags = lint("a = %x5A-41\n");
  EXPECT_TRUE(has(diags, "GL009", "a"));
}

TEST(GrammarLint, Facts) {
  auto g = grammar_of(
      "a = *\"x\" b\n"
      "b = \"yz\"\n");
  GrammarFacts facts = compute_grammar_facts(g);
  EXPECT_FALSE(facts.nullable.at("a"));
  EXPECT_FALSE(facts.nullable.at("b"));
  EXPECT_TRUE(facts.first.at("a").test('x'));
  EXPECT_TRUE(facts.first.at("a").test('y'));  // *"x" is nullable
  EXPECT_TRUE(facts.first.at("a").test('X'));  // case-insensitive literal
  EXPECT_FALSE(facts.first.at("b").test('z'));
}

TEST(GrammarLint, DiagnosticsIdenticalAcrossJobs) {
  // One grammar exercising several analyzers at once.
  const char* text =
      "root = a b c d e\n"
      "a = a \"x\" / \"y\"\n"
      "b = \"foo\" / \"FOO\"\n"
      "c = *( *\"p\" )\n"
      "d = %x41-5A / %x50-60\n"
      "e = missing\n"
      "orphan = \"q\"\n";
  auto base = lint(text, {{"root"}, 1});
  EXPECT_FALSE(base.empty());
  for (std::size_t jobs : {2u, 3u, 8u}) {
    auto shardy = lint(text, {{"root"}, jobs});
    ASSERT_EQ(base.size(), shardy.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(to_string(base[i]), to_string(shardy[i])) << "jobs=" << jobs;
    }
  }
}

}  // namespace
}  // namespace hdiff::analysis
