// MutationCoverage: operator blind spots (MC001), unperturbable targets
// (MC002), and underivable targets (MC003) against small fixture grammars.
#include "analysis/mutation_coverage.h"

#include <gtest/gtest.h>

#include "abnf/parser.h"

namespace hdiff::analysis {
namespace {

using core::AbnfTarget;
using core::EmbedPosition;

abnf::Grammar grammar_of(std::string_view text) {
  std::vector<std::string> errors;
  abnf::Grammar g = abnf::parse_rulelist(text, "fixture", &errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  return g;
}

bool has(const std::vector<Diagnostic>& diags, std::string_view code,
         std::string_view rule = {}) {
  for (const auto& d : diags) {
    if (d.code == code && (rule.empty() || d.rule == rule)) return true;
  }
  return false;
}

TEST(MutationCoverage, HostSeedCoversCoreOperators) {
  auto g = grammar_of("myhost = \"origin.example\"\n");
  MutationCoverageOptions options;
  options.targets = {{"myhost", EmbedPosition::kHostHeader}};
  auto result = analyze_mutation_coverage(g, options);
  EXPECT_GE(result.stats.seeds, 1u);
  EXPECT_GT(result.stats.mutants, 0u);
  EXPECT_GT(result.stats.sites_per_kind.at("repeat-header"), 0u);
  EXPECT_GT(result.stats.sites_per_kind.at("name-case"), 0u);
  EXPECT_FALSE(has(result.diagnostics, "MC002"));
  EXPECT_FALSE(has(result.diagnostics, "MC003"));
}

TEST(MutationCoverage, UnicodeInValueFiresOnRealSeeds) {
  // The historical MC001 blind spot is closed: mutate() now splices
  // multi-byte UTF-8 into the middle of a targeted header value, so the
  // operator has applicable sites on any host seed.
  auto g = grammar_of("myhost = \"h.example\"\n");
  MutationCoverageOptions options;
  options.targets = {{"myhost", EmbedPosition::kHostHeader}};
  auto result = analyze_mutation_coverage(g, options);
  EXPECT_FALSE(has(result.diagnostics, "MC001", "unicode-in-value"));
  EXPECT_GT(result.stats.sites_per_kind.at("unicode-in-value"), 0u);
}

TEST(MutationCoverage, OperatorWithZeroSitesIsMC001) {
  // With unicode payloads disabled the splice site (and the multi-byte
  // sc-* payloads) vanish, so kUnicodeInValue is zero-site again and the
  // MC001 machinery must flag it.
  auto g = grammar_of("myhost = \"h.example\"\n");
  MutationCoverageOptions options;
  options.targets = {{"myhost", EmbedPosition::kHostHeader}};
  options.mutation.include_unicode = false;
  auto result = analyze_mutation_coverage(g, options);
  ASSERT_TRUE(has(result.diagnostics, "MC001", "unicode-in-value"));
  for (const auto& d : result.diagnostics) {
    if (d.code == "MC001") {
      EXPECT_EQ(d.severity, Severity::kWarning);
      EXPECT_EQ(d.analyzer, "mutation");
    }
  }
  // The stats row still exists, pinned at zero.
  EXPECT_EQ(result.stats.sites_per_kind.at("unicode-in-value"), 0u);
}

TEST(MutationCoverage, AllKindsPreSeededInStats) {
  auto g = grammar_of("myhost = \"h\"\n");
  MutationCoverageOptions options;
  options.targets = {{"myhost", EmbedPosition::kHostHeader}};
  auto result = analyze_mutation_coverage(g, options);
  EXPECT_EQ(result.stats.sites_per_kind.size(),
            core::all_mutation_kinds().size());
}

TEST(MutationCoverage, UnperturbableTargetIsMC002) {
  // An empty-string version with no eligible headers: the canonical request
  // at kHttpVersion with value "" has no version token to mutate, and the
  // options restrict header mutation to a header the request lacks.
  auto g = grammar_of("nothing = \"\"\n");
  MutationCoverageOptions options;
  options.targets = {{"nothing", EmbedPosition::kHttpVersion}};
  options.mutation.target_headers = {"X-None"};
  auto result = analyze_mutation_coverage(g, options);
  ASSERT_TRUE(has(result.diagnostics, "MC002", "nothing"));
  EXPECT_EQ(result.stats.mutants_per_target.at("nothing@http-version"), 0u);
}

TEST(MutationCoverage, UnderivableTargetIsMC003) {
  auto g = grammar_of("myhost = \"h\"\n");
  MutationCoverageOptions options;
  options.targets = {{"no-such-rule", EmbedPosition::kRequestTarget}};
  auto result = analyze_mutation_coverage(g, options);
  ASSERT_TRUE(has(result.diagnostics, "MC003", "no-such-rule"));
  for (const auto& d : result.diagnostics) {
    if (d.code == "MC003") {
      EXPECT_EQ(d.severity, Severity::kInfo);
    }
  }
  EXPECT_EQ(result.stats.seeds, 0u);
}

TEST(MutationCoverage, DiagnosticsIdenticalAcrossJobs) {
  auto g = grammar_of(
      "myhost = \"a.example\" / \"b.example\"\n"
      "tok = \"x\"\n");
  MutationCoverageOptions options;
  options.targets = {{"myhost", EmbedPosition::kHostHeader},
                     {"tok", EmbedPosition::kMethod},
                     {"missing", EmbedPosition::kRequestTarget}};
  options.jobs = 1;
  auto base = analyze_mutation_coverage(g, options);
  options.jobs = 4;
  auto sharded = analyze_mutation_coverage(g, options);
  ASSERT_EQ(base.diagnostics.size(), sharded.diagnostics.size());
  for (std::size_t i = 0; i < base.diagnostics.size(); ++i) {
    EXPECT_EQ(to_string(base.diagnostics[i]), to_string(sharded.diagnostics[i]));
  }
  EXPECT_EQ(base.stats.seeds, sharded.stats.seeds);
  EXPECT_EQ(base.stats.mutants, sharded.stats.mutants);
  EXPECT_EQ(base.stats.sites_per_kind, sharded.stats.sites_per_kind);
  EXPECT_EQ(base.stats.mutants_per_target, sharded.stats.mutants_per_target);
}

}  // namespace
}  // namespace hdiff::analysis
