#include "net/poison.h"

#include <gtest/gtest.h>

#include "impls/products.h"

namespace hdiff::net {
namespace {

const std::string kVictim = "GET /?a=1 HTTP/1.1\r\nHost: h1.com\r\n\r\n";

TEST(ResponseCacheTest, PutGetClear) {
  ResponseCache cache;
  EXPECT_FALSE(cache.get("k"));
  cache.put("k", {400, "err"});
  auto entry = cache.get("k");
  ASSERT_TRUE(entry);
  EXPECT_EQ(entry->status, 400);
  cache.put("k", {200, "ok"});  // overwrite
  EXPECT_EQ(cache.get("k")->status, 200);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CpdosEndGame, NginxVersionRepairPoisonsIis) {
  auto nginx = impls::make_implementation("nginx");
  auto iis = impls::make_implementation("iis");
  // Attack: same resource, mangled version.  Victim: clean request.
  CpdosDemo demo = demonstrate_cpdos(
      *nginx, *iis, "GET /?a=1 1.1/HTTP\r\nHost: h1.com\r\n\r\n", kVictim);
  EXPECT_TRUE(demo.exploitable) << demo.narrative;
  EXPECT_GE(demo.poisoned_status, 400);
  EXPECT_EQ(demo.victim_direct_status, 200);
  EXPECT_EQ(demo.cache_key, "h1.com|/?a=1");
}

TEST(CpdosEndGame, AtsExpectForwardPoisonsLighttpd) {
  auto ats = impls::make_implementation("ats");
  auto lighttpd = impls::make_implementation("lighttpd");
  CpdosDemo demo = demonstrate_cpdos(
      *ats, *lighttpd,
      "GET /?a=1 HTTP/1.1\r\nHost: h1.com\r\nExpect: 100-continue\r\n\r\n",
      kVictim);
  EXPECT_TRUE(demo.exploitable) << demo.narrative;
  EXPECT_EQ(demo.poisoned_status, 417);
}

TEST(CpdosEndGame, ConformantFrontBlocksPoisoning) {
  // Apache rejects the mangled version itself: no forward, no poison.
  auto apache = impls::make_implementation("apache");
  auto iis = impls::make_implementation("iis");
  CpdosDemo demo = demonstrate_cpdos(
      *apache, *iis, "GET /?a=1 1.1/HTTP\r\nHost: h1.com\r\n\r\n", kVictim);
  EXPECT_FALSE(demo.exploitable);
  EXPECT_NE(demo.narrative.find("front-end rejects"), std::string::npos);
}

TEST(CpdosEndGame, AcceptingBackendIsNotPoisonable) {
  // Weblogic serves the mangled-version request — no error to cache.
  auto nginx = impls::make_implementation("nginx");
  auto weblogic = impls::make_implementation("weblogic");
  CpdosDemo demo = demonstrate_cpdos(
      *nginx, *weblogic, "GET /?a=1 1.1/HTTP\r\nHost: h1.com\r\n\r\n",
      kVictim);
  EXPECT_FALSE(demo.exploitable);
  EXPECT_NE(demo.narrative.find("nothing to poison"), std::string::npos);
}

std::string smuggle_attack() {
  std::string body = "0\r\n\r\nGET /evil HTTP/1.1\r\nHost: h1.com\r\n\r\n";
  return "POST /upload HTTP/1.1\r\nHost: h1.com\r\n"
         "Transfer-Encoding: \x0b" "chunked\r\n"
         "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
}

TEST(SmuggleEndGame, AtsTomcatHijacksVictimResponse) {
  auto ats = impls::make_implementation("ats");
  auto tomcat = impls::make_implementation("tomcat");
  SmuggleDemo demo =
      demonstrate_smuggling(*ats, *tomcat, smuggle_attack(), kVictim);
  EXPECT_TRUE(demo.exploitable) << demo.narrative;
  EXPECT_EQ(demo.smuggled_target, "/evil");
  EXPECT_EQ(demo.victim_target, "/?a=1");
  EXPECT_EQ(demo.victim_answered_for, "/evil");
}

TEST(SmuggleEndGame, StrictBackendBreaksTheChain) {
  auto ats = impls::make_implementation("ats");
  auto apache = impls::make_implementation("apache");
  SmuggleDemo demo =
      demonstrate_smuggling(*ats, *apache, smuggle_attack(), kVictim);
  EXPECT_FALSE(demo.exploitable) << demo.narrative;
}

TEST(SmuggleEndGame, ConformantFrontBreaksTheChain) {
  auto apache = impls::make_implementation("apache");
  auto tomcat = impls::make_implementation("tomcat");
  SmuggleDemo demo =
      demonstrate_smuggling(*apache, *tomcat, smuggle_attack(), kVictim);
  EXPECT_FALSE(demo.exploitable) << demo.narrative;
  EXPECT_NE(demo.narrative.find("front-end rejects"), std::string::npos);
}

TEST(SmuggleEndGame, FatGetAgainstWeblogic) {
  // The fat-GET remainder also displaces the victim's request.
  auto nginx = impls::make_implementation("nginx");
  auto weblogic = impls::make_implementation("weblogic");
  std::string fat =
      "GET /evil HTTP/1.1\r\nHost: h1.com\r\nContent-Length: 31\r\n\r\n"
      "GET /inner HTTP/1.1\r\nHost: h\r\n\r\n";
  SmuggleDemo demo = demonstrate_smuggling(*nginx, *weblogic, fat, kVictim);
  // Weblogic ignores the fat-GET body; those bytes lead the connection.
  EXPECT_TRUE(demo.exploitable) << demo.narrative;
}

}  // namespace
}  // namespace hdiff::net
