#include "net/chain.h"

#include <gtest/gtest.h>

#include "impls/products.h"

namespace hdiff::net {
namespace {

const std::string kPlainGet = "GET /?a=1 HTTP/1.1\r\nHost: h1.com\r\n\r\n";

TEST(Chain, FleetSplitsByRole) {
  auto fleet = impls::make_all_implementations();
  Chain chain = Chain::from_fleet(fleet);
  EXPECT_EQ(chain.proxies().size(), 6u);
  EXPECT_EQ(chain.backends().size(), 6u);
}

TEST(Chain, ObservationCoversAllStages) {
  auto fleet = impls::make_all_implementations();
  Chain chain = Chain::from_fleet(fleet);
  ChainObservation obs = chain.observe("t1", kPlainGet);
  EXPECT_EQ(obs.uuid, "t1");
  EXPECT_EQ(obs.proxies.size(), 6u);
  EXPECT_EQ(obs.direct.size(), 6u);
  // Every proxy forwards the canonical request, so replays exist for all
  // proxy×backend combinations.
  EXPECT_EQ(obs.replays.size(), 36u);
}

TEST(Chain, RejectingProxyProducesNoReplays) {
  auto fleet = impls::make_all_implementations();
  Chain chain = Chain::from_fleet(fleet);
  // Missing Host: apache/nginx/varnish/squid/ats reject; haproxy forwards.
  ChainObservation obs =
      chain.observe("t2", "GET / HTTP/1.1\r\n\r\n");
  std::size_t forwarded = 0;
  for (const auto& [name, v] : obs.proxies) {
    if (v.forwarded()) ++forwarded;
  }
  EXPECT_EQ(obs.replays.size(), forwarded * chain.backends().size());
}

TEST(Chain, EchoServerRecordsForwards) {
  auto fleet = impls::make_all_implementations();
  Chain chain = Chain::from_fleet(fleet);
  EchoServer echo;
  chain.observe("t3", kPlainGet, &echo);
  EXPECT_EQ(echo.log().size(), 6u);
  for (const auto& rec : echo.log()) {
    EXPECT_EQ(rec.uuid, "t3");
    EXPECT_NE(rec.raw.find("GET /?a=1"), std::string::npos);
  }
  echo.clear();
  EXPECT_TRUE(echo.log().empty());
}

TEST(Chain, PairKeyFormat) {
  EXPECT_EQ(pair_key("nginx", "iis"), "nginx->iis");
}

TEST(Chain, DistinctProxiesEachGetReplayEntries) {
  auto a = impls::make_implementation("apache");
  auto b = impls::make_implementation("nginx");
  auto backend = impls::make_implementation("tomcat");
  Chain chain({a.get(), b.get()}, {backend.get()});
  ChainObservation obs = chain.observe("t4", kPlainGet);
  ASSERT_EQ(obs.replays.size(), 2u);
  EXPECT_EQ(obs.replays.at("apache->tomcat").status, 200);
  EXPECT_EQ(obs.replays.at("nginx->tomcat").status, 200);
}

TEST(Chain, DedupeCanBeDisabled) {
  auto a = impls::make_implementation("apache");
  auto backend = impls::make_implementation("tomcat");
  ChainOptions options;
  options.dedupe_identical_forwards = false;
  Chain chain({a.get()}, {backend.get()}, options);
  ChainObservation obs = chain.observe("t5", kPlainGet);
  EXPECT_EQ(obs.replays.size(), 1u);
}

TEST(Chain, BoundedEchoServerDropsBeyondCapAndCountsExactly) {
  auto fleet = impls::make_all_implementations();
  Chain chain = Chain::from_fleet(fleet);
  EchoServer echo(4);  // six proxies forward kPlainGet; two must be dropped
  chain.observe("t6", kPlainGet, &echo);
  EXPECT_EQ(echo.max_records(), 4u);
  EXPECT_EQ(echo.log().size(), 4u);
  EXPECT_EQ(echo.dropped(), 2u);
  EXPECT_EQ(echo.offered(), 6u);

  echo.clear();  // clearing resets both the log and the drop counter
  EXPECT_TRUE(echo.log().empty());
  EXPECT_EQ(echo.dropped(), 0u);
  chain.observe("t7", kPlainGet, &echo);
  EXPECT_EQ(echo.log().size(), 4u);
  EXPECT_EQ(echo.dropped(), 2u);
}

TEST(Chain, VerdictCacheDoesNotChangeObservations) {
  auto fleet = impls::make_all_implementations();
  Chain chain = Chain::from_fleet(fleet);
  const std::string chunked =
      "POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\n\r\n";

  VerdictCache cache;
  for (const std::string& raw : {kPlainGet, chunked}) {
    ChainObservation plain = chain.observe("t8", raw);
    ChainObservation cached = chain.observe("t8", raw, nullptr, &cache);
    EXPECT_EQ(plain.proxies.size(), cached.proxies.size());
    ASSERT_EQ(plain.replays.size(), cached.replays.size());
    for (const auto& [key, verdict] : plain.replays) {
      EXPECT_EQ(verdict.status, cached.replays.at(key).status) << key;
      EXPECT_EQ(verdict.body, cached.replays.at(key).body) << key;
    }
    ASSERT_EQ(plain.relays.size(), cached.relays.size());
    for (const auto& [key, relay] : plain.relays) {
      EXPECT_EQ(relay.to_client, cached.relays.at(key).to_client) << key;
    }
  }
  // A repeat observation of an already-seen raw is served from the cache.
  const VerdictCache::Stats warm = cache.stats();
  chain.observe("t9", kPlainGet, nullptr, &cache);
  const VerdictCache::Stats after = cache.stats();
  EXPECT_GT(after.hits, warm.hits);
  EXPECT_EQ(after.misses, warm.misses);  // nothing new to compute
  EXPECT_GT(after.hit_rate(), 0.0);
}

TEST(Chain, ReplayUsesForwardedBytesNotOriginal) {
  // Varnish dechunks; the backend must see Content-Length framing.
  auto varnish = impls::make_implementation("varnish");
  auto apache = impls::make_implementation("apache");
  Chain chain({varnish.get()}, {apache.get()});
  ChainObservation obs = chain.observe(
      "t5",
      "POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\n\r\n");
  const auto& replay = obs.replays.at("varnish->apache");
  EXPECT_EQ(replay.framing, impls::BodyFraming::kContentLength);
  EXPECT_EQ(replay.body, "abc");
}

}  // namespace
}  // namespace hdiff::net
