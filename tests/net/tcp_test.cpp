// Live loopback-TCP chain integration tests.
#include "net/tcp.h"

#include <gtest/gtest.h>

#include "impls/products.h"

namespace hdiff::net {
namespace {

TEST(Tcp, ListenerBindsEphemeralPort) {
  TcpListener listener;
  EXPECT_GT(listener.port(), 0);
  TcpListener other;
  EXPECT_NE(listener.port(), other.port());
}

TEST(Tcp, RoundTripToUnboundPortFails) {
  // Port 1 on loopback is almost certainly closed; expect "".
  EXPECT_EQ(tcp_roundtrip(1, "GET / HTTP/1.1\r\n\r\n", 100), "");
}

TEST(Tcp, ModelServerAnswersOverSocket) {
  auto apache = impls::make_implementation("apache");
  ModelServer server(*apache);
  std::string response = tcp_roundtrip(
      server.port(), "GET /x HTTP/1.1\r\nHost: h1.com\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("X-HDiff-Impl: apache"), std::string::npos);
  EXPECT_NE(response.find("X-HDiff-Host: h1.com"), std::string::npos);
}

TEST(Tcp, ModelServerRejectsOverSocket) {
  auto apache = impls::make_implementation("apache");
  ModelServer server(*apache);
  std::string response =
      tcp_roundtrip(server.port(), "GET / HTTP/1.1\r\n\r\n");  // no Host
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);
}

TEST(Tcp, ModelServerHandlesSequentialConnections) {
  auto tomcat = impls::make_implementation("tomcat");
  ModelServer server(*tomcat);
  for (int i = 0; i < 3; ++i) {
    std::string response = tcp_roundtrip(
        server.port(), "GET / HTTP/1.1\r\nHost: h1.com\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << i;
  }
}

TEST(Tcp, LiveChainCleanRequest) {
  auto apache = impls::make_implementation("apache");
  auto squid = impls::make_implementation("squid");
  ModelServer origin(*apache);
  ModelProxy proxy(*squid, origin.port());
  std::string response = tcp_roundtrip(
      proxy.port(), "GET /p HTTP/1.1\r\nHost: h1.com\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("X-HDiff-Impl: apache"), std::string::npos);
}

TEST(Tcp, LiveChainProxyRejectsLocally) {
  auto apache = impls::make_implementation("apache");
  auto squid = impls::make_implementation("squid");
  ModelServer origin(*apache);
  ModelProxy proxy(*squid, origin.port());
  std::string response = tcp_roundtrip(
      proxy.port(), "POST / HTTP/1.1\r\nHost: h\r\nContent-Length : 5\r\n"
                    "\r\nAAAAA");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(response.find("X-HDiff-Impl: squid"), std::string::npos);
}

TEST(Tcp, LiveChainCpdosRepairBug) {
  // The nginx repair bug over real sockets: the proxy forwards the mangled
  // request line and the origin answers a cacheable 400.
  auto apache = impls::make_implementation("apache");
  auto nginx = impls::make_implementation("nginx");
  ModelServer origin(*apache);
  ModelProxy proxy(*nginx, origin.port());
  std::string response = tcp_roundtrip(
      proxy.port(), "GET /?a=b 1.1/HTTP\r\nHost: h1.com\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(response.find("X-HDiff-Impl: apache"), std::string::npos);
}

TEST(Tcp, LiveChainSmuggledRemainderVisible) {
  // ats -> tomcat \x0b-TE smuggle over real sockets: the origin's
  // X-HDiff-Leftover header exposes the smuggled byte count.
  auto tomcat = impls::make_implementation("tomcat");
  auto ats = impls::make_implementation("ats");
  ModelServer origin(*tomcat);
  ModelProxy proxy(*ats, origin.port());
  std::string body = "0\r\n\r\nGET /evil HTTP/1.1\r\nHost: h\r\n\r\n";
  std::string request =
      "POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: \x0b" "chunked\r\n"
      "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
  std::string response = tcp_roundtrip(proxy.port(), request);
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("X-HDiff-Leftover: 31"), std::string::npos);
}

}  // namespace
}  // namespace hdiff::net
