// Live loopback-TCP chain integration tests, including the structured
// ChainError classification of every harness-fault path.
#include "net/tcp.h"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "impls/products.h"
#include "net/fault.h"

namespace hdiff::net {
namespace {

TEST(Tcp, ListenerBindsEphemeralPort) {
  TcpListener listener;
  EXPECT_GT(listener.port(), 0);
  TcpListener other;
  EXPECT_NE(listener.port(), other.port());
}

TEST(Tcp, ConnectFailureIsClassifiedNotEmpty) {
  // Port 1 on loopback is almost certainly closed: the failure must surface
  // as kConnectFail, not masquerade as an empty response.
  TcpResult result = tcp_roundtrip(1, "GET / HTTP/1.1\r\n\r\n", 100);
  EXPECT_EQ(result.error, ChainError::kConnectFail);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.bytes.empty());
}

TEST(Tcp, ModelServerAnswersOverSocket) {
  auto apache = impls::make_implementation("apache");
  ModelServer server(*apache);
  TcpResult result = tcp_roundtrip(
      server.port(), "GET /x HTTP/1.1\r\nHost: h1.com\r\n\r\n");
  ASSERT_TRUE(result.ok()) << to_string(result.error);
  EXPECT_NE(result.bytes.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(result.bytes.find("X-HDiff-Impl: apache"), std::string::npos);
  EXPECT_NE(result.bytes.find("X-HDiff-Host: h1.com"), std::string::npos);
}

TEST(Tcp, ModelServerRejectsOverSocket) {
  auto apache = impls::make_implementation("apache");
  ModelServer server(*apache);
  TcpResult result =
      tcp_roundtrip(server.port(), "GET / HTTP/1.1\r\n\r\n");  // no Host
  ASSERT_TRUE(result.ok()) << to_string(result.error);
  EXPECT_NE(result.bytes.find("HTTP/1.1 400"), std::string::npos);
}

TEST(Tcp, ModelServerHandlesSequentialConnections) {
  auto tomcat = impls::make_implementation("tomcat");
  ModelServer server(*tomcat);
  for (int i = 0; i < 3; ++i) {
    TcpResult result = tcp_roundtrip(
        server.port(), "GET / HTTP/1.1\r\nHost: h1.com\r\n\r\n");
    ASSERT_TRUE(result.ok()) << i;
    EXPECT_NE(result.bytes.find("HTTP/1.1 200"), std::string::npos) << i;
  }
}

TEST(Tcp, LiveChainCleanRequest) {
  auto apache = impls::make_implementation("apache");
  auto squid = impls::make_implementation("squid");
  ModelServer origin(*apache);
  ModelProxy proxy(*squid, origin.port());
  TcpResult result = tcp_roundtrip(
      proxy.port(), "GET /p HTTP/1.1\r\nHost: h1.com\r\n\r\n");
  ASSERT_TRUE(result.ok()) << to_string(result.error);
  EXPECT_NE(result.bytes.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(result.bytes.find("X-HDiff-Impl: apache"), std::string::npos);
}

TEST(Tcp, LiveChainProxyRejectsLocally) {
  auto apache = impls::make_implementation("apache");
  auto squid = impls::make_implementation("squid");
  ModelServer origin(*apache);
  ModelProxy proxy(*squid, origin.port());
  TcpResult result = tcp_roundtrip(
      proxy.port(), "POST / HTTP/1.1\r\nHost: h\r\nContent-Length : 5\r\n"
                    "\r\nAAAAA");
  ASSERT_TRUE(result.ok()) << to_string(result.error);
  EXPECT_NE(result.bytes.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(result.bytes.find("X-HDiff-Impl: squid"), std::string::npos);
}

TEST(Tcp, LiveChainCpdosRepairBug) {
  // The nginx repair bug over real sockets: the proxy forwards the mangled
  // request line and the origin answers a cacheable 400.
  auto apache = impls::make_implementation("apache");
  auto nginx = impls::make_implementation("nginx");
  ModelServer origin(*apache);
  ModelProxy proxy(*nginx, origin.port());
  TcpResult result = tcp_roundtrip(
      proxy.port(), "GET /?a=b 1.1/HTTP\r\nHost: h1.com\r\n\r\n");
  ASSERT_TRUE(result.ok()) << to_string(result.error);
  EXPECT_NE(result.bytes.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(result.bytes.find("X-HDiff-Impl: apache"), std::string::npos);
}

TEST(Tcp, LiveChainSmuggledRemainderVisible) {
  // ats -> tomcat \x0b-TE smuggle over real sockets: the origin's
  // X-HDiff-Leftover header exposes the smuggled byte count.
  auto tomcat = impls::make_implementation("tomcat");
  auto ats = impls::make_implementation("ats");
  ModelServer origin(*tomcat);
  ModelProxy proxy(*ats, origin.port());
  std::string body = "0\r\n\r\nGET /evil HTTP/1.1\r\nHost: h\r\n\r\n";
  std::string request =
      "POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: \x0b" "chunked\r\n"
      "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
  TcpResult result = tcp_roundtrip(proxy.port(), request);
  ASSERT_TRUE(result.ok()) << to_string(result.error);
  EXPECT_NE(result.bytes.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(result.bytes.find("X-HDiff-Leftover: 31"), std::string::npos);
}

// ---- ChainError classification of the fault paths -------------------------

TEST(Tcp, SilentPeerClassifiedAsTimeout) {
  // Idle-timeout truncation with zero bytes: the peer accepts and never
  // answers.
  TcpListener listener;
  std::atomic<bool> done{false};
  std::thread holder([&] {
    int conn = listener.accept_connection();
    while (!done) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (conn >= 0) ::close(conn);
  });
  TcpResult result =
      tcp_roundtrip(listener.port(), "GET / HTTP/1.1\r\nHost: h\r\n\r\n", 100);
  EXPECT_EQ(result.error, ChainError::kTimeout);
  EXPECT_TRUE(result.bytes.empty());
  done = true;
  holder.join();
}

TEST(Tcp, StalledMidResponseClassifiedAsTimeout) {
  // Idle-timeout truncation with a partial response on the wire.
  TcpListener listener;
  std::atomic<bool> done{false};
  std::thread server([&] {
    int conn = listener.accept_connection();
    if (conn < 0) return;
    char buf[1024];
    (void)::recv(conn, buf, sizeof buf, 0);
    const char kPartial[] =
        "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc";
    (void)::send(conn, kPartial, sizeof kPartial - 1, MSG_NOSIGNAL);
    while (!done) {  // stall: never send the remaining 7 body bytes
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ::close(conn);
  });
  TcpResult result =
      tcp_roundtrip(listener.port(), "GET / HTTP/1.1\r\nHost: h\r\n\r\n", 100);
  EXPECT_EQ(result.error, ChainError::kTimeout);
  EXPECT_NE(result.bytes.find("abc"), std::string::npos);
  done = true;
  server.join();
}

TEST(Tcp, PeerCloseMidBodyClassifiedAsTruncated) {
  TcpListener listener;
  std::thread server([&] {
    int conn = listener.accept_connection();
    if (conn < 0) return;
    char buf[1024];
    (void)::recv(conn, buf, sizeof buf, 0);
    const char kPartial[] =
        "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc";
    (void)::send(conn, kPartial, sizeof kPartial - 1, MSG_NOSIGNAL);
    ::shutdown(conn, SHUT_WR);  // orderly close with 7 body bytes missing
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ::close(conn);
  });
  TcpResult result =
      tcp_roundtrip(listener.port(), "GET / HTTP/1.1\r\nHost: h\r\n\r\n", 500);
  EXPECT_EQ(result.error, ChainError::kTruncated);
  EXPECT_NE(result.bytes.find("abc"), std::string::npos);
  server.join();
}

TEST(Tcp, PeerCloseBeforeResponseClassifiedAsReset) {
  TcpListener listener;
  std::thread server([&] {
    int conn = listener.accept_connection();
    if (conn >= 0) {
      ::shutdown(conn, SHUT_RDWR);
      ::close(conn);
    }
  });
  TcpResult result =
      tcp_roundtrip(listener.port(), "GET / HTTP/1.1\r\nHost: h\r\n\r\n", 500);
  EXPECT_EQ(result.error, ChainError::kReset);
  EXPECT_TRUE(result.bytes.empty());
  server.join();
}

TEST(Tcp, NonHttpBytesClassifiedAsMalformed) {
  TcpListener listener;
  std::thread server([&] {
    int conn = listener.accept_connection();
    if (conn < 0) return;
    char buf[1024];
    (void)::recv(conn, buf, sizeof buf, 0);
    const char kGarbage[] = "SMTP ready\r\n\r\n";
    (void)::send(conn, kGarbage, sizeof kGarbage - 1, MSG_NOSIGNAL);
    ::shutdown(conn, SHUT_RDWR);
    ::close(conn);
  });
  TcpResult result =
      tcp_roundtrip(listener.port(), "GET / HTTP/1.1\r\nHost: h\r\n\r\n", 500);
  EXPECT_EQ(result.error, ChainError::kMalformed);
  server.join();
}

TEST(Tcp, ProxyReportsBackendConnectFailureAsGatewayError) {
  // Proxy -> backend connect failure: the proxy degrades to a 502 carrying
  // the structured classification — not a phantom empty verdict.
  auto squid = impls::make_implementation("squid");
  ModelProxy proxy(*squid, /*backend_port=*/1);
  TcpResult result = tcp_roundtrip(
      proxy.port(), "GET / HTTP/1.1\r\nHost: h1.com\r\n\r\n");
  ASSERT_TRUE(result.ok()) << to_string(result.error);
  EXPECT_NE(result.bytes.find("HTTP/1.1 502"), std::string::npos);
  EXPECT_NE(result.bytes.find("X-HDiff-Chain-Error: connect-fail"),
            std::string::npos);
}

// ---- fixed-port bind (the serve daemon's control-plane listener) ----------

TEST(Tcp, FixedPortBindReusesAReleasedPort) {
  std::uint16_t port = 0;
  {
    TcpListener first;
    port = first.port();
  }
  // SO_REUSEADDR must let a restarting daemon rebind its old port even
  // while kernel state from the previous listener lingers.
  TcpListener second(port);
  EXPECT_EQ(second.port(), port);
}

TEST(Tcp, FixedPortConflictIsChainFaultNotAbort) {
  TcpListener holder;
  RetryPolicy retry;
  retry.attempts = 3;
  retry.backoff_base_ms = 0;
  retry.backoff_max_ms = 0;
  try {
    TcpListener conflict(holder.port(), retry);
    FAIL() << "bound a port another listener holds";
  } catch (const ChainFault& fault) {
    // Classified like any transport failure, so daemon callers report a
    // structured error instead of crashing.
    EXPECT_EQ(fault.error(), ChainError::kConnectFail);
    EXPECT_NE(std::string(fault.what()).find("3 attempt"),
              std::string::npos)
        << fault.what();
  }
}

TEST(Tcp, FixedPortRetrySucceedsOnceTheHolderReleases) {
  auto holder = std::make_unique<TcpListener>();
  const std::uint16_t port = holder->port();
  RetryPolicy retry;
  retry.attempts = 50;
  retry.backoff_base_ms = 8;
  retry.backoff_max_ms = 16;
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    holder.reset();  // the dying predecessor finally lets go
  });
  TcpListener taker(port, retry);
  releaser.join();
  EXPECT_EQ(taker.port(), port);
}

// ---- retry policy ---------------------------------------------------------

TEST(Tcp, BackoffIsDeterministicBoundedAndGrowing) {
  RetryPolicy retry;
  retry.backoff_base_ms = 4;
  retry.backoff_max_ms = 64;
  const int first = retry.backoff_ms(0, "case-bytes");
  EXPECT_EQ(first, retry.backoff_ms(0, "case-bytes"));  // deterministic
  EXPECT_GE(first, retry.backoff_base_ms / 2);
  EXPECT_LE(first, retry.backoff_base_ms);
  for (int attempt = 0; attempt < 12; ++attempt) {
    const int delay = retry.backoff_ms(attempt, "case-bytes");
    EXPECT_GE(delay, 0);
    EXPECT_LE(delay, retry.backoff_max_ms);
  }
  // Different keys jitter differently at high attempt counts (usually).
  EXPECT_EQ(retry.backoff_ms(5, "a"), retry.backoff_ms(5, "a"));
}

TEST(Tcp, RetryRecoversAfterTransientReset) {
  // First connection is reset; the second is served properly.  The retry
  // wrapper must come back with the good response.
  TcpListener listener;
  std::thread server([&] {
    int first = listener.accept_connection();
    if (first >= 0) {
      ::shutdown(first, SHUT_RDWR);  // transient fault
      ::close(first);
    }
    int second = listener.accept_connection();
    if (second < 0) return;
    char buf[1024];
    (void)::recv(second, buf, sizeof buf, 0);
    const char kOk[] = "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
    (void)::send(second, kOk, sizeof kOk - 1, MSG_NOSIGNAL);
    ::shutdown(second, SHUT_RDWR);
    ::close(second);
  });
  RetryPolicy retry;
  retry.attempts = 3;
  retry.backoff_base_ms = 1;
  TcpResult result = tcp_roundtrip_retry(
      listener.port(), "GET / HTTP/1.1\r\nHost: h\r\n\r\n", retry, 500);
  EXPECT_TRUE(result.ok()) << to_string(result.error);
  EXPECT_NE(result.bytes.find("HTTP/1.1 200"), std::string::npos);
  server.join();
}

TEST(Tcp, FaultInjectedModelServerSurvivesAndResets) {
  // A fault-injected model crashes the *connection*, never the serving
  // thread: every round trip is classified as a fault, and the server keeps
  // accepting.
  auto apache = impls::make_implementation("apache");
  FaultPlanConfig config;
  config.every_nth = 1;  // every model call faults
  config.kinds = {FaultKind::kReset};
  auto plan = std::make_shared<FaultPlan>(config);
  FaultyImplementation faulty(*apache, plan);
  ModelServer server(faulty);
  for (int i = 0; i < 3; ++i) {
    TcpResult result = tcp_roundtrip(
        server.port(), "GET / HTTP/1.1\r\nHost: h1.com\r\n\r\n", 300);
    EXPECT_FALSE(result.ok()) << i;
    EXPECT_TRUE(result.bytes.empty()) << i;
  }
  EXPECT_GT(plan->stats().injected, 0u);
}

}  // namespace
}  // namespace hdiff::net
