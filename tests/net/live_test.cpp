// net::LiveFleet + verdict_from_wire: live-socket observations must project
// the model verdicts faithfully and be byte-identical between the blocking
// transport and the event loop.
#include "net/live.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "impls/products.h"
#include "net/tcp.h"

namespace hdiff::net {
namespace {

TEST(VerdictFromWire, ParsesEchoHeaders) {
  const std::string wire =
      "HTTP/1.1 200 OK\r\n"
      "X-HDiff-Impl: apache\r\n"
      "X-HDiff-Host: h1.com\r\n"
      "X-HDiff-Framing: content-length\r\n"
      "X-HDiff-Leftover: 4\r\n"
      "Content-Length: 5\r\n"
      "Connection: close\r\n\r\n"
      "hello";
  const impls::ServerVerdict v = verdict_from_wire(wire);
  EXPECT_EQ(v.impl, "apache");
  EXPECT_EQ(v.status, 200);
  EXPECT_FALSE(v.incomplete);
  EXPECT_EQ(v.framing, impls::BodyFraming::kContentLength);
  EXPECT_EQ(v.host, "h1.com");
  EXPECT_EQ(v.body, "hello");
  EXPECT_EQ(v.leftover.size(), 4u);  // only the length survives the wire
  EXPECT_TRUE(v.close_connection);
  EXPECT_TRUE(v.accepted());
}

TEST(VerdictFromWire, MapsSentinelsBack) {
  const std::string wire =
      "HTTP/1.1 408 Error\r\n"
      "X-HDiff-Impl: nginx\r\n"
      "X-HDiff-Host: -\r\n"
      "X-HDiff-Framing: n/a\r\n"
      "X-HDiff-Leftover: 0\r\n"
      "Content-Length: 0\r\n"
      "Connection: close\r\n\r\n";
  const impls::ServerVerdict v = verdict_from_wire(wire);
  EXPECT_EQ(v.status, 408);
  EXPECT_TRUE(v.incomplete);          // 408 is the incomplete sentinel
  EXPECT_TRUE(v.host.empty());        // "-" means no host
  EXPECT_EQ(v.framing, impls::BodyFraming::kNotApplicable);
  EXPECT_TRUE(v.leftover.empty());
  EXPECT_TRUE(v.body.empty());
}

TEST(VerdictFromWire, AllFramingStringsRoundTrip) {
  for (impls::BodyFraming f :
       {impls::BodyFraming::kNone, impls::BodyFraming::kContentLength,
        impls::BodyFraming::kChunked, impls::BodyFraming::kUntilClose,
        impls::BodyFraming::kNotApplicable}) {
    const std::string wire = "HTTP/1.1 200 OK\r\nX-HDiff-Framing: " +
                             std::string(impls::to_string(f)) +
                             "\r\nContent-Length: 0\r\n\r\n";
    EXPECT_EQ(verdict_from_wire(wire).framing, f) << impls::to_string(f);
  }
}

std::vector<const impls::HttpImplementation*> backend_ptrs(
    const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet) {
  std::vector<const impls::HttpImplementation*> out;
  for (const auto& impl : fleet) {
    if (impl->is_server()) out.push_back(impl.get());
  }
  return out;
}

// The live observation must carry, per backend, the same verdict the model
// produces in-process — restricted to the fields that survive the wire.
TEST(LiveFleet, ObservationMatchesInProcessVerdicts) {
  auto fleet = impls::make_all_implementations();
  const auto backends = backend_ptrs(fleet);
  ASSERT_GE(backends.size(), 2u);
  LiveFleetConfig config;
  config.mode = NetLoopMode::kOff;
  LiveFleet live(backends, config);

  const std::string raw =
      "POST /p HTTP/1.1\r\nHost: h1.com\r\nContent-Length: 5\r\n\r\nhelloX";
  const ChainObservation obs = live.observe("case-1", raw);
  ASSERT_FALSE(obs.faulted()) << obs.fault_detail;
  EXPECT_EQ(obs.uuid, "case-1");
  ASSERT_EQ(obs.direct.size(), backends.size());
  for (const impls::HttpImplementation* backend : backends) {
    const auto it = obs.direct.find(std::string(backend->name()));
    ASSERT_NE(it, obs.direct.end()) << backend->name();
    const impls::ServerVerdict want = backend->parse_request(raw);
    const impls::ServerVerdict& got = it->second;
    EXPECT_EQ(got.impl, want.impl);
    EXPECT_EQ(got.incomplete, want.incomplete);
    if (!want.incomplete) {
      EXPECT_EQ(got.status, want.status);
    }
    EXPECT_EQ(got.framing, want.framing);
    EXPECT_EQ(got.host, want.host);
    EXPECT_EQ(got.body, want.body);
    EXPECT_EQ(got.leftover.size(), want.leftover.size());
  }
}

// Core identity gate: blocking transport and event loop (epoll and poll)
// produce field-identical observations for the same corpus.
TEST(LiveFleet, BlockingAndEventLoopObservationsIdentical) {
  auto fleet = impls::make_all_implementations();
  const auto backends = backend_ptrs(fleet);
  const std::vector<std::string> corpus = {
      "GET /x HTTP/1.1\r\nHost: h1.com\r\n\r\n",
      "GET / HTTP/1.1\r\n\r\n",
      "POST / HTTP/1.1\r\nHost: h1.com\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n0\r\n\r\nGET /smuggled HTTP/1.1\r\n\r\n",
      "POST / HTTP/1.1\r\nHost: h1.com\r\nContent-Length: 5\r\n"
      "Transfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
  };
  std::vector<LiveCase> cases;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    cases.push_back(LiveCase{"case", corpus[i]});
  }

  const auto run = [&](NetLoopMode mode, bool force_poll) {
    LiveFleetConfig config;
    config.mode = mode;
    config.force_poll = force_poll;
    LiveFleet live(backends, config);
    EXPECT_EQ(live.loop_enabled(), mode == NetLoopMode::kOn);
    return live.observe_batch(cases);
  };
  const std::vector<ChainObservation> off = run(NetLoopMode::kOff, false);
  const std::vector<ChainObservation> epoll = run(NetLoopMode::kOn, false);
  const std::vector<ChainObservation> poll = run(NetLoopMode::kOn, true);

  const auto expect_same = [&](const std::vector<ChainObservation>& a,
                               const std::vector<ChainObservation>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      SCOPED_TRACE("case " + std::to_string(i));
      EXPECT_EQ(a[i].fault, b[i].fault);
      ASSERT_EQ(a[i].direct.size(), b[i].direct.size());
      for (const auto& [name, va] : a[i].direct) {
        const auto it = b[i].direct.find(name);
        ASSERT_NE(it, b[i].direct.end()) << name;
        const impls::ServerVerdict& vb = it->second;
        EXPECT_EQ(va.impl, vb.impl) << name;
        EXPECT_EQ(va.status, vb.status) << name;
        EXPECT_EQ(va.incomplete, vb.incomplete) << name;
        EXPECT_EQ(va.framing, vb.framing) << name;
        EXPECT_EQ(va.host, vb.host) << name;
        EXPECT_EQ(va.body, vb.body) << name;
        EXPECT_EQ(va.leftover, vb.leftover) << name;
        EXPECT_EQ(va.close_connection, vb.close_connection) << name;
      }
    }
  };
  expect_same(off, epoll);
  expect_same(off, poll);
}

TEST(LiveFleet, ExposesBackendPorts) {
  auto fleet = impls::make_all_implementations();
  const auto backends = backend_ptrs(fleet);
  LiveFleetConfig config;
  config.mode = NetLoopMode::kOff;
  LiveFleet live(backends, config);
  for (std::size_t i = 0; i < backends.size(); ++i) {
    EXPECT_GT(live.port(i), 0) << i;
  }
  EXPECT_EQ(live.port(backends.size()), 0);  // out of range
}

}  // namespace
}  // namespace hdiff::net
