// FaultPlan / FaultyImplementation / Chain fault-channel tests.
#include "net/fault.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "impls/products.h"
#include "net/chain.h"

namespace hdiff::net {
namespace {

const std::string kPlainGet = "GET /?a=1 HTTP/1.1\r\nHost: h1.com\r\n\r\n";

std::vector<std::unique_ptr<impls::HttpImplementation>> two_impl_fleet() {
  std::vector<std::unique_ptr<impls::HttpImplementation>> fleet;
  fleet.push_back(impls::make_implementation("squid"));
  fleet.push_back(impls::make_implementation("apache"));
  return fleet;
}

TEST(FaultPlan, DecisionsAreDeterministicAcrossInstances) {
  FaultPlanConfig config;
  config.seed = 42;
  config.rate = 0.5;
  config.max_faults_per_site = 0;  // persistent: decisions depend only on site
  FaultPlan a(config);
  FaultPlan b(config);
  const char* ops[] = {"parse", "forward", "respond", "relay"};
  const char* impls[] = {"squid", "apache", "nginx"};
  int victims = 0;
  for (const char* op : ops) {
    for (const char* impl : impls) {
      for (int i = 0; i < 8; ++i) {
        std::string bytes = kPlainGet + std::to_string(i);
        auto da = a.decide(op, impl, bytes);
        auto db = b.decide(op, impl, bytes);
        EXPECT_EQ(da.has_value(), db.has_value());
        if (da && db) {
          EXPECT_EQ(*da, *db);
        }
        EXPECT_EQ(da.has_value(), a.is_victim_site(op, impl, bytes));
        victims += da.has_value();
      }
    }
  }
  EXPECT_GT(victims, 0);                             // rate=0.5 selects some...
  EXPECT_LT(victims, 4 * 3 * 8);                     // ...but not all
  EXPECT_EQ(a.stats().calls, 4u * 3u * 8u);
  EXPECT_EQ(a.stats().injected, static_cast<std::size_t>(victims));
}

TEST(FaultPlan, SeedChangesVictimSet) {
  FaultPlanConfig config;
  config.rate = 0.5;
  config.seed = 1;
  FaultPlan a(config);
  config.seed = 2;
  FaultPlan b(config);
  int differs = 0;
  for (int i = 0; i < 64; ++i) {
    std::string bytes = "req" + std::to_string(i);
    differs += a.is_victim_site("parse", "apache", bytes) !=
               b.is_victim_site("parse", "apache", bytes);
  }
  EXPECT_GT(differs, 0);
}

TEST(FaultPlan, VictimSiteRecoversAfterBudget) {
  FaultPlanConfig config;
  config.rate = 1.0;  // every site is a victim
  config.max_faults_per_site = 2;
  FaultPlan plan(config);
  EXPECT_TRUE(plan.decide("parse", "apache", kPlainGet).has_value());
  EXPECT_TRUE(plan.decide("parse", "apache", kPlainGet).has_value());
  // Budget spent: the site now behaves normally forever.
  EXPECT_FALSE(plan.decide("parse", "apache", kPlainGet).has_value());
  EXPECT_FALSE(plan.decide("parse", "apache", kPlainGet).has_value());
  // Distinct site, fresh budget.
  EXPECT_TRUE(plan.decide("respond", "apache", kPlainGet).has_value());
  EXPECT_EQ(plan.stats().injected, 3u);
}

TEST(FaultPlan, EveryNthCyclesThroughKinds) {
  FaultPlanConfig config;
  config.every_nth = 2;
  config.kinds = {FaultKind::kReset, FaultKind::kConnectFail};
  FaultPlan plan(config);
  std::vector<std::optional<FaultKind>> seen;
  for (int i = 0; i < 8; ++i) {
    seen.push_back(plan.decide("parse", "apache", std::to_string(i)));
  }
  // Calls 2, 4, 6, 8 fault (1-indexed every-2nd), kinds cycling.
  EXPECT_FALSE(seen[0].has_value());
  ASSERT_TRUE(seen[1].has_value());
  EXPECT_FALSE(seen[2].has_value());
  ASSERT_TRUE(seen[3].has_value());
  ASSERT_TRUE(seen[5].has_value());
  ASSERT_TRUE(seen[7].has_value());
  EXPECT_NE(*seen[1], *seen[3]);  // cycles through the kind list
  EXPECT_EQ(*seen[1], *seen[5]);
}

TEST(FaultyImplementation, ZeroRatePassesThroughVerbatim) {
  auto apache = impls::make_implementation("apache");
  auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{});  // rate 0
  FaultyImplementation faulty(*apache, plan);
  EXPECT_EQ(faulty.name(), apache->name());
  EXPECT_EQ(faulty.is_server(), apache->is_server());
  impls::ServerVerdict direct = apache->parse_request(kPlainGet);
  impls::ServerVerdict wrapped = faulty.parse_request(kPlainGet);
  EXPECT_EQ(wrapped.accepted(), direct.accepted());
  EXPECT_EQ(wrapped.status, direct.status);
  EXPECT_EQ(faulty.respond(kPlainGet), apache->respond(kPlainGet));
  EXPECT_GT(plan->stats().calls, 0u);
  EXPECT_EQ(plan->stats().injected, 0u);
}

TEST(FaultyImplementation, ThrowsMappedChainFault) {
  auto apache = impls::make_implementation("apache");
  const struct {
    FaultKind kind;
    ChainError expected;
  } kMap[] = {
      {FaultKind::kReset, ChainError::kReset},
      {FaultKind::kTruncate, ChainError::kTruncated},
      {FaultKind::kConnectFail, ChainError::kConnectFail},
      {FaultKind::kStall, ChainError::kTimeout},
  };
  for (const auto& m : kMap) {
    FaultPlanConfig config;
    config.every_nth = 1;
    config.kinds = {m.kind};
    config.delay_ms = 0;
    FaultyImplementation faulty(*apache,
                                std::make_shared<FaultPlan>(config));
    try {
      (void)faulty.parse_request(kPlainGet);
      FAIL() << "expected ChainFault for " << to_string(m.kind);
    } catch (const ChainFault& fault) {
      EXPECT_EQ(fault.error(), m.expected) << to_string(m.kind);
      EXPECT_NE(std::string(fault.what()).find("parse"), std::string::npos);
    }
  }
}

TEST(FaultyImplementation, DelayFaultAnswersNormally) {
  auto apache = impls::make_implementation("apache");
  FaultPlanConfig config;
  config.every_nth = 1;
  config.kinds = {FaultKind::kDelay};
  config.delay_ms = 0;
  auto plan = std::make_shared<FaultPlan>(config);
  FaultyImplementation faulty(*apache, plan);
  EXPECT_EQ(faulty.respond(kPlainGet), apache->respond(kPlainGet));
  EXPECT_EQ(plan->stats().injected, 1u);
}

TEST(Chain, FaultedObservationIsStructuredAndEchoFree) {
  auto fleet = two_impl_fleet();
  FaultPlanConfig config;
  config.every_nth = 1;  // first model call faults
  config.kinds = {FaultKind::kReset};
  auto plan = std::make_shared<FaultPlan>(config);
  auto faulty_fleet = wrap_fleet_with_faults(fleet, plan);
  Chain chain = Chain::from_fleet(faulty_fleet);
  EchoServer echo;
  ChainObservation obs = chain.observe("f1", kPlainGet, &echo);
  EXPECT_TRUE(obs.faulted());
  EXPECT_EQ(obs.fault, ChainError::kReset);
  EXPECT_FALSE(obs.fault_detail.empty());
  // No half-observed verdicts and no partial echo records.
  EXPECT_TRUE(obs.proxies.empty());
  EXPECT_TRUE(obs.replays.empty());
  EXPECT_TRUE(obs.relays.empty());
  EXPECT_TRUE(obs.direct.empty());
  EXPECT_EQ(echo.offered(), 0u);
  EXPECT_TRUE(echo.log().empty());
}

TEST(Chain, MidObservationFaultLeavesNoPartialEcho) {
  // rate=1.0 with a one-fault budget: attempt 1 faults at the forward leg,
  // attempt 2 gets past the forward (normally an echo record) and faults
  // deeper in — the aborted observations must flush nothing, and only the
  // final clean attempt contributes echo records, exactly as many as a
  // fault-free observation would.
  auto fleet = two_impl_fleet();
  EchoServer clean_echo;
  Chain::from_fleet(fleet).observe("f2", kPlainGet, &clean_echo);
  const std::size_t clean_records = clean_echo.offered();
  ASSERT_GT(clean_records, 0u);

  FaultPlanConfig config;
  config.rate = 1.0;
  config.max_faults_per_site = 1;
  config.kinds = {FaultKind::kTruncate};
  auto plan = std::make_shared<FaultPlan>(config);
  auto faulty_fleet = wrap_fleet_with_faults(fleet, plan);
  Chain chain = Chain::from_fleet(faulty_fleet);
  EchoServer echo;
  ChainObservation obs = chain.observe("f2", kPlainGet, &echo);
  EXPECT_TRUE(obs.faulted());
  EXPECT_EQ(obs.fault, ChainError::kTruncated);
  EXPECT_EQ(echo.offered(), 0u);

  int faulted_attempts = 1;
  while (obs.faulted() && faulted_attempts < 16) {
    EXPECT_EQ(echo.offered(), 0u);  // aborted attempts leave no partial echo
    obs = chain.observe("f2", kPlainGet, &echo);
    faulted_attempts += obs.faulted();
  }
  ASSERT_FALSE(obs.faulted());
  EXPECT_GE(faulted_attempts, 2);  // at least one fault was mid-observation
  EXPECT_EQ(echo.offered(), clean_records);
}

TEST(Chain, RecoveredObservationMatchesFaultFree) {
  auto fleet = two_impl_fleet();
  Chain clean_chain = Chain::from_fleet(fleet);
  ChainObservation expected = clean_chain.observe("r1", kPlainGet);

  FaultPlanConfig config;
  config.rate = 1.0;  // every site faults exactly once, then recovers
  config.max_faults_per_site = 1;
  auto plan = std::make_shared<FaultPlan>(config);
  auto faulty_fleet = wrap_fleet_with_faults(fleet, plan);
  Chain chain = Chain::from_fleet(faulty_fleet);

  ChainObservation obs;
  int attempts = 0;
  do {
    obs = chain.observe("r1", kPlainGet);
    ++attempts;
  } while (obs.faulted() && attempts < 32);
  ASSERT_FALSE(obs.faulted()) << "did not recover in " << attempts;
  EXPECT_GT(attempts, 1);  // at least one attempt actually faulted
  EXPECT_EQ(obs.proxies.size(), expected.proxies.size());
  EXPECT_EQ(obs.replays.size(), expected.replays.size());
  EXPECT_EQ(obs.direct.size(), expected.direct.size());
  for (const auto& [name, v] : expected.proxies) {
    ASSERT_TRUE(obs.proxies.count(name));
    EXPECT_EQ(obs.proxies.at(name).forwarded_bytes, v.forwarded_bytes);
  }
  for (const auto& [key, v] : expected.direct) {
    ASSERT_TRUE(obs.direct.count(key));
    EXPECT_EQ(obs.direct.at(key).status, v.status);
  }
}

TEST(EchoServer, CountersReadableWhileRecording) {
  // offered()/dropped() are atomic: hammer them from a reader while writers
  // record (exercised under TSan by the sanitizer job).
  EchoServer echo(8);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::size_t sink = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      sink += echo.offered() + echo.dropped();
    }
    EXPECT_GE(sink, 0u);
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&echo, w] {
      for (int i = 0; i < 64; ++i) {
        echo.record("u" + std::to_string(w), "squid", "bytes");
      }
    });
  }
  for (auto& t : writers) t.join();
  stop = true;
  reader.join();
  EXPECT_EQ(echo.offered(), 4u * 64u);
  EXPECT_EQ(echo.dropped(), 4u * 64u - 8u);
  EXPECT_EQ(echo.log().size(), 8u);
}

}  // namespace
}  // namespace hdiff::net
