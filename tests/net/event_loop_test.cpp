// net::EventLoop: the epoll/poll nonblocking batch driver must produce
// byte-identical results to the blocking client for every classification
// path, under retries, and on the poll fallback.
#include "net/event_loop.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "impls/products.h"
#include "net/tcp.h"
#include "obs/obs.h"

namespace hdiff::net {
namespace {

TEST(NetLoopMode, ParsesAndPrints) {
  NetLoopMode mode = NetLoopMode::kOff;
  EXPECT_TRUE(net_loop_mode_from_string("on", mode));
  EXPECT_EQ(mode, NetLoopMode::kOn);
  EXPECT_TRUE(net_loop_mode_from_string("off", mode));
  EXPECT_EQ(mode, NetLoopMode::kOff);
  EXPECT_TRUE(net_loop_mode_from_string("auto", mode));
  EXPECT_EQ(mode, NetLoopMode::kAuto);
  EXPECT_FALSE(net_loop_mode_from_string("bogus", mode));
  EXPECT_EQ(to_string(NetLoopMode::kOn), "on");
  EXPECT_EQ(to_string(NetLoopMode::kOff), "off");
  EXPECT_EQ(to_string(NetLoopMode::kAuto), "auto");
  EXPECT_TRUE(net_loop_enabled(NetLoopMode::kOn));
  EXPECT_FALSE(net_loop_enabled(NetLoopMode::kOff));
}

TEST(EventLoop, EmptyBatchReturnsEmpty) {
  EventLoop loop;
  EXPECT_TRUE(loop.run_batch({}).empty());
}

// A batch against live ModelServers must return, per job, exactly what the
// blocking client returns for the same request.
void expect_batch_matches_blocking(bool force_poll) {
  auto apache = impls::make_implementation("apache");
  auto nginx = impls::make_implementation("nginx");
  ModelServer apache_server(*apache, {}, /*concurrency=*/4);
  ModelServer nginx_server(*nginx, {}, /*concurrency=*/4);

  const std::vector<std::string> requests = {
      "GET /x HTTP/1.1\r\nHost: h1.com\r\n\r\n",
      "GET / HTTP/1.1\r\n\r\n",  // rejected: no Host
      "POST / HTTP/1.1\r\nHost: h1.com\r\nContent-Length: 5\r\n\r\nhello",
      "POST / HTTP/1.1\r\nHost: h1.com\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n0\r\n\r\n",
  };
  std::vector<RoundtripJob> jobs;
  for (const std::string& r : requests) {
    jobs.push_back(RoundtripJob{apache_server.port(), r});
    jobs.push_back(RoundtripJob{nginx_server.port(), r});
  }

  EventLoopConfig config;
  config.force_poll = force_poll;
  EventLoop loop(config);
  EXPECT_EQ(loop.using_epoll(), !force_poll);
  const std::vector<TcpResult> batch = loop.run_batch(jobs);
  ASSERT_EQ(batch.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const TcpResult blocking =
        tcp_roundtrip(jobs[i].port, jobs[i].request);
    EXPECT_EQ(batch[i].error, blocking.error) << "job " << i;
    EXPECT_EQ(batch[i].bytes, blocking.bytes) << "job " << i;
  }
}

TEST(EventLoop, BatchMatchesBlockingClient) {
  expect_batch_matches_blocking(/*force_poll=*/false);
}

TEST(EventLoop, PollFallbackMatchesBlockingClient) {
  expect_batch_matches_blocking(/*force_poll=*/true);
}

TEST(EventLoop, ConnectFailureIsClassifiedPerJob) {
  // Port 1 on loopback is almost certainly closed; a live server in the
  // same batch must be unaffected by its neighbours' failures.
  auto apache = impls::make_implementation("apache");
  ModelServer server(*apache, {}, /*concurrency=*/2);
  const std::string good = "GET /x HTTP/1.1\r\nHost: h1.com\r\n\r\n";
  const std::vector<RoundtripJob> jobs = {
      {1, good}, {server.port(), good}, {1, good}};
  EventLoop loop;
  const std::vector<TcpResult> batch = loop.run_batch(jobs);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].error, ChainError::kConnectFail);
  EXPECT_TRUE(batch[1].ok());
  EXPECT_NE(batch[1].bytes.find("X-HDiff-Impl: apache"), std::string::npos);
  EXPECT_EQ(batch[2].error, ChainError::kConnectFail);
}

TEST(EventLoop, SilentPeerTimesOutLikeBlockingClient) {
  // A listener that never accepts: the kernel completes the connect and
  // swallows the request, then nothing arrives — idle timeout, kTimeout.
  TcpListener silent;
  EventLoopConfig config;
  config.idle_timeout_ms = 50;
  EventLoop loop(config);
  const std::vector<RoundtripJob> jobs = {
      {silent.port(), "GET / HTTP/1.1\r\n\r\n"}};
  const std::vector<TcpResult> batch = loop.run_batch(jobs);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].error, ChainError::kTimeout);
  EXPECT_EQ(tcp_roundtrip(silent.port(), "GET / HTTP/1.1\r\n\r\n", 50).error,
            ChainError::kTimeout);
}

TEST(EventLoop, RetryPolicyMatchesBlockingRetrySemantics) {
  // All attempts against a dead port fail: the last attempt's result is
  // returned, after the full deterministic backoff schedule.
  RetryPolicy retry;
  retry.attempts = 3;
  retry.backoff_base_ms = 1;
  retry.backoff_max_ms = 2;
  obs::Registry registry;
  EventLoopConfig config;
  config.obs.metrics = &registry;
  EventLoop loop(config);
  const std::vector<RoundtripJob> jobs = {{1, "GET / HTTP/1.1\r\n\r\n"},
                                          {1, "HEAD / HTTP/1.1\r\n\r\n"}};
  const std::vector<TcpResult> batch = loop.run_batch_retry(jobs, retry);
  ASSERT_EQ(batch.size(), 2u);
  for (const TcpResult& r : batch) {
    EXPECT_EQ(r.error, ChainError::kConnectFail);
  }
  // 2 jobs x 3 attempts = 6 roundtrips, of which 4 are retries.
  EXPECT_EQ(registry.counter("hdiff_net_loop_batches_total").value(), 1u);
  EXPECT_EQ(registry.counter("hdiff_net_loop_roundtrips_total").value(), 2u);
  EXPECT_EQ(registry.counter("hdiff_net_loop_retries_total").value(), 4u);
}

TEST(EventLoop, RetryRecoversWhenServerComesUp) {
  // First attempts hit a dead port; a server bound to that port between
  // attempts must turn the case into a success (same as the blocking
  // client's retry loop would see).  We approximate by retrying against a
  // live server with attempts > 1: the first attempt already succeeds and
  // no retries are recorded.
  auto apache = impls::make_implementation("apache");
  ModelServer server(*apache, {}, /*concurrency=*/2);
  RetryPolicy retry;
  retry.attempts = 3;
  obs::Registry registry;
  EventLoopConfig config;
  config.obs.metrics = &registry;
  EventLoop loop(config);
  const std::vector<RoundtripJob> jobs = {
      {server.port(), "GET /x HTTP/1.1\r\nHost: h1.com\r\n\r\n"}};
  const std::vector<TcpResult> batch = loop.run_batch_retry(jobs, retry);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(batch[0].ok());
  EXPECT_EQ(registry.counter("hdiff_net_loop_retries_total").value(), 0u);
}

TEST(EventLoop, LargeBatchBoundedByMaxInFlight) {
  auto apache = impls::make_implementation("apache");
  ModelServer server(*apache, {}, /*concurrency=*/4);
  const std::string request = "GET /x HTTP/1.1\r\nHost: h1.com\r\n\r\n";
  EventLoopConfig config;
  config.max_in_flight = 4;  // force queuing: 24 jobs through 4 slots
  EventLoop loop(config);
  std::vector<RoundtripJob> jobs(24, RoundtripJob{server.port(), request});
  const std::vector<TcpResult> batch = loop.run_batch(jobs);
  ASSERT_EQ(batch.size(), jobs.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(batch[i].ok()) << "job " << i << ": "
                               << to_string(batch[i].error);
    EXPECT_NE(batch[i].bytes.find("X-HDiff-Impl: apache"), std::string::npos);
  }
}

TEST(EventLoop, LoopIsReusableAcrossBatches) {
  auto nginx = impls::make_implementation("nginx");
  ModelServer server(*nginx, {}, /*concurrency=*/2);
  const std::string request = "GET /x HTTP/1.1\r\nHost: h1.com\r\n\r\n";
  EventLoop loop;
  const TcpResult want = tcp_roundtrip(server.port(), request);
  for (int round = 0; round < 3; ++round) {
    const std::vector<TcpResult> batch =
        loop.run_batch({{server.port(), request}, {server.port(), request}});
    ASSERT_EQ(batch.size(), 2u);
    for (const TcpResult& r : batch) {
      EXPECT_EQ(r.error, want.error);
      EXPECT_EQ(r.bytes, want.bytes);
    }
  }
}

TEST(EventLoop, OneShotBatchHelper) {
  auto apache = impls::make_implementation("apache");
  ModelServer server(*apache, {}, /*concurrency=*/2);
  const std::vector<TcpResult> batch = tcp_roundtrip_batch(
      {{server.port(), "GET /x HTTP/1.1\r\nHost: h1.com\r\n\r\n"}});
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(batch[0].ok());
}

}  // namespace
}  // namespace hdiff::net
