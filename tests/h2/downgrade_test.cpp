// HTTP/2 downgrade gaps (the paper's §V future-work direction), verified
// end to end against the h1 behaviour models.
#include "h2/downgrade.h"

#include <gtest/gtest.h>

#include "http/lexer.h"
#include "impls/products.h"

namespace hdiff::h2 {
namespace {

H2Request base_post(std::string_view body) {
  H2Request r;
  r.method = "POST";
  r.authority = "h1.com";
  r.path = "/upload";
  r.body.assign(body);
  return r;
}

TEST(Downgrade, CleanRequestTranslates) {
  DowngradeResult out = downgrade(base_post("hello"), strict_gateway());
  ASSERT_FALSE(out.rejected) << out.reason;
  http::RawRequest lexed = http::lex_request(out.h1_bytes);
  EXPECT_EQ(lexed.line.method_token, "POST");
  EXPECT_EQ(lexed.line.target, "/upload");
  EXPECT_EQ(lexed.find_first("host")->value, "h1.com");
  EXPECT_EQ(lexed.find_first("content-length")->value, "5");
  EXPECT_EQ(lexed.after_headers, "hello");
}

TEST(Downgrade, AuthorityBeatsHostHeader) {
  H2Request r = base_post("x");
  r.add("host", "evil.com");
  DowngradeResult out = downgrade(r, strict_gateway());
  ASSERT_FALSE(out.rejected);
  http::RawRequest lexed = http::lex_request(out.h1_bytes);
  EXPECT_EQ(lexed.count("host"), 1u);
  EXPECT_EQ(lexed.find_first("host")->value, "h1.com");
}

TEST(Downgrade, StrictGatewayRejectsClMismatch) {
  H2Request r = base_post("AAAAA");
  r.add("content-length", "100");
  DowngradeResult out = downgrade(r, strict_gateway());
  EXPECT_TRUE(out.rejected);
  EXPECT_NE(out.reason.find("8.1.2.6"), std::string::npos);
}

TEST(Downgrade, StrictGatewayRejectsTransferEncoding) {
  H2Request r = base_post("AAAAA");
  r.add("transfer-encoding", "chunked");
  DowngradeResult out = downgrade(r, strict_gateway());
  EXPECT_TRUE(out.rejected);
}

TEST(Downgrade, StrictGatewayRejectsHeaderInjection) {
  H2Request r = base_post("x");
  r.add("x-injected", "v\r\nX-Smuggled: 1");
  EXPECT_TRUE(downgrade(r, strict_gateway()).rejected);

  H2Request path_inject = base_post("x");
  path_inject.path = "/a HTTP/1.1\r\nX-Smuggled: 1\r\n";
  EXPECT_TRUE(downgrade(path_inject, strict_gateway()).rejected);
}

TEST(Downgrade, H2ClDesyncAgainstH1Origin) {
  // The "h2.CL" class: h2 frames the body unambiguously (DATA length), but
  // the weak gateway copies the *client's* content-length into the h1
  // request.  The h1 origin then frames by that header and exposes the
  // trailing bytes as a second request.
  std::string smuggled = "GET /evil HTTP/1.1\r\nHost: h1.com\r\n\r\n";
  H2Request r = base_post("AB" + smuggled);
  r.add("content-length", "2");  // lies: DATA is longer

  DowngradeResult strict = downgrade(r, strict_gateway());
  EXPECT_TRUE(strict.rejected);

  DowngradeResult weak = downgrade(r, cl_trusting_gateway());
  ASSERT_FALSE(weak.rejected) << weak.reason;
  auto origin = impls::make_implementation("apache");
  impls::ServerVerdict v = origin->parse_request(weak.h1_bytes);
  EXPECT_EQ(v.status, 200);
  EXPECT_EQ(v.body, "AB");
  EXPECT_EQ(v.leftover, smuggled);  // the hidden request
}

TEST(Downgrade, H2TeDesyncAgainstH1Origin) {
  // The "h2.TE" class: a forwarded transfer-encoding header makes the h1
  // origin frame by chunked while the gateway framed by DATA length.
  std::string smuggled = "GET /evil HTTP/1.1\r\nHost: h1.com\r\n\r\n";
  H2Request r = base_post("0\r\n\r\n" + smuggled);
  r.add("transfer-encoding", "chunked");

  DowngradeResult weak = downgrade(r, te_forwarding_gateway());
  ASSERT_FALSE(weak.rejected) << weak.reason;
  auto origin = impls::make_implementation("apache");
  impls::ServerVerdict v = origin->parse_request(weak.h1_bytes);
  EXPECT_EQ(v.status, 200);
  EXPECT_EQ(v.framing, impls::BodyFraming::kChunked);
  EXPECT_EQ(v.leftover, smuggled);
}

TEST(Downgrade, StrictGatewayOutputIsCleanForEveryOrigin) {
  DowngradeResult out = downgrade(base_post("payload"), strict_gateway());
  ASSERT_FALSE(out.rejected);
  auto fleet = impls::make_all_implementations();
  for (const auto& impl : fleet) {
    if (!impl->is_server()) continue;
    impls::ServerVerdict v = impl->parse_request(out.h1_bytes);
    EXPECT_EQ(v.status, 200) << impl->name();
    EXPECT_TRUE(v.leftover.empty()) << impl->name();
  }
}

TEST(Downgrade, EmptyPathNormalizedToRoot) {
  H2Request r;
  r.authority = "h1.com";
  r.path.clear();
  DowngradeResult out = downgrade(r, strict_gateway());
  ASSERT_FALSE(out.rejected);
  EXPECT_EQ(http::lex_request(out.h1_bytes).line.target, "/");
}

}  // namespace
}  // namespace hdiff::h2
