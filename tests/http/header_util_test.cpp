#include "http/header_util.h"

#include <gtest/gtest.h>

namespace hdiff::http {
namespace {

TEST(AsciiCase, LowerAndEquals) {
  EXPECT_EQ(to_lower("Content-LENGTH"), "content-length");
  EXPECT_TRUE(iequals("Host", "hOST"));
  EXPECT_FALSE(iequals("Host", "Hos"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(TokenPredicate, AcceptsTchars) {
  EXPECT_TRUE(is_token("Content-Length"));
  EXPECT_TRUE(is_token("x!#$%&'*+-.^_`|~09Az"));
  EXPECT_FALSE(is_token(""));
  EXPECT_FALSE(is_token("a b"));
  EXPECT_FALSE(is_token("a:b"));
  EXPECT_FALSE(is_token("a\x0b"));
}

TEST(Trim, OwsOnlyTouchesSpAndTab) {
  EXPECT_EQ(trim_ows("  a b\t"), "a b");
  EXPECT_EQ(trim_ows("\x0b val"), "\x0b val");  // VT is not OWS
  EXPECT_EQ(trim_ows(""), "");
  EXPECT_EQ(trim_ows("   "), "");
}

TEST(Trim, LenientEatsControls) {
  EXPECT_EQ(trim_lenient_ws("\x0b\x0c val\r"), "val");
}

TEST(SplitList, DropsEmptyElements) {
  auto items = split_list("chunked, , gzip ,deflate");
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], "chunked");
  EXPECT_EQ(items[1], "gzip");
  EXPECT_EQ(items[2], "deflate");
}

TEST(ContentLengthStrict, RejectsNonCanonical) {
  EXPECT_EQ(parse_content_length_strict("10"), 10u);
  EXPECT_EQ(parse_content_length_strict("0"), 0u);
  EXPECT_FALSE(parse_content_length_strict("+6"));
  EXPECT_FALSE(parse_content_length_strict("6,9"));
  EXPECT_FALSE(parse_content_length_strict(" 6"));
  EXPECT_FALSE(parse_content_length_strict("0x10"));
  EXPECT_FALSE(parse_content_length_strict(""));
  EXPECT_FALSE(parse_content_length_strict("99999999999999999999999999"));
}

TEST(ContentLengthLenient, StrtolStyle) {
  EXPECT_EQ(parse_content_length_lenient("+6"), 6u);
  EXPECT_EQ(parse_content_length_lenient("  10"), 10u);
  EXPECT_EQ(parse_content_length_lenient("6,9"), 6u);
  EXPECT_EQ(parse_content_length_lenient("6 6"), 6u);
  EXPECT_FALSE(parse_content_length_lenient("abc"));
  EXPECT_FALSE(parse_content_length_lenient("+"));
}

TEST(ChunkSizeStrict, HexOnly) {
  EXPECT_EQ(parse_chunk_size_strict("a"), 10u);
  EXPECT_EQ(parse_chunk_size_strict("FF"), 255u);
  EXPECT_FALSE(parse_chunk_size_strict("0x10"));
  EXPECT_FALSE(parse_chunk_size_strict("g"));
  EXPECT_FALSE(parse_chunk_size_strict(""));
}

TEST(ChunkSizeWrapping, WrapsModulo) {
  // 0x100000000a wraps to 0xa in 32 bits.
  EXPECT_EQ(parse_chunk_size_wrapping("100000000a", 32), 10u);
  // Stops at the first non-hex character.
  EXPECT_EQ(parse_chunk_size_wrapping("a;ext", 32), 10u);
  EXPECT_EQ(parse_chunk_size_wrapping("ffz", 32), 255u);
  EXPECT_FALSE(parse_chunk_size_wrapping("z", 32));
}

TEST(ChunkSizeWrapping, FullWidthDoesNotWrapSmallValues) {
  EXPECT_EQ(parse_chunk_size_wrapping("dead", 64), 0xdeadu);
}

}  // namespace
}  // namespace hdiff::http
