#include "http/chunked.h"

#include <gtest/gtest.h>

namespace hdiff::http {
namespace {

ChunkPolicy strict() { return ChunkPolicy{}; }

ChunkPolicy lenient() {
  ChunkPolicy p;
  p.wrapping_size = true;
  p.wrap_bits = 32;
  p.lenient_size_line = true;
  p.require_crlf_after_data = false;
  return p;
}

TEST(ChunkedStrict, DecodesCanonical) {
  ChunkResult r = decode_chunked("3\r\nabc\r\n0\r\n\r\nNEXT", strict());
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.body, "abc");
  EXPECT_EQ(r.leftover, "NEXT");
  ASSERT_EQ(r.chunk_sizes.size(), 2u);
  EXPECT_EQ(r.chunk_sizes[0], 3u);
  EXPECT_EQ(r.chunk_sizes[1], 0u);
}

TEST(ChunkedStrict, MultipleChunks) {
  ChunkResult r = decode_chunked("2\r\nab\r\n3\r\ncde\r\n0\r\n\r\n", strict());
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.body, "abcde");
}

TEST(ChunkedStrict, TrailersConsumed) {
  ChunkResult r =
      decode_chunked("1\r\nx\r\n0\r\nTrailer: v\r\n\r\nREST", strict());
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.leftover, "REST");
}

TEST(ChunkedStrict, ExtensionAccepted) {
  ChunkResult r = decode_chunked("3;ext=1\r\nabc\r\n0\r\n\r\n", strict());
  EXPECT_TRUE(r.ok);
}

TEST(ChunkedStrict, ExtensionRejectedWhenDisallowed) {
  ChunkPolicy p = strict();
  p.allow_extensions = false;
  ChunkResult r = decode_chunked("3;ext=1\r\nabc\r\n0\r\n\r\n", p);
  EXPECT_FALSE(r.ok);
}

TEST(ChunkedStrict, RejectsNonHexSize) {
  ChunkResult r = decode_chunked("0xfgh\r\nabc\r\n0\r\n\r\n", strict());
  // "0xfgh" is not 1*HEXDIG: "0" parses then "xfgh" is garbage => the size
  // line "0xfgh" fails the strict parse.
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.incomplete);
}

TEST(ChunkedStrict, RejectsHugeSize) {
  ChunkResult r =
      decode_chunked("ffffffffff\r\nabc\r\n0\r\n\r\n", strict());
  EXPECT_FALSE(r.ok);
}

TEST(ChunkedStrict, IncompleteOnMissingData) {
  ChunkResult r = decode_chunked("a\r\nabc", strict());
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.incomplete);
}

TEST(ChunkedStrict, SizeDataMismatchRejected) {
  // Size 5 over "abc\r\n" consumes the CRLF as data; the next bytes "0\r\n"
  // are then not a valid post-data CRLF.
  ChunkResult r = decode_chunked("5\r\nabc\r\n0\r\n\r\n", strict());
  EXPECT_FALSE(r.ok);
}

TEST(ChunkedStrict, BareLfRejected) {
  ChunkResult r = decode_chunked("3\nabc\n0\n\n", strict());
  EXPECT_FALSE(r.ok);
}

TEST(ChunkedLenient, BareLfAccepted) {
  ChunkPolicy p = strict();
  p.allow_bare_lf = true;
  ChunkResult r = decode_chunked("3\nabc\n0\n\n", p);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.body, "abc");
}

TEST(ChunkedLenient, WrapsOversizeAndRepairsByLine) {
  // 0x100000000a wraps to 10 in 32 bits; the repairing decoder distrusts the
  // damaged size and takes the next line ("abc") as the chunk data — the
  // §IV-B repair whose re-emitted size no longer matches the data.
  ChunkResult r = decode_chunked("100000000a\r\nabc\r\n0\r\n\r\n", lenient());
  EXPECT_TRUE(r.size_overflowed);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.body, "abc");
  ASSERT_FALSE(r.chunk_sizes.empty());
  EXPECT_EQ(r.chunk_sizes[0], 10u);  // the wrapped — wrong — size
}

TEST(ChunkedLenient, GarbageSizeLineScansDigits) {
  ChunkResult r = decode_chunked("3zz\r\nabc\r\n0\r\n\r\n", lenient());
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.body, "abc");
  EXPECT_TRUE(r.size_overflowed);  // digit truncation flagged
}

TEST(ChunkedNul, FlaggedAndOptionallyFatal) {
  std::string in = "3\r\na";
  in.push_back('\0');
  in += "c\r\n0\r\n\r\n";
  ChunkResult ok = decode_chunked(in, strict());
  EXPECT_TRUE(ok.ok);
  EXPECT_TRUE(ok.saw_nul);

  ChunkPolicy p = strict();
  p.reject_nul_in_data = true;
  ChunkResult bad = decode_chunked(in, p);
  EXPECT_FALSE(bad.ok);
}

TEST(ChunkedLimit, MaxChunkSizeEnforced) {
  ChunkPolicy p = strict();
  p.max_chunk_size = 2;
  ChunkResult r = decode_chunked("3\r\nabc\r\n0\r\n\r\n", p);
  EXPECT_FALSE(r.ok);
}

TEST(EncodeChunked, RoundTrips) {
  std::string wire = encode_chunked("hello");
  ChunkResult r = decode_chunked(wire, strict());
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.body, "hello");
  EXPECT_TRUE(r.leftover.empty());
}

TEST(EncodeChunked, EmptyBody) {
  EXPECT_EQ(encode_chunked(""), "0\r\n\r\n");
}

}  // namespace
}  // namespace hdiff::http
