#include "http/response.h"

#include <gtest/gtest.h>

namespace hdiff::http {
namespace {

TEST(ResponseLexer, CanonicalResponse) {
  RawResponse r = lex_response(
      "HTTP/1.1 200 OK\r\nContent-Length: 3\r\nServer: test\r\n\r\nabc");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.reason, "OK");
  EXPECT_EQ(r.version, (Version{1, 1}));
  ASSERT_NE(r.find_first("content-length"), nullptr);
  EXPECT_EQ(r.after_headers, "abc");
}

TEST(ResponseLexer, MultiWordReason) {
  RawResponse r = lex_response("HTTP/1.1 400 Bad Request\r\n\r\n");
  EXPECT_EQ(r.status, 400);
  EXPECT_EQ(r.reason, "Bad Request");
}

TEST(ResponseLexer, GarbageStatusLine) {
  EXPECT_FALSE(lex_response("not a response\r\n\r\n").status_line_valid());
  EXPECT_FALSE(lex_response("HTTP/1.1 9999 X\r\n\r\n").status_line_valid());
}

TEST(ResponseFramingRules, BodylessStatuses) {
  for (int status : {100, 101, 204, 304}) {
    RawResponse r = lex_response("HTTP/1.1 " + std::to_string(status) +
                                 " X\r\nContent-Length: 10\r\n\r\n");
    EXPECT_FALSE(response_framing(r, Method::kGet).has_body) << status;
  }
}

TEST(ResponseFramingRules, HeadNeverHasBody) {
  RawResponse r =
      lex_response("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n");
  EXPECT_FALSE(response_framing(r, Method::kHead).has_body);
  EXPECT_TRUE(response_framing(r, Method::kGet).has_body);
}

TEST(ResponseFramingRules, ChunkedBeatsContentLength) {
  RawResponse r = lex_response(
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n"
      "Content-Length: 99\r\n\r\n");
  ResponseFraming f = response_framing(r, Method::kGet);
  EXPECT_TRUE(f.chunked);
}

TEST(ResponseFramingRules, NoLengthMeansUntilClose) {
  RawResponse r = lex_response("HTTP/1.1 200 OK\r\n\r\nrest");
  EXPECT_TRUE(response_framing(r, Method::kGet).until_close);
}

TEST(FrameFirst, SplitsPipelinedResponses) {
  FramedResponse f = frame_first_response(
      "HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nabc"
      "HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n",
      Method::kGet);
  ASSERT_TRUE(f.complete);
  EXPECT_EQ(f.head.status, 200);
  EXPECT_EQ(f.body, "abc");
  EXPECT_EQ(f.leftover.substr(0, 12), "HTTP/1.1 404");
}

TEST(FrameFirst, InterimResponseDetected) {
  FramedResponse f = frame_first_response(
      "HTTP/1.1 100 Continue\r\n\r\n"
      "HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n",
      Method::kGet);
  ASSERT_TRUE(f.complete);
  EXPECT_TRUE(f.interim);
  EXPECT_EQ(f.leftover.substr(0, 12), "HTTP/1.1 200");
}

TEST(FrameFirst, IncompleteBody) {
  FramedResponse f = frame_first_response(
      "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc", Method::kGet);
  EXPECT_FALSE(f.complete);
}

TEST(BuildResponse, RoundTripsThroughLexer) {
  std::string wire = build_response(417, "nope", "X-Extra: 1\r\n");
  RawResponse r = lex_response(wire);
  EXPECT_EQ(r.status, 417);
  EXPECT_NE(r.find_first("x-extra"), nullptr);
  FramedResponse f = frame_first_response(wire, Method::kGet);
  ASSERT_TRUE(f.complete);
  EXPECT_EQ(f.body, "nope");
}

TEST(BuildResponse, BodylessStatusOmitsBody) {
  std::string wire = build_response(100, "ignored");
  EXPECT_EQ(wire.find("Content-Length"), std::string::npos);
  EXPECT_EQ(wire.find("ignored"), std::string::npos);
}

}  // namespace
}  // namespace hdiff::http

#include "impls/products.h"

namespace hdiff::impls {
namespace {

TEST(Respond, EmitsInterimForAcceptedExpect) {
  auto apache = make_implementation("apache");
  std::string response = apache->respond(
      "GET / HTTP/1.1\r\nHost: h\r\nExpect: 100-continue\r\n\r\n");
  EXPECT_EQ(response.substr(0, 21), "HTTP/1.1 100 Continue");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
}

TEST(Respond, NoInterimWithoutExpect) {
  auto apache = make_implementation("apache");
  std::string response =
      apache->respond("GET / HTTP/1.1\r\nHost: h\r\n\r\n");
  EXPECT_EQ(response.substr(0, 12), "HTTP/1.1 200");
}

TEST(Respond, LighttpdRejectsWithoutInterim) {
  auto lighttpd = make_implementation("lighttpd");
  std::string response = lighttpd->respond(
      "GET / HTTP/1.1\r\nHost: h\r\nExpect: 100-continue\r\n\r\n");
  EXPECT_EQ(response.substr(0, 12), "HTTP/1.1 417");
}

TEST(Relay, InterimSkippedByConformantProxy) {
  auto apache_server = make_implementation("apache");
  auto squid = make_implementation("squid");
  std::string stream = apache_server->respond(
      "GET / HTTP/1.1\r\nHost: h\r\nExpect: 100-continue\r\n\r\n");
  RelayOutcome relay = squid->relay_response(stream, http::Method::kGet);
  EXPECT_FALSE(relay.desync);
  EXPECT_EQ(relay.relayed_status, 200);
  EXPECT_EQ(relay.to_client.substr(0, 12), "HTTP/1.1 200");
}

TEST(Relay, AtsMistakesInterimForFinal) {
  auto apache_server = make_implementation("apache");
  auto ats = make_implementation("ats");
  std::string stream = apache_server->respond(
      "GET / HTTP/1.1\r\nHost: h\r\nExpect: 100-continue\r\n\r\n");
  RelayOutcome relay = ats->relay_response(stream, http::Method::kGet);
  EXPECT_TRUE(relay.desync);
  EXPECT_EQ(relay.relayed_status, 100);
  // The real 200 is stranded on the back-end connection.
  EXPECT_EQ(relay.stale_backend_bytes.substr(0, 12), "HTTP/1.1 200");
}

TEST(Relay, PlainResponsePassesThrough) {
  auto ats = make_implementation("ats");
  RelayOutcome relay = ats->relay_response(
      "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi", http::Method::kGet);
  EXPECT_FALSE(relay.desync);
  EXPECT_EQ(relay.relayed_status, 200);
}

}  // namespace
}  // namespace hdiff::impls
