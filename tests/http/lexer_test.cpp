#include "http/lexer.h"

#include <gtest/gtest.h>

namespace hdiff::http {
namespace {

TEST(Lexer, CanonicalRequest) {
  RawRequest r = lex_request(
      "POST /path?q=1 HTTP/1.1\r\nHost: h1.com\r\nContent-Length: 3\r\n\r\n"
      "abc");
  EXPECT_EQ(r.anomalies, 0u);
  EXPECT_EQ(r.line.method_token, "POST");
  EXPECT_EQ(r.line.target, "/path?q=1");
  EXPECT_EQ(r.line.version_token, "HTTP/1.1");
  ASSERT_TRUE(r.line.strict_version());
  EXPECT_EQ(*r.line.strict_version(), (Version{1, 1}));
  ASSERT_EQ(r.headers.size(), 2u);
  EXPECT_EQ(r.headers[0].name, "Host");
  EXPECT_EQ(r.headers[0].value, "h1.com");
  EXPECT_EQ(r.after_headers, "abc");
}

TEST(Lexer, SkipsLeadingBlankLines) {
  RawRequest r = lex_request("\r\n\r\nGET / HTTP/1.1\r\nHost: h\r\n\r\n");
  EXPECT_EQ(r.line.method_token, "GET");
  EXPECT_EQ(r.headers.size(), 1u);
}

TEST(Lexer, WhitespaceBeforeColonFlagged) {
  RawRequest r = lex_request(
      "GET / HTTP/1.1\r\nContent-Length : 5\r\nHost: h\r\n\r\n");
  ASSERT_EQ(r.headers.size(), 2u);
  EXPECT_TRUE(has_anomaly(r.headers[0].anomalies, Anomaly::kWsBeforeColon));
  EXPECT_TRUE(has_anomaly(r.anomalies, Anomaly::kWsBeforeColon));
  EXPECT_EQ(r.headers[0].normalized_name(), "content-length");
}

TEST(Lexer, BareLfTerminator) {
  RawRequest r = lex_request("GET / HTTP/1.1\nHost: h\n\n");
  EXPECT_TRUE(has_anomaly(r.anomalies, Anomaly::kBareLf));
  EXPECT_EQ(r.headers.size(), 1u);
}

TEST(Lexer, ObsFoldJoinsValue) {
  RawRequest r = lex_request(
      "GET / HTTP/1.1\r\nHost: h1.com\r\n h2.com\r\n\r\n");
  ASSERT_EQ(r.headers.size(), 1u);
  EXPECT_TRUE(has_anomaly(r.headers[0].anomalies, Anomaly::kObsFold));
  EXPECT_EQ(r.headers[0].value, "h1.com h2.com");
}

TEST(Lexer, MissingColonLine) {
  RawRequest r = lex_request("GET / HTTP/1.1\r\nHost: h\r\ngarbage\r\n\r\n");
  ASSERT_EQ(r.headers.size(), 2u);
  EXPECT_TRUE(has_anomaly(r.headers[1].anomalies, Anomaly::kMissingColon));
  EXPECT_EQ(r.headers[1].name, "garbage");
}

TEST(Lexer, Http09TwoTokenLine) {
  RawRequest r = lex_request("GET /index.html\r\n\r\n");
  EXPECT_TRUE(has_anomaly(r.line.anomalies, Anomaly::kNoVersion));
  EXPECT_EQ(r.line.target, "/index.html");
  EXPECT_TRUE(r.line.version_token.empty());
}

TEST(Lexer, FourPartRequestLine) {
  RawRequest r = lex_request("GET /?a=b 1.1/HTTP HTTP/1.0\r\n\r\n");
  EXPECT_TRUE(has_anomaly(r.line.anomalies, Anomaly::kRequestLineParts));
  EXPECT_EQ(r.line.method_token, "GET");
  EXPECT_EQ(r.line.target, "/?a=b 1.1/HTTP");
  EXPECT_EQ(r.line.version_token, "HTTP/1.0");
}

TEST(Lexer, MalformedVersionFlagged) {
  RawRequest r = lex_request("GET / 1.1/HTTP\r\n\r\n");
  EXPECT_TRUE(has_anomaly(r.line.anomalies, Anomaly::kMalformedVersion));
  EXPECT_FALSE(r.line.strict_version());
}

TEST(Lexer, CaseSensitiveHttpName) {
  RawRequest r = lex_request("GET / hTTP/1.1\r\n\r\n");
  EXPECT_TRUE(has_anomaly(r.line.anomalies, Anomaly::kMalformedVersion));
}

TEST(Lexer, ExtraRequestLineWhitespace) {
  RawRequest r = lex_request("GET  /  HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(has_anomaly(r.line.anomalies, Anomaly::kExtraRequestLineWs));
  EXPECT_EQ(r.line.target, "/");
}

TEST(Lexer, TabSeparatorFlagged) {
  RawRequest r = lex_request("GET\t/ HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(has_anomaly(r.line.anomalies, Anomaly::kExtraRequestLineWs));
}

TEST(Lexer, TruncatedHeaders) {
  RawRequest r = lex_request("GET / HTTP/1.1\r\nHost: h\r\n");
  EXPECT_TRUE(has_anomaly(r.anomalies, Anomaly::kTruncatedHeaders));
  EXPECT_TRUE(r.after_headers.empty());
}

TEST(Lexer, NulByteFlagged) {
  std::string raw = "GET / HTTP/1.1\r\nHost: h";
  raw.push_back('\0');
  raw += "x\r\n\r\n";
  RawRequest r = lex_request(raw);
  EXPECT_TRUE(has_anomaly(r.anomalies, Anomaly::kNulByte));
}

TEST(Lexer, NonTokenHeaderName) {
  RawRequest r = lex_request(
      "GET / HTTP/1.1\r\n\x0bTransfer-Encoding: chunked\r\n\r\n");
  ASSERT_EQ(r.headers.size(), 1u);
  // First header starting with a control byte is not obs-fold (not SP/HTAB).
  EXPECT_TRUE(has_anomaly(r.headers[0].anomalies, Anomaly::kNonTokenName));
  EXPECT_EQ(r.headers[0].normalized_name(), "transfer-encoding");
}

TEST(Lexer, LeadingHeaderWhitespace) {
  RawRequest r = lex_request("GET / HTTP/1.1\r\n Host: h\r\n\r\n");
  ASSERT_EQ(r.headers.size(), 1u);
  EXPECT_TRUE(has_anomaly(r.headers[0].anomalies, Anomaly::kLeadingHeaderWs));
}

TEST(Lexer, EmptyHeaderName) {
  RawRequest r = lex_request("GET / HTTP/1.1\r\n: value\r\n\r\n");
  ASSERT_EQ(r.headers.size(), 1u);
  EXPECT_TRUE(has_anomaly(r.headers[0].anomalies, Anomaly::kEmptyName));
}

TEST(Lexer, FindAllIsCaseInsensitive) {
  RawRequest r = lex_request(
      "GET / HTTP/1.1\r\nHost: a\r\nHOST: b\r\nhost: c\r\n\r\n");
  EXPECT_EQ(r.count("Host"), 3u);
  EXPECT_EQ(r.find_first("hOsT")->value, "a");
}

TEST(Lexer, AfterHeadersPreservedVerbatim) {
  RawRequest r = lex_request(
      "POST / HTTP/1.1\r\nHost: h\r\n\r\n0\r\n\r\nGET /evil HTTP/1.1\r\n\r\n");
  EXPECT_EQ(r.after_headers, "0\r\n\r\nGET /evil HTTP/1.1\r\n\r\n");
}

TEST(Anomalies, DescribeLists) {
  AnomalySet set = 0;
  add_anomaly(set, Anomaly::kBareLf);
  add_anomaly(set, Anomaly::kObsFold);
  EXPECT_EQ(describe_anomalies(set), "bare-lf|obs-fold");
  EXPECT_EQ(describe_anomalies(0), "none");
}

}  // namespace
}  // namespace hdiff::http
