// Differential parity suite for the zero-copy parse path (http/view.h).
//
// The owned lexers are thin materializing wrappers over the view parsers;
// `http::reference` keeps a verbatim copy of the historical implementation
// as the oracle.  These tests fuzz corpus messages and deterministic random
// mutants through both and assert every observable field — request/response
// structure, anomaly bits, body framing, chunked decoding — is identical.
// They are part of the tier-1 suite and also run under the asan-ubsan and
// tsan presets, where the borrow discipline of the views is what is really
// under test.
#include "http/view.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/probes.h"
#include "http/chunked.h"
#include "http/lexer.h"
#include "http/reference.h"
#include "http/response.h"

namespace hdiff::http {
namespace {

void expect_headers_eq(const std::vector<RawHeader>& got,
                       const std::vector<RawHeader>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].name, want[i].name) << "header " << i;
    EXPECT_EQ(got[i].value, want[i].value) << "header " << i;
    EXPECT_EQ(got[i].raw_line, want[i].raw_line) << "header " << i;
    EXPECT_EQ(got[i].anomalies, want[i].anomalies) << "header " << i;
    EXPECT_EQ(got[i].normalized_name(), want[i].normalized_name())
        << "header " << i;
  }
}

void expect_request_eq(const RawRequest& got, const RawRequest& want) {
  EXPECT_EQ(got.line.method_token, want.line.method_token);
  EXPECT_EQ(got.line.target, want.line.target);
  EXPECT_EQ(got.line.version_token, want.line.version_token);
  EXPECT_EQ(got.line.raw, want.line.raw);
  EXPECT_EQ(got.line.anomalies, want.line.anomalies);
  expect_headers_eq(got.headers, want.headers);
  EXPECT_EQ(got.after_headers, want.after_headers);
  EXPECT_EQ(got.anomalies, want.anomalies);
}

void expect_response_eq(const RawResponse& got, const RawResponse& want) {
  EXPECT_EQ(got.version, want.version);
  EXPECT_EQ(got.status, want.status);
  EXPECT_EQ(got.reason, want.reason);
  expect_headers_eq(got.headers, want.headers);
  EXPECT_EQ(got.after_headers, want.after_headers);
  EXPECT_EQ(got.anomalies, want.anomalies);
}

void expect_chunk_eq(const ChunkResult& got, const ChunkResult& want) {
  EXPECT_EQ(got.ok, want.ok);
  EXPECT_EQ(got.incomplete, want.incomplete);
  EXPECT_EQ(got.size_overflowed, want.size_overflowed);
  EXPECT_EQ(got.saw_nul, want.saw_nul);
  EXPECT_EQ(got.body, want.body);
  EXPECT_EQ(got.leftover, want.leftover);
  EXPECT_EQ(got.error, want.error);
  EXPECT_EQ(got.chunk_sizes, want.chunk_sizes);
}

const std::vector<ChunkPolicy>& chunk_policies() {
  static const std::vector<ChunkPolicy> policies = {
      {},
      {.nul_terminates_body = true},
      {.lenient_size_line = true,
       .require_crlf_after_data = false,
       .allow_bare_lf = true},
      {.wrapping_size = true, .wrap_bits = 16, .reject_nul_in_data = true},
  };
  return policies;
}

// Handcrafted corpus: every anomaly family, chunked edge cases, obs-fold,
// unicode splices, NULs, pipelining, responses of every framing class.
const std::vector<std::string>& handcrafted() {
  static const std::vector<std::string> corpus = {
      "",
      "\r\n",
      "GET / HTTP/1.1\r\nHost: a\r\n\r\n",
      "GET /\xe2\x80\xa8/u HTTP/1.1\r\nHost: a\r\n\r\n",
      "POST / HTTP/1.1\r\nHost: a\r\nContent-Length: 5\r\n\r\nhello",
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n0\r\n\r\nGET /next HTTP/1.1\r\n\r\n",
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5;ext=1\r\nhello\r\n0\r\nTrailer: t\r\n\r\n",
      "GET / HTTP/1.1\nHost: bare-lf\n\n",
      "GET / HTTP/1.1\r\nHost: a\r\n Folded: continuation\r\n\r\n",
      "GET / HTTP/1.1\r\nX: first\r\n\tsecond\r\n\tthird\r\n\r\n",
      "GET / HTTP/1.1\r\nBad Name: v\r\nName : ws-colon\r\n\r\n",
      "GET / HTTP/1.1\r\nNoColonHere\r\n: emptyname\r\n\r\n",
      "GET  /  HTTP/1.1 extra parts\r\n\r\n",
      "GET /\r\n\r\n",
      "GET / HTTP/9.9.9\r\n\r\n",
      "GET / HTTP/1.1\r\nTrunc",
      std::string("GET /\0nul HTTP/1.1\r\nH: a\0b\r\n\r\n", 30),
      "GET /\x80\xff HTTP/1.1\r\nH\x81: v\xfe\r\n\r\n",
      "GET / HTTP/1.1\r\nCr\rinside: v\r\n\r\n",
      "HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nabcDEF",
      "HTTP/1.1 100 Continue\r\n\r\nHTTP/1.1 200 OK\r\n"
      "Content-Length: 0\r\n\r\n",
      "HTTP/1.1 204 No Content\r\nContent-Length: 9\r\n\r\nleftover!",
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\n\r\nrest",
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: gzip, chunked\r\n\r\n0\r\n\r\n",
      "HTTP/1.1 200 OK\r\nFolded:\r\n chunked\r\n\r\nbody",
      "HTTP/1.1 304 Not Modified\r\n\r\n",
      "HTTP/2.0 200 OK\r\n\r\nuntil-close body",
      "NOTHTTP 200 OK\r\n\r\n",
      "5\r\nhello\r\n0\r\n\r\n",
      std::string("5\r\nhel\0o\r\n0\r\n\r\n", 15),
      "ff5\r\nshort\r\n",
      "zz\r\njunk\r\n0\r\n\r\n",
      "ffffffffffffffffffff\r\nx\r\n0\r\n\r\n",
  };
  return corpus;
}

void expect_parity(const std::string& in) {
  expect_request_eq(lex_request(in), reference::lex_request(in));
  expect_response_eq(lex_response(in), reference::lex_response(in));
  const RawRequest want_req = reference::lex_request(in);
  EXPECT_EQ(sniff_method(in), method_from_token(want_req.line.method_token));
  std::string scratch;
  for (Method m : {Method::kGet, Method::kHead, Method::kPost}) {
    const FramedResponse want = reference::frame_first_response(in, m);
    const FramedResponse got = frame_first_response(in, m);
    expect_response_eq(got.head, want.head);
    EXPECT_EQ(got.body, want.body);
    EXPECT_EQ(got.leftover, want.leftover);
    EXPECT_EQ(got.complete, want.complete);
    EXPECT_EQ(got.interim, want.interim);

    const ResponseFraming want_framing =
        reference::response_framing(reference::lex_response(in), m);
    ResponseView view;
    parse_response_view(in, view);
    const ResponseFraming got_framing = response_framing(view, m, scratch);
    EXPECT_EQ(got_framing.has_body, want_framing.has_body);
    EXPECT_EQ(got_framing.chunked, want_framing.chunked);
    EXPECT_EQ(got_framing.content_length, want_framing.content_length);
    EXPECT_EQ(got_framing.until_close, want_framing.until_close);

    EXPECT_EQ(probe_first_response(in, m).complete, want.complete);
  }
  for (const ChunkPolicy& policy : chunk_policies()) {
    expect_chunk_eq(decode_chunked(in, policy),
                    reference::decode_chunked(in, policy));
  }
}

TEST(ViewParity, HandcraftedCorpusIsByteIdentical) {
  for (const std::string& in : handcrafted()) {
    SCOPED_TRACE(testing::PrintToString(in.substr(0, 80)));
    expect_parity(in);
  }
}

TEST(ViewParity, VerificationProbesAreByteIdentical) {
  for (const core::TestCase& tc : core::verification_probes()) {
    SCOPED_TRACE(tc.uuid);
    expect_parity(tc.raw);
  }
}

TEST(ViewParity, DeterministicFuzzMutantsAreByteIdentical) {
  // Fixed-LCG mutants of the handcrafted templates: replace / insert /
  // delete bytes drawn from a delimiter-heavy alphabet, so the same byte
  // soup is replayed on every run (and under every sanitizer preset).
  std::uint64_t state = 0x2545f4914f6cdd1dull;
  const auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state >> 33);
  };
  const char alphabet[] = "\r\n\t :;,/\x00\x80\xff\x0bGEThost01af";
  const std::vector<std::string>& templates = handcrafted();
  for (int i = 0; i < 400; ++i) {
    std::string m = templates[next() % templates.size()];
    const int edits = 1 + static_cast<int>(next() % 4);
    for (int e = 0; e < edits; ++e) {
      const char c = alphabet[next() % (sizeof alphabet - 1)];
      switch (next() % 3) {
        case 0:
          if (!m.empty()) m[next() % m.size()] = c;
          break;
        case 1:
          m.insert(m.begin() + static_cast<long>(next() % (m.size() + 1)), c);
          break;
        default:
          if (!m.empty()) m.erase(next() % m.size(), 1);
          break;
      }
    }
    SCOPED_TRACE("mutant " + std::to_string(i));
    expect_parity(m);
  }
}

TEST(ViewParity, ViewsBorrowTheParsedBuffer) {
  // Every unfolded view must point into the original buffer — the zero-copy
  // property itself, not just value equality.
  const std::string raw =
      "POST /p HTTP/1.1\r\nHost: a\r\nContent-Length: 2\r\n\r\nhi";
  RequestView view;
  parse_request_view(raw, view);
  const auto in_buffer = [&](std::string_view sv) {
    return sv.empty() ||
           (sv.data() >= raw.data() && sv.data() + sv.size() <=
                                           raw.data() + raw.size());
  };
  EXPECT_TRUE(in_buffer(view.line.method_token));
  EXPECT_TRUE(in_buffer(view.line.target));
  EXPECT_TRUE(in_buffer(view.line.version_token));
  EXPECT_TRUE(in_buffer(view.line.raw));
  for (const HeaderView& h : view.headers) {
    EXPECT_TRUE(in_buffer(h.name));
    EXPECT_TRUE(in_buffer(h.value));
    EXPECT_TRUE(in_buffer(h.raw_line));
  }
  EXPECT_TRUE(in_buffer(view.after_headers));
}

TEST(ViewParity, ReusedViewReparsesToIdenticalState) {
  // clear() keeps capacity; re-parsing a different message must not leak
  // state from the previous parse.
  RequestView view;
  parse_request_view(
      "GET /long HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n X: fold\r\n\r\nbody",
      view);
  const std::string second = "PUT /s HTTP/1.0\r\nHost: b\r\n\r\n";
  view.clear();
  parse_request_view(second, view);
  expect_request_eq(view.materialize(), reference::lex_request(second));
}

TEST(ViewParity, FindFirstAndCountMatchOwnedLookups) {
  const std::string raw =
      "GET / HTTP/1.1\r\nHost: a\r\n hOsT : b\r\nX-Other: c\r\n"
      "Host\t: d\r\n\r\n";
  RequestView view;
  parse_request_view(raw, view);
  const RawRequest owned = reference::lex_request(raw);
  EXPECT_EQ(view.count("host"), owned.count("host"));
  EXPECT_EQ(view.count("x-other"), owned.count("x-other"));
  EXPECT_EQ(view.count("absent"), owned.count("absent"));
  const HeaderView* h = view.find_first("Host");
  const RawHeader* oh = owned.find_first("Host");
  ASSERT_NE(h, nullptr);
  ASSERT_NE(oh, nullptr);
  // The owned lexer joins obs-fold continuations into the value; a
  // HeaderView keeps only the first-line segment, so the logical value
  // comes from joined_value().
  std::string scratch;
  EXPECT_EQ(view.joined_value(*h, scratch), oh->value);
  EXPECT_EQ(view.find_first("absent"), nullptr);
}

TEST(ViewParity, ScanChunkedRangesReconstructDecodeChunked) {
  const std::string in = "3\r\nabc\r\n4;e=x\r\ndefg\r\n0\r\n\r\nnext";
  for (const ChunkPolicy& policy : chunk_policies()) {
    ChunkScan scan;
    scan_chunked(in, policy, scan);
    const ChunkResult decoded = decode_chunked(in, policy);
    EXPECT_EQ(scan.ok, decoded.ok);
    EXPECT_EQ(scan.incomplete, decoded.incomplete);
    EXPECT_EQ(scan.size_overflowed, decoded.size_overflowed);
    EXPECT_EQ(scan.saw_nul, decoded.saw_nul);
    EXPECT_EQ(std::string(scan.error), decoded.error);
    EXPECT_EQ(scan.chunk_sizes, decoded.chunk_sizes);
    EXPECT_EQ(scan.body_size(), decoded.body.size());
    std::string body;
    for (const auto& [off, len] : scan.data) body += in.substr(off, len);
    EXPECT_EQ(body, decoded.body);
    if (decoded.ok) {
      EXPECT_EQ(in.substr(scan.leftover_begin), decoded.leftover);
    }
  }
}

}  // namespace
}  // namespace hdiff::http
