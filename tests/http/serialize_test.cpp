#include "http/serialize.h"

#include <gtest/gtest.h>

#include "http/lexer.h"

namespace hdiff::http {
namespace {

TEST(RequestSpec, CanonicalWire) {
  RequestSpec r = make_get("h1.com", "/x");
  EXPECT_EQ(r.to_wire(), "GET /x HTTP/1.1\r\nHost: h1.com\r\n\r\n");
}

TEST(RequestSpec, PostCarriesContentLength) {
  RequestSpec r = make_post("h1.com", "/", "abc");
  EXPECT_EQ(r.to_wire(),
            "POST / HTTP/1.1\r\nHost: h1.com\r\nContent-Length: 3\r\n\r\nabc");
}

TEST(RequestSpec, ChunkedPostRoundTripsThroughLexer) {
  RequestSpec r = make_chunked_post("h1.com", "/", "abc");
  RawRequest lexed = lex_request(r.to_wire());
  EXPECT_EQ(lexed.anomalies, 0u);
  EXPECT_EQ(lexed.find_first("transfer-encoding")->value, "chunked");
  EXPECT_EQ(lexed.after_headers, "3\r\nabc\r\n0\r\n\r\n");
}

TEST(RequestSpec, ByteLevelControl) {
  RequestSpec r;
  r.method = "GET";
  r.target = "/";
  r.version = "hTTP/1.1";
  r.sep2 = "\t";
  r.add(HeaderSpec{"Host ", "h1.com", ":", "\n"});
  EXPECT_EQ(r.to_wire(), "GET /\thTTP/1.1\r\nHost :h1.com\n\r\n");
}

TEST(RequestSpec, VersionlessLine) {
  RequestSpec r;
  r.version.clear();
  EXPECT_EQ(r.to_wire(), "GET /\r\n\r\n");
}

TEST(RequestSpec, SetReplacesFirstCaseInsensitive) {
  RequestSpec r = make_get("h1.com");
  r.set("hOsT", "h2.com");
  ASSERT_EQ(r.headers.size(), 1u);
  EXPECT_EQ(r.headers[0].value, "h2.com");
  r.set("New-Header", "v");
  EXPECT_EQ(r.headers.size(), 2u);
}

TEST(RequestSpec, RemoveDropsAllMatches) {
  RequestSpec r = make_get("h1.com");
  r.add("Host", "h2.com");
  r.remove("HOST");
  EXPECT_TRUE(r.headers.empty());
}

TEST(RequestSpec, GetFindsValue) {
  RequestSpec r = make_post("h1.com", "/", "xy");
  EXPECT_EQ(r.get("content-length").value_or(""), "2");
  EXPECT_FALSE(r.get("absent"));
}

}  // namespace
}  // namespace hdiff::http
