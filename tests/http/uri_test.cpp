#include "http/uri.h"

#include <gtest/gtest.h>

namespace hdiff::http {
namespace {

TEST(RequestTarget, OriginForm) {
  RequestTarget t = parse_request_target("/a/b?x=1");
  EXPECT_EQ(t.form, TargetForm::kOrigin);
  EXPECT_EQ(t.path, "/a/b");
  EXPECT_EQ(t.query, "x=1");
}

TEST(RequestTarget, AsteriskForm) {
  EXPECT_EQ(parse_request_target("*").form, TargetForm::kAsterisk);
}

TEST(RequestTarget, AbsoluteForm) {
  RequestTarget t = parse_request_target("http://h2.com:8080/p?q=1");
  EXPECT_EQ(t.form, TargetForm::kAbsolute);
  EXPECT_EQ(t.scheme, "http");
  EXPECT_EQ(t.authority.host, "h2.com");
  EXPECT_EQ(t.authority.port, "8080");
  EXPECT_EQ(t.path, "/p");
  EXPECT_EQ(t.query, "q=1");
}

TEST(RequestTarget, NonHttpSchemeStillAbsolute) {
  RequestTarget t = parse_request_target("test://h2.com/?a=1");
  EXPECT_EQ(t.form, TargetForm::kAbsolute);
  EXPECT_EQ(t.scheme, "test");
  EXPECT_EQ(t.authority.host, "h2.com");
}

TEST(RequestTarget, AbsoluteWithUserinfo) {
  RequestTarget t = parse_request_target("http://h1@h2.com/");
  EXPECT_EQ(t.form, TargetForm::kAbsolute);
  EXPECT_EQ(t.authority.userinfo, "h1");
  EXPECT_EQ(t.authority.host, "h2.com");
}

TEST(RequestTarget, AuthorityForm) {
  RequestTarget t = parse_request_target("h2.com:443");
  EXPECT_EQ(t.form, TargetForm::kAuthority);
  EXPECT_EQ(t.authority.host, "h2.com");
  EXPECT_EQ(t.authority.port, "443");
}

TEST(RequestTarget, MalformedKeepsRaw) {
  RequestTarget t = parse_request_target("://");
  EXPECT_EQ(t.form, TargetForm::kMalformed);
  EXPECT_EQ(t.raw, "://");
}

TEST(Authority, StrictParse) {
  Authority a = parse_authority("h1.com:80");
  EXPECT_TRUE(a.valid);
  EXPECT_EQ(a.host, "h1.com");
  EXPECT_EQ(a.port, "80");
}

TEST(Authority, UserinfoSplitOnLastAt) {
  Authority a = parse_authority("u@h2.com");
  EXPECT_TRUE(a.valid);
  EXPECT_EQ(a.userinfo, "u");
  EXPECT_EQ(a.host, "h2.com");
}

TEST(Authority, Ipv6Literal) {
  Authority a = parse_authority("[::1]:8080");
  EXPECT_TRUE(a.valid);
  EXPECT_EQ(a.host, "[::1]");
  EXPECT_EQ(a.port, "8080");
}

TEST(Authority, InvalidPort) {
  EXPECT_FALSE(parse_authority("h1.com:8a").valid);
}

TEST(Authority, SpaceInvalid) {
  EXPECT_FALSE(parse_authority("h1.com h2.com").valid);
}

TEST(Authority, CommaIsSubDelimAndValid) {
  // ',' is a sub-delim, so "h1.com,h2.com" is a grammatically valid
  // reg-name — exactly why comma-host ambiguity smuggles past validators.
  EXPECT_TRUE(parse_authority("h1.com,h2.com").valid);
}

struct ExtractCase {
  const char* value;
  HostExtraction strategy;
  const char* expected;
};

class ExtractHostTest : public ::testing::TestWithParam<ExtractCase> {};

TEST_P(ExtractHostTest, Extracts) {
  const auto& p = GetParam();
  EXPECT_EQ(extract_host(p.value, p.strategy), p.expected)
      << p.value << " via " << to_string(p.strategy);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ExtractHostTest,
    ::testing::Values(
        ExtractCase{"h1.com", HostExtraction::kStrict, "h1.com"},
        ExtractCase{"h1.com:80", HostExtraction::kStrict, "h1.com"},
        ExtractCase{"u@h2.com", HostExtraction::kStrict, ""},
        ExtractCase{"h1.com h2.com", HostExtraction::kStrict, ""},
        ExtractCase{"h1.com@h2.com", HostExtraction::kBeforeDelims, "h1.com"},
        ExtractCase{"h1.com, h2.com", HostExtraction::kBeforeDelims, "h1.com"},
        ExtractCase{"h1.com/../h2", HostExtraction::kBeforeDelims, "h1.com"},
        ExtractCase{"h1.com@h2.com", HostExtraction::kAfterAt, "h2.com"},
        ExtractCase{"h2.com", HostExtraction::kAfterAt, "h2.com"},
        ExtractCase{"h1.com, h2.com", HostExtraction::kFirstListItem,
                    "h1.com"},
        ExtractCase{"h1.com, h2.com", HostExtraction::kLastListItem, "h2.com"},
        ExtractCase{"h1.com:8080", HostExtraction::kBeforeDelims, "h1.com"},
        ExtractCase{" h1.com ", HostExtraction::kWholeValue, "h1.com"},
        ExtractCase{"[::1]:80", HostExtraction::kBeforeDelims, "[::1]"}));

TEST(RegName, Validity) {
  EXPECT_TRUE(is_valid_reg_name("h1.com"));
  EXPECT_TRUE(is_valid_reg_name("127.0.0.1"));
  EXPECT_TRUE(is_valid_reg_name("[::1]"));
  EXPECT_FALSE(is_valid_reg_name(""));
  EXPECT_FALSE(is_valid_reg_name("h1 com"));
  EXPECT_FALSE(is_valid_reg_name("h1@h2"));
  EXPECT_FALSE(is_valid_reg_name("h1/h2"));
}

}  // namespace
}  // namespace hdiff::http

namespace hdiff::http {
namespace {

TEST(Authority, EmptyAndEdgeInputs) {
  EXPECT_FALSE(parse_authority("").valid);
  EXPECT_FALSE(parse_authority("[::1").valid);     // unclosed bracket
  EXPECT_FALSE(parse_authority("[::1]x").valid);   // junk after bracket
  EXPECT_FALSE(parse_authority("a:1:2").valid);    // two colons, no bracket
  EXPECT_TRUE(parse_authority("h1.com:").valid);   // empty port is legal
}

TEST(Authority, PercentEncodedRegName) {
  EXPECT_TRUE(parse_authority("h%41.com").valid);
  EXPECT_FALSE(parse_authority("h%4.com").valid);   // truncated escape
  EXPECT_FALSE(parse_authority("h%zz.com").valid);  // non-hex escape
}

TEST(RequestTarget, SchemeMustStartAlpha) {
  EXPECT_EQ(parse_request_target("1http://h/").form, TargetForm::kMalformed);
}

TEST(RequestTarget, AbsoluteWithoutPathGetsRootPath) {
  RequestTarget t = parse_request_target("http://h2.com");
  EXPECT_EQ(t.form, TargetForm::kAbsolute);
  EXPECT_EQ(t.path, "/");
}

TEST(RequestTarget, QueryOnlyAbsolute) {
  RequestTarget t = parse_request_target("http://h2.com?a=1");
  EXPECT_EQ(t.form, TargetForm::kAbsolute);
  EXPECT_EQ(t.query, "a=1");
}

}  // namespace
}  // namespace hdiff::http
