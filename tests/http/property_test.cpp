// Property sweeps over the http substrate: chunked round-trips for
// generated bodies, lexer totality, and serializer/lexer agreement.
#include <gtest/gtest.h>

#include <random>

#include "http/chunked.h"
#include "http/lexer.h"
#include "http/serialize.h"

namespace hdiff::http {
namespace {

class ChunkedRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(ChunkedRoundTrip, EncodeDecodeIsIdentity) {
  std::mt19937_64 rng(GetParam());
  ChunkPolicy strict;
  for (int iter = 0; iter < 200; ++iter) {
    std::size_t len = rng() % 200;
    std::string body;
    body.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      body.push_back(static_cast<char>(rng() % 256));
    }
    // NUL-free bodies round-trip under every policy; with NUL bytes the
    // strict policy still round-trips (NUL is legal chunk-data).
    std::string wire = encode_chunked(body);
    ChunkResult r = decode_chunked(wire, strict);
    ASSERT_TRUE(r.ok) << "len=" << len;
    EXPECT_EQ(r.body, body);
    EXPECT_TRUE(r.leftover.empty());
    EXPECT_FALSE(r.size_overflowed);

    // Appending trailing bytes puts them, exactly, into leftover.
    ChunkResult with_suffix = decode_chunked(wire + "SUFFIX", strict);
    ASSERT_TRUE(with_suffix.ok);
    EXPECT_EQ(with_suffix.leftover, "SUFFIX");
  }
}

TEST_P(ChunkedRoundTrip, EveryPrefixIsIncompleteNotInvalid) {
  std::mt19937_64 rng(GetParam());
  ChunkPolicy strict;
  std::string body = "hello chunked world";
  std::string wire = encode_chunked(body);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    ChunkResult r = decode_chunked(wire.substr(0, cut), strict);
    EXPECT_FALSE(r.ok) << "cut=" << cut;
    EXPECT_TRUE(r.incomplete) << "cut=" << cut
                              << " (a prefix of a valid stream must never be "
                                 "*invalid*, only unfinished)";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChunkedRoundTrip,
                         ::testing::Values(3u, 17u, 2026u));

class LexerTotality : public ::testing::TestWithParam<unsigned> {};

TEST_P(LexerTotality, NeverThrowsOnArbitraryBytes) {
  std::mt19937_64 rng(GetParam());
  for (int iter = 0; iter < 300; ++iter) {
    std::size_t len = rng() % 300;
    std::string raw;
    raw.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      raw.push_back(static_cast<char>(rng() % 256));
    }
    RawRequest r = lex_request(raw);  // must not throw / crash
    // The lexed pieces never contain more bytes than arrived.
    std::size_t total = r.line.raw.size() + r.after_headers.size();
    for (const auto& h : r.headers) total += h.raw_line.size();
    EXPECT_LE(total, raw.size() + 2 * (r.headers.size() + 2));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LexerTotality, ::testing::Values(5u, 23u));

TEST(SerializerLexerAgreement, CanonicalSpecsRoundTrip) {
  // For canonical specs (default separators), lexing the serialized bytes
  // recovers exactly the method/target/version/headers/body.
  struct Case {
    RequestSpec spec;
  };
  std::vector<RequestSpec> specs;
  specs.push_back(make_get("h1.com", "/a/b?c=1"));
  specs.push_back(make_post("h2.com:8080", "/upload", "payload-bytes"));
  specs.push_back(make_chunked_post("h3.com", "/", "chunky"));
  {
    RequestSpec r = make_get("h1.com");
    r.add("X-Custom", "value with spaces");
    r.add("Accept", "*/*");
    specs.push_back(std::move(r));
  }
  for (const auto& spec : specs) {
    RawRequest lexed = lex_request(spec.to_wire());
    EXPECT_EQ(lexed.anomalies, 0u);
    EXPECT_EQ(lexed.line.method_token, spec.method);
    EXPECT_EQ(lexed.line.target, spec.target);
    EXPECT_EQ(lexed.line.version_token, spec.version);
    ASSERT_EQ(lexed.headers.size(), spec.headers.size());
    for (std::size_t i = 0; i < spec.headers.size(); ++i) {
      EXPECT_EQ(lexed.headers[i].name, spec.headers[i].name);
      EXPECT_EQ(lexed.headers[i].value, spec.headers[i].value);
    }
    EXPECT_EQ(lexed.after_headers, spec.body);
  }
}

}  // namespace
}  // namespace hdiff::http
