// Trace sink: deterministic span timing under a ManualClock, per-thread
// buffers, and — critically for this codebase — Chrome trace-event JSON
// that round-trips the raw CR/LF/control bytes HTTP test cases carry.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace hdiff::obs {
namespace {

/// Decode one JSON string literal starting at `pos` (the opening quote).
/// Returns the decoded bytes and leaves `pos` after the closing quote.
/// Minimal but strict: unknown escapes fail the test.
std::string decode_json_string(const std::string& json, std::size_t* pos) {
  EXPECT_EQ(json[*pos], '"');
  ++*pos;
  std::string out;
  while (*pos < json.size() && json[*pos] != '"') {
    char c = json[*pos];
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control byte inside a JSON string";
    if (c != '\\') {
      out += c;
      ++*pos;
      continue;
    }
    char esc = json[*pos + 1];
    *pos += 2;
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        const std::string hex = json.substr(*pos, 4);
        *pos += 4;
        out += static_cast<char>(std::stoi(hex, nullptr, 16));
        break;
      }
      default:
        ADD_FAILURE() << "unexpected escape \\" << esc;
    }
  }
  ++*pos;  // closing quote
  return out;
}

/// All decoded values of `"key":"..."` pairs in the rendered JSON.
std::vector<std::string> string_values_of(const std::string& json,
                                          const std::string& key) {
  std::vector<std::string> values;
  const std::string needle = "\"" + key + "\":\"";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    std::size_t at = pos + needle.size() - 1;  // opening quote
    values.push_back(decode_json_string(json, &at));
    pos = at;
  }
  return values;
}

TEST(TraceSink, SpanTimingUnderManualClock) {
  ManualClock clock(1000);
  TraceSink sink(&clock);
  {
    Span span(&sink, "stage", "pipeline");
    clock.advance_us(250);
  }
  EXPECT_EQ(sink.event_count(), 1u);
  const std::string json = sink.render_chrome_json();
  EXPECT_NE(json.find("\"name\":\"stage\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"pipeline\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250"), std::string::npos);
}

TEST(TraceSink, NullSinkSpanIsNoOp) {
  Span span(nullptr, "ignored");
  span.arg("k", "v");  // must not crash; nothing to flush
}

TEST(TraceSink, SpanArgLastWins) {
  ManualClock clock;
  TraceSink sink(&clock);
  {
    Span span(&sink, "s");
    span.arg("first", "a");
    span.arg("uuid", "tc-1");
  }
  const std::string json = sink.render_chrome_json();
  EXPECT_EQ(json.find("\"first\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"uuid\":\"tc-1\"}"), std::string::npos);
}

TEST(TraceSink, InstantEventsAreThreadScoped) {
  ManualClock clock(77);
  TraceSink sink(&clock);
  sink.instant("fault", "executor", "error", "reset");
  const std::string json = sink.render_chrome_json();
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":77"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"error\":\"reset\"}"), std::string::npos);
}

TEST(TraceSink, ControlBytesRoundTripThroughJson) {
  // Test-case names and args carry raw HTTP bytes: CRLF, NUL-adjacent
  // controls, tabs, quotes, backslashes.  They must come back byte-exact.
  const std::string nasty =
      "GET /\x01 HTTP/1.1\r\nHost: a\tb\"c\\d\x1f\r\n\r\n";
  ManualClock clock;
  TraceSink sink(&clock);
  sink.complete(nasty, "chain", 0, 5, "raw", nasty);
  const std::string json = sink.render_chrome_json();
  // No raw control bytes may survive in the serialized form ('\n' is
  // emitted between events as JSON whitespace, which is legal).
  for (char c : json) {
    if (c != '\n') {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    }
  }
  const std::vector<std::string> names = string_values_of(json, "name");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], nasty);
  const std::vector<std::string> raws = string_values_of(json, "raw");
  ASSERT_EQ(raws.size(), 1u);
  EXPECT_EQ(raws[0], nasty);
}

TEST(TraceSink, PerThreadBuffersGetDistinctTids) {
  ManualClock clock;
  TraceSink sink(&clock);
  sink.instant("main", "t");
  std::thread other([&] { sink.instant("worker", "t"); });
  other.join();
  EXPECT_EQ(sink.event_count(), 2u);
  const std::string json = sink.render_chrome_json();
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
}

TEST(TraceSink, EventsSortedByTimestamp) {
  ManualClock clock(100);
  TraceSink sink(&clock);
  sink.complete("late", "t", 900, 1);
  sink.complete("early", "t", 50, 1);
  const std::string json = sink.render_chrome_json();
  EXPECT_LT(json.find("\"early\""), json.find("\"late\""));
}

TEST(TraceSink, RenderIsValidJsonShape) {
  ManualClock clock;
  TraceSink sink(&clock);
  sink.instant("a", "t");
  sink.complete("b", "t", 1, 2);
  const std::string json = sink.render_chrome_json();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\n]}\n"), std::string::npos);
  // Balanced braces (no nested objects beyond events and args).
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceSink, EmptySinkRendersEmptyArray) {
  TraceSink sink;
  EXPECT_EQ(sink.event_count(), 0u);
  EXPECT_EQ(sink.render_chrome_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n");
}

}  // namespace
}  // namespace hdiff::obs
