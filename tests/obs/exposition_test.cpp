// Prometheus exposition conformance for the obs layer: metric-name
// charset, one HELP/TYPE per family (including label-embedding names),
// label-value escaping, histogram bucket invariants, and the cross-process
// snapshot/absorb contract the serve fleet merge is built on.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace hdiff::obs {
namespace {

/// Every line of `text`, without trailing newlines.
std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// The metric name of a sample line (text up to '{' or the first space).
std::string sample_name(const std::string& line) {
  const std::size_t end = line.find_first_of("{ ");
  return line.substr(0, end);
}

// ---- metric name charset --------------------------------------------------

TEST(Exposition, EveryRegisteredFamilyNameMatchesThePrometheusCharset) {
  // Instantiate the real instrument packs the codebase registers, then
  // check every name that would reach a scraper.
  Registry registry;
  Observability obs;
  obs.metrics = &registry;
  (void)ChainObs::from(obs);
  (void)ServeObs::from(obs);
  (void)NetLoopObs::from(obs);

  const Registry::Snapshot snap = registry.snapshot();
  auto check = [](const std::string& name) {
    // A registered name may embed a label set; the charset rule applies to
    // the base name (the renderer splits the rest into labels).
    const std::string base = name.substr(0, name.find('{'));
    EXPECT_TRUE(valid_metric_name(base)) << "bad metric name: " << name;
  };
  for (const auto& [name, value] : snap.counters) check(name);
  for (const auto& [name, value] : snap.gauges) check(name);
  for (const auto& row : snap.histograms) check(row.name);
  EXPECT_FALSE(snap.counters.empty());
}

TEST(Exposition, SampleLinesParseAsNameLabelsValue) {
  Registry registry;
  registry.counter("hdiff_a_total").add(3);
  registry.gauge("hdiff_b").set(-7);
  registry.histogram("hdiff_c_micros", {1, 10}).observe(5);
  for (const std::string& line : lines_of(render_prometheus(registry))) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_TRUE(valid_metric_name(sample_name(line))) << line;
    // Exactly one space between series and value.
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_FALSE(line.substr(space + 1).empty()) << line;
  }
}

// ---- HELP / TYPE ----------------------------------------------------------

TEST(Exposition, HelpAndTypeEmittedOncePerFamily) {
  // Two label sets of one counter family plus a labeled gauge family: the
  // family header must appear once, before any of its samples.
  Registry registry;
  registry.help("hdiff_ctrl_total", "control-plane requests");
  registry
      .counter(labeled_name("hdiff_ctrl_total", prom_label("target", "/a")))
      .add(1);
  registry
      .counter(labeled_name("hdiff_ctrl_total", prom_label("target", "/b")))
      .add(2);
  registry.gauge(labeled_name("hdiff_age_ms", prom_label("shard", "0")))
      .set(5);
  registry.gauge(labeled_name("hdiff_age_ms", prom_label("shard", "1")))
      .set(6);

  const std::string text = render_prometheus(registry);
  auto count_prefix = [&](const std::string& prefix) {
    std::size_t n = 0;
    for (const std::string& line : lines_of(text)) {
      if (line.rfind(prefix, 0) == 0) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_prefix("# TYPE hdiff_ctrl_total counter"), 1u) << text;
  EXPECT_EQ(count_prefix("# HELP hdiff_ctrl_total control-plane requests"),
            1u)
      << text;
  EXPECT_EQ(count_prefix("# TYPE hdiff_age_ms gauge"), 1u) << text;
  EXPECT_EQ(count_prefix("hdiff_ctrl_total{target=\"/a\"} 1"), 1u) << text;
  EXPECT_EQ(count_prefix("hdiff_ctrl_total{target=\"/b\"} 2"), 1u) << text;

  // The TYPE line precedes every sample of its family.
  const std::vector<std::string> lines = lines_of(text);
  std::size_t type_at = lines.size(), first_sample_at = lines.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].rfind("# TYPE hdiff_ctrl_total", 0) == 0) type_at = i;
    if (lines[i].rfind("hdiff_ctrl_total{", 0) == 0) {
      first_sample_at = std::min(first_sample_at, i);
    }
  }
  EXPECT_LT(type_at, first_sample_at);
}

TEST(Exposition, HelpFirstRegistrationWins) {
  Registry registry;
  registry.help("hdiff_x_total", "first");
  registry.help("hdiff_x_total", "second");
  registry.counter("hdiff_x_total").add(1);
  const std::string text = render_prometheus(registry);
  EXPECT_NE(text.find("# HELP hdiff_x_total first\n"), std::string::npos);
  EXPECT_EQ(text.find("second"), std::string::npos);
}

// ---- label escaping -------------------------------------------------------

TEST(Exposition, LabelValueEscaping) {
  EXPECT_EQ(prom_escape_label_value("plain"), "plain");
  EXPECT_EQ(prom_escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(prom_escape_label_value("a\nb"), "a\\nb");
  EXPECT_EQ(prom_label("k", "v\"\n\\"), "k=\"v\\\"\\n\\\\\"");
}

TEST(Exposition, HostileLabelValueRendersEscaped) {
  Registry registry;
  registry
      .counter(labeled_name("hdiff_esc_total",
                            prom_label("target", "/x\"y\\z\nw")))
      .add(1);
  const std::string text = render_prometheus(registry);
  EXPECT_NE(
      text.find("hdiff_esc_total{target=\"/x\\\"y\\\\z\\nw\"} 1"),
      std::string::npos)
      << text;
  // No raw newline may survive inside a sample line.
  for (const std::string& line : lines_of(text)) {
    EXPECT_EQ(line.find('\n'), std::string::npos);
  }
}

// ---- histogram bucket invariants ------------------------------------------

TEST(Exposition, HistogramBucketsAreCumulativeAndEndAtInf) {
  Registry registry;
  Histogram& h = registry.histogram("hdiff_lat_micros", {10, 100, 1000});
  for (std::uint64_t v : {1u, 5u, 50u, 500u, 5000u, 50000u}) h.observe(v);

  const std::string text = render_prometheus(registry);
  std::vector<std::uint64_t> bucket_values;
  std::uint64_t count_value = 0;
  bool saw_sum = false, saw_inf = false;
  for (const std::string& line : lines_of(text)) {
    if (line.rfind("hdiff_lat_micros_bucket{", 0) == 0) {
      bucket_values.push_back(
          std::strtoull(line.c_str() + line.rfind(' ') + 1, nullptr, 10));
      if (line.find("le=\"+Inf\"") != std::string::npos) saw_inf = true;
    } else if (line.rfind("hdiff_lat_micros_sum ", 0) == 0) {
      saw_sum = true;
    } else if (line.rfind("hdiff_lat_micros_count ", 0) == 0) {
      count_value =
          std::strtoull(line.c_str() + line.rfind(' ') + 1, nullptr, 10);
    }
  }
  ASSERT_EQ(bucket_values.size(), 4u) << text;  // 3 bounds + +Inf
  EXPECT_TRUE(saw_inf);
  EXPECT_TRUE(saw_sum);
  for (std::size_t i = 1; i < bucket_values.size(); ++i) {
    EXPECT_GE(bucket_values[i], bucket_values[i - 1]) << "not cumulative";
  }
  EXPECT_EQ(bucket_values.back(), count_value) << "+Inf bucket != _count";
  EXPECT_EQ(count_value, 6u);
}

// ---- snapshot / absorb ----------------------------------------------------

TEST(Exposition, AbsorbSumsCountersMergesHistogramsSetsGauges) {
  Registry worker;
  worker.counter("hdiff_cases_total").add(10);
  worker.gauge("hdiff_depth").set(3);
  worker.histogram("hdiff_lat_micros", {10, 100}).observe(7);
  worker.histogram("hdiff_lat_micros").observe(70);
  const Registry::Snapshot snap = worker.snapshot();

  Registry total;
  total.counter("hdiff_cases_total").add(1);
  EXPECT_EQ(total.absorb(snap), 0u);
  EXPECT_EQ(total.absorb(snap), 0u);  // absorb is additive, not idempotent

  const Registry::Snapshot merged = total.snapshot();
  ASSERT_EQ(merged.counters.size(), 1u);
  EXPECT_EQ(merged.counters[0].second, 21u);  // 1 + 10 + 10
  ASSERT_EQ(merged.gauges.size(), 1u);
  EXPECT_EQ(merged.gauges[0].second, 3);
  ASSERT_EQ(merged.histograms.size(), 1u);
  EXPECT_EQ(merged.histograms[0].count, 4u);
  EXPECT_EQ(merged.histograms[0].sum, 154u);
  ASSERT_EQ(merged.histograms[0].buckets.size(), 3u);
  EXPECT_EQ(merged.histograms[0].buckets[0], 2u);   // 7 <= 10, twice
  EXPECT_EQ(merged.histograms[0].buckets[1], 2u);   // 70 <= 100, twice
  EXPECT_EQ(merged.histograms[0].buckets[2], 0u);
}

TEST(Exposition, AbsorbDropsHistogramWithMismatchedBounds) {
  Registry worker;
  worker.histogram("hdiff_lat_micros", {1, 2, 3}).observe(1);
  Registry total;
  total.histogram("hdiff_lat_micros", {10, 100}).observe(5);
  EXPECT_EQ(total.absorb(worker.snapshot()), 1u);
  EXPECT_EQ(total.snapshot().histograms[0].count, 1u);  // unchanged
}

// ---- merged multi-view render ---------------------------------------------

TEST(Exposition, MergedViewsShareOneFamilyHeaderAndStampOriginLabels) {
  Registry total, worker0, worker1;
  total.help("hdiff_cases_total", "cases observed");
  total.counter("hdiff_cases_total").add(30);
  worker0.counter("hdiff_cases_total").add(10);
  worker1.counter("hdiff_cases_total").add(20);
  // An embedded-label series on one origin must merge its labels with the
  // view's (view labels first).
  worker1.counter(labeled_name("hdiff_ctrl_total", prom_label("target", "/s")))
      .add(4);

  const std::string text = render_prometheus({
      {&total, ""},
      {&worker0, "process=\"worker\",shard=\"0\""},
      {&worker1, "process=\"worker\",shard=\"1\""},
  });
  std::size_t type_lines = 0;
  for (const std::string& line : lines_of(text)) {
    if (line.rfind("# TYPE hdiff_cases_total", 0) == 0) ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u) << text;
  EXPECT_NE(text.find("# HELP hdiff_cases_total cases observed"),
            std::string::npos);
  EXPECT_NE(text.find("hdiff_cases_total 30"), std::string::npos);
  EXPECT_NE(
      text.find("hdiff_cases_total{process=\"worker\",shard=\"0\"} 10"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("hdiff_cases_total{process=\"worker\",shard=\"1\"} 20"),
      std::string::npos);
  EXPECT_NE(text.find("hdiff_ctrl_total{process=\"worker\",shard=\"1\","
                      "target=\"/s\"} 4"),
            std::string::npos)
      << text;
}

TEST(Exposition, SingleRegistryRenderIsTheUnlabeledView) {
  Registry registry;
  registry.counter("hdiff_one_total").add(1);
  registry.histogram("hdiff_lat_micros", {10}).observe(3);
  EXPECT_EQ(render_prometheus(registry),
            render_prometheus({{&registry, ""}}));
}

}  // namespace
}  // namespace hdiff::obs
