// Observability wired through the pipeline: findings must be byte-identical
// with obs on and off, every stage/case/hop must be visible in the trace
// and the registry, and the fault path must surface as instants — all
// without the hot path paying for disabled instrumentation.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/hdiff.h"
#include "impls/products.h"
#include "net/fault.h"
#include "obs/obs.h"

namespace hdiff::core {
namespace {

PipelineConfig small_config() {
  PipelineConfig config;
  config.abnf_run_budget = 200;
  config.executor.jobs = 2;
  return config;
}

void expect_identical_findings(const DetectionResult& a,
                               const DetectionResult& b) {
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].impl, b.violations[i].impl);
    EXPECT_EQ(a.violations[i].sr_id, b.violations[i].sr_id);
    EXPECT_EQ(a.violations[i].uuid, b.violations[i].uuid);
    EXPECT_EQ(a.violations[i].detail, b.violations[i].detail);
  }
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].front, b.pairs[i].front);
    EXPECT_EQ(a.pairs[i].back, b.pairs[i].back);
    EXPECT_EQ(a.pairs[i].attack, b.pairs[i].attack);
    EXPECT_EQ(a.pairs[i].uuid, b.pairs[i].uuid);
    EXPECT_EQ(a.pairs[i].detail, b.pairs[i].detail);
  }
  EXPECT_EQ(a.discrepancies.status_disagreements,
            b.discrepancies.status_disagreements);
  EXPECT_EQ(a.discrepancies.inputs_with_discrepancy,
            b.discrepancies.inputs_with_discrepancy);
}

TEST(ObsIntegration, FindingsIdenticalWithObsOnAndOff) {
  PipelineResult plain = Pipeline(small_config()).run();

  obs::Registry registry;
  obs::TraceSink sink;
  PipelineConfig traced_config = small_config();
  traced_config.obs.metrics = &registry;
  traced_config.obs.trace = &sink;
  PipelineResult traced = Pipeline(traced_config).run();

  expect_identical_findings(plain.findings, traced.findings);
  EXPECT_EQ(plain.executed_cases.size(), traced.executed_cases.size());
  EXPECT_GT(sink.event_count(), 0u);
}

TEST(ObsIntegration, EveryStageGetsSpanGaugeAndTiming) {
  obs::Registry registry;
  obs::TraceSink sink;
  PipelineConfig config = small_config();
  config.obs.metrics = &registry;
  config.obs.trace = &sink;
  PipelineResult result = Pipeline(config).run();

  const char* kStages[] = {"analyze",        "translate-srs", "generate-abnf",
                           "assemble-cases", "differential",  "build-matrix"};
  ASSERT_EQ(result.stage_timings.size(), 6u);
  const std::string json = sink.render_chrome_json();
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(result.stage_timings[i].stage, kStages[i]);
    EXPECT_NE(json.find("\"name\":\"" + std::string(kStages[i]) + "\""),
              std::string::npos)
        << kStages[i];
  }
  // Gauge names flatten '-' to '_'.
  EXPECT_GT(registry.gauge("hdiff_stage_analyze_micros").value(), 0);
  EXPECT_GT(registry.gauge("hdiff_stage_differential_micros").value(), 0);
}

TEST(ObsIntegration, ExecutorAndChainMetricsMatchStats) {
  obs::Registry registry;
  PipelineConfig config = small_config();
  config.obs.metrics = &registry;
  PipelineResult result = Pipeline(config).run();
  const ExecutorStats& es = result.exec_stats;

  EXPECT_EQ(registry.counter("hdiff_executor_cases_total").value(), es.cases);
  EXPECT_EQ(registry.counter("hdiff_memo_hits_total").value(), es.memo_hits);
  EXPECT_EQ(registry.counter("hdiff_memo_misses_total").value(),
            es.memo_misses);
  EXPECT_EQ(registry.counter("hdiff_verdict_hits_total").value(),
            es.verdict_hits);
  EXPECT_EQ(static_cast<std::size_t>(registry.gauge("hdiff_memo_bytes").value()),
            es.memo_bytes);
  EXPECT_GT(es.memo_bytes, 0u);
  EXPECT_GT(es.verdict_bytes, 0u);
  // One case span and one whole-observation sample per non-memoized case.
  EXPECT_EQ(registry.histogram("hdiff_executor_case_micros").count(),
            es.cases);
  EXPECT_EQ(registry.histogram("hdiff_chain_observe_micros").count(),
            es.memo_misses);
  // Hop histograms fire per proxy per observed case.
  EXPECT_GT(registry.histogram("hdiff_chain_forward_micros").count(),
            es.memo_misses);
  EXPECT_GT(registry.histogram("hdiff_chain_direct_micros").count(), 0u);
}

TEST(ObsIntegration, CaseAndHopSpansInTrace) {
  obs::Registry registry;
  obs::TraceSink sink;
  PipelineConfig config = small_config();
  config.obs.metrics = &registry;
  config.obs.trace = &sink;
  Pipeline(config).run();
  const std::string json = sink.render_chrome_json();
  EXPECT_NE(json.find("\"name\":\"case\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"send->proxy\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"forward->backend\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"direct\""), std::string::npos);
}

TEST(ObsIntegration, FaultsSurfaceAsInstantsAndCounters) {
  obs::Registry registry;
  obs::TraceSink sink;
  obs::Observability ob{&registry, &sink, nullptr};

  PipelineConfig config = small_config();
  config.obs = ob;
  config.executor.retry.attempts = 64;
  config.executor.retry.backoff_base_ms = 0;
  config.executor.retry.backoff_max_ms = 0;

  auto fleet = impls::make_all_implementations();
  net::FaultPlanConfig plan_config;
  plan_config.rate = 0.05;
  plan_config.max_faults_per_site = 1;
  auto plan = std::make_shared<net::FaultPlan>(plan_config);
  auto faulty = net::wrap_fleet_with_faults(fleet, plan, ob);
  PipelineResult result = Pipeline(config).run(faulty);

  ASSERT_GT(result.exec_stats.faulted_attempts, 0u);
  EXPECT_EQ(registry.counter("hdiff_faults_injected_total").value(),
            plan->stats().injected);
  EXPECT_EQ(registry.counter("hdiff_faulted_attempts_total").value(),
            result.exec_stats.faulted_attempts);
  EXPECT_EQ(registry.counter("hdiff_retry_attempts_total").value(),
            result.exec_stats.retry_attempts);
  const std::string json = sink.render_chrome_json();
  EXPECT_NE(json.find("\"name\":\"fault\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fault-injected\""), std::string::npos);
}

TEST(ObsIntegration, ChainObsFromDisabledBundleIsInactive) {
  obs::Observability off;
  EXPECT_FALSE(off.enabled());
  const obs::ChainObs hooks = obs::ChainObs::from(off);
  EXPECT_FALSE(hooks.active());

  obs::Registry registry;
  obs::Observability metrics_only{&registry, nullptr, nullptr};
  const obs::ChainObs on = obs::ChainObs::from(metrics_only);
  EXPECT_TRUE(on.active());
  EXPECT_NE(on.observe_us, nullptr);
}

}  // namespace
}  // namespace hdiff::core
