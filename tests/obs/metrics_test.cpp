// Metrics registry: sharded counters/histograms must merge exactly, and
// quantile estimation must behave at the edges (empty, single sample,
// overflow bucket) where rank interpolation usually goes wrong.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace hdiff::obs {
namespace {

TEST(Counter, AddAndMerge) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ShardedMergeAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(Histogram, EmptyQuantilesAreZero) {
  Histogram h({10, 100, 1000});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, SingleSample) {
  Histogram h({10, 100, 1000});
  h.observe(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 42u);
  // Every quantile of a one-sample histogram lands in the sample's bucket;
  // q=0 interpolates to the bucket's lower edge, so the range is [10, 100].
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_GE(h.quantile(q), 10.0) << "q=" << q;
    EXPECT_LE(h.quantile(q), 100.0) << "q=" << q;
  }
}

TEST(Histogram, LeBucketSemantics) {
  Histogram h({10, 100});
  h.observe(10);   // == bound: belongs to the le=10 bucket
  h.observe(11);   // first value past the bound
  h.observe(100);
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);  // two finite buckets + overflow
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 0u);
}

TEST(Histogram, OverflowBucketClampsQuantile) {
  Histogram h({10, 100});
  for (int i = 0; i < 100; ++i) h.observe(5000);  // all beyond the last bound
  EXPECT_EQ(h.bucket_counts().back(), 100u);
  // The histogram cannot see past its last finite bound: the estimate
  // clamps there instead of inventing a value.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 100.0);
}

TEST(Histogram, ShardedMergeAcrossThreads) {
  Histogram h({10, 100, 1000});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) h.observe(50);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.sum(), static_cast<std::uint64_t>(kThreads) * kPerThread * 50);
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  EXPECT_EQ(counts[1], static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  Histogram h({0, 100});
  for (int i = 0; i < 100; ++i) h.observe(50);  // all in bucket (0, 100]
  const double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 100.0);
  // Median rank sits mid-bucket: the interpolation must not collapse to an
  // endpoint.
  EXPECT_NEAR(p50, 50.0, 10.0);
}

TEST(Histogram, DefaultLatencyBucketsAreAscending) {
  const std::vector<std::uint64_t> b = Histogram::latency_buckets_us();
  ASSERT_GE(b.size(), 2u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
}

TEST(Registry, StableReferencesAndFindOrCreate) {
  Registry r;
  Counter& a = r.counter("hdiff_test_total");
  a.add(3);
  Counter& b = r.counter("hdiff_test_total");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  Histogram& h1 = r.histogram("hdiff_test_micros", {1, 2, 3});
  Histogram& h2 = r.histogram("hdiff_test_micros", {9});  // bounds ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 3u);
}

TEST(Registry, SnapshotSortedByName) {
  Registry r;
  r.counter("z_total").add(1);
  r.counter("a_total").add(2);
  r.gauge("m_gauge").set(5);
  r.histogram("h_micros", {10, 100}).observe(7);
  const Registry::Snapshot snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a_total");
  EXPECT_EQ(snap.counters[1].first, "z_total");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].sum, 7u);
}

TEST(Prometheus, RendersAllInstrumentKinds) {
  Registry r;
  r.counter("hdiff_cases_total").add(5);
  r.gauge("hdiff_jobs").set(8);
  Histogram& h = r.histogram("hdiff_lat_micros", {10, 100});
  h.observe(5);
  h.observe(50);
  h.observe(5000);  // overflow
  const std::string text = render_prometheus(r);
  EXPECT_NE(text.find("# TYPE hdiff_cases_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("hdiff_cases_total 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hdiff_jobs gauge\n"), std::string::npos);
  EXPECT_NE(text.find("hdiff_jobs 8\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hdiff_lat_micros histogram\n"),
            std::string::npos);
  // Buckets are cumulative (le=100 includes le=10) and end at +Inf == count.
  EXPECT_NE(text.find("hdiff_lat_micros_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("hdiff_lat_micros_bucket{le=\"100\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("hdiff_lat_micros_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("hdiff_lat_micros_sum 5055\n"), std::string::npos);
  EXPECT_NE(text.find("hdiff_lat_micros_count 3\n"), std::string::npos);
}

}  // namespace
}  // namespace hdiff::obs
