// The serve flight recorder: line render/parse round-trips, the bounded
// in-memory ring, persistence with seq continuity across recorder
// generations (torn tails tolerated, oversized files compacted), the
// /events JSON delta shape — and the ManualClock contract of the
// heartbeat-age tracker that feeds /status and the per-shard gauges.
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "serve/flight.h"
#include "serve/introspect.h"

namespace hdiff::serve {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const fs::path dir = fs::temp_directory_path() /
                       ("hdiff-flight-test-" + std::to_string(::getpid()) +
                        "-" + tag + "-" + std::to_string(counter++));
  fs::remove_all(dir);
  return dir.string();
}

std::size_t file_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) ++n;
  return n;
}

// ---- line format ----------------------------------------------------------

TEST(FlightEventLine, RenderParseRoundTrip) {
  FlightEvent event;
  event.seq = 42;
  event.ts_ms = 123456;
  event.kind = "worker_death";
  event.round = 3;
  event.shard = 1;
  event.detail = "consecutive 2, with spaces\nand a newline";
  FlightEvent back;
  ASSERT_TRUE(parse_flight_event(render_flight_event(event), &back));
  EXPECT_EQ(back.seq, event.seq);
  EXPECT_EQ(back.ts_ms, event.ts_ms);
  EXPECT_EQ(back.kind, event.kind);
  EXPECT_EQ(back.round, event.round);
  EXPECT_EQ(back.shard, event.shard);
  EXPECT_EQ(back.detail, event.detail);
}

TEST(FlightEventLine, NoneIndicesAndEmptyDetailRoundTrip) {
  FlightEvent event;
  event.seq = 1;
  event.kind = "drain";
  FlightEvent back;
  ASSERT_TRUE(parse_flight_event(render_flight_event(event), &back));
  EXPECT_EQ(back.round, FlightEvent::kNone);
  EXPECT_EQ(back.shard, FlightEvent::kNone);
  EXPECT_TRUE(back.detail.empty());
}

TEST(FlightEventLine, MalformedLinesAreRejected) {
  FlightEvent out;
  EXPECT_FALSE(parse_flight_event("", &out));
  EXPECT_FALSE(parse_flight_event("garbage", &out));
  EXPECT_FALSE(parse_flight_event("ev=", &out));
  EXPECT_FALSE(parse_flight_event("ev=1 2 6b696e64 -", &out));  // 4 tokens
  // seq 0 is reserved (a parse of zero also means "no number here").
  FlightEvent zero;
  zero.kind = "x";
  EXPECT_FALSE(parse_flight_event(render_flight_event(zero), &out));
  // A torn tail: any strict prefix of a valid line must not parse.
  FlightEvent event;
  event.seq = 7;
  event.kind = "spawn";
  event.detail = "pid 1234";
  const std::string full = render_flight_event(event);
  for (std::size_t len = 0; len < full.size(); ++len) {
    FlightEvent torn;
    if (parse_flight_event(full.substr(0, len), &torn)) {
      // A prefix that still has 6 decodable tokens may parse; it must then
      // at least carry the correct seq (hex-encoded fields reject torn
      // bytes, so only whole-token truncation can slip through).
      EXPECT_EQ(torn.seq, event.seq) << "prefix len " << len;
    }
  }
}

// ---- ring + persistence ---------------------------------------------------

TEST(FlightRecorder, RingIsBoundedAndSinceFilters) {
  const std::string dir = fresh_dir("ring");
  FlightRecorder recorder(dir, nullptr, 4);
  recorder.load();
  for (int i = 0; i < 10; ++i) {
    recorder.record("round_commit", static_cast<std::size_t>(i));
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.next_seq(), 11u);
  const std::vector<FlightEvent> all = recorder.events_since(0);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all.front().seq, 7u);  // oldest surviving
  EXPECT_EQ(all.back().seq, 10u);
  // since is exclusive: seq > since.
  EXPECT_EQ(recorder.events_since(8).size(), 2u);
  EXPECT_EQ(recorder.events_since(10).size(), 0u);
  fs::remove_all(dir);
}

TEST(FlightRecorder, SeqContinuesAcrossGenerations) {
  const std::string dir = fresh_dir("gen");
  {
    FlightRecorder first(dir);
    first.load();
    first.record("start");
    first.record("spawn", 0, 1, "pid 100");
    first.record("drain", 1);
  }
  FlightRecorder second(dir);
  second.load();
  EXPECT_EQ(second.next_seq(), 4u);
  EXPECT_EQ(second.size(), 3u);
  second.record("resume", 1);
  const std::vector<FlightEvent> events = second.events_since(0);
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 1);  // strictly increasing, no reuse
  }
  EXPECT_EQ(events.back().kind, "resume");
  fs::remove_all(dir);
}

TEST(FlightRecorder, TornTailLineIsSkippedOnLoad) {
  const std::string dir = fresh_dir("torn");
  {
    FlightRecorder recorder(dir);
    recorder.load();
    recorder.record("start");
    recorder.record("spawn", 0, 0, "pid 42");
  }
  {
    // Simulate a crash mid-append: a partial final line.
    std::ofstream out(FlightRecorder::path(dir),
                      std::ios::binary | std::ios::app);
    out << "ev=3 999";  // no newline, not enough tokens
  }
  FlightRecorder recorder(dir);
  recorder.load();
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.next_seq(), 3u);  // the torn event never existed
  recorder.record("restart", 0, 0);
  EXPECT_EQ(recorder.events_since(0).back().seq, 3u);
  fs::remove_all(dir);
}

TEST(FlightRecorder, LoadCompactsAFileGrownFarPastCapacity) {
  const std::string dir = fresh_dir("compact");
  {
    FlightRecorder recorder(dir, nullptr, 2);
    recorder.load();
    for (int i = 0; i < 20; ++i) recorder.record("spawn", 0, 0);
  }
  EXPECT_EQ(file_lines(FlightRecorder::path(dir)), 20u);
  FlightRecorder recorder(dir, nullptr, 2);
  recorder.load();  // 20 lines > 4 * capacity: rewrites from the ring
  EXPECT_EQ(file_lines(FlightRecorder::path(dir)), 2u);
  EXPECT_EQ(recorder.next_seq(), 21u);  // numbering unaffected by compaction
  fs::remove_all(dir);
}

TEST(FlightRecorder, EventsJsonShape) {
  const std::string dir = fresh_dir("json");
  obs::ManualClock clock;
  clock.advance_us(5000);  // 5 ms
  FlightRecorder recorder(dir, &clock);
  recorder.load();
  recorder.record("start");
  recorder.record("spawn", 2, 1, "pid 77");

  const std::string all = recorder.events_json(0);
  EXPECT_NE(all.find("\"next_seq\":3"), std::string::npos) << all;
  EXPECT_NE(all.find("{\"seq\":1,\"ts_ms\":5,\"kind\":\"start\"}"),
            std::string::npos)
      << all;  // kNone round/shard and empty detail are omitted
  EXPECT_NE(all.find("{\"seq\":2,\"ts_ms\":5,\"kind\":\"spawn\",\"round\":2,"
                     "\"shard\":1,\"detail\":\"pid 77\"}"),
            std::string::npos)
      << all;
  // Delta poll: only events after the cursor.
  const std::string delta = recorder.events_json(1);
  EXPECT_EQ(delta.find("\"kind\":\"start\""), std::string::npos);
  EXPECT_NE(delta.find("\"kind\":\"spawn\""), std::string::npos);
  EXPECT_EQ(recorder.events_json(2).find("\"seq\""), std::string::npos);
  fs::remove_all(dir);
}

// ---- heartbeat tracker ----------------------------------------------------

TEST(HeartbeatTracker, AgeTracksTheInjectedClock) {
  obs::ManualClock clock;
  obs::Registry registry;
  HeartbeatTracker tracker(&registry, &clock, 2);

  // No beats yet: both shards report "no live worker".
  EXPECT_EQ(tracker.age_ms(0), -1);
  EXPECT_EQ(tracker.age_ms(1), -1);

  tracker.beat(0);
  EXPECT_EQ(tracker.age_ms(0), 0);
  clock.advance_us(2500);
  EXPECT_EQ(tracker.age_ms(0), 2);  // integer milliseconds
  EXPECT_EQ(tracker.age_ms(1), -1);

  tracker.beat(0);
  EXPECT_EQ(tracker.age_ms(0), 0);  // a beat resets the age

  clock.advance_us(7000);
  tracker.publish();
  const obs::Registry::Snapshot snap = registry.snapshot();
  std::int64_t shard0 = -99, shard1 = -99;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "hdiff_serve_heartbeat_age_ms{shard=\"0\"}") shard0 = value;
    if (name == "hdiff_serve_heartbeat_age_ms{shard=\"1\"}") shard1 = value;
  }
  EXPECT_EQ(shard0, 7);
  EXPECT_EQ(shard1, -1);

  tracker.clear(0);
  EXPECT_EQ(tracker.age_ms(0), -1);
  tracker.publish();
  for (const auto& [name, value] : registry.snapshot().gauges) {
    if (name == "hdiff_serve_heartbeat_age_ms{shard=\"0\"}") {
      EXPECT_EQ(value, -1);
    }
  }
}

TEST(HeartbeatTracker, WorksWithoutARegistry) {
  obs::ManualClock clock;
  HeartbeatTracker tracker(nullptr, &clock, 1);
  tracker.beat(0);
  clock.advance_us(3000);
  EXPECT_EQ(tracker.age_ms(0), 3);
  tracker.publish();  // must be a no-op, not a crash
}

}  // namespace
}  // namespace hdiff::serve
