// The `hdiff serve` layer: deterministic shard assignment, durable shard
// result files (torn/stale rejection, hole detection on merge), the
// control-plane HTTP pump, and the supervisor itself — in-process shards
// byte-identical to the single-process engine, and a permanently-crashing
// worker binary degraded into quarantined inline execution without losing
// the round.
#include "serve/supervisor.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/engine.h"
#include "campaign/shard.h"
#include "campaign/store.h"
#include "core/probes.h"
#include "impls/products.h"
#include "net/event_loop.h"
#include "net/tcp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/flight.h"
#include "serve/introspect.h"
#include "serve/worker.h"

namespace hdiff::serve {
namespace {

namespace fs = std::filesystem;
using campaign::CaseOutcome;
using campaign::PlannedCase;
using campaign::ShardResult;

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const fs::path dir = fs::temp_directory_path() /
                       ("hdiff-serve-test-" + std::to_string(::getpid()) +
                        "-" + tag + "-" + std::to_string(counter++));
  fs::remove_all(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---- shard assignment -----------------------------------------------------

TEST(Shard, AssignmentIsDeterministicAndInRange) {
  for (std::size_t shards : {1u, 2u, 4u, 7u}) {
    for (int i = 0; i < 64; ++i) {
      const std::string raw = "GET /case" + std::to_string(i) + " HTTP/1.1";
      const std::size_t s = campaign::shard_of(raw, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, campaign::shard_of(raw, shards));  // pure function
    }
  }
  // shards == 0 must not divide by zero; it means "one shard".
  EXPECT_EQ(campaign::shard_of("x", 0), 0u);
}

TEST(Shard, AssignmentActuallySpreadsCases) {
  std::vector<std::size_t> hits(4, 0);
  for (int i = 0; i < 256; ++i) {
    ++hits[campaign::shard_of("case-" + std::to_string(i), 4)];
  }
  for (std::size_t k = 0; k < 4; ++k) EXPECT_GT(hits[k], 0u) << "shard " << k;
}

TEST(Shard, IndicesPartitionThePlan) {
  std::vector<PlannedCase> planned(32);
  for (std::size_t i = 0; i < planned.size(); ++i) {
    planned[i].tc.raw = "GET /p" + std::to_string(i) + " HTTP/1.1\r\n\r\n";
  }
  const std::size_t shards = 4;
  std::vector<bool> owned(planned.size(), false);
  for (std::size_t k = 0; k < shards; ++k) {
    std::size_t prev = 0;
    bool first = true;
    for (std::size_t idx : campaign::shard_indices(planned, k, shards)) {
      ASSERT_LT(idx, planned.size());
      EXPECT_FALSE(owned[idx]) << "index " << idx << " owned twice";
      owned[idx] = true;
      if (!first) EXPECT_GT(idx, prev) << "indices not ascending";
      prev = idx;
      first = false;
    }
  }
  for (std::size_t i = 0; i < planned.size(); ++i) {
    EXPECT_TRUE(owned[i]) << "index " << i << " owned by no shard";
  }
}

// ---- shard result files ---------------------------------------------------

ShardResult sample_result() {
  ShardResult result;
  result.round = 3;
  result.shard = 1;
  result.shards = 4;
  result.config_sig = "sig-abc";
  result.faulted_attempts = 5;
  result.retry_attempts = 4;
  result.recovered_cases = 2;
  result.quarantined_cases = 1;
  CaseOutcome hit;
  hit.executed = true;
  campaign::Signature sig;
  sig.detector = "HRS";
  sig.vector = {"apache->nginx", "with \x01 bytes\n"};
  hit.signatures.push_back(sig);
  result.outcomes[2] = hit;
  CaseOutcome quarantined;
  quarantined.executed = true;
  quarantined.quarantined = true;
  result.outcomes[7] = quarantined;
  // Observability sections: a worker registry snapshot (counter, gauge,
  // histogram with full bucket detail) and a trace buffer with hostile
  // bytes in every string field.
  result.metrics.counters = {{"hdiff_campaign_cases_total", 12}};
  result.metrics.gauges = {{"hdiff_depth", -3}};
  obs::Registry::HistogramRow row;
  row.name = "hdiff_chain_observe_micros";
  row.count = 4;
  row.sum = 1234;
  row.bounds = {10, 100};
  row.buckets = {1, 2, 1};
  result.metrics.histograms.push_back(row);
  result.trace_pid = 4242;
  obs::TraceEvent span;
  span.ph = 'X';
  span.tid = 2;
  span.ts = 1000;
  span.dur = 50;
  span.name = "worker:execute_round";
  span.cat = "serve";
  span.arg_key = "shard";
  span.arg_value = "1/4 round 3\r\nwith ctl bytes";
  result.trace.push_back(span);
  obs::TraceEvent instant;
  instant.ph = 'i';
  instant.tid = 0;
  instant.ts = 2000;
  instant.dur = 0;
  instant.name = "note";
  instant.cat = "";
  result.trace.push_back(instant);
  return result;
}

TEST(ShardResult, RenderParseRoundTrip) {
  const ShardResult result = sample_result();
  ShardResult back;
  ASSERT_TRUE(campaign::parse_shard_result(
      campaign::render_shard_result(result), &back));
  EXPECT_EQ(back.round, result.round);
  EXPECT_EQ(back.shard, result.shard);
  EXPECT_EQ(back.shards, result.shards);
  EXPECT_EQ(back.config_sig, result.config_sig);
  EXPECT_EQ(back.faulted_attempts, result.faulted_attempts);
  EXPECT_EQ(back.retry_attempts, result.retry_attempts);
  EXPECT_EQ(back.recovered_cases, result.recovered_cases);
  EXPECT_EQ(back.quarantined_cases, result.quarantined_cases);
  ASSERT_EQ(back.outcomes.size(), result.outcomes.size());
  EXPECT_TRUE(back.outcomes.at(7).quarantined);
  ASSERT_EQ(back.outcomes.at(2).signatures.size(), 1u);
  EXPECT_EQ(back.outcomes.at(2).signatures[0].detector, "HRS");
  EXPECT_EQ(back.outcomes.at(2).signatures[0].vector,
            result.outcomes.at(2).signatures[0].vector);
  // Observability sections round-trip losslessly.
  EXPECT_EQ(back.metrics.counters, result.metrics.counters);
  EXPECT_EQ(back.metrics.gauges, result.metrics.gauges);
  ASSERT_EQ(back.metrics.histograms.size(), 1u);
  EXPECT_EQ(back.metrics.histograms[0].name, "hdiff_chain_observe_micros");
  EXPECT_EQ(back.metrics.histograms[0].count, 4u);
  EXPECT_EQ(back.metrics.histograms[0].sum, 1234u);
  EXPECT_EQ(back.metrics.histograms[0].bounds, result.metrics.histograms[0].bounds);
  EXPECT_EQ(back.metrics.histograms[0].buckets,
            result.metrics.histograms[0].buckets);
  EXPECT_EQ(back.trace_pid, 4242u);
  ASSERT_EQ(back.trace.size(), 2u);
  EXPECT_EQ(back.trace[0].ph, 'X');
  EXPECT_EQ(back.trace[0].tid, 2u);
  EXPECT_EQ(back.trace[0].ts, 1000u);
  EXPECT_EQ(back.trace[0].dur, 50u);
  EXPECT_EQ(back.trace[0].name, "worker:execute_round");
  EXPECT_EQ(back.trace[0].arg_value, result.trace[0].arg_value);
  EXPECT_EQ(back.trace[1].ph, 'i');
  EXPECT_TRUE(back.trace[1].cat.empty());
}

TEST(ShardResult, ObsSectionsAreOptionalAndOldFilesStillParse) {
  // A result with no metrics/trace (obs off, or written by an older
  // worker) renders without the m*/t* lines and parses to empty sections.
  ShardResult plain;
  plain.config_sig = "s";
  CaseOutcome done;
  done.executed = true;
  plain.outcomes[0] = done;
  const std::string rendered = campaign::render_shard_result(plain);
  EXPECT_EQ(rendered.find("mc="), std::string::npos);
  EXPECT_EQ(rendered.find("tev="), std::string::npos);
  ShardResult back;
  ASSERT_TRUE(campaign::parse_shard_result(rendered, &back));
  EXPECT_TRUE(back.metrics.counters.empty());
  EXPECT_TRUE(back.metrics.histograms.empty());
  EXPECT_TRUE(back.trace.empty());
  EXPECT_EQ(back.trace_pid, 0u);
}

TEST(ShardResult, EveryTruncationIsRejected) {
  const std::string full = campaign::render_shard_result(sample_result());
  ShardResult out;
  ASSERT_TRUE(campaign::parse_shard_result(full, &out));
  // A durable rename makes torn *files* impossible, but a stray partial
  // write must still never parse: chop at every byte boundary.
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_FALSE(
        campaign::parse_shard_result(full.substr(0, len), &out))
        << "prefix of " << len << " bytes parsed as a complete result";
  }
  EXPECT_FALSE(campaign::parse_shard_result("", &out));
  EXPECT_FALSE(campaign::parse_shard_result("garbage\n", &out));
}

TEST(ShardResult, LoadValidatesPlanIdentity) {
  const std::string dir = fresh_dir("result-identity");
  const ShardResult result = sample_result();
  ASSERT_TRUE(campaign::write_shard_result(dir, result));

  ShardResult out;
  EXPECT_TRUE(campaign::load_shard_result(dir, 3, 1, 4, "sig-abc", &out));
  // Any mismatch in the plan identity header is a stale daemon generation.
  EXPECT_FALSE(campaign::load_shard_result(dir, 2, 1, 4, "sig-abc", &out));
  EXPECT_FALSE(campaign::load_shard_result(dir, 3, 1, 8, "sig-abc", &out));
  EXPECT_FALSE(campaign::load_shard_result(dir, 3, 1, 4, "sig-xyz", &out));
  // Missing file.
  EXPECT_FALSE(campaign::load_shard_result(dir, 3, 0, 4, "sig-abc", &out));
  fs::remove_all(dir);
}

TEST(ShardResult, MergeRejectsHoles) {
  ShardResult a;
  a.shards = 2;
  CaseOutcome done;
  done.executed = true;
  a.outcomes[0] = done;
  a.outcomes[2] = done;
  ShardResult b;
  b.shard = 1;
  b.shards = 2;
  b.outcomes[1] = done;

  std::vector<CaseOutcome> merged;
  std::size_t missing = 0;
  EXPECT_TRUE(campaign::merge_shard_outcomes({a, b}, 3, &merged, &missing));
  ASSERT_EQ(merged.size(), 3u);
  for (const CaseOutcome& outcome : merged) EXPECT_TRUE(outcome.executed);

  // Planned index 3 executed by no shard: the merge must name the hole
  // instead of letting integrate_round see an unexecuted outcome.
  EXPECT_FALSE(campaign::merge_shard_outcomes({a, b}, 4, &merged, &missing));
  EXPECT_EQ(missing, 3u);
}

// ---- control-plane HTTP pump ----------------------------------------------

/// Pumps `loop` on this thread while `client` runs a blocking roundtrip.
std::string pump_roundtrip(net::ServeLoop& loop, std::uint16_t port,
                           const std::string& request) {
  net::TcpResult result;
  std::atomic<bool> done{false};
  std::thread client([&] {
    result = net::tcp_roundtrip(port, request, 2000);
    done.store(true);
  });
  while (!done.load()) loop.poll_once(5);
  client.join();
  return result.bytes;
}

TEST(ServeLoop, DispatchesRequestToHandler) {
  net::TcpListener listener;
  net::ServeLoop loop(listener, [](const net::ControlRequest& request) {
    net::ControlResponse response;
    response.body = request.method + " " + request.target;
    return response;
  });
  const std::string reply = pump_roundtrip(
      loop, listener.port(),
      "GET /healthz HTTP/1.1\r\nHost: c\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos) << reply;
  EXPECT_NE(reply.find("Connection: close"), std::string::npos);
  EXPECT_NE(reply.find("GET /healthz"), std::string::npos);
  EXPECT_EQ(loop.requests_handled(), 1u);
  EXPECT_EQ(loop.requests_rejected(), 0u);
}

TEST(ServeLoop, DeliversPostBodyByContentLength) {
  net::TcpListener listener;
  net::ServeLoop loop(listener, [](const net::ControlRequest& request) {
    net::ControlResponse response;
    response.status = 202;
    response.body = "got:" + request.body;
    return response;
  });
  const std::string reply = pump_roundtrip(
      loop, listener.port(),
      "POST /campaigns/default/stop HTTP/1.1\r\nContent-Length: 5\r\n\r\n"
      "drain");
  EXPECT_NE(reply.find("HTTP/1.1 202 Accepted"), std::string::npos) << reply;
  EXPECT_NE(reply.find("got:drain"), std::string::npos);
}

TEST(ServeLoop, MalformedRequestIs400NotACrash) {
  net::TcpListener listener;
  net::ServeLoop loop(listener, [](const net::ControlRequest&) {
    return net::ControlResponse{};
  });
  const std::string reply =
      pump_roundtrip(loop, listener.port(), "garbage\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 400 Bad Request"), std::string::npos)
      << reply;
  EXPECT_EQ(loop.requests_handled(), 0u);
  EXPECT_EQ(loop.requests_rejected(), 1u);
}

TEST(ServeLoop, OversizedRequestIs413) {
  net::TcpListener listener;
  net::ServeLoopConfig config;
  config.max_request_bytes = 128;
  net::ServeLoop loop(
      listener,
      [](const net::ControlRequest&) { return net::ControlResponse{}; },
      config);
  const std::string reply = pump_roundtrip(
      loop, listener.port(),
      "GET /" + std::string(256, 'a') + " HTTP/1.1\r\n\r\n");
  EXPECT_NE(reply.find("413"), std::string::npos) << reply;
  EXPECT_EQ(loop.requests_rejected(), 1u);
}

TEST(ServeLoop, HandlerExceptionIs500) {
  net::TcpListener listener;
  net::ServeLoop loop(listener, [](const net::ControlRequest&)
                                    -> net::ControlResponse {
    throw std::runtime_error("handler bug");
  });
  const std::string reply = pump_roundtrip(
      loop, listener.port(), "GET /boom HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 500"), std::string::npos) << reply;
}

// ---- supervisor -----------------------------------------------------------

campaign::CampaignConfig small_campaign(const std::string& dir) {
  campaign::CampaignConfig config;
  config.state_dir = dir;
  config.rounds = 1;
  config.budget_per_round = 8;
  config.executor.jobs = 1;
  config.bootstrap = core::verification_probes();
  return config;
}

TEST(Supervisor, InProcessShardsMatchSingleProcessEngineByteForByte) {
  const auto fleet = impls::make_all_implementations();

  const std::string ref_dir = fresh_dir("sup-ref");
  campaign::CampaignEngine engine(small_campaign(ref_dir));
  const campaign::CampaignReport ref = engine.run(fleet);
  ASSERT_TRUE(ref.error.empty()) << ref.error;

  const std::string serve_dir = fresh_dir("sup-serve");
  ServeConfig config;
  config.campaign = small_campaign(serve_dir);
  config.shards = 3;
  // Empty worker binary = every shard executes inline in the supervisor —
  // the pure merge/integrate path with no process management noise.
  config.worker_binary.clear();
  Supervisor supervisor(config, fleet);
  EXPECT_GT(supervisor.port(), 0);
  const ServeReport report = supervisor.run();
  ASSERT_TRUE(report.error.empty()) << report.error;
  EXPECT_EQ(report.rounds_run, 2u);  // bootstrap + 1 mutation round
  EXPECT_FALSE(report.drained);

  const campaign::StateStore ref_store(ref_dir), serve_store(serve_dir);
  EXPECT_EQ(slurp(ref_store.state_path()), slurp(serve_store.state_path()));
  EXPECT_EQ(slurp(ref_store.findings_path()),
            slurp(serve_store.findings_path()));
  fs::remove_all(ref_dir);
  fs::remove_all(serve_dir);
}

TEST(Supervisor, CrashOnlyWorkerIsQuarantinedAndTheRoundStillCompletes) {
  const auto fleet = impls::make_all_implementations();

  const std::string ref_dir = fresh_dir("quar-ref");
  campaign::CampaignEngine engine(small_campaign(ref_dir));
  ASSERT_TRUE(engine.run(fleet).error.empty());

  const std::string serve_dir = fresh_dir("quar-serve");
  ServeConfig config;
  config.campaign = small_campaign(serve_dir);
  config.shards = 2;
  // A worker that always exits 1 without publishing a result: every spawn
  // is a death, every shard ends up quarantined, and the supervisor must
  // finish the campaign inline anyway.
  config.worker_binary = "/bin/false";
  config.heartbeat_interval_ms = 40;
  config.quarantine_after = 2;
  Supervisor supervisor(config, fleet);
  const ServeReport report = supervisor.run();
  ASSERT_TRUE(report.error.empty()) << report.error;
  EXPECT_GE(report.worker_deaths, 2u);
  EXPECT_GE(report.quarantined_shards, 1u);
  EXPECT_GE(report.worker_restarts, 1u);

  const campaign::StateStore ref_store(ref_dir), serve_store(serve_dir);
  EXPECT_EQ(slurp(ref_store.state_path()), slurp(serve_store.state_path()));
  EXPECT_EQ(slurp(ref_store.findings_path()),
            slurp(serve_store.findings_path()));
  fs::remove_all(ref_dir);
  fs::remove_all(serve_dir);
}

TEST(Supervisor, LeftoverShardResultIsReusedNotReexecuted) {
  const auto fleet = impls::make_all_implementations();
  const std::string dir = fresh_dir("leftover");

  // Build a committed round-0 checkpoint, then plan round 1 and pre-write
  // every shard's result — simulating a supervisor killed after all workers
  // published but before the merge committed.
  {
    ServeConfig config;
    config.campaign = small_campaign(dir);
    config.campaign.rounds = 0;  // commit only the bootstrap round
    Supervisor supervisor(config, fleet);
    ASSERT_TRUE(supervisor.run().error.empty());
  }
  campaign::CampaignConfig campaign_config = small_campaign(dir);
  const std::string sig = campaign::campaign_config_sig(campaign_config);
  {
    campaign::StateStore store(dir);
    ASSERT_TRUE(store.load_readonly());
    ASSERT_EQ(store.rounds_completed, 1u);
    campaign::RoundPlan plan =
        campaign::plan_round(store, campaign_config, 1);
    net::Chain chain = net::Chain::from_fleet(fleet);
    core::ObservationMemo memo;
    net::VerdictCache verdicts;
    for (std::size_t k = 0; k < 2; ++k) {
      const std::vector<std::size_t> mine =
          campaign::shard_indices(plan.cases, k, 2);
      campaign::ExecutedRound executed = campaign::execute_round(
          campaign_config, chain, plan.cases, &memo, &verdicts, &mine);
      ShardResult result;
      result.round = 1;
      result.shard = k;
      result.shards = 2;
      result.config_sig = sig;
      for (std::size_t idx : mine) result.outcomes[idx] = executed.outcomes[idx];
      ASSERT_TRUE(campaign::write_shard_result(dir, result));
    }
  }

  ServeConfig config;
  config.campaign = small_campaign(dir);
  config.shards = 2;
  // No worker binary and no quarantine tolerance needed: if the leftover
  // results are adopted, zero shard executions happen at all.
  Supervisor supervisor(config, fleet);
  const ServeReport report = supervisor.run();
  ASSERT_TRUE(report.error.empty()) << report.error;
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.reused_shard_results, 2u);

  // Same bytes as an uninterrupted single-process run.
  const std::string ref_dir = fresh_dir("leftover-ref");
  campaign::CampaignEngine engine(small_campaign(ref_dir));
  ASSERT_TRUE(engine.run(fleet).error.empty());
  const campaign::StateStore ref_store(ref_dir), got_store(dir);
  EXPECT_EQ(slurp(ref_store.state_path()), slurp(got_store.state_path()));
  EXPECT_EQ(slurp(ref_store.findings_path()), slurp(got_store.findings_path()));
  fs::remove_all(dir);
  fs::remove_all(ref_dir);
}

// ---- cross-process observability ------------------------------------------

/// Run an in-process supervisor with `shards` shards, absorbing every
/// shard's scratch registry into `fleet_metrics`.
ServeReport run_observed(const std::string& dir, std::size_t shards,
                         obs::Registry* registry, FleetMetrics* fleet_metrics,
                         obs::TraceSink* sink,
                         const std::vector<std::unique_ptr<
                             impls::HttpImplementation>>& fleet) {
  ServeConfig config;
  config.campaign = small_campaign(dir);
  config.shards = shards;
  config.obs.metrics = registry;
  config.obs.trace = sink;
  config.campaign.obs.metrics = registry;
  config.fleet = fleet_metrics;
  Supervisor supervisor(config, fleet);
  return supervisor.run();
}

std::uint64_t counter_of(const obs::Registry& registry,
                         const std::string& name) {
  for (const auto& [n, v] : registry.snapshot().counters) {
    if (n == name) return v;
  }
  return 0;
}

std::uint64_t hist_count_of(const obs::Registry& registry,
                            const std::string& name) {
  for (const auto& row : registry.snapshot().histograms) {
    if (row.name == name) return row.count;
  }
  return 0;
}

TEST(Supervisor, MergedMetricTotalsAreShardCountInvariant) {
  const auto fleet = impls::make_all_implementations();

  // Shard-scoped memo/verdict caches mean every shard observes each of its
  // cases exactly once, and duplicate raws hash to one shard at any shard
  // count — so the merged chain-observation count must not depend on the
  // split, and campaign counters (emitted supervisor-side from the same
  // byte-identical integration) must match exactly.
  const std::string dir_a = fresh_dir("obs-1shard");
  obs::Registry reg_a;
  FleetMetrics fleet_a(&reg_a);
  obs::TraceSink sink_a;
  ASSERT_TRUE(
      run_observed(dir_a, 1, &reg_a, &fleet_a, &sink_a, fleet).error.empty());

  const std::string dir_b = fresh_dir("obs-3shard");
  obs::Registry reg_b;
  FleetMetrics fleet_b(&reg_b);
  obs::TraceSink sink_b;
  ASSERT_TRUE(
      run_observed(dir_b, 3, &reg_b, &fleet_b, &sink_b, fleet).error.empty());

  const std::uint64_t observed_a =
      hist_count_of(reg_a, "hdiff_chain_observe_micros");
  EXPECT_GT(observed_a, 0u);
  EXPECT_EQ(observed_a, hist_count_of(reg_b, "hdiff_chain_observe_micros"));
  for (const char* name :
       {"hdiff_campaign_rounds_total", "hdiff_campaign_cases_total",
        "hdiff_campaign_novel_total", "hdiff_campaign_duplicate_total"}) {
    EXPECT_EQ(counter_of(reg_a, name), counter_of(reg_b, name)) << name;
  }

  // The merged exposition carries the per-origin breakdown, and the
  // stitched trace has one labeled track per inline "worker" plus the
  // supervisor's own.
  const std::string exposition = fleet_b.render();
  EXPECT_NE(exposition.find("process=\"worker\",shard=\"all\""),
            std::string::npos);
  EXPECT_NE(exposition.find("process=\"worker\",shard=\"2\""),
            std::string::npos);
  const std::string trace = sink_b.render_chrome_json();
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  EXPECT_NE(trace.find("worker shard"), std::string::npos);

  fs::remove_all(dir_a);
  fs::remove_all(dir_b);
}

TEST(Supervisor, FlightRecorderPersistsTheRunLifecycle) {
  const auto fleet = impls::make_all_implementations();
  const std::string dir = fresh_dir("flight-lifecycle");
  {
    ServeConfig config;
    config.campaign = small_campaign(dir);
    config.shards = 2;
    Supervisor supervisor(config, fleet);
    ASSERT_TRUE(supervisor.run().error.empty());
  }
  FlightRecorder recorder(dir);
  recorder.load();
  const std::vector<FlightEvent> events = recorder.events_since(0);
  ASSERT_FALSE(events.empty());
  std::uint64_t prev = 0;
  bool saw_start = false, saw_commit = false;
  for (const FlightEvent& event : events) {
    EXPECT_GT(event.seq, prev);
    prev = event.seq;
    if (event.kind == "start") saw_start = true;
    if (event.kind == "round_commit") saw_commit = true;
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_commit);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hdiff::serve
