// SR translator, ABNF test generation, mutation engine, and probes.
#include <gtest/gtest.h>

#include "core/abnf_testgen.h"
#include "core/analyzer.h"
#include "core/mutation.h"
#include "core/probes.h"
#include "core/translator.h"
#include "http/lexer.h"

namespace hdiff::core {
namespace {

const AnalyzerResult& analysis() {
  static const AnalyzerResult kResult = [] {
    DocumentationAnalyzer analyzer;
    return analyzer.analyze({"rfc7230", "rfc7231"});
  }();
  return kResult;
}

// ---------------------------------------------------------------------------
// Mutation engine
// ---------------------------------------------------------------------------

TEST(Mutation, ProducesDistinctSingleStepMutants) {
  http::RequestSpec seed = http::make_post("h1.com", "/", "abc");
  MutationOptions options;
  options.max_mutants = 200;
  auto mutants = mutate(seed, options);
  ASSERT_FALSE(mutants.empty());
  std::set<std::string> wires;
  for (const auto& m : mutants) {
    EXPECT_EQ(m.applied.size(), 1u);
    wires.insert(m.spec.to_wire());
  }
  // Every mutant differs from the seed.
  EXPECT_FALSE(wires.contains(seed.to_wire()));
}

TEST(Mutation, TargetsOnlyListedHeaders) {
  http::RequestSpec seed = http::make_get("h1.com");
  seed.add("X-Other", "v");
  MutationOptions options;
  options.target_headers = {"Host"};
  options.max_mutants = 500;
  for (const auto& m : mutate(seed, options)) {
    if (!m.applied[0].header.empty()) {
      EXPECT_EQ(m.applied[0].header, "Host");
    }
  }
}

TEST(Mutation, CoversDocumentedKinds) {
  http::RequestSpec seed = http::make_post("h1.com", "/", "abc");
  MutationOptions options;
  options.max_mutants = 500;
  std::set<MutationKind> kinds;
  for (const auto& m : mutate(seed, options)) {
    kinds.insert(m.applied[0].kind);
  }
  for (auto kind :
       {MutationKind::kRepeatHeader, MutationKind::kScBeforeName,
        MutationKind::kScAfterName, MutationKind::kScBeforeValue,
        MutationKind::kNameCaseVariation, MutationKind::kBareLfTerminator,
        MutationKind::kObsFoldValue, MutationKind::kVersionSwap,
        MutationKind::kVersionCase, MutationKind::kVersionPunct,
        MutationKind::kVersionDrop}) {
    EXPECT_TRUE(kinds.contains(kind)) << to_string(kind);
  }
}

TEST(Mutation, VersionSwapMatchesPaperExample) {
  http::RequestSpec seed = http::make_get("h1.com");
  MutationOptions options;
  options.max_mutants = 500;
  bool found = false;
  for (const auto& m : mutate(seed, options)) {
    if (m.applied[0].kind == MutationKind::kVersionSwap) {
      EXPECT_EQ(m.spec.version, "1.1/HTTP");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Mutation, RespectsCap) {
  http::RequestSpec seed = http::make_post("h1.com", "/", "abc");
  MutationOptions options;
  options.max_mutants = 5;
  EXPECT_LE(mutate(seed, options).size(), 5u + 5u);  // header cap + line muts
}

TEST(Mutation, SpecialCharsIncludeTableIiSet) {
  const auto& chars = special_chars();
  auto has = [&](std::string_view c) {
    for (const auto& s : chars) {
      if (s == c) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("\x0b"));
  EXPECT_TRUE(has("\t"));
  EXPECT_TRUE(has("@"));
  EXPECT_TRUE(has(std::string_view("\0", 1)));
}

TEST(Mutation, DescribeIsHexEscaped) {
  AppliedMutation m{MutationKind::kScBeforeValue, "Host", "\x0b"};
  EXPECT_EQ(m.describe(), "sc-before-value on Host [\\x0b]");
}

// ---------------------------------------------------------------------------
// SR translator
// ---------------------------------------------------------------------------

TEST(Translator, ProducesCasesWithAssertions) {
  SrTranslator translator(analysis().grammar);
  auto cases = translator.translate_all(analysis().srs);
  ASSERT_GT(cases.size(), 100u);
  std::size_t with_assertions = 0;
  std::set<std::string> uuids;
  for (const auto& tc : cases) {
    EXPECT_FALSE(tc.raw.empty());
    EXPECT_TRUE(uuids.insert(tc.uuid).second) << "duplicate uuid " << tc.uuid;
    if (tc.assertion) ++with_assertions;
  }
  EXPECT_GT(with_assertions, 20u);
}

TEST(Translator, CoversKeyVectorLabels) {
  SrTranslator translator(analysis().grammar);
  auto cases = translator.translate_all(analysis().srs);
  std::set<std::string> labels;
  for (const auto& tc : cases) labels.insert(tc.vector_label);
  EXPECT_TRUE(labels.contains("Invalid Host header"));
  EXPECT_TRUE(labels.contains("Multiple CL/TE headers"));
  EXPECT_TRUE(labels.contains("Invalid CL/TE header"));
  EXPECT_TRUE(labels.contains("Missing Host header"));
}

TEST(Translator, GeneratedCasesAreLexable) {
  SrTranslator translator(analysis().grammar);
  auto cases = translator.translate_all(analysis().srs);
  for (const auto& tc : cases) {
    http::RawRequest r = http::lex_request(tc.raw);
    EXPECT_FALSE(r.line.method_token.empty()) << tc.description;
  }
}

TEST(Translator, MutationsInheritVectorLabelWithoutAssertion) {
  TranslatorConfig config;
  config.include_mutations = true;
  SrTranslator translator(analysis().grammar, config);
  auto cases = translator.translate_all(analysis().srs);
  bool saw_mutation = false;
  for (const auto& tc : cases) {
    if (tc.origin == TestOrigin::kMutation) {
      saw_mutation = true;
      EXPECT_FALSE(tc.assertion) << tc.description;
    }
  }
  EXPECT_TRUE(saw_mutation);
}

// ---------------------------------------------------------------------------
// ABNF test generation
// ---------------------------------------------------------------------------

TEST(AbnfTestGen, GeneratesForDefaultTargets) {
  AbnfGenConfig config;
  config.include_mutations = false;
  AbnfTestGen gen(analysis().grammar, config);
  auto cases = gen.generate();
  EXPECT_GT(cases.size(), 100u);
  for (const auto& tc : cases) {
    EXPECT_EQ(tc.origin, TestOrigin::kAbnfGenerator);
    EXPECT_FALSE(tc.raw.empty());
  }
}

TEST(AbnfTestGen, VersionTargetYieldsLowAndHighVersions) {
  AbnfGenConfig config;
  config.include_mutations = false;
  AbnfTestGen gen(analysis().grammar, config);
  auto cases = gen.generate({{"HTTP-version", EmbedPosition::kHttpVersion}});
  bool low = false, high = false;
  for (const auto& tc : cases) {
    if (tc.raw.find(" HTTP/0.") != std::string::npos) low = true;
    if (tc.raw.find(" HTTP/9.") != std::string::npos) high = true;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(AbnfTestGen, ChunkedBodyTargetYieldsOverflowSizes) {
  AbnfGenConfig config;
  config.include_mutations = false;
  AbnfTestGen gen(analysis().grammar, config);
  auto cases = gen.generate({{"chunked-body", EmbedPosition::kChunkedBody}});
  ASSERT_FALSE(cases.empty());
  bool overflow = false;
  for (const auto& tc : cases) {
    EXPECT_NE(tc.raw.find("Transfer-Encoding: chunked"), std::string::npos);
    if (tc.raw.find("100000000a") != std::string::npos) overflow = true;
  }
  EXPECT_TRUE(overflow);
}

TEST(AbnfTestGen, MutationsInterleaved) {
  AbnfGenConfig config;
  config.include_mutations = true;
  config.mutants_per_seed = 4;
  AbnfTestGen gen(analysis().grammar, config);
  auto cases = gen.generate({{"Host", EmbedPosition::kHostHeader}});
  std::size_t mutants = 0;
  for (const auto& tc : cases) {
    if (tc.origin == TestOrigin::kMutation) ++mutants;
  }
  EXPECT_GT(mutants, 0u);
}

// ---------------------------------------------------------------------------
// Verification probes
// ---------------------------------------------------------------------------

TEST(Probes, CoverEveryTableIiRow) {
  auto probes = verification_probes();
  std::set<std::string> labels;
  for (const auto& tc : probes) labels.insert(tc.vector_label);
  for (auto label :
       {"Invalid HTTP-version", "lower/higher HTTP-version",
        "Bad absolute-URI vs Host", "Fat HEAD/GET request",
        "Invalid CL/TE header", "Multiple CL/TE headers",
        "Invalid Host header", "Multiple Host headers", "Hop-by-Hop headers",
        "Expect header", "Obs-fold header", "Obsoleted header or value",
        "Bad chunk-size value", "NULL in chunk-data"}) {
    EXPECT_TRUE(labels.contains(label)) << label;
  }
}

TEST(Probes, UniqueUuidsAndNonEmptyRaw) {
  auto probes = verification_probes();
  std::set<std::string> uuids;
  for (const auto& tc : probes) {
    EXPECT_TRUE(uuids.insert(tc.uuid).second);
    EXPECT_FALSE(tc.raw.empty());
    EXPECT_EQ(tc.origin, TestOrigin::kManual);
  }
}

}  // namespace
}  // namespace hdiff::core
