// End-to-end pipeline integration: the paper's headline results (Table I
// matrix, the nine HoT pairs) must reproduce from corpus to findings.
#include <gtest/gtest.h>

#include "core/hdiff.h"

namespace hdiff::core {
namespace {

const PipelineResult& result() {
  static const PipelineResult kResult = [] {
    PipelineConfig config;
    config.abnf_run_budget = 800;
    return Pipeline(config).run();
  }();
  return kResult;
}

TEST(Pipeline, ReproducesTableIVulnerabilityMatrix) {
  // Paper Table I, exactly.
  struct Expected {
    const char* impl;
    bool hrs, hot, cpdos;
  };
  constexpr Expected kTableI[] = {
      {"iis", true, true, false},     {"tomcat", true, true, false},
      {"weblogic", true, true, false},{"lighttpd", true, false, false},
      {"apache", false, false, true}, {"nginx", false, true, true},
      {"varnish", true, true, true},  {"squid", true, false, true},
      {"haproxy", true, true, true},  {"ats", true, false, true},
  };
  const auto& matrix = result().matrix;
  for (const auto& e : kTableI) {
    const auto& row = matrix.by_impl.at(e.impl);
    EXPECT_EQ(row.hrs, e.hrs) << e.impl << " HRS";
    EXPECT_EQ(row.hot, e.hot) << e.impl << " HoT";
    EXPECT_EQ(row.cpdos, e.cpdos) << e.impl << " CPDoS";
  }
}

TEST(Pipeline, ReproducesNineHotPairs) {
  // §IV: "Nine different servers pairs (e.g., Varnish-IIS, Nginx-Weblogic)
  // are vulnerable to HoT attacks."
  const auto& pairs = result().matrix.hot_pairs;
  EXPECT_EQ(pairs.size(), 9u);
  for (auto front : {"nginx", "varnish", "haproxy"}) {
    for (auto back : {"iis", "tomcat", "weblogic"}) {
      EXPECT_TRUE(pairs.contains(std::string(front) + "->" + back))
          << front << "->" << back;
    }
  }
}

TEST(Pipeline, AllProxiesCpdosAffected) {
  // §IV: "all HTTP proxies could be affected by our ... CPDoS attacks".
  std::set<std::string> fronts;
  for (const auto& key : result().matrix.cpdos_pairs) {
    fronts.insert(key.substr(0, key.find("->")));
  }
  for (auto proxy : {"apache", "nginx", "varnish", "squid", "haproxy", "ats"}) {
    EXPECT_TRUE(fronts.contains(proxy)) << proxy;
  }
}

TEST(Pipeline, HrsPairsExist) {
  EXPECT_FALSE(result().matrix.hrs_pairs.empty());
}

TEST(Pipeline, ViolationAndDiscrepancyVolume) {
  // §IV-B: "HDiff further found a number of (more than 100) violations of
  // SRs and discrepancies in different HTTP implementations."
  const auto& f = result().findings;
  EXPECT_GT(f.violations.size() + f.discrepancies.inputs_with_discrepancy,
            100u);
}

TEST(Pipeline, VectorCatalogueCoversTableIiRows) {
  const auto& catalogue = result().matrix.vector_catalogue;
  for (auto label :
       {"Invalid HTTP-version", "Bad absolute-URI vs Host",
        "Fat HEAD/GET request", "Invalid CL/TE header",
        "Multiple CL/TE headers", "Invalid Host header",
        "Hop-by-Hop headers", "Expect header", "Bad chunk-size value"}) {
    EXPECT_TRUE(catalogue.contains(label)) << label;
  }
}

TEST(Pipeline, GenerationVolumeReported) {
  EXPECT_GT(result().sr_case_count, 150u);
  EXPECT_GT(result().abnf_case_count, 1000u);
  EXPECT_GE(result().executed_cases.size(), 800u);
}

TEST(Pipeline, AnalysisStatisticsPresent) {
  const auto& a = result().analysis;
  EXPECT_GT(a.total_words, 4000u);
  EXPECT_GT(a.srs.size(), 60u);
  EXPECT_GT(a.grammar.size(), 100u);
}

}  // namespace
}  // namespace hdiff::core
