// Direct coverage of the SR semantic definitions: each (field, modifier)
// recipe, driven through SrTranslator::translate with synthetic SR records.
#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/translator.h"
#include "http/lexer.h"

namespace hdiff::core {
namespace {

const abnf::Grammar& grammar() {
  static const abnf::Grammar kGrammar = [] {
    DocumentationAnalyzer analyzer;
    return analyzer.analyze({"rfc7230"}).grammar;
  }();
  return kGrammar;
}

SrRecord record_for(std::string_view field, std::string_view modifier,
                    std::optional<text::Hypothesis> action = std::nullopt) {
  SrRecord sr;
  sr.id = "synthetic-sr";
  sr.doc = "test";
  sr.sentence = "synthetic";
  sr.sentiment = 1.0;
  sr.polarity = text::SentimentPolarity::kObligation;
  ConvertedSr conv;
  conv.hypothesis.field = std::string(field);
  conv.hypothesis.modifier = std::string(modifier);
  conv.confidence = 1.0;
  sr.conversions.push_back(std::move(conv));
  if (action) {
    ConvertedSr act;
    act.hypothesis = *action;
    sr.conversions.push_back(std::move(act));
  }
  return sr;
}

std::vector<TestCase> translate(std::string_view field,
                                std::string_view modifier) {
  TranslatorConfig config;
  config.include_mutations = false;
  SrTranslator translator(grammar(), config);
  return translator.translate(record_for(field, modifier));
}

TEST(Recipes, HostInvalidIncludesTableIiPayloads) {
  auto cases = translate("host", "invalid");
  ASSERT_FALSE(cases.empty());
  bool at = false, comma = false, path = false;
  for (const auto& tc : cases) {
    EXPECT_EQ(tc.category, AttackClass::kHot);
    EXPECT_EQ(tc.vector_label, "Invalid Host header");
    if (tc.raw.find("h1.com@h2.com") != std::string::npos) at = true;
    if (tc.raw.find("h1.com, h2.com") != std::string::npos) comma = true;
    if (tc.raw.find("h1.com/.//test?") != std::string::npos) path = true;
  }
  EXPECT_TRUE(at);
  EXPECT_TRUE(comma);
  EXPECT_TRUE(path);
}

TEST(Recipes, HostMultipleAndMissing) {
  auto multiple = translate("host", "multiple");
  ASSERT_FALSE(multiple.empty());
  bool two_hosts = false;
  for (const auto& tc : multiple) {
    if (http::lex_request(tc.raw).count("host") >= 2) two_hosts = true;
  }
  EXPECT_TRUE(two_hosts);

  auto missing = translate("host", "missing");
  ASSERT_FALSE(missing.empty());
  for (const auto& tc : missing) {
    EXPECT_EQ(http::lex_request(tc.raw).count("host"), 0u);
  }
}

TEST(Recipes, ContentLengthInvalidCarriesFramingAssertion) {
  auto cases = translate("content-length", "invalid");
  ASSERT_FALSE(cases.empty());
  for (const auto& tc : cases) {
    ASSERT_TRUE(tc.assertion) << tc.description;
    EXPECT_TRUE(tc.assertion->expect_reject);
    EXPECT_TRUE(tc.assertion->expect_not_forward);
    EXPECT_EQ(tc.assertion->sr_id, "synthetic-sr");
  }
}

TEST(Recipes, ContentLengthMultipleMixesAssertedAndValid) {
  auto cases = translate("content-length", "multiple");
  std::size_t asserted = 0, unasserted = 0;
  for (const auto& tc : cases) {
    (tc.assertion ? asserted : unasserted)++;
  }
  EXPECT_GT(asserted, 0u);   // differing duplicates MUST be rejected
  EXPECT_GT(unasserted, 0u); // identical duplicates are legal
}

TEST(Recipes, TransferEncodingVariants) {
  for (auto modifier : {"invalid", "multiple", "whitespace", "obsolete"}) {
    auto cases = translate("transfer-encoding", modifier);
    EXPECT_FALSE(cases.empty()) << modifier;
    for (const auto& tc : cases) {
      EXPECT_EQ(tc.category, AttackClass::kHrs) << modifier;
    }
  }
}

TEST(Recipes, ChunkSizeInvalidBodies) {
  auto cases = translate("chunk-size", "invalid");
  ASSERT_GE(cases.size(), 3u);
  bool overflow = false, nul = false;
  for (const auto& tc : cases) {
    if (tc.raw.find("100000000a") != std::string::npos) overflow = true;
    if (tc.raw.find(std::string("\0", 1)) != std::string::npos) nul = true;
  }
  EXPECT_TRUE(overflow);
  EXPECT_TRUE(nul);
}

TEST(Recipes, VersionAndFatGet) {
  auto version = translate("http-version", "invalid");
  ASSERT_FALSE(version.empty());
  bool reversed = false;
  for (const auto& tc : version) {
    EXPECT_EQ(tc.category, AttackClass::kCpdos);
    if (tc.raw.find(" 1.1/HTTP\r\n") != std::string::npos) reversed = true;
  }
  EXPECT_TRUE(reversed);

  auto fat = translate("message-body", "invalid");
  ASSERT_FALSE(fat.empty());
  bool head = false;
  for (const auto& tc : fat) {
    if (tc.raw.substr(0, 5) == "HEAD ") head = true;
  }
  EXPECT_TRUE(head);
}

TEST(Recipes, UnknownFieldYieldsNothing) {
  EXPECT_TRUE(translate("x-nonexistent", "invalid").empty());
  EXPECT_TRUE(translate("host", "x-nonsense-modifier").empty());
}

TEST(Recipes, EntailedActionBecomesAssertion) {
  text::Hypothesis action;
  action.role = text::Role::kServer;
  action.action = text::Action::kRespond;
  action.status_code = 400;
  SrRecord sr = record_for("host", "multiple", action);
  TranslatorConfig config;
  config.include_mutations = false;
  SrTranslator translator(grammar(), config);
  auto cases = translator.translate(sr);
  ASSERT_FALSE(cases.empty());
  bool found_status_assertion = false;
  for (const auto& tc : cases) {
    if (tc.assertion && tc.assertion->expect_status == 400) {
      found_status_assertion = true;
    }
  }
  EXPECT_TRUE(found_status_assertion);
}

TEST(Recipes, UuidsScopedToSrId) {
  auto cases = translate("host", "invalid");
  for (const auto& tc : cases) {
    EXPECT_EQ(tc.uuid.substr(0, 12), "synthetic-sr");
  }
}

}  // namespace
}  // namespace hdiff::core
