#include "core/analyzer.h"

#include <gtest/gtest.h>

namespace hdiff::core {
namespace {

// The full analysis is deterministic; run it once for the suite.
const AnalyzerResult& full_analysis() {
  static const AnalyzerResult kResult = [] {
    DocumentationAnalyzer analyzer;
    return analyzer.analyze(
        {"rfc7230", "rfc7231", "rfc7232", "rfc7233", "rfc7234", "rfc7235"});
  }();
  return kResult;
}

TEST(Analyzer, CorpusMeasured) {
  const auto& r = full_analysis();
  EXPECT_GT(r.total_words, 4000u);
  EXPECT_GT(r.total_sentences, 150u);
}

TEST(Analyzer, FindsSubstantialSrSet) {
  const auto& r = full_analysis();
  // The corpus excerpt carries on the order of a hundred SRs.
  EXPECT_GE(r.srs.size(), 60u);
  EXPECT_GT(r.converted_sr_count, r.srs.size());
}

TEST(Analyzer, KnownSrSentencesFlagged) {
  const auto& r = full_analysis();
  auto contains = [&](std::string_view needle) {
    for (const auto& sr : r.srs) {
      if (sr.sentence.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("whitespace between a header field-name and colon"));
  EXPECT_TRUE(contains("lacks a Host header field"));
  EXPECT_TRUE(contains("ought to be handled as an error"));
  EXPECT_TRUE(contains("MUST NOT apply chunked more than once"));
}

TEST(Analyzer, SrRecordsCarrySentimentAndPolarity) {
  const auto& r = full_analysis();
  for (const auto& sr : r.srs) {
    EXPECT_GE(sr.sentiment, 0.45) << sr.sentence;
    EXPECT_NE(sr.polarity, text::SentimentPolarity::kNeutral);
    EXPECT_FALSE(sr.id.empty());
  }
}

TEST(Analyzer, GrammarCoversCoreHttpRules) {
  const auto& g = full_analysis().grammar;
  for (auto rule : {"HTTP-message", "HTTP-version", "request-line", "Host",
                    "Transfer-Encoding", "Content-Length", "chunked-body",
                    "chunk-size", "header-field", "field-name", "OWS",
                    "absolute-form", "Expect", "Connection"}) {
    EXPECT_TRUE(g.contains(rule)) << rule;
  }
  EXPECT_GE(g.size(), 100u);
}

TEST(Analyzer, ProseReferencesResolvedAcrossDocuments) {
  const auto& r = full_analysis();
  // uri-host referenced RFC 3986; the adaptor pulled it in.
  EXPECT_TRUE(r.grammar.contains("IPv4address"));
  EXPECT_TRUE(r.grammar.contains("reg-name"));
  bool expanded_3986 = false;
  for (const auto& doc : r.adapt_report.expanded_documents) {
    if (doc == "RFC3986") expanded_3986 = true;
  }
  EXPECT_TRUE(expanded_3986);
}

TEST(Analyzer, AbnfStatsAccumulated) {
  const auto& stats = full_analysis().abnf_stats;
  EXPECT_GT(stats.candidate_chunks, 50u);
  EXPECT_GT(stats.parsed_rules, 50u);
  EXPECT_GE(stats.prose_val_rules, 2u);
}

TEST(Analyzer, FieldDictionaryFromGrammar) {
  const auto& dict = full_analysis().field_dictionary;
  EXPECT_TRUE(dict.contains("host"));
  EXPECT_TRUE(dict.contains("content-length"));
  EXPECT_TRUE(dict.contains("transfer-encoding"));
  EXPECT_TRUE(dict.contains("expect"));
  EXPECT_TRUE(dict.contains("chunk-size"));
  // Lower-case grammar rules are not header fields.
  EXPECT_FALSE(dict.contains("token"));
}

TEST(Analyzer, ConversionsBindTemplates) {
  const auto& r = full_analysis();
  bool found_host_missing = false;
  bool found_respond_400 = false;
  for (const auto& sr : r.srs) {
    for (const auto& conv : sr.conversions) {
      if (conv.hypothesis.label == "msg:host:missing") found_host_missing = true;
      if (conv.hypothesis.label.find("respond-400") != std::string::npos) {
        found_respond_400 = true;
      }
    }
  }
  EXPECT_TRUE(found_host_missing);
  EXPECT_TRUE(found_respond_400);
}

TEST(Analyzer, DefaultTemplatesCoverBothFamilies) {
  std::set<std::string> fields{"host", "content-length"};
  auto templates = make_default_sr_templates(fields);
  std::size_t message = 0, action = 0;
  for (const auto& t : templates) {
    if (t.field) ++message;
    if (t.role && t.action) ++action;
  }
  EXPECT_EQ(message, 12u);  // 2 fields x 6 modifiers
  EXPECT_GT(action, 100u);  // 10 roles x 8 actions x 2 polarities + statuses
}

TEST(Analyzer, SingleDocumentScope) {
  DocumentationAnalyzer analyzer;
  AnalyzerResult r = analyzer.analyze({"rfc7235"});
  EXPECT_LT(r.total_words, full_analysis().total_words);
  EXPECT_TRUE(r.grammar.contains("WWW-Authenticate"));
  EXPECT_FALSE(r.srs.empty());
}

TEST(Analyzer, UnknownDocumentIgnored) {
  DocumentationAnalyzer analyzer;
  AnalyzerResult r = analyzer.analyze({"rfc0000"});
  EXPECT_EQ(r.total_words, 0u);
  EXPECT_TRUE(r.srs.empty());
}

}  // namespace
}  // namespace hdiff::core
