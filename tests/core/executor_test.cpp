#include "core/executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "abnf/parser.h"
#include "core/analyzer.h"
#include "core/probes.h"
#include "core/translator.h"
#include "corpus/registry.h"
#include "impls/products.h"
#include "net/chain.h"
#include "net/fault.h"

namespace hdiff::core {
namespace {

// ---- ObservationMemo ------------------------------------------------------

net::ChainObservation tagged_observation(std::string tag) {
  net::ChainObservation obs;
  obs.uuid = std::move(tag);
  return obs;
}

TEST(ObservationMemo, CountsHitsAndMisses) {
  ObservationMemo memo;
  EXPECT_EQ(memo.find("alpha"), nullptr);
  EXPECT_EQ(memo.hits(), 0u);
  EXPECT_EQ(memo.misses(), 1u);

  const net::ChainObservation* stored =
      memo.insert("alpha", tagged_observation("first"));
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->uuid, "first");
  EXPECT_EQ(memo.size(), 1u);

  const net::ChainObservation* found = memo.find("alpha");
  EXPECT_EQ(found, stored);  // same entry, no copy
  EXPECT_EQ(memo.hits(), 1u);
  EXPECT_EQ(memo.misses(), 1u);
}

TEST(ObservationMemo, FirstInsertWins) {
  ObservationMemo memo;
  const net::ChainObservation* first =
      memo.insert("alpha", tagged_observation("first"));
  const net::ChainObservation* second =
      memo.insert("alpha", tagged_observation("second"));
  EXPECT_EQ(second, first);  // racing duplicate insert is discarded
  EXPECT_EQ(first->uuid, "first");
  EXPECT_EQ(memo.size(), 1u);
}

std::uint64_t collide_everything(std::string_view) noexcept { return 42; }

TEST(ObservationMemo, HashCollisionsCannotAlias) {
  // Force every key onto one hash bucket: entries must still be told apart
  // by the full-byte comparison.
  ObservationMemo memo(&collide_everything);
  memo.insert("alpha", tagged_observation("obs-a"));
  memo.insert("bravo", tagged_observation("obs-b"));
  memo.insert("", tagged_observation("obs-empty"));
  EXPECT_EQ(memo.size(), 3u);

  ASSERT_NE(memo.find("alpha"), nullptr);
  EXPECT_EQ(memo.find("alpha")->uuid, "obs-a");
  ASSERT_NE(memo.find("bravo"), nullptr);
  EXPECT_EQ(memo.find("bravo")->uuid, "obs-b");
  ASSERT_NE(memo.find(""), nullptr);
  EXPECT_EQ(memo.find("")->uuid, "obs-empty");
  EXPECT_EQ(memo.find("charlie"), nullptr);  // same hash, absent bytes
}

TEST(ObservationMemo, DefaultHashIsFnv1a) {
  // FNV-1a 64-bit reference vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(ParallelExecutor, ResolveJobs) {
  EXPECT_GE(ParallelExecutor::resolve_jobs(0), 1u);  // hardware_concurrency
  EXPECT_EQ(ParallelExecutor::resolve_jobs(1), 1u);
  EXPECT_EQ(ParallelExecutor::resolve_jobs(5), 5u);
}

// ---- determinism over the full probe + SR set -----------------------------

// The probe set plus every SR-translated case, exactly as Pipeline::run
// assembles them (same custom-ABNF adaptation inputs).
const std::vector<TestCase>& probe_and_sr_cases() {
  static const std::vector<TestCase> cases = [] {
    DocumentationAnalyzer analyzer;
    analyzer.set_custom_abnf("URI-reference",
                             abnf::parse_elements("absolute-URI"));
    analyzer.set_custom_abnf("HTTP-date", abnf::parse_elements("token"));
    analyzer.set_custom_abnf("quoted-string",
                             abnf::parse_elements("DQUOTE *VCHAR DQUOTE"));
    AnalyzerResult analysis = analyzer.analyze(corpus::http_core_documents());
    SrTranslator translator(analysis.grammar);
    std::vector<TestCase> all = verification_probes();
    std::vector<TestCase> sr = translator.translate_all(analysis.srs);
    for (auto& tc : sr) all.push_back(std::move(tc));
    return all;
  }();
  return cases;
}

void expect_same_findings(const DetectionResult& a, const DetectionResult& b) {
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].impl, b.violations[i].impl) << "at " << i;
    EXPECT_EQ(a.violations[i].sr_id, b.violations[i].sr_id) << "at " << i;
    EXPECT_EQ(a.violations[i].uuid, b.violations[i].uuid) << "at " << i;
    EXPECT_EQ(a.violations[i].category, b.violations[i].category) << "at " << i;
    EXPECT_EQ(a.violations[i].detail, b.violations[i].detail) << "at " << i;
  }
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].front, b.pairs[i].front) << "at " << i;
    EXPECT_EQ(a.pairs[i].back, b.pairs[i].back) << "at " << i;
    EXPECT_EQ(a.pairs[i].attack, b.pairs[i].attack) << "at " << i;
    EXPECT_EQ(a.pairs[i].uuid, b.pairs[i].uuid) << "at " << i;
    EXPECT_EQ(a.pairs[i].detail, b.pairs[i].detail) << "at " << i;
  }
  EXPECT_EQ(a.discrepancies.status_disagreements,
            b.discrepancies.status_disagreements);
  EXPECT_EQ(a.discrepancies.host_disagreements,
            b.discrepancies.host_disagreements);
  EXPECT_EQ(a.discrepancies.body_disagreements,
            b.discrepancies.body_disagreements);
  EXPECT_EQ(a.discrepancies.inputs_with_discrepancy,
            b.discrepancies.inputs_with_discrepancy);
  EXPECT_EQ(a.vector_hits, b.vector_hits);
}

void expect_same_matrix(const VulnMatrix& a, const VulnMatrix& b) {
  ASSERT_EQ(a.by_impl.size(), b.by_impl.size());
  for (const auto& [name, row] : a.by_impl) {
    auto it = b.by_impl.find(name);
    ASSERT_NE(it, b.by_impl.end()) << name;
    EXPECT_EQ(row.hrs, it->second.hrs) << name;
    EXPECT_EQ(row.hot, it->second.hot) << name;
    EXPECT_EQ(row.cpdos, it->second.cpdos) << name;
  }
  EXPECT_EQ(a.hrs_pairs, b.hrs_pairs);
  EXPECT_EQ(a.hot_pairs, b.hot_pairs);
  EXPECT_EQ(a.cpdos_pairs, b.cpdos_pairs);
  EXPECT_EQ(a.vector_catalogue, b.vector_catalogue);
}

TEST(ParallelExecutor, ParallelRunIsBitIdenticalToSerial) {
  const std::vector<TestCase>& cases = probe_and_sr_cases();
  ASSERT_GT(cases.size(), 600u);  // probes + full SR set
  auto fleet = impls::make_all_implementations();
  net::Chain chain = net::Chain::from_fleet(fleet);

  // jobs=1 memoize=off is exactly the seed's serial loop: the baseline.
  ExecutorConfig serial_config;
  serial_config.jobs = 1;
  serial_config.memoize = false;
  ExecutorStats serial_stats;
  DetectionResult serial =
      ParallelExecutor(serial_config).run(chain, cases, &serial_stats);
  VulnMatrix serial_matrix = build_matrix(serial, cases);
  EXPECT_EQ(serial_stats.jobs, 1u);
  EXPECT_EQ(serial_stats.cases, cases.size());
  EXPECT_EQ(serial_stats.memo_hits + serial_stats.memo_misses, 0u);
  EXPECT_EQ(serial_stats.verdict_hits + serial_stats.verdict_misses, 0u);

  struct Variant {
    std::size_t jobs;
    bool memoize;
  };
  for (const Variant v : {Variant{1, true}, Variant{8, false},
                          Variant{8, true}}) {
    SCOPED_TRACE("jobs=" + std::to_string(v.jobs) +
                 " memoize=" + std::to_string(v.memoize));
    ExecutorConfig config;
    config.jobs = v.jobs;
    config.memoize = v.memoize;
    ExecutorStats stats;
    DetectionResult result =
        ParallelExecutor(config).run(chain, cases, &stats);
    expect_same_findings(serial, result);
    expect_same_matrix(serial_matrix, build_matrix(result, cases));
    EXPECT_EQ(stats.jobs, v.jobs);
    EXPECT_EQ(stats.cases, cases.size());
    if (v.memoize) {
      EXPECT_EQ(stats.memo_hits + stats.memo_misses, cases.size());
    } else {
      EXPECT_EQ(stats.memo_hits + stats.memo_misses, 0u);
    }
  }
}

TEST(ParallelExecutor, MemoHitsOnDuplicateCasesKeepFindingsIdentical) {
  // Duplicate the probe set so the memo must serve hits, including from
  // concurrent workers; findings must not change and the echo log must
  // still count every duplicate's forwards.
  std::vector<TestCase> cases = verification_probes();
  const std::size_t unique = cases.size();
  std::vector<TestCase> doubled = cases;
  for (TestCase tc : cases) {
    tc.uuid += "-dup";
    doubled.push_back(std::move(tc));
  }

  auto fleet = impls::make_all_implementations();
  net::Chain chain = net::Chain::from_fleet(fleet);

  ExecutorConfig baseline;
  baseline.jobs = 1;
  baseline.memoize = false;
  ExecutorStats base_stats;
  DetectionResult expected =
      ParallelExecutor(baseline).run(chain, doubled, &base_stats);

  // Serial memoized run: execution order is the list order, so every
  // duplicate is guaranteed to hit the original's entry.
  ExecutorConfig memoized;
  memoized.jobs = 1;
  memoized.memoize = true;
  ExecutorStats stats;
  DetectionResult result =
      ParallelExecutor(memoized).run(chain, doubled, &stats);

  expect_same_findings(expected, result);
  EXPECT_EQ(stats.memo_hits, unique);  // every duplicate is a hit
  EXPECT_EQ(stats.memo_misses, unique);
  // Echo sees the duplicates' forwards too (memo replays them into the log).
  EXPECT_EQ(stats.echo_records + stats.echo_dropped,
            base_stats.echo_records + base_stats.echo_dropped);

  // Concurrent smoke (meaningful under HDIFF_SANITIZE=thread): workers may
  // race a duplicate against its original, so only the total find count is
  // deterministic — findings still must not change.
  ExecutorConfig concurrent;
  concurrent.jobs = 8;
  concurrent.memoize = true;
  ExecutorStats cstats;
  DetectionResult cresult =
      ParallelExecutor(concurrent).run(chain, doubled, &cstats);
  expect_same_findings(expected, cresult);
  EXPECT_EQ(cstats.memo_hits + cstats.memo_misses, doubled.size());
  EXPECT_LE(cstats.memo_hits, unique);
}

// ---- fault injection / graceful degradation -------------------------------

// A two-implementation chain (one proxy, one server) where the per-attempt
// call sequence is small enough to reason about exactly.
struct TinyFixture {
  std::vector<std::unique_ptr<impls::HttpImplementation>> fleet;
  std::vector<std::unique_ptr<impls::HttpImplementation>> faulty;
  std::shared_ptr<net::FaultPlan> plan;

  explicit TinyFixture(net::FaultPlanConfig config) {
    fleet.push_back(impls::make_implementation("squid"));
    fleet.push_back(impls::make_implementation("apache"));
    plan = std::make_shared<net::FaultPlan>(config);
    faulty = net::wrap_fleet_with_faults(fleet, plan);
  }
};

TestCase plain_case(std::string uuid) {
  TestCase tc;
  tc.uuid = std::move(uuid);
  tc.raw = "GET /?a=1 HTTP/1.1\r\nHost: h1.com\r\n\r\n";
  tc.description = "fault-harness probe";
  return tc;
}

TEST(ParallelExecutor, PersistentFaultQuarantinesWithExactCounters) {
  // every_nth=1: every model call faults, so the case can never be observed.
  net::FaultPlanConfig config;
  config.every_nth = 1;
  config.kinds = {net::FaultKind::kReset};
  TinyFixture fx(config);
  net::Chain chain = net::Chain::from_fleet(fx.faulty);

  ExecutorConfig exec;
  exec.jobs = 1;
  exec.memoize = false;
  exec.retry.attempts = 3;
  exec.retry.backoff_base_ms = 0;
  exec.retry.backoff_max_ms = 0;
  ExecutorStats stats;
  const std::vector<TestCase> cases = {plain_case("q1")};
  DetectionResult result = ParallelExecutor(exec).run(chain, cases, &stats);

  // A quarantined case produces no findings — and exact counters.
  EXPECT_TRUE(result.violations.empty());
  EXPECT_TRUE(result.pairs.empty());
  EXPECT_EQ(stats.quarantined_cases, 1u);
  EXPECT_EQ(stats.faulted_attempts, 3u);
  EXPECT_EQ(stats.retry_attempts, 2u);
  EXPECT_EQ(stats.recovered_cases, 0u);
  EXPECT_EQ(stats.fault_counts[static_cast<std::size_t>(net::ChainError::kReset)],
            3u);
  ASSERT_EQ(stats.quarantined.size(), 1u);
  EXPECT_EQ(stats.quarantined[0].uuid, "q1");
  EXPECT_EQ(stats.quarantined[0].error, net::ChainError::kReset);
  EXPECT_EQ(stats.quarantined[0].attempts, 3u);
  EXPECT_NE(stats.quarantined[0].detail.find("reset fault injected"),
            std::string::npos);
  // Echo log stays clean: no partial forwards from the aborted attempts.
  EXPECT_EQ(stats.echo_records + stats.echo_dropped, 0u);
}

TEST(ParallelExecutor, CaseDeadlineShortCircuitsRetries) {
  net::FaultPlanConfig config;
  config.every_nth = 1;
  config.kinds = {net::FaultKind::kStall};  // each attempt sleeps delay_ms
  config.delay_ms = 5;
  TinyFixture fx(config);
  net::Chain chain = net::Chain::from_fleet(fx.faulty);

  ExecutorConfig exec;
  exec.jobs = 1;
  exec.retry.attempts = 1000;  // deadline, not the attempt cap, must stop us
  exec.retry.backoff_base_ms = 0;
  exec.retry.backoff_max_ms = 0;
  exec.retry.case_deadline_ms = 15;
  ExecutorStats stats;
  const std::vector<TestCase> cases = {plain_case("d1")};
  ParallelExecutor(exec).run(chain, cases, &stats);

  ASSERT_EQ(stats.quarantined.size(), 1u);
  EXPECT_EQ(stats.quarantined[0].error, net::ChainError::kTimeout);
  EXPECT_NE(stats.quarantined[0].detail.find("case deadline exceeded"),
            std::string::npos);
  EXPECT_LT(stats.quarantined[0].attempts, 1000u);
}

TEST(ParallelExecutor, BudgetedFaultsRecoverToFaultFreeFindings) {
  // rate=1.0 + a one-fault budget: every call site faults exactly once, so
  // with enough retries the case converges to a clean observation that must
  // match the fault-free chain byte for byte.
  TinyFixture clean(net::FaultPlanConfig{});  // rate 0: reference
  net::Chain clean_chain = net::Chain::from_fleet(clean.fleet);
  const std::vector<TestCase> cases = {plain_case("r1")};
  ExecutorConfig base;
  base.jobs = 1;
  base.memoize = false;
  ExecutorStats clean_stats;
  DetectionResult expected =
      ParallelExecutor(base).run(clean_chain, cases, &clean_stats);

  net::FaultPlanConfig config;
  config.rate = 1.0;
  config.max_faults_per_site = 1;
  TinyFixture fx(config);
  net::Chain chain = net::Chain::from_fleet(fx.faulty);
  ExecutorConfig exec = base;
  exec.retry.attempts = 16;
  exec.retry.backoff_base_ms = 0;
  exec.retry.backoff_max_ms = 0;
  ExecutorStats stats;
  DetectionResult result = ParallelExecutor(exec).run(chain, cases, &stats);

  expect_same_findings(expected, result);
  EXPECT_EQ(stats.quarantined_cases, 0u);
  EXPECT_EQ(stats.recovered_cases, 1u);
  EXPECT_GT(stats.faulted_attempts, 0u);
  EXPECT_EQ(stats.retry_attempts, stats.faulted_attempts);  // last attempt clean
  // Echo counters equal the fault-free run: aborted attempts left no trace.
  EXPECT_EQ(stats.echo_records + stats.echo_dropped,
            clean_stats.echo_records + clean_stats.echo_dropped);
}

TEST(ParallelExecutor, FaultInjectedRunKeepsFindingsIdenticalAcrossSchedules) {
  // The acceptance run: the full probe set through the full fleet with an
  // intermittent fault plan.  Findings must be identical to the fault-free
  // run, with zero quarantine, for every jobs/memoize combination — and the
  // fault/retry counters must be schedule-independent too (victim selection
  // is a pure hash of the call site).
  const std::vector<TestCase> cases = verification_probes();
  auto fleet = impls::make_all_implementations();
  net::Chain clean_chain = net::Chain::from_fleet(fleet);
  ExecutorConfig base;
  base.jobs = 1;
  base.memoize = false;
  ExecutorStats clean_stats;
  DetectionResult expected =
      ParallelExecutor(base).run(clean_chain, cases, &clean_stats);

  struct Variant {
    std::size_t jobs;
    bool memoize;
  };
  std::vector<ExecutorStats> all_stats;
  for (const Variant v :
       {Variant{1, false}, Variant{8, false}, Variant{1, true},
        Variant{8, true}}) {
    SCOPED_TRACE("jobs=" + std::to_string(v.jobs) +
                 " memoize=" + std::to_string(v.memoize));
    // Fresh plan per variant: the per-site fault budget is plan state, and
    // the point is that every schedule sees the *same* fault world.
    net::FaultPlanConfig config;
    config.seed = 7;
    config.rate = 0.3;  // ~30% of call sites are victims
    config.max_faults_per_site = 1;
    config.kinds = {net::FaultKind::kReset, net::FaultKind::kTruncate,
                    net::FaultKind::kConnectFail};
    auto plan = std::make_shared<net::FaultPlan>(config);
    auto faulty = net::wrap_fleet_with_faults(fleet, plan);
    net::Chain chain = net::Chain::from_fleet(faulty);

    ExecutorConfig exec;
    exec.jobs = v.jobs;
    exec.memoize = v.memoize;
    exec.retry.attempts = 256;  // a case can touch many distinct victim sites
    exec.retry.backoff_base_ms = 0;
    exec.retry.backoff_max_ms = 0;
    ExecutorStats stats;
    DetectionResult result = ParallelExecutor(exec).run(chain, cases, &stats);
    expect_same_findings(expected, result);
    expect_same_matrix(build_matrix(expected, cases),
                       build_matrix(result, cases));
    EXPECT_EQ(stats.quarantined_cases, 0u);
    EXPECT_GT(stats.recovered_cases, 0u);
    EXPECT_GT(stats.retry_attempts, 0u);
    EXPECT_EQ(stats.retry_attempts, stats.faulted_attempts);
    EXPECT_EQ(stats.echo_records + stats.echo_dropped,
              clean_stats.echo_records + clean_stats.echo_dropped);
    all_stats.push_back(std::move(stats));
  }
  // With a one-fault budget, each distinct victim site faults exactly once
  // no matter which worker or attempt touches it first, so the *total*
  // fault count is schedule-independent even though its distribution over
  // cases is not.
  for (const ExecutorStats& stats : all_stats) {
    std::size_t by_error = 0;
    for (std::size_t k = 0; k < net::kChainErrorCount; ++k) {
      by_error += stats.fault_counts[k];
    }
    EXPECT_EQ(by_error, stats.faulted_attempts);
    EXPECT_EQ(stats.faulted_attempts, all_stats.front().faulted_attempts);
  }
}

TEST(ParallelExecutor, PersistentFaultQuarantineIsDeterministicAcrossJobs) {
  // max_faults_per_site=0: victim sites never recover, so the quarantine
  // list is a pure function of the seed — identical across thread counts,
  // memoization settings and repeated runs, and reported in case order.
  const std::vector<TestCase> cases = verification_probes();
  auto fleet = impls::make_all_implementations();

  const auto run_once = [&](std::size_t jobs, bool memoize) {
    net::FaultPlanConfig config;
    config.seed = 11;
    // A case touches ~100 call sites, so even a small per-site rate
    // quarantines a visible-but-partial slice of the probe set.
    config.rate = 0.005;
    config.max_faults_per_site = 0;  // persistent
    auto plan = std::make_shared<net::FaultPlan>(config);
    auto faulty = net::wrap_fleet_with_faults(fleet, plan);
    net::Chain chain = net::Chain::from_fleet(faulty);
    ExecutorConfig exec;
    exec.jobs = jobs;
    exec.memoize = memoize;
    exec.retry.attempts = 3;
    exec.retry.backoff_base_ms = 0;
    exec.retry.backoff_max_ms = 0;
    ExecutorStats stats;
    DetectionResult result = ParallelExecutor(exec).run(chain, cases, &stats);
    return std::make_pair(std::move(result), std::move(stats));
  };

  auto [serial_result, serial_stats] = run_once(1, false);
  ASSERT_GT(serial_stats.quarantined_cases, 0u)
      << "rate 0.02 over the probe set should hit at least one case";
  EXPECT_LT(serial_stats.quarantined_cases, cases.size());
  for (const QuarantinedCase& q : serial_stats.quarantined) {
    EXPECT_EQ(q.attempts, 3u) << q.uuid;  // full retry budget spent
  }

  for (const auto& [jobs, memoize] :
       std::vector<std::pair<std::size_t, bool>>{{1, true}, {8, false},
                                                 {8, true}}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                 " memoize=" + std::to_string(memoize));
    auto [result, stats] = run_once(jobs, memoize);
    expect_same_findings(serial_result, result);
    ASSERT_EQ(stats.quarantined.size(), serial_stats.quarantined.size());
    for (std::size_t i = 0; i < stats.quarantined.size(); ++i) {
      EXPECT_EQ(stats.quarantined[i].uuid, serial_stats.quarantined[i].uuid);
      EXPECT_EQ(stats.quarantined[i].error, serial_stats.quarantined[i].error);
    }
  }
}

// ---- observe_batch: the block-claiming seam for live transports -----------

// A hook that adapts chain.observe per case: the batch path must then be
// bit-identical to the direct chain path for every jobs/memoize setting.
TEST(ParallelExecutor, BatchHookIsBitIdenticalToChainPath) {
  const std::vector<TestCase>& cases = probe_and_sr_cases();
  auto fleet = impls::make_all_implementations();
  net::Chain chain = net::Chain::from_fleet(fleet);

  ExecutorConfig baseline_config;
  baseline_config.jobs = 1;
  baseline_config.memoize = false;
  const DetectionResult baseline =
      ParallelExecutor(baseline_config).run(chain, cases);

  for (const auto& [jobs, batch_size] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {1, 7}, {4, 16}, {4, 1000000}}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                 " batch_size=" + std::to_string(batch_size));
    ExecutorConfig config;
    config.jobs = jobs;
    config.batch_size = batch_size;
    config.observe_batch = [&chain](const TestCase* block, std::size_t n,
                                    std::vector<net::ChainObservation>& out) {
      for (std::size_t i = 0; i < n; ++i) {
        out.push_back(
            chain.observe(block[i].uuid, block[i].raw, nullptr, nullptr));
      }
    };
    ExecutorStats stats;
    const DetectionResult result =
        ParallelExecutor(config).run(chain, cases, &stats);
    expect_same_findings(baseline, result);
    EXPECT_EQ(stats.cases, cases.size());
    EXPECT_EQ(stats.quarantined_cases, 0u);
  }
}

// on_delta must still fire in stable case-index order when workers claim
// whole blocks.
TEST(ParallelExecutor, BatchHookKeepsDeltaOrderStable) {
  std::vector<TestCase> cases = verification_probes();
  auto fleet = impls::make_all_implementations();
  net::Chain chain = net::Chain::from_fleet(fleet);

  ExecutorConfig config;
  config.jobs = 4;
  config.batch_size = 5;
  config.observe_batch = [&chain](const TestCase* block, std::size_t n,
                                  std::vector<net::ChainObservation>& out) {
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(
          chain.observe(block[i].uuid, block[i].raw, nullptr, nullptr));
    }
  };
  std::vector<std::size_t> order;
  config.on_delta = [&order](std::size_t index, const TestCase&,
                             const DetectionResult&, bool) {
    order.push_back(index);
  };
  ParallelExecutor(config).run(chain, cases);
  ASSERT_EQ(order.size(), cases.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

// A hook whose first observation of selected cases faults must be retried
// per case (n=1) and recover, with exact fault accounting.
TEST(ParallelExecutor, BatchHookFaultsRetryPerCase) {
  std::vector<TestCase> cases = verification_probes();
  cases.resize(std::min<std::size_t>(cases.size(), 12));
  auto fleet = impls::make_all_implementations();
  net::Chain chain = net::Chain::from_fleet(fleet);

  // Every 3rd case faults exactly once: on its first (batched) attempt.
  std::mutex mutex;
  std::map<std::string, int> attempts_by_uuid;
  ExecutorConfig config;
  config.jobs = 2;
  config.batch_size = 4;
  config.memoize = false;  // every case observed: exact fault accounting
  config.retry.attempts = 3;
  config.retry.backoff_base_ms = 0;
  config.retry.backoff_max_ms = 0;
  std::size_t injected = 0;
  config.observe_batch = [&](const TestCase* block, std::size_t n,
                             std::vector<net::ChainObservation>& out) {
    for (std::size_t i = 0; i < n; ++i) {
      int attempt;
      {
        std::lock_guard<std::mutex> lock(mutex);
        attempt = attempts_by_uuid[block[i].uuid]++;
      }
      const bool fault_this = attempt == 0 && fnv1a64(block[i].uuid) % 3 == 0;
      if (fault_this) {
        net::ChainObservation obs;
        obs.uuid = block[i].uuid;
        obs.request = block[i].raw;
        obs.fault = net::ChainError::kReset;
        obs.fault_detail = "injected";
        {
          std::lock_guard<std::mutex> lock(mutex);
          ++injected;
        }
        out.push_back(std::move(obs));
      } else {
        out.push_back(
            chain.observe(block[i].uuid, block[i].raw, nullptr, nullptr));
      }
    }
  };

  ExecutorConfig clean_config;
  clean_config.jobs = 1;
  clean_config.memoize = false;
  const DetectionResult want =
      ParallelExecutor(clean_config).run(chain, cases);

  ExecutorStats stats;
  const DetectionResult got =
      ParallelExecutor(config).run(chain, cases, &stats);
  expect_same_findings(want, got);
  EXPECT_GT(injected, 0u);
  EXPECT_EQ(stats.faulted_attempts, injected);
  EXPECT_EQ(stats.retry_attempts, injected);  // each faulted case retried once
  EXPECT_EQ(stats.recovered_cases, injected);
  EXPECT_EQ(stats.quarantined_cases, 0u);
}

}  // namespace
}  // namespace hdiff::core
