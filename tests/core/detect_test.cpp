// Detection models over hand-built observations and the real chain.
#include "core/detect.h"

#include <gtest/gtest.h>

#include "core/hmetrics.h"
#include "core/probes.h"
#include "impls/products.h"

namespace hdiff::core {
namespace {

net::Chain full_chain() {
  static const auto kFleet = impls::make_all_implementations();
  return net::Chain::from_fleet(kFleet);
}

TestCase make_case(std::string uuid, std::string raw,
                   std::optional<Assertion> assertion = std::nullopt,
                   AttackClass category = AttackClass::kGeneric) {
  TestCase tc;
  tc.uuid = std::move(uuid);
  tc.raw = std::move(raw);
  tc.description = "test";
  tc.category = category;
  tc.assertion = std::move(assertion);
  return tc;
}

TEST(Detect, SrViolationOnLenientServer) {
  Assertion a;
  a.role = text::Role::kServer;
  a.expect_reject = true;
  a.sr_id = "sr-ws-colon";
  TestCase tc = make_case(
      "u1", "POST / HTTP/1.1\r\nHost: h\r\nContent-Length : 5\r\n\r\nAAAAA",
      a, AttackClass::kHrs);

  net::Chain chain = full_chain();
  DetectionEngine engine;
  DetectionResult r = engine.evaluate(tc, chain.observe(tc.uuid, tc.raw));
  bool iis_flagged = false;
  for (const auto& v : r.violations) {
    EXPECT_NE(v.impl, "apache");  // apache rejects => conformant
    if (v.impl == "iis") iis_flagged = true;
  }
  EXPECT_TRUE(iis_flagged);
}

TEST(Detect, NotForwardAssertionFlagsProxies) {
  Assertion a;
  a.role = text::Role::kRecipient;
  a.expect_not_forward = true;
  a.sr_id = "sr-clte";
  std::string body = "0\r\n\r\nGET /evil HTTP/1.1\r\nHost: h\r\n\r\n";
  TestCase tc = make_case(
      "u2",
      "POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n"
      "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body,
      a, AttackClass::kHrs);

  DetectionEngine engine;
  DetectionResult r =
      engine.evaluate(tc, full_chain().observe(tc.uuid, tc.raw));
  std::set<std::string> flagged;
  for (const auto& v : r.violations) flagged.insert(v.impl);
  // Apache and nginx reject CL+TE outright; the other proxies forward it.
  EXPECT_FALSE(flagged.contains("apache"));
  EXPECT_FALSE(flagged.contains("nginx"));
  EXPECT_TRUE(flagged.contains("varnish"));
  EXPECT_TRUE(flagged.contains("haproxy"));
}

TEST(Detect, HotPairOnAmbiguousHost) {
  TestCase tc = make_case(
      "u3", "GET /?a=1 HTTP/1.1\r\nHost: h1.com@h2.com\r\n\r\n",
      std::nullopt, AttackClass::kHot);
  DetectionEngine engine;
  DetectionResult r =
      engine.evaluate(tc, full_chain().observe(tc.uuid, tc.raw));
  bool nginx_to_iis = false;
  for (const auto& p : r.pairs) {
    if (p.attack != AttackClass::kHot) continue;
    EXPECT_NE(p.back, "nginx");  // nginx-back routes like the fronts
    if (p.front == "nginx" && p.back == "iis") nginx_to_iis = true;
  }
  EXPECT_TRUE(nginx_to_iis);
}

TEST(Detect, HrsPairOnSmuggledSuffix) {
  std::string smuggle = "0\r\n\r\nGET /evil HTTP/1.1\r\nHost: h\r\n\r\n";
  TestCase tc = make_case(
      "u4",
      "POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: \x0b" "chunked\r\n"
      "Content-Length: " + std::to_string(smuggle.size()) + "\r\n\r\n" +
          smuggle,
      std::nullopt, AttackClass::kHrs);
  DetectionEngine engine;
  DetectionResult r =
      engine.evaluate(tc, full_chain().observe(tc.uuid, tc.raw));
  bool ats_to_tomcat = false;
  for (const auto& p : r.pairs) {
    if (p.attack == AttackClass::kHrs && p.front == "ats" &&
        p.back == "tomcat") {
      ats_to_tomcat = true;
    }
  }
  EXPECT_TRUE(ats_to_tomcat);
}

TEST(Detect, CpdosRequiresSomeBackendToAccept) {
  // An unknown method is rejected by every backend => no semantic gap, no
  // CPDoS pair despite cached errors.
  TestCase tc = make_case("u5", "BREW / HTTP/1.1\r\nHost: h\r\n\r\n");
  DetectionEngine engine;
  DetectionResult r =
      engine.evaluate(tc, full_chain().observe(tc.uuid, tc.raw));
  for (const auto& p : r.pairs) {
    EXPECT_NE(p.attack, AttackClass::kCpdos) << p.front << "->" << p.back;
  }
}

TEST(Detect, CpdosPairOnVersionRepair) {
  TestCase tc = make_case("u6", "GET /?a=b 1.1/HTTP\r\nHost: h1.com\r\n\r\n",
                          std::nullopt, AttackClass::kCpdos);
  DetectionEngine engine;
  DetectionResult r =
      engine.evaluate(tc, full_chain().observe(tc.uuid, tc.raw));
  bool nginx_front = false;
  for (const auto& p : r.pairs) {
    if (p.attack == AttackClass::kCpdos && p.front == "nginx") {
      nginx_front = true;
    }
  }
  EXPECT_TRUE(nginx_front);
}

TEST(Detect, CleanRequestProducesNoFindings) {
  TestCase tc = make_case("u7", "GET / HTTP/1.1\r\nHost: h1.com\r\n\r\n");
  DetectionEngine engine;
  DetectionResult r =
      engine.evaluate(tc, full_chain().observe(tc.uuid, tc.raw));
  EXPECT_TRUE(r.violations.empty());
  EXPECT_TRUE(r.pairs.empty());
  EXPECT_EQ(r.discrepancies.inputs_with_discrepancy, 0u);
}

TEST(Detect, DiscrepanciesCounted) {
  // Fat GET: lighttpd 400 while others 200 => status discrepancy.
  TestCase tc = make_case(
      "u8", "GET / HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nAAAAA");
  DetectionEngine engine;
  DetectionResult r =
      engine.evaluate(tc, full_chain().observe(tc.uuid, tc.raw));
  EXPECT_EQ(r.discrepancies.status_disagreements, 1u);
  EXPECT_EQ(r.discrepancies.inputs_with_discrepancy, 1u);
}

TEST(Detect, AccumulateDeduplicates) {
  DetectionResult total;
  DetectionResult delta;
  delta.violations.push_back({"iis", "sr-1", "u1", AttackClass::kHrs, "d"});
  delta.pairs.push_back({"ats", "iis", AttackClass::kHrs, "u1", "d"});
  delta.discrepancies.inputs_with_discrepancy = 1;
  DetectionEngine::accumulate(total, delta);
  DetectionEngine::accumulate(total, delta);
  EXPECT_EQ(total.violations.size(), 1u);
  EXPECT_EQ(total.pairs.size(), 1u);
  EXPECT_EQ(total.discrepancies.inputs_with_discrepancy, 2u);
}

TEST(Detect, MatrixAttributionBlamesTransparentFront) {
  // ats forwards the ws-colon header it ignored; the reference parser
  // rejects the forwarded bytes => ats (front) is at fault, not IIS-as-back.
  TestCase tc = make_case(
      "u9", "POST / HTTP/1.1\r\nHost: h\r\nContent-Length : 5\r\n\r\nAAAAA",
      std::nullopt, AttackClass::kHrs);
  DetectionEngine engine;
  DetectionResult r =
      engine.evaluate(tc, full_chain().observe(tc.uuid, tc.raw));
  VulnMatrix matrix = build_matrix(r, {tc});
  EXPECT_TRUE(matrix.by_impl.at("ats").hrs);
  EXPECT_FALSE(matrix.by_impl.at("apache").hrs);
}

TEST(Detect, MatrixBlamesDeviantBackOnCleanForward) {
  // Fat GET forwarded cleanly; weblogic (back) ignores the body.
  TestCase tc = make_case(
      "u10", "GET / HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nAAAAA",
      std::nullopt, AttackClass::kHrs);
  DetectionEngine engine;
  DetectionResult r =
      engine.evaluate(tc, full_chain().observe(tc.uuid, tc.raw));
  VulnMatrix matrix = build_matrix(r, {tc});
  EXPECT_TRUE(matrix.by_impl.at("weblogic").hrs);
  EXPECT_FALSE(matrix.by_impl.at("apache").hrs);
  EXPECT_FALSE(matrix.by_impl.at("nginx").hrs);
}

TEST(Detect, VectorCatalogueBuilt) {
  TestCase tc = make_case(
      "u11", "GET /?a=1 HTTP/1.1\r\nHost: h1.com@h2.com\r\n\r\n",
      std::nullopt, AttackClass::kHot);
  tc.vector_label = "Invalid Host header";
  DetectionEngine engine;
  DetectionResult r =
      engine.evaluate(tc, full_chain().observe(tc.uuid, tc.raw));
  VulnMatrix matrix = build_matrix(r, {tc});
  ASSERT_TRUE(matrix.vector_catalogue.contains("Invalid Host header"));
  EXPECT_TRUE(
      matrix.vector_catalogue.at("Invalid Host header").contains("HoT"));
}

TEST(HMetricsVector, FromVerdicts) {
  auto iis = impls::make_implementation("iis");
  impls::ServerVerdict sv = iis->parse_request(
      "POST / HTTP/1.1\r\nHost: h1.com\r\nContent-Length: 3\r\n\r\nabcXY");
  HMetrics m = from_verdict("u", sv, Stage::kDirect);
  EXPECT_EQ(m.impl, "iis");
  EXPECT_EQ(m.status_code, 200);
  EXPECT_EQ(m.host, "h1.com");
  EXPECT_EQ(m.data, "abc");
  EXPECT_EQ(m.leftover, "XY");
  EXPECT_TRUE(m.ok());
  std::string rendered = to_string(m);
  EXPECT_NE(rendered.find("iis"), std::string::npos);
  EXPECT_NE(rendered.find("status=200"), std::string::npos);

  auto varnish = impls::make_implementation("varnish");
  impls::ProxyVerdict pv =
      varnish->forward_request("GET / HTTP/1.1\r\nHost: h1.com\r\n\r\n");
  HMetrics pm = from_verdict("u", pv);
  EXPECT_TRUE(pm.forwarded);
  EXPECT_TRUE(pm.would_cache);
  EXPECT_EQ(pm.stage, Stage::kProxy);
}

}  // namespace
}  // namespace hdiff::core
