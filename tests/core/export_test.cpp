// Custom detection rules, JSON writer, and findings/corpus export.
#include <gtest/gtest.h>

#include "core/export.h"
#include "core/probes.h"
#include "core/rules.h"
#include "impls/products.h"
#include "report/json.h"

namespace hdiff::core {
namespace {

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

TEST(Json, StringEscaping) {
  using report::json_string;
  EXPECT_EQ(json_string("plain"), "\"plain\"");
  EXPECT_EQ(json_string("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_string("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_string("line\r\n"), "\"line\\r\\n\"");
  EXPECT_EQ(json_string(std::string("\x0b", 1)), "\"\\u000b\"");
  EXPECT_EQ(json_string(std::string("\0", 1)), "\"\\u0000\"");
}

TEST(Json, BuilderProducesValidStructure) {
  report::JsonWriter w;
  w.begin_object();
  w.key("name").value("hdiff");
  w.key("count").value(std::uint64_t{3});
  w.key("flags").begin_array().value(true).value(false).end_array();
  w.key("nested").begin_object().key("x").value(1).end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"hdiff\",\"count\":3,\"flags\":[true,false],"
            "\"nested\":{\"x\":1}}");
}

// ---------------------------------------------------------------------------
// Hex round trip
// ---------------------------------------------------------------------------

TEST(Hex, RoundTripsBinary) {
  std::string bytes;
  for (int i = 0; i < 256; ++i) bytes.push_back(static_cast<char>(i));
  std::string decoded;
  ASSERT_TRUE(hex_decode(hex_encode(bytes), &decoded));
  EXPECT_EQ(decoded, bytes);
}

TEST(Hex, RejectsMalformed) {
  std::string out;
  EXPECT_FALSE(hex_decode("abc", &out));   // odd length
  EXPECT_FALSE(hex_decode("zz", &out));    // non-hex
  EXPECT_TRUE(hex_decode("", &out));       // empty is fine
}

// ---------------------------------------------------------------------------
// Corpus export / import round trip
// ---------------------------------------------------------------------------

TEST(CorpusExport, RoundTripsProbesWithAssertions) {
  auto probes = verification_probes();
  std::string json = export_test_cases_json(probes);
  std::vector<TestCase> back;
  ASSERT_TRUE(import_test_cases_json(json, &back));
  ASSERT_EQ(back.size(), probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(back[i].uuid, probes[i].uuid);
    EXPECT_EQ(back[i].raw, probes[i].raw);  // exact bytes, incl. CTL/NUL
    EXPECT_EQ(back[i].description, probes[i].description);
    EXPECT_EQ(back[i].vector_label, probes[i].vector_label);
    EXPECT_EQ(back[i].origin, probes[i].origin);
    EXPECT_EQ(back[i].category, probes[i].category);
    ASSERT_EQ(back[i].assertion.has_value(), probes[i].assertion.has_value());
    if (back[i].assertion) {
      EXPECT_EQ(back[i].assertion->expect_reject,
                probes[i].assertion->expect_reject);
      EXPECT_EQ(back[i].assertion->expect_not_forward,
                probes[i].assertion->expect_not_forward);
      EXPECT_EQ(back[i].assertion->sr_id, probes[i].assertion->sr_id);
    }
  }
}

TEST(CorpusExport, RejectsGarbage) {
  std::vector<TestCase> out;
  EXPECT_FALSE(import_test_cases_json("", &out));
  EXPECT_FALSE(import_test_cases_json("[]", &out));
  EXPECT_FALSE(import_test_cases_json("{\"cases\":", &out));
  EXPECT_FALSE(import_test_cases_json("{\"cases\":[{\"raw_hex\":\"zz\"}]}",
                                      &out));
}

TEST(CorpusExport, EmptyCorpus) {
  std::string json = export_test_cases_json({});
  std::vector<TestCase> out{TestCase{}};
  ASSERT_TRUE(import_test_cases_json(json, &out));
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// Custom rule engine
// ---------------------------------------------------------------------------

net::Chain full_chain() {
  static const auto kFleet = impls::make_all_implementations();
  return net::Chain::from_fleet(kFleet);
}

TEST(CustomRules, BuiltinsAgreeWithDetectionEngine) {
  auto probes = verification_probes();
  net::Chain chain = full_chain();
  DetectionEngine engine;
  CustomRuleEngine rules = make_builtin_rules();

  for (const auto& tc : probes) {
    auto obs = chain.observe(tc.uuid, tc.raw);
    DetectionResult builtin = engine.evaluate(tc, obs);
    std::vector<RuleMatch> matches = rules.evaluate(tc, obs);

    // Every built-in pair finding has a corresponding custom-rule match.
    for (const auto& p : builtin.pairs) {
      bool found = false;
      for (const auto& m : matches) {
        if (m.front == p.front && m.back == p.back && m.attack == p.attack) {
          found = true;
        }
      }
      // The CPDoS builtin additionally gates on "some backend accepts",
      // which a per-pair rule cannot see; every other class must agree.
      if (p.attack != AttackClass::kCpdos) {
        EXPECT_TRUE(found) << tc.uuid << " " << p.front << "->" << p.back;
      }
    }
  }
}

TEST(CustomRules, UserRuleFires) {
  CustomRuleEngine rules;
  rules.add(PairRule{
      "body-shrinks", AttackClass::kHrs,
      [](const PairMetrics& pm) -> std::string {
        if (pm.back.ok() && pm.back.data.size() < pm.front.data.size()) {
          return "back-end consumed a shorter body than the front framed";
        }
        return {};
      }});
  EXPECT_EQ(rules.rule_count(), 1u);

  TestCase tc;
  tc.uuid = "cr1";
  std::string body = "0\r\n\r\nGET /evil HTTP/1.1\r\nHost: h\r\n\r\n";
  tc.raw = "POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: \x0b"
           "chunked\r\nContent-Length: " + std::to_string(body.size()) +
           "\r\n\r\n" + body;
  auto obs = full_chain().observe(tc.uuid, tc.raw);
  auto matches = rules.evaluate(tc, obs);
  bool tomcat_hit = false;
  for (const auto& m : matches) {
    EXPECT_EQ(m.rule, "body-shrinks");
    if (m.back == "tomcat") tomcat_hit = true;
  }
  EXPECT_TRUE(tomcat_hit);
}

TEST(CustomRules, DirectRuleSeesEveryBackend) {
  CustomRuleEngine rules;
  rules.add(DirectRule{
      "always", AttackClass::kGeneric,
      [](const HMetrics& m) { return std::string(m.impl); }});
  TestCase tc;
  tc.uuid = "cr2";
  tc.raw = "GET / HTTP/1.1\r\nHost: h\r\n\r\n";
  auto matches = rules.evaluate(tc, full_chain().observe(tc.uuid, tc.raw));
  std::size_t direct = 0;
  for (const auto& m : matches) {
    if (m.front.empty()) ++direct;
  }
  EXPECT_EQ(direct, 6u);
}

// ---------------------------------------------------------------------------
// Findings export sanity
// ---------------------------------------------------------------------------

TEST(FindingsExport, ContainsMatrixAndPairs) {
  PipelineResult result;
  result.matrix.by_impl["iis"] = {true, true, false};
  result.matrix.hot_pairs.insert("nginx->iis");
  SrViolation v{"iis", "sr-1", "u1", AttackClass::kHrs, "detail \"quoted\""};
  result.findings.violations.push_back(v);
  std::string json = export_json(result);
  EXPECT_NE(json.find("\"hdiff-findings-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"iis\":{\"hrs\":true,\"hot\":true,\"cpdos\":false}"),
            std::string::npos);
  EXPECT_NE(json.find("\"nginx->iis\""), std::string::npos);
  EXPECT_NE(json.find("detail \\\"quoted\\\""), std::string::npos);
}

TEST(FindingsExport, ReportsDegradationAccounting) {
  PipelineResult result;
  result.exec_stats.faulted_attempts = 5;
  result.exec_stats.retry_attempts = 4;
  result.exec_stats.recovered_cases = 2;
  result.exec_stats.quarantined_cases = 1;
  result.exec_stats.quarantined.push_back(
      QuarantinedCase{"u-q1", net::ChainError::kReset, 3, "reset at parse"});
  std::string json = export_json(result);
  EXPECT_NE(json.find("\"degradation\":{\"faulted_attempts\":5,"
                      "\"retry_attempts\":4,\"recovered_cases\":2,"
                      "\"quarantined_cases\":1"),
            std::string::npos);
  EXPECT_NE(json.find("{\"uuid\":\"u-q1\",\"error\":\"reset\",\"attempts\":3,"
                      "\"detail\":\"reset at parse\"}"),
            std::string::npos);
}

TEST(FindingsExport, ReportsExecutorMetricsBlock) {
  PipelineResult result;
  result.exec_stats.jobs = 4;
  result.exec_stats.cases = 10;
  result.exec_stats.memo_hits = 3;
  result.exec_stats.memo_misses = 1;
  result.exec_stats.memo_bytes = 128;
  result.exec_stats.verdict_hits = 1;
  result.exec_stats.verdict_misses = 3;
  result.exec_stats.verdict_bytes = 256;
  result.exec_stats.echo_records = 7;
  result.exec_stats.echo_dropped = 2;
  std::string json = export_json(result);
  EXPECT_NE(json.find("\"metrics\":{\"jobs\":4,\"cases\":10,"
                      "\"memo_hits\":3,\"memo_misses\":1,"
                      "\"memo_hit_rate\":0.75,\"memo_bytes\":128,"
                      "\"verdict_hits\":1,\"verdict_misses\":3,"
                      "\"verdict_hit_rate\":0.25,\"verdict_bytes\":256,"
                      "\"echo_records\":7,\"echo_dropped\":2}"),
            std::string::npos);
}

TEST(FindingsExport, ReportsStageTimingsInOrder) {
  PipelineResult result;
  result.stage_timings.push_back(StageTiming{"analyze", 1500});
  result.stage_timings.push_back(StageTiming{"differential", 42000});
  std::string json = export_json(result);
  EXPECT_NE(json.find("\"stage_timings\":[{\"stage\":\"analyze\","
                      "\"micros\":1500},{\"stage\":\"differential\","
                      "\"micros\":42000}]"),
            std::string::npos);
}

TEST(FindingsExport, DegradationZeroOnHealthyRun) {
  PipelineResult result;
  std::string json = export_json(result);
  EXPECT_NE(json.find("\"degradation\":{\"faulted_attempts\":0,"
                      "\"retry_attempts\":0,\"recovered_cases\":0,"
                      "\"quarantined_cases\":0,\"quarantined\":[]}"),
            std::string::npos);
}

}  // namespace
}  // namespace hdiff::core
