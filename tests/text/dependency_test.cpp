#include "text/dependency.h"

#include <gtest/gtest.h>

namespace hdiff::text {
namespace {

const Token& tok(const DepTree& t, std::size_t i) { return t.tokens[i]; }

TEST(Dependency, FindsModalRootAndSubject) {
  DepTree t = parse_dependencies("A server MUST reject the message");
  ASSERT_TRUE(t.root);
  EXPECT_EQ(tok(t, *t.root).lower, "reject");
  auto subj = t.find_dep(*t.root, Rel::kNsubj);
  ASSERT_TRUE(subj);
  EXPECT_EQ(tok(t, *subj).lower, "server");
  auto aux = t.find_dep(*t.root, Rel::kAux);
  ASSERT_TRUE(aux);
  EXPECT_EQ(tok(t, *aux).lower, "must");
}

TEST(Dependency, NegationAttached) {
  DepTree t = parse_dependencies("A proxy MUST NOT forward the request");
  ASSERT_TRUE(t.root);
  EXPECT_EQ(tok(t, *t.root).lower, "forward");
  EXPECT_TRUE(t.find_dep(*t.root, Rel::kNeg));
}

TEST(Dependency, DirectObject) {
  DepTree t = parse_dependencies("The server MUST reject the request");
  auto dobj = t.find_dep(*t.root, Rel::kDobj);
  ASSERT_TRUE(dobj);
  EXPECT_EQ(tok(t, *dobj).lower, "request");
}

TEST(Dependency, PrepositionalAttachment) {
  DepTree t =
      parse_dependencies("The server MUST respond with a 400 status code");
  ASSERT_TRUE(t.root);
  auto preps = t.deps(*t.root, Rel::kPrep);
  ASSERT_FALSE(preps.empty());
  auto pobj = t.find_dep(preps[0], Rel::kPobj);
  ASSERT_TRUE(pobj);
  EXPECT_EQ(tok(t, *pobj).lower, "400");
}

TEST(Dependency, ModalGroupPreferredAsRoot) {
  // The relative-clause verb "receives" precedes the modal group; the root
  // must still be the requirement verb.
  DepTree t = parse_dependencies(
      "A server that receives an obs-fold MUST reject the message");
  ASSERT_TRUE(t.root);
  EXPECT_EQ(tok(t, *t.root).lower, "reject");
  auto subj = t.find_dep(*t.root, Rel::kNsubj);
  ASSERT_TRUE(subj);
  EXPECT_EQ(tok(t, *subj).lower, "server");
}

TEST(Dependency, PassiveGroupHeadIsLastVerb) {
  DepTree t = parse_dependencies("Such a message ought to be handled as an error");
  ASSERT_TRUE(t.root);
  EXPECT_EQ(tok(t, *t.root).lower, "handled");
}

TEST(Dependency, CoordinationProducesConjArcs) {
  DepTree t = parse_dependencies(
      "The server MUST reject the message or MUST close the connection");
  ASSERT_TRUE(t.root);
  bool has_cc = false, has_conj = false;
  for (const auto& arc : t.arcs) {
    if (arc.rel == Rel::kCc) has_cc = true;
    if (arc.rel == Rel::kConj) has_conj = true;
  }
  EXPECT_TRUE(has_cc);
  EXPECT_TRUE(has_conj);
}

TEST(Dependency, DeterminerAndAdjectiveAttachments) {
  DepTree t = parse_dependencies("An invalid value MUST be rejected");
  bool has_det = false, has_amod = false;
  for (const auto& arc : t.arcs) {
    if (arc.rel == Rel::kDet && tok(t, arc.dep).lower == "an") has_det = true;
    if (arc.rel == Rel::kAmod && tok(t, arc.dep).lower == "invalid") {
      has_amod = true;
    }
  }
  EXPECT_TRUE(has_det);
  EXPECT_TRUE(has_amod);
}

TEST(Dependency, NominalSentenceGetsNounRoot) {
  DepTree t = parse_dependencies("No verb here whatsoever");
  ASSERT_TRUE(t.root);
}

TEST(Dependency, EmptyInput) {
  DepTree t = parse_dependencies("");
  EXPECT_FALSE(t.root);
  EXPECT_TRUE(t.arcs.empty());
}

TEST(Dependency, DebugRenderingMentionsRelations) {
  DepTree t = parse_dependencies("A server MUST reject the message");
  std::string dbg = t.to_debug_string();
  EXPECT_NE(dbg.find("nsubj(reject, server)"), std::string::npos);
  EXPECT_NE(dbg.find("aux(reject, MUST)"), std::string::npos);
}

}  // namespace
}  // namespace hdiff::text
