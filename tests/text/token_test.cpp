#include "text/token.h"

#include <gtest/gtest.h>

namespace hdiff::text {
namespace {

Pos pos_of(const std::vector<Token>& toks, std::string_view word) {
  for (const auto& t : toks) {
    if (t.text == word) return t.pos;
  }
  ADD_FAILURE() << "token not found: " << word;
  return Pos::kOther;
}

TEST(Tokenize, KeepsProtocolTokensIntact) {
  auto toks = tokenize("The Transfer-Encoding header and HTTP/1.1 version.");
  bool te = false, version = false;
  for (const auto& t : toks) {
    if (t.text == "Transfer-Encoding") te = true;
    if (t.text == "HTTP/1.1") version = true;
  }
  EXPECT_TRUE(te);
  EXPECT_TRUE(version);
}

TEST(Tokenize, SentencePeriodDetached) {
  auto toks = tokenize("reject the message.");
  EXPECT_EQ(toks.back().text, ".");
  EXPECT_EQ(toks[toks.size() - 2].text, "message");
}

TEST(Tokenize, QuotedLiteralIsOneSymbol) {
  auto toks = tokenize("the value \"chunked, identity\" is obsolete");
  bool found = false;
  for (const auto& t : toks) {
    if (t.pos == Pos::kSymbol && t.text == "\"chunked, identity\"") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Tokenize, OffsetsPointIntoSource) {
  std::string s = "A server MUST reject";
  auto toks = tokenize(s);
  for (const auto& t : toks) {
    ASSERT_LE(t.offset + t.text.size(), s.size() + 1);
    EXPECT_EQ(s.substr(t.offset, t.text.size()), t.text);
  }
}

TEST(TagPos, ModalsAndRoles) {
  auto toks = analyze("A server MUST NOT forward the invalid message");
  EXPECT_EQ(pos_of(toks, "MUST"), Pos::kModal);
  EXPECT_EQ(pos_of(toks, "server"), Pos::kNoun);
  EXPECT_EQ(pos_of(toks, "forward"), Pos::kVerb);
  EXPECT_EQ(pos_of(toks, "invalid"), Pos::kAdj);
  EXPECT_EQ(pos_of(toks, "A"), Pos::kDet);
  EXPECT_EQ(pos_of(toks, "NOT"), Pos::kAdv);
}

TEST(TagPos, SuffixHeuristics) {
  auto toks = analyze("the transformation quickly preceding validation");
  EXPECT_EQ(pos_of(toks, "transformation"), Pos::kNoun);
  EXPECT_EQ(pos_of(toks, "quickly"), Pos::kAdv);
}

TEST(TagPos, NumbersAndVersions) {
  auto toks = analyze("respond with a 400 status code to HTTP/1.1 requests");
  EXPECT_EQ(pos_of(toks, "400"), Pos::kNum);
}

TEST(TagPos, MidSentenceCapitalsAreProperNouns) {
  auto toks = analyze("the Host header field");
  EXPECT_EQ(pos_of(toks, "Host"), Pos::kProperNoun);
}

TEST(TagPos, ConjunctionsAndSubordinators) {
  auto toks = analyze("reject it and close, unless the value is valid");
  EXPECT_EQ(pos_of(toks, "and"), Pos::kConj);
  EXPECT_EQ(pos_of(toks, "unless"), Pos::kSubConj);
}

}  // namespace
}  // namespace hdiff::text
