#include "text/sentence.h"

#include <gtest/gtest.h>

namespace hdiff::text {
namespace {

TEST(Normalize, CollapsesWhitespace) {
  EXPECT_EQ(normalize_whitespace("  a\n   b\t\tc  "), "a b c");
  EXPECT_EQ(normalize_whitespace(""), "");
}

TEST(CountWords, Counts) {
  EXPECT_EQ(count_words("one two  three"), 3u);
  EXPECT_EQ(count_words(""), 0u);
  EXPECT_EQ(count_words("   "), 0u);
}

TEST(SplitSentences, BasicBoundaries) {
  auto s = split_sentences(
      "A server MUST reject the message. A proxy MAY forward it. Is it done?");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].text, "A server MUST reject the message.");
  EXPECT_EQ(s[1].text, "A proxy MAY forward it.");
  EXPECT_EQ(s[2].index, 2u);
}

TEST(SplitSentences, ProtectsAbbreviations) {
  auto s = split_sentences(
      "Some fields (e.g. Host and Expect) are special. Others are not here.");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_NE(s[0].text.find("Host"), std::string::npos);
}

TEST(SplitSentences, ProtectsVersionNumbers) {
  auto s = split_sentences(
      "HTTP/1.1 requests require a Host field as defined in Section 3.2.2 "
      "of the specification. The next sentence starts here now.");
  ASSERT_EQ(s.size(), 2u);
}

TEST(SplitSentences, DropsShortFragments) {
  auto s = split_sentences("Heading. A real sentence with many words here.");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_NE(s[0].text.find("real sentence"), std::string::npos);
}

TEST(SplitSentences, HardWrappedProse) {
  auto s = split_sentences(
      "A sender MUST NOT generate multiple header\n"
      "   fields with the same field name in a\n"
      "   message.  Another sentence follows here.");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].text,
            "A sender MUST NOT generate multiple header fields with the same "
            "field name in a message.");
}

TEST(SplitSentences, TrailingTextWithoutPeriod) {
  auto s = split_sentences("An unterminated final sentence lives here");
  ASSERT_EQ(s.size(), 1u);
}

}  // namespace
}  // namespace hdiff::text

namespace hdiff::text {
namespace {

TEST(GrammarFilter, FlagsAbnfFragments) {
  EXPECT_TRUE(looks_like_grammar("OWS = *( SP / HTAB ) ; optional"));
  EXPECT_TRUE(looks_like_grammar("methods =/ \"PATCH\""));
  EXPECT_TRUE(looks_like_grammar(
      "token = 1*tchar tchar = %x21 / %x23-27 ; any VCHAR"));
}

TEST(GrammarFilter, KeepsRequirementProse) {
  EXPECT_FALSE(looks_like_grammar(
      "A server MUST respond with a 400 status code to any request."));
  EXPECT_FALSE(looks_like_grammar(
      "The presence of a message body is signaled by a Content-Length or "
      "Transfer-Encoding header field."));
}

}  // namespace
}  // namespace hdiff::text
