#include "text/sentiment.h"

#include <gtest/gtest.h>

namespace hdiff::text {
namespace {

TEST(Sentiment, Rfc2119KeywordsScoreHigh) {
  SentimentClassifier c;
  EXPECT_GE(c.score("A server MUST respond with a 400 status code.").strength,
            0.9);
  EXPECT_GE(c.score("The client SHALL close the connection.").strength, 0.9);
  EXPECT_GE(c.score("A proxy SHOULD forward the message.").strength, 0.7);
}

TEST(Sentiment, CapitalizedKeywordScoresHigherThanLowercase) {
  SentimentClassifier c;
  double caps = c.score("The server MUST reject it.").strength;
  double lower = c.score("The server must reject it.").strength;
  EXPECT_GT(caps, lower);
}

TEST(Sentiment, InformalObligationsDetected) {
  // These are the paper's examples of SRs a keyword filter misses.
  SentimentClassifier c;
  EXPECT_TRUE(c.is_requirement("A chunked message is not allowed here."));
  EXPECT_TRUE(c.is_requirement("The response cannot contain a message body."));
  EXPECT_TRUE(
      c.is_requirement("Such a message ought to be handled as an error."));
}

TEST(Sentiment, KeywordFilterMissesInformalForms) {
  EXPECT_FALSE(keyword_filter_matches("A chunked message is not allowed."));
  EXPECT_FALSE(keyword_filter_matches("It cannot contain a message body."));
  EXPECT_TRUE(keyword_filter_matches("A server MUST reject it."));
}

TEST(Sentiment, KeywordFilterWholeWordOnly) {
  EXPECT_FALSE(keyword_filter_matches("The MAYOR approved the proposal."));
  EXPECT_TRUE(keyword_filter_matches("The server MAY respond with 417."));
}

TEST(Sentiment, NeutralProseScoresLow) {
  SentimentClassifier c;
  EXPECT_LT(c.score("The Internet has many middleboxes deployed today.")
                .strength,
            c.threshold());
  EXPECT_FALSE(c.is_requirement(
      "HTTP is a text-based protocol for fetching resources."));
}

TEST(Sentiment, PolarityDistinguishesProhibition) {
  SentimentClassifier c;
  EXPECT_EQ(c.score("A sender MUST NOT generate a bare CR.").polarity,
            SentimentPolarity::kProhibition);
  EXPECT_EQ(c.score("A server MUST accept absolute-form requests.").polarity,
            SentimentPolarity::kObligation);
  EXPECT_EQ(c.score("Middleboxes are widely deployed.").polarity,
            SentimentPolarity::kNeutral);
}

TEST(Sentiment, CuesAreReported) {
  SentimentClassifier c;
  auto r = c.score("A server MUST reject and MUST NOT forward it.");
  EXPECT_GE(r.cues.size(), 2u);
}

TEST(Sentiment, MayScoresAboveNeutralBelowMust) {
  SentimentClassifier c;
  double may = c.score("A proxy MAY discard the field.").strength;
  double must = c.score("A proxy MUST discard the field.").strength;
  EXPECT_GT(may, 0.0);
  EXPECT_GT(must, may);
}

struct SrExample {
  const char* sentence;
  bool is_sr;
};

class SentimentCorpusTest : public ::testing::TestWithParam<SrExample> {};

TEST_P(SentimentCorpusTest, ClassifiesRfcStyleSentences) {
  SentimentClassifier c;
  EXPECT_EQ(c.is_requirement(GetParam().sentence), GetParam().is_sr)
      << GetParam().sentence;
}

INSTANTIATE_TEST_SUITE_P(
    RfcSentences, SentimentCorpusTest,
    ::testing::Values(
        SrExample{"A server MUST respond with a 400 (Bad Request) status "
                  "code to any HTTP/1.1 request message that lacks a Host "
                  "header field.",
                  true},
        SrExample{"A sender MUST NOT send a Content-Length header field in "
                  "any message that contains a Transfer-Encoding header "
                  "field.",
                  true},
        SrExample{"The identity value is obsolete and ought to be treated "
                  "as an error by recipients.",
                  true},
        SrExample{"Such whitespace is not permitted between the field name "
                  "and the colon.",
                  true},
        SrExample{"This specification targets conformance criteria "
                  "according to the role of a participant.",
                  false},
        SrExample{"The method token is the primary source of request "
                  "semantics.",
                  false}));

}  // namespace
}  // namespace hdiff::text
