#include "text/entailment.h"

#include <gtest/gtest.h>

namespace hdiff::text {
namespace {

std::set<std::string> http_fields() {
  return {"host", "content-length", "transfer-encoding", "expect",
          "connection", "http-version"};
}

TEST(Roles, WordMapping) {
  EXPECT_EQ(role_from_word("server"), Role::kServer);
  EXPECT_EQ(role_from_word("Proxies"), Role::kProxy);
  EXPECT_EQ(role_from_word("recipient"), Role::kRecipient);
  EXPECT_EQ(role_from_word("widget"), Role::kUnknown);
}

TEST(Roles, CoverageHierarchy) {
  EXPECT_TRUE(role_covers(Role::kRecipient, Role::kServer));
  EXPECT_TRUE(role_covers(Role::kRecipient, Role::kProxy));
  EXPECT_TRUE(role_covers(Role::kSender, Role::kClient));
  EXPECT_TRUE(role_covers(Role::kIntermediary, Role::kProxy));
  EXPECT_FALSE(role_covers(Role::kServer, Role::kClient));
  EXPECT_FALSE(role_covers(Role::kClient, Role::kServer));
  EXPECT_TRUE(role_covers(Role::kServer, Role::kOrigin));
}

TEST(Actions, VerbNormalization) {
  EXPECT_EQ(action_from_verb("reject"), Action::kReject);
  EXPECT_EQ(action_from_verb("rejects"), Action::kReject);
  EXPECT_EQ(action_from_verb("rejected"), Action::kReject);
  EXPECT_EQ(action_from_verb("forwarding"), Action::kForward);
  EXPECT_EQ(action_from_verb("responds"), Action::kRespond);
  EXPECT_EQ(action_from_verb("discarded"), Action::kReject);
  EXPECT_EQ(action_from_verb("includes"), Action::kContain);
  EXPECT_EQ(action_from_verb("xyzzy"), Action::kUnknown);
}

TEST(ExtractFacts, FullRequirementSentence) {
  PremiseFacts f = extract_facts(
      "A server MUST respond with a 400 status code to any request that "
      "contains more than one Host header field",
      http_fields());
  EXPECT_EQ(f.role, Role::kServer);
  EXPECT_EQ(f.action, Action::kRespond);
  EXPECT_FALSE(f.negated);
  EXPECT_GE(f.modal_strength, 0.9);
  ASSERT_FALSE(f.status_codes.empty());
  EXPECT_EQ(f.status_codes[0], 400);
  ASSERT_FALSE(f.fields.empty());
  EXPECT_EQ(f.fields[0], "host");
  EXPECT_TRUE(f.modifiers.contains("multiple"));
}

TEST(ExtractFacts, ProhibitionAndNegation) {
  PremiseFacts f = extract_facts(
      "A sender MUST NOT send a Content-Length header field in any message "
      "that contains a Transfer-Encoding header field",
      http_fields());
  EXPECT_EQ(f.role, Role::kSender);
  EXPECT_TRUE(f.negated);
}

TEST(ExtractFacts, LacksImpliesMissing) {
  PremiseFacts f = extract_facts(
      "A server MUST reject any HTTP/1.1 request message that lacks a Host "
      "header field",
      http_fields());
  EXPECT_TRUE(f.modifiers.contains("missing"));
}

TEST(ExtractFacts, WhitespaceModifier) {
  PremiseFacts f = extract_facts(
      "A server MUST reject any message that contains whitespace between a "
      "header field-name and colon",
      http_fields());
  EXPECT_TRUE(f.modifiers.contains("whitespace"));
}

TEST(ExtractFacts, VersionAlias) {
  PremiseFacts f = extract_facts(
      "The intermediary MUST send its own HTTP version in forwarded messages",
      http_fields());
  bool has_version = false;
  for (const auto& field : f.fields) {
    if (field == "http-version") has_version = true;
  }
  EXPECT_TRUE(has_version);
}

TEST(Entailment, PositiveCase) {
  EntailmentEngine engine;
  Hypothesis h;
  h.role = Role::kServer;
  h.action = Action::kRespond;
  h.status_code = 400;
  h.field = "host";
  auto r = engine.entails(
      "A server MUST respond with a 400 status code to any request message "
      "that contains more than one Host header field",
      h, http_fields());
  EXPECT_TRUE(r.entailed);
  EXPECT_DOUBLE_EQ(r.confidence, 1.0);
}

TEST(Entailment, RoleMismatchBlocks) {
  EntailmentEngine engine;
  Hypothesis h;
  h.role = Role::kClient;
  h.action = Action::kRespond;
  auto r = engine.entails("A server MUST respond with an error", h,
                          http_fields());
  EXPECT_FALSE(r.entailed);
  ASSERT_FALSE(r.mismatches.empty());
}

TEST(Entailment, PolarityMismatchBlocks) {
  EntailmentEngine engine;
  Hypothesis h;
  h.role = Role::kProxy;
  h.action = Action::kForward;
  h.negated = false;
  auto r = engine.entails("A proxy MUST NOT forward the message", h,
                          http_fields());
  EXPECT_FALSE(r.entailed);

  h.negated = true;
  r = engine.entails("A proxy MUST NOT forward the message", h, http_fields());
  EXPECT_TRUE(r.entailed);
}

TEST(Entailment, WeakLanguageBlocks) {
  EntailmentEngine engine;
  Hypothesis h;
  h.role = Role::kServer;
  h.action = Action::kAccept;
  auto r = engine.entails("A server typically accepts such requests", h,
                          http_fields());
  EXPECT_FALSE(r.entailed);
}

TEST(Entailment, RecipientCoversServerHypothesis) {
  EntailmentEngine engine;
  Hypothesis h;
  h.role = Role::kServer;
  h.action = Action::kTreat;
  auto r = engine.entails(
      "The recipient MUST treat the message framing as invalid", h,
      http_fields());
  EXPECT_TRUE(r.entailed);
}

TEST(Entailment, MessageDescriptionHypothesis) {
  EntailmentEngine engine;
  Hypothesis h;
  h.field = "content-length";
  h.modifier = "invalid";
  auto r = engine.entails(
      "a message that contains a single Content-Length header field having "
      "an invalid value MUST be rejected",
      h, http_fields());
  EXPECT_TRUE(r.entailed);
}

TEST(Entailment, HypothesisToString) {
  Hypothesis h;
  h.role = Role::kServer;
  h.action = Action::kRespond;
  h.status_code = 400;
  h.label = "act:server:respond-400";
  std::string s = h.to_string();
  EXPECT_NE(s.find("server"), std::string::npos);
  EXPECT_NE(s.find("400"), std::string::npos);
}

}  // namespace
}  // namespace hdiff::text
