#include "text/clause.h"

#include <gtest/gtest.h>

namespace hdiff::text {
namespace {

TEST(ClauseSplit, NoCoordinationYieldsWholeSentence) {
  auto clauses = split_clauses("A server MUST reject the message");
  ASSERT_EQ(clauses.size(), 1u);
  EXPECT_EQ(clauses[0].text, "A server MUST reject the message");
}

TEST(ClauseSplit, CoordinatedRequirements) {
  auto clauses = split_clauses(
      "The server MUST reject the message or MUST close the connection");
  ASSERT_EQ(clauses.size(), 2u);
  EXPECT_NE(clauses[0].text.find("reject"), std::string::npos);
  EXPECT_NE(clauses[1].text.find("close"), std::string::npos);
}

TEST(ClauseSplit, ElidedSubjectInherited) {
  auto clauses = split_clauses(
      "The server MUST reject the message and MUST close the connection");
  ASSERT_EQ(clauses.size(), 2u);
  ASSERT_TRUE(clauses[1].inherited_subject);
  EXPECT_EQ(*clauses[1].inherited_subject, "server");
}

TEST(ClauseSplit, SemicolonSplits) {
  auto clauses = split_clauses(
      "the body length cannot be determined reliably; the server MUST "
      "respond with the 400 status code");
  ASSERT_EQ(clauses.size(), 2u);
  EXPECT_NE(clauses[1].text.find("400"), std::string::npos);
}

TEST(Referents, DetectsDeterminerNounPairs) {
  auto refs = find_referents("A recipient MUST treat such request as invalid");
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].noun, "request");
  EXPECT_EQ(refs[0].phrase, "such request");
}

TEST(Referents, PluralFolding) {
  auto refs = find_referents("Servers MUST ignore these fields entirely");
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].noun, "field");
}

TEST(Referents, NoFalsePositivesOnPlainDeterminers) {
  EXPECT_TRUE(find_referents("The server MUST reject everything").empty());
}

std::vector<Sentence> doc(std::initializer_list<const char*> texts) {
  std::vector<Sentence> out;
  std::size_t i = 0;
  for (const char* t : texts) out.push_back(Sentence{t, i++});
  return out;
}

TEST(Anaphora, ForwardSearchFindsDefiningMention) {
  auto d = doc({
      "A request is received with both a Transfer-Encoding and a "
      "Content-Length header field sometimes.",
      "Unrelated sentence about something else entirely.",
      "Such request ought to be handled as an error.",
  });
  Referent ref{"such request", "request", 0};
  auto resolved = resolve_referent(d, 2, ref);
  ASSERT_TRUE(resolved);
  EXPECT_NE(resolved->find("Transfer-Encoding"), std::string::npos);
}

TEST(Anaphora, WindowBoundsSearch) {
  auto d = doc({
      "A request is defined early in the document right here.",
      "Filler sentence one follows now.", "Filler sentence two follows now.",
      "Filler sentence three follows now.", "Filler four follows now.",
      "Filler five follows now.",
      "Such request ought to be rejected immediately.",
  });
  Referent ref{"such request", "request", 0};
  EXPECT_FALSE(resolve_referent(d, 6, ref, /*window=*/5));
  EXPECT_TRUE(resolve_referent(d, 6, ref, /*window=*/6));
}

TEST(Anaphora, SkipsOtherReferentUses) {
  auto d = doc({
      "Such request was already mentioned referentially before.",
      "Such request ought to be rejected.",
  });
  Referent ref{"such request", "request", 0};
  // The earlier sentence is itself a referent use, not a definition.
  EXPECT_FALSE(resolve_referent(d, 1, ref));
}

TEST(Anaphora, MergeProducesCombinedContext) {
  auto d = doc({
      "A message is received with an invalid Content-Length header field.",
      "Such message MUST be treated as an unrecoverable error.",
  });
  std::string merged = merge_referred_context(d, 1);
  EXPECT_NE(merged.find("Content-Length"), std::string::npos);
  EXPECT_NE(merged.find("unrecoverable"), std::string::npos);
}

TEST(Anaphora, NoReferentReturnsOriginal) {
  auto d = doc({"A server MUST reject the message."});
  EXPECT_EQ(merge_referred_context(d, 0), d[0].text);
}

}  // namespace
}  // namespace hdiff::text
