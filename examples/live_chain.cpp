// Example: the Figure 6 topology over real loopback TCP sockets.
//
// Hosts a behaviour model as an origin server and another as a reverse
// proxy in front of it, then sends an attack payload through the live chain
// with an ordinary socket client — the closest analogue of the paper's VM
// testbed this repository offers.
#include <cstdio>
#include <string>

#include "impls/products.h"
#include "net/tcp.h"

int main(int argc, char** argv) {
  std::string front_name = argc > 1 ? argv[1] : "squid";
  std::string back_name = argc > 2 ? argv[2] : "apache";

  auto front = hdiff::impls::make_implementation(front_name);
  auto back = hdiff::impls::make_implementation(back_name);
  if (!front || !back || !front->is_proxy() || !back->is_server()) {
    std::fprintf(stderr, "usage: live_chain [front-proxy] [back-server]\n");
    return 1;
  }

  hdiff::net::ModelServer origin(*back);
  hdiff::net::ModelProxy proxy(*front, origin.port());
  std::printf("origin (%s) listening on 127.0.0.1:%u\n", back_name.c_str(),
              origin.port());
  std::printf("proxy  (%s) listening on 127.0.0.1:%u\n\n", front_name.c_str(),
              proxy.port());

  auto show = [&](const char* title, const std::string& request) {
    std::printf("== %s ==\n", title);
    hdiff::net::TcpResult result =
        hdiff::net::tcp_roundtrip(proxy.port(), request);
    if (!result.ok()) {
      // Structured failure channel: a dead socket is reported as a harness
      // fault, never mistaken for an (empty) response from the chain.
      std::printf("harness fault: %s\n\n",
                  std::string(to_string(result.error)).c_str());
      return;
    }
    std::size_t header_end = result.bytes.find("\r\n\r\n");
    std::printf("%s\n\n",
                result.bytes
                    .substr(0, header_end == std::string::npos
                                   ? result.bytes.size()
                                   : header_end)
                    .c_str());
  };

  show("1. clean GET through the live chain",
       "GET /index.html HTTP/1.1\r\nHost: h1.com\r\n\r\n");

  show("2. bad chunk-size (the squid repair bug, live)",
       "POST /upload HTTP/1.1\r\nHost: h1.com\r\n"
       "Transfer-Encoding: chunked\r\n\r\n"
       "100000000a\r\nabc\r\n0\r\n\r\n");

  show("3. invalid HTTP-version (repair-by-append, live)",
       "GET /?a=b 1.1/HTTP\r\nHost: h1.com\r\n\r\n");

  std::printf("The X-HDiff-* response headers carry the origin model's "
              "HMetrics: a 4xx on case 2/3 is the error page the proxy "
              "would cache (CPDoS), and X-HDiff-Leftover > 0 on any case "
              "is a smuggled remainder.\n");
  return 0;
}
