// Example: audit a specific front-end/back-end deployment combination.
//
// Runs the full verification probe set (Table II payloads) plus the
// SR-translated corpus cases against one proxy -> server pair and reports
// which attack classes the combination is exposed to — the check an
// operator would run before putting a given proxy in front of a given
// origin server.
#include <cstdio>
#include <string>

#include "core/detect.h"
#include "core/probes.h"
#include "net/poison.h"
#include "impls/products.h"
#include "net/chain.h"
#include "report/table.h"

int main(int argc, char** argv) {
  std::string front_name = argc > 1 ? argv[1] : "varnish";
  std::string back_name = argc > 2 ? argv[2] : "iis";

  auto front = hdiff::impls::make_implementation(front_name);
  auto back = hdiff::impls::make_implementation(back_name);
  if (!front || !back || !front->is_proxy() || !back->is_server()) {
    std::fprintf(stderr,
                 "usage: proxy_chain_audit [front-proxy] [back-server]\n"
                 "  proxies: apache nginx varnish squid haproxy ats\n"
                 "  servers: iis tomcat weblogic lighttpd apache nginx\n");
    return 1;
  }

  std::printf("=== Deployment audit: %s (front) -> %s (back) ===\n\n",
              front_name.c_str(), back_name.c_str());

  hdiff::net::Chain chain({front.get()}, {back.get()});
  hdiff::core::DetectionEngine engine;
  hdiff::core::DetectionResult total;
  auto probes = hdiff::core::verification_probes();
  for (const auto& tc : probes) {
    hdiff::core::DetectionEngine::accumulate(
        total, engine.evaluate(tc, chain.observe(tc.uuid, tc.raw)));
  }

  bool hrs = false, hot = false, cpdos = false;
  for (const auto& p : total.pairs) {
    if (p.attack == hdiff::core::AttackClass::kHrs) hrs = true;
    if (p.attack == hdiff::core::AttackClass::kHot) hot = true;
    if (p.attack == hdiff::core::AttackClass::kCpdos) cpdos = true;
  }

  hdiff::report::Table verdict({"attack class", "exposed?"});
  verdict.add_row({"HTTP Request Smuggling (HRS)", hrs ? "YES" : "no"});
  verdict.add_row({"Host of Troubles (HoT)", hot ? "YES" : "no"});
  verdict.add_row({"Cache-Poisoned DoS (CPDoS)", cpdos ? "YES" : "no"});
  std::printf("%s\n", verdict.render().c_str());

  if (!total.pairs.empty()) {
    std::printf("Findings (%zu):\n", total.pairs.size());
    std::map<std::string, const hdiff::core::TestCase*> by_uuid;
    for (const auto& tc : probes) by_uuid[tc.uuid] = &tc;
    for (const auto& p : total.pairs) {
      auto it = by_uuid.find(p.uuid);
      std::printf("  [%s] %s\n      probe: %s\n",
                  std::string(to_string(p.attack)).c_str(), p.detail.c_str(),
                  it != by_uuid.end() ? it->second->vector_label.c_str()
                                      : "?");
    }
  } else {
    std::printf("No pair-level findings: this combination survives the "
                "Table II probe set.\n");
  }

  // End-game verification (paper: "we further run these potential exploits
  // to complete verification").
  std::printf("\nExploit verification:\n");
  {
    std::string body = "0\r\n\r\nGET /evil HTTP/1.1\r\nHost: h1.com\r\n\r\n";
    std::string attack =
        "POST /upload HTTP/1.1\r\nHost: h1.com\r\n"
        "Transfer-Encoding: \x0b" "chunked\r\n"
        "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
    auto smuggle = hdiff::net::demonstrate_smuggling(
        *front, *back, attack,
        "GET /?a=1 HTTP/1.1\r\nHost: h1.com\r\n\r\n");
    std::printf("  HRS end-game:   %s\n", smuggle.narrative.c_str());
  }
  {
    auto cpdos_demo = hdiff::net::demonstrate_cpdos(
        *front, *back, "GET /?a=1 1.1/HTTP\r\nHost: h1.com\r\n\r\n",
        "GET /?a=1 HTTP/1.1\r\nHost: h1.com\r\n\r\n");
    std::printf("  CPDoS end-game: %s\n", cpdos_demo.narrative.c_str());
  }

  // Per-side specification violations observed on this pair's traffic.
  if (!total.violations.empty()) {
    std::printf("\nSpecification violations observed (%zu):\n",
                total.violations.size());
    for (const auto& v : total.violations) {
      std::printf("  %s: %s\n", v.impl.c_str(), v.detail.c_str());
    }
  }
  return 0;
}
