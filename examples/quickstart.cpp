// Quickstart: run the complete HDiff pipeline and print the findings.
//
// This is the fastest way to see the framework end to end: it mines the
// embedded RFC corpus, generates test cases, drives them through the
// proxy/back-end chain, and prints the vulnerability matrix (paper Table I)
// and the affected pairs (paper Figure 7).
#include <cstdio>

#include "core/hdiff.h"
#include "report/table.h"

int main() {
  hdiff::core::PipelineConfig config;
  config.abnf_run_budget = 500;  // keep the quickstart snappy

  hdiff::core::Pipeline pipeline(config);
  hdiff::core::PipelineResult result = pipeline.run();

  std::printf("Documentation analyzer:\n");
  std::printf("  corpus: %zu words, %zu sentences\n",
              result.analysis.total_words, result.analysis.total_sentences);
  std::printf("  specification requirements (SRs): %zu\n",
              result.analysis.srs.size());
  std::printf("  ABNF rules: %zu\n", result.analysis.grammar.size());
  std::printf("Test generation: %zu SR cases, %zu ABNF cases (%zu executed)\n",
              result.sr_case_count, result.abnf_case_count,
              result.executed_cases.size());
  std::printf("Findings: %zu SR violations, %zu affected pairs\n\n",
              result.findings.violations.size(), result.findings.pairs.size());

  hdiff::report::Table table({"product", "HRS", "HoT", "CPDoS"});
  for (const auto& [name, row] : result.matrix.by_impl) {
    table.add_row({name, row.hrs ? "x" : ".", row.hot ? "x" : ".",
                   row.cpdos ? "x" : "."});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("HoT-affected pairs (%zu):\n", result.matrix.hot_pairs.size());
  for (const auto& pair : result.matrix.hot_pairs) {
    std::printf("  %s\n", pair.c_str());
  }
  return 0;
}
