// Example: a focused request-smuggling hunt against one front/back pair,
// showing the full exploit mechanics end to end — the ambiguous request,
// what the proxy forwards, and the smuggled request the back-end exposes.
#include <cstdio>
#include <string>

#include "impls/products.h"

namespace {

void dump_wire(const char* title, std::string_view bytes) {
  std::printf("%s\n", title);
  std::printf("  ");
  for (char c : bytes) {
    if (c == '\r') {
      std::printf("\\r");
    } else if (c == '\n') {
      std::printf("\\n\n  ");
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::printf("\\x%02x", static_cast<unsigned char>(c));
    } else {
      std::printf("%c", c);
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string front_name = argc > 1 ? argv[1] : "ats";
  std::string back_name = argc > 2 ? argv[2] : "tomcat";

  auto front = hdiff::impls::make_implementation(front_name);
  auto back = hdiff::impls::make_implementation(back_name);
  if (!front || !back || !front->is_proxy() || !back->is_server()) {
    std::fprintf(stderr,
                 "usage: smuggle_hunt [front-proxy] [back-server]\n"
                 "  proxies: apache nginx varnish squid haproxy ats\n"
                 "  servers: iis tomcat weblogic lighttpd apache nginx\n");
    return 1;
  }

  std::printf("=== Request smuggling hunt: %s (front) -> %s (back) ===\n\n",
              front_name.c_str(), back_name.c_str());

  // The attack payload: a mangled Transfer-Encoding plus a Content-Length
  // that covers a smuggled request.  Recipients that ignore the mangled TE
  // frame by CL (whole body = one request); recipients that repair/strip it
  // terminate at the zero chunk and expose the suffix as a next request.
  const std::string smuggled =
      "GET /admin HTTP/1.1\r\nHost: h1.com\r\nX-Evil: 1\r\n\r\n";
  const std::string body = "0\r\n\r\n" + smuggled;
  const std::string attack =
      "POST /upload HTTP/1.1\r\n"
      "Host: h1.com\r\n"
      "Transfer-Encoding: \x0b" "chunked\r\n"
      "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;

  dump_wire("[1] Attacker's request as sent to the front-end:", attack);

  auto pv = front->forward_request(attack);
  if (!pv.forwarded()) {
    std::printf("\n[2] %s REJECTS the request with status %d (%s).\n"
                "    This pair is not exploitable via this payload.\n",
                front_name.c_str(), pv.status, pv.reason.c_str());
    return 0;
  }
  std::printf("\n[2] %s forwards the request (framed %zu body bytes).\n\n",
              front_name.c_str(), pv.body.size());
  dump_wire("    Forwarded bytes:", pv.forwarded_bytes);

  auto sv = back->parse_request(pv.forwarded_bytes);
  std::printf("\n[3] %s parses the forwarded bytes: status %d, body %zu "
              "bytes, leftover %zu bytes.\n",
              back_name.c_str(), sv.status, sv.body.size(),
              sv.leftover.size());

  if (sv.accepted() && !sv.leftover.empty()) {
    std::printf("\n!!! SMUGGLING CONFIRMED: the back-end treats these bytes "
                "as the NEXT request on the connection:\n\n");
    dump_wire("    Smuggled request:", sv.leftover);
    std::printf("\n    The next legitimate client request on this reused "
                "connection will be answered with the\n"
                "    response to %s — classic response-queue poisoning.\n",
                sv.leftover.substr(0, sv.leftover.find('\r')).c_str());
  } else if (sv.incomplete) {
    std::printf("\n!!! DESYNC CONFIRMED: the back-end blocks waiting for "
                "more bytes than the front sent.\n"
                "    Subsequent requests on this connection are consumed as "
                "body data (request hijacking).\n");
  } else {
    std::printf("\n    No boundary gap for this pair with this payload — "
                "try other pairs (e.g. 'smuggle_hunt ats iis').\n");
  }
  return 0;
}
