// Example: the Documentation Analyzer walkthrough of the paper's Figures 4
// and 5 — from an RFC sentence to a dependency tree, entailed seed
// templates, and finally generated test cases.
#include <cstdio>

#include "core/analyzer.h"
#include "core/translator.h"
#include "corpus/registry.h"
#include "text/clause.h"
#include "text/dependency.h"
#include "text/sentiment.h"

int main() {
  // --- Figure 4: Text2Rule on the RFC 7230 §5.4 Host requirement ----------
  const std::string sentence =
      "A server MUST respond with a 400 (Bad Request) status code to any "
      "HTTP/1.1 request message that lacks a Host header field and to any "
      "request message that contains more than one Host header field.";

  std::printf("Sentence (RFC 7230 Section 5.4):\n  %s\n\n", sentence.c_str());

  hdiff::text::SentimentClassifier sentiment;
  auto score = sentiment.score(sentence);
  std::printf("SR finder: strength=%.2f, polarity=%s, cues:",
              score.strength,
              std::string(to_string(score.polarity)).c_str());
  for (const auto& cue : score.cues) std::printf(" '%s'", cue.c_str());
  std::printf("\n\n");

  std::printf("Dependency tree (Figure 4b):\n%s\n",
              hdiff::text::parse_dependencies(sentence)
                  .to_debug_string()
                  .c_str());

  std::printf("Clauses:\n");
  for (const auto& clause : hdiff::text::split_clauses(sentence)) {
    std::printf("  - %s%s\n", clause.text.c_str(),
                clause.inherited_subject
                    ? (" [subject: " + *clause.inherited_subject + "]").c_str()
                    : "");
  }
  std::printf("\n");

  // --- run the real analyzer over RFC 7230 and show the conversions -------
  hdiff::core::DocumentationAnalyzer analyzer;
  auto analysis = analyzer.analyze({"rfc7230"});
  std::printf("Analyzer over rfc7230: %zu sentences, %zu SRs, %zu ABNF "
              "rules\n\n",
              analysis.total_sentences, analysis.srs.size(),
              analysis.grammar.size());

  for (const auto& sr : analysis.srs) {
    if (sr.sentence.find("lacks a Host header field") == std::string::npos) {
      continue;
    }
    std::printf("Converted SR %s (Figure 4c):\n", sr.id.c_str());
    for (const auto& conv : sr.conversions) {
      std::printf("  %s  (confidence %.2f)\n",
                  conv.hypothesis.to_string().c_str(), conv.confidence);
    }
    // --- Figure 5: the SR translator turns the conversion into cases ------
    hdiff::core::SrTranslator translator(analysis.grammar);
    auto cases = translator.translate(sr);
    std::printf("\nSR translator output (Figure 5): %zu test cases; the "
                "first three:\n",
                cases.size());
    for (std::size_t i = 0; i < cases.size() && i < 3; ++i) {
      std::printf("--- %s: %s ---\n", cases[i].uuid.c_str(),
                  cases[i].description.c_str());
      for (char c : cases[i].raw) {
        if (c == '\r') {
          std::printf("\\r");
        } else if (c == '\n') {
          std::printf("\\n\n");
        } else if (static_cast<unsigned char>(c) < 0x20) {
          std::printf("\\x%02x", static_cast<unsigned char>(c));
        } else {
          std::printf("%c", c);
        }
      }
      std::printf("\n");
    }
    break;
  }
  return 0;
}
