// Experiment E2 — paper Table I: tested HTTP implementations and their
// vulnerability to HRS / HoT / CPDoS, reproduced end-to-end from the corpus.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/hdiff.h"
#include "impls/products.h"
#include "report/table.h"

namespace {

const hdiff::core::PipelineResult& pipeline_result() {
  static const hdiff::core::PipelineResult kResult = [] {
    hdiff::core::PipelineConfig config;
    config.abnf_run_budget = 1500;
    return hdiff::core::Pipeline(config).run();
  }();
  return kResult;
}

void print_table1() {
  const auto& result = pipeline_result();

  // Paper Table I, for side-by-side comparison.
  struct PaperRow {
    const char* impl;
    const char* version;
    const char* mode;
    bool hrs, hot, cpdos;
    bool server;  // '-' in the CPDoS column for pure servers
  };
  constexpr PaperRow kPaper[] = {
      {"iis", "10", "server", true, true, false, true},
      {"tomcat", "9.0.29", "server", true, true, false, true},
      {"weblogic", "12.2.1.4.0", "server", true, true, false, true},
      {"lighttpd", "1.4.58", "server", true, false, false, true},
      {"apache", "2.4.47", "server+proxy", false, false, true, false},
      {"nginx", "1.21.0", "server+proxy", false, true, true, false},
      {"varnish", "6.5.1", "proxy", true, true, true, false},
      {"squid", "5.0.6", "proxy", true, false, true, false},
      {"haproxy", "2.4.0", "proxy", true, true, true, false},
      {"ats", "8.0.5", "proxy", true, false, true, false},
  };

  std::printf("E2: Table I — tested HTTP implementations and vulnerability\n");
  std::printf("    (left: paper / right: measured by this reproduction)\n\n");
  hdiff::report::Table table({"product", "version", "mode", "HRS p|m",
                              "HoT p|m", "CPDoS p|m"});
  bool all_match = true;
  for (const auto& row : kPaper) {
    const auto& measured = result.matrix.by_impl.at(row.impl);
    auto cell = [&](bool paper, bool mine, bool na) {
      std::string out;
      out += na ? "-" : (paper ? "x" : ".");
      out += "|";
      out += na ? "-" : (mine ? "x" : ".");
      if (!na && paper != mine) all_match = false;
      return out;
    };
    table.add_row({row.impl, row.version, row.mode,
                   cell(row.hrs, measured.hrs, false),
                   cell(row.hot, measured.hot, false),
                   cell(row.cpdos, measured.cpdos, row.server)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Matrix match vs paper: %s\n", all_match ? "EXACT" : "DIFFERS");
  std::printf("Findings: %zu SR violations, %zu affected pairs, "
              "%zu inputs with behavioural discrepancies\n\n",
              result.findings.violations.size(), result.findings.pairs.size(),
              result.findings.discrepancies.inputs_with_discrepancy);
}

void BM_FullPipeline(benchmark::State& state) {
  hdiff::core::PipelineConfig config;
  config.abnf_run_budget = 300;
  hdiff::core::Pipeline pipeline(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.run());
  }
}
BENCHMARK(BM_FullPipeline)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
