// Experiment E5 — the four HRS case studies narrated in §IV-B, each driven
// through the behaviour models and reported as the paper describes them.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "impls/products.h"
#include "report/table.h"

namespace {

using hdiff::impls::make_implementation;

void case_invalid_clte() {
  std::printf("E5.1  Invalid CL/TE header — \"IIS is compatible with "
              "whitespace before the colon and parses the body data\"\n");
  const std::string raw =
      "POST / HTTP/1.1\r\nHost: h1.com\r\nContent-Length : 5\r\n\r\nAAAAA";
  hdiff::report::Table t({"implementation", "status", "framing", "body"});
  for (auto name : {"iis", "tomcat", "apache", "nginx", "lighttpd"}) {
    auto impl = make_implementation(name);
    auto v = impl->parse_request(raw);
    t.add_row({std::string(name), std::to_string(v.status),
               std::string(to_string(v.framing)), v.body});
  }
  std::printf("%s\n", t.render().c_str());
}

void case_multiple_clte() {
  std::printf("E5.2  Multiple CL/TE headers — \"Tomcat will accept requests "
              "with both CL and TE, where the TE header is malformed "
              "(Transfer-Encoding:\\x0bchunked)\"\n");
  std::string smuggle = "GET /evil HTTP/1.1\r\nHost: h1.com\r\n\r\n";
  std::string body = "0\r\n\r\n" + smuggle;
  const std::string raw =
      "POST / HTTP/1.1\r\nHost: h1.com\r\nTransfer-Encoding: \x0b"
      "chunked\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  hdiff::report::Table t(
      {"implementation", "status", "framing", "smuggled bytes left"});
  for (auto name : {"tomcat", "iis", "weblogic", "apache", "nginx"}) {
    auto impl = make_implementation(name);
    auto v = impl->parse_request(raw);
    t.add_row({std::string(name), std::to_string(v.status),
               std::string(to_string(v.framing)),
               std::to_string(v.leftover.size())});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("  => Tomcat terminates the body at the zero chunk and leaves "
              "the smuggled request on the connection;\n"
              "     CL-framing peers read the same bytes as one request.\n\n");
}

void case_http10_chunked() {
  std::printf("E5.3  HTTP/1.0 with TE chunked — \"Tomcat does not support "
              "chunked encoding in HTTP version 1.0, while other HTTP "
              "implementations support it\"\n");
  const std::string raw =
      "POST / HTTP/1.0\r\nHost: h1.com\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\n\r\n";
  hdiff::report::Table t({"implementation", "status", "framing", "leftover"});
  for (auto name : {"tomcat", "apache", "nginx", "iis", "weblogic"}) {
    auto impl = make_implementation(name);
    auto v = impl->parse_request(raw);
    t.add_row({std::string(name), std::to_string(v.status),
               std::string(to_string(v.framing)),
               std::to_string(v.leftover.size())});
  }
  std::printf("%s\n", t.render().c_str());
}

void case_bad_chunk_size() {
  std::printf("E5.4  Bad chunk-size value — \"two proxies (Haproxy, Squid) "
              "would try to repair the request ... they repair to an illegal "
              "number a (10 in decimal)\"\n");
  const std::string raw =
      "POST / HTTP/1.1\r\nHost: h1.com\r\nTransfer-Encoding: chunked\r\n\r\n"
      "100000000a\r\nabc\r\n0\r\n\r\n";
  hdiff::report::Table t(
      {"proxy", "forwards?", "emitted chunk-size", "downstream (apache)"});
  for (auto name : {"haproxy", "squid", "varnish", "ats", "apache", "nginx"}) {
    auto impl = make_implementation(name);
    if (!impl->is_proxy()) continue;
    auto v = impl->forward_request(raw);
    std::string size_emitted = "-";
    std::string downstream = "-";
    if (v.forwarded()) {
      std::size_t body_at = v.forwarded_bytes.find("\r\n\r\n");
      if (body_at != std::string::npos) {
        std::size_t end = v.forwarded_bytes.find("\r\n", body_at + 4);
        size_emitted = v.forwarded_bytes.substr(body_at + 4,
                                                end - body_at - 4);
      }
      auto backend = make_implementation("apache");
      auto sv = backend->parse_request(v.forwarded_bytes);
      downstream = sv.incomplete ? "blocks (desync)"
                                 : std::to_string(sv.status);
    }
    t.add_row({std::string(name), v.forwarded() ? "yes" : "no (" +
                   std::to_string(v.status) + ")",
               size_emitted, downstream});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("  => the repairing proxies emit chunk-size 'a' (10) over "
              "3 bytes of data — downstream framing no longer matches.\n\n");
}

void BM_SmugglePayloadParse(benchmark::State& state) {
  auto tomcat = make_implementation("tomcat");
  std::string body = "0\r\n\r\nGET /evil HTTP/1.1\r\nHost: h\r\n\r\n";
  const std::string raw =
      "POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: \x0b"
      "chunked\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tomcat->parse_request(raw));
  }
}
BENCHMARK(BM_SmugglePayloadParse);

}  // namespace

int main(int argc, char** argv) {
  case_invalid_clte();
  case_multiple_clte();
  case_http10_chunked();
  case_bad_chunk_size();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
