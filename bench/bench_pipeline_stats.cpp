// Experiment E1 — §IV-B corpus and pipeline statistics.
//
// The paper reports, for the full RFC 7230–7235 texts: 172,088 words,
// 5,995 valid sentences, 117 SRs, 269 ABNF rules, 8,427 SR-translated test
// cases and 92,658 ABNF-generated test cases.  This binary reports the same
// measurements over the embedded corpus excerpt side by side.  The absolute
// numbers scale with corpus size; the *shape* — ABNF cases outnumbering SR
// cases by an order of magnitude, SRs in the ~2% band of sentences — is the
// comparable signal.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/abnf_testgen.h"
#include "core/analyzer.h"
#include "core/translator.h"
#include "corpus/registry.h"
#include "report/table.h"

namespace {

void print_stats() {
  hdiff::core::DocumentationAnalyzer analyzer;
  auto docs = hdiff::corpus::http_core_documents();
  auto analysis = analyzer.analyze(docs);

  hdiff::core::SrTranslator translator(analysis.grammar);
  auto sr_cases = translator.translate_all(analysis.srs);

  hdiff::core::AbnfGenConfig abnf_config;
  abnf_config.values_per_target = 128;
  abnf_config.mutants_per_seed = 48;
  hdiff::core::AbnfTestGen abnf_gen(analysis.grammar, abnf_config);
  auto abnf_cases = abnf_gen.generate();

  std::printf("E1: Documentation-analyzer and generator statistics\n");
  std::printf("    (paper values measured on the full RFC texts; ours on the\n"
              "     embedded excerpt corpus — see DESIGN.md section 1)\n\n");
  hdiff::report::Table table({"metric", "paper (full RFCs)", "this repo"});
  table.add_row({"corpus words", "172,088",
                 std::to_string(analysis.total_words)});
  table.add_row({"valid sentences", "5,995",
                 std::to_string(analysis.total_sentences)});
  table.add_row({"specification requirements (SRs)", "117",
                 std::to_string(analysis.srs.size())});
  table.add_row({"converted SR instances", "-",
                 std::to_string(analysis.converted_sr_count)});
  table.add_row({"ABNF grammar rules", "269",
                 std::to_string(analysis.grammar.size())});
  table.add_row({"SR-translated test cases", "8,427",
                 std::to_string(sr_cases.size())});
  table.add_row({"ABNF-generated test cases", "92,658",
                 std::to_string(abnf_cases.size())});
  std::printf("%s\n", table.render().c_str());

  double sr_rate = analysis.total_sentences == 0
                       ? 0.0
                       : 100.0 * static_cast<double>(analysis.srs.size()) /
                             static_cast<double>(analysis.total_sentences);
  std::printf("SR density: %.1f%% of sentences (paper: %.1f%%)\n", sr_rate,
              100.0 * 117.0 / 5995.0);
  std::printf("ABNF/SR case ratio: %.1fx (paper: %.1fx)\n\n",
              sr_cases.empty() ? 0.0
                               : static_cast<double>(abnf_cases.size()) /
                                     static_cast<double>(sr_cases.size()),
              92658.0 / 8427.0);

  std::printf("Per-document corpus sizes:\n");
  hdiff::report::Table docs_table({"document", "words", "sentences"});
  for (auto name : docs) {
    const auto* doc = hdiff::corpus::find_document(name);
    auto size = hdiff::corpus::measure(*doc);
    docs_table.add_row({std::string(name), std::to_string(size.words),
                        std::to_string(size.valid_sentences)});
  }
  std::printf("%s\n", docs_table.render().c_str());
}

void BM_DocumentationAnalysis(benchmark::State& state) {
  hdiff::core::DocumentationAnalyzer analyzer;
  auto docs = hdiff::corpus::http_core_documents();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(docs));
  }
}
BENCHMARK(BM_DocumentationAnalysis)->Unit(benchmark::kMillisecond);

void BM_SrTranslation(benchmark::State& state) {
  hdiff::core::DocumentationAnalyzer analyzer;
  auto analysis = analyzer.analyze(hdiff::corpus::http_core_documents());
  hdiff::core::SrTranslator translator(analysis.grammar);
  for (auto _ : state) {
    benchmark::DoNotOptimize(translator.translate_all(analysis.srs));
  }
}
BENCHMARK(BM_SrTranslation)->Unit(benchmark::kMillisecond);

void BM_AbnfGeneration(benchmark::State& state) {
  hdiff::core::DocumentationAnalyzer analyzer;
  auto analysis = analyzer.analyze(hdiff::corpus::http_core_documents());
  hdiff::core::AbnfTestGen gen(analysis.grammar);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate());
  }
}
BENCHMARK(BM_AbnfGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_stats();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
