// E14: zero-copy parse path + event-loop observe throughput.
//
// Two claims are measured here:
//   1. A warmed RequestView / ResponseView / ChunkScan re-parses with ZERO
//      heap allocations (0 allocations per header), vs. the owned lexer
//      which allocates per header field.  `--check` runs this as a strict
//      pass/fail gate (the `bench_zero_copy_alloc_check` ctest entry, label
//      `netperf`) so an allocation regression fails CI, not just a chart.
//   2. Live observation through the epoll event loop sustains >=2x the
//      case throughput of the blocking per-leg transport at jobs=8
//      (BM_LiveObserve/0/8 vs BM_LiveObserve/1/8).
//
// Allocation counting replaces global operator new/delete for this binary
// only: every successful allocation bumps one relaxed atomic, and checks
// read deltas around the region of interest.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#include "core/executor.h"
#include "core/probes.h"
#include "http/chunked.h"
#include "http/lexer.h"
#include "http/response.h"
#include "http/view.h"
#include "impls/products.h"
#include "net/chain.h"
#include "net/live.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded ? rounded : align)) {
    return p;
  }
  throw std::bad_alloc();
}

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

// A request shape representative of the observe hot path: enough headers
// that a per-header allocation would show up as >= 8 per parse.
const std::string kRequest =
    "POST /path?q=1&x=2 HTTP/1.1\r\n"
    "Host: h1.example.com\r\n"
    "User-Agent: hdiff-bench/1.0\r\n"
    "Accept: */*\r\n"
    "Accept-Encoding: gzip, deflate\r\n"
    "X-Forwarded-For: 10.0.0.1\r\n"
    "Cookie: a=1; b=2; c=3\r\n"
    "Content-Length: 5\r\n"
    "Transfer-Encoding: chunked\r\n"
    "\r\n0\r\n\r\n";

const std::string kResponse =
    "HTTP/1.1 200 OK\r\n"
    "Server: hdiff-model\r\n"
    "Date: Thu, 01 Jan 1970 00:00:00 GMT\r\n"
    "Content-Type: text/plain\r\n"
    "Cache-Control: no-store\r\n"
    "Content-Length: 5\r\n"
    "Connection: keep-alive\r\n"
    "\r\nhello";

const std::string kChunked = "3\r\nabc\r\n4;ext=x\r\ndefg\r\n0\r\n\r\n";

constexpr int kWarmIterations = 1000;

// ---------------------------------------------------------------------------
// --check mode: strict zero-allocation gate on the warm re-parse paths.
// ---------------------------------------------------------------------------

int g_check_failures = 0;

void check_zero(const char* what, std::uint64_t allocs, std::size_t units,
                const char* unit_name) {
  const double per_unit =
      static_cast<double>(allocs) /
      (static_cast<double>(kWarmIterations) * static_cast<double>(units));
  const bool ok = allocs == 0;
  std::printf("%-44s %s  (%llu allocs over %d iterations, %.4f per %s)\n",
              what, ok ? "PASS" : "FAIL",
              static_cast<unsigned long long>(allocs), kWarmIterations,
              per_unit, unit_name);
  if (!ok) ++g_check_failures;
}

int run_alloc_check() {
  using namespace hdiff::http;

  // Warm request re-parse: zero allocations, hence zero per header.
  {
    RequestView view;
    parse_request_view(kRequest, view);  // warm the vectors
    const std::size_t headers = view.headers.size();
    const std::uint64_t before = allocations();
    for (int i = 0; i < kWarmIterations; ++i) {
      parse_request_view(kRequest, view);
      benchmark::DoNotOptimize(&view);
    }
    check_zero("request re-parse (warm RequestView)", allocations() - before,
               headers, "header");
  }

  // Header lookups on a parsed view.
  {
    RequestView view;
    parse_request_view(kRequest, view);
    const std::uint64_t before = allocations();
    std::size_t hits = 0;
    for (int i = 0; i < kWarmIterations; ++i) {
      hits += view.count("cookie");
      if (view.find_first("Transfer-Encoding") != nullptr) ++hits;
    }
    benchmark::DoNotOptimize(hits);
    check_zero("find_first/count on RequestView", allocations() - before, 2,
               "lookup");
  }

  // Warm response re-parse + framing probe.
  {
    ResponseView view;
    std::string scratch;
    parse_response_view(kResponse, view);
    response_framing(view, Method::kGet, scratch);
    const std::size_t headers = view.headers().size();
    const std::uint64_t before = allocations();
    for (int i = 0; i < kWarmIterations; ++i) {
      parse_response_view(kResponse, view);
      benchmark::DoNotOptimize(response_framing(view, Method::kGet, scratch));
    }
    check_zero("response re-parse + framing (warm)", allocations() - before,
               headers, "header");
  }

  // Warm chunked re-scan.
  {
    ChunkScan scan;
    scan_chunked(kChunked, ChunkPolicy{}, scan);  // warm the range vectors
    const std::uint64_t before = allocations();
    for (int i = 0; i < kWarmIterations; ++i) {
      scan_chunked(kChunked, ChunkPolicy{}, scan);
      benchmark::DoNotOptimize(scan.body_size());
    }
    check_zero("chunked re-scan (warm ChunkScan)", allocations() - before, 2,
               "chunk");
  }

  // Stream probes: probe_first_response parses into thread_local state, so
  // the first call on a thread warms it; every call after is heap-free.
  {
    benchmark::DoNotOptimize(probe_first_response(kResponse, Method::kGet));
    const std::uint64_t before = allocations();
    for (int i = 0; i < kWarmIterations; ++i) {
      benchmark::DoNotOptimize(probe_first_response(kResponse, Method::kGet));
      benchmark::DoNotOptimize(sniff_method(kRequest));
    }
    check_zero("probe_first_response + sniff_method (warm)",
               allocations() - before, 2, "probe");
  }

  std::printf("%s: %d failure(s)\n",
              g_check_failures == 0 ? "OK" : "ALLOC REGRESSION",
              g_check_failures);
  return g_check_failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Microbenchmarks: view vs. owned parse, scan vs. decode.
// ---------------------------------------------------------------------------

void report_allocs_per_op(benchmark::State& state, std::uint64_t delta) {
  state.counters["allocs_per_op"] =
      static_cast<double>(delta) /
      static_cast<double>(state.iterations() ? state.iterations() : 1);
}

void BM_ViewParseRequestWarm(benchmark::State& state) {
  hdiff::http::RequestView view;
  parse_request_view(kRequest, view);
  const std::uint64_t before = allocations();
  for (auto _ : state) {
    parse_request_view(kRequest, view);
    benchmark::DoNotOptimize(&view);
  }
  report_allocs_per_op(state, allocations() - before);
}
BENCHMARK(BM_ViewParseRequestWarm);

void BM_OwnedLexRequest(benchmark::State& state) {
  const std::uint64_t before = allocations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdiff::http::lex_request(kRequest));
  }
  report_allocs_per_op(state, allocations() - before);
}
BENCHMARK(BM_OwnedLexRequest);

void BM_ViewParseResponseWarm(benchmark::State& state) {
  hdiff::http::ResponseView view;
  parse_response_view(kResponse, view);
  const std::uint64_t before = allocations();
  for (auto _ : state) {
    parse_response_view(kResponse, view);
    benchmark::DoNotOptimize(&view);
  }
  report_allocs_per_op(state, allocations() - before);
}
BENCHMARK(BM_ViewParseResponseWarm);

void BM_OwnedLexResponse(benchmark::State& state) {
  const std::uint64_t before = allocations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdiff::http::lex_response(kResponse));
  }
  report_allocs_per_op(state, allocations() - before);
}
BENCHMARK(BM_OwnedLexResponse);

void BM_ScanChunkedWarm(benchmark::State& state) {
  hdiff::http::ChunkScan scan;
  scan_chunked(kChunked, hdiff::http::ChunkPolicy{}, scan);
  const std::uint64_t before = allocations();
  for (auto _ : state) {
    scan_chunked(kChunked, hdiff::http::ChunkPolicy{}, scan);
    benchmark::DoNotOptimize(scan.body_size());
  }
  report_allocs_per_op(state, allocations() - before);
}
BENCHMARK(BM_ScanChunkedWarm);

void BM_DecodeChunked(benchmark::State& state) {
  const std::uint64_t before = allocations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        decode_chunked(kChunked, hdiff::http::ChunkPolicy{}));
  }
  report_allocs_per_op(state, allocations() - before);
}
BENCHMARK(BM_DecodeChunked);

// ---------------------------------------------------------------------------
// Live observe throughput: blocking per-leg transport vs. the event loop.
// Args are {loop, jobs, service_delay_ms}.  delay=0 is the in-process
// instant-answer regime (CPU-bound: the loop is expected to be at parity,
// not faster); delay=2 simulates 2ms of upstream service/network time per
// request — the latency-bound regime the loop exists for, and where the
// E14 claim (/1/8/2 >= 2x /0/8/2 throughput) is measured.
// ---------------------------------------------------------------------------

void BM_LiveObserve(benchmark::State& state) {
  const bool loop = state.range(0) != 0;
  auto fleet = hdiff::impls::make_all_implementations();
  std::vector<const hdiff::impls::HttpImplementation*> backends;
  for (const auto& impl : fleet) {
    if (impl->is_server()) backends.push_back(impl.get());
  }
  hdiff::net::LiveFleetConfig live_config;
  live_config.mode =
      loop ? hdiff::net::NetLoopMode::kOn : hdiff::net::NetLoopMode::kOff;
  live_config.server_concurrency = 8;
  live_config.service_delay_ms = static_cast<int>(state.range(2));
  hdiff::net::LiveFleet live(backends, live_config);

  const std::vector<hdiff::core::TestCase> cases =
      hdiff::core::verification_probes();
  hdiff::core::ExecutorConfig config;
  config.jobs = static_cast<std::size_t>(state.range(1));
  config.memoize = false;  // every case takes a real roundtrip
  config.batch_size = 16;
  config.observe_batch = [&live](const hdiff::core::TestCase* block,
                                 std::size_t n,
                                 std::vector<hdiff::net::ChainObservation>&
                                     out) {
    std::vector<hdiff::net::LiveCase> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(hdiff::net::LiveCase{block[i].uuid, block[i].raw});
    }
    out = live.observe_batch(batch);
  };
  const hdiff::net::Chain chain({}, {}, {});
  for (auto _ : state) {
    hdiff::core::ParallelExecutor executor(config);
    benchmark::DoNotOptimize(executor.run(chain, cases));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cases.size()));
  state.counters["cases"] = static_cast<double>(cases.size());
  state.counters["backends"] = static_cast<double>(backends.size());
}
BENCHMARK(BM_LiveObserve)
    ->Args({0, 8, 0})  // blocking, jobs=8, instant servers (CPU-bound)
    ->Args({1, 8, 0})  // loop, jobs=8, instant servers: parity expected
    ->Args({0, 1, 2})  // blocking, serial, 2ms service time
    ->Args({1, 1, 2})  // loop overlaps all legs even on one worker
    ->Args({0, 8, 2})  // blocking, jobs=8, 2ms: the E14 baseline
    ->Args({1, 8, 2})  // loop, jobs=8, 2ms: the E14 claim (>=2x vs /0/8/2)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) return run_alloc_check();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
