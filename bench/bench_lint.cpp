// E12: spec-lint runtime — each analyzer in isolation over the adapted
// full-corpus grammar, then the combined `hdiff lint` engine at several
// --jobs values.  The lint pass is a pre-flight gate, so the bar is "cheap
// next to one pipeline run", not microseconds.
#include <benchmark/benchmark.h>

#include "analysis/lint.h"
#include "core/analyzer.h"
#include "corpus/registry.h"

namespace {

const hdiff::abnf::Grammar& corpus_grammar() {
  static const hdiff::abnf::Grammar grammar = [] {
    std::vector<std::string_view> docs;
    for (const auto& doc : hdiff::corpus::all_documents()) {
      docs.push_back(doc.name);
    }
    hdiff::core::DocumentationAnalyzer analyzer;
    return analyzer.analyze(docs).grammar;
  }();
  return grammar;
}

void BM_GrammarLint(benchmark::State& state) {
  const auto& grammar = corpus_grammar();
  hdiff::analysis::GrammarLintOptions options;
  options.jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto diags = hdiff::analysis::lint_grammar(grammar, options);
    benchmark::DoNotOptimize(diags.data());
  }
}
BENCHMARK(BM_GrammarLint)->Arg(1)->Arg(4);

void BM_RuleBaseLint(benchmark::State& state) {
  const auto engine = hdiff::core::make_builtin_rules();
  for (auto _ : state) {
    auto diags = hdiff::analysis::lint_rulebase(engine);
    benchmark::DoNotOptimize(diags.data());
  }
}
BENCHMARK(BM_RuleBaseLint);

void BM_MutationCoverage(benchmark::State& state) {
  const auto& grammar = corpus_grammar();
  hdiff::analysis::MutationCoverageOptions options;
  options.jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto result = hdiff::analysis::analyze_mutation_coverage(grammar, options);
    benchmark::DoNotOptimize(result.stats.mutants);
  }
}
BENCHMARK(BM_MutationCoverage)->Arg(1)->Arg(4);

void BM_FullLint(benchmark::State& state) {
  const auto& grammar = corpus_grammar();
  const auto engine = hdiff::core::make_builtin_rules();
  hdiff::analysis::LintOptions options;
  options.jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto result = hdiff::analysis::run_lint(grammar, engine, options);
    benchmark::DoNotOptimize(result.counts.total());
  }
}
BENCHMARK(BM_FullLint)->Arg(1)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
