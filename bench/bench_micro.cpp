// E8: component micro-benchmarks — parser, generator, chain, and pipeline
// stage throughput.
#include <benchmark/benchmark.h>

#include "abnf/generator.h"
#include "abnf/parser.h"
#include "core/analyzer.h"
#include "core/executor.h"
#include "core/hdiff.h"
#include "core/probes.h"
#include "corpus/registry.h"
#include "http/lexer.h"
#include "http/view.h"
#include "impls/products.h"
#include "net/chain.h"
#include "net/live.h"
#include "text/dependency.h"
#include "text/sentiment.h"

namespace {

const std::string kRequest =
    "POST /path?q=1 HTTP/1.1\r\nHost: h1.com\r\nContent-Length: 5\r\n"
    "Transfer-Encoding: chunked\r\n\r\n0\r\n\r\n";

void BM_LexRequest(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdiff::http::lex_request(kRequest));
  }
}
BENCHMARK(BM_LexRequest);

void BM_ViewParseRequest(benchmark::State& state) {
  // The zero-copy counterpart of BM_LexRequest on a warmed, reused view
  // (DESIGN.md §11); bench_zero_copy --check gates the 0-allocation claim.
  hdiff::http::RequestView view;
  parse_request_view(kRequest, view);
  for (auto _ : state) {
    parse_request_view(kRequest, view);
    benchmark::DoNotOptimize(&view);
  }
}
BENCHMARK(BM_ViewParseRequest);

void BM_ServerParse(benchmark::State& state) {
  auto impl = hdiff::impls::make_implementation("tomcat");
  for (auto _ : state) {
    benchmark::DoNotOptimize(impl->parse_request(kRequest));
  }
}
BENCHMARK(BM_ServerParse);

void BM_ProxyForward(benchmark::State& state) {
  auto impl = hdiff::impls::make_implementation("haproxy");
  for (auto _ : state) {
    benchmark::DoNotOptimize(impl->forward_request(kRequest));
  }
}
BENCHMARK(BM_ProxyForward);

void BM_ChainObserve(benchmark::State& state) {
  auto fleet = hdiff::impls::make_all_implementations();
  auto chain = hdiff::net::Chain::from_fleet(fleet);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.observe("bench", kRequest));
  }
}
BENCHMARK(BM_ChainObserve);

/// The standard case mix (probes + SR translations + ABNF cases) exactly as
/// the default pipeline executes it, generated once and shared by all
/// BM_DifferentialEngine variants.
const std::vector<hdiff::core::TestCase>& standard_case_mix() {
  static const std::vector<hdiff::core::TestCase> cases = [] {
    hdiff::core::Pipeline pipeline{hdiff::core::PipelineConfig{}};
    return pipeline.run().executed_cases;
  }();
  return cases;
}

/// Differential-engine throughput: observe + evaluate + accumulate over the
/// standard case mix.  Args are {jobs, memoize}; {1, 0} is the seed's serial
/// every-case-from-scratch loop.  The executor (and thus both caches) is
/// constructed inside the timed loop, so every iteration starts cold —
/// hit-rate counters report the steady single-run value.
void BM_DifferentialEngine(benchmark::State& state) {
  const auto& cases = standard_case_mix();
  auto fleet = hdiff::impls::make_all_implementations();
  auto chain = hdiff::net::Chain::from_fleet(fleet);
  hdiff::core::ExecutorConfig config;
  config.jobs = static_cast<std::size_t>(state.range(0));
  config.memoize = state.range(1) != 0;
  hdiff::core::ExecutorStats stats;
  for (auto _ : state) {
    hdiff::core::ParallelExecutor executor(config);
    benchmark::DoNotOptimize(executor.run(chain, cases, &stats));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cases.size()));
  state.counters["cases"] = static_cast<double>(cases.size());
  state.counters["memo_hit_rate"] = stats.memo_hit_rate();
  state.counters["verdict_hit_rate"] = stats.verdict_hit_rate();
}
BENCHMARK(BM_DifferentialEngine)
    ->Args({1, 0})  // seed path: serial, no caches
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({8, 0})
    ->UseRealTime()  // count worker threads' time; CPU time only sees main
    ->Unit(benchmark::kMillisecond);

/// Live observe throughput through the executor's batch seam: blocking
/// per-leg transport vs. the epoll event loop (DESIGN.md §11).  Args are
/// {loop, jobs, service_delay_ms}; 2 ms of simulated upstream service time
/// puts the harness in the latency-bound regime the loop targets, where
/// /1/8/2 must sustain >= 2x the cases/s of /0/8/2 (EXPERIMENTS.md E14).
void BM_LiveObserve(benchmark::State& state) {
  auto fleet = hdiff::impls::make_all_implementations();
  std::vector<const hdiff::impls::HttpImplementation*> backends;
  for (const auto& impl : fleet) {
    if (impl->is_server()) backends.push_back(impl.get());
  }
  hdiff::net::LiveFleetConfig live_config;
  live_config.mode = state.range(0) != 0 ? hdiff::net::NetLoopMode::kOn
                                         : hdiff::net::NetLoopMode::kOff;
  live_config.server_concurrency = 8;
  live_config.service_delay_ms = static_cast<int>(state.range(2));
  hdiff::net::LiveFleet live(backends, live_config);

  const std::vector<hdiff::core::TestCase> cases =
      hdiff::core::verification_probes();
  hdiff::core::ExecutorConfig config;
  config.jobs = static_cast<std::size_t>(state.range(1));
  config.memoize = false;  // every case takes a real roundtrip
  config.batch_size = 16;
  config.observe_batch = [&live](const hdiff::core::TestCase* block,
                                 std::size_t n,
                                 std::vector<hdiff::net::ChainObservation>&
                                     out) {
    std::vector<hdiff::net::LiveCase> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(hdiff::net::LiveCase{block[i].uuid, block[i].raw});
    }
    out = live.observe_batch(batch);
  };
  const hdiff::net::Chain chain({}, {}, {});
  for (auto _ : state) {
    hdiff::core::ParallelExecutor executor(config);
    benchmark::DoNotOptimize(executor.run(chain, cases));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cases.size()));
}
BENCHMARK(BM_LiveObserve)
    ->Args({0, 8, 2})  // blocking transport at jobs=8: the E14 baseline
    ->Args({1, 8, 2})  // event loop at jobs=8: >= 2x the baseline
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_AbnfExtract(benchmark::State& state) {
  const auto* doc = hdiff::corpus::find_document("rfc7230");
  std::string cleaned = hdiff::abnf::clean_rfc_text(doc->text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hdiff::abnf::extract_abnf(cleaned, "rfc7230"));
  }
}
BENCHMARK(BM_AbnfExtract);

void BM_AbnfEnumerateHost(benchmark::State& state) {
  hdiff::core::DocumentationAnalyzer analyzer;
  auto result = analyzer.analyze({"rfc7230"});
  hdiff::abnf::Generator gen(result.grammar);
  hdiff::abnf::load_default_http_predefined(gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.enumerate("Host", 64));
  }
}
BENCHMARK(BM_AbnfEnumerateHost);

void BM_SentimentScore(benchmark::State& state) {
  hdiff::text::SentimentClassifier classifier;
  const std::string sentence =
      "A server MUST respond with a 400 (Bad Request) status code to any "
      "HTTP/1.1 request message that lacks a Host header field.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.score(sentence));
  }
}
BENCHMARK(BM_SentimentScore);

void BM_DependencyParse(benchmark::State& state) {
  const std::string sentence =
      "A server MUST reject any received request message that contains "
      "whitespace between a header field-name and colon.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdiff::text::parse_dependencies(sentence));
  }
}
BENCHMARK(BM_DependencyParse);

}  // namespace

BENCHMARK_MAIN();
