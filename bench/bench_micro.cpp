// E8: component micro-benchmarks — parser, generator, chain, and pipeline
// stage throughput.
#include <benchmark/benchmark.h>

#include "abnf/generator.h"
#include "abnf/parser.h"
#include "core/analyzer.h"
#include "corpus/registry.h"
#include "http/lexer.h"
#include "impls/products.h"
#include "net/chain.h"
#include "text/dependency.h"
#include "text/sentiment.h"

namespace {

const std::string kRequest =
    "POST /path?q=1 HTTP/1.1\r\nHost: h1.com\r\nContent-Length: 5\r\n"
    "Transfer-Encoding: chunked\r\n\r\n0\r\n\r\n";

void BM_LexRequest(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdiff::http::lex_request(kRequest));
  }
}
BENCHMARK(BM_LexRequest);

void BM_ServerParse(benchmark::State& state) {
  auto impl = hdiff::impls::make_implementation("tomcat");
  for (auto _ : state) {
    benchmark::DoNotOptimize(impl->parse_request(kRequest));
  }
}
BENCHMARK(BM_ServerParse);

void BM_ProxyForward(benchmark::State& state) {
  auto impl = hdiff::impls::make_implementation("haproxy");
  for (auto _ : state) {
    benchmark::DoNotOptimize(impl->forward_request(kRequest));
  }
}
BENCHMARK(BM_ProxyForward);

void BM_ChainObserve(benchmark::State& state) {
  auto fleet = hdiff::impls::make_all_implementations();
  auto chain = hdiff::net::Chain::from_fleet(fleet);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.observe("bench", kRequest));
  }
}
BENCHMARK(BM_ChainObserve);

void BM_AbnfExtract(benchmark::State& state) {
  const auto* doc = hdiff::corpus::find_document("rfc7230");
  std::string cleaned = hdiff::abnf::clean_rfc_text(doc->text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hdiff::abnf::extract_abnf(cleaned, "rfc7230"));
  }
}
BENCHMARK(BM_AbnfExtract);

void BM_AbnfEnumerateHost(benchmark::State& state) {
  hdiff::core::DocumentationAnalyzer analyzer;
  auto result = analyzer.analyze({"rfc7230"});
  hdiff::abnf::Generator gen(result.grammar);
  hdiff::abnf::load_default_http_predefined(gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.enumerate("Host", 64));
  }
}
BENCHMARK(BM_AbnfEnumerateHost);

void BM_SentimentScore(benchmark::State& state) {
  hdiff::text::SentimentClassifier classifier;
  const std::string sentence =
      "A server MUST respond with a 400 (Bad Request) status code to any "
      "HTTP/1.1 request message that lacks a Host header field.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.score(sentence));
  }
}
BENCHMARK(BM_SentimentScore);

void BM_DependencyParse(benchmark::State& state) {
  const std::string sentence =
      "A server MUST reject any received request message that contains "
      "whitespace between a header field-name and colon.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdiff::text::parse_dependencies(sentence));
  }
}
BENCHMARK(BM_DependencyParse);

}  // namespace

BENCHMARK_MAIN();
