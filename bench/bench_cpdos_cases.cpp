// Experiment E7 — the CPDoS case studies of §IV-B: invalid-version repair,
// blind forwarding of lower/higher versions, Expect-in-GET, and fat GET/HEAD.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "impls/products.h"
#include "report/table.h"

namespace {

using hdiff::impls::make_implementation;

/// Forward through `proxy`, then show every back-end's verdict on the
/// forwarded bytes (the cached response under the proxy's key).
void show_chain(std::string_view title, const std::string& raw) {
  std::printf("%s\n", std::string(title).c_str());
  hdiff::report::Table t({"proxy", "forwards as", "iis", "tomcat", "weblogic",
                          "lighttpd", "apache", "nginx"});
  for (auto proxy_name : {"apache", "nginx", "varnish", "squid", "haproxy",
                          "ats"}) {
    auto proxy = make_implementation(proxy_name);
    auto pv = proxy->forward_request(raw);
    std::vector<std::string> row{std::string(proxy_name)};
    if (!pv.forwarded()) {
      row.push_back("rejects " + std::to_string(pv.status));
      row.resize(8, "-");
    } else {
      std::string line =
          pv.forwarded_bytes.substr(0, pv.forwarded_bytes.find("\r\n"));
      if (line.size() > 36) line = line.substr(0, 33) + "...";
      row.push_back(line);
      for (auto backend_name : {"iis", "tomcat", "weblogic", "lighttpd",
                                "apache", "nginx"}) {
        auto backend = make_implementation(backend_name);
        auto sv = backend->parse_request(pv.forwarded_bytes);
        row.push_back(sv.incomplete ? "hang" : std::to_string(sv.status));
      }
    }
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.render().c_str());
}

void BM_CpdosChainSweep(benchmark::State& state) {
  auto nginx = make_implementation("nginx");
  auto apache = make_implementation("apache");
  const std::string raw = "GET /?a=b 1.1/HTTP\r\nHost: h1.com\r\n\r\n";
  for (auto _ : state) {
    auto pv = nginx->forward_request(raw);
    if (pv.forwarded()) {
      benchmark::DoNotOptimize(apache->parse_request(pv.forwarded_bytes));
    }
  }
}
BENCHMARK(BM_CpdosChainSweep);

}  // namespace

int main(int argc, char** argv) {
  std::printf("E7: CPDoS case studies — a 4xx/5xx cell on a forwarding row "
              "is a cacheable error page (the experiment config caches all "
              "responses, §IV-A).\n\n");

  show_chain(
      "E7.1  Invalid HTTP-version repair — \"they do not delete the old "
      "illegal HTTP version but directly add their own\" (nginx/squid/ats)",
      "GET /?a=b 1.1/HTTP\r\nHost: h1.com\r\n\r\n");

  show_chain(
      "E7.2  Blindly forwarding HTTP/0.9 with headers — \"only the Weblogic "
      "server can handle this message ... the rest report errors\" (haproxy)",
      "GET /\r\nHost: h1.com\r\n\r\n");

  show_chain(
      "E7.3  Blindly forwarding Expect in GET — \"ATS would transparently "
      "forward such requests. And Lighttpd would direct reject\"",
      "GET / HTTP/1.1\r\nHost: h1.com\r\nExpect: 100-continue\r\n\r\n");

  show_chain(
      "E7.4  Fat GET request — \"different HTTP implementations would have "
      "an inconsistent semantic understanding of such requests\"",
      "GET / HTTP/1.1\r\nHost: h1.com\r\nContent-Length: 5\r\n\r\nAAAAA");

  show_chain(
      "E7.5  Hop-by-Hop header stripping — \"Connection: close, Host\" "
      "(apache removes the named end-to-end headers)",
      "GET / HTTP/1.1\r\nHost: h1.com\r\nConnection: close, Host\r\n\r\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
