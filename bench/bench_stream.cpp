// E16: connection-level stream observation and campaign throughput.
//
// Two costs matter for the stream subsystem.  First, the per-stream
// observation: `Chain::observe_stream` runs every back-end's connection
// automaton over the message sequence, forwards message-by-message through
// every proxy, and re-runs the automaton over each forwarded stream — a
// (backends + proxies + proxies*backends)-leg pass whose cost should scale
// with stream length, not explode with it.  Second, the campaign overhead:
// a `--streams` campaign spends `stream_budget_per_round` extra cases per
// round on connection-level shapes; the bar is that those cases price like
// ordinary cases (the observation above) plus detector evaluation, with the
// stream-finding yield reported as a counter so the trajectory shows what
// the extra budget buys.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "campaign/engine.h"
#include "core/probes.h"
#include "impls/products.h"
#include "net/stream.h"
#include "stream/detect.h"
#include "stream/mutate.h"
#include "stream/seeds.h"

namespace {

namespace fs = std::filesystem;

std::string fresh_dir() {
  static int counter = 0;
  const fs::path dir =
      fs::temp_directory_path() /
      ("hdiff-bench-stream-" + std::to_string(::getpid()) + "-" +
       std::to_string(counter++));
  fs::remove_all(dir);
  return dir.string();
}

const std::vector<std::unique_ptr<hdiff::impls::HttpImplementation>>& fleet() {
  static const auto f = hdiff::impls::make_all_implementations();
  return f;
}

const hdiff::net::Chain& chain() {
  static const auto c = hdiff::net::Chain::from_fleet(fleet());
  return c;
}

const hdiff::stream::RequestStream& seed_named(const char* name) {
  for (const auto& s : hdiff::stream::default_stream_seeds()) {
    if (s.name == name) return s.stream;
  }
  static const hdiff::stream::RequestStream empty;
  return empty;
}

/// A pipelined stream of `n` plain GETs: the stream-length scaling probe.
hdiff::stream::RequestStream pipeline_of(std::size_t n) {
  std::vector<hdiff::http::RequestSpec> messages;
  for (std::size_t i = 0; i < n; ++i) {
    messages.push_back(
        hdiff::http::make_get("origin.example", "/r" + std::to_string(i)));
  }
  return hdiff::stream::make_stream(std::move(messages));
}

// One full connection-level observation (all direct, proxy and relayed
// legs) per iteration, over stream length.
void BM_StreamObserve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<std::string> wires = pipeline_of(n).wires();
  std::size_t legs = 0;
  for (auto _ : state) {
    const hdiff::net::StreamObservation obs =
        chain().observe_stream("bench", wires);
    legs = obs.direct.size() + obs.proxies.size() + obs.relayed.size();
    benchmark::DoNotOptimize(obs.wire.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.counters["connection_legs"] = static_cast<double>(legs);
}
BENCHMARK(BM_StreamObserve)
    ->ArgNames({"messages"})
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

// Observation + all three stream detectors over the flagship desync seed —
// the per-case cost a `--streams` campaign actually pays.
void BM_StreamObserveAndDetect(benchmark::State& state) {
  const std::vector<std::string> wires = seed_named("fat-get").wires();
  const hdiff::stream::StreamDetector detector(chain());
  std::size_t findings = 0;
  for (auto _ : state) {
    const hdiff::net::StreamObservation obs =
        chain().observe_stream("bench", wires);
    const hdiff::stream::StreamDetectionResult result =
        detector.evaluate(obs);
    findings = result.findings.size();
    benchmark::DoNotOptimize(result.any());
  }
  state.counters["findings_per_case"] = static_cast<double>(findings);
}
BENCHMARK(BM_StreamObserveAndDetect)->Unit(benchmark::kMicrosecond);

// Exhaustive mutant enumeration per seed: the planner's per-entry cost when
// an arm's variants are materialized for cursor rotation.
void BM_StreamMutants(benchmark::State& state) {
  std::size_t mutants = 0;
  for (auto _ : state) {
    for (const auto& seed : hdiff::stream::default_stream_seeds()) {
      const auto variants = hdiff::stream::stream_mutants(seed.stream);
      mutants += variants.size();
      benchmark::DoNotOptimize(variants.size());
    }
  }
  state.counters["mutants_per_pass"] =
      static_cast<double>(mutants) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_StreamMutants);

// Whole campaigns with streams off vs on, same budget: the marginal cost of
// the connection-level schedule and what it yields (stream corpus entries
// and total findings as counters).
void BM_StreamCampaign(benchmark::State& state) {
  const bool streams = state.range(0) != 0;
  std::size_t findings = 0, stream_entries = 0;
  for (auto _ : state) {
    hdiff::campaign::CampaignConfig config;
    config.state_dir = fresh_dir();
    config.rounds = 2;
    config.budget_per_round = 24;
    config.minimize.max_steps = 128;
    config.executor.jobs = 4;
    config.bootstrap = hdiff::core::verification_probes();
    config.streams = streams;
    const auto report = hdiff::campaign::CampaignEngine(config).run(fleet());
    findings = report.total_findings;
    stream_entries = report.stream_entries;
    benchmark::DoNotOptimize(report.rounds_completed);
    fs::remove_all(config.state_dir);
  }
  state.counters["findings"] = static_cast<double>(findings);
  state.counters["stream_entries"] = static_cast<double>(stream_entries);
}
BENCHMARK(BM_StreamCampaign)
    ->ArgNames({"streams"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
