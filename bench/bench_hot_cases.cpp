// Experiment E6 — the HoT case studies of §IV-B: bad absolute-URI vs Host,
// and invalid Host values forwarded without modification.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "impls/products.h"
#include "report/table.h"

namespace {

using hdiff::impls::make_implementation;

void case_absolute_uri() {
  std::printf("E6.1  Bad absolute-URI vs Host — \"varnish does not rewrite "
              "the Host header if the absolute-URI started with a non-HTTP "
              "schema ... IIS and Tomcat recognize the host from "
              "absolute-URI\"\n");
  const std::string raw =
      "GET test://h2.com/?a=1 HTTP/1.1\r\nHost: h1.com\r\n\r\n";
  hdiff::report::Table fronts({"proxy", "forwards?", "routes on",
                               "request line forwarded"});
  for (auto name : {"varnish", "haproxy", "nginx", "squid", "ats", "apache"}) {
    auto impl = make_implementation(name);
    auto v = impl->forward_request(raw);
    std::string line = "-";
    if (v.forwarded()) {
      line = v.forwarded_bytes.substr(0, v.forwarded_bytes.find("\r\n"));
    }
    fronts.add_row({std::string(name),
                    v.forwarded() ? "yes" : "no (" + std::to_string(v.status) + ")",
                    v.host.empty() ? "-" : v.host, line});
  }
  std::printf("%s\n", fronts.render().c_str());

  hdiff::report::Table backs({"server", "status", "derives host"});
  for (auto name : {"iis", "tomcat", "weblogic", "nginx", "apache",
                    "lighttpd"}) {
    auto impl = make_implementation(name);
    auto v = impl->parse_request(raw);
    backs.add_row({std::string(name), std::to_string(v.status),
                   v.host.empty() ? "-" : v.host});
  }
  std::printf("%s", backs.render().c_str());
  std::printf("  => transparent fronts route on h1.com while IIS/Tomcat/"
              "Weblogic serve h2.com — the HoT gap.\n\n");
}

void case_invalid_host() {
  std::printf("E6.2  Invalid Host header — ambiguous hostnames forwarded "
              "without modification\n");
  for (std::string_view host :
       {"h1.com@h2.com", "h1.com, h2.com", "h1.com/.//test?"}) {
    std::string raw = "GET /?a=1 HTTP/1.1\r\nHost: " + std::string(host) +
                      "\r\n\r\n";
    std::printf("Host: %s\n", std::string(host).c_str());
    hdiff::report::Table t({"implementation", "role", "status/forward",
                            "interprets host as"});
    for (auto name : {"nginx", "varnish", "haproxy", "squid", "iis", "tomcat",
                      "weblogic", "lighttpd", "apache"}) {
      auto impl = make_implementation(name);
      if (impl->is_proxy()) {
        auto v = impl->forward_request(raw);
        t.add_row({std::string(name), "proxy",
                   v.forwarded() ? "forwards" : std::to_string(v.status),
                   v.host.empty() ? "-" : v.host});
      } else {
        auto v = impl->parse_request(raw);
        t.add_row({std::string(name), "server", std::to_string(v.status),
                   v.host.empty() ? "-" : v.host});
      }
    }
    std::printf("%s\n", t.render().c_str());
  }
  std::printf("  => fronts route on the prefix while IIS/Weblogic take the "
              "bytes after '@' and Tomcat the last list element.\n\n");
}

void BM_HostInterpretationSweep(benchmark::State& state) {
  auto fleet = hdiff::impls::make_all_implementations();
  const std::string raw =
      "GET / HTTP/1.1\r\nHost: h1.com@h2.com\r\n\r\n";
  for (auto _ : state) {
    for (const auto& impl : fleet) {
      if (impl->is_server()) {
        benchmark::DoNotOptimize(impl->parse_request(raw));
      }
    }
  }
}
BENCHMARK(BM_HostInterpretationSweep);

}  // namespace

int main(int argc, char** argv) {
  case_absolute_uri();
  case_invalid_host();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
