// Experiment E3 — paper Table II: examples of semantic gap attacks found by
// HDiff, grouped by HTTP element, with the attack classes each vector was
// observed to enable in this reproduction.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/hdiff.h"
#include "core/probes.h"
#include "impls/products.h"
#include "report/table.h"

namespace {

const hdiff::core::PipelineResult& pipeline_result() {
  static const hdiff::core::PipelineResult kResult = [] {
    hdiff::core::PipelineConfig config;
    config.abnf_run_budget = 1500;
    return hdiff::core::Pipeline(config).run();
  }();
  return kResult;
}

void print_table2() {
  const auto& catalogue = pipeline_result().matrix.vector_catalogue;

  // Table II rows: element, vector label, the paper's attack classes.
  struct Row {
    const char* element;
    const char* label;
    const char* paper;
  };
  constexpr Row kRows[] = {
      {"Request-Line", "Invalid HTTP-version", "CPDoS"},
      {"Request-Line", "lower/higher HTTP-version", "HRS, CPDoS"},
      {"Request-Line", "Bad absolute-URI vs Host", "HoT"},
      {"Request-Line", "Fat HEAD/GET request", "HRS, CPDoS"},
      {"Header-field", "Invalid CL/TE header", "HRS"},
      {"Header-field", "Multiple CL/TE headers", "HRS"},
      {"Header-field", "Invalid Host header", "HoT, CPDoS"},
      {"Header-field", "Multiple Host headers", "HoT"},
      {"Header-field", "Hop-by-Hop headers", "CPDoS"},
      {"Header-field", "Expect header", "HRS, CPDoS"},
      {"Header-field", "Obs-fold header", "HoT"},
      {"Header-field", "Obsoleted header or value", "HRS, CPDoS"},
      {"Message-body", "Bad chunk-size value", "HRS"},
      {"Message-body", "NULL in chunk-data", "HRS"},
      {"Header-field", "Missing Host header", "(extra probe)"},
  };

  std::printf("E3: Table II — semantic gap attack vectors\n");
  std::printf("    paper column: attack classes reported by the paper\n");
  std::printf("    measured column: classes with findings in this run\n\n");
  hdiff::report::Table table(
      {"HTTP element", "vector", "paper", "measured"});
  for (const auto& row : kRows) {
    std::string measured;
    auto it = catalogue.find(row.label);
    if (it != catalogue.end()) {
      for (const auto& attack : it->second) {
        if (!measured.empty()) measured += ", ";
        measured += attack;
      }
    } else {
      measured = "(none)";
    }
    table.add_row({row.element, row.label, row.paper, measured});
  }
  std::printf("%s\n", table.render().c_str());
}

void BM_VectorProbesThroughChain(benchmark::State& state) {
  // Throughput of pushing the whole Table II probe set through the chain.
  auto fleet = hdiff::impls::make_all_implementations();
  auto chain = hdiff::net::Chain::from_fleet(fleet);
  auto probes = hdiff::core::verification_probes();
  hdiff::core::DetectionEngine engine;
  for (auto _ : state) {
    hdiff::core::DetectionResult total;
    for (const auto& tc : probes) {
      hdiff::core::DetectionEngine::accumulate(
          total, engine.evaluate(tc, chain.observe(tc.uuid, tc.raw)));
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_VectorProbesThroughChain)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
