// Experiment E9 — ablations of HDiff's design choices.
//
//  A. Sentiment-based SR finder vs plain RFC-2119 keyword filtering
//     (the paper: keyword filtering misses SRs like "is not allowed" /
//     "cannot contain a message body" / "ought to be handled as an error").
//  B. ABNF generator with vs without predefined leaf values
//     (the paper: raw grammar derivations are "too distorted and easy to be
//     directly rejected by the target server").
//  C. Differential run with vs without the mutation stage
//     (the paper: "many HTTP implementations became vulnerable when HDiff
//     made a slight mutation").
#include <benchmark/benchmark.h>

#include <cstdio>

#include "abnf/generator.h"
#include "core/hdiff.h"
#include "corpus/registry.h"
#include "impls/products.h"
#include "report/table.h"
#include "text/sentence.h"
#include "text/sentiment.h"

namespace {

void ablation_sr_finder() {
  std::printf("E9.A  SR finder: sentiment classifier vs RFC-2119 keyword "
              "filter\n");
  hdiff::text::SentimentClassifier classifier;
  std::size_t total = 0, sentiment_only = 0, keyword_only = 0, both = 0;
  std::vector<std::string> sentiment_only_examples;
  for (auto name : hdiff::corpus::http_core_documents()) {
    const auto* doc = hdiff::corpus::find_document(name);
    for (const auto& sentence : hdiff::text::split_sentences(doc->text)) {
      if (hdiff::text::looks_like_grammar(sentence.text)) continue;
      ++total;
      bool by_sentiment = classifier.is_requirement(sentence.text);
      bool by_keyword = hdiff::text::keyword_filter_matches(sentence.text);
      if (by_sentiment && by_keyword) {
        ++both;
      } else if (by_sentiment) {
        ++sentiment_only;
        if (sentiment_only_examples.size() < 4) {
          sentiment_only_examples.push_back(sentence.text.substr(0, 100));
        }
      } else if (by_keyword) {
        ++keyword_only;
      }
    }
  }
  hdiff::report::Table t({"metric", "count"});
  t.add_row({"sentences scanned", std::to_string(total)});
  t.add_row({"flagged by both", std::to_string(both)});
  t.add_row({"flagged by sentiment only", std::to_string(sentiment_only)});
  t.add_row({"flagged by keyword only", std::to_string(keyword_only)});
  std::printf("%s", t.render().c_str());
  std::printf("Sentiment-only SRs (the informal requirements a keyword "
              "filter misses):\n");
  for (const auto& ex : sentiment_only_examples) {
    std::printf("  - %s...\n", ex.c_str());
  }
  std::printf("\n");
}

void ablation_predefined_leaves() {
  std::printf("E9.B  ABNF generator: predefined leaf values vs raw grammar "
              "derivations (server accept-rate of generated Host headers)\n");
  hdiff::core::DocumentationAnalyzer analyzer;
  auto analysis = analyzer.analyze(hdiff::corpus::http_core_documents());
  auto fleet = hdiff::impls::make_all_implementations();

  auto accept_rate = [&](bool with_predefined) {
    hdiff::abnf::Generator gen(analysis.grammar);
    if (with_predefined) hdiff::abnf::load_default_http_predefined(gen);
    auto hosts = gen.enumerate("Host", 64);
    std::size_t accepted = 0, probes = 0;
    for (const auto& host : hosts) {
      std::string raw = "GET / HTTP/1.1\r\nHost: " + host + "\r\n\r\n";
      for (const auto& impl : fleet) {
        if (!impl->is_server()) continue;
        ++probes;
        if (impl->parse_request(raw).accepted()) ++accepted;
      }
    }
    return std::pair<std::size_t, double>(
        hosts.size(),
        probes == 0 ? 0.0
                    : 100.0 * static_cast<double>(accepted) /
                          static_cast<double>(probes));
  };
  auto [n_raw, rate_raw] = accept_rate(false);
  auto [n_pre, rate_pre] = accept_rate(true);
  hdiff::report::Table t({"generator mode", "values", "server accept-rate"});
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", rate_raw);
  t.add_row({"raw grammar derivations", std::to_string(n_raw), buf});
  std::snprintf(buf, sizeof buf, "%.1f%%", rate_pre);
  t.add_row({"with predefined leaves", std::to_string(n_pre), buf});
  std::printf("%s", t.render().c_str());
  std::printf("  => predefined leaves keep the seeds acceptable so mutation "
              "can probe the corner cases.\n\n");
}

void ablation_mutation_stage() {
  std::printf("E9.C  Differential run with vs without the mutation stage\n");
  auto run = [&](bool with_mutation) {
    hdiff::core::PipelineConfig config;
    config.translator.include_mutations = with_mutation;
    config.abnf_gen.include_mutations = with_mutation;
    config.abnf_run_budget = 0;    // run every generated case
    config.include_probes = false;  // isolate the generators
    return hdiff::core::Pipeline(config).run();
  };
  auto without = run(false);
  auto with = run(true);
  hdiff::report::Table t({"metric", "no mutation", "with mutation"});
  t.add_row({"executed cases",
             std::to_string(without.executed_cases.size()),
             std::to_string(with.executed_cases.size())});
  t.add_row({"SR violations", std::to_string(without.findings.violations.size()),
             std::to_string(with.findings.violations.size())});
  t.add_row({"affected pairs", std::to_string(without.findings.pairs.size()),
             std::to_string(with.findings.pairs.size())});
  t.add_row({"inputs with discrepancies",
             std::to_string(
                 without.findings.discrepancies.inputs_with_discrepancy),
             std::to_string(
                 with.findings.discrepancies.inputs_with_discrepancy)});
  std::printf("%s\n", t.render().c_str());
}

void BM_SentimentVsKeyword(benchmark::State& state) {
  hdiff::text::SentimentClassifier classifier;
  const std::string sentence =
      "A recipient that encounters the identity value in a Transfer-Encoding "
      "header field ought to treat the message as invalid.";
  if (state.range(0) == 0) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(
          hdiff::text::keyword_filter_matches(sentence));
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(classifier.is_requirement(sentence));
    }
  }
}
BENCHMARK(BM_SentimentVsKeyword)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  ablation_sr_finder();
  ablation_predefined_leaves();
  ablation_mutation_stage();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
