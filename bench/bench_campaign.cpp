// E13: campaign-engine throughput — full mini-campaigns over the modelled
// fleet (rounds/sec with novel-signature yield and dedup ratio as
// counters), plus the component costs a round is made of: signature
// extraction + fingerprinting, budget apportionment across arms, and
// delta-debug minimization.  The engine's bar is "a round costs about one
// pipeline pass over its case list"; the dedup ratio shows why later
// rounds get cheaper per finding.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "analysis/coverage.h"
#include "campaign/engine.h"
#include "campaign/fingerprint.h"
#include "campaign/minimize.h"
#include "campaign/scheduler.h"
#include "core/abnf_testgen.h"
#include "core/analyzer.h"
#include "core/probes.h"
#include "corpus/registry.h"
#include "impls/products.h"

namespace {

namespace fs = std::filesystem;

std::string fresh_dir() {
  static int counter = 0;
  const fs::path dir =
      fs::temp_directory_path() /
      ("hdiff-bench-campaign-" + std::to_string(::getpid()) + "-" +
       std::to_string(counter++));
  fs::remove_all(dir);
  return dir.string();
}

const std::vector<std::unique_ptr<hdiff::impls::HttpImplementation>>& fleet() {
  static const auto f = hdiff::impls::make_all_implementations();
  return f;
}

hdiff::campaign::CampaignConfig base_config(std::size_t rounds,
                                            std::size_t jobs) {
  hdiff::campaign::CampaignConfig config;
  config.rounds = rounds;
  config.budget_per_round = 24;
  config.minimize.max_steps = 128;
  config.executor.jobs = jobs;
  config.bootstrap = hdiff::core::verification_probes();
  return config;
}

// Whole campaigns, fresh state dir per iteration: rounds/sec end to end.
void BM_CampaignRun(benchmark::State& state) {
  const auto rounds = static_cast<std::size_t>(state.range(0));
  const auto jobs = static_cast<std::size_t>(state.range(1));
  std::size_t findings = 0, novel = 0, duplicate = 0;
  for (auto _ : state) {
    auto config = base_config(rounds, jobs);
    config.state_dir = fresh_dir();
    hdiff::campaign::CampaignEngine engine(config);
    const auto report = engine.run(fleet());
    findings = report.total_findings;
    novel += report.novel_total;
    duplicate += report.duplicate_total;
    benchmark::DoNotOptimize(report.rounds_completed);
    fs::remove_all(config.state_dir);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rounds + 1));
  state.counters["findings"] = static_cast<double>(findings);
  state.counters["novel_per_round"] =
      static_cast<double>(novel) /
      static_cast<double>(state.iterations() * (rounds + 1));
  const double seen = static_cast<double>(novel + duplicate);
  state.counters["dedup_ratio"] =
      seen == 0.0 ? 0.0 : static_cast<double>(duplicate) / seen;
}
BENCHMARK(BM_CampaignRun)
    ->ArgNames({"rounds", "jobs"})
    ->Args({2, 1})
    ->Args({2, 4})
    ->Args({5, 4})
    ->Unit(benchmark::kMillisecond);

// Resume cost: the second engine sees a fully-committed campaign and must
// only load the checkpoint and verify there is nothing left to run.
void BM_CampaignResumeNoop(benchmark::State& state) {
  auto config = base_config(2, 1);
  config.state_dir = fresh_dir();
  hdiff::campaign::CampaignEngine(config).run(fleet());
  for (auto _ : state) {
    hdiff::campaign::CampaignEngine engine(config);
    const auto report = engine.run(fleet());
    benchmark::DoNotOptimize(report.resumed);
  }
  fs::remove_all(config.state_dir);
}
BENCHMARK(BM_CampaignResumeNoop)->Unit(benchmark::kMillisecond);

void BM_SignatureFingerprint(benchmark::State& state) {
  hdiff::core::DetectionResult delta;
  for (int i = 0; i < 4; ++i) {
    hdiff::core::PairFinding p;
    p.front = "proxy-" + std::to_string(i);
    p.back = "server-" + std::to_string(i % 2);
    p.attack = hdiff::core::AttackClass::kHrs;
    delta.pairs.push_back(p);
  }
  hdiff::core::SrViolation v;
  v.impl = "tomcat";
  v.sr_id = "SR-12";
  delta.violations.push_back(v);
  for (auto _ : state) {
    for (const auto& sig : hdiff::campaign::signatures_of(delta)) {
      benchmark::DoNotOptimize(
          hdiff::campaign::fingerprint(sig, "mutant:abc:duplicate-header"));
    }
  }
}
BENCHMARK(BM_SignatureFingerprint);

void BM_SchedulerAllocate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<hdiff::campaign::ArmView> arms(n);
  for (std::size_t i = 0; i < n; ++i) {
    arms[i] = {i % 7, i % 3, 8};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdiff::campaign::allocate_budget(96, arms));
  }
}
BENCHMARK(BM_SchedulerAllocate)->Arg(64)->Arg(512);

// E15: coverage-guided vs coverage-blind scheduling, three arms:
//   mode 0 (off)      — no plan at all: the pre-coverage campaign.
//   mode 1 (tracking) — plan installed, weighting off: identical schedule
//                       to `off` but the covered/gap counters are measured.
//   mode 2 (guided)   — plan + scheduler weighting: the uncovered/gap
//                       terms bias the budget split toward unprobed grammar.
// Acceptance (EXPERIMENTS.md E15): guided covers strictly more productions
// than the off baseline reports and its novel-fingerprint rate is no worse;
// tracking vs guided separates measurement cost from steering effect.
const hdiff::analysis::CoveragePlan& corpus_coverage_plan() {
  static const auto plan = [] {
    hdiff::core::DocumentationAnalyzer analyzer;
    auto analysis = analyzer.analyze(hdiff::corpus::http_core_documents());
    std::vector<std::string> roots{"http-message"};
    for (const auto& target : hdiff::core::default_abnf_targets()) {
      roots.push_back(target.rule);
    }
    return hdiff::analysis::build_coverage_plan(analysis.grammar, roots);
  }();
  return plan;
}

void BM_CampaignCoverageTrajectory(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  std::size_t covered = 0, gap_hits = 0, novel = 0, rounds_seen = 0;
  std::size_t coverage_auc = 0;
  for (auto _ : state) {
    auto config = base_config(5, 4);
    config.state_dir = fresh_dir();
    if (mode > 0) config.coverage = corpus_coverage_plan();
    config.coverage_weighting = mode == 2;
    const auto report = hdiff::campaign::CampaignEngine(config).run(fleet());
    covered = report.coverage_covered;
    gap_hits = report.gap_sites_hit;
    novel += report.novel_total;
    rounds_seen += report.rounds_completed;
    // Area under the per-round covered curve: both arms end at the
    // mutation-touchable frontier eventually, so the trajectory (how fast
    // the frontier is reached) is the discriminating statistic.
    for (const auto& rr : report.rounds) coverage_auc += rr.coverage_covered;
    benchmark::DoNotOptimize(report.total_findings);
    fs::remove_all(config.state_dir);
  }
  state.counters["productions_covered"] = static_cast<double>(covered);
  state.counters["coverage_auc"] =
      static_cast<double>(coverage_auc) /
      static_cast<double>(state.iterations());
  state.counters["gap_sites_hit"] = static_cast<double>(gap_hits);
  state.counters["novel_per_round"] =
      rounds_seen == 0 ? 0.0
                       : static_cast<double>(novel) /
                             static_cast<double>(rounds_seen);
}
BENCHMARK(BM_CampaignCoverageTrajectory)
    ->ArgNames({"mode"})
    ->Arg(0)   // off
    ->Arg(1)   // tracking
    ->Arg(2)   // guided
    ->Unit(benchmark::kMillisecond);

void BM_MinimizeSyntheticOracle(benchmark::State& state) {
  hdiff::http::RequestSpec spec;
  spec.method = "POST";
  spec.line_terminator = "\n";
  spec.add("Host", "origin.example");
  for (int i = 0; i < 6; ++i) {
    spec.add("X-Junk-" + std::to_string(i), std::string(32, 'j'));
  }
  spec.add("Key", "needle");
  spec.body = std::string(256, 'b');
  const auto oracle = [](const hdiff::http::RequestSpec& s) {
    return s.get("Key").has_value();
  };
  std::size_t steps = 0;
  for (auto _ : state) {
    const auto outcome = hdiff::campaign::minimize_spec(spec, oracle);
    steps = outcome.steps;
    benchmark::DoNotOptimize(outcome.accepted);
  }
  state.counters["oracle_steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_MinimizeSyntheticOracle);

}  // namespace

BENCHMARK_MAIN();
