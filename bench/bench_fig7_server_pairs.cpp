// Experiment E4 — paper Figure 7: front-end x back-end server pairs affected
// by the three attack classes.
//
// The paper's headline pair statistic is the nine HoT-affected pairs
// (e.g. Varnish-IIS, Nginx-Weblogic); CPDoS affects every proxy as a
// front-end.  The matrix below is regenerated from scratch by the pipeline.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/hdiff.h"
#include "impls/products.h"
#include "report/table.h"

namespace {

const hdiff::core::PipelineResult& pipeline_result() {
  static const hdiff::core::PipelineResult kResult = [] {
    hdiff::core::PipelineConfig config;
    config.abnf_run_budget = 1500;
    return hdiff::core::Pipeline(config).run();
  }();
  return kResult;
}

void print_fig7() {
  const auto& matrix = pipeline_result().matrix;
  const std::vector<std::string> fronts{"apache", "nginx",   "varnish",
                                        "squid",  "haproxy", "ats"};
  const std::vector<std::string> backs{"iis",      "tomcat", "weblogic",
                                       "lighttpd", "apache", "nginx"};

  auto to_pairs = [](const std::set<std::string>& keys) {
    return hdiff::report::parse_pair_keys(
        std::vector<std::string>(keys.begin(), keys.end()));
  };
  std::printf("E4: Figure 7 — server pairs affected by the three attacks\n\n");
  std::printf("%s\n", hdiff::report::render_pair_matrix(
                          fronts, backs, to_pairs(matrix.hrs_pairs),
                          to_pairs(matrix.hot_pairs),
                          to_pairs(matrix.cpdos_pairs))
                          .c_str());

  std::printf("Pair counts: HRS=%zu, HoT=%zu (paper: 9), CPDoS=%zu\n",
              matrix.hrs_pairs.size(), matrix.hot_pairs.size(),
              matrix.cpdos_pairs.size());
  std::printf("HoT pairs:\n");
  for (const auto& pair : matrix.hot_pairs) {
    std::printf("  %s\n", pair.c_str());
  }
  std::printf("\n");
}

void BM_PairAnalysisPerCase(benchmark::State& state) {
  auto fleet = hdiff::impls::make_all_implementations();
  auto chain = hdiff::net::Chain::from_fleet(fleet);
  hdiff::core::DetectionEngine engine;
  hdiff::core::TestCase tc;
  tc.uuid = "bench";
  tc.raw = "GET /?a=1 HTTP/1.1\r\nHost: h1.com@h2.com\r\n\r\n";
  tc.category = hdiff::core::AttackClass::kHot;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.evaluate(tc, chain.observe(tc.uuid, tc.raw)));
  }
}
BENCHMARK(BM_PairAnalysisPerCase)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig7();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
