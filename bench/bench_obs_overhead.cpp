// E11: observability overhead — instrument hot paths in isolation, then the
// full differential engine traced vs. untraced.  The acceptance bar is <2%
// wall-clock overhead at jobs=8 with metrics + tracing both enabled
// (BM_DifferentialEngineObs/8/1 vs /8/0).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/executor.h"
#include "core/hdiff.h"
#include "impls/products.h"
#include "net/chain.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace {

// ---------------------------------------------------------------------------
// Instrument micro-benchmarks: the per-event costs the executor pays.
// ---------------------------------------------------------------------------

void BM_CounterAdd(benchmark::State& state) {
  static hdiff::obs::Counter counter;
  for (auto _ : state) {
    counter.add();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterAdd)->Threads(1)->Threads(8);

void BM_HistogramObserve(benchmark::State& state) {
  static hdiff::obs::Histogram histogram(
      hdiff::obs::Histogram::latency_buckets_us());
  std::uint64_t v = 1;
  for (auto _ : state) {
    histogram.observe(v);
    v = v * 33 % 1000000 + 1;  // walk the bucket ladder
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramObserve)->Threads(1)->Threads(8);

void BM_RegistryLookup(benchmark::State& state) {
  // The executor hoists these to run start; this shows why.
  hdiff::obs::Registry registry;
  registry.counter("hdiff_executor_cases_total");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        &registry.counter("hdiff_executor_cases_total"));
  }
}
BENCHMARK(BM_RegistryLookup);

void BM_SpanEnabled(benchmark::State& state) {
  hdiff::obs::TraceSink sink;
  for (auto _ : state) {
    hdiff::obs::Span span(&sink, "bench", "bench");
  }
  benchmark::DoNotOptimize(sink.event_count());
}
BENCHMARK(BM_SpanEnabled);

void BM_SpanDisabled(benchmark::State& state) {
  // The whole layer off: a Span over a null sink must be a pointer test.
  for (auto _ : state) {
    hdiff::obs::Span span(nullptr, "bench", "bench");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

// ---------------------------------------------------------------------------
// End-to-end overhead: the differential engine with and without obs.
// ---------------------------------------------------------------------------

/// The standard case mix exactly as the default pipeline executes it,
/// generated once and shared by every BM_DifferentialEngineObs variant.
const std::vector<hdiff::core::TestCase>& standard_case_mix() {
  static const std::vector<hdiff::core::TestCase> cases = [] {
    hdiff::core::Pipeline pipeline{hdiff::core::PipelineConfig{}};
    return pipeline.run().executed_cases;
  }();
  return cases;
}

/// Args are {jobs, obs_on}.  With obs_on the registry and trace sink are
/// constructed inside the timed loop, so their setup and every per-case
/// event count against the instrumented run — the honest comparison.
void BM_DifferentialEngineObs(benchmark::State& state) {
  const auto& cases = standard_case_mix();
  auto fleet = hdiff::impls::make_all_implementations();
  auto chain = hdiff::net::Chain::from_fleet(fleet);
  const bool obs_on = state.range(1) != 0;
  hdiff::core::ExecutorStats stats;
  std::uint64_t events = 0;
  for (auto _ : state) {
    hdiff::obs::Registry registry;
    hdiff::obs::TraceSink sink;
    hdiff::core::ExecutorConfig config;
    config.jobs = static_cast<std::size_t>(state.range(0));
    if (obs_on) {
      config.obs.metrics = &registry;
      config.obs.trace = &sink;
    }
    hdiff::core::ParallelExecutor executor(config);
    benchmark::DoNotOptimize(executor.run(chain, cases, &stats));
    events = sink.event_count();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cases.size()));
  state.counters["cases"] = static_cast<double>(cases.size());
  state.counters["trace_events"] = static_cast<double>(events);
}
BENCHMARK(BM_DifferentialEngineObs)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({8, 0})
    ->Args({8, 1})  // acceptance pair: compare against {8, 0}
    ->UseRealTime()  // count worker threads' time; CPU time only sees main
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
