// E11: observability overhead — instrument hot paths in isolation, then the
// full differential engine traced vs. untraced.  The acceptance bar is <2%
// wall-clock overhead at jobs=8 with metrics + tracing both enabled
// (BM_DifferentialEngineObs/8/1 vs /8/0).  `--check` runs that comparison
// as a strict pass/fail gate (the `bench_obs_overhead_check` ctest entry,
// label `obs-overhead`, behind HDIFF_OBS_OVERHEAD_GATE / the `obs` preset)
// so an instrumentation regression fails CI, not just a chart; on hosts
// with fewer than 8 cores the limit scales with the parallelism shortfall
// (see run_overhead_check) so the same per-case budget is enforced.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/executor.h"
#include "core/hdiff.h"
#include "impls/products.h"
#include "net/chain.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace {

// ---------------------------------------------------------------------------
// Instrument micro-benchmarks: the per-event costs the executor pays.
// ---------------------------------------------------------------------------

void BM_CounterAdd(benchmark::State& state) {
  static hdiff::obs::Counter counter;
  for (auto _ : state) {
    counter.add();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterAdd)->Threads(1)->Threads(8);

void BM_HistogramObserve(benchmark::State& state) {
  static hdiff::obs::Histogram histogram(
      hdiff::obs::Histogram::latency_buckets_us());
  std::uint64_t v = 1;
  for (auto _ : state) {
    histogram.observe(v);
    v = v * 33 % 1000000 + 1;  // walk the bucket ladder
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramObserve)->Threads(1)->Threads(8);

void BM_RegistryLookup(benchmark::State& state) {
  // The executor hoists these to run start; this shows why.
  hdiff::obs::Registry registry;
  registry.counter("hdiff_executor_cases_total");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        &registry.counter("hdiff_executor_cases_total"));
  }
}
BENCHMARK(BM_RegistryLookup);

void BM_SpanEnabled(benchmark::State& state) {
  hdiff::obs::TraceSink sink;
  for (auto _ : state) {
    hdiff::obs::Span span(&sink, "bench", "bench");
  }
  benchmark::DoNotOptimize(sink.event_count());
}
BENCHMARK(BM_SpanEnabled);

void BM_SpanDisabled(benchmark::State& state) {
  // The whole layer off: a Span over a null sink must be a pointer test.
  for (auto _ : state) {
    hdiff::obs::Span span(nullptr, "bench", "bench");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

// ---------------------------------------------------------------------------
// End-to-end overhead: the differential engine with and without obs.
// ---------------------------------------------------------------------------

/// The standard case mix exactly as the default pipeline executes it,
/// generated once and shared by every BM_DifferentialEngineObs variant.
const std::vector<hdiff::core::TestCase>& standard_case_mix() {
  static const std::vector<hdiff::core::TestCase> cases = [] {
    hdiff::core::Pipeline pipeline{hdiff::core::PipelineConfig{}};
    return pipeline.run().executed_cases;
  }();
  return cases;
}

/// Args are {jobs, obs_on}.  With obs_on the registry and trace sink are
/// constructed inside the timed loop, so their setup and every per-case
/// event count against the instrumented run — the honest comparison.
void BM_DifferentialEngineObs(benchmark::State& state) {
  const auto& cases = standard_case_mix();
  auto fleet = hdiff::impls::make_all_implementations();
  auto chain = hdiff::net::Chain::from_fleet(fleet);
  const bool obs_on = state.range(1) != 0;
  hdiff::core::ExecutorStats stats;
  std::uint64_t events = 0;
  for (auto _ : state) {
    hdiff::obs::Registry registry;
    hdiff::obs::TraceSink sink;
    hdiff::core::ExecutorConfig config;
    config.jobs = static_cast<std::size_t>(state.range(0));
    if (obs_on) {
      config.obs.metrics = &registry;
      config.obs.trace = &sink;
    }
    hdiff::core::ParallelExecutor executor(config);
    benchmark::DoNotOptimize(executor.run(chain, cases, &stats));
    events = sink.event_count();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cases.size()));
  state.counters["cases"] = static_cast<double>(cases.size());
  state.counters["trace_events"] = static_cast<double>(events);
}
BENCHMARK(BM_DifferentialEngineObs)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({8, 0})
    ->Args({8, 1})  // acceptance pair: compare against {8, 0}
    ->UseRealTime()  // count worker threads' time; CPU time only sees main
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --check mode: strict wall-clock overhead gate at jobs=8.
// ---------------------------------------------------------------------------

/// One timed engine run over the standard case mix; obs_on constructs the
/// registry and trace sink inside the timed region, exactly as the
/// BM_DifferentialEngineObs variants do.
double timed_run_ms(const hdiff::net::Chain& chain,
                    const std::vector<hdiff::core::TestCase>& cases,
                    bool obs_on) {
  hdiff::core::ExecutorStats stats;
  const auto start = std::chrono::steady_clock::now();
  hdiff::obs::Registry registry;
  hdiff::obs::TraceSink sink;
  hdiff::core::ExecutorConfig config;
  config.jobs = 8;
  if (obs_on) {
    config.obs.metrics = &registry;
    config.obs.trace = &sink;
  }
  hdiff::core::ParallelExecutor executor(config);
  benchmark::DoNotOptimize(executor.run(chain, cases, &stats));
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int run_overhead_check() {
  constexpr int kReps = 10;

  // The acceptance bar is <2% wall at jobs=8 on the reference 8-way-parallel
  // host, where instrumentation CPU spreads across cores and overlaps I/O.
  // On a host with fewer cores the same per-case instrumentation budget
  // serializes onto the critical path, inflating wall overhead by exactly
  // the parallelism shortfall — so scale the limit by 8 / cores (2% on >=8
  // cores, up to 16% on one) instead of silently gating a different budget.
  const unsigned hw = std::thread::hardware_concurrency();
  const double cores = static_cast<double>(hw == 0 ? 1 : std::min(hw, 8u));
  const double max_overhead = 0.02 * (8.0 / cores);

  const auto& cases = standard_case_mix();
  auto fleet = hdiff::impls::make_all_implementations();
  auto chain = hdiff::net::Chain::from_fleet(fleet);

  // Warm both paths (thread pool, page cache, allocator) outside the
  // measurement, then take the minimum of interleaved reps: the minimum is
  // the least-noise estimator of the true cost on a shared machine, and
  // interleaving keeps slow-machine drift from biasing one side.
  timed_run_ms(chain, cases, false);
  timed_run_ms(chain, cases, true);
  double min_off = 1e300, min_on = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const double off = timed_run_ms(chain, cases, false);
    const double on = timed_run_ms(chain, cases, true);
    std::printf("  rep %2d: off %7.2f ms  on %7.2f ms\n", rep, off, on);
    min_off = std::min(min_off, off);
    min_on = std::min(min_on, on);
  }

  const double overhead = (min_on - min_off) / min_off;
  const bool ok = overhead <= max_overhead;
  std::printf(
      "obs overhead at jobs=8: %s  (off %.2f ms, on %.2f ms, %+.2f%% over "
      "%d reps, limit +%.2f%% at %u core%s)\n",
      ok ? "PASS" : "FAIL", min_off, min_on, overhead * 100.0, kReps,
      max_overhead * 100.0, hw == 0 ? 1 : hw, (hw == 1) ? "" : "s");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) return run_overhead_check();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
