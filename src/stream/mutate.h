// Stream-shape mutation operators (the campaign's connection-level arms).
//
// Single-request mutation (core/mutation.h) perturbs bytes *within* one
// message; these operators perturb the *shape of the stream* — where one
// message ends relative to the next on a shared connection:
//
//   splice-boundary    skew message i's declared framing (Content-Length)
//                      so parsers that honor different framing sources
//                      split the stream at different offsets — the direct
//                      connection-level HRS primitive;
//   reorder-messages   swap adjacent messages (response-queue order probe);
//   duplicate-message  pipeline the same message twice (idempotent-boundary
//                      probe, doubles any leftover effect);
//   drop-message       remove one message (the stream minimizer's move, and
//                      a probe for state the dropped message was masking).
//
// Enumeration is exhaustive and deterministic — no RNG, no clocks — in a
// fixed kind-major, index-minor order, so a resumed or sharded campaign
// schedules byte-identical stream mutants (same discipline as
// core::mutate).  Kinds are deliberately NOT registered in
// core::all_mutation_kinds(): they apply to streams, not specs, and keep
// their own provenance namespace ("stream-mutant:<hash>:<kind>").
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "stream/model.h"

namespace hdiff::stream {

enum class StreamMutationKind {
  kSpliceBoundary,
  kReorderMessages,
  kDuplicateMessage,
  kDropMessage,
};

std::string_view to_string(StreamMutationKind kind);

/// All kinds, in enumeration (= scheduling) order.
const std::vector<StreamMutationKind>& all_stream_mutation_kinds();

/// What one operator application did, for provenance and descriptions.
struct AppliedStreamMutation {
  StreamMutationKind kind = StreamMutationKind::kSpliceBoundary;
  std::size_t index = 0;  ///< message index the operator touched
  std::string detail;     ///< operator-specific note ("cl+4", "swap 0<->1")

  std::string describe() const;
};

/// One mutated stream plus how it was derived.
struct StreamMutant {
  RequestStream stream;
  AppliedStreamMutation applied;
};

/// Every single-application mutant of `base`, kind-major then index-minor.
/// Deterministic: two calls with equal inputs return equal outputs.
std::vector<StreamMutant> stream_mutants(const RequestStream& base);

}  // namespace hdiff::stream
