// The request stream as a first-class, persistable test unit.
//
// A `RequestStream` is an ordered sequence of buildable messages destined
// for one persistent connection.  The *wire* form (what the chain observes)
// is the plain concatenation of the messages' bytes; the *serialized* form
// (what the campaign corpus stores) keeps the per-message structure so
// stream mutators can splice, reorder, duplicate and drop messages in later
// rounds.
//
// Serialization discipline matches the shard-result files: a versioned
// header carrying the message count, one line per message, an explicit end
// marker, and a required trailing newline.  `deserialize_stream` verifies
// all three, so *every proper prefix of a valid serialization is rejected*
// — a torn corpus file can never load as a shorter-but-valid stream.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "http/serialize.h"

namespace hdiff::stream {

/// An ordered message sequence over one persistent connection.
struct RequestStream {
  std::vector<http::RequestSpec> messages;

  /// The connection byte stream: plain concatenation.
  std::string to_wire() const;
  /// Per-message wire bytes, in order (what observe_stream consumes).
  std::vector<std::string> wires() const;

  friend bool operator==(const RequestStream&, const RequestStream&) = default;
};

/// Canonical text form ("hdiff-stream-v1 <count>" header, one
/// "msg=<hex(serialize_spec)>" line per message, "end-stream" marker,
/// trailing newline).  The stream corpus file format and the
/// content-address preimage.
std::string serialize_stream(const RequestStream& stream);

/// Strict parse of `serialize_stream` output: wrong header, wrong message
/// count, missing end marker, missing trailing newline, or trailing bytes
/// all fail — in particular every proper prefix of a valid serialization.
bool deserialize_stream(std::string_view text, RequestStream* out);

/// True when `text` looks like a serialized stream (used to tell stream
/// retry entries from single-request ones in the shared retry queue).
bool is_stream_text(std::string_view text);

/// Convenience: build a stream from ready-made specs.
RequestStream make_stream(std::vector<http::RequestSpec> messages);

}  // namespace hdiff::stream
