#include "stream/detect.h"

#include <algorithm>

#include "http/serialize.h"
#include "net/poison.h"

namespace hdiff::stream {
namespace {

void sort_unique(std::vector<std::string>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

/// First request index at which two boundary vectors disagree (or the
/// length of the shorter one when it is a strict prefix of the longer).
std::size_t first_divergent_request(const std::vector<std::size_t>& a,
                                    const std::vector<std::size_t>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return i;
  }
  return n;
}

/// The probe request a poisoned connection would answer wrongly — a
/// deliberately boring GET so any displacement is attributable to the
/// stranded bytes, never to the victim's own framing.
const std::string& victim_wire() {
  static const std::string wire =
      http::make_get("victim.example", "/victim").to_wire();
  return wire;
}

std::string preview(std::string_view bytes, std::size_t limit = 24) {
  std::string out;
  for (char c : bytes.substr(0, limit)) {
    if (c == '\r') {
      out += "\\r";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c < 0x20 || c >= 0x7f) {
      out += '.';
    } else {
      out += c;
    }
  }
  if (bytes.size() > limit) out += "...";
  return out;
}

}  // namespace

const impls::HttpImplementation* StreamDetector::backend_named(
    std::string_view name) const {
  for (const impls::HttpImplementation* b : chain_->backends()) {
    if (b->name() == name) return b;
  }
  return nullptr;
}

StreamDetectionResult StreamDetector::evaluate(
    const net::StreamObservation& obs, const obs::StreamObs* track) const {
  StreamDetectionResult result;
  if (obs.faulted()) return result;

  // --- stream-boundary-desync + stream-leftover-divergence ------------------
  // Pairwise over direct connections that both survived the whole stream.
  // std::map iteration gives lexicographic impl order, so pair components
  // come out canonical without extra sorting work.
  StreamFinding desync;
  desync.detector = std::string(kBoundaryDesync);
  StreamFinding residue;
  residue.detector = std::string(kLeftoverDivergence);
  for (auto a = obs.direct.begin(); a != obs.direct.end(); ++a) {
    if (a->second.early_close) continue;
    for (auto b = std::next(a); b != obs.direct.end(); ++b) {
      if (b->second.early_close) continue;
      const net::ConnectionTrace& ta = a->second;
      const net::ConnectionTrace& tb = b->second;
      if (ta.boundaries != tb.boundaries) {
        const std::size_t k =
            first_divergent_request(ta.boundaries, tb.boundaries);
        desync.components.push_back(a->first + "|" + b->first + "@req" +
                                    std::to_string(k));
        if (!desync.detail.empty()) desync.detail += "; ";
        desync.detail += a->first + " answers " +
                         std::to_string(ta.responses()) + ", " + b->first +
                         " answers " + std::to_string(tb.responses()) +
                         " requests from the same bytes";
      }
      if (ta.leftover != tb.leftover) {
        residue.components.push_back(a->first + "|" + b->first);
        if (!residue.detail.empty()) residue.detail += "; ";
        residue.detail += a->first + " buffers '" + preview(ta.leftover) +
                          "' vs " + b->first + " '" + preview(tb.leftover) +
                          "'";
      }
    }
  }

  // --- stream-queue-poison --------------------------------------------------
  // A proxy expects exactly one response per forwarded request.  On each
  // relayed connection, compare that expectation against what the back-end
  // automaton actually produced, and classify any stranded bytes with the
  // shared queue-shift oracle.
  StreamFinding poison;
  poison.detector = std::string(kQueuePoison);
  for (const auto& [key, trace] : obs.relayed) {
    const std::size_t arrow = key.find("->");
    if (arrow == std::string::npos) continue;
    const std::string proxy = key.substr(0, arrow);
    const std::string backend = key.substr(arrow + 2);
    auto pt = obs.proxies.find(proxy);
    if (pt == obs.proxies.end()) continue;
    const std::size_t forwarded = pt->second.forwarded.size();

    if (!trace.leftover.empty()) {
      const impls::HttpImplementation* back = backend_named(backend);
      if (!back) continue;
      const net::QueueShift shift =
          net::classify_queue_shift(*back, trace.leftover, victim_wire());
      if (shift.displaced) {
        poison.components.push_back(key + "@hijack");
        if (!poison.detail.empty()) poison.detail += "; ";
        poison.detail += key + ": stranded bytes answer the victim with '" +
                         shift.answered_for + "'";
      } else if (shift.desync) {
        poison.components.push_back(key + "@desync");
        if (!poison.detail.empty()) poison.detail += "; ";
        poison.detail += key + ": stranded bytes poison the next response (" +
                         std::to_string(shift.next_status) + ")";
      }
    } else if (!trace.early_close && trace.responses() != forwarded) {
      // More responses than forwarded requests: the remainder of one
      // forwarded message already parsed as an extra request, so every
      // later response answers the wrong client.  (Fewer responses without
      // an early close cannot happen with an empty leftover.)
      poison.components.push_back(key + "@queue-skew");
      if (!poison.detail.empty()) poison.detail += "; ";
      poison.detail += key + ": " + std::to_string(forwarded) +
                       " forwarded but " + std::to_string(trace.responses()) +
                       " answered";
    }
  }

  for (StreamFinding* f : {&desync, &poison, &residue}) {
    if (f->components.empty()) continue;
    sort_unique(f->components);
    result.findings.push_back(std::move(*f));
  }

  if (track) {
    for (const StreamFinding& f : result.findings) {
      if (f.detector == kBoundaryDesync && track->boundary_desync) {
        track->boundary_desync->add();
      } else if (f.detector == kQueuePoison && track->queue_poison) {
        track->queue_poison->add();
      } else if (f.detector == kLeftoverDivergence &&
                 track->leftover_divergence) {
        track->leftover_divergence->add();
      }
    }
  }
  return result;
}

}  // namespace hdiff::stream
