#include "stream/seeds.h"

#include "http/serialize.h"

namespace hdiff::stream {
namespace {

constexpr std::string_view kHost = "origin.example";

RequestStream fat_get() {
  // The hidden payload is a complete request: whoever strands it has queued
  // a response the proxy never asked for.
  http::RequestSpec fat = http::make_get(kHost, "/");
  fat.body = "GET /hidden HTTP/1.1\r\nHost: origin.example\r\n\r\n";
  fat.set("Content-Length", std::to_string(fat.body.size()));
  return make_stream({std::move(fat), http::make_get(kHost, "/after")});
}

RequestStream post_pipeline() {
  return make_stream({http::make_post(kHost, "/upload", "payload-bytes"),
                      http::make_get(kHost, "/first"),
                      http::make_get(kHost, "/second")});
}

RequestStream te_cl_pipeline() {
  http::RequestSpec both = http::make_chunked_post(kHost, "/submit", "data");
  // Keep the chunked framing but add a conflicting Content-Length claim
  // covering only part of the chunked body.
  both.add("Content-Length", "4");
  return make_stream({std::move(both), http::make_get(kHost, "/after")});
}

}  // namespace

const std::vector<StreamSeed>& default_stream_seeds() {
  static const std::vector<StreamSeed> seeds = {
      {"fat-get", fat_get()},
      {"post-pipeline", post_pipeline()},
      {"te-cl-pipeline", te_cl_pipeline()},
  };
  return seeds;
}

}  // namespace hdiff::stream
