// Built-in stream seeds: the campaign's round-1 connection-level corpus.
//
// Each seed is a small, well-formed message sequence chosen so its mutants
// explore a known connection-level gap class:
//
//   fat-get           a GET carrying a Content-Length body that is itself a
//                     complete request.  Implementations that ignore a GET's
//                     body (FatGet::kIgnoreBody) leave those bytes in the
//                     connection buffer — the next "request" — while
//                     body-parsing implementations consume them: an
//                     accept/accept boundary desync no single-request
//                     observation can represent.
//   post-pipeline     a Content-Length POST pipelined before two GETs; the
//                     splice mutants skew the declared length so the
//                     boundary bites into the next message.
//   te-cl-pipeline    a chunked POST that also declares a Content-Length,
//                     followed by a GET — the classic CL.TE arbitration
//                     probe, streamed.
//
// Seeds are pure values: two calls return equal streams, so round-1
// scheduling is byte-identical across shards and resumes.
#pragma once

#include <string>
#include <vector>

#include "stream/model.h"

namespace hdiff::stream {

struct StreamSeed {
  std::string name;  ///< provenance tag ("stream-seed:<name>")
  RequestStream stream;
};

const std::vector<StreamSeed>& default_stream_seeds();

}  // namespace hdiff::stream
