#include "stream/model.h"

#include <utility>

#include "core/specwire.h"

namespace hdiff::stream {

namespace {
constexpr std::string_view kHeader = "hdiff-stream-v1 ";
constexpr std::string_view kEnd = "end-stream";
}  // namespace

std::string RequestStream::to_wire() const {
  std::string out;
  for (const auto& m : messages) out += m.to_wire();
  return out;
}

std::vector<std::string> RequestStream::wires() const {
  std::vector<std::string> out;
  out.reserve(messages.size());
  for (const auto& m : messages) out.push_back(m.to_wire());
  return out;
}

std::string serialize_stream(const RequestStream& stream) {
  std::string out(kHeader);
  out += std::to_string(stream.messages.size());
  out += "\n";
  for (const auto& m : stream.messages) {
    out += "msg=" + core::field_enc(core::serialize_spec(m)) + "\n";
  }
  out += kEnd;
  out += "\n";
  return out;
}

bool deserialize_stream(std::string_view text, RequestStream* out) {
  *out = RequestStream{};
  // Manual line splitting (not getline) so a missing trailing newline — the
  // signature of a truncated file — is detectable: the final byte of a
  // valid serialization is always '\n'.
  if (text.empty() || text.back() != '\n') return false;
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      lines.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (lines.size() < 2) return false;
  const std::string_view header = lines.front();
  if (header.substr(0, kHeader.size()) != kHeader) return false;
  const std::string_view count_text = header.substr(kHeader.size());
  if (count_text.empty()) return false;
  std::size_t count = 0;
  for (char c : count_text) {
    if (c < '0' || c > '9') return false;
    count = count * 10 + static_cast<std::size_t>(c - '0');
  }
  // Exactly: header, `count` msg lines, end marker.  Fewer lines is a
  // prefix; more is trailing garbage; both fail.
  if (lines.size() != count + 2) return false;
  if (lines.back() != kEnd) return false;
  out->messages.reserve(count);
  for (std::size_t i = 1; i <= count; ++i) {
    const std::string_view line = lines[i];
    if (line.substr(0, 4) != "msg=") return false;
    std::string spec_text;
    if (!core::field_dec(line.substr(4), &spec_text)) return false;
    http::RequestSpec spec;
    if (!core::deserialize_spec(spec_text, &spec)) return false;
    out->messages.push_back(std::move(spec));
  }
  return true;
}

bool is_stream_text(std::string_view text) {
  return text.substr(0, kHeader.size()) == kHeader;
}

RequestStream make_stream(std::vector<http::RequestSpec> messages) {
  RequestStream s;
  s.messages = std::move(messages);
  return s;
}

}  // namespace hdiff::stream
