// Connection-level verdict classes over stream observations.
//
// Single-request detection (core/detect.h) compares verdicts about ONE
// message.  These detectors compare *connection automata*: how a sequence of
// messages on a persistent connection was split, answered and left behind.
// Three classes ship, each naming a divergence that no single-request
// observation can represent:
//
//   stream-boundary-desync     two back-ends both keep the connection alive
//                              yet split the same byte stream at different
//                              request boundaries — they answer different
//                              request sequences from identical input.
//                              Pairs where either side tore the connection
//                              down are excluded: accept-vs-reject is
//                              visible in single-request mode already.
//
//   stream-queue-poison        on a proxy->backend connection the response
//                              queue no longer matches the forwarded
//                              requests: the back-end answered more requests
//                              than the proxy forwarded, or ended with
//                              stranded bytes that would prefix a victim's
//                              next request.  Stranded bytes are classified
//                              with net::classify_queue_shift — the single
//                              response-queue-poisoning oracle shared with
//                              net::demonstrate_smuggling — into "hijack"
//                              (victim answered for the attacker's target)
//                              vs "desync" (connection poisoned into errors).
//
//   stream-leftover-divergence two live back-end connections end the stream
//                              holding different buffered bytes — they
//                              disagree about the *next* request's prefix,
//                              the stateful primitive behind request
//                              smuggling chains.
//
// Results are deterministic: components are sorted and deduplicated, pair
// names are ordered lexicographically, and details carry no uuids — so a
// finding maps to a stable campaign fingerprint.
#pragma once

#include <string>
#include <vector>

#include "net/chain.h"
#include "net/stream.h"
#include "obs/obs.h"

namespace hdiff::stream {

/// One connection-level divergence, shaped for campaign fingerprinting:
/// detector class + normalized component vector (+ free-text detail that is
/// NOT part of the fingerprint).
struct StreamFinding {
  std::string detector;
  std::vector<std::string> components;  ///< sorted, unique, uuid-free
  std::string detail;
};

struct StreamDetectionResult {
  std::vector<StreamFinding> findings;

  bool any() const noexcept { return !findings.empty(); }
};

/// Detector names (also the finding fingerprints' detector class).
inline constexpr std::string_view kBoundaryDesync = "stream-boundary-desync";
inline constexpr std::string_view kQueuePoison = "stream-queue-poison";
inline constexpr std::string_view kLeftoverDivergence =
    "stream-leftover-divergence";

/// Evaluates stream observations against all three connection-level models.
/// Holds a non-owning reference to the chain to resolve back-end models by
/// name for queue-shift classification.  Stateless and const: safe to share
/// across concurrent evaluations.
class StreamDetector {
 public:
  explicit StreamDetector(const net::Chain& chain) : chain_(&chain) {}

  /// Evaluate one observed stream.  `track`, when provided, bumps the
  /// per-class hdiff_stream_*_total counters; results are identical with or
  /// without it.  Faulted observations yield an empty result.
  StreamDetectionResult evaluate(const net::StreamObservation& obs,
                                 const obs::StreamObs* track = nullptr) const;

 private:
  const impls::HttpImplementation* backend_named(std::string_view name) const;

  const net::Chain* chain_;
};

}  // namespace hdiff::stream
