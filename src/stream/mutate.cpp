#include "stream/mutate.h"

#include <utility>

namespace hdiff::stream {

std::string_view to_string(StreamMutationKind kind) {
  switch (kind) {
    case StreamMutationKind::kSpliceBoundary:
      return "splice-boundary";
    case StreamMutationKind::kReorderMessages:
      return "reorder-messages";
    case StreamMutationKind::kDuplicateMessage:
      return "duplicate-message";
    case StreamMutationKind::kDropMessage:
      return "drop-message";
  }
  return "unknown";
}

const std::vector<StreamMutationKind>& all_stream_mutation_kinds() {
  static const std::vector<StreamMutationKind> kinds = {
      StreamMutationKind::kSpliceBoundary,
      StreamMutationKind::kReorderMessages,
      StreamMutationKind::kDuplicateMessage,
      StreamMutationKind::kDropMessage,
  };
  return kinds;
}

std::string AppliedStreamMutation::describe() const {
  std::string out(to_string(kind));
  out += " @msg" + std::to_string(index);
  if (!detail.empty()) out += " (" + detail + ")";
  return out;
}

namespace {

void add(std::vector<StreamMutant>& out, RequestStream stream,
         StreamMutationKind kind, std::size_t index, std::string detail) {
  StreamMutant m;
  m.stream = std::move(stream);
  m.applied.kind = kind;
  m.applied.index = index;
  m.applied.detail = std::move(detail);
  out.push_back(std::move(m));
}

/// Splice variants for message `i`: skew its declared Content-Length so the
/// framing bites into (or releases bytes to) the following message.  Only
/// messages that actually carry a Content-Length are spliceable — the skew
/// must be a *plausible* framing claim, not a syntax error, so every
/// implementation still faces the same bytes and only their framing
/// decisions (CL-vs-TE arbitration, fat-GET handling, lenient CL parsing)
/// can disagree.
void splice_variants(std::vector<StreamMutant>& out, const RequestStream& base,
                     std::size_t i) {
  const http::RequestSpec& msg = base.messages[i];
  const auto cl = msg.get("Content-Length");
  if (!cl) return;
  const std::size_t body = msg.body.size();
  // Deterministic skews: +1 and +4 bite into the next message's bytes
  // (under CL framing the boundary moves right; under TE-wins or
  // ignore-body it does not); -1 strands the body's last byte as the next
  // request's first.
  const long deltas[] = {+1, +4, -1};
  for (long delta : deltas) {
    if (delta < 0 && body == 0) continue;
    const std::size_t claimed =
        delta < 0 ? body - static_cast<std::size_t>(-delta)
                  : body + static_cast<std::size_t>(delta);
    RequestStream next = base;
    next.messages[i].set("Content-Length", std::to_string(claimed));
    add(out, std::move(next), StreamMutationKind::kSpliceBoundary, i,
        (delta < 0 ? "cl" : "cl+") + std::to_string(delta));
  }
}

}  // namespace

std::vector<StreamMutant> stream_mutants(const RequestStream& base) {
  std::vector<StreamMutant> out;
  const std::size_t n = base.messages.size();
  if (n == 0) return out;

  // splice-boundary: every CL-bearing message with a successor to bite.
  for (std::size_t i = 0; i + 1 < n; ++i) splice_variants(out, base, i);

  // reorder-messages: swap each adjacent pair that actually differs.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (base.messages[i] == base.messages[i + 1]) continue;
    RequestStream next = base;
    std::swap(next.messages[i], next.messages[i + 1]);
    add(out, std::move(next), StreamMutationKind::kReorderMessages, i,
        "swap " + std::to_string(i) + "<->" + std::to_string(i + 1));
  }

  // duplicate-message: pipeline each message twice.
  for (std::size_t i = 0; i < n; ++i) {
    RequestStream next = base;
    next.messages.insert(next.messages.begin() + static_cast<std::ptrdiff_t>(i),
                         base.messages[i]);
    add(out, std::move(next), StreamMutationKind::kDuplicateMessage, i, "");
  }

  // drop-message: remove each message (streams never shrink to empty).
  if (n > 1) {
    for (std::size_t i = 0; i < n; ++i) {
      RequestStream next = base;
      next.messages.erase(next.messages.begin() +
                          static_cast<std::ptrdiff_t>(i));
      add(out, std::move(next), StreamMutationKind::kDropMessage, i, "");
    }
  }
  return out;
}

}  // namespace hdiff::stream
