#include "obs/trace.h"

#include <algorithm>
#include <atomic>

#include "report/json.h"

namespace hdiff::obs {

namespace {

/// Sink identity for the per-thread buffer cache.  Generations (never
/// reused) make the cache safe against a new sink landing at a dead sink's
/// address.
std::atomic<std::uint64_t> g_sink_generation{1};

struct LocalRef {
  const void* sink = nullptr;
  std::uint64_t generation = 0;
  void* buffer = nullptr;
};
thread_local LocalRef t_local_ref;

}  // namespace

TraceSink::TraceSink(const Clock* clock)
    : clock_(clock ? clock : &steady_clock_instance()),
      generation_(g_sink_generation.fetch_add(1, std::memory_order_relaxed)) {}

TraceSink::Buffer& TraceSink::local_buffer() {
  if (t_local_ref.sink == this && t_local_ref.generation == generation_) {
    return *static_cast<Buffer*>(t_local_ref.buffer);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const std::thread::id self = std::this_thread::get_id();
  for (const auto& buf : buffers_) {
    if (buf->owner == self) {  // this thread used the sink before a switch
      t_local_ref = {this, generation_, buf.get()};
      return *buf;
    }
  }
  auto buf = std::make_unique<Buffer>();
  buf->owner = self;
  buf->tid = static_cast<std::uint32_t>(buffers_.size());
  buf->events.reserve(256);
  buffers_.push_back(std::move(buf));
  Buffer* raw = buffers_.back().get();
  t_local_ref = {this, generation_, raw};
  return *raw;
}

void TraceSink::complete(std::string name, std::string_view cat,
                         std::uint64_t ts, std::uint64_t dur,
                         std::string arg_key, std::string arg_value) {
  Buffer& buf = local_buffer();
  buf.events.push_back(Event{'X', buf.tid, ts, dur, std::move(name),
                             std::string(cat), std::move(arg_key),
                             std::move(arg_value)});
}

void TraceSink::instant(std::string name, std::string_view cat,
                        std::string arg_key, std::string arg_value) {
  Buffer& buf = local_buffer();
  buf.events.push_back(Event{'i', buf.tid, now(), 0, std::move(name),
                             std::string(cat), std::move(arg_key),
                             std::move(arg_value)});
}

std::size_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& buf : buffers_) total += buf->events.size();
  return total;
}

std::vector<TraceEvent> TraceSink::export_events() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buf : buffers_) {
      events.insert(events.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.tid < b.tid;
                   });
  return events;
}

void TraceSink::import_process(std::uint32_t pid, std::string process_name,
                               std::vector<TraceEvent> events) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (ForeignTrack& track : foreign_) {
    if (track.pid == pid) {
      track.events.insert(track.events.end(),
                          std::make_move_iterator(events.begin()),
                          std::make_move_iterator(events.end()));
      if (track.name.empty()) track.name = std::move(process_name);
      return;
    }
  }
  foreign_.push_back(
      ForeignTrack{pid, std::move(process_name), std::move(events)});
}

void TraceSink::set_process_name(std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  process_name_ = std::move(name);
}

std::string TraceSink::render_chrome_json() const {
  struct Row {
    const Event* event;
    std::uint32_t pid;
  };
  std::vector<Row> events;
  std::vector<std::pair<std::uint32_t, std::string>> tracks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buf : buffers_) {
      for (const Event& e : buf->events) events.push_back({&e, kLocalPid});
    }
    for (const ForeignTrack& track : foreign_) {
      for (const Event& e : track.events) events.push_back({&e, track.pid});
      tracks.emplace_back(track.pid,
                          track.name.empty() ? "worker" : track.name);
    }
    if (!foreign_.empty() || !process_name_.empty()) {
      tracks.emplace_back(
          kLocalPid, process_name_.empty() ? "supervisor" : process_name_);
    }
  }
  std::stable_sort(events.begin(), events.end(), [](const Row& a,
                                                    const Row& b) {
    if (a.event->ts != b.event->ts) return a.event->ts < b.event->ts;
    if (a.pid != b.pid) return a.pid < b.pid;
    return a.event->tid < b.event->tid;
  });
  std::sort(tracks.begin(), tracks.end());

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Metadata events label each process lane; emitted first so viewers name
  // the tracks before data arrives.
  for (const auto& [pid, name] : tracks) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":";
    out += report::json_string(name);
    out += "}}";
  }
  for (const Row& row : events) {
    const Event* e = row.event;
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":";
    out += report::json_string(e->name);
    out += ",\"cat\":";
    out += report::json_string(e->cat.empty() ? "hdiff" : e->cat);
    out += ",\"ph\":\"";
    out += e->ph;
    out += "\",\"ts\":" + std::to_string(e->ts);
    if (e->ph == 'X') {
      out += ",\"dur\":" + std::to_string(e->dur);
    } else {
      out += ",\"s\":\"t\"";  // thread-scoped instant
    }
    out += ",\"pid\":" + std::to_string(row.pid) +
           ",\"tid\":" + std::to_string(e->tid);
    if (!e->arg_key.empty()) {
      out += ",\"args\":{";
      out += report::json_string(e->arg_key);
      out += ':';
      out += report::json_string(e->arg_value);
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

}  // namespace hdiff::obs
