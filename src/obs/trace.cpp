#include "obs/trace.h"

#include <algorithm>
#include <atomic>

#include "report/json.h"

namespace hdiff::obs {

namespace {

/// Sink identity for the per-thread buffer cache.  Generations (never
/// reused) make the cache safe against a new sink landing at a dead sink's
/// address.
std::atomic<std::uint64_t> g_sink_generation{1};

struct LocalRef {
  const void* sink = nullptr;
  std::uint64_t generation = 0;
  void* buffer = nullptr;
};
thread_local LocalRef t_local_ref;

}  // namespace

TraceSink::TraceSink(const Clock* clock)
    : clock_(clock ? clock : &steady_clock_instance()),
      generation_(g_sink_generation.fetch_add(1, std::memory_order_relaxed)) {}

TraceSink::Buffer& TraceSink::local_buffer() {
  if (t_local_ref.sink == this && t_local_ref.generation == generation_) {
    return *static_cast<Buffer*>(t_local_ref.buffer);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const std::thread::id self = std::this_thread::get_id();
  for (const auto& buf : buffers_) {
    if (buf->owner == self) {  // this thread used the sink before a switch
      t_local_ref = {this, generation_, buf.get()};
      return *buf;
    }
  }
  auto buf = std::make_unique<Buffer>();
  buf->owner = self;
  buf->tid = static_cast<std::uint32_t>(buffers_.size());
  buf->events.reserve(256);
  buffers_.push_back(std::move(buf));
  Buffer* raw = buffers_.back().get();
  t_local_ref = {this, generation_, raw};
  return *raw;
}

void TraceSink::complete(std::string name, std::string_view cat,
                         std::uint64_t ts, std::uint64_t dur,
                         std::string arg_key, std::string arg_value) {
  Buffer& buf = local_buffer();
  buf.events.push_back(Event{'X', buf.tid, ts, dur, std::move(name),
                             std::string(cat), std::move(arg_key),
                             std::move(arg_value)});
}

void TraceSink::instant(std::string name, std::string_view cat,
                        std::string arg_key, std::string arg_value) {
  Buffer& buf = local_buffer();
  buf.events.push_back(Event{'i', buf.tid, now(), 0, std::move(name),
                             std::string(cat), std::move(arg_key),
                             std::move(arg_value)});
}

std::size_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& buf : buffers_) total += buf->events.size();
  return total;
}

std::string TraceSink::render_chrome_json() const {
  std::vector<const Event*> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buf : buffers_) {
      for (const Event& e : buf->events) events.push_back(&e);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event* a, const Event* b) {
                     if (a->ts != b->ts) return a->ts < b->ts;
                     return a->tid < b->tid;
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Event* e : events) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":";
    out += report::json_string(e->name);
    out += ",\"cat\":";
    out += report::json_string(e->cat.empty() ? "hdiff" : e->cat);
    out += ",\"ph\":\"";
    out += e->ph;
    out += "\",\"ts\":" + std::to_string(e->ts);
    if (e->ph == 'X') {
      out += ",\"dur\":" + std::to_string(e->dur);
    } else {
      out += ",\"s\":\"t\"";  // thread-scoped instant
    }
    out += ",\"pid\":1,\"tid\":" + std::to_string(e->tid);
    if (!e->arg_key.empty()) {
      out += ",\"args\":{";
      out += report::json_string(e->arg_key);
      out += ':';
      out += report::json_string(e->arg_value);
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

}  // namespace hdiff::obs
