// Low-overhead metrics registry: named counters, gauges, and fixed-bucket
// latency histograms with quantile estimation.
//
// Hot-path instruments (Counter::add, Histogram::observe) are sharded over a
// fixed set of cache-line-padded slots; a thread picks its slot once
// (thread-local) and then increments with a relaxed atomic, so executor
// workers at `--jobs 8` never contend on a shared counter line.  Reads merge
// the slots, so `value()` is exact once the writing threads are quiescent
// and monotonically approximate while they are running — the same contract
// as the EchoServer counters.
//
// The registry hands out stable references: entries are heap-allocated and
// never erased, so call sites hoist `&registry.counter("x")` out of loops
// and skip the name lookup on the hot path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hdiff::obs {

/// Slots for sharded hot-path instruments.  More than the executor's
/// practical worker count; collisions only cost contention, never accuracy.
inline constexpr std::size_t kMetricShards = 16;

/// This thread's shard slot (assigned round-robin on first use).
std::size_t shard_slot() noexcept;

/// Monotonic counter, per-thread-sharded.  add() is wait-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    slots_[shard_slot()].v.fetch_add(n, std::memory_order_relaxed);
  }
  /// Merged total across shards.
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, kMetricShards> slots_{};
};

/// Last-write-wins scalar (worker counts, stage timings, config echoes).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) noexcept {
    v_.fetch_add(v, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram over unsigned values (microseconds by
/// convention), per-thread-sharded like Counter.  Bucket `i` counts values
/// `v <= bounds[i]` (Prometheus `le` semantics); one extra overflow bucket
/// catches everything beyond the last bound.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t value) noexcept;

  std::uint64_t count() const noexcept;
  std::uint64_t sum() const noexcept;

  /// Merged per-bucket counts, `bounds().size() + 1` entries (overflow
  /// bucket last).
  std::vector<std::uint64_t> bucket_counts() const;

  /// Rank-interpolated quantile estimate, `q` clamped to [0, 1].  An empty
  /// histogram reports 0; values in the overflow bucket clamp the estimate
  /// to the last finite bound (the histogram cannot see past it).
  double quantile(double q) const;

  const std::vector<std::uint64_t>& bounds() const noexcept { return bounds_; }

  /// Default latency bucket ladder: 1us .. 1s in a 1-2-5 progression.
  static std::vector<std::uint64_t> latency_buckets_us();

  /// Merge a foreign histogram's per-bucket counts into this one (used when
  /// absorbing a worker snapshot).  Requires identical bounds and
  /// `buckets.size() == bounds.size() + 1`; returns false (and absorbs
  /// nothing) on a shape mismatch.
  bool absorb(const std::vector<std::uint64_t>& bounds,
              const std::vector<std::uint64_t>& buckets, std::uint64_t sum,
              std::uint64_t count) noexcept;

 private:
  std::size_t bucket_index(std::uint64_t value) const noexcept;

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> count{0};
  };

  std::vector<std::uint64_t> bounds_;
  std::size_t stride_;  ///< buckets per shard row == bounds_.size() + 1
  /// Shard-major bucket cells: cell (s, b) at `s * stride_ + b`.
  std::vector<std::atomic<std::uint64_t>> cells_;
  std::array<Slot, kMetricShards> totals_{};
};

struct RegistryView;

/// Name -> instrument table.  Lookup takes a mutex (hoist references out of
/// hot loops); returned references stay valid for the registry's lifetime.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First registration fixes the bucket bounds; later calls with the same
  /// name return the existing histogram and ignore `bounds`.
  Histogram& histogram(std::string_view name,
                       std::vector<std::uint64_t> bounds = {});

  /// Point-in-time copy for reporting, sorted by name.  `bounds`/`buckets`
  /// carry the full bucket detail (`buckets.size() == bounds.size() + 1`,
  /// overflow last) so a snapshot can cross a process boundary and be
  /// absorbed losslessly; the quantile fields are derived presentation and
  /// are not part of the wire contract.
  struct HistogramRow {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    double p50 = 0, p90 = 0, p99 = 0;
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> buckets;
  };
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<HistogramRow> histograms;
  };
  Snapshot snapshot() const;

  /// Merge a (typically remote) snapshot into this registry: counters add,
  /// gauges last-write-win, histograms merge bucket-wise.  Instruments are
  /// created on first sight; a histogram whose bounds disagree with an
  /// existing registration is dropped.  Returns the number of dropped rows
  /// (0 in a healthy fleet, where every process runs the same ladders).
  std::size_t absorb(const Snapshot& snap);

  /// Attach Prometheus HELP text to a metric family (keyed by base name,
  /// without any `{...}` label suffix).  First registration wins.
  void help(std::string_view name, std::string_view text);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> help_;

  friend std::string render_prometheus(const std::vector<RegistryView>& views);
};

/// One origin in a merged exposition: a registry plus the label set stamped
/// onto every series it contributes (e.g. `process="worker",shard="3"`).
/// An empty label string contributes unlabeled (total) series.
struct RegistryView {
  const Registry* registry = nullptr;
  std::string labels;
};

/// Prometheus text exposition (format 0.0.4) of every registered
/// instrument, sorted by name; histograms render cumulative `le` buckets
/// plus `_sum`/`_count` series.
std::string render_prometheus(const Registry& registry);

/// Multi-origin exposition: series from all views merged under one HELP and
/// one TYPE line per metric family.  Metric names may embed their own label
/// set (`name{k="v"}`); family grouping and TYPE lines use the base name,
/// and embedded labels are merged with the view's labels (view labels
/// first) on each sample line.
std::string render_prometheus(const std::vector<RegistryView>& views);

/// Escape a label value per the exposition format (`\\`, `\"`, `\n`).
std::string prom_escape_label_value(std::string_view value);

/// Render one `key="value"` label pair with the value escaped.
std::string prom_label(std::string_view key, std::string_view value);

/// Compose `base{labels}` (or just `base` when `labels` is empty) for
/// registering per-label-set instruments such as
/// `hdiff_serve_control_requests_total{target="/status",status="200"}`.
std::string labeled_name(std::string_view base, std::string_view labels);

}  // namespace hdiff::obs
