// Low-overhead metrics registry: named counters, gauges, and fixed-bucket
// latency histograms with quantile estimation.
//
// Hot-path instruments (Counter::add, Histogram::observe) are sharded over a
// fixed set of cache-line-padded slots; a thread picks its slot once
// (thread-local) and then increments with a relaxed atomic, so executor
// workers at `--jobs 8` never contend on a shared counter line.  Reads merge
// the slots, so `value()` is exact once the writing threads are quiescent
// and monotonically approximate while they are running — the same contract
// as the EchoServer counters.
//
// The registry hands out stable references: entries are heap-allocated and
// never erased, so call sites hoist `&registry.counter("x")` out of loops
// and skip the name lookup on the hot path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hdiff::obs {

/// Slots for sharded hot-path instruments.  More than the executor's
/// practical worker count; collisions only cost contention, never accuracy.
inline constexpr std::size_t kMetricShards = 16;

/// This thread's shard slot (assigned round-robin on first use).
std::size_t shard_slot() noexcept;

/// Monotonic counter, per-thread-sharded.  add() is wait-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    slots_[shard_slot()].v.fetch_add(n, std::memory_order_relaxed);
  }
  /// Merged total across shards.
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, kMetricShards> slots_{};
};

/// Last-write-wins scalar (worker counts, stage timings, config echoes).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) noexcept {
    v_.fetch_add(v, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram over unsigned values (microseconds by
/// convention), per-thread-sharded like Counter.  Bucket `i` counts values
/// `v <= bounds[i]` (Prometheus `le` semantics); one extra overflow bucket
/// catches everything beyond the last bound.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t value) noexcept;

  std::uint64_t count() const noexcept;
  std::uint64_t sum() const noexcept;

  /// Merged per-bucket counts, `bounds().size() + 1` entries (overflow
  /// bucket last).
  std::vector<std::uint64_t> bucket_counts() const;

  /// Rank-interpolated quantile estimate, `q` clamped to [0, 1].  An empty
  /// histogram reports 0; values in the overflow bucket clamp the estimate
  /// to the last finite bound (the histogram cannot see past it).
  double quantile(double q) const;

  const std::vector<std::uint64_t>& bounds() const noexcept { return bounds_; }

  /// Default latency bucket ladder: 1us .. 1s in a 1-2-5 progression.
  static std::vector<std::uint64_t> latency_buckets_us();

 private:
  std::size_t bucket_index(std::uint64_t value) const noexcept;

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> count{0};
  };

  std::vector<std::uint64_t> bounds_;
  std::size_t stride_;  ///< buckets per shard row == bounds_.size() + 1
  /// Shard-major bucket cells: cell (s, b) at `s * stride_ + b`.
  std::vector<std::atomic<std::uint64_t>> cells_;
  std::array<Slot, kMetricShards> totals_{};
};

/// Name -> instrument table.  Lookup takes a mutex (hoist references out of
/// hot loops); returned references stay valid for the registry's lifetime.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First registration fixes the bucket bounds; later calls with the same
  /// name return the existing histogram and ignore `bounds`.
  Histogram& histogram(std::string_view name,
                       std::vector<std::uint64_t> bounds = {});

  /// Point-in-time copy for reporting, sorted by name.
  struct HistogramRow {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    double p50 = 0, p90 = 0, p99 = 0;
  };
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<HistogramRow> histograms;
  };
  Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;

  friend std::string render_prometheus(const Registry& registry);
};

/// Prometheus text exposition (format 0.0.4) of every registered
/// instrument, sorted by name; histograms render cumulative `le` buckets
/// plus `_sum`/`_count` series.
std::string render_prometheus(const Registry& registry);

}  // namespace hdiff::obs
