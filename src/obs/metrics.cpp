#include "obs/metrics.h"

#include <algorithm>

#include "obs/clock.h"

namespace hdiff::obs {

const Clock& steady_clock_instance() noexcept {
  static const SteadyClock clock;
  return clock;
}

std::size_t shard_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)),
      stride_(bounds_.size() + 1),
      cells_(kMetricShards * stride_) {
  if (bounds_.empty()) {
    bounds_ = latency_buckets_us();
    stride_ = bounds_.size() + 1;
    cells_ = std::vector<std::atomic<std::uint64_t>>(kMetricShards * stride_);
  }
}

std::vector<std::uint64_t> Histogram::latency_buckets_us() {
  return {1,    2,    5,    10,    20,    50,    100,    200,    500,
          1000, 2000, 5000, 10000, 20000, 50000, 100000, 200000, 500000,
          1000000};
}

std::size_t Histogram::bucket_index(std::uint64_t value) const noexcept {
  // First bound >= value ("le" buckets); past-the-end = overflow bucket.
  return static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
}

void Histogram::observe(std::uint64_t value) noexcept {
  const std::size_t s = shard_slot();
  cells_[s * stride_ + bucket_index(value)].fetch_add(
      1, std::memory_order_relaxed);
  totals_[s].sum.fetch_add(value, std::memory_order_relaxed);
  totals_[s].count.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& s : totals_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::sum() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& s : totals_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> merged(stride_, 0);
  for (std::size_t s = 0; s < kMetricShards; ++s) {
    for (std::size_t b = 0; b < stride_; ++b) {
      merged[b] += cells_[s * stride_ + b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

double Histogram::quantile(double q) const {
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const std::uint64_t prev = cum;
    cum += counts[b];
    if (static_cast<double>(cum) >= rank) {
      if (b == bounds_.size()) return static_cast<double>(bounds_.back());
      const double lower = b == 0 ? 0.0 : static_cast<double>(bounds_[b - 1]);
      const double upper = static_cast<double>(bounds_[b]);
      double frac =
          (rank - static_cast<double>(prev)) / static_cast<double>(counts[b]);
      frac = std::clamp(frac, 0.0, 1.0);
      return lower + frac * (upper - lower);
    }
  }
  return static_cast<double>(bounds_.back());  // unreachable: cum == total
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<std::uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

Registry::Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramRow row;
    row.name = name;
    row.count = h->count();
    row.sum = h->sum();
    row.p50 = h->quantile(0.50);
    row.p90 = h->quantile(0.90);
    row.p99 = h->quantile(0.99);
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

std::string render_prometheus(const Registry& registry) {
  std::string out;
  std::lock_guard<std::mutex> lock(registry.mutex_);
  for (const auto& [name, c] : registry.counters_) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : registry.gauges_) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(g->value()) + "\n";
  }
  for (const auto& [name, h] : registry.histograms_) {
    out += "# TYPE " + name + " histogram\n";
    const std::vector<std::uint64_t> counts = h->bucket_counts();
    const std::vector<std::uint64_t>& bounds = h->bounds();
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < bounds.size(); ++b) {
      cum += counts[b];
      out += name + "_bucket{le=\"" + std::to_string(bounds[b]) + "\"} " +
             std::to_string(cum) + "\n";
    }
    cum += counts.back();
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(cum) + "\n";
    out += name + "_sum " + std::to_string(h->sum()) + "\n";
    out += name + "_count " + std::to_string(h->count()) + "\n";
  }
  return out;
}

}  // namespace hdiff::obs
