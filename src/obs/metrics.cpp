#include "obs/metrics.h"

#include <algorithm>

#include "obs/clock.h"

namespace hdiff::obs {

const Clock& steady_clock_instance() noexcept {
  static const SteadyClock clock;
  return clock;
}

std::size_t shard_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)),
      stride_(bounds_.size() + 1),
      cells_(kMetricShards * stride_) {
  if (bounds_.empty()) {
    bounds_ = latency_buckets_us();
    stride_ = bounds_.size() + 1;
    cells_ = std::vector<std::atomic<std::uint64_t>>(kMetricShards * stride_);
  }
}

std::vector<std::uint64_t> Histogram::latency_buckets_us() {
  return {1,    2,    5,    10,    20,    50,    100,    200,    500,
          1000, 2000, 5000, 10000, 20000, 50000, 100000, 200000, 500000,
          1000000};
}

std::size_t Histogram::bucket_index(std::uint64_t value) const noexcept {
  // First bound >= value ("le" buckets); past-the-end = overflow bucket.
  return static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
}

void Histogram::observe(std::uint64_t value) noexcept {
  const std::size_t s = shard_slot();
  cells_[s * stride_ + bucket_index(value)].fetch_add(
      1, std::memory_order_relaxed);
  totals_[s].sum.fetch_add(value, std::memory_order_relaxed);
  totals_[s].count.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& s : totals_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::sum() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& s : totals_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

bool Histogram::absorb(const std::vector<std::uint64_t>& bounds,
                       const std::vector<std::uint64_t>& buckets,
                       std::uint64_t sum, std::uint64_t count) noexcept {
  if (bounds != bounds_ || buckets.size() != stride_) return false;
  const std::size_t s = shard_slot();
  for (std::size_t b = 0; b < stride_; ++b) {
    cells_[s * stride_ + b].fetch_add(buckets[b], std::memory_order_relaxed);
  }
  totals_[s].sum.fetch_add(sum, std::memory_order_relaxed);
  totals_[s].count.fetch_add(count, std::memory_order_relaxed);
  return true;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> merged(stride_, 0);
  for (std::size_t s = 0; s < kMetricShards; ++s) {
    for (std::size_t b = 0; b < stride_; ++b) {
      merged[b] += cells_[s * stride_ + b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

double Histogram::quantile(double q) const {
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const std::uint64_t prev = cum;
    cum += counts[b];
    if (static_cast<double>(cum) >= rank) {
      if (b == bounds_.size()) return static_cast<double>(bounds_.back());
      const double lower = b == 0 ? 0.0 : static_cast<double>(bounds_[b - 1]);
      const double upper = static_cast<double>(bounds_[b]);
      double frac =
          (rank - static_cast<double>(prev)) / static_cast<double>(counts[b]);
      frac = std::clamp(frac, 0.0, 1.0);
      return lower + frac * (upper - lower);
    }
  }
  return static_cast<double>(bounds_.back());  // unreachable: cum == total
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<std::uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

Registry::Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramRow row;
    row.name = name;
    row.count = h->count();
    row.sum = h->sum();
    row.p50 = h->quantile(0.50);
    row.p90 = h->quantile(0.90);
    row.p99 = h->quantile(0.99);
    row.bounds = h->bounds();
    row.buckets = h->bucket_counts();
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

std::size_t Registry::absorb(const Snapshot& snap) {
  std::size_t dropped = 0;
  for (const auto& [name, value] : snap.counters) counter(name).add(value);
  for (const auto& [name, value] : snap.gauges) gauge(name).set(value);
  for (const HistogramRow& row : snap.histograms) {
    Histogram& h = histogram(row.name, row.bounds);
    if (!h.absorb(row.bounds, row.buckets, row.sum, row.count)) ++dropped;
  }
  return dropped;
}

void Registry::help(std::string_view name, std::string_view text) {
  std::lock_guard<std::mutex> lock(mutex_);
  help_.emplace(std::string(name), std::string(text));
}

std::string prom_escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prom_label(std::string_view key, std::string_view value) {
  return std::string(key) + "=\"" + prom_escape_label_value(value) + "\"";
}

std::string labeled_name(std::string_view base, std::string_view labels) {
  if (labels.empty()) return std::string(base);
  return std::string(base) + "{" + std::string(labels) + "}";
}

namespace {

/// HELP text escaping: only `\` and newline are special.
std::string prom_escape_help(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Split `base{labels}` into its parts; names without a label suffix pass
/// through with empty labels.
void split_metric_name(const std::string& name, std::string* base,
                       std::string* labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

std::string join_labels(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return a + "," + b;
}

struct HistogramSeries {
  std::string labels;
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t sum = 0;
  std::uint64_t count = 0;
};

struct Family {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string help;
  std::vector<std::pair<std::string, std::string>> scalars;  ///< labels,value
  std::vector<HistogramSeries> histograms;
};

std::string sample(const std::string& name, const std::string& labels,
                   const std::string& value) {
  std::string out = name;
  if (!labels.empty()) out += "{" + labels + "}";
  out += " " + value + "\n";
  return out;
}

}  // namespace

std::string render_prometheus(const std::vector<RegistryView>& views) {
  // Family grouping is by base name so that per-label-set instruments
  // (`base{...}` names) and multiple origins share a single HELP/TYPE pair,
  // as the exposition format requires.
  std::map<std::string, Family> families;
  for (const RegistryView& view : views) {
    if (view.registry == nullptr) continue;
    const Registry::Snapshot snap = view.registry->snapshot();
    std::string base, embedded;
    auto family_for = [&](const std::string& name, Family::Kind kind,
                          bool* fresh_or_matching) -> Family& {
      split_metric_name(name, &base, &embedded);
      Family& fam = families[base];
      const bool fresh =
          fam.scalars.empty() && fam.histograms.empty() && fam.help.empty();
      if (fresh) fam.kind = kind;
      *fresh_or_matching = fam.kind == kind;
      if (fam.help.empty()) {
        std::lock_guard<std::mutex> lock(view.registry->mutex_);
        auto it = view.registry->help_.find(base);
        if (it != view.registry->help_.end()) fam.help = it->second;
      }
      return fam;
    };
    for (const auto& [name, value] : snap.counters) {
      bool ok = false;
      Family& fam = family_for(name, Family::Kind::kCounter, &ok);
      if (!ok) continue;  // kind clash across origins: first wins
      fam.scalars.emplace_back(join_labels(view.labels, embedded),
                               std::to_string(value));
    }
    for (const auto& [name, value] : snap.gauges) {
      bool ok = false;
      Family& fam = family_for(name, Family::Kind::kGauge, &ok);
      if (!ok) continue;
      fam.scalars.emplace_back(join_labels(view.labels, embedded),
                               std::to_string(value));
    }
    for (const Registry::HistogramRow& row : snap.histograms) {
      bool ok = false;
      Family& fam = family_for(row.name, Family::Kind::kHistogram, &ok);
      if (!ok) continue;
      HistogramSeries series;
      series.labels = join_labels(view.labels, embedded);
      series.bounds = row.bounds;
      series.buckets = row.buckets;
      series.sum = row.sum;
      series.count = row.count;
      fam.histograms.push_back(std::move(series));
    }
  }

  std::string out;
  for (const auto& [base, fam] : families) {
    if (!fam.help.empty()) {
      out += "# HELP " + base + " " + prom_escape_help(fam.help) + "\n";
    }
    switch (fam.kind) {
      case Family::Kind::kCounter: out += "# TYPE " + base + " counter\n"; break;
      case Family::Kind::kGauge: out += "# TYPE " + base + " gauge\n"; break;
      case Family::Kind::kHistogram:
        out += "# TYPE " + base + " histogram\n";
        break;
    }
    for (const auto& [labels, value] : fam.scalars) {
      out += sample(base, labels, value);
    }
    for (const HistogramSeries& series : fam.histograms) {
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < series.bounds.size(); ++b) {
        cum += b < series.buckets.size() ? series.buckets[b] : 0;
        out += sample(base + "_bucket",
                      join_labels(series.labels,
                                  "le=\"" + std::to_string(series.bounds[b]) +
                                      "\""),
                      std::to_string(cum));
      }
      if (!series.buckets.empty()) cum += series.buckets.back();
      out += sample(base + "_bucket",
                    join_labels(series.labels, "le=\"+Inf\""),
                    std::to_string(cum));
      out += sample(base + "_sum", series.labels, std::to_string(series.sum));
      out +=
          sample(base + "_count", series.labels, std::to_string(series.count));
    }
  }
  return out;
}

std::string render_prometheus(const Registry& registry) {
  return render_prometheus(std::vector<RegistryView>{{&registry, ""}});
}

}  // namespace hdiff::obs
