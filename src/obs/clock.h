// Injectable time source for the observability layer.
//
// Everything in hdiff::obs that reads time — spans, stage timings, latency
// histograms — goes through a `Clock` so tests can drive a `ManualClock`
// and assert exact timestamps/durations, while production uses the
// monotonic `SteadyClock`.  All values are microseconds on an arbitrary
// monotonic epoch (Chrome trace-event `ts` units).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace hdiff::obs {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic microseconds; the epoch is unspecified but fixed for the
  /// process, so differences and orderings are meaningful everywhere.
  virtual std::uint64_t now_us() const noexcept = 0;
};

/// Production clock: std::chrono::steady_clock in microseconds.  Stateless;
/// every instance reads the same epoch, so mixing instances is safe.
class SteadyClock final : public Clock {
 public:
  std::uint64_t now_us() const noexcept override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Shared stateless SteadyClock, the fallback wherever no clock is injected.
const Clock& steady_clock_instance() noexcept;

/// Test clock: time moves only when the test says so.  Thread-safe, so a
/// multi-worker run under a ManualClock is race-free (all events simply land
/// on the same instant unless the test advances between phases).
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::uint64_t start_us = 0) : now_(start_us) {}

  std::uint64_t now_us() const noexcept override {
    return now_.load(std::memory_order_relaxed);
  }
  void advance_us(std::uint64_t delta) noexcept {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }
  void set_us(std::uint64_t t) noexcept {
    now_.store(t, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> now_;
};

}  // namespace hdiff::obs
