// Bundles threading the observability layer through the pipeline.
//
// `Observability` is the user-facing handle: a metrics registry and/or a
// trace sink (both optional, both non-owning) plus an optional clock.  A
// default-constructed bundle disables everything; instrumented code guards
// each site with a pointer test, so the disabled cost is near zero and the
// findings are byte-identical either way (observability only reads).
//
// `ChainObs` is the pre-resolved per-run form the chain hot path consumes:
// the registry name lookups happen once (when the executor or caller builds
// it), not per observation, so `--jobs 8` workers share only relaxed
// sharded-atomic increments.
#pragma once

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hdiff::obs {

struct Observability {
  Registry* metrics = nullptr;  ///< null = no metrics collection
  TraceSink* trace = nullptr;   ///< null = no tracing
  const Clock* clock = nullptr;  ///< timing source; null = steady clock

  bool enabled() const noexcept { return metrics || trace; }
  const Clock& effective_clock() const noexcept {
    return clock ? *clock : steady_clock_instance();
  }
};

/// Per-run chain hooks: trace sink plus pre-registered latency histograms
/// for the whole observation and each hop class.  Build once per run with
/// `from()`; pass null to `Chain::observe` to disable.
struct ChainObs {
  TraceSink* trace = nullptr;
  Histogram* observe_us = nullptr;  ///< whole three-step observation
  Histogram* forward_us = nullptr;  ///< step 1, send->proxy
  Histogram* replay_us = nullptr;   ///< step 2, forward->backend (per proxy)
  Histogram* direct_us = nullptr;   ///< step 3, direct back-end probes
  const Clock* clock = nullptr;

  bool active() const noexcept { return trace || observe_us; }
  std::uint64_t now() const noexcept { return clock->now_us(); }

  static ChainObs from(const Observability& o) {
    ChainObs c;
    c.trace = o.trace;
    c.clock = &o.effective_clock();
    if (o.metrics) {
      o.metrics->help("hdiff_chain_observe_micros",
                      "Whole differential observation latency (us)");
      c.observe_us = &o.metrics->histogram("hdiff_chain_observe_micros");
      c.forward_us = &o.metrics->histogram("hdiff_chain_forward_micros");
      c.replay_us = &o.metrics->histogram("hdiff_chain_replay_micros");
      c.direct_us = &o.metrics->histogram("hdiff_chain_direct_micros");
    }
    return c;
  }
};

/// Per-run hooks for connection-level stream observation (net/stream.h)
/// and the stream detectors (src/stream): one registry lookup per run,
/// relaxed increments per stream.  The counters ride worker registry
/// snapshots into the merged `hdiff serve` /metrics view like every other
/// hdiff_* metric.
struct StreamObs {
  TraceSink* trace = nullptr;
  Histogram* observe_us = nullptr;  ///< hdiff_stream_observe_micros
  Histogram* messages = nullptr;    ///< hdiff_stream_messages_per_connection
  Counter* streams = nullptr;       ///< hdiff_stream_observations_total
  Counter* boundary_desync = nullptr;  ///< hdiff_stream_boundary_desync_total
  Counter* queue_poison = nullptr;     ///< hdiff_stream_queue_poison_total
  Counter* leftover_divergence =
      nullptr;  ///< hdiff_stream_leftover_divergence_total
  const Clock* clock = nullptr;

  bool active() const noexcept { return trace || observe_us || streams; }
  std::uint64_t now() const noexcept { return clock->now_us(); }

  static StreamObs from(const Observability& o) {
    StreamObs s;
    s.trace = o.trace;
    s.clock = &o.effective_clock();
    if (o.metrics) {
      o.metrics->help("hdiff_stream_observe_micros",
                      "Whole stream observation latency (us)");
      o.metrics->help("hdiff_stream_messages_per_connection",
                      "Messages delivered per observed connection");
      o.metrics->help("hdiff_stream_boundary_desync_total",
                      "Stream findings: implementations split the stream at "
                      "different request boundaries");
      o.metrics->help("hdiff_stream_queue_poison_total",
                      "Stream findings: forwarded-request vs response-queue "
                      "mismatch on a proxy->backend connection");
      o.metrics->help("hdiff_stream_observations_total",
                      "Request streams observed end to end");
      o.metrics->help("hdiff_stream_leftover_divergence_total",
                      "Stream findings: implementations end the stream with "
                      "different stranded buffer bytes");
      s.observe_us = &o.metrics->histogram("hdiff_stream_observe_micros");
      s.messages =
          &o.metrics->histogram("hdiff_stream_messages_per_connection");
      s.streams = &o.metrics->counter("hdiff_stream_observations_total");
      s.boundary_desync =
          &o.metrics->counter("hdiff_stream_boundary_desync_total");
      s.queue_poison = &o.metrics->counter("hdiff_stream_queue_poison_total");
      s.leftover_divergence =
          &o.metrics->counter("hdiff_stream_leftover_divergence_total");
    }
    return s;
  }
};

/// Per-loop hooks for the nonblocking batch driver (net::EventLoop): one
/// registry lookup per loop construction, relaxed increments per batch.
struct NetLoopObs {
  TraceSink* trace = nullptr;
  Counter* batches = nullptr;      ///< hdiff_net_loop_batches_total
  Counter* roundtrips = nullptr;   ///< hdiff_net_loop_roundtrips_total
  Counter* retries = nullptr;      ///< hdiff_net_loop_retries_total
  Counter* poll_fallback = nullptr;  ///< hdiff_net_loop_poll_fallback_total
  Histogram* batch_size = nullptr;   ///< hdiff_net_loop_batch_size
  Histogram* batch_us = nullptr;     ///< hdiff_net_loop_batch_micros
  const Clock* clock = nullptr;

  bool active() const noexcept { return trace || batches; }
  std::uint64_t now() const noexcept { return clock->now_us(); }

  static NetLoopObs from(const Observability& o) {
    NetLoopObs n;
    n.trace = o.trace;
    n.clock = &o.effective_clock();
    if (o.metrics) {
      n.batches = &o.metrics->counter("hdiff_net_loop_batches_total");
      n.roundtrips = &o.metrics->counter("hdiff_net_loop_roundtrips_total");
      n.retries = &o.metrics->counter("hdiff_net_loop_retries_total");
      n.poll_fallback =
          &o.metrics->counter("hdiff_net_loop_poll_fallback_total");
      n.batch_size = &o.metrics->histogram("hdiff_net_loop_batch_size");
      n.batch_us = &o.metrics->histogram("hdiff_net_loop_batch_micros");
    }
    return n;
  }
};

/// Pre-resolved hooks for the `hdiff serve` supervisor (serve/supervisor.h):
/// worker lifecycle counters plus live gauges the /metrics endpoint exports.
/// One registry lookup per daemon construction, relaxed updates per event.
struct ServeObs {
  TraceSink* trace = nullptr;
  Counter* rounds = nullptr;      ///< hdiff_serve_rounds_total
  Counter* spawns = nullptr;      ///< hdiff_serve_worker_spawns_total
  Counter* deaths = nullptr;      ///< hdiff_serve_worker_deaths_total
  Counter* restarts = nullptr;    ///< hdiff_serve_worker_restarts_total
  Counter* hangs = nullptr;       ///< hdiff_serve_worker_hangs_total
  Counter* quarantines = nullptr;  ///< hdiff_serve_shard_quarantines_total
  Counter* heartbeats = nullptr;   ///< hdiff_serve_heartbeats_total
  Gauge* round = nullptr;          ///< hdiff_serve_round
  Gauge* workers_healthy = nullptr;    ///< hdiff_serve_workers_healthy
  Gauge* shards_quarantined = nullptr;  ///< hdiff_serve_shards_quarantined

  bool active() const noexcept { return trace || rounds; }

  static ServeObs from(const Observability& o) {
    ServeObs s;
    s.trace = o.trace;
    if (o.metrics) {
      o.metrics->help("hdiff_serve_rounds_total",
                      "Campaign rounds committed by the serve supervisor");
      o.metrics->help("hdiff_serve_worker_deaths_total",
                      "Worker processes that exited before publishing");
      o.metrics->help("hdiff_serve_heartbeat_age_ms",
                      "Milliseconds since each live worker's last heartbeat");
      o.metrics->help("hdiff_serve_control_requests_total",
                      "Control-plane HTTP requests by endpoint and status");
      s.rounds = &o.metrics->counter("hdiff_serve_rounds_total");
      s.spawns = &o.metrics->counter("hdiff_serve_worker_spawns_total");
      s.deaths = &o.metrics->counter("hdiff_serve_worker_deaths_total");
      s.restarts = &o.metrics->counter("hdiff_serve_worker_restarts_total");
      s.hangs = &o.metrics->counter("hdiff_serve_worker_hangs_total");
      s.quarantines =
          &o.metrics->counter("hdiff_serve_shard_quarantines_total");
      s.heartbeats = &o.metrics->counter("hdiff_serve_heartbeats_total");
      s.round = &o.metrics->gauge("hdiff_serve_round");
      s.workers_healthy = &o.metrics->gauge("hdiff_serve_workers_healthy");
      s.shards_quarantined =
          &o.metrics->gauge("hdiff_serve_shards_quarantined");
    }
    return s;
  }
};

}  // namespace hdiff::obs
