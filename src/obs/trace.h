// Span tracing that renders to Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing).
//
// Hot-path design: each writing thread appends events to its own buffer
// (created once per thread under the sink mutex, then owned exclusively by
// that thread), so emitting an event is two clock reads plus a vector
// push — no lock, no contention.  The cost of that choice is a quiescence
// contract, the same one EchoServer::log() has:
//
//   `render_chrome_json()` / `event_count()` must not race with writers —
//   call them after the emitting threads have joined (the executor joins
//   its workers before returning, so "after ParallelExecutor::run returns"
//   is always safe) or been destroyed (ModelProxy/ModelServer).
//
// When tracing is disabled every instrumentation site holds a null
// TraceSink* and the instrumentation reduces to one pointer test — no
// clock reads, no allocation, no stores.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/clock.h"

namespace hdiff::obs {

/// One trace event in exportable form.  `tid` is the sink-local writer
/// index, not an OS thread id; `ts`/`dur` are microseconds on the sink's
/// clock (CLOCK_MONOTONIC shares one epoch across local processes, so
/// worker events are directly comparable with supervisor events).
struct TraceEvent {
  char ph;  ///< 'X' complete, 'i' instant
  std::uint32_t tid;
  std::uint64_t ts;
  std::uint64_t dur;
  std::string name;
  std::string cat;
  std::string arg_key;
  std::string arg_value;
};

class TraceSink {
 public:
  /// `clock` is injectable for deterministic tests; null = steady clock.
  /// Non-owning; the clock must outlive the sink.
  explicit TraceSink(const Clock* clock = nullptr);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  const Clock& clock() const noexcept { return *clock_; }
  std::uint64_t now() const noexcept { return clock_->now_us(); }

  /// Append a complete ("ph":"X") event with an explicit start and
  /// duration in microseconds.  One optional key/value argument pair.
  /// Thread-safe and lock-free after the calling thread's first event.
  void complete(std::string name, std::string_view cat, std::uint64_t ts,
                std::uint64_t dur, std::string arg_key = {},
                std::string arg_value = {});

  /// Append an instant ("ph":"i", thread-scoped) event stamped now.
  void instant(std::string name, std::string_view cat,
               std::string arg_key = {}, std::string arg_value = {});

  /// Events recorded so far by this process (imported tracks excluded).
  /// Quiescence contract above.
  std::size_t event_count() const;

  /// Copy out this process's events sorted by (ts, tid) — the cross-process
  /// export side of trace stitching (serialized into the worker's shard
  /// result).  Quiescence contract above.
  std::vector<TraceEvent> export_events() const;

  /// Attach a foreign process's exported events as its own track in the
  /// stitched render: `pid` keys the track (a worker's OS pid),
  /// `process_name` labels it in the viewer.  Importing the same pid again
  /// appends (a worker exports once per round).  Thread-safe.
  void import_process(std::uint32_t pid, std::string process_name,
                      std::vector<TraceEvent> events);

  /// Label this process's own track in the stitched render (emitted as a
  /// `process_name` metadata event whenever set, or whenever foreign tracks
  /// exist — a single-process trace without a name renders exactly as
  /// before).
  void set_process_name(std::string name);

  /// Render `{"displayTimeUnit":...,"traceEvents":[...]}` with all strings
  /// JSON-escaped (control bytes as \u00XX — case names carry raw CR/LF by
  /// construction and must round-trip).  Local events carry pid 1; imported
  /// tracks carry their own pid with a `process_name` metadata event, so
  /// the stitched trace shows one lane per process in about:tracing.
  /// Events are sorted by (ts, pid, tid) so equal-clock runs render
  /// byte-identically.  Quiescence contract above.
  std::string render_chrome_json() const;

  /// Local pid used for this process's events in the render.
  static constexpr std::uint32_t kLocalPid = 1;

 private:
  using Event = TraceEvent;
  struct Buffer {
    std::thread::id owner;
    std::uint32_t tid = 0;
    std::vector<Event> events;
  };
  struct ForeignTrack {
    std::uint32_t pid = 0;
    std::string name;
    std::vector<TraceEvent> events;
  };

  Buffer& local_buffer();

  const Clock* clock_;
  const std::uint64_t generation_;  ///< invalidates stale thread-local caches
  mutable std::mutex mutex_;        ///< guards the buffer list, not appends
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::vector<ForeignTrack> foreign_;  ///< guarded by mutex_
  std::string process_name_;           ///< guarded by mutex_
};

/// RAII span: stamps the start on construction, emits one complete event on
/// destruction.  With a null sink the constructor and destructor are a
/// single pointer test each.  For per-case hot paths prefer manual
/// `TraceSink::complete` calls that share clock reads between adjacent
/// hops; Span is for stage- and connection-level scopes.
class Span {
 public:
  Span(TraceSink* sink, std::string_view name, std::string_view cat = "hdiff")
      : sink_(sink) {
    if (!sink_) return;
    name_.assign(name);
    cat_.assign(cat);
    start_ = sink_->now();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach the span's key/value argument (last call wins). No-op when
  /// disabled.
  void arg(std::string_view key, std::string_view value) {
    if (!sink_) return;
    arg_key_.assign(key);
    arg_value_.assign(value);
  }

  ~Span() {
    if (!sink_) return;
    sink_->complete(std::move(name_), cat_, start_, sink_->now() - start_,
                    std::move(arg_key_), std::move(arg_value_));
  }

 private:
  TraceSink* sink_;
  std::uint64_t start_ = 0;
  std::string name_;
  std::string cat_;
  std::string arg_key_;
  std::string arg_value_;
};

}  // namespace hdiff::obs
