// ABNF rule extraction from RFC-formatted text (the paper's "ABNF filter
// based on format features": character cleaning, regular extraction, case
// escaping, and separating prose rules).
//
// RFC text interleaves ABNF blocks with prose, page headers/footers, and form
// feeds.  The extractor (1) cleans pagination artifacts, (2) locates
// candidate rule-definition lines by shape ("name = elements" at a stable
// indent, continuations indented deeper), and (3) validates each candidate by
// actually parsing it — a candidate that fails the ABNF parser is prose, not
// grammar, and is dropped.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "abnf/ast.h"

namespace hdiff::abnf {

/// Counters describing one extraction run (reported by experiment E1).
struct ExtractionStats {
  std::size_t lines_scanned = 0;
  std::size_t candidate_chunks = 0;  ///< rule-shaped blocks found
  std::size_t parsed_rules = 0;      ///< candidates accepted by the parser
  std::size_t parse_failures = 0;    ///< candidates rejected as prose
  std::size_t prose_val_rules = 0;   ///< accepted rules containing <prose>
};

/// Remove RFC pagination artifacts: form feeds, "[Page N]" footer lines, and
/// "RFC NNNN ... <Month Year>" header lines.
std::string clean_rfc_text(std::string_view text);

/// Extract every ABNF rule from `doc_text` (which should already be cleaned,
/// or will tolerate uncleaned text at slightly lower precision).
/// `source_doc` tags provenance on each rule for the adaptor.
Grammar extract_abnf(std::string_view doc_text, std::string_view source_doc,
                     ExtractionStats* stats = nullptr,
                     std::vector<std::string>* errors = nullptr);

}  // namespace hdiff::abnf
