// ABNF rule adaptation (the paper's "ABNF Rule Adaption" step).
//
// Rules extracted from several RFCs must be merged into one complete,
// error-free grammar.  The adaptor performs:
//   * provenance-ordered merging — rules with the same (case-insensitive)
//     name are taken from the most recent document in the merge order;
//   * prose-rule resolution — "<host, see [RFC3986], Section 3.2.2>" becomes
//     a reference to the `host` rule, pulling in the referenced document's
//     grammar on demand;
//   * custom substitution — undefined references (defined only in prose or
//     in un-imported documents) are replaced with user-supplied definitions;
//   * a final completeness report listing anything still unresolved.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "abnf/ast.h"

namespace hdiff::abnf {

/// Result of an adaptation run.
struct AdaptReport {
  std::vector<std::string> expanded_documents;  ///< docs pulled in via prose
  std::vector<std::string> resolved_prose;      ///< prose rules -> refs
  std::vector<std::string> custom_substitutions;///< names given custom defs
  std::vector<std::string> unresolved;          ///< still-undefined refs
};

class Adaptor {
 public:
  /// Register a document's extracted grammar under its name ("rfc7230",
  /// "rfc3986", ...).  Documents referenced by prose rules must be
  /// registered to be expandable.
  void register_document(std::string doc_name, Grammar grammar);

  /// Provide a custom definition used when `rule_name` remains undefined
  /// after prose resolution (e.g. port => "80" / "8080").
  void set_custom_rule(std::string_view rule_name, NodePtr definition);

  /// Build the merged grammar from `doc_order` (oldest first: later
  /// documents override earlier ones on name collision), then resolve prose
  /// rules and substitute custom definitions.
  Grammar adapt(const std::vector<std::string>& doc_order,
                AdaptReport* report = nullptr) const;

  /// Parse a prose-val's text for a cross-document reference.  Recognizes
  /// the conventional "<name, see [RFCnnnn], Section x.y>" shape; returns
  /// true and fills the outputs on success.
  static bool parse_prose_reference(std::string_view prose,
                                    std::string* rule_name,
                                    std::string* doc_name);

 private:
  std::map<std::string, Grammar> documents_;
  std::map<std::string, NodePtr> custom_rules_;  // key: normalized name
};

}  // namespace hdiff::abnf
