#include "abnf/ast.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace hdiff::abnf {

NodePtr make_alternation(std::vector<NodePtr> alts) {
  if (alts.size() == 1) return alts.front();
  return std::make_shared<const Node>(Node{Alternation{std::move(alts)}});
}

NodePtr make_concatenation(std::vector<NodePtr> parts) {
  if (parts.size() == 1) return parts.front();
  return std::make_shared<const Node>(Node{Concatenation{std::move(parts)}});
}

NodePtr make_repetition(std::size_t min, std::optional<std::size_t> max,
                        NodePtr element) {
  return std::make_shared<const Node>(
      Node{Repetition{min, max, std::move(element)}});
}

NodePtr make_option(NodePtr element) {
  return std::make_shared<const Node>(Node{Option{std::move(element)}});
}

NodePtr make_char_val(std::string text, bool case_sensitive) {
  return std::make_shared<const Node>(
      Node{CharVal{std::move(text), case_sensitive}});
}

NodePtr make_num_sequence(std::vector<std::uint32_t> seq) {
  NumVal nv;
  nv.is_range = false;
  nv.sequence = std::move(seq);
  return std::make_shared<const Node>(Node{std::move(nv)});
}

NodePtr make_num_range(std::uint32_t lo, std::uint32_t hi) {
  NumVal nv;
  nv.is_range = true;
  nv.lo = lo;
  nv.hi = hi;
  return std::make_shared<const Node>(Node{std::move(nv)});
}

NodePtr make_rule_ref(std::string_view name) {
  return std::make_shared<const Node>(
      Node{RuleRef{normalize_rule_name(name)}});
}

NodePtr make_prose_val(std::string text) {
  return std::make_shared<const Node>(Node{ProseVal{std::move(text)}});
}

std::string normalize_rule_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (c == '_') c = '-';
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    out.push_back(c);
  }
  return out;
}

void Grammar::add(Rule rule) {
  std::string key = normalize_rule_name(rule.name);
  auto it = rules_.find(key);
  if (it == rules_.end()) {
    rules_.emplace(std::move(key), std::move(rule));
    return;
  }
  if (rule.incremental) {
    // "=/": extend the existing definition with new alternatives.
    std::vector<NodePtr> alts;
    if (const auto* alt = it->second.definition->as<Alternation>()) {
      alts = alt->alts;
    } else {
      alts.push_back(it->second.definition);
    }
    if (const auto* alt = rule.definition->as<Alternation>()) {
      alts.insert(alts.end(), alt->alts.begin(), alt->alts.end());
    } else {
      alts.push_back(rule.definition);
    }
    it->second.definition = make_alternation(std::move(alts));
  } else {
    it->second = std::move(rule);
  }
}

const Rule* Grammar::find(std::string_view name) const {
  auto it = rules_.find(normalize_rule_name(name));
  return it == rules_.end() ? nullptr : &it->second;
}

void Grammar::collect_refs(const NodePtr& node, std::vector<std::string>& out) {
  if (!node) return;
  if (const auto* a = node->as<Alternation>()) {
    for (const auto& n : a->alts) collect_refs(n, out);
  } else if (const auto* c = node->as<Concatenation>()) {
    for (const auto& n : c->parts) collect_refs(n, out);
  } else if (const auto* r = node->as<Repetition>()) {
    collect_refs(r->element, out);
  } else if (const auto* o = node->as<Option>()) {
    collect_refs(o->element, out);
  } else if (const auto* ref = node->as<RuleRef>()) {
    out.push_back(ref->name);
  }
}

std::vector<std::string> Grammar::undefined_references() const {
  std::set<std::string> refs;
  for (const auto& [key, rule] : rules_) {
    std::vector<std::string> local;
    collect_refs(rule.definition, local);
    refs.insert(local.begin(), local.end());
  }
  std::vector<std::string> out;
  for (const auto& r : refs) {
    if (!rules_.contains(r)) out.push_back(r);
  }
  return out;
}

namespace {

void render(const NodePtr& node, std::string& out) {
  if (!node) {
    out += "<null>";
    return;
  }
  if (const auto* a = node->as<Alternation>()) {
    out += "( ";
    for (std::size_t i = 0; i < a->alts.size(); ++i) {
      if (i) out += " / ";
      render(a->alts[i], out);
    }
    out += " )";
  } else if (const auto* c = node->as<Concatenation>()) {
    for (std::size_t i = 0; i < c->parts.size(); ++i) {
      if (i) out += ' ';
      render(c->parts[i], out);
    }
  } else if (const auto* r = node->as<Repetition>()) {
    if (r->min != 0 || r->max) {
      if (r->min == r->max) {
        out += std::to_string(r->min);
      } else {
        if (r->min) out += std::to_string(r->min);
        out += '*';
        if (r->max) out += std::to_string(*r->max);
      }
    } else {
      out += '*';
    }
    render(r->element, out);
  } else if (const auto* o = node->as<Option>()) {
    out += "[ ";
    render(o->element, out);
    out += " ]";
  } else if (const auto* cv = node->as<CharVal>()) {
    if (cv->case_sensitive) out += "%s";
    out += '"';
    out += cv->text;
    out += '"';
  } else if (const auto* nv = node->as<NumVal>()) {
    char buf[16];
    out += "%x";
    if (nv->is_range) {
      std::snprintf(buf, sizeof buf, "%X-%X", nv->lo, nv->hi);
      out += buf;
    } else {
      for (std::size_t i = 0; i < nv->sequence.size(); ++i) {
        if (i) out += '.';
        std::snprintf(buf, sizeof buf, "%X", nv->sequence[i]);
        out += buf;
      }
    }
  } else if (const auto* ref = node->as<RuleRef>()) {
    out += ref->name;
  } else if (const auto* p = node->as<ProseVal>()) {
    out += '<';
    out += p->text;
    out += '>';
  }
}

}  // namespace

std::string to_string(const NodePtr& node) {
  std::string out;
  render(node, out);
  return out;
}

std::string to_string(const Rule& rule) {
  return rule.name + " = " + to_string(rule.definition);
}

}  // namespace hdiff::abnf
