// Test-string generation from an ABNF grammar.
//
// The generator performs the paper's depth-first traversal over the grammar
// tree: it starts at a target rule (HTTP-message, HTTP-version, Host, ...),
// recursively expands each node, and bounds the walk in three ways to keep
// the output usable rather than "too distorted":
//   * recursion depth across rule references is capped (paper: maximum 7);
//   * unbounded repetitions ("*rule") expand to a small window of counts;
//   * "predefined rules" pin representative values onto chosen leaf rules
//     (e.g. IPv4address => 127.0.0.1, 8.8.8.8) so that generated requests
//     are RFC-compliant seeds a server will accept.
// Two modes are offered: bounded exhaustive enumeration and seeded random
// sampling.  Both are deterministic given the same inputs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "abnf/ast.h"

namespace hdiff::abnf {

struct GenOptions {
  std::size_t max_depth = 7;       ///< rule-reference recursion budget
  std::size_t extra_repeats = 2;   ///< counts tried above a repetition's min
  std::size_t range_points = 3;    ///< representative points per num-range
  std::size_t max_variants = 512;  ///< enumeration cap at every node
  bool literal_case_variants = true;  ///< add an ALL-CAPS variant of
                                      ///< case-insensitive alpha literals
};

class Generator {
 public:
  /// The generator keeps its own copy of the grammar (rule definitions are
  /// shared immutable nodes, so the copy is shallow and cheap) — callers may
  /// pass temporaries safely.
  explicit Generator(Grammar grammar, GenOptions options = {});

  /// Pin representative values for a rule; the traversal stops there.
  void set_predefined(std::string_view rule_name,
                      std::vector<std::string> values);

  /// True if the rule has pinned values.
  bool has_predefined(std::string_view rule_name) const;

  /// Bounded exhaustive enumeration of derivations of `rule_name`.
  /// At most `limit` strings (also bounded by options.max_variants at every
  /// interior node).  Unknown rule => empty vector.
  std::vector<std::string> enumerate(std::string_view rule_name,
                                     std::size_t limit) const;

  /// One random derivation.  The walk respects max_depth; when the budget is
  /// exhausted it falls back to the minimal derivation of the current rule.
  std::string sample(std::string_view rule_name, std::mt19937_64& rng) const;

  /// The shortest derivable string for a rule ("" for cyclic/void rules).
  std::string minimal(std::string_view rule_name) const;

  const Grammar& grammar() const { return grammar_; }
  const GenOptions& options() const { return options_; }

  /// Coverage tap: while non-null, every rule the traversal expands (by
  /// grammar walk or predefined pinning) has its normalized name inserted
  /// into *tap.  One branch per rule reference when armed, zero-cost when
  /// not — the campaign uses this to compute its bootstrap coverage cone.
  void set_coverage_tap(std::set<std::string>* tap) const {
    coverage_tap_ = tap;
  }

 private:
  std::vector<std::string> enumerate_node(const NodePtr& node,
                                          std::size_t depth,
                                          std::size_t limit) const;
  std::string sample_node(const NodePtr& node, std::size_t depth,
                          std::mt19937_64& rng) const;
  std::string minimal_node(const NodePtr& node,
                           std::vector<std::string>& in_progress) const;

  void tap_rule(const std::string& name) const {
    if (coverage_tap_ != nullptr) coverage_tap_->insert(name);
  }

  Grammar grammar_;
  GenOptions options_;
  std::map<std::string, std::vector<std::string>> predefined_;
  mutable std::map<std::string, std::string> minimal_cache_;
  mutable std::set<std::string>* coverage_tap_ = nullptr;
};

/// The standard predefined-value set HDiff uses for HTTP experiments:
/// representative hosts, IP literals, ports, tokens, and field content so
/// that generated requests are accepted by real parsers.
void load_default_http_predefined(Generator& gen);

}  // namespace hdiff::abnf
