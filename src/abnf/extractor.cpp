#include "abnf/extractor.h"

#include <cctype>

#include "abnf/parser.h"

namespace hdiff::abnf {

namespace {

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      lines.push_back(text.substr(pos));
      break;
    }
    std::string_view line = text.substr(pos, nl - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    lines.push_back(line);
    pos = nl + 1;
  }
  return lines;
}

bool is_page_footer(std::string_view line) {
  // "...                 [Page 12]"
  std::size_t close = line.rfind(']');
  std::size_t open = line.rfind("[Page ");
  return open != std::string_view::npos && close != std::string_view::npos &&
         close > open;
}

bool is_page_header(std::string_view line) {
  // "RFC 7230           HTTP/1.1 Message Syntax and Routing        June 2014"
  std::size_t first = line.find_first_not_of(' ');
  if (first == std::string_view::npos) return false;
  return line.substr(first).starts_with("RFC ") && line.size() > 60;
}

std::size_t indent_of(std::string_view line) {
  std::size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  return i;
}

/// Does this line look like the start of a rule definition?
/// Shape: indent, rule-name, optional ws, "=" or "=/", then anything.
bool looks_like_rule_start(std::string_view line, std::string* name_out) {
  std::size_t i = indent_of(line);
  if (i >= line.size()) return false;
  if (!std::isalpha(static_cast<unsigned char>(line[i]))) return false;
  std::size_t name_start = i;
  while (i < line.size() &&
         (std::isalnum(static_cast<unsigned char>(line[i])) || line[i] == '-' ||
          line[i] == '_')) {
    ++i;
  }
  std::size_t name_end = i;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size() || line[i] != '=') return false;
  // Avoid prose like "x == y" (not ABNF) — ABNF uses "=" or "=/".
  if (i + 1 < line.size() && line[i + 1] == '=') return false;
  if (name_out) name_out->assign(line.substr(name_start, name_end - name_start));
  return true;
}

}  // namespace

std::string clean_rfc_text(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::string_view line : split_lines(text)) {
    if (is_page_footer(line) || is_page_header(line)) continue;
    for (char c : line) {
      if (c == '\f') continue;
      out.push_back(c);
    }
    out.push_back('\n');
  }
  return out;
}

Grammar extract_abnf(std::string_view doc_text, std::string_view source_doc,
                     ExtractionStats* stats, std::vector<std::string>* errors) {
  Grammar grammar;
  ExtractionStats local;
  std::vector<std::string_view> lines = split_lines(doc_text);
  local.lines_scanned = lines.size();

  std::size_t i = 0;
  while (i < lines.size()) {
    std::string name;
    if (!looks_like_rule_start(lines[i], &name)) {
      ++i;
      continue;
    }
    // Assemble the chunk: the start line plus continuation lines that are
    // indented deeper than the rule name and are not themselves rule starts
    // or blank-line-separated prose.
    std::size_t base_indent = indent_of(lines[i]);
    std::string chunk{lines[i]};
    std::size_t j = i + 1;
    while (j < lines.size()) {
      std::string_view next = lines[j];
      if (next.find_first_not_of(" \t") == std::string_view::npos) break;
      if (looks_like_rule_start(next, nullptr)) break;
      if (indent_of(next) <= base_indent) break;
      chunk += '\n';
      chunk += next;
      ++j;
    }
    ++local.candidate_chunks;
    try {
      Rule rule = parse_rule(chunk, source_doc);
      bool has_prose = false;
      // Detect prose-vals for statistics (they need adaptor resolution).
      struct ProseScan {
        static void scan(const NodePtr& n, bool& found) {
          if (!n || found) return;
          if (n->as<ProseVal>()) {
            found = true;
          } else if (const auto* a = n->as<Alternation>()) {
            for (const auto& c : a->alts) scan(c, found);
          } else if (const auto* c = n->as<Concatenation>()) {
            for (const auto& p : c->parts) scan(p, found);
          } else if (const auto* r = n->as<Repetition>()) {
            scan(r->element, found);
          } else if (const auto* o = n->as<Option>()) {
            scan(o->element, found);
          }
        }
      };
      ProseScan::scan(rule.definition, has_prose);
      if (has_prose) ++local.prose_val_rules;
      grammar.add(std::move(rule));
      ++local.parsed_rules;
    } catch (const ParseError& e) {
      ++local.parse_failures;
      if (errors) {
        errors->push_back("candidate '" + name + "': " + e.what());
      }
    }
    i = j;
  }
  if (stats) *stats = local;
  return grammar;
}

}  // namespace hdiff::abnf
