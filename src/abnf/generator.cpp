#include "abnf/generator.h"

#include <algorithm>
#include <cctype>

namespace hdiff::abnf {

namespace {

/// Encode a code point: raw byte for <= 0xFF (HTTP is a byte protocol),
/// UTF-8 for anything larger (Unicode-mutation payloads).
void append_code_point(std::string& out, std::uint32_t cp) {
  if (cp <= 0xFF) {
    out.push_back(static_cast<char>(cp));
  } else if (cp <= 0x7FF) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp <= 0xFFFF) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

/// Evenly-spaced truncation keeps variant diversity when capping a list.
void cap_evenly(std::vector<std::string>& v, std::size_t limit) {
  if (v.size() <= limit || limit == 0) return;
  std::vector<std::string> kept;
  kept.reserve(limit);
  double step = static_cast<double>(v.size()) / static_cast<double>(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    kept.push_back(std::move(v[static_cast<std::size_t>(i * step)]));
  }
  v = std::move(kept);
}

bool has_alpha(std::string_view s) {
  return std::any_of(s.begin(), s.end(), [](char c) {
    return std::isalpha(static_cast<unsigned char>(c));
  });
}

std::string upper_copy(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

Generator::Generator(Grammar grammar, GenOptions options)
    : grammar_(std::move(grammar)), options_(options) {}

void Generator::set_predefined(std::string_view rule_name,
                               std::vector<std::string> values) {
  predefined_[normalize_rule_name(rule_name)] = std::move(values);
}

bool Generator::has_predefined(std::string_view rule_name) const {
  return predefined_.contains(normalize_rule_name(rule_name));
}

std::string Generator::minimal(std::string_view rule_name) const {
  std::string key = normalize_rule_name(rule_name);
  tap_rule(key);
  auto it = minimal_cache_.find(key);
  if (it != minimal_cache_.end()) return it->second;
  const Rule* rule = grammar_.find(key);
  std::string result;
  if (rule) {
    std::vector<std::string> in_progress{key};
    result = minimal_node(rule->definition, in_progress);
  }
  minimal_cache_[key] = result;
  return result;
}

std::string Generator::minimal_node(const NodePtr& node,
                                    std::vector<std::string>& in_progress) const {
  if (!node) return {};
  if (const auto* a = node->as<Alternation>()) {
    // Choose the shortest alternative's minimal derivation.
    std::optional<std::string> best;
    for (const auto& alt : a->alts) {
      std::string s = minimal_node(alt, in_progress);
      if (!best || s.size() < best->size()) best = std::move(s);
      if (best->empty()) break;
    }
    return best.value_or("");
  }
  if (const auto* c = node->as<Concatenation>()) {
    std::string out;
    for (const auto& p : c->parts) out += minimal_node(p, in_progress);
    return out;
  }
  if (const auto* r = node->as<Repetition>()) {
    if (r->min == 0) return {};
    std::string unit = minimal_node(r->element, in_progress);
    std::string out;
    for (std::size_t i = 0; i < r->min; ++i) out += unit;
    return out;
  }
  if (node->as<Option>()) return {};
  if (const auto* cv = node->as<CharVal>()) return cv->text;
  if (const auto* nv = node->as<NumVal>()) {
    std::string out;
    if (nv->is_range) {
      append_code_point(out, nv->lo);
    } else {
      for (auto cp : nv->sequence) append_code_point(out, cp);
    }
    return out;
  }
  if (const auto* ref = node->as<RuleRef>()) {
    tap_rule(ref->name);
    auto pre = predefined_.find(ref->name);
    if (pre != predefined_.end() && !pre->second.empty()) {
      return pre->second.front();
    }
    if (std::find(in_progress.begin(), in_progress.end(), ref->name) !=
        in_progress.end()) {
      return {};  // cycle: contribute nothing
    }
    const Rule* rule = grammar_.find(ref->name);
    if (!rule) return {};
    in_progress.push_back(ref->name);
    std::string out = minimal_node(rule->definition, in_progress);
    in_progress.pop_back();
    return out;
  }
  return {};  // ProseVal: unresolved prose contributes nothing
}

std::vector<std::string> Generator::enumerate(std::string_view rule_name,
                                              std::size_t limit) const {
  std::string key = normalize_rule_name(rule_name);
  tap_rule(key);
  auto pre = predefined_.find(key);
  if (pre != predefined_.end()) {
    std::vector<std::string> out = pre->second;
    cap_evenly(out, std::min(limit, options_.max_variants));
    return out;
  }
  const Rule* rule = grammar_.find(key);
  if (!rule) return {};
  return enumerate_node(rule->definition, options_.max_depth,
                        std::min(limit, options_.max_variants));
}

std::vector<std::string> Generator::enumerate_node(const NodePtr& node,
                                                   std::size_t depth,
                                                   std::size_t limit) const {
  std::vector<std::string> out;
  if (!node || limit == 0) return out;

  if (const auto* a = node->as<Alternation>()) {
    for (const auto& alt : a->alts) {
      auto sub = enumerate_node(alt, depth, limit);
      for (auto& s : sub) {
        out.push_back(std::move(s));
        if (out.size() >= limit) return out;
      }
    }
    return out;
  }
  if (const auto* c = node->as<Concatenation>()) {
    out.emplace_back();
    for (const auto& p : c->parts) {
      auto sub = enumerate_node(p, depth, limit);
      if (sub.empty()) sub.emplace_back();
      std::vector<std::string> next;
      next.reserve(std::min(out.size() * sub.size(), limit));
      for (const auto& prefix : out) {
        for (const auto& suffix : sub) {
          next.push_back(prefix + suffix);
          if (next.size() >= limit * 4) break;  // soft cap before even-capping
        }
        if (next.size() >= limit * 4) break;
      }
      cap_evenly(next, limit);
      out = std::move(next);
    }
    return out;
  }
  if (const auto* r = node->as<Repetition>()) {
    auto elems = enumerate_node(r->element, depth, limit);
    if (elems.empty()) elems.emplace_back();
    std::size_t lo = r->min;
    std::size_t hi = r->max ? *r->max : r->min + options_.extra_repeats;
    hi = std::min(hi, lo + options_.extra_repeats);
    for (std::size_t count = lo; count <= hi; ++count) {
      if (count == 0) {
        out.emplace_back();
        continue;
      }
      for (const auto& e : elems) {
        std::string s;
        for (std::size_t i = 0; i < count; ++i) s += e;
        out.push_back(std::move(s));
        if (out.size() >= limit) return out;
      }
    }
    cap_evenly(out, limit);
    return out;
  }
  if (const auto* o = node->as<Option>()) {
    out.emplace_back();  // absent
    auto sub = enumerate_node(o->element, depth, limit - 1);
    for (auto& s : sub) {
      out.push_back(std::move(s));
      if (out.size() >= limit) break;
    }
    return out;
  }
  if (const auto* cv = node->as<CharVal>()) {
    out.push_back(cv->text);
    if (options_.literal_case_variants && !cv->case_sensitive &&
        has_alpha(cv->text)) {
      std::string upper = upper_copy(cv->text);
      if (upper != cv->text && out.size() < limit) out.push_back(std::move(upper));
    }
    return out;
  }
  if (const auto* nv = node->as<NumVal>()) {
    if (!nv->is_range) {
      std::string s;
      for (auto cp : nv->sequence) append_code_point(s, cp);
      out.push_back(std::move(s));
      return out;
    }
    // Representative points: lo, hi, and evenly spaced interior points.
    std::vector<std::uint32_t> points;
    std::uint32_t span = nv->hi - nv->lo;
    std::size_t want = std::max<std::size_t>(options_.range_points, 2);
    if (span + 1 <= want) {
      for (std::uint32_t cp = nv->lo; cp <= nv->hi; ++cp) points.push_back(cp);
    } else {
      points.push_back(nv->lo);
      for (std::size_t i = 1; i + 1 < want; ++i) {
        points.push_back(nv->lo +
                         static_cast<std::uint32_t>(span * i / (want - 1)));
      }
      points.push_back(nv->hi);
    }
    for (auto cp : points) {
      std::string s;
      append_code_point(s, cp);
      out.push_back(std::move(s));
      if (out.size() >= limit) break;
    }
    return out;
  }
  if (const auto* ref = node->as<RuleRef>()) {
    tap_rule(ref->name);
    auto pre = predefined_.find(ref->name);
    if (pre != predefined_.end()) {
      out = pre->second;
      cap_evenly(out, limit);
      return out;
    }
    const Rule* rule = grammar_.find(ref->name);
    if (!rule) return out;  // undefined: contributes nothing
    if (depth == 0) {
      out.push_back(minimal(ref->name));
      return out;
    }
    return enumerate_node(rule->definition, depth - 1, limit);
  }
  // ProseVal (unresolved): contributes nothing.
  return out;
}

std::string Generator::sample(std::string_view rule_name,
                              std::mt19937_64& rng) const {
  std::string key = normalize_rule_name(rule_name);
  tap_rule(key);
  auto pre = predefined_.find(key);
  if (pre != predefined_.end() && !pre->second.empty()) {
    return pre->second[rng() % pre->second.size()];
  }
  const Rule* rule = grammar_.find(key);
  if (!rule) return {};
  return sample_node(rule->definition, options_.max_depth, rng);
}

std::string Generator::sample_node(const NodePtr& node, std::size_t depth,
                                   std::mt19937_64& rng) const {
  if (!node) return {};
  if (const auto* a = node->as<Alternation>()) {
    return sample_node(a->alts[rng() % a->alts.size()], depth, rng);
  }
  if (const auto* c = node->as<Concatenation>()) {
    std::string out;
    for (const auto& p : c->parts) out += sample_node(p, depth, rng);
    return out;
  }
  if (const auto* r = node->as<Repetition>()) {
    std::size_t hi = r->max ? *r->max : r->min + options_.extra_repeats;
    hi = std::min(hi, r->min + options_.extra_repeats);
    std::size_t count = r->min + (hi > r->min ? rng() % (hi - r->min + 1) : 0);
    std::string out;
    for (std::size_t i = 0; i < count; ++i) {
      out += sample_node(r->element, depth, rng);
    }
    return out;
  }
  if (const auto* o = node->as<Option>()) {
    if (rng() % 2 == 0) return {};
    return sample_node(o->element, depth, rng);
  }
  if (const auto* cv = node->as<CharVal>()) {
    if (options_.literal_case_variants && !cv->case_sensitive &&
        has_alpha(cv->text) && rng() % 4 == 0) {
      return upper_copy(cv->text);
    }
    return cv->text;
  }
  if (const auto* nv = node->as<NumVal>()) {
    std::string out;
    if (nv->is_range) {
      append_code_point(out, nv->lo + rng() % (nv->hi - nv->lo + 1));
    } else {
      for (auto cp : nv->sequence) append_code_point(out, cp);
    }
    return out;
  }
  if (const auto* ref = node->as<RuleRef>()) {
    tap_rule(ref->name);
    auto pre = predefined_.find(ref->name);
    if (pre != predefined_.end() && !pre->second.empty()) {
      return pre->second[rng() % pre->second.size()];
    }
    const Rule* rule = grammar_.find(ref->name);
    if (!rule) return {};
    if (depth == 0) return minimal(ref->name);
    return sample_node(rule->definition, depth - 1, rng);
  }
  return {};
}

void load_default_http_predefined(Generator& gen) {
  gen.set_predefined("uri-host", {"h1.com", "h2.com", "127.0.0.1"});
  gen.set_predefined("host", {"h1.com", "h2.com", "127.0.0.1"});
  gen.set_predefined("IPv4address", {"127.0.0.1", "8.8.8.8"});
  gen.set_predefined("IPv6address", {"::1", "2001:db8::1"});
  gen.set_predefined("reg-name", {"h1.com", "h2.com", "example.org"});
  gen.set_predefined("port", {"80", "8080"});
  gen.set_predefined("token", {"chunked", "close", "gzip", "foo"});
  gen.set_predefined("field-name",
                     {"Host", "Content-Length", "Transfer-Encoding",
                      "Connection", "Expect", "Cookie"});
  gen.set_predefined("field-value",
                     {"h1.com", "10", "chunked", "close", "100-continue"});
  // Representative chunk framing values: one canonical size, one 32-bit
  // overflow, one over-limit, plus fixed data — grammar-driven combination
  // yields both well-formed and size-mismatched chunked bodies.
  gen.set_predefined("chunk-size", {"3", "100000000a", "ffffffffff"});
  gen.set_predefined("chunk-data", {"abc"});
  gen.set_predefined("chunk-ext", {"", ";ext=1"});
  gen.set_predefined("trailer-part", {"", "X-Trailer: v\r\n"});
  gen.set_predefined("method", {"GET", "HEAD", "POST", "PUT"});
  gen.set_predefined("absolute-path", {"/", "/index.html", "/a/b"});
  gen.set_predefined("query", {"a=1", "q=test"});
  gen.set_predefined("segment", {"index.html", "a"});
  gen.set_predefined("scheme", {"http", "https", "test"});
  gen.set_predefined("pseudonym", {"proxy1"});
  gen.set_predefined("quoted-string", {"\"v\""});
  gen.set_predefined("comment", {"(c)"});
}

}  // namespace hdiff::abnf
