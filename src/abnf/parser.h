// Recursive-descent parser for ABNF rule definitions (RFC 5234 §4, plus the
// RFC 7405 %s case-sensitive string extension used by newer HTTP documents).
//
// The parser consumes *one rule at a time*: the extractor (extractor.h) has
// already located rule boundaries in RFC text and joined continuation lines,
// so the input here is "rulename", "=" or "=/", and the element text.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "abnf/ast.h"

namespace hdiff::abnf {

/// Thrown on a syntax error; carries the offending text and offset.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t offset)
      : std::runtime_error(message), offset_(offset) {}
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// Parse the right-hand side of a rule ("elements" production) into an AST.
/// Comments (";" to end of line) and line breaks are treated as whitespace.
/// Throws ParseError on malformed input.
NodePtr parse_elements(std::string_view text);

/// Parse a complete rule line "name =/ elements".  `source_doc` is recorded
/// on the resulting Rule for provenance-aware merging.
Rule parse_rule(std::string_view line, std::string_view source_doc = {});

/// Parse a whole rulelist: a block of text containing multiple rules, with
/// continuation lines indented (standard RFC formatting).  Invalid rules are
/// skipped and reported through `errors` (if non-null) rather than aborting
/// the batch — RFC text extraction is inherently noisy.
Grammar parse_rulelist(std::string_view text, std::string_view source_doc = {},
                       std::vector<std::string>* errors = nullptr);

}  // namespace hdiff::abnf
