// ABNF grammar AST (RFC 5234).
//
// The paper's ABNF generator "recognizes that ABNF defines a tree with seven
// types of nodes … each node represents an operation that can guide a
// depth-first traversal".  These are those node types.  Nodes are immutable
// after construction and shared (`std::shared_ptr<const Node>`): a grammar is
// a DAG of rules referencing each other by name, and generation walks it
// without copying.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace hdiff::abnf {

struct Node;
using NodePtr = std::shared_ptr<const Node>;

/// alternation: exactly one of `alts` matches ("a / b / c").
struct Alternation {
  std::vector<NodePtr> alts;
};

/// concatenation: all of `parts` in order ("a b c").
struct Concatenation {
  std::vector<NodePtr> parts;
};

/// repetition: `element` repeated between `min` and `max` times
/// ("*a", "1*3a", "2a").  `max == nullopt` means unbounded.
struct Repetition {
  std::size_t min = 0;
  std::optional<std::size_t> max;
  NodePtr element;
};

/// option: zero or one occurrence ("[ a ]").
struct Option {
  NodePtr element;
};

/// char-val: a literal string.  ABNF literals are case-insensitive unless
/// prefixed with %s (RFC 7405).
struct CharVal {
  std::string text;
  bool case_sensitive = false;
};

/// num-val: either a dot-joined sequence of exact code points (%x48.54.54.50)
/// or an inclusive range (%x41-5A).
struct NumVal {
  bool is_range = false;
  std::vector<std::uint32_t> sequence;  // when !is_range
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;                 // when is_range
};

/// rule reference by (case-insensitive, stored lower-case) name.
struct RuleRef {
  std::string name;
};

/// prose-val: free-text escape hatch "<host, see [RFC3986], Section 3.2.2>".
/// The adaptor resolves these into rule references or predefined values.
struct ProseVal {
  std::string text;
};

/// A grammar node: one of the seven ABNF constructs.
struct Node {
  std::variant<Alternation, Concatenation, Repetition, Option, CharVal, NumVal,
               RuleRef, ProseVal>
      v;

  template <typename T>
  const T* as() const noexcept {
    return std::get_if<T>(&v);
  }
};

/// Factory helpers (each returns a shared immutable node).
NodePtr make_alternation(std::vector<NodePtr> alts);
NodePtr make_concatenation(std::vector<NodePtr> parts);
NodePtr make_repetition(std::size_t min, std::optional<std::size_t> max,
                        NodePtr element);
NodePtr make_option(NodePtr element);
NodePtr make_char_val(std::string text, bool case_sensitive = false);
NodePtr make_num_sequence(std::vector<std::uint32_t> seq);
NodePtr make_num_range(std::uint32_t lo, std::uint32_t hi);
NodePtr make_rule_ref(std::string_view name);
NodePtr make_prose_val(std::string text);

/// A named rule.  `incremental` marks "=/" definitions that extend an
/// existing alternation; `source_doc` records which document defined it
/// (used by the adaptor's most-recent-wins merging).
struct Rule {
  std::string name;       ///< original spelling
  NodePtr definition;
  bool incremental = false;
  std::string source_doc; ///< e.g. "rfc7230"
};

/// Normalize a rule name for lookup: ABNF rule names are case-insensitive
/// and '-'/'_' are treated as equivalent by some documents.
std::string normalize_rule_name(std::string_view name);

/// A set of rules keyed by normalized name.
class Grammar {
 public:
  /// Add or extend a rule.  An incremental rule ("=/") merges into an
  /// existing alternation; a plain redefinition replaces the previous one.
  void add(Rule rule);

  const Rule* find(std::string_view name) const;
  bool contains(std::string_view name) const { return find(name) != nullptr; }
  std::size_t size() const { return rules_.size(); }

  const std::map<std::string, Rule>& rules() const { return rules_; }

  /// Names referenced anywhere in the grammar but not defined in it.
  std::vector<std::string> undefined_references() const;

  /// All rule-reference names occurring under `node`.
  static void collect_refs(const NodePtr& node, std::vector<std::string>& out);

 private:
  std::map<std::string, Rule> rules_;  // key: normalized name
};

/// Render a node / rule back to ABNF-ish text (for reports and debugging).
std::string to_string(const NodePtr& node);
std::string to_string(const Rule& rule);

}  // namespace hdiff::abnf
