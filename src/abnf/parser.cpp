#include "abnf/parser.h"

#include <cctype>

namespace hdiff::abnf {

namespace {

/// Cursor over the element text.  Whitespace (including newlines, which only
/// appear after the extractor has joined continuations) and comments are
/// skipped between tokens.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        ++pos_;
      } else if (c == ';') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool eof() {
    skip_ws();
    return pos_ >= text_.size();
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char peek_at(std::size_t off) const {
    return pos_ + off < text_.size() ? text_[pos_ + off] : '\0';
  }
  char take() { return text_[pos_++]; }
  std::size_t pos() const { return pos_; }

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg + " at offset " + std::to_string(pos_), pos_);
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

bool is_rule_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_';
}

bool is_digit(char c) { return c >= '0' && c <= '9'; }

NodePtr parse_alternation(Cursor& cur);

std::string parse_rule_name(Cursor& cur) {
  cur.skip_ws();
  if (!std::isalpha(static_cast<unsigned char>(cur.peek()))) {
    cur.fail("expected rule name");
  }
  std::string name;
  while (is_rule_name_char(cur.peek())) name.push_back(cur.take());
  return name;
}

NodePtr parse_char_val(Cursor& cur, bool case_sensitive) {
  // opening quote already peeked
  cur.take();  // '"'
  std::string text;
  while (cur.peek() != '"') {
    if (cur.peek() == '\0') cur.fail("unterminated char-val");
    text.push_back(cur.take());
  }
  cur.take();  // closing '"'
  return make_char_val(std::move(text), case_sensitive);
}

std::uint32_t parse_number(Cursor& cur, int base) {
  std::uint32_t value = 0;
  bool any = false;
  while (true) {
    char c = cur.peek();
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      break;
    }
    if (digit >= base) break;
    value = value * static_cast<std::uint32_t>(base) +
            static_cast<std::uint32_t>(digit);
    cur.take();
    any = true;
  }
  if (!any) cur.fail("expected digits in num-val");
  return value;
}

NodePtr parse_num_val(Cursor& cur) {
  cur.take();  // '%'
  char kind = cur.take();
  int base;
  switch (kind) {
    case 'x': case 'X': base = 16; break;
    case 'd': case 'D': base = 10; break;
    case 'b': case 'B': base = 2; break;
    case 's': case 'S':
      if (cur.peek() == '"') return parse_char_val(cur, /*case_sensitive=*/true);
      cur.fail("expected string after %s");
    case 'i': case 'I':
      if (cur.peek() == '"') return parse_char_val(cur, /*case_sensitive=*/false);
      cur.fail("expected string after %i");
    default:
      cur.fail(std::string("unknown num-val base '") + kind + "'");
  }
  std::uint32_t first = parse_number(cur, base);
  if (cur.peek() == '-') {
    cur.take();
    std::uint32_t hi = parse_number(cur, base);
    return make_num_range(first, hi);
  }
  std::vector<std::uint32_t> seq{first};
  while (cur.peek() == '.') {
    cur.take();
    seq.push_back(parse_number(cur, base));
  }
  return make_num_sequence(std::move(seq));
}

NodePtr parse_prose_val(Cursor& cur) {
  cur.take();  // '<'
  std::string text;
  while (cur.peek() != '>') {
    if (cur.peek() == '\0') cur.fail("unterminated prose-val");
    text.push_back(cur.take());
  }
  cur.take();
  return make_prose_val(std::move(text));
}

NodePtr parse_element(Cursor& cur) {
  cur.skip_ws();
  char c = cur.peek();
  if (c == '(') {
    cur.take();
    NodePtr inner = parse_alternation(cur);
    cur.skip_ws();
    if (cur.peek() != ')') cur.fail("expected ')'");
    cur.take();
    return inner;
  }
  if (c == '[') {
    cur.take();
    NodePtr inner = parse_alternation(cur);
    cur.skip_ws();
    if (cur.peek() != ']') cur.fail("expected ']'");
    cur.take();
    return make_option(std::move(inner));
  }
  if (c == '"') return parse_char_val(cur, /*case_sensitive=*/false);
  if (c == '%') return parse_num_val(cur);
  if (c == '<') return parse_prose_val(cur);
  if (std::isalpha(static_cast<unsigned char>(c))) {
    return make_rule_ref(parse_rule_name(cur));
  }
  cur.fail("expected element");
}

/// Expand the RFC 7230 §7 list extension "m#n element" into plain ABNF:
///   1#element => element *( OWS "," OWS element )
///   #element  => [ 1#element ]
/// (The HTTP RFCs define this expansion themselves; recipients must also
/// accept empty list elements, which the generator covers via mutation.)
NodePtr expand_list_rule(std::size_t min, std::optional<std::size_t> max,
                         NodePtr element) {
  NodePtr ows = make_rule_ref("OWS");
  NodePtr comma = make_char_val(",");
  NodePtr tail_unit = make_concatenation({ows, comma, ows, element});
  std::optional<std::size_t> tail_max;
  if (max && *max > 0) tail_max = *max - 1;
  std::size_t tail_min = min > 1 ? min - 1 : 0;
  NodePtr tail = make_repetition(tail_min, tail_max, std::move(tail_unit));
  NodePtr list = make_concatenation({element, std::move(tail)});
  if (min == 0) return make_option(std::move(list));
  return list;
}

NodePtr parse_repetition(Cursor& cur) {
  cur.skip_ws();
  bool has_repeat = false;
  bool is_list = false;
  std::size_t min = 0;
  std::optional<std::size_t> max;

  if (is_digit(cur.peek()) || cur.peek() == '*' || cur.peek() == '#') {
    std::size_t lo = 0;
    bool lo_present = false;
    while (is_digit(cur.peek())) {
      lo = lo * 10 + static_cast<std::size_t>(cur.take() - '0');
      lo_present = true;
    }
    if (cur.peek() == '*' || cur.peek() == '#') {
      is_list = cur.take() == '#';
      has_repeat = true;
      min = lo_present ? lo : 0;
      std::size_t hi = 0;
      bool hi_present = false;
      while (is_digit(cur.peek())) {
        hi = hi * 10 + static_cast<std::size_t>(cur.take() - '0');
        hi_present = true;
      }
      if (hi_present) max = hi;
    } else if (lo_present) {
      has_repeat = true;
      min = lo;
      max = lo;
    }
  }

  NodePtr element = parse_element(cur);
  if (!has_repeat) return element;
  if (is_list) return expand_list_rule(min, max, std::move(element));
  return make_repetition(min, max, std::move(element));
}

NodePtr parse_concatenation(Cursor& cur) {
  std::vector<NodePtr> parts;
  parts.push_back(parse_repetition(cur));
  while (true) {
    cur.skip_ws();
    char c = cur.peek();
    if (c == '\0' || c == '/' || c == ')' || c == ']') break;
    parts.push_back(parse_repetition(cur));
  }
  return make_concatenation(std::move(parts));
}

NodePtr parse_alternation(Cursor& cur) {
  std::vector<NodePtr> alts;
  alts.push_back(parse_concatenation(cur));
  while (true) {
    cur.skip_ws();
    if (cur.peek() != '/') break;
    cur.take();
    alts.push_back(parse_concatenation(cur));
  }
  return make_alternation(std::move(alts));
}

}  // namespace

NodePtr parse_elements(std::string_view text) {
  Cursor cur(text);
  NodePtr node = parse_alternation(cur);
  if (!cur.eof()) cur.fail("trailing input after elements");
  return node;
}

Rule parse_rule(std::string_view line, std::string_view source_doc) {
  Cursor cur(line);
  std::string name = parse_rule_name(cur);
  cur.skip_ws();
  if (cur.peek() != '=') cur.fail("expected '=' after rule name");
  cur.take();
  bool incremental = false;
  if (cur.peek() == '/') {
    cur.take();
    incremental = true;
  }
  NodePtr def = parse_alternation(cur);
  if (!cur.eof()) cur.fail("trailing input after rule");
  Rule rule;
  rule.name = std::move(name);
  rule.definition = std::move(def);
  rule.incremental = incremental;
  rule.source_doc.assign(source_doc);
  return rule;
}

Grammar parse_rulelist(std::string_view text, std::string_view source_doc,
                       std::vector<std::string>* errors) {
  Grammar grammar;
  // Split into rule chunks: a new rule starts at a line whose first column is
  // a rule-name character; indented lines continue the previous rule.
  std::vector<std::string> chunks;
  std::string current;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    bool starts_rule =
        !line.empty() && std::isalpha(static_cast<unsigned char>(line[0]));
    if (starts_rule) {
      if (!current.empty()) chunks.push_back(std::move(current));
      current.assign(line);
    } else if (!current.empty()) {
      current += '\n';
      current += line;
    }
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  if (!current.empty()) chunks.push_back(std::move(current));

  for (const auto& chunk : chunks) {
    try {
      Rule rule = parse_rule(chunk, source_doc);
      // A plain "=" redefinition inside one rulelist is a conflict, not a
      // revision: silently letting the last writer win hid authoring errors
      // from every downstream consumer.  Keep the first definition and
      // report the duplicate ("=/" increments still merge as specified).
      if (!rule.incremental && grammar.contains(rule.name)) {
        if (errors) {
          errors->push_back("duplicate definition of rule '" + rule.name +
                            "' (first definition kept)");
        }
        continue;
      }
      grammar.add(std::move(rule));
    } catch (const ParseError& e) {
      if (errors) {
        errors->push_back("rule chunk '" + chunk.substr(0, 40) +
                          "': " + e.what());
      }
    }
  }
  return grammar;
}

}  // namespace hdiff::abnf
