#include "abnf/adaptor.h"

#include <cctype>
#include <functional>
#include <set>

namespace hdiff::abnf {

namespace {

/// Structurally rewrite a node tree, applying `fn` to each node bottom-up.
/// `fn` returns nullptr to keep the (possibly rebuilt) node unchanged.
NodePtr rewrite(const NodePtr& node,
                const std::function<NodePtr(const NodePtr&)>& fn) {
  if (!node) return node;
  NodePtr rebuilt = node;
  if (const auto* a = node->as<Alternation>()) {
    std::vector<NodePtr> alts;
    alts.reserve(a->alts.size());
    bool changed = false;
    for (const auto& c : a->alts) {
      NodePtr r = rewrite(c, fn);
      changed = changed || r != c;
      alts.push_back(std::move(r));
    }
    if (changed) rebuilt = make_alternation(std::move(alts));
  } else if (const auto* c = node->as<Concatenation>()) {
    std::vector<NodePtr> parts;
    parts.reserve(c->parts.size());
    bool changed = false;
    for (const auto& p : c->parts) {
      NodePtr r = rewrite(p, fn);
      changed = changed || r != p;
      parts.push_back(std::move(r));
    }
    if (changed) rebuilt = make_concatenation(std::move(parts));
  } else if (const auto* r = node->as<Repetition>()) {
    NodePtr e = rewrite(r->element, fn);
    if (e != r->element) rebuilt = make_repetition(r->min, r->max, std::move(e));
  } else if (const auto* o = node->as<Option>()) {
    NodePtr e = rewrite(o->element, fn);
    if (e != o->element) rebuilt = make_option(std::move(e));
  }
  NodePtr replaced = fn(rebuilt);
  return replaced ? replaced : rebuilt;
}

}  // namespace

void Adaptor::register_document(std::string doc_name, Grammar grammar) {
  documents_[normalize_rule_name(doc_name)] = std::move(grammar);
}

void Adaptor::set_custom_rule(std::string_view rule_name, NodePtr definition) {
  custom_rules_[normalize_rule_name(rule_name)] = std::move(definition);
}

bool Adaptor::parse_prose_reference(std::string_view prose,
                                    std::string* rule_name,
                                    std::string* doc_name) {
  // Shape: "host, see [RFC3986], Section 3.2.2"
  std::size_t comma = prose.find(',');
  std::string_view name =
      comma == std::string_view::npos ? prose : prose.substr(0, comma);
  while (!name.empty() && name.back() == ' ') name.remove_suffix(1);
  while (!name.empty() && name.front() == ' ') name.remove_prefix(1);
  if (name.empty()) return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_') {
      return false;
    }
  }
  std::size_t open = prose.find('[');
  std::size_t close = prose.find(']', open == std::string_view::npos ? 0 : open);
  if (open == std::string_view::npos || close == std::string_view::npos) {
    return false;
  }
  std::string_view doc = prose.substr(open + 1, close - open - 1);
  if (doc.empty()) return false;
  if (rule_name) rule_name->assign(name);
  if (doc_name) doc_name->assign(doc);
  return true;
}

Grammar Adaptor::adapt(const std::vector<std::string>& doc_order,
                       AdaptReport* report) const {
  AdaptReport local;
  Grammar merged;

  // 1. Merge in order; Grammar::add gives later documents precedence
  //    ("use the most recent RFCs for repeated rule names").
  for (const auto& doc : doc_order) {
    auto it = documents_.find(normalize_rule_name(doc));
    if (it == documents_.end()) continue;
    for (const auto& [key, rule] : it->second.rules()) {
      merged.add(rule);
    }
  }

  // 2. Resolve prose rules, expanding referenced documents on demand.
  //    Expansion can introduce new prose rules (rfc3986 references rfc5234,
  //    etc.), so iterate to a fixed point with a small bound.
  std::set<std::string> expanded;
  for (int round = 0; round < 5; ++round) {
    bool any_prose = false;
    std::vector<std::pair<std::string, NodePtr>> replacements;
    for (const auto& [key, rule] : merged.rules()) {
      bool changed = false;
      NodePtr def = rewrite(rule.definition, [&](const NodePtr& n) -> NodePtr {
        const auto* p = n->as<ProseVal>();
        if (!p) return nullptr;
        any_prose = true;
        std::string ref_rule, ref_doc;
        if (!parse_prose_reference(p->text, &ref_rule, &ref_doc)) {
          return nullptr;  // unresolvable prose; left for custom substitution
        }
        changed = true;
        local.resolved_prose.push_back(rule.name + " -> " + ref_rule + " [" +
                                       ref_doc + "]");
        if (!expanded.contains(ref_doc)) expanded.insert(ref_doc);
        return make_rule_ref(ref_rule);
      });
      if (changed) replacements.emplace_back(key, std::move(def));
    }
    for (auto& [key, def] : replacements) {
      Rule updated = *merged.find(key);
      updated.definition = std::move(def);
      merged.add(std::move(updated));
    }
    // Pull in rules from documents referenced by resolved prose, without
    // overriding anything already defined.
    for (const auto& doc : expanded) {
      auto it = documents_.find(normalize_rule_name(doc));
      if (it == documents_.end()) continue;
      bool newly = true;
      for (const auto& d : local.expanded_documents) {
        if (d == doc) newly = false;
      }
      if (newly) local.expanded_documents.push_back(doc);
      for (const auto& [key, rule] : it->second.rules()) {
        if (!merged.contains(key)) merged.add(rule);
      }
    }
    if (!any_prose) break;
  }

  // 3. Substitute custom definitions for anything still undefined.
  for (const auto& name : merged.undefined_references()) {
    auto it = custom_rules_.find(name);
    if (it != custom_rules_.end()) {
      Rule custom;
      custom.name = name;
      custom.definition = it->second;
      custom.source_doc = "custom";
      merged.add(std::move(custom));
      local.custom_substitutions.push_back(name);
    }
  }

  local.unresolved = merged.undefined_references();
  if (report) *report = std::move(local);
  return merged;
}

}  // namespace hdiff::abnf
