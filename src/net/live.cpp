#include "net/live.h"

#include <utility>

#include "http/header_util.h"
#include "http/view.h"

namespace hdiff::net {

namespace {

impls::BodyFraming framing_from_string(std::string_view s) noexcept {
  if (s == "content-length") return impls::BodyFraming::kContentLength;
  if (s == "chunked") return impls::BodyFraming::kChunked;
  if (s == "until-close") return impls::BodyFraming::kUntilClose;
  if (s == "n/a") return impls::BodyFraming::kNotApplicable;
  return impls::BodyFraming::kNone;
}

bool parse_size(std::string_view s, std::size_t& out) noexcept {
  if (s.empty()) return false;
  std::size_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  out = value;
  return true;
}

}  // namespace

impls::ServerVerdict verdict_from_wire(std::string_view wire) {
  thread_local http::ResponseView view;
  thread_local std::string scratch;
  http::parse_response_view(wire, view);

  impls::ServerVerdict v;
  v.status = view.status;
  // render_response maps `incomplete` to 408; no model answers 408 itself.
  v.incomplete = view.status == 408;
  if (const http::HeaderView* h = view.find_first("X-HDiff-Impl")) {
    v.impl.assign(view.joined_value(*h, scratch));
  }
  if (const http::HeaderView* h = view.find_first("X-HDiff-Host")) {
    const std::string_view host = view.joined_value(*h, scratch);
    if (host != "-") v.host.assign(host);
  }
  if (const http::HeaderView* h = view.find_first("X-HDiff-Framing")) {
    v.framing = framing_from_string(view.joined_value(*h, scratch));
  }
  if (const http::HeaderView* h = view.find_first("X-HDiff-Leftover")) {
    std::size_t n = 0;
    if (parse_size(view.joined_value(*h, scratch), n)) {
      v.leftover.assign(n, '?');  // only the length survives the wire
    }
  }
  if (const http::HeaderView* h = view.find_first("Connection")) {
    v.close_connection =
        http::iequals(http::last_list_item(view.joined_value(*h, scratch)),
                      "close");
  }
  // The server frames its echo body with Content-Length.
  if (const http::HeaderView* h = view.find_first("Content-Length")) {
    std::size_t n = 0;
    if (parse_size(view.joined_value(*h, scratch), n)) {
      v.body.assign(view.after_headers().substr(0, n));
    }
  }
  view.clear();  // do not keep borrowing `wire` past this call
  return v;
}

LiveFleet::LiveFleet(std::vector<const impls::HttpImplementation*> backends,
                     LiveFleetConfig config)
    : backends_(std::move(backends)),
      config_(config),
      loop_enabled_(net_loop_enabled(config.mode)) {
  servers_.reserve(backends_.size());
  for (const impls::HttpImplementation* backend : backends_) {
    servers_.push_back(std::make_unique<ModelServer>(
        *backend, config_.obs, config_.server_concurrency,
        config_.service_delay_ms));
  }
}

std::uint16_t LiveFleet::port(std::size_t i) const noexcept {
  return i < servers_.size() ? servers_[i]->port() : 0;
}

ChainObservation LiveFleet::fold_case(std::string_view uuid,
                                      std::string_view raw,
                                      const TcpResult* legs) const {
  ChainObservation obs;
  obs.uuid.assign(uuid);
  obs.request.assign(raw);
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    const TcpResult& leg = legs[b];
    if (!leg.ok()) {
      // Same contract as Chain::observe on a ChainFault: one bad leg
      // poisons the case — no partial verdict maps reach detection.
      obs.direct.clear();
      obs.fault = leg.error;
      obs.fault_detail = "live ";
      obs.fault_detail += backends_[b]->name();
      obs.fault_detail += ": ";
      obs.fault_detail += to_string(leg.error);
      return obs;
    }
    obs.direct.emplace(std::string(backends_[b]->name()),
                       verdict_from_wire(leg.bytes));
  }
  return obs;
}

ChainObservation LiveFleet::observe(std::string_view uuid,
                                    std::string_view raw,
                                    const RetryPolicy& retry) {
  const std::vector<LiveCase> one{{uuid, raw}};
  return std::move(observe_batch(one, retry).front());
}

std::vector<ChainObservation> LiveFleet::observe_batch(
    const std::vector<LiveCase>& cases, const RetryPolicy& retry) {
  const std::size_t width = backends_.size();
  std::vector<TcpResult> legs;
  if (loop_enabled_) {
    std::vector<RoundtripJob> jobs;
    jobs.reserve(cases.size() * width);
    for (const LiveCase& c : cases) {
      for (std::size_t b = 0; b < width; ++b) {
        jobs.push_back(RoundtripJob{servers_[b]->port(), c.raw});
      }
    }
    EventLoopConfig loop_config;
    loop_config.idle_timeout_ms = config_.idle_timeout_ms;
    loop_config.force_poll = config_.force_poll;
    loop_config.obs = config_.obs;
    // A fresh loop per batch keeps observe_batch callable from concurrent
    // executor workers; construction is one epoll_create1 against a batch
    // of real roundtrips.
    EventLoop loop(loop_config);
    legs = loop.run_batch_retry(jobs, retry);
  } else {
    legs.reserve(cases.size() * width);
    for (const LiveCase& c : cases) {
      for (std::size_t b = 0; b < width; ++b) {
        legs.push_back(tcp_roundtrip_retry(servers_[b]->port(), c.raw, retry,
                                           config_.idle_timeout_ms));
      }
    }
  }

  std::vector<ChainObservation> out;
  out.reserve(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    out.push_back(
        fold_case(cases[i].uuid, cases[i].raw, legs.data() + i * width));
  }
  return out;
}

}  // namespace hdiff::net
