#include "net/error.h"

#include <algorithm>

namespace hdiff::net {

namespace {

/// splitmix64 — deterministic 64-bit mix for the jitter hash.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash_bytes(std::uint64_t seed, std::string_view bytes) noexcept {
  std::uint64_t h = seed ^ 14695981039346656037ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return mix64(h);
}

}  // namespace

std::string_view to_string(ChainError e) noexcept {
  switch (e) {
    case ChainError::kNone: return "none";
    case ChainError::kTimeout: return "timeout";
    case ChainError::kReset: return "reset";
    case ChainError::kTruncated: return "truncated";
    case ChainError::kConnectFail: return "connect-fail";
    case ChainError::kMalformed: return "malformed";
  }
  return "unknown";
}

int RetryPolicy::backoff_ms(int completed_attempts,
                            std::string_view key) const noexcept {
  const int shift = std::min(completed_attempts, 16);
  long long delay = static_cast<long long>(std::max(backoff_base_ms, 0))
                    << shift;
  delay = std::min<long long>(delay, std::max(backoff_max_ms, 0));
  if (delay <= 0) return 0;
  const std::uint64_t h =
      mix64(hash_bytes(jitter_seed, key) ^
            static_cast<std::uint64_t>(completed_attempts));
  const long long half = delay / 2;
  return static_cast<int>(half + static_cast<long long>(
                                     h % static_cast<std::uint64_t>(delay - half + 1)));
}

}  // namespace hdiff::net
