// Deterministic fault injection for the test chain.
//
// The paper's real deployment (Fig. 6) drives remote HTTP implementations
// that stall, reset connections and truncate responses.  To prove the
// pipeline degrades gracefully under exactly those conditions, `FaultPlan`
// decides — deterministically, from a seed — which model calls misbehave,
// and `FaultyImplementation` wraps any `HttpImplementation` so the planned
// faults surface as `ChainFault` throws (or injected latency) instead of
// silently-wrong verdicts.  The chain converts the throw into a structured
// `ChainObservation::fault`, the executor retries/quarantines, and the
// detection layer never sees a fault-induced false differential.
//
// Thread-safety: `FaultPlan` is internally synchronized and may be shared
// by decorators across executor workers.  `FaultyImplementation` keeps the
// `const`-entry-point contract of chain.h; its only state is the shared
// plan.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "impls/model.h"
#include "net/error.h"
#include "obs/obs.h"

namespace hdiff::net {

/// What an injected fault does to the wrapped call.
enum class FaultKind {
  kDelay,        ///< sleep `delay_ms`, then answer normally (latency only)
  kStall,        ///< sleep `delay_ms`, then fail as ChainError::kTimeout
  kReset,        ///< fail as ChainError::kReset
  kTruncate,     ///< fail as ChainError::kTruncated (partial bytes detected)
  kConnectFail,  ///< fail as ChainError::kConnectFail
};

inline constexpr std::size_t kFaultKindCount = 5;

std::string_view to_string(FaultKind k) noexcept;

struct FaultPlanConfig {
  std::uint64_t seed = 1;

  /// Probability that a given call *site* — the (operation, implementation,
  /// input bytes) triple — is a fault victim.  Victim selection is a pure
  /// hash of the seed and the triple, so it is identical across runs,
  /// thread schedules and retries: a victim site faults its first
  /// `max_faults_per_site` calls and then behaves normally forever
  /// (intermittent fault), or faults every call when that cap is 0
  /// (persistent fault).
  double rate = 0.0;

  /// Intermittency: how many times a victim site faults before recovering.
  /// 0 = never recovers (persistent).  With `k` and an executor retry
  /// budget of at least k+1 attempts per distinct victim site touched by a
  /// case, every case eventually observes fault-free.
  std::size_t max_faults_per_site = 1;

  /// Additionally fault every Nth call through the plan, regardless of
  /// site (0 = off).  The global counter depends on call order, so this
  /// mode is for serial/self-test use; `rate` is the schedule-independent
  /// mode.
  std::size_t every_nth = 0;

  /// Fault kinds to inject; a victim site's kind is chosen by hash, every-
  /// Nth faults cycle through the list.
  std::vector<FaultKind> kinds = {FaultKind::kReset, FaultKind::kTruncate,
                                  FaultKind::kConnectFail};

  /// Sleep for kDelay / kStall faults.
  int delay_ms = 1;
};

/// Deterministic, seedable fault schedule.  See FaultPlanConfig.
class FaultPlan {
 public:
  struct Stats {
    std::size_t calls = 0;     ///< model calls consulted
    std::size_t injected = 0;  ///< faults injected (kDelay included)
    std::array<std::size_t, kFaultKindCount> by_kind{};
  };

  explicit FaultPlan(FaultPlanConfig config);

  /// Decide the fault (if any) for one call of `op` ("parse", "forward",
  /// "respond", "relay") on implementation `impl` with input `bytes`.
  std::optional<FaultKind> decide(std::string_view op, std::string_view impl,
                                  std::string_view bytes);

  /// Pure victim query (no counters touched): would `rate` select this
  /// call site?  Lets tests predict the schedule.
  bool is_victim_site(std::string_view op, std::string_view impl,
                      std::string_view bytes) const noexcept;

  const FaultPlanConfig& config() const noexcept { return config_; }
  Stats stats() const;

 private:
  std::uint64_t site_hash(std::string_view op, std::string_view impl,
                          std::string_view bytes) const noexcept;

  FaultPlanConfig config_;
  mutable std::mutex mutex_;
  std::size_t calls_ = 0;
  Stats stats_;
  std::unordered_map<std::uint64_t, std::size_t> faults_by_site_;
};

/// Decorator injecting the plan's faults in front of any implementation.
/// Failing kinds throw ChainFault *before* touching the wrapped model —
/// exactly like a socket that dies before the peer answers.
class FaultyImplementation final : public impls::ImplementationDecorator {
 public:
  /// `obs`, when enabled, counts injections in
  /// `hdiff_faults_injected_total` and marks each with a trace instant
  /// (name/counter resolved once here, not per call).
  FaultyImplementation(const impls::HttpImplementation& inner,
                       std::shared_ptr<FaultPlan> plan,
                       obs::Observability obs = {});

  impls::ServerVerdict parse_request(std::string_view raw) const override;
  impls::ProxyVerdict forward_request(std::string_view raw) const override;
  std::string respond(std::string_view raw) const override;
  impls::RelayOutcome relay_response(std::string_view backend_bytes,
                                     http::Method request_method)
      const override;

 private:
  void maybe_fault(std::string_view op, std::string_view bytes) const;

  std::shared_ptr<FaultPlan> plan_;
  obs::Counter* injected_ = nullptr;  ///< hdiff_faults_injected_total
  obs::TraceSink* trace_ = nullptr;
};

/// Wrap every member of `fleet` with the same plan.  Non-owning with
/// respect to `fleet`: the originals must outlive the returned decorators.
std::vector<std::unique_ptr<impls::HttpImplementation>> wrap_fleet_with_faults(
    const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet,
    std::shared_ptr<FaultPlan> plan, obs::Observability obs = {});

}  // namespace hdiff::net
