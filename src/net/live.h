// Live back-end fleet: every behaviour model served as a real loopback HTTP
// origin (ModelServer), probed over actual sockets instead of in-process
// calls.  This is the workload the event-loop driver (event_loop.h) exists
// for — each observation is dominated by network waits, so batching N cases
// through one `EventLoop` overlaps what the blocking client must serialize.
//
// The fleet produces `ChainObservation`s whose `direct` map is reconstructed
// from the wire via `verdict_from_wire`, so the same executor/detection
// pipeline that consumes in-process chain observations runs unchanged.  Both
// probe modes (blocking roundtrips and the event loop) classify and retry
// with the same machinery, so their observations — and therefore findings —
// are byte-identical; `hdiff selftest --net-loop` asserts exactly that.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "impls/model.h"
#include "impls/verdict.h"
#include "net/chain.h"
#include "net/error.h"
#include "net/event_loop.h"
#include "net/tcp.h"
#include "obs/obs.h"

namespace hdiff::net {

/// Reconstruct a `ServerVerdict` from the response bytes a ModelServer
/// renders (tcp.cpp render_response).  The projection is lossy where the
/// wire is: `reason` and `version` are not echoed and stay defaulted, and
/// the leftover bytes travel only as a length (X-HDiff-Leftover), so the
/// verdict carries a placeholder string of that length.  The mapping is
/// deterministic, so verdicts recovered from identical wire bytes compare
/// equal — which is all cross-mode finding identity needs.
impls::ServerVerdict verdict_from_wire(std::string_view wire);

struct LiveFleetConfig {
  /// Probe transport: kOff = one blocking `tcp_roundtrip_retry` per leg,
  /// kOn/kAuto(resolved) = all legs of a batch multiplexed through one
  /// EventLoop.
  NetLoopMode mode = NetLoopMode::kAuto;
  /// Per-connection silence window (same meaning in both modes).
  int idle_timeout_ms = 500;
  /// Accept/serve threads per ModelServer; the event loop needs >1 to have
  /// its concurrent roundtrips actually serviced concurrently.
  int server_concurrency = 4;
  /// Simulated per-request service time on every backend (ModelServer's
  /// `service_delay_ms`) — benchmark knob for the latency-bound regime the
  /// event loop targets; 0 keeps the historical instant-answer servers.
  int service_delay_ms = 0;
  /// Force the poll() backend of the event loop (testing).
  bool force_poll = false;
  obs::Observability obs{};
};

/// One scheduled case for `observe_batch`.  Both views are borrowed for the
/// duration of the call.
struct LiveCase {
  std::string_view uuid;
  std::string_view raw;
};

/// Serves `backends` as live origins for its own lifetime and observes test
/// cases against all of them.  Thread-safe: `observe`/`observe_batch` may be
/// called from concurrent executor workers (each batch call drives its own
/// EventLoop; the blocking path is per-call already).
class LiveFleet {
 public:
  explicit LiveFleet(std::vector<const impls::HttpImplementation*> backends,
                     LiveFleetConfig config = {});

  /// Whether batches go through the event loop (config mode resolved).
  bool loop_enabled() const noexcept { return loop_enabled_; }

  const std::vector<const impls::HttpImplementation*>& backends()
      const noexcept {
    return backends_;
  }

  /// Port the i-th backend is served on (tests).
  std::uint16_t port(std::size_t i) const noexcept;

  /// Observe one case: one roundtrip per backend, retried under `retry`.
  /// Any leg still failing after retries faults the whole observation
  /// (direct map cleared, `fault`/`fault_detail` set) exactly like the
  /// in-process chain does, so executor quarantine semantics carry over.
  ChainObservation observe(std::string_view uuid, std::string_view raw,
                           const RetryPolicy& retry = {});

  /// Observe a whole scheduled block: `cases.size() * backends.size()`
  /// roundtrips, multiplexed through one EventLoop when the loop is
  /// enabled (sequential blocking roundtrips otherwise).  `out[i]`
  /// corresponds to `cases[i]` and is byte-identical to what `observe`
  /// would have produced for it.
  std::vector<ChainObservation> observe_batch(
      const std::vector<LiveCase>& cases, const RetryPolicy& retry = {});

 private:
  ChainObservation fold_case(std::string_view uuid, std::string_view raw,
                             const TcpResult* legs) const;

  std::vector<const impls::HttpImplementation*> backends_;
  LiveFleetConfig config_;
  bool loop_enabled_ = false;
  std::vector<std::unique_ptr<ModelServer>> servers_;
};

}  // namespace hdiff::net
