#include "net/poison.h"

#include "http/lexer.h"

namespace hdiff::net {

void ResponseCache::put(std::string key, Entry entry) {
  entries_[std::move(key)] = std::move(entry);
}

std::optional<ResponseCache::Entry> ResponseCache::get(
    std::string_view key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

CpdosDemo demonstrate_cpdos(const impls::HttpImplementation& front,
                            const impls::HttpImplementation& back,
                            std::string_view attack_request,
                            std::string_view victim_request) {
  CpdosDemo demo;
  ResponseCache cache;

  // --- attacker round: front forwards, back errs, cache stores -------------
  impls::ProxyVerdict attack_forward = front.forward_request(attack_request);
  if (!attack_forward.forwarded()) {
    demo.narrative = "front-end rejects the attack request (" +
                     std::to_string(attack_forward.status) + ") — no poison";
    return demo;
  }
  impls::ServerVerdict attack_backend =
      back.parse_request(attack_forward.forwarded_bytes);
  int backend_status = attack_backend.incomplete ? 408 : attack_backend.status;
  if (attack_forward.would_cache) {
    cache.put(attack_forward.cache_key,
              ResponseCache::Entry{backend_status, attack_backend.body});
  }
  if (backend_status < 400) {
    demo.narrative = "back-end serves the attack request (" +
                     std::to_string(backend_status) + ") — nothing to poison";
    return demo;
  }

  // --- victim round: same resource, normally fine --------------------------
  impls::ProxyVerdict victim_forward = front.forward_request(victim_request);
  if (!victim_forward.forwarded()) {
    demo.narrative = "victim request rejected by the front-end";
    return demo;
  }
  demo.cache_key = victim_forward.cache_key;
  impls::ServerVerdict victim_direct =
      back.parse_request(victim_forward.forwarded_bytes);
  demo.victim_direct_status =
      victim_direct.incomplete ? 408 : victim_direct.status;

  auto cached = cache.get(victim_forward.cache_key);
  if (cached && cached->status >= 400 && demo.victim_direct_status < 400) {
    demo.exploitable = true;
    demo.poisoned_status = cached->status;
    demo.narrative =
        "victim is served the cached " + std::to_string(cached->status) +
        " for '" + victim_forward.cache_key + "' although the origin would " +
        "answer " + std::to_string(demo.victim_direct_status);
  } else if (!cached) {
    demo.narrative = "attack and victim requests map to different cache keys";
  } else {
    demo.narrative = "cache entry exists but the victim is not worse off";
  }
  return demo;
}

QueueShift classify_queue_shift(const impls::HttpImplementation& back,
                                std::string_view stranded,
                                std::string_view victim_bytes) {
  QueueShift shift;
  shift.victim_target = http::lex_request(victim_bytes).line.target;

  // The back-end's connection buffer: the stranded remainder, then the
  // victim's bytes.  Its next response answers whatever parses first.
  std::string connection_bytes(stranded);
  connection_bytes += victim_bytes;
  impls::ServerVerdict next = back.parse_request(connection_bytes);
  shift.next_status = next.status;
  shift.answered_for = http::lex_request(connection_bytes).line.target;

  if (next.accepted() && shift.answered_for != shift.victim_target) {
    shift.displaced = true;
  } else if (!next.accepted()) {
    shift.desync = true;
  }
  return shift;
}

SmuggleDemo demonstrate_smuggling(const impls::HttpImplementation& front,
                                  const impls::HttpImplementation& back,
                                  std::string_view attack_request,
                                  std::string_view victim_request) {
  SmuggleDemo demo;

  impls::ProxyVerdict attack_forward = front.forward_request(attack_request);
  if (!attack_forward.forwarded()) {
    demo.narrative = "front-end rejects the attack request — no smuggle";
    return demo;
  }
  impls::ServerVerdict attack_backend =
      back.parse_request(attack_forward.forwarded_bytes);
  if (!attack_backend.accepted() || attack_backend.leftover.empty()) {
    demo.narrative = "back-end sees exactly one request — no remainder";
    return demo;
  }

  impls::ProxyVerdict victim_forward = front.forward_request(victim_request);
  if (!victim_forward.forwarded()) {
    demo.narrative = "victim request rejected by the front-end";
    return demo;
  }

  const QueueShift shift = classify_queue_shift(
      back, attack_backend.leftover, victim_forward.forwarded_bytes);
  demo.victim_target = shift.victim_target;
  demo.victim_answered_for = shift.answered_for;
  demo.smuggled_target = http::lex_request(attack_backend.leftover).line.target;

  if (shift.displaced) {
    demo.exploitable = true;
    demo.narrative = "back-end answers the victim with the response for '" +
                     demo.victim_answered_for + "' instead of '" +
                     demo.victim_target + "' — response queue poisoned";
  } else if (shift.desync) {
    demo.narrative =
        "remainder desynchronizes the connection (back-end answers " +
        std::to_string(shift.next_status) + ") — denial of service, not hijack";
  } else {
    demo.narrative = "remainder did not displace the victim's request";
  }
  return demo;
}

}  // namespace hdiff::net
