// Exploit verification (paper §III-D: "we further run these potential
// exploits to complete verification in a real environment").
//
// Difference analysis flags *candidate* gaps; this module runs the two
// attack end-games to confirm exploitability:
//
//   CPDoS  — attacker request goes through the caching front-end, the
//            back-end's error response is stored under the resource's cache
//            key, and a subsequent *legitimate* request for that resource is
//            answered from cache with the error.
//
//   HRS    — the smuggled remainder left by the attacker's request is
//            prepended (by the back-end's connection state) to the victim's
//            request, so the victim receives the response to the attacker's
//            hidden request (response-queue poisoning).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "impls/model.h"

namespace hdiff::net {

/// Shared response cache keyed by the proxy's cache identity (host|target).
/// Mirrors the experiment configuration of §IV-A: "all proxies are
/// configured to cache any returned response".
class ResponseCache {
 public:
  struct Entry {
    int status = 0;
    std::string body;
  };

  void put(std::string key, Entry entry);
  std::optional<Entry> get(std::string_view key) const;
  std::size_t size() const noexcept { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Outcome of a CPDoS end-game.
struct CpdosDemo {
  bool exploitable = false;
  std::string cache_key;        ///< poisoned key
  int poisoned_status = 0;      ///< error status stored in the cache
  int victim_direct_status = 0; ///< what the victim would get uncached
  std::string narrative;
};

/// Run attacker request then victim request through front -> back with a
/// shared cache.  Exploitable when the victim's (cacheable, normally fine)
/// request is answered from cache with the attacker-induced error.
CpdosDemo demonstrate_cpdos(const impls::HttpImplementation& front,
                            const impls::HttpImplementation& back,
                            std::string_view attack_request,
                            std::string_view victim_request);

/// How a stranded connection remainder shifts the back-end's response
/// queue once a victim's request lands behind it.  The single
/// response-queue-poisoning classifier: `demonstrate_smuggling` (the
/// paper's §III-D end-game) and the stream queue-poison detector
/// (src/stream/detect) both call this instead of each reimplementing the
/// prefix-parse logic.
struct QueueShift {
  /// The back-end's next response answers a different target than the
  /// victim asked for — the response queue is poisoned (hijack).
  bool displaced = false;
  /// The stranded remainder desynchronizes the connection instead (the
  /// back-end errors on the combined bytes): denial of service, not hijack.
  bool desync = false;
  std::string victim_target;       ///< what the victim asked for
  std::string answered_for;        ///< what the back-end answered first
  int next_status = 0;             ///< status of the back-end's next parse
};

/// Prepend `stranded` (a back-end's unconsumed connection remainder) to the
/// victim's bytes and classify what the back-end's next response answers.
QueueShift classify_queue_shift(const impls::HttpImplementation& back,
                                std::string_view stranded,
                                std::string_view victim_bytes);

/// Outcome of an HRS response-queue poisoning end-game.
struct SmuggleDemo {
  bool exploitable = false;
  std::string smuggled_target;   ///< target of the hidden request
  std::string victim_target;     ///< what the victim actually asked for
  std::string victim_answered_for;  ///< what the back-end answered first
  std::string narrative;
};

/// Run the attacker's ambiguous request through the front, let the back-end
/// parse the forwarded bytes, then append the victim's forwarded request to
/// the back-end's connection remainder.  Exploitable when the back-end's
/// next response corresponds to the smuggled request instead of the
/// victim's.
SmuggleDemo demonstrate_smuggling(const impls::HttpImplementation& front,
                                  const impls::HttpImplementation& back,
                                  std::string_view attack_request,
                                  std::string_view victim_request);

}  // namespace hdiff::net
