#include "net/tcp.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <functional>
#include <stdexcept>

namespace hdiff::net {

namespace {

/// Read until `idle_timeout_ms` of silence, peer close, or `stop` returns
/// true for the accumulated bytes.
std::string read_available(int fd, int idle_timeout_ms,
                           const std::function<bool(std::string_view)>& stop) {
  std::string out;
  char buf[4096];
  while (true) {
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, idle_timeout_ms);
    if (ready <= 0) break;  // timeout or error: treat what we have as final
    ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;  // peer closed
    out.append(buf, static_cast<std::size_t>(n));
    if (stop && stop(out)) break;
  }
  return out;
}

void send_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, 0);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

/// Render the model's verdict as a real HTTP response whose headers carry
/// the HMetrics projection — the "echo information ... which shows the
/// parsing results from the end servers" of §IV-A.
std::string render_response(const impls::ServerVerdict& v) {
  int status = v.incomplete ? 408 : v.status;
  std::string reason = status == 200 ? "OK" : "Error";
  std::string body = v.body;
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\n";
  out += "X-HDiff-Impl: " + v.impl + "\r\n";
  out += "X-HDiff-Host: " + (v.host.empty() ? "-" : v.host) + "\r\n";
  out += "X-HDiff-Framing: " + std::string(to_string(v.framing)) + "\r\n";
  out += "X-HDiff-Leftover: " + std::to_string(v.leftover.size()) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

TcpListener::TcpListener() {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("socket() failed");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd_, 8) < 0) {
    ::close(fd_);
    throw std::runtime_error("bind/listen failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() { close_listener(); }

int TcpListener::accept_connection() const {
  if (fd_ < 0) return -1;
  return ::accept(fd_, nullptr, nullptr);
}

void TcpListener::close_listener() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

std::string tcp_roundtrip(std::uint16_t port, std::string_view request,
                          int idle_timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return {};
  }
  send_all(fd, request);
  ::shutdown(fd, SHUT_WR);
  std::string response = read_available(fd, idle_timeout_ms, nullptr);
  ::close(fd);
  return response;
}

// ---------------------------------------------------------------------------
// ModelServer
// ---------------------------------------------------------------------------

ModelServer::ModelServer(const impls::HttpImplementation& impl)
    : impl_(impl), thread_([this] { serve_loop(); }) {}

ModelServer::~ModelServer() {
  stopping_ = true;
  listener_.close_listener();
  if (thread_.joinable()) thread_.join();
}

void ModelServer::serve_loop() {
  while (!stopping_) {
    int conn = listener_.accept_connection();
    if (conn < 0) break;
    std::string raw = read_available(conn, 200, [this](std::string_view got) {
      impls::ServerVerdict v = impl_.parse_request(got);
      return !v.incomplete;  // complete request (accepted or rejected)
    });
    impls::ServerVerdict verdict = impl_.parse_request(raw);
    send_all(conn, render_response(verdict));
    ::shutdown(conn, SHUT_RDWR);
    ::close(conn);
  }
}

// ---------------------------------------------------------------------------
// ModelProxy
// ---------------------------------------------------------------------------

ModelProxy::ModelProxy(const impls::HttpImplementation& impl,
                       std::uint16_t backend_port)
    : impl_(impl),
      backend_port_(backend_port),
      thread_([this] { serve_loop(); }) {}

ModelProxy::~ModelProxy() {
  stopping_ = true;
  listener_.close_listener();
  if (thread_.joinable()) thread_.join();
}

void ModelProxy::serve_loop() {
  while (!stopping_) {
    int conn = listener_.accept_connection();
    if (conn < 0) break;
    std::string raw = read_available(conn, 200, [this](std::string_view got) {
      impls::ProxyVerdict v = impl_.forward_request(got);
      return !v.incomplete;
    });
    impls::ProxyVerdict verdict = impl_.forward_request(raw);
    if (verdict.forwarded()) {
      std::string response =
          tcp_roundtrip(backend_port_, verdict.forwarded_bytes);
      if (response.empty()) {
        response = "HTTP/1.1 502 Bad Gateway\r\nContent-Length: 0\r\n\r\n";
      }
      send_all(conn, response);
    } else {
      std::string response = "HTTP/1.1 " + std::to_string(verdict.status) +
                             " Error\r\nX-HDiff-Impl: " + verdict.impl +
                             "\r\nContent-Length: 0\r\nConnection: close"
                             "\r\n\r\n";
      send_all(conn, response);
    }
    ::shutdown(conn, SHUT_RDWR);
    ::close(conn);
  }
}

}  // namespace hdiff::net
