#include "net/tcp.h"

#include <cerrno>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <stdexcept>

#include "http/view.h"

namespace hdiff::net {

namespace {

struct ReadOutcome {
  std::string bytes;
  StreamEnd end = StreamEnd::kIdle;
};

/// Reused per-thread recv scratch (16 KiB — large enough to take a typical
/// model response in one recv) and a grow-once hint for the accumulator, so
/// steady-state roundtrips stop paying reallocation churn for every read.
constexpr std::size_t kRecvChunk = 16 * 1024;

char* recv_scratch() {
  thread_local std::unique_ptr<char[]> buf(new char[kRecvChunk]);
  return buf.get();
}

std::size_t& reserve_hint() {
  thread_local std::size_t hint = 4096;
  return hint;
}

/// Read until `idle_timeout_ms` of silence, peer close, or `stop` returns
/// true for the accumulated bytes.
ReadOutcome read_available(int fd, int idle_timeout_ms,
                           const std::function<bool(std::string_view)>& stop) {
  ReadOutcome out;
  char* buf = recv_scratch();
  out.bytes.reserve(reserve_hint());
  while (true) {
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, idle_timeout_ms);
    if (ready == 0) {
      out.end = StreamEnd::kIdle;
      break;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      out.end = StreamEnd::kError;
      break;
    }
    ssize_t n = ::recv(fd, buf, kRecvChunk, 0);
    if (n == 0) {
      out.end = StreamEnd::kClose;
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      out.end = StreamEnd::kError;
      break;
    }
    out.bytes.append(buf, static_cast<std::size_t>(n));
    if (stop && stop(out.bytes)) {
      out.end = StreamEnd::kClose;  // logically complete
      break;
    }
  }
  if (out.bytes.size() > reserve_hint()) reserve_hint() = out.bytes.size();
  return out;
}

/// Write all of `bytes`; survives short sends and EINTR, and uses
/// MSG_NOSIGNAL so a peer reset surfaces as EPIPE instead of killing the
/// serving thread with SIGPIPE.  Returns false if the peer went away.
bool send_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Render the model's verdict as a real HTTP response whose headers carry
/// the HMetrics projection — the "echo information ... which shows the
/// parsing results from the end servers" of §IV-A.
std::string render_response(const impls::ServerVerdict& v) {
  int status = v.incomplete ? 408 : v.status;
  std::string reason = status == 200 ? "OK" : "Error";
  std::string body = v.body;
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\n";
  out += "X-HDiff-Impl: " + v.impl + "\r\n";
  out += "X-HDiff-Host: " + (v.host.empty() ? "-" : v.host) + "\r\n";
  out += "X-HDiff-Framing: " + std::string(to_string(v.framing)) + "\r\n";
  out += "X-HDiff-Leftover: " + std::to_string(v.leftover.size()) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

void abort_connection(int fd) {
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

}  // namespace

ChainError classify_exchange(std::string_view bytes, std::string_view request,
                             StreamEnd end) noexcept {
  if (bytes.empty()) {
    // Connected, sent the request, got nothing back: silence is a timeout,
    // anything else is the peer going away.
    return end == StreamEnd::kIdle ? ChainError::kTimeout : ChainError::kReset;
  }
  if (bytes.substr(0, 5) != "HTTP/") return ChainError::kMalformed;
  if (bytes.find("\r\n\r\n") == std::string_view::npos) {
    // Header block never completed.
    switch (end) {
      case StreamEnd::kIdle: return ChainError::kTimeout;
      case StreamEnd::kClose: return ChainError::kTruncated;
      case StreamEnd::kError: return ChainError::kReset;
    }
  }
  const http::Method method = http::sniff_method(request);
  http::ResponseProbe probe = http::probe_first_response(bytes, method);
  if (!probe.status_line_valid) return ChainError::kMalformed;
  // Read-until-close framing cannot distinguish "done" from "cut off";
  // the probe reports it complete, matching the legacy read-to-idle
  // semantics.
  if (probe.complete) return ChainError::kNone;
  switch (end) {
    case StreamEnd::kIdle: return ChainError::kTimeout;
    case StreamEnd::kClose: return ChainError::kTruncated;
    case StreamEnd::kError: return ChainError::kReset;
  }
  return ChainError::kMalformed;  // unreachable
}

namespace {

/// One bind+listen attempt on 127.0.0.1:`port` (0 = ephemeral).  Returns
/// the listening fd and the bound port, or -1 with `*bind_errno` set.
int try_bind_loopback(std::uint16_t port, std::uint16_t* bound_port,
                      int* bind_errno) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *bind_errno = errno;
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 128) < 0) {
    *bind_errno = errno;
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *bound_port = ntohs(addr.sin_port);
  return fd;
}

}  // namespace

TcpListener::TcpListener() : TcpListener(0, RetryPolicy{.attempts = 1}) {}

TcpListener::TcpListener(std::uint16_t requested_port,
                         const RetryPolicy& bind_retry) {
  const int attempts = bind_retry.attempts > 0 ? bind_retry.attempts : 1;
  const std::string key = "bind:" + std::to_string(requested_port);
  int bind_errno = 0;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(bind_retry.backoff_ms(attempt - 1, key)));
    const int fd = try_bind_loopback(requested_port, &port_, &bind_errno);
    if (fd >= 0) {
      fd_.store(fd, std::memory_order_release);
      return;
    }
    // Only an in-use fixed port is worth retrying: the previous daemon
    // instance's socket is still draining and will free the address.  Any
    // other errno (EACCES, EMFILE, ...) is permanent for this process.
    if (bind_errno != EADDRINUSE || requested_port == 0) break;
  }
  throw ChainFault(ChainError::kConnectFail,
                   "bind 127.0.0.1:" + std::to_string(requested_port) +
                       " failed after " + std::to_string(attempts) +
                       " attempt(s): " + std::strerror(bind_errno));
}

TcpListener::~TcpListener() { close_listener(); }

int TcpListener::accept_connection() const {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return -1;
  return ::accept(fd, nullptr, nullptr);
}

void TcpListener::close_listener() {
  // exchange() makes concurrent closes idempotent; shutdown() unblocks a
  // serve thread parked in accept() on the captured fd.
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

TcpResult tcp_roundtrip(std::uint16_t port, std::string_view request,
                        int idle_timeout_ms) {
  TcpResult result;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    result.error = ChainError::kConnectFail;
    return result;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    result.error = ChainError::kConnectFail;
    return result;
  }
  if (!send_all(fd, request)) {
    ::close(fd);
    result.error = ChainError::kReset;
    return result;
  }
  ::shutdown(fd, SHUT_WR);
  ReadOutcome read = read_available(fd, idle_timeout_ms, nullptr);
  ::close(fd);
  result.error = classify_exchange(read.bytes, request, read.end);
  result.bytes = std::move(read.bytes);
  return result;
}

TcpResult tcp_roundtrip_retry(std::uint16_t port, std::string_view request,
                              const RetryPolicy& retry, int idle_timeout_ms) {
  const int attempts = retry.attempts < 1 ? 1 : retry.attempts;
  const auto start = std::chrono::steady_clock::now();
  TcpResult result;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    result = tcp_roundtrip(port, request, idle_timeout_ms);
    if (result.ok()) return result;
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (retry.case_deadline_ms > 0 && elapsed_ms >= retry.case_deadline_ms) {
      return result;
    }
    if (attempt + 1 < attempts) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(retry.backoff_ms(attempt, request)));
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// ModelServer
// ---------------------------------------------------------------------------

ModelServer::ModelServer(const impls::HttpImplementation& impl,
                         obs::Observability obs, int concurrency,
                         int service_delay_ms)
    : impl_(impl),
      obs_(obs),
      requests_(obs.metrics
                    ? &obs.metrics->counter("hdiff_server_requests_total")
                    : nullptr),
      service_delay_ms_(service_delay_ms) {
  if (concurrency < 1) concurrency = 1;
  threads_.reserve(static_cast<std::size_t>(concurrency));
  for (int i = 0; i < concurrency; ++i) {
    threads_.emplace_back([this] { serve_loop(); });
  }
}

ModelServer::~ModelServer() {
  stopping_ = true;
  listener_.close_listener();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ModelServer::serve_loop() {
  while (!stopping_) {
    int conn = listener_.accept_connection();
    if (conn < 0) break;
    obs::Span span(obs_.trace, "serve", "server");
    if (requests_) requests_->add(1);
    try {
      std::string raw =
          read_available(conn, 200, [this](std::string_view got) {
            impls::ServerVerdict v = impl_.parse_request(got);
            return !v.incomplete;  // complete request (accepted or rejected)
          }).bytes;
      impls::ServerVerdict verdict = impl_.parse_request(raw);
      if (service_delay_ms_ > 0) {
        // Simulated service time: hold the connection like a busy upstream
        // would, then answer.  This is the wait a concurrent transport can
        // overlap and a blocking one must eat serially.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(service_delay_ms_));
      }
      send_all(conn, render_response(verdict));
    } catch (const ChainFault&) {
      // Fault-injected model: behave like a crashed upstream — drop the
      // connection without a response, but keep serving.
    }
    abort_connection(conn);
  }
}

// ---------------------------------------------------------------------------
// ModelProxy
// ---------------------------------------------------------------------------

ModelProxy::ModelProxy(const impls::HttpImplementation& impl,
                       std::uint16_t backend_port, RetryPolicy backend_retry,
                       obs::Observability obs)
    : impl_(impl),
      backend_port_(backend_port),
      backend_retry_(backend_retry),
      obs_(obs),
      requests_(obs.metrics
                    ? &obs.metrics->counter("hdiff_proxy_requests_total")
                    : nullptr),
      gateway_errors_(
          obs.metrics
              ? &obs.metrics->counter("hdiff_proxy_gateway_errors_total")
              : nullptr),
      thread_([this] { serve_loop(); }) {}

ModelProxy::~ModelProxy() {
  stopping_ = true;
  listener_.close_listener();
  if (thread_.joinable()) thread_.join();
}

void ModelProxy::serve_loop() {
  while (!stopping_) {
    int conn = listener_.accept_connection();
    if (conn < 0) break;
    obs::Span span(obs_.trace, "proxy-request", "proxy");
    if (requests_) requests_->add(1);
    try {
      std::string raw =
          read_available(conn, 200, [this](std::string_view got) {
            impls::ProxyVerdict v = impl_.forward_request(got);
            return !v.incomplete;
          }).bytes;
      impls::ProxyVerdict verdict = impl_.forward_request(raw);
      if (verdict.forwarded()) {
        TcpResult backend;
        {
          obs::Span upstream(obs_.trace, "forward->backend", "proxy");
          backend = tcp_roundtrip_retry(backend_port_, verdict.forwarded_bytes,
                                        backend_retry_);
        }
        if (backend.ok()) {
          send_all(conn, backend.bytes);
        } else {
          // Graceful degradation: a back-end fault becomes a gateway error
          // carrying the structured classification, never a phantom empty
          // response.
          if (gateway_errors_) gateway_errors_->add(1);
          const int status =
              backend.error == ChainError::kTimeout ? 504 : 502;
          std::string response =
              "HTTP/1.1 " + std::to_string(status) +
              (status == 504 ? " Gateway Timeout" : " Bad Gateway") +
              "\r\nX-HDiff-Chain-Error: " +
              std::string(to_string(backend.error)) +
              "\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
          send_all(conn, response);
        }
      } else {
        std::string response = "HTTP/1.1 " + std::to_string(verdict.status) +
                               " Error\r\nX-HDiff-Impl: " + verdict.impl +
                               "\r\nContent-Length: 0\r\nConnection: close"
                               "\r\n\r\n";
        send_all(conn, response);
      }
    } catch (const ChainFault&) {
      // Fault-injected proxy model: crash the connection, not the thread.
    }
    abort_connection(conn);
  }
}

}  // namespace hdiff::net
