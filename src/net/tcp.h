// Real-socket hosting for the behaviour models (paper §IV-A: the authors
// drive the products over raw sockets; here the models themselves are served
// over loopback TCP so the chain can be exercised by any HTTP client).
//
// Scope: deliberately minimal — blocking I/O, loopback only, one connection
// serviced at a time per server, used by examples/live_chain.cpp and the
// live-chain integration test.  The in-process Chain (chain.h) remains the
// engine for bulk differential testing.
//
// Fault model: every client round trip returns a `TcpResult` carrying a
// `ChainError` classification alongside whatever bytes arrived, so a
// connect failure, a stalled peer and a legitimately empty response are
// three different observations — the seed's ""-on-failure conflation is
// gone.  Serving threads survive peer resets (MSG_NOSIGNAL, short-send
// handling) and fault-injected models (a ChainFault aborts the connection,
// simulating a crashed upstream, instead of killing the thread).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "impls/model.h"
#include "net/error.h"
#include "obs/obs.h"

namespace hdiff::net {

/// RAII loopback TCP listener on an ephemeral port.
///
/// Bind failures throw `ChainFault` (is-a std::runtime_error) carrying a
/// `ChainError` classification, so a daemon restart that loses the bind
/// race reports a structured harness fault instead of aborting opaquely.
class TcpListener {
 public:
  TcpListener();               ///< ephemeral port; throws ChainFault on failure
  /// Bind a *requested* port (the serve control plane needs a stable
  /// address across daemon restarts).  EADDRINUSE — the previous daemon
  /// instance's socket still draining — is retried up to
  /// `bind_retry.attempts` times with the policy's deterministic backoff
  /// (keyed on the port); SO_REUSEADDR makes a TIME_WAIT-held port bindable
  /// immediately.  Throws ChainFault(kConnectFail) when attempts run out.
  explicit TcpListener(std::uint16_t requested_port,
                       const RetryPolicy& bind_retry = {});
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// The listening fd, or -1 once closed.  For pollers (net::ServeLoop)
  /// that multiplex the listener with other fds; they may flip it to
  /// O_NONBLOCK but must not close it.
  int native_handle() const noexcept {
    return fd_.load(std::memory_order_acquire);
  }

  /// Blocking accept; returns the connection fd or -1 once closed.
  int accept_connection() const;

  /// Unblock any pending accept and invalidate the listener.  Safe to call
  /// from a different thread than the one blocked in accept_connection()
  /// (that is its purpose); `fd_` is atomic so the close/accept handoff is
  /// race-free.
  void close_listener();

 private:
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

/// How a client read loop stopped.  Shared by the blocking round trip and
/// the event-loop driver (event_loop.h) so both classify identically.
enum class StreamEnd {
  kIdle,   ///< idle timeout
  kClose,  ///< orderly peer close
  kError,  ///< recv error (reset)
};

/// Classify how a client exchange ended, given the accumulated response
/// bytes, the request that was sent (for HEAD framing) and how the stream
/// stopped.  Allocation-free: the request method is sniffed from the
/// request line and the response completeness is probed on views.
ChainError classify_exchange(std::string_view bytes, std::string_view request,
                             StreamEnd end) noexcept;

/// Outcome of one client round trip.  `bytes` holds whatever arrived (it
/// may be non-empty even on error — e.g. a truncated body); `error`
/// classifies how the exchange ended.
struct TcpResult {
  ChainError error = ChainError::kNone;
  std::string bytes;

  bool ok() const noexcept { return error == ChainError::kNone; }
};

/// Connect to 127.0.0.1:port, send `request` and read the full response
/// (until the peer closes or `idle_timeout_ms` of silence).  Classification:
///   kConnectFail — could not connect;
///   kReset      — peer reset, or closed before sending anything;
///   kTimeout    — idle timeout before the response completed;
///   kTruncated  — peer closed mid-message (framing shows missing bytes);
///   kMalformed  — the bytes received are not an HTTP response;
///   kNone       — a complete response (read-until-close framing counts the
///                 close, and the idle timeout, as normal completion).
TcpResult tcp_roundtrip(std::uint16_t port, std::string_view request,
                        int idle_timeout_ms = 500);

/// `tcp_roundtrip` under a RetryPolicy: transient failures (connect-fail,
/// reset, timeout) are retried with exponential backoff and deterministic
/// jitter keyed on the request bytes; the last attempt's result is
/// returned.  kTruncated/kMalformed responses are also retried — on a
/// flaky harness they are transport damage, not behaviour.
TcpResult tcp_roundtrip_retry(std::uint16_t port, std::string_view request,
                              const RetryPolicy& retry,
                              int idle_timeout_ms = 500);

/// Serve one behaviour model as a real HTTP origin server.  Each connection
/// reads one request (until the model stops reporting `incomplete` or the
/// peer goes idle), answers with a small response carrying the model's
/// HMetrics as headers, and closes.  A ChainFault from a fault-injected
/// model aborts the connection without a response (upstream crash).
class ModelServer {
 public:
  /// `obs`, when enabled, emits one "serve" span per connection and counts
  /// requests in `hdiff_server_requests_total`.  The sink/registry must
  /// outlive the server; render traces only after the server is destroyed
  /// (the serving thread writes until then).  `concurrency` is the number
  /// of accept/serve threads: 1 preserves the historical one-connection-at-
  /// a-time behaviour; the event-loop driver needs more to overlap
  /// roundtrips (the kernel load-balances accept() across the threads).
  /// `service_delay_ms` sleeps that long between reading the request and
  /// answering — simulated upstream service/network time for benchmarks
  /// that measure how well a transport overlaps wire waits (E14); 0 (the
  /// default) answers immediately as before.
  explicit ModelServer(const impls::HttpImplementation& impl,
                       obs::Observability obs = {}, int concurrency = 1,
                       int service_delay_ms = 0);
  ~ModelServer();

  std::uint16_t port() const noexcept { return listener_.port(); }

 private:
  void serve_loop();

  const impls::HttpImplementation& impl_;
  TcpListener listener_;
  obs::Observability obs_;
  obs::Counter* requests_ = nullptr;
  int service_delay_ms_ = 0;
  std::atomic<bool> stopping_{false};
  std::vector<std::thread> threads_;
};

/// Serve one behaviour model as a real reverse proxy in front of
/// `backend_port`: requests are run through forward_request(); forwarded
/// bytes go to the back-end over a fresh connection and the back-end's
/// response is relayed; rejections are answered locally.  Back-end faults
/// are answered as gateway errors (502, or 504 on timeout) carrying the
/// classification in an X-HDiff-Chain-Error header.
class ModelProxy {
 public:
  /// `backend_retry` governs the proxy->backend leg (fixed at construction:
  /// the serving thread starts immediately).  `obs`, when enabled, emits a
  /// "proxy-request" span per connection and a "forward->backend" span per
  /// upstream leg, and counts requests/gateway errors; same lifetime rules
  /// as ModelServer.
  ModelProxy(const impls::HttpImplementation& impl, std::uint16_t backend_port,
             RetryPolicy backend_retry = {.attempts = 2},
             obs::Observability obs = {});
  ~ModelProxy();

  std::uint16_t port() const noexcept { return listener_.port(); }

 private:
  void serve_loop();

  const impls::HttpImplementation& impl_;
  std::uint16_t backend_port_;
  RetryPolicy backend_retry_;
  TcpListener listener_;
  obs::Observability obs_;
  obs::Counter* requests_ = nullptr;
  obs::Counter* gateway_errors_ = nullptr;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace hdiff::net
