// Real-socket hosting for the behaviour models (paper §IV-A: the authors
// drive the products over raw sockets; here the models themselves are served
// over loopback TCP so the chain can be exercised by any HTTP client).
//
// Scope: deliberately minimal — blocking I/O, loopback only, one connection
// serviced at a time per server, used by examples/live_chain.cpp and the
// live-chain integration test.  The in-process Chain (chain.h) remains the
// engine for bulk differential testing.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>

#include "impls/model.h"

namespace hdiff::net {

/// RAII loopback TCP listener on an ephemeral port.
class TcpListener {
 public:
  TcpListener();               ///< throws std::runtime_error on failure
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Blocking accept; returns the connection fd or -1 once closed.
  int accept_connection() const;

  /// Unblock any pending accept and invalidate the listener.
  void close_listener();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connect to 127.0.0.1:port, send `request` and read the full response
/// (until the peer closes or `idle_timeout_ms` of silence).  Returns the
/// response bytes ("" on connect failure).
std::string tcp_roundtrip(std::uint16_t port, std::string_view request,
                          int idle_timeout_ms = 500);

/// Serve one behaviour model as a real HTTP origin server.  Each connection
/// reads one request (until the model stops reporting `incomplete` or the
/// peer goes idle), answers with a small response carrying the model's
/// HMetrics as headers, and closes.
class ModelServer {
 public:
  explicit ModelServer(const impls::HttpImplementation& impl);
  ~ModelServer();

  std::uint16_t port() const noexcept { return listener_.port(); }

 private:
  void serve_loop();

  const impls::HttpImplementation& impl_;
  TcpListener listener_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

/// Serve one behaviour model as a real reverse proxy in front of
/// `backend_port`: requests are run through forward_request(); forwarded
/// bytes go to the back-end over a fresh connection and the back-end's
/// response is relayed; rejections are answered locally.
class ModelProxy {
 public:
  ModelProxy(const impls::HttpImplementation& impl,
             std::uint16_t backend_port);
  ~ModelProxy();

  std::uint16_t port() const noexcept { return listener_.port(); }

 private:
  void serve_loop();

  const impls::HttpImplementation& impl_;
  std::uint16_t backend_port_;
  TcpListener listener_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace hdiff::net
