#include "net/fault.h"

#include <chrono>
#include <string>
#include <thread>

namespace hdiff::net {

namespace {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv_step(std::uint64_t h, std::string_view bytes) noexcept {
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  h ^= 0xff;  // field separator: "ab"+"c" and "a"+"bc" hash differently
  h *= 1099511628211ull;
  return h;
}

/// Map a hash to [0, 1).
double hash01(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::string_view to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kDelay: return "delay";
    case FaultKind::kStall: return "stall";
    case FaultKind::kReset: return "reset";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kConnectFail: return "connect-fail";
  }
  return "unknown";
}

FaultPlan::FaultPlan(FaultPlanConfig config) : config_(std::move(config)) {
  if (config_.kinds.empty()) config_.kinds = {FaultKind::kReset};
}

std::uint64_t FaultPlan::site_hash(std::string_view op, std::string_view impl,
                                   std::string_view bytes) const noexcept {
  std::uint64_t h = config_.seed ^ 14695981039346656037ull;
  h = fnv_step(h, op);
  h = fnv_step(h, impl);
  h = fnv_step(h, bytes);
  return mix64(h);
}

bool FaultPlan::is_victim_site(std::string_view op, std::string_view impl,
                               std::string_view bytes) const noexcept {
  if (config_.rate <= 0.0) return false;
  return hash01(site_hash(op, impl, bytes)) < config_.rate;
}

std::optional<FaultKind> FaultPlan::decide(std::string_view op,
                                           std::string_view impl,
                                           std::string_view bytes) {
  std::optional<FaultKind> kind;
  const std::uint64_t site = site_hash(op, impl, bytes);

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.calls;
  ++calls_;
  if (config_.every_nth != 0 && calls_ % config_.every_nth == 0) {
    kind = config_.kinds[(calls_ / config_.every_nth) % config_.kinds.size()];
  } else if (config_.rate > 0.0 && hash01(site) < config_.rate) {
    std::size_t& so_far = faults_by_site_[site];
    if (config_.max_faults_per_site == 0 ||
        so_far < config_.max_faults_per_site) {
      ++so_far;
      kind = config_.kinds[site % config_.kinds.size()];
    }
  }
  if (kind) {
    ++stats_.injected;
    ++stats_.by_kind[static_cast<std::size_t>(*kind)];
  }
  return kind;
}

FaultPlan::Stats FaultPlan::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

FaultyImplementation::FaultyImplementation(
    const impls::HttpImplementation& inner, std::shared_ptr<FaultPlan> plan,
    obs::Observability obs)
    : impls::ImplementationDecorator(inner),
      plan_(std::move(plan)),
      injected_(obs.metrics
                    ? &obs.metrics->counter("hdiff_faults_injected_total")
                    : nullptr),
      trace_(obs.trace) {}

void FaultyImplementation::maybe_fault(std::string_view op,
                                       std::string_view bytes) const {
  const std::optional<FaultKind> kind = plan_->decide(op, name(), bytes);
  if (!kind) return;
  if (injected_) injected_->add(1);
  if (trace_) {
    trace_->instant("fault-injected", "fault", "kind",
                    std::string(to_string(*kind)));
  }
  const auto sleep = [&] {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(plan_->config().delay_ms));
  };
  const auto detail = [&](ChainError e) {
    return std::string(to_string(e)) + " fault injected at " +
           std::string(op) + "(" + std::string(name()) + ")";
  };
  switch (*kind) {
    case FaultKind::kDelay:
      sleep();
      return;  // latency only: the call proceeds normally
    case FaultKind::kStall:
      sleep();
      throw ChainFault(ChainError::kTimeout, detail(ChainError::kTimeout));
    case FaultKind::kReset:
      throw ChainFault(ChainError::kReset, detail(ChainError::kReset));
    case FaultKind::kTruncate:
      throw ChainFault(ChainError::kTruncated,
                       detail(ChainError::kTruncated));
    case FaultKind::kConnectFail:
      throw ChainFault(ChainError::kConnectFail,
                       detail(ChainError::kConnectFail));
  }
}

impls::ServerVerdict FaultyImplementation::parse_request(
    std::string_view raw) const {
  maybe_fault("parse", raw);
  return inner_.parse_request(raw);
}

impls::ProxyVerdict FaultyImplementation::forward_request(
    std::string_view raw) const {
  maybe_fault("forward", raw);
  return inner_.forward_request(raw);
}

std::string FaultyImplementation::respond(std::string_view raw) const {
  maybe_fault("respond", raw);
  return inner_.respond(raw);
}

impls::RelayOutcome FaultyImplementation::relay_response(
    std::string_view backend_bytes, http::Method request_method) const {
  maybe_fault("relay", backend_bytes);
  return inner_.relay_response(backend_bytes, request_method);
}

std::vector<std::unique_ptr<impls::HttpImplementation>> wrap_fleet_with_faults(
    const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet,
    std::shared_ptr<FaultPlan> plan, obs::Observability obs) {
  std::vector<std::unique_ptr<impls::HttpImplementation>> wrapped;
  wrapped.reserve(fleet.size());
  for (const auto& impl : fleet) {
    wrapped.push_back(std::make_unique<FaultyImplementation>(*impl, plan, obs));
  }
  return wrapped;
}

}  // namespace hdiff::net
