#include "net/event_loop.h"

#include <cerrno>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "http/view.h"

namespace hdiff::net {

namespace {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

constexpr std::size_t kRecvChunk = 16 * 1024;

// Readiness bits shared by the epoll and poll backends.
constexpr std::uint32_t kEvIn = 1u;
constexpr std::uint32_t kEvOut = 2u;
constexpr std::uint32_t kEvErr = 4u;

int ms_until(TimePoint now, TimePoint deadline) {
  if (deadline <= now) return 0;
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now)
                .count();
  return ms > 60'000 ? 60'000 : static_cast<int>(ms) + 1;
}

}  // namespace

std::string_view to_string(NetLoopMode mode) noexcept {
  switch (mode) {
    case NetLoopMode::kOff: return "off";
    case NetLoopMode::kOn: return "on";
    case NetLoopMode::kAuto: return "auto";
  }
  return "auto";
}

bool net_loop_mode_from_string(std::string_view s, NetLoopMode& out) noexcept {
  if (s == "off") { out = NetLoopMode::kOff; return true; }
  if (s == "on") { out = NetLoopMode::kOn; return true; }
  if (s == "auto") { out = NetLoopMode::kAuto; return true; }
  return false;
}

bool net_loop_enabled(NetLoopMode mode) noexcept {
  // poll() is POSIX-universal, so auto is on everywhere this compiles.
  return mode != NetLoopMode::kOff;
}

/// Per-roundtrip connection state machine.
struct EventLoop::Conn {
  enum class St {
    kQueued,      ///< not started yet (over the in-flight cap)
    kConnecting,  ///< nonblocking connect in progress
    kSending,     ///< request bytes partially written
    kReading,     ///< accumulating response until close/idle
    kBackoff,     ///< between retry attempts
    kDone,
  };

  St st = St::kQueued;
  int fd = -1;
  std::size_t job = 0;
  std::uint32_t want = 0;  ///< kEvIn / kEvOut currently of interest
  std::size_t send_off = 0;
  std::string bytes;
  StreamEnd end = StreamEnd::kIdle;
  int attempt = 0;
  TimePoint deadline{};    ///< connect/idle deadline or backoff wake time
  TimePoint case_start{};  ///< first-attempt start (case deadline base)
};

EventLoop::EventLoop(EventLoopConfig config)
    : config_(config),
      obs_(obs::NetLoopObs::from(config.obs)),
      recv_scratch_(kRecvChunk) {
  if (config_.max_in_flight == 0) config_.max_in_flight = 1;
#ifdef __linux__
  if (!config_.force_poll) {
    epoll_fd_ = ::epoll_create1(0);  // -1 => poll fallback
  }
#endif
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::vector<TcpResult> EventLoop::run_batch(
    const std::vector<RoundtripJob>& jobs) {
  return run_batch_retry(jobs, RetryPolicy{.attempts = 1});
}

std::vector<TcpResult> EventLoop::run_batch_retry(
    const std::vector<RoundtripJob>& jobs, const RetryPolicy& retry) {
  std::vector<TcpResult> results(jobs.size());
  if (jobs.empty()) return results;
  obs::Span span(obs_.trace, "net-batch", "net");
  if (obs_.active()) {
    span.arg("jobs", std::to_string(jobs.size()));
    if (obs_.batches) obs_.batches->add(1);
    if (obs_.roundtrips) obs_.roundtrips->add(jobs.size());
    if (obs_.batch_size) obs_.batch_size->observe(jobs.size());
    if (!using_epoll() && obs_.poll_fallback) obs_.poll_fallback->add(1);
  }
  const std::uint64_t t0 = obs_.batch_us ? obs_.now() : 0;
  drive(jobs, retry, results);
  if (obs_.batch_us) obs_.batch_us->observe(obs_.now() - t0);
  return results;
}

void EventLoop::drive(const std::vector<RoundtripJob>& jobs,
                      const RetryPolicy& retry,
                      std::vector<TcpResult>& results) {
  const int attempts = retry.attempts < 1 ? 1 : retry.attempts;
  std::vector<Conn> conns(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    conns[i].job = i;
    conns[i].bytes.reserve(reserve_hint_);
  }

  std::size_t next_to_start = 0;  // conns[0..next_to_start) have begun
  std::size_t open_fds = 0;
  std::size_t completed = 0;

#ifdef __linux__
  epoll_event ep_events[64];
#endif
  std::vector<pollfd> pollfds;         // poll backend scratch
  std::vector<std::size_t> poll_idx;   // pollfds[k] -> conn index
  std::vector<std::pair<std::size_t, std::uint32_t>> ready;

  auto set_interest = [&](Conn& c, std::uint32_t want) {
    if (c.want == want) return;
#ifdef __linux__
    if (epoll_fd_ >= 0) {
      epoll_event ev{};
      ev.events = (want & kEvIn ? EPOLLIN : 0u) |
                  (want & kEvOut ? EPOLLOUT : 0u);
      ev.data.u64 = c.job;
      ::epoll_ctl(epoll_fd_, c.want == 0 ? EPOLL_CTL_ADD : EPOLL_CTL_MOD,
                  c.fd, &ev);
    }
#endif
    c.want = want;
  };

  auto close_conn = [&](Conn& c) {
    if (c.fd < 0) return;
#ifdef __linux__
    if (epoll_fd_ >= 0 && c.want != 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
    }
#endif
    ::close(c.fd);
    c.fd = -1;
    c.want = 0;
    --open_fds;
  };

  // Record the (final) outcome of the current attempt, or schedule a retry
  // with the same deterministic schedule tcp_roundtrip_retry sleeps.
  auto finish_attempt = [&](Conn& c, ChainError error) {
    close_conn(c);
    bool record = error == ChainError::kNone || c.attempt + 1 > attempts;
    if (!record) {
      const auto elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                c.case_start)
              .count();
      if (retry.case_deadline_ms > 0 && elapsed_ms >= retry.case_deadline_ms) {
        record = true;
      } else if (c.attempt >= attempts) {
        record = true;
      }
    }
    if (record) {
      if (c.bytes.size() > reserve_hint_) reserve_hint_ = c.bytes.size();
      results[c.job].error = error;
      results[c.job].bytes = std::move(c.bytes);
      c.st = Conn::St::kDone;
      ++completed;
      return;
    }
    if (obs_.retries) obs_.retries->add(1);
    c.st = Conn::St::kBackoff;
    c.deadline = Clock::now() + std::chrono::milliseconds(retry.backoff_ms(
                                    c.attempt - 1, jobs[c.job].request));
    c.bytes.clear();
    c.send_off = 0;
    c.end = StreamEnd::kIdle;
  };

  auto finish_read = [&](Conn& c, StreamEnd end) {
    c.end = end;
    finish_attempt(c,
                   classify_exchange(c.bytes, jobs[c.job].request, c.end));
  };

  // Drain the socket until EAGAIN/close/error; refresh the idle deadline on
  // every successful recv (matching the blocking client's poll-per-read
  // timeout semantics).
  auto pump_read = [&](Conn& c) {
    while (true) {
      ssize_t n = ::recv(c.fd, recv_scratch_.data(), recv_scratch_.size(), 0);
      if (n > 0) {
        c.bytes.append(recv_scratch_.data(), static_cast<std::size_t>(n));
        c.deadline =
            Clock::now() + std::chrono::milliseconds(config_.idle_timeout_ms);
        continue;
      }
      if (n == 0) {
        finish_read(c, StreamEnd::kClose);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      finish_read(c, StreamEnd::kError);
      return;
    }
  };

  // Write as much of the request as the kernel accepts; on completion move
  // to reading (half-close first, like the blocking client).
  auto pump_send = [&](Conn& c) {
    const std::string_view request = jobs[c.job].request;
    while (c.send_off < request.size()) {
      ssize_t n = ::send(c.fd, request.data() + c.send_off,
                         request.size() - c.send_off, MSG_NOSIGNAL);
      if (n > 0) {
        c.send_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        set_interest(c, kEvOut);
        return;
      }
      finish_attempt(c, ChainError::kReset);
      return;
    }
    ::shutdown(c.fd, SHUT_WR);
    c.st = Conn::St::kReading;
    c.deadline =
        Clock::now() + std::chrono::milliseconds(config_.idle_timeout_ms);
    set_interest(c, kEvIn);
    pump_read(c);
  };

  auto start_connect = [&](Conn& c) {
    ++c.attempt;
    c.st = Conn::St::kConnecting;
    c.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (c.fd < 0) {
      finish_attempt(c, ChainError::kConnectFail);
      return;
    }
    ++open_fds;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(jobs[c.job].port);
    int rc = ::connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    if (rc == 0) {
      c.st = Conn::St::kSending;
      c.deadline =
          Clock::now() + std::chrono::milliseconds(config_.idle_timeout_ms);
      set_interest(c, kEvOut);
      pump_send(c);
      return;
    }
    if (errno != EINPROGRESS) {
      finish_attempt(c, ChainError::kConnectFail);
      return;
    }
    c.deadline =
        Clock::now() + std::chrono::milliseconds(config_.connect_timeout_ms);
    set_interest(c, kEvOut);
  };

  auto on_ready = [&](Conn& c, std::uint32_t ev) {
    switch (c.st) {
      case Conn::St::kConnecting: {
        int err = 0;
        socklen_t len = sizeof err;
        ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0 || (ev & kEvErr)) {
          finish_attempt(c, ChainError::kConnectFail);
          return;
        }
        c.st = Conn::St::kSending;
        c.deadline =
            Clock::now() + std::chrono::milliseconds(config_.idle_timeout_ms);
        pump_send(c);
        return;
      }
      case Conn::St::kSending:
        pump_send(c);
        return;
      case Conn::St::kReading:
        pump_read(c);
        return;
      default:
        return;
    }
  };

  while (completed < jobs.size()) {
    // Admit queued jobs up to the in-flight cap.  start_connect can finish
    // an attempt synchronously (socket/connect failure), so re-check.
    while (next_to_start < conns.size() && open_fds < config_.max_in_flight) {
      Conn& c = conns[next_to_start++];
      c.case_start = Clock::now();
      start_connect(c);
    }
    if (completed >= jobs.size()) break;

    // Wake backed-off conns whose schedule elapsed; collect the earliest
    // pending deadline for the wait timeout.
    TimePoint now = Clock::now();
    TimePoint earliest = TimePoint::max();
    for (Conn& c : conns) {
      if (c.st == Conn::St::kBackoff && c.deadline <= now) {
        start_connect(c);
      }
    }
    for (Conn& c : conns) {
      switch (c.st) {
        case Conn::St::kConnecting:
        case Conn::St::kSending:
        case Conn::St::kReading:
        case Conn::St::kBackoff:
          if (c.deadline < earliest) earliest = c.deadline;
          break;
        default:
          break;
      }
    }
    if (completed >= jobs.size()) break;
    now = Clock::now();
    const int timeout_ms =
        earliest == TimePoint::max() ? 10 : ms_until(now, earliest);

    ready.clear();
#ifdef __linux__
    if (epoll_fd_ >= 0) {
      int n = ::epoll_wait(epoll_fd_, ep_events, 64, timeout_ms);
      for (int k = 0; k < n; ++k) {
        std::uint32_t ev = 0;
        if (ep_events[k].events & EPOLLIN) ev |= kEvIn;
        if (ep_events[k].events & EPOLLOUT) ev |= kEvOut;
        if (ep_events[k].events & (EPOLLERR | EPOLLHUP)) ev |= kEvErr | kEvIn;
        ready.emplace_back(
            static_cast<std::size_t>(ep_events[k].data.u64), ev);
      }
    } else
#endif
    {
      pollfds.clear();
      poll_idx.clear();
      for (std::size_t i = 0; i < conns.size(); ++i) {
        const Conn& c = conns[i];
        if (c.fd < 0) continue;
        short events = 0;
        if (c.want & kEvIn) events |= POLLIN;
        if (c.want & kEvOut) events |= POLLOUT;
        pollfds.push_back(pollfd{c.fd, events, 0});
        poll_idx.push_back(i);
      }
      int n = ::poll(pollfds.data(),
                     static_cast<nfds_t>(pollfds.size()), timeout_ms);
      if (n > 0) {
        for (std::size_t k = 0; k < pollfds.size(); ++k) {
          if (pollfds[k].revents == 0) continue;
          std::uint32_t ev = 0;
          if (pollfds[k].revents & POLLIN) ev |= kEvIn;
          if (pollfds[k].revents & POLLOUT) ev |= kEvOut;
          if (pollfds[k].revents & (POLLERR | POLLHUP | POLLNVAL)) {
            ev |= kEvErr | kEvIn;
          }
          ready.emplace_back(poll_idx[k], ev);
        }
      }
    }

    for (const auto& [index, ev] : ready) {
      Conn& c = conns[index];
      if (c.fd < 0 || c.st == Conn::St::kDone) continue;
      on_ready(c, ev);
    }

    // Deadline sweep: idle reads complete as timeouts, stalled connects
    // fail, and elapsed backoffs restart on the next loop pass.
    now = Clock::now();
    for (Conn& c : conns) {
      if (c.deadline > now) continue;
      switch (c.st) {
        case Conn::St::kConnecting:
          finish_attempt(c, ChainError::kConnectFail);
          break;
        case Conn::St::kSending:
          c.end = StreamEnd::kIdle;
          finish_attempt(
              c, classify_exchange(c.bytes, jobs[c.job].request, c.end));
          break;
        case Conn::St::kReading:
          finish_read(c, StreamEnd::kIdle);
          break;
        default:
          break;
      }
    }
  }
}

std::vector<TcpResult> tcp_roundtrip_batch(
    const std::vector<RoundtripJob>& jobs, const RetryPolicy& retry,
    EventLoopConfig config) {
  EventLoop loop(config);
  return loop.run_batch_retry(jobs, retry);
}

// ---------------------------------------------------------------------------
// ServeLoop — the control-plane accept path.
// ---------------------------------------------------------------------------

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

std::string_view reason_phrase(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return status < 400 ? "OK" : "Error";
  }
}

/// Where one control request ends inside `in`: npos while incomplete,
/// otherwise header-block length + Content-Length body bytes.  `*bad` is
/// set when the framing can never complete (unparseable Content-Length).
std::size_t request_end(std::string_view in, bool* bad) {
  const std::size_t head = in.find("\r\n\r\n");
  if (head == std::string_view::npos) return std::string_view::npos;
  const std::size_t body_start = head + 4;
  // Borrow the view parser for header lookup; the body may still be partial
  // but the parser is descriptive and only the header block is consulted.
  http::RequestView view = http::parse_request_view(in);
  const http::HeaderView* cl = view.find_first("content-length");
  std::size_t body_len = 0;
  if (cl != nullptr) {
    errno = 0;
    char* end = nullptr;
    const std::string text(cl->value);
    const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0') {
      *bad = true;
      return std::string_view::npos;
    }
    body_len = static_cast<std::size_t>(parsed);
  }
  if (in.size() < body_start + body_len) return std::string_view::npos;
  return body_start + body_len;
}

}  // namespace

struct ServeLoop::ServeConn {
  int fd = -1;
  std::string in;
  std::string out;
  std::size_t out_off = 0;
  bool writing = false;   ///< request finished; draining `out`
  bool rejected = false;  ///< counted toward requests_rejected
  TimePoint deadline{};
};

ServeLoop::ServeLoop(TcpListener& listener, ControlHandler handler,
                     ServeLoopConfig config)
    : listener_(listener), handler_(std::move(handler)), config_(config) {
  if (config_.obs.metrics != nullptr) {
    requests_ =
        &config_.obs.metrics->counter("hdiff_serve_http_requests_total");
    rejected_ =
        &config_.obs.metrics->counter("hdiff_serve_http_rejected_total");
  }
  // Nonblocking accept: poll readiness can go stale (the peer can reset
  // between poll() and accept()), and a control plane must never park.
  set_nonblocking(listener_.native_handle());
}

ServeLoop::~ServeLoop() {
  for (const ServeConn& c : conns_) {
    if (c.fd >= 0) ::close(c.fd);
  }
}

std::size_t ServeLoop::open_connections() const noexcept {
  return conns_.size();
}

void ServeLoop::count_request(std::string_view target, int status) {
  if (config_.obs.metrics == nullptr || config_.known_targets.empty()) return;
  // Normalize before labeling: query strings are per-request noise and
  // unknown paths collapse to one bucket, keeping label cardinality at
  // |known_targets| x |statuses|.
  std::string normalized;
  if (target.empty()) {
    normalized = "invalid";
  } else {
    const std::string_view path = target.substr(0, target.find('?'));
    normalized = "other";
    for (const std::string& known : config_.known_targets) {
      if (path == known) {
        normalized = known;
        break;
      }
    }
  }
  const std::string key = normalized + "\x1f" + std::to_string(status);
  auto it = control_counters_.find(key);
  if (it == control_counters_.end()) {
    obs::Counter& counter = config_.obs.metrics->counter(obs::labeled_name(
        "hdiff_serve_control_requests_total",
        obs::prom_label("target", normalized) + "," +
            obs::prom_label("status", std::to_string(status))));
    it = control_counters_.emplace(key, &counter).first;
  }
  it->second->add();
}

void ServeLoop::finish(ServeConn& c, int status, std::string_view content_type,
                       std::string_view body) {
  c.out = "HTTP/1.1 " + std::to_string(status) + " " +
          std::string(reason_phrase(status)) + "\r\n";
  c.out += "Content-Type: " + std::string(content_type) + "\r\n";
  c.out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  c.out += "Connection: close\r\n\r\n";
  c.out += body;
  c.out_off = 0;
  c.writing = true;
}

std::size_t ServeLoop::poll_once(int timeout_ms) {
  const int listen_fd = listener_.native_handle();
  std::vector<pollfd> pfds;
  pfds.reserve(conns_.size() + 1);
  if (listen_fd >= 0) pfds.push_back({listen_fd, POLLIN, 0});
  for (const ServeConn& c : conns_) {
    pfds.push_back({c.fd, static_cast<short>(c.writing ? POLLOUT : POLLIN), 0});
  }
  if (pfds.empty()) return 0;
  int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (ready < 0 && errno != EINTR) return 0;

  std::size_t dispatched = 0;
  std::size_t pi = 0;
  if (listen_fd >= 0) {
    if (ready > 0 && (pfds[0].revents & (POLLIN | POLLERR)) != 0) {
      while (true) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) break;  // EAGAIN: accepted everything pending
        set_nonblocking(fd);
        ServeConn c;
        c.fd = fd;
        c.deadline = Clock::now() +
                     std::chrono::milliseconds(config_.conn_timeout_ms);
        conns_.push_back(std::move(c));
      }
    }
    pi = 1;
  }

  const TimePoint now = Clock::now();
  char buf[4096];
  for (std::size_t i = 0; i < conns_.size() && pi + i < pfds.size(); ++i) {
    ServeConn& c = conns_[i];
    const short revents = ready > 0 ? pfds[pi + i].revents : 0;
    if (!c.writing && (revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      // Half-close is normal client behaviour (send, shutdown(WR), read):
      // EOF only rejects when no complete request was buffered first.
      bool eof = false;
      while (true) {
        const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
        if (n > 0) {
          c.in.append(buf, static_cast<std::size_t>(n));
          if (c.in.size() > config_.max_request_bytes) {
            c.rejected = true;
            count_request("", 413);
            finish(c, 413, "text/plain; charset=utf-8",
                   "request too large\n");
            break;
          }
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        eof = true;  // orderly close or reset
        break;
      }
      if (!c.writing) {
        bool bad = false;
        const std::size_t end = request_end(c.in, &bad);
        if (bad || (eof && end == std::string::npos)) {
          c.rejected = true;
          if (bad) {
            count_request("", 400);
            finish(c, 400, "text/plain; charset=utf-8", "bad request\n");
          } else {
            c.out.clear();
            c.writing = true;  // peer gone mid-request; reaped below
          }
        } else if (end != std::string::npos) {
          http::RequestView view =
              http::parse_request_view(std::string_view(c.in).substr(0, end));
          ControlRequest request;
          request.method = std::string(view.line.method_token);
          request.target = std::string(view.line.target);
          const std::size_t body_start = c.in.find("\r\n\r\n") + 4;
          request.body = c.in.substr(body_start, end - body_start);
          if (request.method.empty() || request.target.empty()) {
            c.rejected = true;
            count_request("", 400);
            finish(c, 400, "text/plain; charset=utf-8", "bad request\n");
          } else {
            ++dispatched;
            ++requests_handled_;
            if (requests_ != nullptr) requests_->add();
            ControlResponse response;
            try {
              response = handler_(request);
            } catch (const std::exception& e) {
              response.status = 500;
              response.content_type = "text/plain; charset=utf-8";
              response.body = std::string("handler error: ") + e.what() + "\n";
            }
            count_request(request.target, response.status);
            finish(c, response.status, response.content_type, response.body);
          }
        }
      }
    }
    if (c.writing && c.out_off < c.out.size() &&
        (revents & (POLLOUT | POLLHUP | POLLERR)) != 0) {
      while (c.out_off < c.out.size()) {
        const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                                 c.out.size() - c.out_off, MSG_NOSIGNAL);
        if (n > 0) {
          c.out_off += static_cast<std::size_t>(n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        c.out_off = c.out.size();  // peer gone; drop the response
        c.rejected = true;
        break;
      }
    }
    if (!c.writing && c.deadline <= now) {
      c.rejected = true;
      c.out.clear();
      c.writing = true;  // stalled client: reap without a response
    }
  }

  // Reap finished (response fully drained) and abandoned connections.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    ServeConn& c = conns_[i];
    if (c.writing && c.out_off >= c.out.size()) {
      if (c.rejected) {
        ++requests_rejected_;
        if (rejected_ != nullptr) rejected_->add();
      }
      ::close(c.fd);
      continue;
    }
    if (kept != i) conns_[kept] = std::move(c);
    ++kept;
  }
  conns_.resize(kept);
  return dispatched;
}

}  // namespace hdiff::net
