#include "net/chain.h"

#include <set>
#include <utility>

#include "http/view.h"

namespace hdiff::net {

void EchoServer::record(std::string uuid, std::string proxy, std::string raw) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (max_records_ != 0 && log_.size() >= max_records_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  log_.push_back(Record{std::move(uuid), std::move(proxy), std::move(raw)});
  stored_.fetch_add(1, std::memory_order_relaxed);
}

void EchoServer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  log_.clear();
  stored_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

std::string pair_key(std::string_view proxy, std::string_view backend) {
  std::string out(proxy);
  out += "->";
  out += backend;
  return out;
}

template <typename V>
VerdictCache::Inner<V>& VerdictCache::PerImpl<V>::get(const void* impl) {
  std::lock_guard<std::mutex> lock(mutex);
  std::unique_ptr<Inner<V>>& slot = by_impl[impl];
  if (!slot) slot = std::make_unique<Inner<V>>();
  return *slot;
}

template <typename V, typename Fn>
const V& VerdictCache::get_or_compute(Inner<V>& inner, std::string_view bytes,
                                      Fn&& compute) {
  {
    std::lock_guard<std::mutex> lock(inner.mutex);
    auto it = inner.map.find(bytes);  // heterogeneous: no key allocation
    if (it != inner.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;  // node-stable: never modified or evicted
    }
  }
  // Compute outside the lock: the model call dominates, and a rare
  // duplicate computation by two racing threads is deterministic anyway.
  V value = compute();
  misses_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(inner.mutex);
  auto [it, inserted] =
      inner.map.emplace(std::string(bytes), std::move(value));
  if (inserted) bytes_.fetch_add(bytes.size(), std::memory_order_relaxed);
  return it->second;
}

const impls::ProxyVerdict& VerdictCache::forward(
    const impls::HttpImplementation& proxy, std::string_view raw) {
  return get_or_compute(forwards_.get(&proxy), raw,
                        [&] { return proxy.forward_request(raw); });
}

const impls::ServerVerdict& VerdictCache::parse(
    const impls::HttpImplementation& backend, std::string_view raw) {
  return get_or_compute(parses_.get(&backend), raw,
                        [&] { return backend.parse_request(raw); });
}

const std::string& VerdictCache::respond(
    const impls::HttpImplementation& backend, std::string_view raw) {
  return get_or_compute(responses_.get(&backend), raw,
                        [&] { return backend.respond(raw); });
}

const impls::RelayOutcome& VerdictCache::relay(
    const impls::HttpImplementation& proxy, std::string_view backend_bytes,
    http::Method request_method) {
  PerImpl<impls::RelayOutcome>& by_method =
      relays_[static_cast<std::size_t>(request_method)];
  return get_or_compute(
      by_method.get(&proxy), backend_bytes,
      [&] { return proxy.relay_response(backend_bytes, request_method); });
}

VerdictCache::Stats VerdictCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  return s;
}

Chain::Chain(std::vector<const impls::HttpImplementation*> proxies,
             std::vector<const impls::HttpImplementation*> backends,
             ChainOptions options)
    : proxies_(std::move(proxies)),
      backends_(std::move(backends)),
      options_(options) {}

Chain Chain::from_fleet(
    const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet,
    ChainOptions options) {
  std::vector<const impls::HttpImplementation*> proxies;
  std::vector<const impls::HttpImplementation*> backends;
  for (const auto& impl : fleet) {
    if (impl->is_proxy()) proxies.push_back(impl.get());
    if (impl->is_server()) backends.push_back(impl.get());
  }
  return Chain(std::move(proxies), std::move(backends), options);
}

ChainObservation Chain::observe(std::string_view uuid, std::string_view raw,
                                EchoServer* echo, VerdictCache* cache,
                                const obs::ChainObs* track) const {
  if (track && !track->active()) track = nullptr;

  ChainObservation obs;
  obs.uuid.assign(uuid);
  obs.request.assign(raw);

  // Echo records are buffered and flushed only after the whole observation
  // succeeds: an attempt aborted mid-flight by a ChainFault must leave no
  // partial forwards in the log (the retry will re-record them all).
  std::vector<std::pair<std::string, std::string>> pending_echo;

  const std::uint64_t t0 = track ? track->now() : 0;
  try {
    observe_steps(obs, raw, cache, echo ? &pending_echo : nullptr, track);
  } catch (const ChainFault& fault) {
    obs.proxies.clear();
    obs.replays.clear();
    obs.relays.clear();
    obs.direct.clear();
    obs.fault = fault.error();
    obs.fault_detail = fault.what();
    if (track && track->observe_us) {
      track->observe_us->observe(track->now() - t0);
    }
    return obs;
  }
  if (track && track->observe_us) {
    track->observe_us->observe(track->now() - t0);
  }
  if (echo) {
    for (auto& [proxy, bytes] : pending_echo) {
      echo->record(obs.uuid, std::move(proxy), std::move(bytes));
    }
  }
  return obs;
}

void Chain::observe_steps(
    ChainObservation& obs, std::string_view raw, VerdictCache* cache,
    std::vector<std::pair<std::string, std::string>>* pending_echo,
    const obs::ChainObs* track) const {
  const auto replay_parse = [&](const impls::HttpImplementation& backend,
                                std::string_view bytes) {
    return cache ? cache->parse(backend, bytes) : backend.parse_request(bytes);
  };
  const auto relay = [&](const impls::HttpImplementation& proxy,
                         const impls::HttpImplementation& backend,
                         std::string_view bytes, http::Method method) {
    if (cache) {
      return cache->relay(proxy, cache->respond(backend, bytes), method);
    }
    return proxy.relay_response(backend.respond(bytes), method);
  };

  // Step 1: proxies.  `first_replayer` implements the replay-reduction
  // heuristic: byte-identical forwards reuse the first replay's verdicts.
  // Forwards (and the direct parses of step 3) are keyed by the raw bytes,
  // which the case-level ObservationMemo already deduplicates upstream, so
  // they bypass the verdict cache: only the replay path below sees inputs
  // (forwarded bytes, response streams) that collapse across distinct raws.
  std::map<std::string, std::string> first_replayer;
  for (const auto* proxy : proxies_) {
    const std::string proxy_name(proxy->name());
    const std::uint64_t f0 = track ? track->now() : 0;
    impls::ProxyVerdict v = proxy->forward_request(raw);
    std::uint64_t f1 = 0;
    if (track) {
      f1 = track->now();
      if (track->forward_us) track->forward_us->observe(f1 - f0);
      if (track->trace) {
        track->trace->complete("send->proxy", "chain", f0, f1 - f0, "proxy",
                               proxy_name);
      }
    }
    if (v.forwarded()) {
      if (pending_echo) pending_echo->emplace_back(proxy_name, v.forwarded_bytes);
      auto [it, inserted] = first_replayer.emplace(v.forwarded_bytes, proxy_name);
      const http::Method forwarded_method =
          http::sniff_method(v.forwarded_bytes);
      const std::uint64_t r0 = track ? track->now() : 0;
      if (inserted || !options_.dedupe_identical_forwards) {
        // Step 2: replay the forwarded bytes into every back-end, and relay
        // each back-end's response stream back through this proxy.
        for (const auto* backend : backends_) {
          const std::string key = pair_key(proxy_name, backend->name());
          obs.replays.emplace(key, replay_parse(*backend, v.forwarded_bytes));
          obs.relays.emplace(key, relay(*proxy, *backend, v.forwarded_bytes,
                                        forwarded_method));
        }
      } else {
        for (const auto* backend : backends_) {
          const std::string key = pair_key(proxy_name, backend->name());
          obs.replays.emplace(
              key, obs.replays.at(pair_key(it->second, backend->name())));
          // The relay depends on *this* proxy's response handling, so it is
          // recomputed even for deduplicated forwards.
          obs.relays.emplace(key, relay(*proxy, *backend, v.forwarded_bytes,
                                        forwarded_method));
        }
      }
      if (track) {
        const std::uint64_t r1 = track->now();
        if (track->replay_us) track->replay_us->observe(r1 - r0);
        if (track->trace) {
          track->trace->complete("forward->backend", "chain", r0, r1 - r0,
                                 "proxy", proxy_name);
        }
      }
    }
    obs.proxies.emplace(proxy_name, std::move(v));
  }

  // Step 3: direct back-end probes (uncached; raw bytes are the memo's key).
  const std::uint64_t d0 = track ? track->now() : 0;
  for (const auto* backend : backends_) {
    obs.direct.emplace(std::string(backend->name()),
                       backend->parse_request(raw));
  }
  if (track) {
    const std::uint64_t d1 = track->now();
    if (track->direct_us) track->direct_us->observe(d1 - d0);
    if (track->trace) track->trace->complete("direct", "chain", d0, d1 - d0);
  }
}

}  // namespace hdiff::net
