#include "net/chain.h"

#include <set>

#include "http/lexer.h" 

namespace hdiff::net {

void EchoServer::record(std::string uuid, std::string proxy, std::string raw) {
  log_.push_back(Record{std::move(uuid), std::move(proxy), std::move(raw)});
}

std::string pair_key(std::string_view proxy, std::string_view backend) {
  std::string out(proxy);
  out += "->";
  out += backend;
  return out;
}

Chain::Chain(std::vector<const impls::HttpImplementation*> proxies,
             std::vector<const impls::HttpImplementation*> backends,
             ChainOptions options)
    : proxies_(std::move(proxies)),
      backends_(std::move(backends)),
      options_(options) {}

Chain Chain::from_fleet(
    const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet,
    ChainOptions options) {
  std::vector<const impls::HttpImplementation*> proxies;
  std::vector<const impls::HttpImplementation*> backends;
  for (const auto& impl : fleet) {
    if (impl->is_proxy()) proxies.push_back(impl.get());
    if (impl->is_server()) backends.push_back(impl.get());
  }
  return Chain(std::move(proxies), std::move(backends), options);
}

ChainObservation Chain::observe(std::string_view uuid, std::string_view raw,
                                EchoServer* echo) const {
  ChainObservation obs;
  obs.uuid.assign(uuid);
  obs.request.assign(raw);

  // Step 1: proxies.  `first_replayer` implements the replay-reduction
  // heuristic: byte-identical forwards reuse the first replay's verdicts.
  std::map<std::string, std::string> first_replayer;
  for (const auto* proxy : proxies_) {
    impls::ProxyVerdict v = proxy->forward_request(raw);
    const std::string proxy_name(proxy->name());
    if (v.forwarded()) {
      if (echo) echo->record(obs.uuid, proxy_name, v.forwarded_bytes);
      auto [it, inserted] = first_replayer.emplace(v.forwarded_bytes, proxy_name);
      const http::Method forwarded_method = http::method_from_token(
          http::lex_request(v.forwarded_bytes).line.method_token);
      if (inserted || !options_.dedupe_identical_forwards) {
        // Step 2: replay the forwarded bytes into every back-end, and relay
        // each back-end's response stream back through this proxy.
        for (const auto* backend : backends_) {
          const std::string key = pair_key(proxy_name, backend->name());
          obs.replays.emplace(key, backend->parse_request(v.forwarded_bytes));
          obs.relays.emplace(
              key, proxy->relay_response(backend->respond(v.forwarded_bytes),
                                         forwarded_method));
        }
      } else {
        for (const auto* backend : backends_) {
          const std::string key = pair_key(proxy_name, backend->name());
          obs.replays.emplace(
              key, obs.replays.at(pair_key(it->second, backend->name())));
          // The relay depends on *this* proxy's response handling, so it is
          // recomputed even for deduplicated forwards.
          obs.relays.emplace(
              key, proxy->relay_response(backend->respond(v.forwarded_bytes),
                                         forwarded_method));
        }
      }
    }
    obs.proxies.emplace(proxy_name, std::move(v));
  }

  // Step 3: direct back-end probes.
  for (const auto* backend : backends_) {
    obs.direct.emplace(std::string(backend->name()),
                       backend->parse_request(raw));
  }
  return obs;
}

}  // namespace hdiff::net
