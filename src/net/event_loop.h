// Nonblocking concurrent roundtrip driver for the live chain.
//
// The blocking client (tcp.h) costs one thread per in-flight roundtrip:
// `tcp_roundtrip` parks in connect/poll/recv, so driving N scheduled cases
// concurrently from one worker is impossible and `--jobs N` buys N sockets
// at most.  `EventLoop` replaces that with an epoll-driven (poll fallback)
// state machine per connection — kConnecting -> kSending -> kReading (->
// kBackoff on retry) — so one thread drives a whole batch of roundtrips,
// overlapping every wait.  Results are classified with exactly the same
// `classify_exchange` the blocking path uses and retried under the same
// RetryPolicy (same deterministic backoff schedule, same last-attempt-wins
// and case-deadline semantics), so findings are byte-identical; only the
// wall clock changes.
//
// Buffer contract: `RoundtripJob::request` is borrowed — the caller keeps
// the request bytes alive and unmodified until the batch call returns (they
// are both sent and used as the retry jitter key and classification input).
// Each connection accumulates into a reusable recv buffer owned by the
// loop, recycled across jobs and batches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "net/error.h"
#include "net/tcp.h"
#include "obs/obs.h"

namespace hdiff::net {

/// Whether the executor/campaign drive roundtrips through the event loop.
/// kAuto resolves to on where the platform supports it (epoll or poll —
/// i.e. everywhere this builds; the knob exists so a regression can be
/// bisected at runtime with --net-loop off).
enum class NetLoopMode { kOff, kOn, kAuto };

std::string_view to_string(NetLoopMode mode) noexcept;

/// Parse "off" / "on" / "auto"; returns false on anything else.
bool net_loop_mode_from_string(std::string_view s, NetLoopMode& out) noexcept;

/// Resolve kAuto to a concrete on/off for this platform.
bool net_loop_enabled(NetLoopMode mode) noexcept;

/// One roundtrip to drive: connect to 127.0.0.1:port, send `request`, read
/// the full response.  `request` is borrowed for the duration of the batch.
struct RoundtripJob {
  std::uint16_t port = 0;
  std::string_view request;
};

struct EventLoopConfig {
  /// Silence window per connection, refreshed on every recv — the same
  /// meaning the blocking client's `idle_timeout_ms` has.
  int idle_timeout_ms = 500;
  /// Deadline for connect establishment (kConnectFail when exceeded).
  int connect_timeout_ms = 500;
  /// Upper bound on simultaneously open connections; jobs beyond it queue
  /// and start as slots free.  Bounds fd usage for large batches.
  std::size_t max_in_flight = 64;
  /// Force the poll() backend even where epoll is available (testing).
  bool force_poll = false;
  /// Metrics/tracing; resolved once at construction.
  obs::Observability obs{};
};

/// Drives batches of roundtrips from the calling thread.  Not thread-safe:
/// one EventLoop per driving thread (workers each own one).  Reusable
/// across batches; per-connection recv buffers are recycled.
class EventLoop {
 public:
  explicit EventLoop(EventLoopConfig config = {});
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// True when this loop is multiplexing with epoll, false on the poll
  /// fallback.
  bool using_epoll() const noexcept { return epoll_fd_ >= 0; }

  /// Run every job to completion concurrently; `results[i]` corresponds to
  /// `jobs[i]` and matches what `tcp_roundtrip(jobs[i]...)` would return.
  std::vector<TcpResult> run_batch(const std::vector<RoundtripJob>& jobs);

  /// `run_batch` under a RetryPolicy: per-job retries with the same
  /// deterministic backoff, case-deadline and last-attempt-wins semantics
  /// as `tcp_roundtrip_retry`; backoffs are waited inside the loop (other
  /// jobs keep progressing while one backs off).
  std::vector<TcpResult> run_batch_retry(const std::vector<RoundtripJob>& jobs,
                                         const RetryPolicy& retry);

 private:
  struct Conn;
  void drive(const std::vector<RoundtripJob>& jobs, const RetryPolicy& retry,
             std::vector<TcpResult>& results);

  EventLoopConfig config_;
  obs::NetLoopObs obs_;
  int epoll_fd_ = -1;
  std::vector<char> recv_scratch_;   ///< reused recv chunk buffer
  std::size_t reserve_hint_ = 4096;  ///< grow-once hint for accumulators
};

/// Convenience one-shot: construct a loop, run one batch with retries.
/// The executor path keeps a per-worker EventLoop instead.
std::vector<TcpResult> tcp_roundtrip_batch(
    const std::vector<RoundtripJob>& jobs, const RetryPolicy& retry = {},
    EventLoopConfig config = {});

// ---------------------------------------------------------------------------
// Server side: the control-plane accept path.
//
// EventLoop above is a *client* — it originates roundtrips.  ServeLoop is
// its server-side sibling for the `hdiff serve` control plane: a poll()-
// based accept/read/dispatch/write pump over a TcpListener, driven from the
// owner's own thread via `poll_once` so the supervisor multiplexes HTTP
// handling with worker heartbeats and waitpid in one loop, no threads.
// Deliberately poll()-only: a control plane holds a handful of fds, the
// epoll machinery would buy nothing.  One HTTP request per connection
// (Connection: close), bodies framed by Content-Length.
// ---------------------------------------------------------------------------

/// One parsed control-plane request.
struct ControlRequest {
  std::string method;  ///< e.g. "GET", "POST"
  std::string target;  ///< origin-form target, e.g. "/healthz"
  std::string body;    ///< Content-Length bytes (may be empty)
};

/// What the handler answers.  `status` picks a canned reason phrase.
struct ControlResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using ControlHandler = std::function<ControlResponse(const ControlRequest&)>;

struct ServeLoopConfig {
  /// Drop a connection that has not completed its request or drained its
  /// response within this window (a stalled client must not pin fds in the
  /// daemon).
  int conn_timeout_ms = 2000;
  /// Reject request heads/bodies larger than this (control requests are
  /// tiny; anything big is abuse or a framing bug).
  std::size_t max_request_bytes = 64 * 1024;
  obs::Observability obs{};
  /// Per-endpoint instrumentation allowlist: when non-empty (and metrics
  /// are on), every dispatched request counts toward
  /// `hdiff_serve_control_requests_total{target,status}`.  Targets are
  /// normalized first — the query string is stripped and anything not
  /// listed here becomes `other` — so a scanning client cannot mint
  /// unbounded label sets; unparseable requests count as `invalid`.
  std::vector<std::string> known_targets;
};

/// Poll-based single-threaded HTTP server pump.  Not thread-safe; the
/// listener must outlive the loop.  Malformed requests are answered 400 and
/// counted as rejected; handler exceptions answer 500.
class ServeLoop {
 public:
  ServeLoop(TcpListener& listener, ControlHandler handler,
            ServeLoopConfig config = {});
  ~ServeLoop();
  ServeLoop(const ServeLoop&) = delete;
  ServeLoop& operator=(const ServeLoop&) = delete;

  /// Accept new connections and advance every open one; blocks at most
  /// `timeout_ms` waiting for activity (0 = pure poll).  Returns the number
  /// of requests dispatched to the handler during this pass.
  std::size_t poll_once(int timeout_ms);

  std::size_t requests_handled() const noexcept { return requests_handled_; }
  std::size_t requests_rejected() const noexcept { return requests_rejected_; }
  std::size_t open_connections() const noexcept;

 private:
  struct ServeConn;
  void finish(ServeConn& c, int status, std::string_view content_type,
              std::string_view body);
  void count_request(std::string_view target, int status);

  TcpListener& listener_;
  ControlHandler handler_;
  ServeLoopConfig config_;
  obs::Counter* requests_ = nullptr;  ///< hdiff_serve_http_requests_total
  obs::Counter* rejected_ = nullptr;  ///< hdiff_serve_http_rejected_total
  /// Cache of per-(target,status) counters so repeat requests skip the
  /// registry name lookup.
  std::map<std::string, obs::Counter*> control_counters_;
  std::vector<ServeConn> conns_;
  std::size_t requests_handled_ = 0;
  std::size_t requests_rejected_ = 0;
};

}  // namespace hdiff::net
