// In-process test chain reproducing the paper's Figure 6 workflow.
//
// The experiment topology is: client -> reverse proxy (front-end) -> echo
// server, plus direct client -> back-end probes and replay of the proxy's
// forwarded bytes into each back-end.  The paper runs this over VMs and raw
// sockets; here the same three observation steps run in-process against the
// behaviour models (DESIGN.md §1), which keeps the differential engine,
// detection models and pair analysis identical while making every run
// deterministic and offline.
//
//   Step 1  client sends the test case to each proxy; the proxy either
//           rejects or produces forwarded bytes (recorded by the echo server).
//   Step 2  the forwarded bytes are replayed into every back-end.
//   Step 3  the original test case is also sent directly to every back-end.
//
// Thread-safety contract (audited for core::ParallelExecutor):
//   * `Chain::observe` is `const`, touches only local state plus the
//     `HttpImplementation` models, and the models' entry points
//     (`parse_request`, `forward_request`, `respond`, `relay_response`) are
//     `const`, stateless and deterministic — every product model is a pure
//     function of its immutable `ParsePolicy` value (audit: no mutable
//     members, no lazily-initialized statics, no globals anywhere in
//     `src/impls` or the `src/http` parsers it calls).  Concurrent
//     `observe` calls on one `Chain`, with any mix of test cases, are safe.
//   * `EchoServer::record` is internally synchronized and may be shared by
//     concurrent observers; reading `log()` must not race with `record`
//     (snapshot after workers join, as the executor does).
//   * `VerdictCache` is internally synchronized; one instance may back any
//     number of concurrent `observe` calls.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "impls/model.h"
#include "net/error.h"
#include "obs/obs.h"

namespace hdiff::net {

struct StreamObservation;  // net/stream.h

/// The echo server: records every request forwarded by a proxy, exactly as
/// received, for later replay analysis (paper §IV-A).
///
/// By default the log grows without bound; a pipeline-scale run (92k cases,
/// each forwarded by up to six proxies) would retain every forwarded byte.
/// Constructing with `max_records` caps retention: once full, further
/// records are counted in `dropped()` instead of stored, keeping memory
/// flat while the forward *counts* stay exact.  The stored/dropped counters
/// are atomic, so `offered()`/`dropped()` are safely readable at any time —
/// including while workers are still recording; only `log()` requires the
/// recorders to have joined.
class EchoServer {
 public:
  struct Record {
    std::string uuid;
    std::string proxy;
    std::string raw;  ///< forwarded bytes
  };

  EchoServer() = default;
  /// Bounded mode: retain at most `max_records` records (0 = unbounded).
  explicit EchoServer(std::size_t max_records) : max_records_(max_records) {}

  /// Thread-safe; callable from concurrent `Chain::observe` workers.
  void record(std::string uuid, std::string proxy, std::string raw);

  /// Not synchronized against concurrent `record` — read only after the
  /// recording threads have joined.
  const std::vector<Record>& log() const noexcept { return log_; }

  /// Records rejected by the `max_records` bound (0 in unbounded mode).
  /// Safe to read while workers may still `record`.
  std::size_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Total records offered (stored + dropped); safe at any time.
  std::size_t offered() const noexcept {
    return stored_.load(std::memory_order_relaxed) +
           dropped_.load(std::memory_order_relaxed);
  }
  std::size_t max_records() const noexcept { return max_records_; }

  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<Record> log_;
  std::size_t max_records_ = 0;  ///< 0 = unbounded
  std::atomic<std::size_t> stored_{0};
  std::atomic<std::size_t> dropped_{0};
};

/// Everything observed for one test case across the whole topology.
struct ChainObservation {
  std::string uuid;
  std::string request;  ///< original raw bytes

  /// Step 1: per-proxy outcome (key: proxy name).
  std::map<std::string, impls::ProxyVerdict> proxies;

  /// Step 2: per (proxy, back-end) replay of the forwarded bytes.
  /// Key: "proxy->backend".
  std::map<std::string, impls::ServerVerdict> replays;

  /// Response path: for each replayed pair, the back-end's full response
  /// stream relayed through the proxy (interim-response handling applied).
  /// Key: "proxy->backend".
  std::map<std::string, impls::RelayOutcome> relays;

  /// Step 3: per back-end direct parse of the original bytes.
  std::map<std::string, impls::ServerVerdict> direct;

  /// Harness fault channel.  `kNone` means every verdict above is genuine
  /// implementation behaviour; anything else means the observation aborted
  /// mid-flight (a model leg reset/stalled/truncated), the verdict maps are
  /// empty, and the case must be retried or quarantined — never fed to
  /// difference analysis as if the implementations had answered.
  ChainError fault = ChainError::kNone;
  std::string fault_detail;

  bool faulted() const noexcept { return fault != ChainError::kNone; }
};

/// Replay-reduction heuristic (paper §IV-A step 2): skip replaying forwards
/// that are byte-identical to an already-replayed forward for the same test
/// case, and only replay proxies that actually forwarded.
struct ChainOptions {
  bool dedupe_identical_forwards = true;
};

/// Cross-case memoization of the deterministic model calls on the chain's
/// replay path.  Proxies normalize aggressively, so distinct raw requests
/// frequently collapse to identical forwarded bytes downstream, and the
/// seed chain recomputed `parse`/`respond`/`relay_response` for every
/// (proxy, back-end) pair even when the forwarded bytes were byte-identical.
/// Entries are keyed per implementation (and, for relays, per request
/// method) with the input bytes as the map key — lookups take a
/// `string_view` and allocate nothing on a hit, and return references to
/// node-stable entries that are never evicted.  Internally synchronized.
class VerdictCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t bytes = 0;  ///< input bytes retained as cache keys
    double hit_rate() const noexcept {
      return hits + misses == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(hits + misses);
    }
  };

  /// Returned references point at cache-owned entries, which are never
  /// modified or evicted once inserted: they stay valid (and safely
  /// shareable across threads) for the cache's lifetime.
  const impls::ProxyVerdict& forward(const impls::HttpImplementation& proxy,
                                     std::string_view raw);
  const impls::ServerVerdict& parse(const impls::HttpImplementation& backend,
                                    std::string_view raw);
  const std::string& respond(const impls::HttpImplementation& backend,
                             std::string_view raw);
  const impls::RelayOutcome& relay(const impls::HttpImplementation& proxy,
                                   std::string_view backend_bytes,
                                   http::Method request_method);

  Stats stats() const;

 private:
  struct BytesHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view bytes) const noexcept {
      return std::hash<std::string_view>{}(bytes);
    }
  };

  /// Bytes -> value for one implementation; heterogeneous lookup keeps the
  /// hit path allocation-free.
  template <typename V>
  struct Inner {
    std::mutex mutex;
    std::unordered_map<std::string, V, BytesHash, std::equal_to<>> map;
  };

  /// Implementation -> inner table, created on first use.  Implementations
  /// are identified by address: the chain holds non-owning pointers to a
  /// fleet that outlives the cache.
  template <typename V>
  struct PerImpl {
    std::mutex mutex;
    std::unordered_map<const void*, std::unique_ptr<Inner<V>>> by_impl;

    Inner<V>& get(const void* impl);
  };

  template <typename V, typename Fn>
  const V& get_or_compute(Inner<V>& inner, std::string_view bytes,
                          Fn&& compute);

  static constexpr std::size_t kMethods =
      static_cast<std::size_t>(http::Method::kOther) + 1;

  PerImpl<impls::ProxyVerdict> forwards_;
  PerImpl<impls::ServerVerdict> parses_;
  PerImpl<std::string> responses_;
  std::array<PerImpl<impls::RelayOutcome>, kMethods> relays_;

  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> bytes_{0};
};

/// Non-owning view over a fleet of implementations, split by role.
class Chain {
 public:
  Chain(std::vector<const impls::HttpImplementation*> proxies,
        std::vector<const impls::HttpImplementation*> backends,
        ChainOptions options = {});

  /// Convenience: build from an owning fleet, selecting by working mode.
  static Chain from_fleet(
      const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet,
      ChainOptions options = {});

  /// Run all three steps for one test case.  `cache`, when provided, memoizes
  /// the individual model calls across observations (results are identical
  /// with or without it — every cached call is deterministic and keyed by its
  /// full input bytes).  Safe to call concurrently; see the contract above.
  ///
  /// Fault tolerance: if any model leg throws `ChainFault` (fault-injected
  /// fleets, see fault.h), the observation returns with `fault` set and no
  /// verdicts, and nothing is recorded in `echo` — a faulted attempt leaves
  /// no trace in the forward log, so counters match the fault-free run once
  /// the case is retried to success.
  ///
  /// `track`, when provided (see obs::ChainObs), times each hop — the
  /// send->proxy forward, the forward->backend replay block per proxy, the
  /// direct back-end probes, and the observation as a whole — into
  /// pre-resolved histograms and emits one trace event per hop.
  /// Observability only reads: verdicts, echo records and cache contents
  /// are byte-identical with or without it.
  ChainObservation observe(std::string_view uuid, std::string_view raw,
                           EchoServer* echo = nullptr,
                           VerdictCache* cache = nullptr,
                           const obs::ChainObs* track = nullptr) const;

  /// Connection-level observation (net/stream.h): feed an ordered message
  /// sequence into every implementation's connection automaton, keeping the
  /// connection open across messages, and record per-message *and*
  /// per-connection state — request boundaries, response queue, stranded
  /// leftover bytes, early close.  `echo` records each proxy's concatenated
  /// forwarded stream; `cache` memoizes the underlying model calls; fault
  /// semantics match `observe` (a ChainFault aborts the whole stream, which
  /// returns with `fault` set and no traces).  Defined in net/stream.cpp.
  StreamObservation observe_stream(std::string_view uuid,
                                   const std::vector<std::string>& messages,
                                   EchoServer* echo = nullptr,
                                   VerdictCache* cache = nullptr,
                                   const obs::StreamObs* track = nullptr) const;

  const std::vector<const impls::HttpImplementation*>& proxies() const {
    return proxies_;
  }
  const std::vector<const impls::HttpImplementation*>& backends() const {
    return backends_;
  }

 private:
  /// The three observation steps, minus fault handling; throws ChainFault
  /// through from the models.  `pending_echo` (when non-null) buffers the
  /// would-be echo records for the caller to flush on success.
  void observe_steps(
      ChainObservation& obs, std::string_view raw, VerdictCache* cache,
      std::vector<std::pair<std::string, std::string>>* pending_echo,
      const obs::ChainObs* track) const;

  std::vector<const impls::HttpImplementation*> proxies_;
  std::vector<const impls::HttpImplementation*> backends_;
  ChainOptions options_;
};

/// Key used in ChainObservation::replays.
std::string pair_key(std::string_view proxy, std::string_view backend);

}  // namespace hdiff::net
