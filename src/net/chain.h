// In-process test chain reproducing the paper's Figure 6 workflow.
//
// The experiment topology is: client -> reverse proxy (front-end) -> echo
// server, plus direct client -> back-end probes and replay of the proxy's
// forwarded bytes into each back-end.  The paper runs this over VMs and raw
// sockets; here the same three observation steps run in-process against the
// behaviour models (DESIGN.md §1), which keeps the differential engine,
// detection models and pair analysis identical while making every run
// deterministic and offline.
//
//   Step 1  client sends the test case to each proxy; the proxy either
//           rejects or produces forwarded bytes (recorded by the echo server).
//   Step 2  the forwarded bytes are replayed into every back-end.
//   Step 3  the original test case is also sent directly to every back-end.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "impls/model.h"

namespace hdiff::net {

/// The echo server: records every request forwarded by a proxy, exactly as
/// received, for later replay analysis (paper §IV-A).
class EchoServer {
 public:
  struct Record {
    std::string uuid;
    std::string proxy;
    std::string raw;  ///< forwarded bytes
  };

  void record(std::string uuid, std::string proxy, std::string raw);
  const std::vector<Record>& log() const noexcept { return log_; }
  void clear() { log_.clear(); }

 private:
  std::vector<Record> log_;
};

/// Everything observed for one test case across the whole topology.
struct ChainObservation {
  std::string uuid;
  std::string request;  ///< original raw bytes

  /// Step 1: per-proxy outcome (key: proxy name).
  std::map<std::string, impls::ProxyVerdict> proxies;

  /// Step 2: per (proxy, back-end) replay of the forwarded bytes.
  /// Key: "proxy->backend".
  std::map<std::string, impls::ServerVerdict> replays;

  /// Response path: for each replayed pair, the back-end's full response
  /// stream relayed through the proxy (interim-response handling applied).
  /// Key: "proxy->backend".
  std::map<std::string, impls::RelayOutcome> relays;

  /// Step 3: per back-end direct parse of the original bytes.
  std::map<std::string, impls::ServerVerdict> direct;
};

/// Replay-reduction heuristic (paper §IV-A step 2): skip replaying forwards
/// that are byte-identical to an already-replayed forward for the same test
/// case, and only replay proxies that actually forwarded.
struct ChainOptions {
  bool dedupe_identical_forwards = true;
};

/// Non-owning view over a fleet of implementations, split by role.
class Chain {
 public:
  Chain(std::vector<const impls::HttpImplementation*> proxies,
        std::vector<const impls::HttpImplementation*> backends,
        ChainOptions options = {});

  /// Convenience: build from an owning fleet, selecting by working mode.
  static Chain from_fleet(
      const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet,
      ChainOptions options = {});

  /// Run all three steps for one test case.
  ChainObservation observe(std::string_view uuid, std::string_view raw,
                           EchoServer* echo = nullptr) const;

  const std::vector<const impls::HttpImplementation*>& proxies() const {
    return proxies_;
  }
  const std::vector<const impls::HttpImplementation*>& backends() const {
    return backends_;
  }

 private:
  std::vector<const impls::HttpImplementation*> proxies_;
  std::vector<const impls::HttpImplementation*> backends_;
  ChainOptions options_;
};

/// Key used in ChainObservation::replays.
std::string pair_key(std::string_view proxy, std::string_view backend);

}  // namespace hdiff::net
