// Connection-level stream observation: the request *stream* as a test unit.
//
// Single-request observation (chain.h) asks "what does each implementation
// make of these bytes?".  The smuggling class the paper targets is exploited
// one level up: on a persistent connection, the bytes one implementation
// leaves unconsumed become the *next* request's prefix, so two parsers that
// both accept a message but disagree on where it ends answer different
// request sequences from the same byte stream.  `Chain::observe_stream`
// makes that state first-class: it feeds an ordered message sequence into
// every implementation's connection automaton and records, per connection,
// where each request boundary landed, how many responses were produced,
// which targets were answered, and what was left stranded in the buffer.
//
// The connection automaton per back-end follows the model semantics audited
// in impls/model.cpp:
//   * `ServerVerdict::leftover` is the unconsumed suffix — the next
//     request's prefix;
//   * `incomplete` means the parser is blocked awaiting more bytes (and
//     leftover is cleared), so the automaton waits for the next message;
//   * `close_connection` (including every >= 400 rejection) tears the
//     connection down: later messages are never delivered and whatever is
//     still buffered is stranded.
//
// Proxies forward message-by-message (the model proxies are per-request
// forwarders); each (proxy, back-end) pair then gets a *relayed* connection
// trace — the back-end automaton run over the proxy's forwarded stream —
// which is where response-queue poisoning becomes visible: the proxy
// expects one response per forwarded request, the back-end may produce more
// (a stranded remainder parsed as an extra request) or fewer.
//
// Thread-safety matches `Chain::observe`: everything is const over
// deterministic models, `EchoServer`/`VerdictCache` are internally
// synchronized, so concurrent `observe_stream` calls are safe.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "net/chain.h"
#include "obs/obs.h"

namespace hdiff::net {

/// One implementation's connection automaton run over a message sequence.
struct ConnectionTrace {
  std::string impl;
  /// Cumulative consumed-byte offset after each parsed request — the
  /// request boundaries this parser saw in the stream.  Two traces with
  /// different vectors split the same bytes into different messages.
  std::vector<std::size_t> boundaries;
  /// Status answered for each parsed request (index-aligned with
  /// `boundaries`).
  std::vector<int> statuses;
  /// Request target answered for each parsed request — the response queue
  /// as the back-end built it.
  std::vector<std::string> targets;
  std::size_t consumed = 0;   ///< total bytes consumed as requests
  std::string leftover;       ///< bytes still buffered at end of stream
  bool early_close = false;   ///< connection torn down before the stream end
  bool blocked = false;       ///< ended awaiting more bytes (incomplete)
  std::size_t delivered = 0;  ///< messages fed before any early close

  std::size_t responses() const noexcept { return statuses.size(); }
};

/// One proxy's view of the stream: per-message forward/reject outcomes.
struct ProxyStreamTrace {
  std::string impl;
  /// Forwarded bytes per *accepted* message, in stream order.
  std::vector<std::string> forwarded;
  std::size_t rejected = 0;      ///< messages the proxy refused to forward
  int first_reject_status = 0;

  /// The byte stream the back-end connection actually receives.
  std::string forwarded_stream() const;
};

/// Everything observed for one request stream across the topology.
struct StreamObservation {
  std::string uuid;
  std::vector<std::string> messages;
  std::string wire;  ///< concatenated message bytes

  /// Direct connection: the raw stream into each back-end (key: name).
  std::map<std::string, ConnectionTrace> direct;
  /// Per-proxy forwarding outcomes (key: proxy name).
  std::map<std::string, ProxyStreamTrace> proxies;
  /// Relayed connection: the back-end automaton over the proxy's forwarded
  /// stream (key: "proxy->backend"; pairs whose proxy forwarded nothing are
  /// absent).
  std::map<std::string, ConnectionTrace> relayed;

  /// Harness fault channel, same contract as ChainObservation: anything but
  /// kNone means the traces are empty and the stream must be retried or
  /// quarantined.
  ChainError fault = ChainError::kNone;
  std::string fault_detail;

  bool faulted() const noexcept { return fault != ChainError::kNone; }
};

/// Run one back-end's connection automaton over `messages`.  `cache`, when
/// provided, memoizes the per-buffer parse calls (deterministic either
/// way).  Throws ChainFault through from fault-injected models.
ConnectionTrace run_connection(const impls::HttpImplementation& backend,
                               const std::vector<std::string>& messages,
                               VerdictCache* cache = nullptr);

}  // namespace hdiff::net
