// Structured harness-fault taxonomy for the test chain.
//
// The live chain (tcp.h) and the in-process chain (chain.h) both drive
// implementations that can misbehave for reasons that have nothing to do
// with HTTP semantics: a peer resets, a socket stalls, a response arrives
// truncated.  The seed collapsed every such failure into an empty response,
// which difference analysis cannot tell apart from "the implementation
// rejected the request" — one bad socket could masquerade as a behavioural
// difference.  `ChainError` names the failure modes explicitly so every
// layer above (chain observation, executor retry/quarantine, detection)
// can distinguish *harness fault* from *implementation behaviour*.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace hdiff::net {

/// Why an observation (or one leg of it) failed at the harness level.
/// `kNone` means the observation is a genuine implementation behaviour.
enum class ChainError {
  kNone,         ///< no harness fault; verdicts are trustworthy
  kTimeout,      ///< peer went silent before the response completed
  kReset,        ///< connection reset / closed before any usable response
  kTruncated,    ///< peer closed mid-message (framing says bytes are missing)
  kConnectFail,  ///< could not reach the peer at all
  kMalformed,    ///< peer answered bytes that are not an HTTP response
};

/// Number of `ChainError` values (for per-kind counter arrays).
inline constexpr std::size_t kChainErrorCount = 6;

std::string_view to_string(ChainError e) noexcept;

/// Thrown by fault-injecting decorators (fault.h) and catchable by the
/// chain: carries the taxonomy entry so the observation records *why* it
/// failed instead of fabricating an empty verdict.
class ChainFault : public std::runtime_error {
 public:
  ChainFault(ChainError error, const std::string& detail)
      : std::runtime_error(detail), error_(error) {}

  ChainError error() const noexcept { return error_; }

 private:
  ChainError error_;
};

/// Retry/backoff policy shared by the TCP client and the executor.
///
/// Backoff is exponential with *deterministic* jitter: the jitter for a
/// given (key, attempt) is a pure hash, so two identical runs sleep the
/// same schedule and a differential run stays reproducible end to end.
struct RetryPolicy {
  /// Total observation attempts per case (first try included).  1 = no
  /// retries (the seed's behaviour).
  int attempts = 3;
  /// Backoff before retry k (0-based) is ~ `backoff_base_ms << k`, capped
  /// at `backoff_max_ms`, jittered into [delay/2, delay].
  int backoff_base_ms = 1;
  int backoff_max_ms = 50;
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  /// Wall-clock budget per case across all attempts; once exceeded no
  /// further attempt is started (a finished good attempt is always kept).
  /// 0 = unlimited.
  int case_deadline_ms = 0;

  /// Milliseconds to sleep before retry number `completed_attempts`
  /// (0-based), jitter keyed by `key` (typically the raw request bytes).
  int backoff_ms(int completed_attempts, std::string_view key) const noexcept;
};

}  // namespace hdiff::net
