#include "net/stream.h"

#include <utility>

#include "http/lexer.h"

namespace hdiff::net {

std::string ProxyStreamTrace::forwarded_stream() const {
  std::string out;
  for (const auto& f : forwarded) out += f;
  return out;
}

ConnectionTrace run_connection(const impls::HttpImplementation& backend,
                               const std::vector<std::string>& messages,
                               VerdictCache* cache) {
  ConnectionTrace trace;
  trace.impl = std::string(backend.name());
  std::string buffer;
  for (const auto& message : messages) {
    if (trace.early_close) break;
    ++trace.delivered;
    buffer += message;
    trace.blocked = false;
    while (!buffer.empty() && !trace.early_close) {
      impls::ServerVerdict local;
      const impls::ServerVerdict* v;
      if (cache != nullptr) {
        v = &cache->parse(backend, buffer);
      } else {
        local = backend.parse_request(buffer);
        v = &local;
      }
      if (v->incomplete) {
        // Parser blocked mid-message: wait for the next message's bytes.
        trace.blocked = true;
        break;
      }
      // A verdict that consumes nothing (leftover at least as long as the
      // buffer) would loop forever; treat it as blocked so the trace stays
      // finite whatever a model's leftover semantics turn out to be.
      if (v->leftover.size() >= buffer.size()) {
        trace.blocked = true;
        break;
      }
      trace.consumed += buffer.size() - v->leftover.size();
      trace.boundaries.push_back(trace.consumed);
      trace.statuses.push_back(v->status);
      trace.targets.push_back(http::lex_request(buffer).line.target);
      if (v->close_connection) trace.early_close = true;
      buffer = v->leftover;
    }
  }
  trace.leftover = std::move(buffer);
  return trace;
}

StreamObservation Chain::observe_stream(std::string_view uuid,
                                        const std::vector<std::string>& messages,
                                        EchoServer* echo, VerdictCache* cache,
                                        const obs::StreamObs* track) const {
  if (track && !track->active()) track = nullptr;

  StreamObservation obs;
  obs.uuid.assign(uuid);
  obs.messages = messages;
  for (const auto& m : messages) obs.wire += m;

  // Echo records are buffered like Chain::observe's: a stream aborted
  // mid-flight by a ChainFault must leave no partial forwards in the log.
  std::vector<std::pair<std::string, std::string>> pending_echo;

  const std::uint64_t t0 = track ? track->now() : 0;
  try {
    // Direct connections: the raw stream into every back-end.
    for (const auto* backend : backends_) {
      obs.direct.emplace(std::string(backend->name()),
                         run_connection(*backend, messages, cache));
    }
    // Proxies forward message-by-message; each (proxy, back-end) pair gets
    // the back-end automaton run over the forwarded stream.
    for (const auto* proxy : proxies_) {
      ProxyStreamTrace pt;
      pt.impl = std::string(proxy->name());
      for (const auto& message : messages) {
        impls::ProxyVerdict local;
        const impls::ProxyVerdict* v;
        if (cache != nullptr) {
          v = &cache->forward(*proxy, message);
        } else {
          local = proxy->forward_request(message);
          v = &local;
        }
        if (v->forwarded()) {
          pt.forwarded.push_back(v->forwarded_bytes);
        } else {
          ++pt.rejected;
          if (pt.first_reject_status == 0) pt.first_reject_status = v->status;
        }
      }
      if (!pt.forwarded.empty()) {
        if (echo) pending_echo.emplace_back(pt.impl, pt.forwarded_stream());
        for (const auto* backend : backends_) {
          obs.relayed.emplace(pair_key(pt.impl, backend->name()),
                              run_connection(*backend, pt.forwarded, cache));
        }
      }
      obs.proxies.emplace(pt.impl, std::move(pt));
    }
  } catch (const ChainFault& fault) {
    obs.direct.clear();
    obs.proxies.clear();
    obs.relayed.clear();
    obs.fault = fault.error();
    obs.fault_detail = fault.what();
    if (track && track->observe_us) {
      track->observe_us->observe(track->now() - t0);
    }
    return obs;
  }
  if (track) {
    const std::uint64_t t1 = track->now();
    if (track->observe_us) track->observe_us->observe(t1 - t0);
    if (track->messages) track->messages->observe(messages.size());
    if (track->streams) track->streams->add(1);
    if (track->trace) {
      track->trace->complete("stream", "chain", t0, t1 - t0, "messages",
                             std::to_string(messages.size()));
    }
  }
  if (echo) {
    for (auto& [proxy, bytes] : pending_echo) {
      echo->record(obs.uuid, std::move(proxy), std::move(bytes));
    }
  }
  return obs;
}

}  // namespace hdiff::net
