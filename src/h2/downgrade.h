// HTTP/2 → HTTP/1.1 downgrade modeling (paper §V, Future Research: "a
// client can cause various types of denial-of-service attacks in cases
// where an intermediary supports HTTP/2 while the webserver uses HTTP/1.1
// ... it is also valuable to expand our work to the HTTP 2.0 version").
//
// HTTP/2 transports requests as binary frames with pseudo-headers; a
// front-end that speaks h2 to clients and h1 to origins must *translate*.
// Because h2 has no request-line and frames its own body lengths, the
// translation step re-introduces exactly the ambiguities HTTP/1.1 parsing
// has — and h2 requests can smuggle h1 artifacts (a content-length that
// disagrees with the DATA length, a transfer-encoding header, CRLF
// sequences inside header values) into the downgraded byte stream.
//
// The model here is semantic, not wire-level: an `H2Request` carries the
// pseudo-headers and header list a decoded h2 request would, and
// `DowngradePolicy` captures the translation decisions real gateways
// differ on.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hdiff::h2 {

/// One decoded HTTP/2 request (after HPACK; field names are already
/// lower-case on the wire in h2).
struct H2Request {
  std::string method = "GET";     ///< :method
  std::string scheme = "http";    ///< :scheme
  std::string authority;          ///< :authority
  std::string path = "/";         ///< :path
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;               ///< concatenated DATA frames

  H2Request& add(std::string name, std::string value);
  /// First value for `name` ("" if absent).
  std::string get(std::string_view name) const;
};

/// Translation decisions where deployed h2 gateways diverge.
struct DowngradePolicy {
  std::string name = "h2-gateway";
  /// Validate that a content-length header matches the actual DATA length
  /// (RFC 7540 §8.1.2.6 makes a mismatch a protocol error).
  bool enforce_content_length_match = true;
  /// Reject connection-specific headers (transfer-encoding, connection,
  /// keep-alive ...) which are malformed in h2 (RFC 7540 §8.1.2.2) — a
  /// gateway that instead *forwards* them reintroduces h1 framing ambiguity.
  bool reject_connection_specific = true;
  /// Reject CR/LF/NUL inside header values (they become header/request
  /// injection once serialized to h1).
  bool reject_ctl_in_values = true;
  /// Reject CR/LF/space in :method / :path / :authority (request-line
  /// injection on serialization).
  bool reject_ctl_in_pseudo = true;
  /// Emit Content-Length computed from the DATA length (true) or copy the
  /// client-supplied content-length header verbatim (false — the "h2.CL"
  /// desync primitive).
  bool recompute_content_length = true;
};

/// Outcome of a downgrade attempt.
struct DowngradeResult {
  bool rejected = false;     ///< gateway refused the h2 request
  std::string reason;
  std::string h1_bytes;      ///< the serialized HTTP/1.1 request
};

/// Translate an h2 request to h1 bytes under `policy`.
DowngradeResult downgrade(const H2Request& request,
                          const DowngradePolicy& policy);

/// A strict RFC 7540 gateway and two weakened variants modeled on the
/// publicly documented h2-downgrade desync classes.
DowngradePolicy strict_gateway();
DowngradePolicy cl_trusting_gateway();  ///< forwards client content-length
DowngradePolicy te_forwarding_gateway();///< forwards connection-specific hdrs

}  // namespace hdiff::h2
