#include "h2/downgrade.h"

#include "http/header_util.h"

namespace hdiff::h2 {

namespace {

bool has_ctl(std::string_view s) {
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u == '\r' || u == '\n' || u == '\0') return true;
  }
  return false;
}

bool has_ctl_or_space(std::string_view s) {
  return has_ctl(s) || s.find(' ') != std::string_view::npos;
}

bool is_connection_specific(std::string_view name) {
  return http::iequals(name, "connection") ||
         http::iequals(name, "keep-alive") ||
         http::iequals(name, "proxy-connection") ||
         http::iequals(name, "transfer-encoding") ||
         http::iequals(name, "upgrade");
}

}  // namespace

H2Request& H2Request::add(std::string name, std::string value) {
  headers.emplace_back(std::move(name), std::move(value));
  return *this;
}

std::string H2Request::get(std::string_view name) const {
  for (const auto& [n, v] : headers) {
    if (http::iequals(n, name)) return v;
  }
  return {};
}

DowngradeResult downgrade(const H2Request& request,
                          const DowngradePolicy& policy) {
  DowngradeResult out;
  auto reject = [&](std::string why) {
    out.rejected = true;
    out.reason = std::move(why);
  };

  if (policy.reject_ctl_in_pseudo) {
    if (has_ctl_or_space(request.method) || has_ctl_or_space(request.path) ||
        has_ctl_or_space(request.authority)) {
      reject("control bytes or spaces in a pseudo-header");
      return out;
    }
  }

  std::string client_cl = request.get("content-length");
  if (policy.enforce_content_length_match && !client_cl.empty()) {
    auto parsed = http::parse_content_length_strict(client_cl);
    if (!parsed || *parsed != request.body.size()) {
      reject("content-length does not match the DATA length (RFC 7540 "
             "section 8.1.2.6)");
      return out;
    }
  }

  bool forwarded_te = false;
  std::string h1;
  h1 += request.method;
  h1 += ' ';
  h1 += request.path.empty() ? "/" : request.path;
  h1 += " HTTP/1.1\r\n";
  h1 += "Host: " + request.authority + "\r\n";

  bool wrote_cl = false;
  for (const auto& [name, value] : request.headers) {
    if (http::iequals(name, "host")) continue;  // :authority wins
    if (is_connection_specific(name)) {
      if (policy.reject_connection_specific) {
        reject("connection-specific header '" + name +
               "' is malformed in HTTP/2 (RFC 7540 section 8.1.2.2)");
        return out;
      }
      // Forwarded verbatim: the h1 origin now sees framing headers the h2
      // layer never honoured.
      if (http::iequals(name, "transfer-encoding")) forwarded_te = true;
      h1 += name + ": " + value + "\r\n";
      continue;
    }
    if (policy.reject_ctl_in_values && (has_ctl(name) || has_ctl(value))) {
      reject("control bytes in header '" + name + "'");
      return out;
    }
    if (http::iequals(name, "content-length")) {
      if (!policy.recompute_content_length) {
        h1 += "Content-Length: " + value + "\r\n";
        wrote_cl = true;
      }
      continue;
    }
    h1 += name + ": " + value + "\r\n";
  }

  if (!wrote_cl && !forwarded_te &&
      (!request.body.empty() || http::iequals(request.method, "POST") ||
       http::iequals(request.method, "PUT"))) {
    h1 += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
  }
  h1 += "Via: 2.0 " + policy.name + "\r\n";
  h1 += "\r\n";
  h1 += request.body;
  out.h1_bytes = std::move(h1);
  return out;
}

DowngradePolicy strict_gateway() {
  DowngradePolicy p;
  p.name = "h2-strict";
  return p;
}

DowngradePolicy cl_trusting_gateway() {
  DowngradePolicy p;
  p.name = "h2-cl-trusting";
  p.enforce_content_length_match = false;
  p.recompute_content_length = false;  // the "h2.CL" desync primitive
  return p;
}

DowngradePolicy te_forwarding_gateway() {
  DowngradePolicy p;
  p.name = "h2-te-forwarding";
  p.reject_connection_specific = false;  // the "h2.TE" desync primitive
  return p;
}

}  // namespace hdiff::h2
