#include "text/clause.h"

#include <algorithm>
#include <cctype>

namespace hdiff::text {

namespace {

bool is_noun_like(Pos p) {
  return p == Pos::kNoun || p == Pos::kProperNoun;
}

/// Singular fold: strip one trailing 's' from words longer than 3 chars.
std::string fold_plural(std::string_view w) {
  std::string out(w);
  if (out.size() > 3 && out.back() == 's') out.pop_back();
  return out;
}

}  // namespace

std::vector<Clause> split_clauses(std::string_view sentence) {
  std::vector<Clause> out;
  DepTree tree = parse_dependencies(sentence);
  const auto& toks = tree.tokens;

  // Find coordination boundaries: cc tokens that link verb groups (arcs with
  // Rel::kCc), plus semicolons.
  std::vector<std::size_t> cut_tokens;  // token index where a new clause starts
  for (const auto& arc : tree.arcs) {
    if (arc.rel == Rel::kCc) cut_tokens.push_back(arc.dep);
  }
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].pos == Pos::kPunct && toks[i].text == ";") {
      cut_tokens.push_back(i);
    }
  }
  if (cut_tokens.empty()) {
    out.push_back(Clause{std::string(sentence), std::nullopt});
    return out;
  }
  std::sort(cut_tokens.begin(), cut_tokens.end());

  // Main-clause subject (if any) is inherited by subject-less clauses.
  std::optional<std::string> main_subject;
  if (tree.root) {
    if (auto subj = tree.find_dep(*tree.root, Rel::kNsubj)) {
      main_subject = toks[*subj].text;
    }
  }

  std::size_t clause_start_tok = 0;
  auto emit = [&](std::size_t from_tok, std::size_t to_tok) {
    if (from_tok >= to_tok || from_tok >= toks.size()) return;
    std::size_t from_off = toks[from_tok].offset;
    std::size_t to_off = to_tok < toks.size()
                             ? toks[to_tok].offset
                             : sentence.size();
    std::string_view piece = sentence.substr(from_off, to_off - from_off);
    while (!piece.empty() &&
           (piece.back() == ' ' || piece.back() == ',' || piece.back() == ';')) {
      piece.remove_suffix(1);
    }
    if (piece.empty()) return;
    Clause clause;
    clause.text.assign(piece);
    // Does this clause have its own subject (a noun before its first verb)?
    bool has_subject = false;
    bool saw_verb = false;
    for (std::size_t k = from_tok; k < std::min(to_tok, toks.size()); ++k) {
      if (toks[k].pos == Pos::kVerb || toks[k].pos == Pos::kModal) {
        saw_verb = true;
        break;
      }
      if (is_noun_like(toks[k].pos) || toks[k].pos == Pos::kPron) {
        has_subject = true;
      }
    }
    if (saw_verb && !has_subject && !out.empty()) {
      clause.inherited_subject = main_subject;
    }
    out.push_back(std::move(clause));
  };

  for (std::size_t cut : cut_tokens) {
    emit(clause_start_tok, cut);
    clause_start_tok = cut + 1;  // skip the conjunction / semicolon itself
  }
  emit(clause_start_tok, toks.size());

  if (out.empty()) out.push_back(Clause{std::string(sentence), std::nullopt});
  return out;
}

std::vector<Referent> find_referents(std::string_view sentence) {
  static constexpr std::string_view kDeterminers[] = {"this", "that", "such",
                                                      "these", "those"};
  static constexpr std::string_view kNouns[] = {
      "message",  "request", "response", "field",  "header",
      "uri",      "value",   "element",  "method", "connection",
      "encoding", "body",
  };
  std::vector<Referent> out;
  std::vector<Token> toks = analyze(sentence);
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    bool det_match = false;
    for (auto d : kDeterminers) {
      if (toks[i].lower == d) det_match = true;
    }
    if (!det_match) continue;
    // "such a message": an article may sit between determiner and noun.
    std::size_t noun_at = i + 1;
    if (noun_at + 1 < toks.size() &&
        (toks[noun_at].lower == "a" || toks[noun_at].lower == "an" ||
         toks[noun_at].lower == "the")) {
      ++noun_at;
    }
    std::string folded = fold_plural(toks[noun_at].lower);
    for (auto noun : kNouns) {
      if (folded == noun) {
        Referent ref;
        ref.phrase = toks[i].text + " " + toks[noun_at].text;
        ref.noun = folded;
        ref.offset = toks[i].offset;
        out.push_back(std::move(ref));
        break;
      }
    }
  }
  return out;
}

std::optional<std::string> resolve_referent(
    const std::vector<Sentence>& document, std::size_t sentence_index,
    const Referent& referent, std::size_t window) {
  if (sentence_index == 0 || document.empty()) return std::nullopt;
  std::size_t lo = sentence_index > window ? sentence_index - window : 0;
  for (std::size_t i = sentence_index; i-- > lo;) {
    const Sentence& cand = document[i];
    std::vector<Token> toks = analyze(cand.text);
    for (std::size_t k = 0; k < toks.size(); ++k) {
      if (fold_plural(toks[k].lower) != referent.noun) continue;
      // Exclude sentences where the noun is itself part of a referent
      // phrase ("such request" referring further back) — the paper found no
      // iterative referential chains in RFC text, so a defining mention is
      // one *not* preceded by a referent determiner.
      bool is_referent_use =
          k > 0 && (toks[k - 1].lower == "such" || toks[k - 1].lower == "this" ||
                    toks[k - 1].lower == "that" || toks[k - 1].lower == "these" ||
                    toks[k - 1].lower == "those");
      if (!is_referent_use) return cand.text;
    }
  }
  return std::nullopt;
}

std::string merge_referred_context(const std::vector<Sentence>& document,
                                   std::size_t sentence_index,
                                   std::size_t window) {
  if (sentence_index >= document.size()) return {};
  const std::string& sentence = document[sentence_index].text;
  std::vector<Referent> refs = find_referents(sentence);
  for (const auto& ref : refs) {
    auto referred = resolve_referent(document, sentence_index, ref, window);
    if (referred) {
      return *referred + " " + sentence;
    }
  }
  return sentence;
}

}  // namespace hdiff::text
