// Sentence segmentation for RFC prose.
//
// RFC text is plain ASCII with hard-wrapped lines; sentence boundaries are
// '.', '!', '?' followed by whitespace and an upper-case/clause start.  The
// splitter protects common abbreviations ("e.g.", "i.e.", "Sec.", "cf."),
// decimal/version numbers ("HTTP/1.1", "Section 3.2.2"), and list markers so
// the SR finder sees whole requirement sentences.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hdiff::text {

struct Sentence {
  std::string text;       ///< whitespace-normalized sentence
  std::size_t index = 0;  ///< position within the document
};

/// Collapse hard line wraps and repeated whitespace to single spaces.
std::string normalize_whitespace(std::string_view text);

/// Split normalized or raw document text into sentences.  Fragments shorter
/// than `min_words` words are dropped (headings, table cells, ABNF lines).
std::vector<Sentence> split_sentences(std::string_view text,
                                      std::size_t min_words = 3);

/// Count whitespace-delimited words.
std::size_t count_words(std::string_view text);

/// Heuristic: does this "sentence" actually look like ABNF grammar that
/// leaked through sentence splitting ("OWS = *( SP / HTAB ) ...")?  The SR
/// finder skips such fragments — grammar is handled by the ABNF extractor.
bool looks_like_grammar(std::string_view sentence);

}  // namespace hdiff::text
