// Shallow dependency parsing for RFC requirement prose.
//
// The Text2Rule converter consumes a handful of grammatical relations: the
// subject role ("server", "proxy", "sender"), the modal auxiliary ("MUST"),
// negation, the governed verb ("respond", "reject"), objects and
// prepositional attachments carrying HTTP fields and status codes, and
// cc/conj coordination for clause splitting.  This parser produces exactly
// those arcs with deterministic attachment rules (DESIGN.md §1 explains the
// substitution for the paper's spaCy RoBERTa parser).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "text/token.h"

namespace hdiff::text {

enum class Rel {
  kRoot,
  kNsubj,
  kAux,    ///< modal auxiliary attached to a verb
  kNeg,
  kDobj,
  kPrep,   ///< verb/noun -> preposition
  kPobj,   ///< preposition -> object head
  kConj,   ///< coordinated element
  kCc,     ///< the conjunction token itself
  kAmod,   ///< adjective modifier of a noun
  kDet,
  kMark,   ///< subordinating conjunction introducing a clause
  kDep,    ///< unclassified attachment
};

std::string_view to_string(Rel rel) noexcept;

struct Arc {
  std::size_t head = 0;  ///< token index of the governor
  std::size_t dep = 0;   ///< token index of the dependent
  Rel rel = Rel::kDep;
};

struct DepTree {
  std::vector<Token> tokens;
  std::vector<Arc> arcs;
  std::optional<std::size_t> root;  ///< main-clause verb

  /// First dependent of `head` with relation `rel`, if any.
  std::optional<std::size_t> find_dep(std::size_t head, Rel rel) const;

  /// All dependents of `head` with relation `rel`, in token order.
  std::vector<std::size_t> deps(std::size_t head, Rel rel) const;

  /// All heads of `dep` (normally one).
  std::optional<std::size_t> head_of(std::size_t dep) const;

  /// Render "rel(head, dep)" lines for debugging / examples.
  std::string to_debug_string() const;
};

/// Parse a single sentence.
DepTree parse_dependencies(std::string_view sentence);

/// Parse pre-analyzed tokens (lets callers reuse tokenization).
DepTree parse_dependencies(std::vector<Token> tokens);

}  // namespace hdiff::text
