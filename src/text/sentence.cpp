#include "text/sentence.h"

#include <cctype>

namespace hdiff::text {

std::string normalize_whitespace(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool in_ws = true;  // also trims leading whitespace
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_ws) {
        out.push_back(' ');
        in_ws = true;
      }
    } else {
      out.push_back(c);
      in_ws = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::size_t count_words(std::string_view text) {
  std::size_t count = 0;
  bool in_word = false;
  for (char c : text) {
    bool ws = std::isspace(static_cast<unsigned char>(c)) != 0;
    if (!ws && !in_word) ++count;
    in_word = !ws;
  }
  return count;
}

namespace {

/// Abbreviations after which a '.' does not end a sentence.
bool is_protected_abbrev(std::string_view before) {
  static constexpr std::string_view kAbbrevs[] = {
      "e.g", "i.e", "cf", "etc", "vs", "sec", "fig", "no", "resp", "incl",
  };
  // `before` is the word immediately preceding the period, lower-cased by
  // the caller.
  for (auto a : kAbbrevs) {
    if (before == a) return true;
  }
  return false;
}

std::string lower_copy(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

bool looks_like_grammar(std::string_view sentence) {
  // Rule-definition shape: a token followed by '=' early in the fragment,
  // or several ABNF metacharacters ('/', '*(', '%x', DQUOTE pairs).
  std::size_t eq = sentence.find(" = ");
  if (eq != std::string_view::npos && eq < 24) return true;
  if (sentence.find("=/") != std::string_view::npos) return true;
  int metachars = 0;
  for (std::size_t i = 0; i + 1 < sentence.size(); ++i) {
    if (sentence[i] == '*' && sentence[i + 1] == '(') ++metachars;
    if (sentence[i] == '%' && (sentence[i + 1] == 'x' || sentence[i + 1] == 'd')) {
      ++metachars;
    }
    if (sentence[i] == ';' && i > 0 && sentence[i - 1] == ' ') ++metachars;
  }
  return metachars >= 2;
}

std::vector<Sentence> split_sentences(std::string_view raw,
                                      std::size_t min_words) {
  std::string text = normalize_whitespace(raw);
  std::vector<Sentence> out;
  std::size_t start = 0;
  std::size_t index = 0;

  auto emit = [&](std::size_t end) {
    while (start < end && text[start] == ' ') ++start;
    std::string_view s(text.data() + start, end - start);
    while (!s.empty() && s.back() == ' ') s.remove_suffix(1);
    if (count_words(s) >= min_words) {
      out.push_back(Sentence{std::string(s), index++});
    }
    start = end;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c != '.' && c != '!' && c != '?') continue;
    // Not a boundary when followed by a non-space (decimal "1.1", "3.2.2").
    if (i + 1 < text.size() && text[i + 1] != ' ') continue;
    if (c == '.') {
      // Find the word before the period.
      std::size_t w_end = i;
      std::size_t w_start = w_end;
      while (w_start > start && text[w_start - 1] != ' ') --w_start;
      std::string before = lower_copy(
          std::string_view(text.data() + w_start, w_end - w_start));
      // Strip enclosing parens: "(e.g." -> "e.g"
      while (!before.empty() && (before.front() == '(' || before.front() == '"')) {
        before.erase(before.begin());
      }
      if (is_protected_abbrev(before)) continue;
      // Single capital letter initial ("R. Fielding").
      if (before.size() == 1 && std::isupper(static_cast<unsigned char>(
                                    text[w_start]))) {
        continue;
      }
    }
    emit(i + 1);
  }
  if (start < text.size()) emit(text.size());
  return out;
}

}  // namespace hdiff::text
