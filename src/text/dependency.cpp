#include "text/dependency.h"

#include <string>

namespace hdiff::text {

std::string_view to_string(Rel rel) noexcept {
  switch (rel) {
    case Rel::kRoot: return "root";
    case Rel::kNsubj: return "nsubj";
    case Rel::kAux: return "aux";
    case Rel::kNeg: return "neg";
    case Rel::kDobj: return "dobj";
    case Rel::kPrep: return "prep";
    case Rel::kPobj: return "pobj";
    case Rel::kConj: return "conj";
    case Rel::kCc: return "cc";
    case Rel::kAmod: return "amod";
    case Rel::kDet: return "det";
    case Rel::kMark: return "mark";
    case Rel::kDep: return "dep";
  }
  return "dep";
}

std::optional<std::size_t> DepTree::find_dep(std::size_t head, Rel rel) const {
  for (const auto& a : arcs) {
    if (a.head == head && a.rel == rel) return a.dep;
  }
  return std::nullopt;
}

std::vector<std::size_t> DepTree::deps(std::size_t head, Rel rel) const {
  std::vector<std::size_t> out;
  for (const auto& a : arcs) {
    if (a.head == head && a.rel == rel) out.push_back(a.dep);
  }
  return out;
}

std::optional<std::size_t> DepTree::head_of(std::size_t dep) const {
  for (const auto& a : arcs) {
    if (a.dep == dep) return a.head;
  }
  return std::nullopt;
}

std::string DepTree::to_debug_string() const {
  std::string out;
  for (const auto& a : arcs) {
    out += std::string(to_string(a.rel)) + "(" + tokens[a.head].text + ", " +
           tokens[a.dep].text + ")\n";
  }
  return out;
}

namespace {

bool is_noun_like(Pos p) {
  return p == Pos::kNoun || p == Pos::kProperNoun || p == Pos::kPron ||
         p == Pos::kNum || p == Pos::kSymbol;
}

bool is_verb_like(Pos p) { return p == Pos::kVerb; }

bool is_neg(const Token& t) {
  return t.lower == "not" || t.lower == "never" || t.lower == "cannot";
}

}  // namespace

DepTree parse_dependencies(std::string_view sentence) {
  return parse_dependencies(analyze(sentence));
}

DepTree parse_dependencies(std::vector<Token> tokens) {
  DepTree tree;
  tree.tokens = std::move(tokens);
  const auto& toks = tree.tokens;
  const std::size_t n = toks.size();
  if (n == 0) return tree;

  // ---- 1. Identify verb-group heads -------------------------------------
  // A verb group is: [modal] [adv|neg]* verb+ ; its head is the last verb
  // ("MUST NOT be forwarded" -> head "forwarded").  A lone modal (elliptical
  // "... as a server would") is not a group.
  struct VerbGroup {
    std::size_t head;
    std::optional<std::size_t> modal;
    std::optional<std::size_t> neg;
  };
  std::vector<VerbGroup> groups;
  std::vector<bool> in_group(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (in_group[i]) continue;
    std::optional<std::size_t> modal;
    std::size_t j = i;
    if (toks[j].pos == Pos::kModal) {
      modal = j;
      ++j;
    }
    std::optional<std::size_t> neg;
    while (j < n && (toks[j].pos == Pos::kAdv || is_neg(toks[j]))) {
      if (is_neg(toks[j])) neg = j;
      ++j;
    }
    // "cannot" is itself modal+neg.
    if (modal && toks[*modal].lower == "cannot") neg = *modal;
    // "ought to be handled": modal 'ought', then 'to', then verbs.
    if (modal && j < n && toks[j].lower == "to") ++j;
    std::size_t first_verb = j;
    while (j < n && (is_verb_like(toks[j].pos) || is_neg(toks[j]) ||
                     toks[j].pos == Pos::kAdv)) {
      if (is_neg(toks[j])) neg = j;
      ++j;
    }
    if (j == first_verb) continue;  // no verb found
    // Head = last verb token in the run.
    std::size_t head = first_verb;
    for (std::size_t k = first_verb; k < j; ++k) {
      if (is_verb_like(toks[k].pos)) head = k;
    }
    VerbGroup g{head, modal, neg};
    groups.push_back(g);
    for (std::size_t k = (modal ? *modal : first_verb); k < j; ++k) {
      in_group[k] = true;
    }
    if (modal) in_group[*modal] = true;
  }

  if (groups.empty()) {
    // Nominal sentence: root the first noun-like token so downstream code
    // has an anchor.
    for (std::size_t i = 0; i < n; ++i) {
      if (is_noun_like(toks[i].pos)) {
        tree.root = i;
        tree.arcs.push_back({i, i, Rel::kRoot});
        break;
      }
    }
    return tree;
  }

  // Root: prefer the first verb group that carries a modal (the requirement
  // core, skipping relative-clause verbs like "that receives a request"),
  // else the first group.
  std::size_t root_group = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (groups[g].modal) {
      root_group = g;
      break;
    }
  }
  const std::size_t root = groups[root_group].head;
  tree.root = root;
  tree.arcs.push_back({root, root, Rel::kRoot});

  // ---- 2. Per-group arcs: aux, neg, nsubj, dobj, prep/pobj ---------------
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const auto& g = groups[gi];
    if (g.modal && *g.modal != g.head) {
      tree.arcs.push_back({g.head, *g.modal, Rel::kAux});
    }
    if (g.neg && *g.neg != g.head) {
      tree.arcs.push_back({g.head, *g.neg, Rel::kNeg});
    }

    // Subject: nearest noun-like token to the left of the group start that
    // is not a prepositional object.  For the root group, fall back to the
    // first noun in the sentence (subjects of requirement sentences lead).
    std::size_t group_start = g.modal ? *g.modal : g.head;
    std::optional<std::size_t> subj;
    // Relative clause: "N0 that VERB ... N1 MUST ..." — the subject is N0,
    // the noun immediately before the relativizer, not the clause-internal
    // noun N1 nearest to the modal.
    if (gi == root_group) {
      for (std::size_t k = group_start; k-- > 0;) {
        // "that" doubles as a determiner in the lexicon; a relativizer is
        // recognized by the word itself with a verb following it.
        const bool relativizer_word = toks[k].lower == "that" ||
                                      toks[k].lower == "which" ||
                                      toks[k].lower == "whose";
        const bool verb_follows =
            k + 1 < toks.size() && (is_verb_like(toks[k + 1].pos) ||
                                    toks[k + 1].pos == Pos::kModal ||
                                    toks[k + 1].pos == Pos::kAdv);
        if (relativizer_word && verb_follows) {
          for (std::size_t m = k; m-- > 0 && k - m <= 3;) {
            if (is_noun_like(toks[m].pos)) {
              subj = m;
              break;
            }
          }
          break;
        }
      }
    }
    for (std::size_t k = group_start; !subj && k-- > 0;) {
      if (is_noun_like(toks[k].pos)) {
        // Is this noun a prepositional object?  Look left for a preposition
        // with no intervening noun.
        bool pobj = false;
        for (std::size_t m = k; m-- > 0;) {
          if (toks[m].pos == Pos::kPrep) {
            pobj = true;
            break;
          }
          if (is_noun_like(toks[m].pos) || is_verb_like(toks[m].pos) ||
              toks[m].pos == Pos::kPunct || toks[m].pos == Pos::kModal) {
            break;
          }
        }
        if (!pobj) {
          subj = k;
          break;
        }
        // keep scanning left past the prep phrase
      }
      if (toks[k].pos == Pos::kPunct && toks[k].text == ",") {
        // clause boundary — keep going; subjects may sit before a comma
        continue;
      }
    }
    if (!subj && gi == root_group) {
      for (std::size_t k = 0; k < group_start; ++k) {
        if (is_noun_like(toks[k].pos)) {
          subj = k;
          break;
        }
      }
    }
    if (subj) {
      tree.arcs.push_back({g.head, *subj, Rel::kNsubj});
    }

    // Object & prepositional attachments to the right, up to the next group.
    std::size_t right_end = n;
    for (const auto& g2 : groups) {
      std::size_t s2 = g2.modal ? *g2.modal : g2.head;
      if (s2 > g.head && s2 < right_end) right_end = s2;
    }
    bool have_dobj = false;
    for (std::size_t k = g.head + 1; k < right_end; ++k) {
      if (toks[k].pos == Pos::kPrep) {
        tree.arcs.push_back({g.head, k, Rel::kPrep});
        for (std::size_t m = k + 1; m < right_end; ++m) {
          if (is_noun_like(toks[m].pos)) {
            tree.arcs.push_back({k, m, Rel::kPobj});
            break;
          }
          if (toks[m].pos == Pos::kPrep || toks[m].pos == Pos::kPunct) break;
        }
      } else if (!have_dobj && is_noun_like(toks[k].pos)) {
        // First bare noun after the verb with no intervening preposition.
        bool behind_prep = false;
        for (std::size_t m = k; m-- > g.head + 1;) {
          if (toks[m].pos == Pos::kPrep) {
            behind_prep = true;
            break;
          }
          if (is_noun_like(toks[m].pos)) break;
        }
        if (!behind_prep) {
          tree.arcs.push_back({g.head, k, Rel::kDobj});
          have_dobj = true;
        }
      }
    }
  }

  // ---- 3. Coordination between verb groups ------------------------------
  for (std::size_t gi = 0; gi + 1 < groups.size(); ++gi) {
    std::size_t a = groups[gi].head;
    std::size_t b = groups[gi + 1].head;
    for (std::size_t k = a + 1; k < b; ++k) {
      if (toks[k].pos == Pos::kConj) {
        tree.arcs.push_back({a, k, Rel::kCc});
        tree.arcs.push_back({a, b, Rel::kConj});
        break;
      }
    }
  }

  // ---- 4. Local noun-phrase structure: det, amod, mark -------------------
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (toks[i].pos == Pos::kDet || toks[i].pos == Pos::kAdj) {
      // attach to the next noun-like head
      for (std::size_t k = i + 1; k < n && k <= i + 3; ++k) {
        if (is_noun_like(toks[k].pos)) {
          tree.arcs.push_back(
              {k, i, toks[i].pos == Pos::kDet ? Rel::kDet : Rel::kAmod});
          break;
        }
        if (toks[k].pos != Pos::kAdj && toks[k].pos != Pos::kNoun) break;
      }
    } else if (toks[i].pos == Pos::kSubConj) {
      // mark the following verb group head
      for (const auto& g : groups) {
        std::size_t s = g.modal ? *g.modal : g.head;
        if (s > i) {
          tree.arcs.push_back({g.head, i, Rel::kMark});
          break;
        }
      }
    }
  }

  return tree;
}

}  // namespace hdiff::text
