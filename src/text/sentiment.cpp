#include "text/sentiment.h"

#include <algorithm>
#include <cctype>

namespace hdiff::text {

std::string_view to_string(SentimentPolarity p) noexcept {
  switch (p) {
    case SentimentPolarity::kObligation: return "obligation";
    case SentimentPolarity::kProhibition: return "prohibition";
    case SentimentPolarity::kNeutral: return "neutral";
  }
  return "neutral";
}

namespace {

struct Cue {
  /// Token sequence to match (lower-cased); empty strings are wildcards for
  /// a single token.
  std::vector<std::string_view> pattern;
  double weight;
  bool prohibition;
};

const std::vector<Cue>& cue_lexicon() {
  // Weights reflect RFC 2119's own hierarchy: absolute requirements score
  // highest, recommendations mid, permissions low-but-present.  Informal
  // obligation phrasings score like their formal counterparts.
  static const std::vector<Cue> kCues = {
      {{"must", "not"}, 0.95, true},
      {{"must"}, 0.95, false},
      {{"shall", "not"}, 0.95, true},
      {{"shall"}, 0.95, false},
      {{"required"}, 0.9, false},
      {{"should", "not"}, 0.7, true},
      {{"should"}, 0.7, false},
      {{"recommended"}, 0.7, false},
      {{"ought", "to"}, 0.7, false},
      {{"may", "not"}, 0.5, true},
      {{"may"}, 0.4, false},
      {{"optional"}, 0.4, false},
      {{"not", "allowed"}, 0.9, true},
      {{"is", "not", "permitted"}, 0.9, true},
      {{"not", "permitted"}, 0.9, true},
      {{"cannot"}, 0.8, true},
      {{"can", "not"}, 0.8, true},
      {{"needs", "to"}, 0.8, false},
      {{"need", "to"}, 0.6, false},
      {{"has", "to"}, 0.8, false},
      {{"have", "to"}, 0.6, false},
      {{"forbidden"}, 0.9, true},
      {{"prohibited"}, 0.9, true},
      {{"disallowed"}, 0.9, true},
      {{"rejected"}, 0.6, false},
      {{"reject"}, 0.5, false},
      {{"invalid"}, 0.35, false},
      {{"error"}, 0.3, false},
      {{"never"}, 0.7, true},
      {{"always"}, 0.5, false},
      {{"only"}, 0.25, false},
  };
  return kCues;
}

/// RFC-2119 keywords appear in CAPITALS in specification text; that casing
/// is itself a strong cue.
bool is_all_caps(std::string_view word) {
  bool alpha = false;
  for (char c : word) {
    if (c >= 'a' && c <= 'z') return false;
    if (c >= 'A' && c <= 'Z') alpha = true;
  }
  return alpha;
}

}  // namespace

SentimentClassifier::SentimentClassifier(double threshold)
    : threshold_(threshold) {}

SentimentResult SentimentClassifier::score(std::string_view sentence) const {
  return score(analyze(sentence));
}

SentimentResult SentimentClassifier::score(
    const std::vector<Token>& tokens) const {
  SentimentResult result;
  double best = 0.0;
  bool prohibition = false;

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    for (const Cue& cue : cue_lexicon()) {
      if (i + cue.pattern.size() > tokens.size()) continue;
      bool match = true;
      for (std::size_t k = 0; k < cue.pattern.size(); ++k) {
        if (!cue.pattern[k].empty() &&
            tokens[i + k].lower != cue.pattern[k]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      double w = cue.weight;
      // Capitalized RFC-2119 keywords ("MUST") are the canonical strong form.
      if (is_all_caps(tokens[i].text)) w = std::min(1.0, w + 0.1);
      std::string cue_text;
      for (std::size_t k = 0; k < cue.pattern.size(); ++k) {
        if (k) cue_text += ' ';
        cue_text += tokens[i + k].text;
      }
      result.cues.push_back(std::move(cue_text));
      if (w > best) {
        best = w;
        prohibition = cue.prohibition;
      } else if (w == best && cue.prohibition) {
        prohibition = true;
      }
    }
  }

  // Several independent cues in one sentence stack mildly (multi-clause
  // requirements), capped at 1.
  if (result.cues.size() > 1) {
    best = std::min(1.0, best + 0.02 * static_cast<double>(result.cues.size() - 1));
  }
  result.strength = best;
  if (best >= threshold_) {
    result.polarity = prohibition ? SentimentPolarity::kProhibition
                                  : SentimentPolarity::kObligation;
  }
  return result;
}

bool SentimentClassifier::is_requirement(std::string_view sentence) const {
  return score(sentence).strength >= threshold_;
}

bool keyword_filter_matches(std::string_view sentence) {
  static constexpr std::string_view kKeywords[] = {
      "MUST", "MUST NOT", "SHALL", "SHALL NOT", "SHOULD", "SHOULD NOT",
      "REQUIRED", "RECOMMENDED", "NOT RECOMMENDED", "MAY", "OPTIONAL",
  };
  for (auto kw : kKeywords) {
    std::size_t pos = sentence.find(kw);
    while (pos != std::string_view::npos) {
      // Whole-word match: boundaries must not be letters.
      bool left_ok = pos == 0 || !std::isalpha(static_cast<unsigned char>(
                                      sentence[pos - 1]));
      std::size_t end = pos + kw.size();
      bool right_ok = end >= sentence.size() ||
                      !std::isalpha(static_cast<unsigned char>(sentence[end]));
      if (left_ok && right_ok) return true;
      pos = sentence.find(kw, pos + 1);
    }
  }
  return false;
}

}  // namespace hdiff::text
