// Textual entailment for specification requirements (paper §II-B, §III-C).
//
// The paper uses an AllenNLP entailment model as "an intelligent question
// answering system": the RFC sentence is the premise, an SR seed-template
// instance is the hypothesis, and the model answers whether the premise
// implies it.  This engine answers the same question by structured
// alignment: it extracts the premise's facts (role, action, polarity,
// fields, status codes, modifiers) through the dependency tree, normalizes
// them through synonym lexicons, and checks slot-wise compatibility with the
// hypothesis.  Deterministic, and accurate on RFC-genre English (DESIGN.md
// §1 documents the substitution).
#pragma once

#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "text/dependency.h"

namespace hdiff::text {

/// Protocol roles (RFC 7230 §2.5 vocabulary, the paper's 10 role names).
enum class Role {
  kClient,
  kServer,
  kProxy,
  kSender,
  kRecipient,
  kIntermediary,
  kCache,
  kGateway,
  kUserAgent,
  kOrigin,
  kUnknown,
};

std::string_view to_string(Role r) noexcept;

/// Map a subject word to a role ("server" -> kServer, "recipient" ->
/// kRecipient, "user agent"/"user-agent" -> kUserAgent, ...).
Role role_from_word(std::string_view word) noexcept;

/// Does a premise role cover a hypothesis role?  "recipient" covers server,
/// proxy, cache and gateway; "sender" covers client and proxy;
/// "intermediary" covers proxy, cache and gateway; identical roles match.
bool role_covers(Role premise, Role hypothesis) noexcept;

/// Normalized protocol actions used in role-action SRs.
enum class Action {
  kReject,     ///< reject, refuse, discard, drop
  kRespond,    ///< respond, reply, return, answer, send (a response)
  kForward,    ///< forward, relay, pass
  kGenerate,   ///< generate, create, produce, send (a request)
  kAccept,     ///< accept, process, handle, parse
  kIgnore,     ///< ignore, disregard, skip
  kClose,      ///< close (the connection), terminate
  kReplace,    ///< replace, substitute, rewrite, remove+add
  kContain,    ///< contain, include, carry (message-description verbs)
  kTreat,      ///< treat as, consider as, interpret as
  kUnknown,
};

std::string_view to_string(Action a) noexcept;

/// Normalize a verb (any inflection) to an Action.
Action action_from_verb(std::string_view verb) noexcept;

/// Structured facts extracted from one premise clause.
struct PremiseFacts {
  Role role = Role::kUnknown;
  Action action = Action::kUnknown;
  bool negated = false;                ///< prohibition ("MUST NOT ...")
  double modal_strength = 0.0;         ///< 0 when no requirement language
  std::vector<std::string> fields;     ///< HTTP field names found (lower-case)
  std::vector<int> status_codes;       ///< 3-digit codes mentioned
  std::set<std::string> modifiers;     ///< invalid, multiple, missing, ...
  std::string verb;                    ///< surface form of the main verb
  std::string subject;                 ///< surface form of the subject
};

/// Extract facts from a clause.  `field_dictionary` is the set of known
/// field names (lower-case; normally the ABNF rule names of header fields).
PremiseFacts extract_facts(std::string_view clause,
                           const std::set<std::string>& field_dictionary);

/// An SR seed-template instance (hypothesis).  Empty/unset slots are
/// wildcards.  Mirrors the paper's two template families:
///   message description — "[field] header is [modifier]"
///   role action         — "[role] [action] [status-code]"
struct Hypothesis {
  std::optional<Role> role;
  std::optional<Action> action;
  bool negated = false;
  std::optional<std::string> field;     ///< lower-case field name
  std::optional<int> status_code;
  std::optional<std::string> modifier;  ///< invalid / multiple / missing / ...
  std::string label;                    ///< template id, for reports

  std::string to_string() const;
};

/// Entailment verdict with per-slot diagnostics.
struct EntailmentResult {
  bool entailed = false;
  double confidence = 0.0;  ///< fraction of specified slots that aligned
  std::vector<std::string> mismatches;
};

class EntailmentEngine {
 public:
  /// `min_confidence`: every *specified* hypothesis slot must align; this
  /// threshold additionally requires the premise to carry requirement-grade
  /// modal strength.
  explicit EntailmentEngine(double min_modal_strength = 0.3);

  EntailmentResult entails(const PremiseFacts& premise,
                           const Hypothesis& hypothesis) const;

  /// Convenience over raw text.
  EntailmentResult entails(std::string_view premise_clause,
                           const Hypothesis& hypothesis,
                           const std::set<std::string>& field_dictionary) const;

 private:
  double min_modal_strength_;
};

}  // namespace hdiff::text
