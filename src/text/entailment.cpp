#include "text/entailment.h"

#include <cctype>

#include "text/sentiment.h"

namespace hdiff::text {

std::string_view to_string(Role r) noexcept {
  switch (r) {
    case Role::kClient: return "client";
    case Role::kServer: return "server";
    case Role::kProxy: return "proxy";
    case Role::kSender: return "sender";
    case Role::kRecipient: return "recipient";
    case Role::kIntermediary: return "intermediary";
    case Role::kCache: return "cache";
    case Role::kGateway: return "gateway";
    case Role::kUserAgent: return "user-agent";
    case Role::kOrigin: return "origin-server";
    case Role::kUnknown: return "unknown";
  }
  return "unknown";
}

Role role_from_word(std::string_view word) noexcept {
  std::string w;
  w.reserve(word.size());
  for (char c : word) {
    w.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (w == "client" || w == "clients") return Role::kClient;
  if (w == "server" || w == "servers") return Role::kServer;
  if (w == "proxy" || w == "proxies") return Role::kProxy;
  if (w == "sender" || w == "senders") return Role::kSender;
  if (w == "recipient" || w == "recipients") return Role::kRecipient;
  if (w == "intermediary" || w == "intermediaries") return Role::kIntermediary;
  if (w == "cache" || w == "caches") return Role::kCache;
  if (w == "gateway" || w == "gateways") return Role::kGateway;
  if (w == "user-agent" || w == "user agent" || w == "useragent") {
    return Role::kUserAgent;
  }
  if (w == "origin" || w == "origin-server") return Role::kOrigin;
  return Role::kUnknown;
}

bool role_covers(Role premise, Role hypothesis) noexcept {
  if (premise == hypothesis) return true;
  switch (premise) {
    case Role::kRecipient:
      return hypothesis == Role::kServer || hypothesis == Role::kProxy ||
             hypothesis == Role::kCache || hypothesis == Role::kGateway ||
             hypothesis == Role::kOrigin || hypothesis == Role::kIntermediary;
    case Role::kSender:
      return hypothesis == Role::kClient || hypothesis == Role::kProxy ||
             hypothesis == Role::kUserAgent;
    case Role::kIntermediary:
      return hypothesis == Role::kProxy || hypothesis == Role::kCache ||
             hypothesis == Role::kGateway;
    case Role::kServer:
      return hypothesis == Role::kOrigin;
    case Role::kOrigin:
      return hypothesis == Role::kServer;
    case Role::kClient:
      return hypothesis == Role::kUserAgent;
    case Role::kUserAgent:
      return hypothesis == Role::kClient;
    default:
      return false;
  }
}

std::string_view to_string(Action a) noexcept {
  switch (a) {
    case Action::kReject: return "reject";
    case Action::kRespond: return "respond";
    case Action::kForward: return "forward";
    case Action::kGenerate: return "generate";
    case Action::kAccept: return "accept";
    case Action::kIgnore: return "ignore";
    case Action::kClose: return "close";
    case Action::kReplace: return "replace";
    case Action::kContain: return "contain";
    case Action::kTreat: return "treat";
    case Action::kUnknown: return "unknown";
  }
  return "unknown";
}

Action action_from_verb(std::string_view verb) noexcept {
  std::string w;
  w.reserve(verb.size());
  for (char c : verb) {
    w.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  // Strip common inflections: -ing, -ed, -es, -s.
  auto base_matches = [&](std::string_view stem) {
    if (w == stem) return true;
    std::string s(stem);
    if (w == s + "s" || w == s + "es" || w == s + "ed" || w == s + "d" ||
        w == s + "ing") {
      return true;
    }
    if (!s.empty() && w == s.substr(0, s.size() - 1) + "ing") return true;
    return false;
  };
  struct Map {
    std::string_view stem;
    Action action;
  };
  static constexpr Map kMap[] = {
      {"reject", Action::kReject},   {"refuse", Action::kReject},
      {"discard", Action::kReject},  {"drop", Action::kReject},
      {"respond", Action::kRespond}, {"reply", Action::kRespond},
      {"return", Action::kRespond},  {"answer", Action::kRespond},
      {"forward", Action::kForward}, {"relay", Action::kForward},
      {"pass", Action::kForward},    {"generate", Action::kGenerate},
      {"create", Action::kGenerate}, {"produce", Action::kGenerate},
      {"send", Action::kGenerate},   {"accept", Action::kAccept},
      {"process", Action::kAccept},  {"handle", Action::kAccept},
      {"parse", Action::kAccept},    {"ignore", Action::kIgnore},
      {"disregard", Action::kIgnore},{"skip", Action::kIgnore},
      {"close", Action::kClose},     {"terminate", Action::kClose},
      {"replace", Action::kReplace}, {"substitute", Action::kReplace},
      {"rewrite", Action::kReplace}, {"remove", Action::kReplace},
      {"contain", Action::kContain}, {"include", Action::kContain},
      {"carry", Action::kContain},   {"have", Action::kContain},
      {"lack", Action::kContain},    {"treat", Action::kTreat},
      {"consider", Action::kTreat},  {"interpret", Action::kTreat},
      {"regard", Action::kTreat},
  };
  for (const auto& m : kMap) {
    if (base_matches(m.stem)) return m.action;
  }
  return Action::kUnknown;
}

namespace {


/// Modifier vocabulary appearing in message descriptions.
const std::set<std::string>& modifier_words() {
  static const std::set<std::string> kWords = {
      "invalid",   "valid",    "multiple", "duplicate", "repeated",
      "empty",     "missing",  "malformed","ambiguous", "whitespace",
      "obsolete",  "unknown",  "long",     "oversize",  "chunked",
      "absolute",  "lacks",    "several",  "single",
  };
  return kWords;
}

bool is_status_code(const std::string& word, int* code) {
  if (word.size() != 3) return false;
  for (char c : word) {
    if (c < '0' || c > '9') return false;
  }
  int v = (word[0] - '0') * 100 + (word[1] - '0') * 10 + (word[2] - '0');
  if (v < 100 || v > 599) return false;
  *code = v;
  return true;
}

}  // namespace

PremiseFacts extract_facts(std::string_view clause,
                           const std::set<std::string>& field_dictionary) {
  PremiseFacts facts;
  DepTree tree = parse_dependencies(clause);
  const auto& toks = tree.tokens;

  SentimentClassifier sentiment;
  SentimentResult s = sentiment.score(toks);
  facts.modal_strength = s.strength;
  facts.negated = s.polarity == SentimentPolarity::kProhibition;

  if (tree.root) {
    std::size_t root = *tree.root;
    facts.verb = toks[root].lower;
    facts.action = action_from_verb(facts.verb);
    if (auto subj = tree.find_dep(root, Rel::kNsubj)) {
      facts.subject = toks[*subj].lower;
      facts.role = role_from_word(facts.subject);
      // "user agent": two-word role
      if (facts.role == Role::kUnknown && *subj > 0 &&
          toks[*subj].lower == "agent" && toks[*subj - 1].lower == "user") {
        facts.role = Role::kUserAgent;
      }
    }
    if (tree.find_dep(root, Rel::kNeg)) facts.negated = true;
  }

  // Any role word in the clause is a fallback subject (passive sentences:
  // "... MUST be rejected by the server").
  if (facts.role == Role::kUnknown) {
    for (const auto& t : toks) {
      Role r = role_from_word(t.lower);
      if (r != Role::kUnknown) {
        facts.role = r;
        break;
      }
    }
  }

  // Fields, status codes, modifiers: scan all tokens.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const auto& t = toks[i];
    std::string lower = t.lower;
    // Quoted symbols: strip quotes for dictionary lookup.
    if (t.pos == Pos::kSymbol && lower.size() >= 2) {
      lower = lower.substr(1, lower.size() - 2);
    }
    // Prose aliases: RFC text says "the version"/"an expectation" where the
    // grammar names the element http-version / Expect.
    if (lower == "version" || lower == "http-version") {
      facts.fields.push_back("http-version");
    } else if (lower == "expectation" || lower == "expectations") {
      facts.fields.push_back("expect");
    }
    if (field_dictionary.contains(lower)) {
      facts.fields.push_back(lower);
    }
    int code = 0;
    if (is_status_code(t.text, &code)) {
      facts.status_codes.push_back(code);
    }
    if (modifier_words().contains(lower)) {
      facts.modifiers.insert(lower);
    }
    // "more than one", "at least two" => multiple
    if (lower == "one" && i >= 2 && toks[i - 1].lower == "than" &&
        toks[i - 2].lower == "more") {
      facts.modifiers.insert("multiple");
    }
    // "lacks a Host header" / "without a Host header" => missing
    if (lower == "lacks" || lower == "lack" || lower == "without") {
      facts.modifiers.insert("missing");
    }
    if (lower == "whitespace" || lower == "space") {
      facts.modifiers.insert("whitespace");
    }
    if (lower == "multiple" || lower == "duplicate" || lower == "repeated" ||
        lower == "several" || lower == "both") {
      facts.modifiers.insert("multiple");
    }
    // "more than once" (chunked applied twice)
    if (lower == "once" && i >= 2 && toks[i - 1].lower == "than" &&
        toks[i - 2].lower == "more") {
      facts.modifiers.insert("multiple");
    }
  }
  return facts;
}

std::string Hypothesis::to_string() const {
  std::string out = label.empty() ? std::string("hypothesis") : label;
  out += " {";
  if (role) out += " role=" + std::string(text::to_string(*role));
  if (action) {
    out += negated ? " action=NOT-" : " action=";
    out += text::to_string(*action);
  }
  if (field) out += " field=" + *field;
  if (status_code) out += " status=" + std::to_string(*status_code);
  if (modifier) out += " modifier=" + *modifier;
  out += " }";
  return out;
}

EntailmentEngine::EntailmentEngine(double min_modal_strength)
    : min_modal_strength_(min_modal_strength) {}

EntailmentResult EntailmentEngine::entails(const PremiseFacts& premise,
                                           const Hypothesis& hypothesis) const {
  EntailmentResult result;
  std::size_t specified = 0;
  std::size_t aligned = 0;

  if (premise.modal_strength < min_modal_strength_) {
    result.mismatches.push_back("premise lacks requirement-grade language");
    return result;
  }

  if (hypothesis.role) {
    ++specified;
    if (premise.role != Role::kUnknown &&
        role_covers(premise.role, *hypothesis.role)) {
      ++aligned;
    } else {
      result.mismatches.push_back("role: premise=" +
                                  std::string(to_string(premise.role)) +
                                  " hypothesis=" +
                                  std::string(to_string(*hypothesis.role)));
    }
  }
  if (hypothesis.action) {
    ++specified;
    bool action_match = premise.action == *hypothesis.action;
    // Polarity must agree: "MUST NOT forward" does not entail "forward".
    bool polarity_match = premise.negated == hypothesis.negated;
    if (action_match && polarity_match) {
      ++aligned;
    } else {
      result.mismatches.push_back(
          "action: premise=" + std::string(premise.negated ? "NOT-" : "") +
          std::string(to_string(premise.action)) + " hypothesis=" +
          std::string(hypothesis.negated ? "NOT-" : "") +
          std::string(to_string(*hypothesis.action)));
    }
  }
  if (hypothesis.field) {
    ++specified;
    bool found = false;
    for (const auto& f : premise.fields) {
      if (f == *hypothesis.field) found = true;
    }
    if (found) {
      ++aligned;
    } else {
      result.mismatches.push_back("field: '" + *hypothesis.field +
                                  "' not in premise");
    }
  }
  if (hypothesis.status_code) {
    ++specified;
    bool found = false;
    for (int c : premise.status_codes) {
      if (c == *hypothesis.status_code) found = true;
    }
    if (found) {
      ++aligned;
    } else {
      result.mismatches.push_back("status: " +
                                  std::to_string(*hypothesis.status_code) +
                                  " not in premise");
    }
  }
  if (hypothesis.modifier) {
    ++specified;
    if (premise.modifiers.contains(*hypothesis.modifier)) {
      ++aligned;
    } else {
      result.mismatches.push_back("modifier: '" + *hypothesis.modifier +
                                  "' not in premise");
    }
  }

  result.confidence =
      specified == 0 ? 1.0
                     : static_cast<double>(aligned) /
                           static_cast<double>(specified);
  result.entailed = specified > 0 && aligned == specified;
  return result;
}

EntailmentResult EntailmentEngine::entails(
    std::string_view premise_clause, const Hypothesis& hypothesis,
    const std::set<std::string>& field_dictionary) const {
  return entails(extract_facts(premise_clause, field_dictionary), hypothesis);
}

}  // namespace hdiff::text
