// Sentiment-based SR finder (paper §III-C).
//
// The paper's key observation: specification-requirement sentences carry a
// *strong sentiment* — forceful modal and obligation language — and the more
// security-critical the constraint, the more forceful the phrasing.  This
// classifier scores that forcefulness.  It deliberately goes beyond plain
// RFC-2119 keyword filtering: phrases like "is not allowed", "cannot contain
// a message body", and "ought to be handled as an error" score as strong
// requirements even though they contain no RFC-2119 keyword (the paper calls
// these out as cases a keyword filter misses; ablation E9 measures exactly
// this difference).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "text/token.h"

namespace hdiff::text {

/// Polarity of the requirement: an obligation to act, or a prohibition.
enum class SentimentPolarity {
  kObligation,   ///< "MUST respond", "is required to"
  kProhibition,  ///< "MUST NOT", "not allowed", "cannot"
  kNeutral,
};

std::string_view to_string(SentimentPolarity p) noexcept;

struct SentimentResult {
  double strength = 0.0;  ///< [0,1]; >= threshold means SR candidate
  SentimentPolarity polarity = SentimentPolarity::kNeutral;
  std::vector<std::string> cues;  ///< matched lexicon entries, for reports
};

class SentimentClassifier {
 public:
  /// `threshold`: minimum strength for is_requirement().
  explicit SentimentClassifier(double threshold = 0.45);

  SentimentResult score(std::string_view sentence) const;
  SentimentResult score(const std::vector<Token>& tokens) const;

  /// Convenience: does the sentence carry SR-grade sentiment?
  bool is_requirement(std::string_view sentence) const;

  double threshold() const noexcept { return threshold_; }

 private:
  double threshold_;
};

/// The keyword-only baseline the paper compares against (RFC 2119 terms in
/// capitals); used by ablation experiment E9.
bool keyword_filter_matches(std::string_view sentence);

}  // namespace hdiff::text
