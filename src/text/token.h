// Tokenization and part-of-speech tagging for RFC prose.
//
// This is the base layer of HDiff's NLP substrate (substituting for the
// stanza/spaCy stack of the paper — see DESIGN.md §1).  RFC requirement
// prose is a narrow genre of technical English; a lexicon + suffix tagger is
// accurate on it and, unlike a neural tagger, fully deterministic.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hdiff::text {

/// Part-of-speech classes — only the distinctions the downstream dependency
/// rules and entailment slots need.
enum class Pos {
  kNoun,
  kProperNoun,  ///< capitalized mid-sentence tokens, header names, "HTTP/1.1"
  kVerb,
  kModal,       ///< MUST, SHOULD, MAY, shall, ought, cannot, ...
  kAdj,
  kAdv,
  kDet,
  kPrep,
  kConj,        ///< coordinating conjunction (cc): and, or, but
  kSubConj,     ///< subordinating: if, when, unless, that, which
  kPron,
  kNum,
  kPunct,
  kSymbol,      ///< code fragments, quoted literals
  kOther,
};

std::string_view to_string(Pos pos) noexcept;

struct Token {
  std::string text;    ///< original spelling
  std::string lower;   ///< lower-cased
  Pos pos = Pos::kOther;
  std::size_t offset = 0;  ///< byte offset in the source sentence
};

/// Split a sentence into word / number / punctuation tokens.  Quoted spans
/// ("400 (Bad Request)", '"chunked"') stay intact enough for field lookup:
/// hyphens and slashes inside words are kept ("field-name", "HTTP/1.1").
std::vector<Token> tokenize(std::string_view sentence);

/// Assign POS tags in place (lexicon first, then suffix heuristics,
/// defaulting to noun — the safest class for RFC jargon).
void tag_pos(std::vector<Token>& tokens);

/// Convenience: tokenize + tag.
std::vector<Token> analyze(std::string_view sentence);

}  // namespace hdiff::text
