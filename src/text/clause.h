// Clause splitting and cross-sentence anaphora resolution (paper §III-C,
// Text2Rule converter challenges 1 and 2).
//
// RFC sentences are long, with coordinated clauses ("... MUST reject X, or
// MUST replace Y, and then SHOULD close Z").  Entailment over the whole
// sentence loses the parallel semantics, so HDiff first splits on
// cc/conj-linked verb groups (located via the dependency tree) and analyzes
// each clause separately.  Referent phrases ("such request", "this message")
// are resolved by a bounded forward search over preceding sentences using
// keyword fuzzy matching — the paper found neural coreference tools
// unnecessary for RFC prose, and so do we.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "text/dependency.h"
#include "text/sentence.h"

namespace hdiff::text {

/// One clause extracted from a sentence.  The subject may be inherited from
/// the main clause when the coordinated clause elides it ("A server MUST
/// reject X and [it MUST] close the connection").
struct Clause {
  std::string text;
  std::optional<std::string> inherited_subject;
};

/// Split a sentence into clauses along coordinated verb groups and
/// sentence-level semicolons.  A sentence with no coordination yields itself.
std::vector<Clause> split_clauses(std::string_view sentence);

/// A referent phrase found in a sentence ("such request" => noun "request").
struct Referent {
  std::string phrase;  ///< e.g. "such request"
  std::string noun;    ///< e.g. "request"
  std::size_t offset;  ///< byte offset in the sentence
};

/// Detect referent phrases: determiners {this, that, such, the same} + a
/// protocol noun {message, request, response, field, header, uri, value}.
std::vector<Referent> find_referents(std::string_view sentence);

/// Resolve a referent by searching backwards up to `window` sentences for a
/// clause mentioning the referent noun; returns the referred sentence text.
/// Fuzzy matching: the noun must appear as a token (case-insensitive),
/// with simple plural folding ("requests" matches "request").
std::optional<std::string> resolve_referent(
    const std::vector<Sentence>& document, std::size_t sentence_index,
    const Referent& referent, std::size_t window = 5);

/// Convenience used by the Documentation Analyzer: if `sentence` has a
/// resolvable referent, return "<referred sentence> <sentence>" merged for
/// entailment analysis; otherwise return the sentence unchanged.
std::string merge_referred_context(const std::vector<Sentence>& document,
                                   std::size_t sentence_index,
                                   std::size_t window = 5);

}  // namespace hdiff::text
