#include "text/token.h"

#include <cctype>
#include <unordered_map>

namespace hdiff::text {

std::string_view to_string(Pos pos) noexcept {
  switch (pos) {
    case Pos::kNoun: return "NOUN";
    case Pos::kProperNoun: return "PROPN";
    case Pos::kVerb: return "VERB";
    case Pos::kModal: return "MODAL";
    case Pos::kAdj: return "ADJ";
    case Pos::kAdv: return "ADV";
    case Pos::kDet: return "DET";
    case Pos::kPrep: return "PREP";
    case Pos::kConj: return "CC";
    case Pos::kSubConj: return "SCONJ";
    case Pos::kPron: return "PRON";
    case Pos::kNum: return "NUM";
    case Pos::kPunct: return "PUNCT";
    case Pos::kSymbol: return "SYM";
    case Pos::kOther: return "X";
  }
  return "X";
}

namespace {

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
         c == '/' || c == '.' || c == ':';
}

std::string lower_copy(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

const std::unordered_map<std::string_view, Pos>& lexicon() {
  static const std::unordered_map<std::string_view, Pos> kLexicon = {
      // modals / requirement keywords (RFC 2119 plus informal forms)
      {"must", Pos::kModal}, {"shall", Pos::kModal}, {"should", Pos::kModal},
      {"may", Pos::kModal}, {"might", Pos::kModal}, {"can", Pos::kModal},
      {"cannot", Pos::kModal}, {"ought", Pos::kModal}, {"will", Pos::kModal},
      {"would", Pos::kModal}, {"required", Pos::kModal},
      {"recommended", Pos::kModal}, {"optional", Pos::kModal},
      // determiners
      {"a", Pos::kDet}, {"an", Pos::kDet}, {"the", Pos::kDet},
      {"any", Pos::kDet}, {"all", Pos::kDet}, {"each", Pos::kDet},
      {"every", Pos::kDet}, {"no", Pos::kDet}, {"some", Pos::kDet},
      {"this", Pos::kDet}, {"that", Pos::kDet}, {"these", Pos::kDet},
      {"those", Pos::kDet}, {"such", Pos::kDet}, {"its", Pos::kDet},
      {"both", Pos::kDet}, {"either", Pos::kDet}, {"multiple", Pos::kDet},
      // prepositions
      {"of", Pos::kPrep}, {"in", Pos::kPrep}, {"on", Pos::kPrep},
      {"with", Pos::kPrep}, {"without", Pos::kPrep}, {"to", Pos::kPrep},
      {"from", Pos::kPrep}, {"for", Pos::kPrep}, {"by", Pos::kPrep},
      {"as", Pos::kPrep}, {"at", Pos::kPrep}, {"via", Pos::kPrep},
      {"between", Pos::kPrep}, {"before", Pos::kPrep}, {"after", Pos::kPrep},
      {"within", Pos::kPrep}, {"upon", Pos::kPrep}, {"into", Pos::kPrep},
      {"per", Pos::kPrep}, {"over", Pos::kPrep},
      // coordinating conjunctions
      {"and", Pos::kConj}, {"or", Pos::kConj}, {"but", Pos::kConj},
      {"nor", Pos::kConj},
      // subordinating conjunctions / relativizers
      {"if", Pos::kSubConj}, {"when", Pos::kSubConj},
      {"whenever", Pos::kSubConj}, {"unless", Pos::kSubConj},
      {"until", Pos::kSubConj}, {"because", Pos::kSubConj},
      {"although", Pos::kSubConj}, {"while", Pos::kSubConj},
      {"which", Pos::kSubConj}, {"whose", Pos::kSubConj},
      {"where", Pos::kSubConj}, {"since", Pos::kSubConj},
      {"so", Pos::kSubConj}, {"than", Pos::kSubConj},
      {"whether", Pos::kSubConj},
      // pronouns
      {"it", Pos::kPron}, {"they", Pos::kPron}, {"them", Pos::kPron},
      {"itself", Pos::kPron}, {"one", Pos::kPron}, {"there", Pos::kPron},
      // adverbs common in RFC prose
      {"not", Pos::kAdv}, {"never", Pos::kAdv}, {"only", Pos::kAdv},
      {"also", Pos::kAdv}, {"then", Pos::kAdv}, {"thus", Pos::kAdv},
      {"otherwise", Pos::kAdv}, {"instead", Pos::kAdv},
      {"however", Pos::kAdv}, {"directly", Pos::kAdv},
      {"immediately", Pos::kAdv}, {"always", Pos::kAdv},
      {"often", Pos::kAdv}, {"usually", Pos::kAdv},
      // copulas / frequent verbs (base + inflections that the suffix rules
      // would mis-tag)
      {"is", Pos::kVerb}, {"are", Pos::kVerb}, {"was", Pos::kVerb},
      {"be", Pos::kVerb}, {"been", Pos::kVerb}, {"being", Pos::kVerb},
      {"has", Pos::kVerb}, {"have", Pos::kVerb}, {"had", Pos::kVerb},
      {"does", Pos::kVerb}, {"do", Pos::kVerb}, {"did", Pos::kVerb},
      {"send", Pos::kVerb}, {"sends", Pos::kVerb}, {"sent", Pos::kVerb},
      {"reject", Pos::kVerb}, {"rejects", Pos::kVerb},
      {"respond", Pos::kVerb}, {"responds", Pos::kVerb},
      {"receive", Pos::kVerb}, {"receives", Pos::kVerb},
      {"forward", Pos::kVerb}, {"forwards", Pos::kVerb},
      {"generate", Pos::kVerb}, {"generates", Pos::kVerb},
      {"contain", Pos::kVerb}, {"contains", Pos::kVerb},
      {"include", Pos::kVerb}, {"includes", Pos::kVerb},
      {"ignore", Pos::kVerb}, {"ignores", Pos::kVerb},
      {"treat", Pos::kVerb}, {"treats", Pos::kVerb},
      {"close", Pos::kVerb}, {"closes", Pos::kVerb},
      {"replace", Pos::kVerb}, {"replaces", Pos::kVerb},
      {"remove", Pos::kVerb}, {"removes", Pos::kVerb},
      {"accept", Pos::kVerb}, {"accepts", Pos::kVerb},
      {"process", Pos::kVerb}, {"parse", Pos::kVerb},
      {"handle", Pos::kVerb}, {"handled", Pos::kVerb},
      {"consider", Pos::kVerb}, {"considered", Pos::kVerb},
      {"allow", Pos::kVerb}, {"allowed", Pos::kVerb},
      {"require", Pos::kVerb}, {"requires", Pos::kVerb},
      {"use", Pos::kVerb}, {"uses", Pos::kVerb}, {"used", Pos::kVerb},
      {"act", Pos::kVerb}, {"apply", Pos::kVerb}, {"applies", Pos::kVerb},
      {"discard", Pos::kVerb}, {"discards", Pos::kVerb},
      {"lacks", Pos::kVerb}, {"lack", Pos::kVerb},
      {"precede", Pos::kVerb}, {"precedes", Pos::kVerb},
      // frequent adjectives
      {"invalid", Pos::kAdj}, {"valid", Pos::kAdj}, {"empty", Pos::kAdj},
      {"ambiguous", Pos::kAdj}, {"duplicate", Pos::kAdj},
      {"whole", Pos::kAdj}, {"entire", Pos::kAdj}, {"final", Pos::kAdj},
      {"last", Pos::kAdj}, {"first", Pos::kAdj}, {"single", Pos::kAdj},
      {"same", Pos::kAdj}, {"different", Pos::kAdj}, {"new", Pos::kAdj},
      {"obsolete", Pos::kAdj}, {"malformed", Pos::kAdj},
  };
  return kLexicon;
}

bool all_digits_dots(std::string_view s) {
  bool digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != ',' && c != 'x') {
      return false;
    }
  }
  return digit;
}

Pos guess_by_suffix(const Token& tok, bool sentence_initial) {
  const std::string& w = tok.lower;
  if (all_digits_dots(w)) return Pos::kNum;
  // Header names and protocol tokens: contain '-' or '/' with capitals, or
  // are known field spellings — tag as proper nouns (field candidates).
  bool has_upper = false;
  for (char c : tok.text) {
    if (std::isupper(static_cast<unsigned char>(c))) has_upper = true;
  }
  if (has_upper && !sentence_initial) return Pos::kProperNoun;
  if (w.size() > 4) {
    auto ends = [&](std::string_view suf) {
      return w.size() >= suf.size() &&
             w.compare(w.size() - suf.size(), suf.size(), suf) == 0;
    };
    if (ends("ly")) return Pos::kAdv;
    if (ends("ing") || ends("ed") || ends("ify")) return Pos::kVerb;
    if (ends("tion") || ends("sion") || ends("ment") || ends("ness") ||
        ends("ity") || ends("ance") || ends("ence")) {
      return Pos::kNoun;
    }
    if (ends("ous") || ends("ive") || ends("able") || ends("ible") ||
        ends("ical") || ends("less")) {
      return Pos::kAdj;
    }
  }
  return Pos::kNoun;
}

}  // namespace

std::vector<Token> tokenize(std::string_view sentence) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < sentence.size()) {
    char c = sentence[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (is_word_char(c)) {
      std::size_t start = i;
      while (i < sentence.size() && is_word_char(sentence[i])) ++i;
      // Trailing '.'/':' is sentence punctuation, not part of the word —
      // unless the token is a number/version like "1.1".
      std::string_view word = sentence.substr(start, i - start);
      while (word.size() > 1 && (word.back() == '.' || word.back() == ':') &&
             !std::isdigit(static_cast<unsigned char>(word[word.size() - 2]))) {
        word.remove_suffix(1);
        --i;
      }
      tok.text.assign(word);
    } else if (c == '"' || c == '\'') {
      // Quoted literal: take through the matching quote as one symbol token.
      char quote = c;
      std::size_t start = i++;
      while (i < sentence.size() && sentence[i] != quote) ++i;
      if (i < sentence.size()) ++i;
      tok.text.assign(sentence.substr(start, i - start));
      tok.lower = lower_copy(tok.text);
      tok.pos = Pos::kSymbol;
      out.push_back(std::move(tok));
      continue;
    } else {
      tok.text.assign(1, c);
      tok.lower = tok.text;
      tok.pos = Pos::kPunct;
      out.push_back(std::move(tok));
      ++i;
      continue;
    }
    tok.lower = lower_copy(tok.text);
    out.push_back(std::move(tok));
  }
  return out;
}

void tag_pos(std::vector<Token>& tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    Token& tok = tokens[i];
    if (tok.pos == Pos::kPunct || tok.pos == Pos::kSymbol) continue;
    auto it = lexicon().find(tok.lower);
    if (it != lexicon().end()) {
      tok.pos = it->second;
      continue;
    }
    tok.pos = guess_by_suffix(tok, /*sentence_initial=*/i == 0);
  }
}

std::vector<Token> analyze(std::string_view sentence) {
  std::vector<Token> tokens = tokenize(sentence);
  tag_pos(tokens);
  return tokens;
}

}  // namespace hdiff::text
